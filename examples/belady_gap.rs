//! Headroom analysis: how much of the Belady-vs-LRU gap does each online
//! policy close? This is the selection criterion the paper used to pick
//! its training benchmarks ("applications that show significant difference
//! in LLC hit rates between Belady and LRU").
//!
//! ```sh
//! cargo run --release --example belady_gap [benchmark...]
//! ```

use rlr_repro::prelude::*;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let benchmarks: Vec<String> = if args.is_empty() {
        workloads::TRAINING_SET.iter().map(|s| s.to_string()).collect()
    } else {
        args
    };
    let config = SystemConfig::paper_single_core();
    println!(
        "{:14} {:>8} {:>8} {:>8} {:>8} {:>12}",
        "benchmark", "LRU%", "RLR%", "Belady%", "gap", "RLR closes"
    );

    for name in &benchmarks {
        let workload = match workloads::by_name(name) {
            Some(w) => w,
            None => {
                eprintln!("unknown benchmark: {name}");
                continue;
            }
        };
        // One run captures the LLC stream; replaying it with any policy is
        // exact because the stream is policy-invariant.
        let run = |policy: Box<dyn ReplacementPolicy>| -> RunStats {
            let mut system = SingleCoreSystem::new(&config, policy);
            let mut stream = workload.stream();
            system.warm_up(&mut stream, 1_000_000);
            system.run(stream, 6_000_000)
        };
        let mut capture = SingleCoreSystem::new(&config, Box::new(TrueLru::new(&config.llc)));
        let mut stream = workload.stream();
        capture.llc_mut().enable_capture();
        capture.warm_up(&mut stream, 1_000_000);
        let lru = capture.run(stream, 6_000_000);
        let trace = capture.llc_mut().take_capture().expect("capture enabled");

        let rlr = run(Box::new(RlrPolicy::optimized(&config.llc)));
        let opt = run(Box::new(Belady::from_trace(&trace, &config.llc)));

        let gap = opt.llc_hit_rate_pct() - lru.llc_hit_rate_pct();
        let closed = if gap.abs() < 0.05 {
            f64::NAN
        } else {
            (rlr.llc_hit_rate_pct() - lru.llc_hit_rate_pct()) / gap * 100.0
        };
        println!(
            "{name:14} {:>8.2} {:>8.2} {:>8.2} {:>7.2}p {:>11.1}%",
            lru.llc_hit_rate_pct(),
            rlr.llc_hit_rate_pct(),
            opt.llc_hit_rate_pct(),
            gap,
            closed
        );
    }
    println!("\n(gap = Belady - LRU demand hit rate; 'closes' = RLR's share of that gap)");
}
