//! Four-core shared-LLC simulation with RLR's multicore extension
//! (paper §IV-D): per-core demand-hit priorities, re-ranked every 2000 LLC
//! accesses.
//!
//! ```sh
//! cargo run --release --example multicore_mix [bench0 bench1 bench2 bench3]
//! ```

use rlr_repro::prelude::*;
use workloads::TraceEntry;

fn streams_for(mix: &[Workload]) -> Vec<Box<dyn Iterator<Item = TraceEntry> + Send>> {
    mix.iter()
        .enumerate()
        .map(|(core, wl)| {
            let seeded = wl.clone().with_seed(wl.seed() ^ (core as u64 + 1));
            Box::new(seeded.stream()) as Box<dyn Iterator<Item = TraceEntry> + Send>
        })
        .collect()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let names: Vec<String> = if args.len() == 4 {
        args
    } else {
        ["429.mcf", "450.soplex", "416.gamess", "470.lbm"]
            .iter()
            .map(|s| s.to_string())
            .collect()
    };
    let mix: Vec<Workload> = names
        .iter()
        .map(|n| workloads::by_name(n).unwrap_or_else(|| panic!("unknown benchmark {n}")))
        .collect();

    let config = SystemConfig::paper_quad_core();
    println!("4-core system, shared {} MB LLC", config.llc.capacity_bytes() >> 20);
    println!("mix: {}", names.join(" + "));

    let mut baseline = Vec::new();
    for (label, policy) in [
        ("LRU", Box::new(TrueLru::new(&config.llc)) as Box<dyn ReplacementPolicy>),
        ("RLR-multicore", Box::new(RlrPolicy::multicore(4, &config.llc))),
    ] {
        let mut system = MultiCoreSystem::new(&config, policy, streams_for(&mix));
        let per_core = system.run(500_000, 3_000_000);
        println!("\n[{label}]");
        for (core, stats) in per_core.iter().enumerate() {
            print!("  core {core} ({:14}): IPC {:.4}", names[core], stats.ipc());
            if let Some(base) = baseline.get(core) {
                let b: &RunStats = base;
                print!("  ({:+.2}% vs LRU)", stats.ipc() / b.ipc() * 100.0 - 100.0);
            }
            println!();
        }
        println!(
            "  shared LLC: demand hit rate {:.1}%",
            per_core[0].llc.demand_hit_rate() * 100.0
        );
        if baseline.is_empty() {
            baseline = per_core;
        }
    }
}
