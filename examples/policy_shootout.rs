//! Policy shootout: every implemented policy on a handful of benchmarks,
//! including Belady's offline optimum via trace capture and replay.
//!
//! ```sh
//! cargo run --release --example policy_shootout [benchmark...]
//! ```

use rlr_repro::prelude::*;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let benchmarks: Vec<String> = if args.is_empty() {
        ["429.mcf", "450.soplex", "471.omnetpp", "483.xalancbmk"]
            .iter()
            .map(|s| s.to_string())
            .collect()
    } else {
        args
    };
    let config = SystemConfig::paper_single_core();
    let policies = [
        PolicyKind::Lru,
        PolicyKind::Fifo,
        PolicyKind::Random,
        PolicyKind::Srrip,
        PolicyKind::Drrip,
        PolicyKind::KpcR,
        PolicyKind::Pdp,
        PolicyKind::Eva,
        PolicyKind::Ship,
        PolicyKind::ShipPp,
        PolicyKind::Hawkeye,
        PolicyKind::Rlr,
        PolicyKind::RlrUnopt,
    ];

    print!("{:14}", "benchmark");
    for p in &policies {
        print!("{:>11}", p.name());
    }
    println!("{:>11}", "Belady*");

    for name in &benchmarks {
        let workload = match workloads::by_name(name) {
            Some(w) => w,
            None => {
                eprintln!("unknown benchmark: {name}");
                continue;
            }
        };
        print!("{name:14}");
        let mut lru_ipc = 0.0;
        for (i, kind) in policies.iter().enumerate() {
            let mut system = SingleCoreSystem::new(&config, kind.build(&config.llc, None));
            let mut stream = workload.stream();
            system.warm_up(&mut stream, 1_000_000);
            let stats = system.run(stream, 5_000_000);
            if i == 0 {
                lru_ipc = stats.ipc();
                print!("{:>10.3}i", stats.ipc());
            } else {
                print!("{:>10.2}%", (stats.ipc() / lru_ipc - 1.0) * 100.0);
            }
        }

        // Belady: capture the LLC stream once, then replay with the oracle.
        let mut capture_sys = SingleCoreSystem::new(&config, PolicyKind::Lru.build(&config.llc, None));
        let mut stream = workload.stream();
        capture_sys.llc_mut().enable_capture();
        capture_sys.warm_up(&mut stream, 1_000_000);
        let _ = capture_sys.run(stream, 5_000_000);
        let trace = capture_sys.llc_mut().take_capture().expect("capture enabled");

        let mut belady_sys = SingleCoreSystem::new(
            &config,
            Box::new(Belady::from_trace(&trace, &config.llc)),
        );
        let mut stream = workload.stream();
        belady_sys.warm_up(&mut stream, 1_000_000);
        let stats = belady_sys.run(stream, 5_000_000);
        println!("{:>10.2}%", (stats.ipc() / lru_ipc - 1.0) * 100.0);
    }
    println!("\n(first column: LRU IPC; others: IPC speedup over LRU)");
    println!("*Belady replays the captured LLC stream with future knowledge — an upper bound.");
}
