//! The full ML-aided design-exploration pipeline on one benchmark, end to
//! end — a miniature of the paper's §III:
//!
//! 1. capture an LLC trace,
//! 2. train a DQN agent against the Belady reward,
//! 3. compare the agent's hit rate to LRU and Belady,
//! 4. print the weight heat map (Fig. 3 column),
//! 5. run hill-climbing feature selection (§III-B),
//! 6. show that RLR — the policy distilled from these insights — captures
//!    most of the agent's benefit at a fraction of the cost.
//!
//! ```sh
//! cargo run --release --example rl_pipeline [benchmark]
//! ```

use cache_sim::CacheConfig;
use rl::{analysis, AgentConfig, FeatureSet, LlcModel, Trainer};
use rlr_repro::prelude::*;

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "450.soplex".to_owned());
    let workload = workloads::by_name(&name).expect("known benchmark");

    // A small LLC keeps this demo snappy; the shape of the results is the
    // same at full scale.
    let llc = CacheConfig { sets: 256, ways: 16, latency: 26 };
    println!("== 1. capturing LLC trace for {name} ==");
    let system_cfg = {
        let mut c = SystemConfig::paper_single_core();
        c.llc = llc;
        c
    };
    let mut capture_sys = SingleCoreSystem::new(
        &system_cfg,
        Box::new(TrueLru::new(&system_cfg.llc)),
    );
    let mut stream = workload.stream();
    capture_sys.llc_mut().enable_capture();
    let _ = capture_sys.run(&mut stream, 4_000_000);
    let trace = capture_sys.llc_mut().take_capture().expect("capture enabled");
    println!("   captured {} LLC accesses", trace.len());

    println!("== 2. training the DQN agent (334-feature state) ==");
    let agent_cfg = AgentConfig {
        features: FeatureSet::full(),
        hidden: 48,
        seed: 11,
        ..AgentConfig::default()
    };
    let mut trainer = Trainer::new(agent_cfg, &llc);
    for epoch in 0..3 {
        let report = trainer.train_epoch(&trace, &llc);
        println!(
            "   epoch {epoch}: demand hit rate {:5.1}%  Belady-optimal decisions {:4.1}%  TD loss {:.4}",
            report.stats.demand_hit_rate() * 100.0,
            report.optimal_rate() * 100.0,
            report.mean_loss,
        );
    }

    println!("== 3. agent vs LRU vs Belady (trace replay) ==");
    let agent_stats = trainer.evaluate(&trace, &llc);
    let mut lru_model = LlcModel::new(&llc, &trace);
    // LRU on the trace-driven model: evict the line with max age.
    let lru_stats = lru_model.run(&trace, &mut |view| {
        let mut victim = 0u16;
        for (w, line) in view.lines.iter().enumerate() {
            if line.age_since_last_access > view.lines[victim as usize].age_since_last_access {
                victim = w as u16;
            }
        }
        victim
    });
    let mut opt_model = LlcModel::new(&llc, &trace);
    let opt_stats = opt_model.run_belady(&trace);
    println!(
        "   LRU {:5.1}%   RL agent {:5.1}%   Belady {:5.1}%  (demand hit rate)",
        lru_stats.demand_hit_rate() * 100.0,
        agent_stats.demand_hit_rate() * 100.0,
        opt_stats.demand_hit_rate() * 100.0,
    );

    println!("== 4. weight heat map (Fig. 3 column) ==");
    let mut heat = analysis::weight_heatmap(trainer.agent());
    heat.sort_by(|a, b| b.1.total_cmp(&a.1));
    for (feature, weight) in heat.iter().take(8) {
        println!("   {weight:.4}  {feature}");
    }

    println!("== 5. hill-climbing feature selection (reduced budget) ==");
    let short: cache_sim::LlcTrace = trace.records().iter().take(15_000).copied().collect();
    let rounds = analysis::hill_climb(&[(&name, &short)], &llc, 3, 1, 99);
    for round in &rounds {
        println!(
            "   + {:30}  -> demand hit rate {:5.1}%",
            round.added.to_string(),
            round.score * 100.0
        );
    }

    println!("== 6. RLR: the distilled policy ==");
    let mut rlr_sys = SingleCoreSystem::new(
        &system_cfg,
        Box::new(RlrPolicy::optimized(&system_cfg.llc)),
    );
    let mut lru_sys = SingleCoreSystem::new(
        &system_cfg,
        Box::new(TrueLru::new(&system_cfg.llc)),
    );
    let rlr_stats = rlr_sys.run(workload.stream(), 4_000_000);
    let lru_full = lru_sys.run(workload.stream(), 4_000_000);
    println!(
        "   full-system: LRU hit {:5.1}%  RLR hit {:5.1}%  RLR speedup {:+.2}%",
        lru_full.llc_hit_rate_pct(),
        rlr_stats.llc_hit_rate_pct(),
        rlr_stats.speedup_pct_over(&lru_full),
    );
    println!("   (metadata: a neural net needs ~230 KB of weights; RLR needs 16.75 KB)");
}
