//! Quickstart: run one benchmark under LRU and RLR and compare.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use rlr_repro::prelude::*;

fn main() {
    let config = SystemConfig::paper_single_core();
    let workload = spec2006("450.soplex").expect("soplex is a known benchmark");

    let mut results = Vec::new();
    for (name, policy) in [
        ("LRU", Box::new(TrueLru::new(&config.llc)) as Box<dyn ReplacementPolicy>),
        ("RLR", Box::new(RlrPolicy::optimized(&config.llc))),
    ] {
        let mut system = SingleCoreSystem::new(&config, policy);
        let mut stream = workload.stream();
        system.warm_up(&mut stream, 1_000_000);
        let stats = system.run(stream, 5_000_000);
        println!(
            "{name:4}  IPC {:.4}   LLC demand hit rate {:5.1}%   demand MPKI {:6.2}",
            stats.ipc(),
            stats.llc_hit_rate_pct(),
            stats.llc_demand_mpki()
        );
        results.push(stats);
    }
    println!(
        "\nRLR speedup over LRU: {:+.2}%  (metadata: 16.75 KB for the 2 MB LLC)",
        results[1].speedup_pct_over(&results[0])
    );
}
