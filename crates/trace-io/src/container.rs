//! The `RLT1` versioned trace container and its streaming writer/reader.
//!
//! File layout (all integers little-endian):
//!
//! ```text
//! header     "RLT1" | u16 version (=1) | u32 block_len | u16 flags (=0)
//! block*     0x01 | u32 n_records | u32 raw_len | u32 comp_len
//!                 | u64 fnv1a(payload) | payload[comp_len]
//! end        0xFF | u64 total_records | u64 chained digest
//! ```
//!
//! Each block holds up to `block_len` records, columnar-encoded
//! ([`encode_block`]) and compressed with the in-tree LZ codec; a payload
//! that does not shrink is stored raw, signalled by `comp_len == raw_len`.
//! Blocks are self-contained (delta bases restart at zero), so a reader
//! needs O(block) memory, corruption is confined to one block, and the
//! per-block checksum is verified *before* any decoding. The end frame
//! chains every block checksum into one digest and repeats the record
//! count, so truncation — even at a block boundary — is always detected.

use std::fs;
use std::io::{self, Read, Write};
use std::path::Path;

use cache_sim::{AccessKind, LlcRecord, LlcTrace, TraceFormatError};

use crate::lz;
use crate::varint;

/// Container magic: "RLT" + format generation.
pub const MAGIC: [u8; 4] = *b"RLT1";
/// Current schema version.
pub const VERSION: u16 = 1;
/// Records per block when the writer is not told otherwise. Large enough
/// that varint deltas and the LZ window have context to bite on, small
/// enough that a streaming reader holds ~100 KB, not the trace.
pub const DEFAULT_BLOCK_LEN: u32 = 4096;
/// Upper bound on `block_len` accepted from headers and callers; bounds
/// reader memory even when the header itself is hostile.
pub const MAX_BLOCK_LEN: u32 = 1 << 20;

const FRAME_BLOCK: u8 = 0x01;
const FRAME_END: u8 = 0xFF;
/// Worst-case encoded bytes per record (two max-width varints + kind
/// 2-bit share + core byte), used to bound declared block sizes.
const MAX_RECORD_BYTES: u32 = 2 * varint::MAX_VARINT_BYTES as u32 + 2;

/// Why a trace could not be read or verified.
#[derive(Debug)]
pub enum TraceIoError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The stream does not start with [`MAGIC`].
    BadMagic([u8; 4]),
    /// A future (or garbage) schema version.
    UnsupportedVersion(u16),
    /// The stream ended before the structure it promised.
    Truncated(&'static str),
    /// A structural invariant was violated; the payload names it.
    Corrupt(&'static str),
    /// A block's stored payload does not match its checksum.
    ChecksumMismatch {
        /// Zero-based index of the failing block.
        block: u64,
        /// Checksum recorded in the block frame.
        expected: u64,
        /// Checksum of the bytes actually read.
        actual: u64,
    },
    /// The end frame's totals disagree with the blocks that preceded it.
    CountMismatch {
        /// Records promised by the end frame.
        expected: u64,
        /// Records actually decoded.
        actual: u64,
    },
    /// The file is a legacy `LLCT` trace and failed *that* format's
    /// validation.
    Legacy(TraceFormatError),
}

impl std::fmt::Display for TraceIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io(e) => write!(f, "I/O error: {e}"),
            Self::BadMagic(m) => write!(f, "not an RLT1 trace (magic {m:02x?})"),
            Self::UnsupportedVersion(v) => write!(f, "unsupported trace version {v}"),
            Self::Truncated(what) => write!(f, "truncated trace: {what}"),
            Self::Corrupt(what) => write!(f, "corrupt trace: {what}"),
            Self::ChecksumMismatch { block, expected, actual } => write!(
                f,
                "block {block} checksum mismatch (stored {expected:#018x}, read {actual:#018x})"
            ),
            Self::CountMismatch { expected, actual } => {
                write!(f, "record count mismatch (end frame says {expected}, decoded {actual})")
            }
            Self::Legacy(e) => write!(f, "legacy trace: {e}"),
        }
    }
}

impl std::error::Error for TraceIoError {}

impl From<io::Error> for TraceIoError {
    fn from(e: io::Error) -> Self {
        Self::Io(e)
    }
}

/// Maps mid-structure EOF to [`TraceIoError::Truncated`] so a torn file is
/// reported as truncation, not a generic I/O error.
fn read_exact_or(r: &mut impl Read, buf: &mut [u8], what: &'static str) -> Result<(), TraceIoError> {
    r.read_exact(buf).map_err(|e| {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            TraceIoError::Truncated(what)
        } else {
            TraceIoError::Io(e)
        }
    })
}

/// FNV-1a over `bytes` (the same digest the checkpoint machinery uses).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    fnv1a_continue(0xcbf2_9ce4_8422_2325, bytes)
}

fn fnv1a_continue(mut hash: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

// ---------------------------------------------------------------------------
// Block codec: columnar delta/varint encoding of a record slice.
// ---------------------------------------------------------------------------

/// Encodes `records` into `out`: zigzag-varint PC deltas, zigzag-varint
/// line deltas, 2-bit-packed kinds (four per byte, low bits first), then
/// raw core bytes. Delta bases start at zero, keeping every block
/// independently decodable.
fn encode_block(records: &[LlcRecord], out: &mut Vec<u8>) {
    let mut prev = 0u64;
    for r in records {
        varint::put_delta(out, prev, r.pc);
        prev = r.pc;
    }
    prev = 0;
    for r in records {
        varint::put_delta(out, prev, r.line);
        prev = r.line;
    }
    for chunk in records.chunks(4) {
        let mut b = 0u8;
        for (i, r) in chunk.iter().enumerate() {
            b |= (r.kind.index() as u8) << (2 * i);
        }
        out.push(b);
    }
    for r in records {
        out.push(r.core);
    }
}

/// Decodes exactly `n` records from `buf`, appending to `records`.
fn decode_block(buf: &[u8], n: usize, records: &mut Vec<LlcRecord>) -> Result<(), TraceIoError> {
    let base = records.len();
    records.reserve(n);
    let mut pos = 0usize;
    let mut prev = 0u64;
    for _ in 0..n {
        let pc = varint::get_delta(buf, &mut pos, prev)
            .ok_or(TraceIoError::Corrupt("bad PC varint"))?;
        prev = pc;
        records.push(LlcRecord { pc, line: 0, kind: AccessKind::Load, core: 0 });
    }
    prev = 0;
    for i in 0..n {
        let line = varint::get_delta(buf, &mut pos, prev)
            .ok_or(TraceIoError::Corrupt("bad line varint"))?;
        prev = line;
        records[base + i].line = line;
    }
    let kind_bytes = n.div_ceil(4);
    if pos + kind_bytes + n != buf.len() {
        return Err(TraceIoError::Corrupt("block payload length mismatch"));
    }
    for i in 0..n {
        let b = buf[pos + i / 4];
        // Every 2-bit value is a valid AccessKind, so kinds need no
        // rejection path.
        records[base + i].kind = AccessKind::ALL[usize::from((b >> (2 * (i % 4))) & 3)];
    }
    pos += kind_bytes;
    for i in 0..n {
        records[base + i].core = buf[pos + i];
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

/// Streaming trace writer: buffers at most one block of records, so
/// capture memory is O(`block_len`) regardless of trace length.
///
/// Dropping a writer without [`TraceWriter::finish`] leaves the stream
/// without an end frame, which every reader reports as truncation — a
/// torn capture can never be mistaken for a complete one.
pub struct TraceWriter<W: Write> {
    w: W,
    block_len: usize,
    pending: Vec<LlcRecord>,
    raw_buf: Vec<u8>,
    comp_buf: Vec<u8>,
    total_records: u64,
    digest: u64,
    compressed_payload: u64,
    raw_payload: u64,
    finished: bool,
}

impl<W: Write> TraceWriter<W> {
    /// Starts a container with [`DEFAULT_BLOCK_LEN`] records per block.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from writing the header.
    pub fn new(w: W) -> Result<Self, TraceIoError> {
        Self::with_block_len(w, DEFAULT_BLOCK_LEN)
    }

    /// Starts a container with a caller-chosen block length.
    ///
    /// # Errors
    ///
    /// Returns [`TraceIoError::Corrupt`] for a zero or over-large block
    /// length, or any I/O error from writing the header.
    pub fn with_block_len(mut w: W, block_len: u32) -> Result<Self, TraceIoError> {
        if block_len == 0 || block_len > MAX_BLOCK_LEN {
            return Err(TraceIoError::Corrupt("block length out of range"));
        }
        let mut header = [0u8; 12];
        header[0..4].copy_from_slice(&MAGIC);
        header[4..6].copy_from_slice(&VERSION.to_le_bytes());
        header[6..10].copy_from_slice(&block_len.to_le_bytes());
        header[10..12].copy_from_slice(&0u16.to_le_bytes()); // flags, reserved
        w.write_all(&header)?;
        Ok(Self {
            w,
            block_len: block_len as usize,
            pending: Vec::with_capacity(block_len as usize),
            raw_buf: Vec::new(),
            comp_buf: Vec::new(),
            total_records: 0,
            // Seeding the chained digest with the header bytes makes the
            // end frame cover the header fields the magic check doesn't.
            digest: fnv1a(&header),
            compressed_payload: 0,
            raw_payload: 0,
            finished: false,
        })
    }

    /// Appends one record, flushing a block when the buffer fills.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from flushing a completed block.
    pub fn push(&mut self, record: LlcRecord) -> Result<(), TraceIoError> {
        self.pending.push(record);
        if self.pending.len() == self.block_len {
            self.flush_block()?;
        }
        Ok(())
    }

    /// Appends a slice of records (capture slices, converted traces).
    ///
    /// # Errors
    ///
    /// Returns any I/O error from flushing completed blocks.
    pub fn extend(&mut self, records: &[LlcRecord]) -> Result<(), TraceIoError> {
        for &r in records {
            self.push(r)?;
        }
        Ok(())
    }

    /// Records written so far (including any still-buffered partial block).
    pub fn records_written(&self) -> u64 {
        self.total_records + self.pending.len() as u64
    }

    fn flush_block(&mut self) -> Result<(), TraceIoError> {
        if self.pending.is_empty() {
            return Ok(());
        }
        self.raw_buf.clear();
        encode_block(&self.pending, &mut self.raw_buf);
        self.comp_buf.clear();
        lz::compress(&self.raw_buf, &mut self.comp_buf);
        // Store raw when compression does not help; `comp_len == raw_len`
        // is the stored-raw marker.
        let payload =
            if self.comp_buf.len() < self.raw_buf.len() { &self.comp_buf } else { &self.raw_buf };
        let checksum = fnv1a(payload);
        self.w.write_all(&[FRAME_BLOCK])?;
        self.w.write_all(&(self.pending.len() as u32).to_le_bytes())?;
        self.w.write_all(&(self.raw_buf.len() as u32).to_le_bytes())?;
        self.w.write_all(&(payload.len() as u32).to_le_bytes())?;
        self.w.write_all(&checksum.to_le_bytes())?;
        self.w.write_all(payload)?;
        self.digest = fnv1a_continue(self.digest, &checksum.to_le_bytes());
        self.total_records += self.pending.len() as u64;
        self.compressed_payload += payload.len() as u64;
        self.raw_payload += self.raw_buf.len() as u64;
        self.pending.clear();
        Ok(())
    }

    /// Flushes the final partial block, writes the end frame, and returns
    /// the inner writer.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from the final writes.
    pub fn finish(mut self) -> Result<W, TraceIoError> {
        self.flush_block()?;
        self.w.write_all(&[FRAME_END])?;
        self.w.write_all(&self.total_records.to_le_bytes())?;
        self.w.write_all(&self.digest.to_le_bytes())?;
        self.w.flush()?;
        self.finished = true;
        Ok(self.w)
    }
}

// ---------------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------------

/// Streaming trace reader: holds one decoded block at a time.
pub struct TraceReader<R: Read> {
    r: R,
    block_len: u32,
    version: u16,
    records: Vec<LlcRecord>,
    payload_buf: Vec<u8>,
    raw_buf: Vec<u8>,
    records_read: u64,
    blocks_read: u64,
    compressed_payload: u64,
    raw_payload: u64,
    digest: u64,
    done: bool,
}

impl<R: Read> TraceReader<R> {
    /// Opens a container, validating the header.
    ///
    /// # Errors
    ///
    /// Returns [`TraceIoError::BadMagic`], an unsupported version, an
    /// out-of-range block length, or truncation within the header.
    pub fn new(mut r: R) -> Result<Self, TraceIoError> {
        let mut magic = [0u8; 4];
        read_exact_or(&mut r, &mut magic, "header magic")?;
        if magic != MAGIC {
            return Err(TraceIoError::BadMagic(magic));
        }
        let mut buf = [0u8; 8];
        read_exact_or(&mut r, &mut buf, "header fields")?;
        let version = u16::from_le_bytes([buf[0], buf[1]]);
        if version != VERSION {
            return Err(TraceIoError::UnsupportedVersion(version));
        }
        let block_len = u32::from_le_bytes([buf[2], buf[3], buf[4], buf[5]]);
        if block_len == 0 || block_len > MAX_BLOCK_LEN {
            return Err(TraceIoError::Corrupt("block length out of range"));
        }
        let mut header = [0u8; 12];
        header[0..4].copy_from_slice(&magic);
        header[4..12].copy_from_slice(&buf);
        Ok(Self {
            r,
            block_len,
            version,
            records: Vec::new(),
            payload_buf: Vec::new(),
            raw_buf: Vec::new(),
            records_read: 0,
            blocks_read: 0,
            compressed_payload: 0,
            raw_payload: 0,
            digest: fnv1a(&header),
            done: false,
        })
    }

    /// The header's records-per-block bound.
    pub fn block_len(&self) -> u32 {
        self.block_len
    }

    /// The container's schema version.
    pub fn version(&self) -> u16 {
        self.version
    }

    /// Records decoded so far.
    pub fn records_read(&self) -> u64 {
        self.records_read
    }

    /// Blocks decoded so far.
    pub fn blocks_read(&self) -> u64 {
        self.blocks_read
    }

    /// Stored (possibly compressed) payload bytes consumed so far.
    pub fn compressed_payload_bytes(&self) -> u64 {
        self.compressed_payload
    }

    /// Pre-compression payload bytes represented so far.
    pub fn raw_payload_bytes(&self) -> u64 {
        self.raw_payload
    }

    /// Decodes the next block, returning its records, or `Ok(None)` after
    /// a valid end frame. The returned slice borrows the reader's reusable
    /// buffer; memory stays O(block) for any trace length.
    ///
    /// # Errors
    ///
    /// Returns checksum, structure, count, or truncation errors; EOF
    /// *before* the end frame is [`TraceIoError::Truncated`].
    pub fn next_block(&mut self) -> Result<Option<&[LlcRecord]>, TraceIoError> {
        if self.done {
            return Ok(None);
        }
        let mut tag = [0u8; 1];
        read_exact_or(&mut self.r, &mut tag, "frame tag (missing end frame)")?;
        match tag[0] {
            FRAME_BLOCK => {
                let mut head = [0u8; 20];
                read_exact_or(&mut self.r, &mut head, "block header")?;
                let n_records = u32::from_le_bytes(head[0..4].try_into().expect("4 bytes"));
                let raw_len = u32::from_le_bytes(head[4..8].try_into().expect("4 bytes"));
                let comp_len = u32::from_le_bytes(head[8..12].try_into().expect("4 bytes"));
                let checksum = u64::from_le_bytes(head[12..20].try_into().expect("8 bytes"));
                if n_records == 0 || n_records > self.block_len {
                    return Err(TraceIoError::Corrupt("block record count out of range"));
                }
                // Bound both buffers before allocating: a hostile frame
                // cannot demand more than block_len × worst-case bytes.
                if raw_len > n_records * MAX_RECORD_BYTES {
                    return Err(TraceIoError::Corrupt("block raw length out of range"));
                }
                if comp_len > raw_len {
                    return Err(TraceIoError::Corrupt("compressed length exceeds raw length"));
                }
                self.payload_buf.resize(comp_len as usize, 0);
                read_exact_or(&mut self.r, &mut self.payload_buf, "block payload")?;
                let actual = fnv1a(&self.payload_buf);
                if actual != checksum {
                    return Err(TraceIoError::ChecksumMismatch {
                        block: self.blocks_read,
                        expected: checksum,
                        actual,
                    });
                }
                let raw = if comp_len == raw_len {
                    &self.payload_buf // stored uncompressed
                } else {
                    self.raw_buf.clear();
                    lz::decompress(&self.payload_buf, raw_len as usize, &mut self.raw_buf)
                        .map_err(TraceIoError::Corrupt)?;
                    &self.raw_buf
                };
                self.records.clear();
                decode_block(raw, n_records as usize, &mut self.records)?;
                self.digest = fnv1a_continue(self.digest, &checksum.to_le_bytes());
                self.records_read += u64::from(n_records);
                self.blocks_read += 1;
                self.compressed_payload += u64::from(comp_len);
                self.raw_payload += u64::from(raw_len);
                Ok(Some(&self.records))
            }
            FRAME_END => {
                let mut tail = [0u8; 16];
                read_exact_or(&mut self.r, &mut tail, "end frame")?;
                let total = u64::from_le_bytes(tail[0..8].try_into().expect("8 bytes"));
                let digest = u64::from_le_bytes(tail[8..16].try_into().expect("8 bytes"));
                if total != self.records_read {
                    return Err(TraceIoError::CountMismatch {
                        expected: total,
                        actual: self.records_read,
                    });
                }
                if digest != self.digest {
                    return Err(TraceIoError::Corrupt("chained block digest mismatch"));
                }
                self.done = true;
                Ok(None)
            }
            _ => Err(TraceIoError::Corrupt("unknown frame tag")),
        }
    }

    /// Drains the remaining blocks into an in-memory [`LlcTrace`] (for
    /// consumers that need random access, e.g. Belady's next-use table).
    ///
    /// # Errors
    ///
    /// Propagates any [`TraceReader::next_block`] error.
    pub fn read_to_trace(mut self) -> Result<LlcTrace, TraceIoError> {
        let mut all: Vec<LlcRecord> = Vec::new();
        while let Some(block) = self.next_block()? {
            all.extend_from_slice(block);
        }
        Ok(all.into_iter().collect())
    }
}

// ---------------------------------------------------------------------------
// Whole-container summaries, file helpers, legacy interop
// ---------------------------------------------------------------------------

/// What a full verifying scan of a container found.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceSummary {
    /// Schema version from the header.
    pub version: u16,
    /// Records-per-block bound from the header.
    pub block_len: u32,
    /// Blocks decoded.
    pub blocks: u64,
    /// Records decoded.
    pub records: u64,
    /// Stored payload bytes (after compression).
    pub compressed_payload: u64,
    /// Payload bytes before compression.
    pub raw_payload: u64,
    /// Records per [`AccessKind`], indexed by [`AccessKind::index`].
    pub kind_counts: [u64; 4],
}

impl TraceSummary {
    /// Equivalent size of the legacy fixed-width (`LLCT`) encoding,
    /// the baseline the compression ratio is quoted against.
    pub fn fixed_width_bytes(&self) -> u64 {
        12 + 18 * self.records
    }

    /// Stored payload bytes as a percentage of the fixed-width encoding.
    pub fn compressed_pct_of_fixed(&self) -> f64 {
        self.compressed_payload as f64 * 100.0 / self.fixed_width_bytes().max(1) as f64
    }
}

impl std::fmt::Display for TraceSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "format       RLT version {} ({} records/block)", self.version, self.block_len)?;
        writeln!(f, "records      {} in {} blocks", self.records, self.blocks)?;
        writeln!(
            f,
            "kinds        {} LD, {} RFO, {} PF, {} WB",
            self.kind_counts[0], self.kind_counts[1], self.kind_counts[2], self.kind_counts[3]
        )?;
        write!(
            f,
            "payload      {} bytes compressed / {} encoded / {} fixed-width ({:.1}% of fixed)",
            self.compressed_payload,
            self.raw_payload,
            self.fixed_width_bytes(),
            self.compressed_pct_of_fixed()
        )
    }
}

/// Reads and verifies every block (checksums, structure, end-frame
/// totals), returning the summary. This is `trace verify`'s engine.
///
/// # Errors
///
/// Propagates the first error the streaming reader reports.
pub fn scan<R: Read>(r: R) -> Result<TraceSummary, TraceIoError> {
    let mut reader = TraceReader::new(r)?;
    let mut kind_counts = [0u64; 4];
    while let Some(block) = reader.next_block()? {
        for rec in block {
            kind_counts[rec.kind.index()] += 1;
        }
    }
    Ok(TraceSummary {
        version: reader.version(),
        block_len: reader.block_len(),
        blocks: reader.blocks_read(),
        records: reader.records_read(),
        compressed_payload: reader.compressed_payload_bytes(),
        raw_payload: reader.raw_payload_bytes(),
        kind_counts,
    })
}

/// On-disk trace flavours [`sniff_format`] can tell apart.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceFormat {
    /// This crate's compressed container.
    Rlt,
    /// The legacy fixed-width `LLCT` format
    /// ([`LlcTrace::write_to`]/[`LlcTrace::read_from`]).
    Legacy,
}

/// Identifies a trace file by its magic.
///
/// # Errors
///
/// Returns [`TraceIoError::BadMagic`] for anything else, or truncation
/// for a file shorter than four bytes.
pub fn sniff_format(path: &Path) -> Result<TraceFormat, TraceIoError> {
    let mut f = fs::File::open(path)?;
    let mut magic = [0u8; 4];
    read_exact_or(&mut f, &mut magic, "file magic")?;
    match &magic {
        b"RLT1" => Ok(TraceFormat::Rlt),
        b"LLCT" => Ok(TraceFormat::Legacy),
        _ => Err(TraceIoError::BadMagic(magic)),
    }
}

/// Loads a whole trace from either format, sniffing the magic.
///
/// # Errors
///
/// Returns format, validation, or I/O errors from whichever decoder ran.
pub fn read_trace_file(path: &Path) -> Result<LlcTrace, TraceIoError> {
    match sniff_format(path)? {
        TraceFormat::Rlt => {
            TraceReader::new(io::BufReader::new(fs::File::open(path)?))?.read_to_trace()
        }
        TraceFormat::Legacy => LlcTrace::read_from(io::BufReader::new(fs::File::open(path)?))
            .map_err(TraceIoError::Legacy),
    }
}

/// Writes `trace` to `path` as an `RLT1` container.
///
/// # Errors
///
/// Returns any container or I/O error.
pub fn write_trace_file(path: &Path, trace: &LlcTrace, block_len: u32) -> Result<(), TraceIoError> {
    if let Some(dir) = path.parent() {
        fs::create_dir_all(dir)?;
    }
    let mut w = TraceWriter::with_block_len(io::BufWriter::new(fs::File::create(path)?), block_len)?;
    w.extend(trace.records())?;
    w.finish()?;
    Ok(())
}

/// Encodes `trace` as an in-memory `RLT1` container (tests, benches,
/// atomic-publish paths that hand bytes to `write_atomic`).
///
/// # Errors
///
/// Never fails in practice (`Vec` writes are infallible); the signature
/// matches the streaming writer's.
pub fn encode_trace(trace: &LlcTrace, block_len: u32) -> Result<Vec<u8>, TraceIoError> {
    let mut w = TraceWriter::with_block_len(Vec::new(), block_len)?;
    w.extend(trace.records())?;
    w.finish()
}

/// Streams a synthetic workload's demand-access stream into `writer` as
/// trace records, without running the cache hierarchy: `line = addr >> 6`,
/// loads vs RFOs by the entry's store flag, core 0. This is the *raw*
/// reference stream of a workload (every demand touch), as opposed to an
/// LLC capture, which only sees accesses the private levels missed.
///
/// # Errors
///
/// Returns any writer error.
pub fn export_workload<W: Write>(
    workload: &workloads::Workload,
    max_records: u64,
    writer: &mut TraceWriter<W>,
) -> Result<u64, TraceIoError> {
    let mut written = 0u64;
    for entry in workload.stream() {
        if written == max_records {
            break;
        }
        let kind = if entry.is_store { AccessKind::Rfo } else { AccessKind::Load };
        writer.push(LlcRecord { pc: entry.pc, line: entry.addr >> 6, kind, core: 0 })?;
        written += 1;
    }
    Ok(written)
}

// ---------------------------------------------------------------------------
// Salvage: best-effort recovery from a damaged container
// ---------------------------------------------------------------------------

/// What the salvage pass found for one block frame, in file order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BlockOutcome {
    /// Checksum verified and the payload decoded; the block's records are
    /// in the salvaged output.
    Recovered {
        /// Records carried by this block.
        records: u32,
    },
    /// The stored payload does not match its checksum. The frame header
    /// was plausible, so the block was skipped cleanly (framing holds).
    ChecksumFailed {
        /// Checksum recorded in the block frame.
        expected: u64,
        /// Checksum of the bytes actually on disk.
        actual: u64,
    },
    /// Checksum verified but the payload would not decompress/decode —
    /// the writer itself emitted garbage. Skipped like a checksum failure.
    Undecodable(&'static str),
}

/// How the salvage scan ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TailStatus {
    /// A structurally valid end frame whose totals match every *declared*
    /// block (recovered or skipped): the file's framing is intact end to
    /// end.
    CleanEnd,
    /// An end frame was found but its record total or chained digest
    /// disagrees with the frames that preceded it.
    EndFrameMismatch(&'static str),
    /// The stream ended mid-structure; the payload names the structure
    /// that was cut short (`"missing end frame"` for a clean cut at a
    /// frame boundary).
    Truncated(&'static str),
    /// A frame header was implausible (unknown tag, out-of-range sizes).
    /// Frame lengths can no longer be trusted, so the scan cannot skip
    /// forward; everything from this offset on is unrecoverable.
    FramingLost(&'static str),
}

/// Everything a salvage pass learned about a damaged container.
#[derive(Debug)]
pub struct SalvageReport {
    /// Per-block outcomes, in file order, up to where framing held.
    pub blocks: Vec<BlockOutcome>,
    /// Blocks whose records made it into the salvaged output.
    pub recovered_blocks: u64,
    /// Records in the salvaged output.
    pub recovered_records: u64,
    /// Blocks skipped (checksum failure or undecodable payload).
    pub damaged_blocks: u64,
    /// How the scan ended.
    pub tail: TailStatus,
}

impl SalvageReport {
    /// `true` when nothing was wrong: every block recovered and the end
    /// frame checked out. (`trace verify --repair` uses this to say "no
    /// repair needed".)
    pub fn is_intact(&self) -> bool {
        self.damaged_blocks == 0 && self.tail == TailStatus::CleanEnd
    }
}

impl std::fmt::Display for SalvageReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "salvage      {} of {} blocks recovered ({} records)",
            self.recovered_blocks,
            self.blocks.len(),
            self.recovered_records
        )?;
        for (i, outcome) in self.blocks.iter().enumerate() {
            match outcome {
                BlockOutcome::Recovered { .. } => {}
                BlockOutcome::ChecksumFailed { expected, actual } => writeln!(
                    f,
                    "  block {i}: checksum mismatch (stored {expected:#018x}, read {actual:#018x})"
                )?,
                BlockOutcome::Undecodable(what) => {
                    writeln!(f, "  block {i}: undecodable payload ({what})")?
                }
            }
        }
        match self.tail {
            TailStatus::CleanEnd => write!(f, "tail         clean end frame"),
            TailStatus::EndFrameMismatch(what) => {
                write!(f, "tail         end frame disagrees with blocks ({what})")
            }
            TailStatus::Truncated(what) => write!(f, "tail         truncated: {what}"),
            TailStatus::FramingLost(what) => {
                write!(f, "tail         framing lost: {what} (rest of file unrecoverable)")
            }
        }
    }
}

/// Reads to EOF-or-filled: `Ok(true)` when `buf` was filled, `Ok(false)`
/// on EOF anywhere inside it. Salvage treats both as data, never as an
/// abort — only real I/O errors propagate.
fn read_or_eof(r: &mut impl Read, buf: &mut [u8]) -> io::Result<bool> {
    match r.read_exact(buf) {
        Ok(()) => Ok(true),
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => Ok(false),
        Err(e) => Err(e),
    }
}

/// Best-effort recovery of a damaged `RLT1` stream: walks the frames,
/// keeps every block whose checksum verifies and payload decodes, skips
/// damaged blocks (their known `comp_len` preserves framing), stops at a
/// truncated tail or lost framing, and rewrites the survivors as a fresh,
/// clean container (same `block_len`) into `out`.
///
/// Returns the per-block [`SalvageReport`] and the finished output writer.
/// The salvaged container always verifies; what it *contains* is exactly
/// the report's `recovered_records`.
///
/// # Errors
///
/// Only damage that leaves nothing to salvage is an error: a header that
/// is not a readable `RLT1` header ([`TraceIoError::BadMagic`],
/// [`TraceIoError::UnsupportedVersion`], out-of-range block length,
/// truncation inside the 12 header bytes) — plus real I/O errors from
/// either stream. All *content* damage is data, reported, never `Err`.
pub fn salvage<R: Read, W: Write>(mut r: R, out: W) -> Result<(SalvageReport, W), TraceIoError> {
    // Header: parsed exactly like TraceReader::new; damage here is fatal
    // because block_len (and the digest seed) come from it.
    let mut header = [0u8; 12];
    read_exact_or(&mut r, &mut header[0..4], "header magic")?;
    let magic: [u8; 4] = header[0..4].try_into().expect("4 bytes");
    if magic != MAGIC {
        return Err(TraceIoError::BadMagic(magic));
    }
    read_exact_or(&mut r, &mut header[4..12], "header fields")?;
    let version = u16::from_le_bytes([header[4], header[5]]);
    if version != VERSION {
        return Err(TraceIoError::UnsupportedVersion(version));
    }
    let block_len = u32::from_le_bytes(header[6..10].try_into().expect("4 bytes"));
    if block_len == 0 || block_len > MAX_BLOCK_LEN {
        return Err(TraceIoError::Corrupt("block length out of range"));
    }

    let mut writer = TraceWriter::with_block_len(out, block_len)?;
    let mut report = SalvageReport {
        blocks: Vec::new(),
        recovered_blocks: 0,
        recovered_records: 0,
        damaged_blocks: 0,
        tail: TailStatus::CleanEnd,
    };
    // The original end frame covers *every* block it was written after —
    // damaged ones included — so judge it against the declared totals and
    // the stored checksums, not against what we recovered.
    let mut declared_records = 0u64;
    let mut declared_digest = fnv1a(&header);
    let mut payload = Vec::new();
    let mut raw = Vec::new();
    let mut records: Vec<LlcRecord> = Vec::new();

    report.tail = loop {
        let mut tag = [0u8; 1];
        if !read_or_eof(&mut r, &mut tag).map_err(TraceIoError::Io)? {
            break TailStatus::Truncated("missing end frame");
        }
        match tag[0] {
            FRAME_BLOCK => {
                let mut head = [0u8; 20];
                if !read_or_eof(&mut r, &mut head).map_err(TraceIoError::Io)? {
                    break TailStatus::Truncated("block header");
                }
                let n_records = u32::from_le_bytes(head[0..4].try_into().expect("4 bytes"));
                let raw_len = u32::from_le_bytes(head[4..8].try_into().expect("4 bytes"));
                let comp_len = u32::from_le_bytes(head[8..12].try_into().expect("4 bytes"));
                let checksum = u64::from_le_bytes(head[12..20].try_into().expect("8 bytes"));
                // The same plausibility bounds the reader enforces. Beyond
                // them comp_len is untrustworthy, so the frame can't even
                // be skipped — framing is gone.
                if n_records == 0 || n_records > block_len {
                    break TailStatus::FramingLost("block record count out of range");
                }
                if raw_len > n_records * MAX_RECORD_BYTES {
                    break TailStatus::FramingLost("block raw length out of range");
                }
                if comp_len > raw_len {
                    break TailStatus::FramingLost("compressed length exceeds raw length");
                }
                payload.resize(comp_len as usize, 0);
                if !read_or_eof(&mut r, &mut payload).map_err(TraceIoError::Io)? {
                    break TailStatus::Truncated("block payload");
                }
                declared_records += u64::from(n_records);
                declared_digest = fnv1a_continue(declared_digest, &checksum.to_le_bytes());
                let actual = fnv1a(&payload);
                if actual != checksum {
                    report.blocks.push(BlockOutcome::ChecksumFailed { expected: checksum, actual });
                    report.damaged_blocks += 1;
                    continue;
                }
                let decoded: Result<&[u8], &'static str> = if comp_len == raw_len {
                    Ok(&payload)
                } else {
                    raw.clear();
                    lz::decompress(&payload, raw_len as usize, &mut raw).map(|()| &raw[..])
                };
                records.clear();
                let outcome = decoded.and_then(|buf| {
                    decode_block(buf, n_records as usize, &mut records).map_err(|e| match e {
                        TraceIoError::Corrupt(what) => what,
                        _ => "block decode failed",
                    })
                });
                match outcome {
                    Ok(()) => {
                        writer.extend(&records)?;
                        report.blocks.push(BlockOutcome::Recovered { records: n_records });
                        report.recovered_blocks += 1;
                        report.recovered_records += u64::from(n_records);
                    }
                    Err(what) => {
                        report.blocks.push(BlockOutcome::Undecodable(what));
                        report.damaged_blocks += 1;
                    }
                }
            }
            FRAME_END => {
                let mut tail = [0u8; 16];
                if !read_or_eof(&mut r, &mut tail).map_err(TraceIoError::Io)? {
                    break TailStatus::Truncated("end frame");
                }
                let total = u64::from_le_bytes(tail[0..8].try_into().expect("8 bytes"));
                let digest = u64::from_le_bytes(tail[8..16].try_into().expect("8 bytes"));
                break if total != declared_records {
                    TailStatus::EndFrameMismatch("record total")
                } else if digest != declared_digest {
                    TailStatus::EndFrameMismatch("chained digest")
                } else {
                    TailStatus::CleanEnd
                };
            }
            _ => break TailStatus::FramingLost("unknown frame tag"),
        }
    };
    let out = writer.finish()?;
    Ok((report, out))
}

/// [`salvage`] over a file, returning the report and the clean container
/// bytes (for the caller to publish atomically).
///
/// # Errors
///
/// Same conditions as [`salvage`], plus failure to open the file.
pub fn salvage_file(path: &Path) -> Result<(SalvageReport, Vec<u8>), TraceIoError> {
    salvage(io::BufReader::new(fs::File::open(path)?), Vec::new())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(n: u64) -> LlcTrace {
        (0..n)
            .map(|i| LlcRecord {
                pc: 0x400_000 + (i % 37) * 4,
                line: 0x8000 + (i * 7) % 513,
                kind: AccessKind::ALL[(i % 4) as usize],
                core: (i % 3) as u8,
            })
            .collect()
    }

    #[test]
    fn round_trips_across_block_boundaries() {
        for n in [0u64, 1, 63, 64, 65, 1000] {
            let trace = sample(n);
            let bytes = encode_trace(&trace, 64).expect("encode");
            let back = TraceReader::new(bytes.as_slice())
                .expect("header")
                .read_to_trace()
                .expect("decode");
            assert_eq!(trace, back, "n = {n}");
        }
    }

    #[test]
    fn reader_is_streaming_with_bounded_blocks() {
        let trace = sample(300);
        let bytes = encode_trace(&trace, 64).expect("encode");
        let mut reader = TraceReader::new(bytes.as_slice()).expect("header");
        let mut sizes = Vec::new();
        while let Some(block) = reader.next_block().expect("block") {
            sizes.push(block.len());
        }
        assert_eq!(sizes, vec![64, 64, 64, 64, 44]);
        assert_eq!(reader.records_read(), 300);
        // Idempotent after the end frame.
        assert!(reader.next_block().expect("done").is_none());
    }

    #[test]
    fn truncation_anywhere_is_detected() {
        let trace = sample(130);
        let bytes = encode_trace(&trace, 64).expect("encode");
        for cut in 0..bytes.len() {
            let result =
                TraceReader::new(&bytes[..cut]).and_then(TraceReader::read_to_trace);
            assert!(result.is_err(), "prefix of {cut} bytes must not verify");
        }
    }

    #[test]
    fn single_byte_corruption_is_detected() {
        let trace = sample(200);
        let bytes = encode_trace(&trace, 64).expect("encode");
        // Flip one byte at a time; every position must fail verification
        // (header, frame headers, payloads, end frame — all covered).
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x10;
            let result = TraceReader::new(bad.as_slice()).and_then(|mut r| {
                while let Some(_) = r.next_block()? {}
                Ok(())
            });
            assert!(result.is_err(), "flipping byte {i} must not verify");
        }
    }

    #[test]
    fn scan_reports_counts_and_sizes() {
        let trace = sample(256);
        let bytes = encode_trace(&trace, 64).expect("encode");
        let summary = scan(bytes.as_slice()).expect("scan");
        assert_eq!(summary.records, 256);
        assert_eq!(summary.blocks, 4);
        assert_eq!(summary.kind_counts, [64, 64, 64, 64]);
        assert_eq!(summary.fixed_width_bytes(), 12 + 18 * 256);
        assert!(summary.compressed_payload <= summary.raw_payload);
    }

    #[test]
    fn hostile_headers_cannot_demand_memory() {
        // A block frame claiming u32::MAX records must be rejected from
        // its header alone, before any allocation.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        bytes.extend_from_slice(&VERSION.to_le_bytes());
        bytes.extend_from_slice(&64u32.to_le_bytes());
        bytes.extend_from_slice(&0u16.to_le_bytes());
        bytes.push(FRAME_BLOCK);
        bytes.extend_from_slice(&u32::MAX.to_le_bytes()); // n_records
        bytes.extend_from_slice(&u32::MAX.to_le_bytes()); // raw_len
        bytes.extend_from_slice(&u32::MAX.to_le_bytes()); // comp_len
        bytes.extend_from_slice(&0u64.to_le_bytes());
        let mut reader = TraceReader::new(bytes.as_slice()).expect("header");
        assert!(matches!(reader.next_block(), Err(TraceIoError::Corrupt(_))));
    }

    #[test]
    fn salvage_of_a_clean_container_is_intact_and_lossless() {
        let trace = sample(300);
        let bytes = encode_trace(&trace, 64).expect("encode");
        let (report, out) = salvage(bytes.as_slice(), Vec::new()).expect("salvage");
        assert!(report.is_intact());
        assert_eq!(report.recovered_blocks, 5);
        assert_eq!(report.recovered_records, 300);
        assert_eq!(report.damaged_blocks, 0);
        assert_eq!(report.tail, TailStatus::CleanEnd);
        let back = TraceReader::new(out.as_slice()).expect("header").read_to_trace().expect("ok");
        assert_eq!(back, trace);
    }

    #[test]
    fn salvage_skips_a_payload_corrupted_block_and_keeps_the_rest() {
        let trace = sample(300);
        let mut bytes = encode_trace(&trace, 64).expect("encode");
        // Corrupt one payload byte of block 0. Its payload starts right
        // after the 12-byte header and 21-byte frame header; its length is
        // the frame's comp_len field (bytes 21..25 of the file).
        let comp_len =
            u32::from_le_bytes(bytes[12 + 9..12 + 13].try_into().expect("4 bytes")) as usize;
        let target = 12 + 21 + comp_len / 2;
        bytes[target] ^= 0xFF;
        let (report, out) = salvage(bytes.as_slice(), Vec::new()).expect("salvage");
        assert_eq!(report.blocks.len(), 5);
        assert!(matches!(report.blocks[0], BlockOutcome::ChecksumFailed { .. }));
        assert_eq!(report.recovered_blocks, 4);
        assert_eq!(report.recovered_records, 300 - 64);
        assert_eq!(report.damaged_blocks, 1);
        // The end frame still matches its *declared* blocks: framing is
        // intact even though one payload is rotten.
        assert_eq!(report.tail, TailStatus::CleanEnd);
        assert!(!report.is_intact());
        // The salvaged output is a clean, verifying container holding
        // exactly the surviving records.
        let summary = scan(out.as_slice()).expect("salvaged output verifies");
        assert_eq!(summary.records, 300 - 64);
        let back = TraceReader::new(out.as_slice()).expect("header").read_to_trace().expect("ok");
        assert_eq!(back.records(), &trace.records()[64..]);
    }

    #[test]
    fn salvage_reports_a_truncated_tail_and_keeps_the_prefix() {
        let trace = sample(300);
        let bytes = encode_trace(&trace, 64).expect("encode");
        // Cut inside the last block's payload.
        let cut = bytes.len() - 30;
        let (report, out) = salvage(&bytes[..cut], Vec::new()).expect("salvage");
        assert!(matches!(report.tail, TailStatus::Truncated(_)));
        assert!(report.recovered_records >= 64, "intact prefix blocks recovered");
        let summary = scan(out.as_slice()).expect("salvaged output verifies");
        assert_eq!(summary.records, report.recovered_records);
    }

    #[test]
    fn salvage_rejects_only_unusable_headers() {
        assert!(matches!(
            salvage(&b"NOPE"[..], Vec::new()),
            Err(TraceIoError::BadMagic(_))
        ));
        assert!(matches!(
            salvage(&b"RL"[..], Vec::new()),
            Err(TraceIoError::Truncated(_))
        ));
    }

    #[test]
    fn bad_magic_and_version_are_rejected() {
        assert!(matches!(
            TraceReader::new(&b"NOPE"[..]),
            Err(TraceIoError::BadMagic(_))
        ));
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        bytes.extend_from_slice(&9u16.to_le_bytes());
        bytes.extend_from_slice(&64u32.to_le_bytes());
        bytes.extend_from_slice(&0u16.to_le_bytes());
        assert!(matches!(
            TraceReader::new(bytes.as_slice()),
            Err(TraceIoError::UnsupportedVersion(9))
        ));
    }
}
