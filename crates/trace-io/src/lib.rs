//! Streaming compressed LLC-trace container (`RLT1`).
//!
//! The simulator's legacy `LLCT` format stores fixed-width 18-byte
//! records and must be fully resident to write or read. This crate adds a
//! versioned block container around the same [`cache_sim::LlcRecord`]
//! stream: per-block delta/varint columnar encoding, an in-tree LZ
//! compressor ([`lz`]), FNV-1a checksums on every block plus a chained
//! end-frame digest, and streaming [`TraceWriter`]/[`TraceReader`] pairs
//! whose memory is bounded by the block length — capture once, replay
//! many, at any trace length.
//!
//! Everything is hand-rolled in-tree; the crate adds no external
//! dependencies, matching the workspace's hermetic-build policy.

pub mod container;
pub mod lz;
pub mod mmap;
pub mod varint;

pub use container::{
    encode_trace, fnv1a, read_trace_file, salvage, salvage_file, scan, sniff_format,
    write_trace_file, export_workload, BlockOutcome, SalvageReport, TailStatus, TraceFormat,
    TraceIoError, TraceReader, TraceSummary, TraceWriter, DEFAULT_BLOCK_LEN, MAX_BLOCK_LEN,
};
pub use mmap::MappedContainer;
