//! An in-tree byte-oriented LZ compressor for trace blocks.
//!
//! LZ4-style sequence stream: each sequence is a token byte packing the
//! literal length and match length into nibbles (15 escapes to 255-run
//! extension bytes), the literals, then a 2-byte little-endian backwards
//! offset and a match of at least [`MIN_MATCH`] bytes. The final sequence
//! carries literals only. The match finder is a single-probe hash table
//! over 4-byte windows with greedy forward extension — a few lines of
//! state, no allocation beyond the table, and fast enough that replay
//! stays simulator-bound.
//!
//! The decompressor trusts nothing: offsets, lengths, and the total
//! output size are validated against the caller-supplied expected length,
//! so corrupt input yields an error instead of unbounded allocation.

/// Shortest match worth encoding (token + offset cost 3 bytes).
pub const MIN_MATCH: usize = 4;
/// Largest representable backwards offset (2-byte field; 0 is invalid).
const MAX_OFFSET: usize = u16::MAX as usize;
const HASH_BITS: u32 = 14;

fn hash4(bytes: &[u8]) -> usize {
    let seq = u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]);
    (seq.wrapping_mul(2_654_435_761) >> (32 - HASH_BITS)) as usize
}

fn put_len(out: &mut Vec<u8>, mut extra: usize) {
    while extra >= 255 {
        out.push(255);
        extra -= 255;
    }
    out.push(extra as u8);
}

fn emit(out: &mut Vec<u8>, literals: &[u8], match_len: usize, offset: usize) {
    let lit_nib = literals.len().min(15);
    let match_nib = if match_len == 0 { 0 } else { (match_len - MIN_MATCH).min(15) };
    out.push(((lit_nib as u8) << 4) | match_nib as u8);
    if lit_nib == 15 {
        put_len(out, literals.len() - 15);
    }
    out.extend_from_slice(literals);
    if match_len > 0 {
        out.extend_from_slice(&(offset as u16).to_le_bytes());
        if match_nib == 15 {
            put_len(out, match_len - MIN_MATCH - 15);
        }
    }
}

/// Appends the compressed form of `input` to `out`.
///
/// The output is self-delimiting only together with the original length;
/// the container stores both, plus a checksum, in the block frame.
pub fn compress(input: &[u8], out: &mut Vec<u8>) {
    let mut table = vec![usize::MAX; 1 << HASH_BITS];
    let mut anchor = 0usize;
    let mut pos = 0usize;
    // The last MIN_MATCH-1 bytes can never start a match.
    let search_end = input.len().saturating_sub(MIN_MATCH - 1);
    while pos < search_end {
        let h = hash4(&input[pos..]);
        let candidate = table[h];
        table[h] = pos;
        let valid = candidate != usize::MAX
            && pos - candidate <= MAX_OFFSET
            && input[candidate..candidate + MIN_MATCH] == input[pos..pos + MIN_MATCH];
        if !valid {
            pos += 1;
            continue;
        }
        let mut len = MIN_MATCH;
        while pos + len < input.len() && input[candidate + len] == input[pos + len] {
            len += 1;
        }
        emit(out, &input[anchor..pos], len, pos - candidate);
        pos += len;
        anchor = pos;
    }
    emit(out, &input[anchor..], 0, 0);
}

fn get_len(input: &[u8], pos: &mut usize, nibble: usize) -> Result<usize, &'static str> {
    let mut len = nibble;
    if nibble == 15 {
        loop {
            let b = *input.get(*pos).ok_or("truncated length extension")?;
            *pos += 1;
            len += usize::from(b);
            if b < 255 {
                break;
            }
        }
    }
    Ok(len)
}

/// Appends exactly `expected_len` decompressed bytes to `out`.
///
/// # Errors
///
/// Returns a description of the first structural violation: truncated
/// sequences, zero or out-of-window offsets, or an output length other
/// than `expected_len`. `out` is restored to its original length on error.
pub fn decompress(
    input: &[u8],
    expected_len: usize,
    out: &mut Vec<u8>,
) -> Result<(), &'static str> {
    let base = out.len();
    let result = decompress_inner(input, expected_len, out, base);
    if result.is_err() {
        out.truncate(base);
    }
    result
}

fn decompress_inner(
    input: &[u8],
    expected_len: usize,
    out: &mut Vec<u8>,
    base: usize,
) -> Result<(), &'static str> {
    let mut pos = 0usize;
    out.reserve(expected_len);
    loop {
        let token = *input.get(pos).ok_or("truncated token")?;
        pos += 1;
        let lit_len = get_len(input, &mut pos, usize::from(token >> 4))?;
        let lit_end = pos.checked_add(lit_len).ok_or("literal length overflow")?;
        if lit_end > input.len() {
            return Err("truncated literals");
        }
        if out.len() - base + lit_len > expected_len {
            return Err("output exceeds declared length");
        }
        out.extend_from_slice(&input[pos..lit_end]);
        pos = lit_end;
        if pos == input.len() {
            break; // final, literal-only sequence
        }
        if pos + 2 > input.len() {
            return Err("truncated offset");
        }
        let offset = usize::from(u16::from_le_bytes([input[pos], input[pos + 1]]));
        pos += 2;
        let match_len = MIN_MATCH + get_len(input, &mut pos, usize::from(token & 0x0F))?;
        if offset == 0 || offset > out.len() - base {
            return Err("match offset outside window");
        }
        if out.len() - base + match_len > expected_len {
            return Err("output exceeds declared length");
        }
        // Overlapping copies (offset < match_len) replicate the recent
        // window byte-by-byte, exactly as the compressor assumed.
        let mut src = out.len() - offset;
        for _ in 0..match_len {
            let b = out[src];
            out.push(b);
            src += 1;
        }
    }
    if out.len() - base != expected_len {
        return Err("output shorter than declared length");
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[u8]) -> Vec<u8> {
        let mut comp = Vec::new();
        compress(data, &mut comp);
        let mut back = Vec::new();
        decompress(&comp, data.len(), &mut back).expect("valid stream");
        assert_eq!(back, data);
        comp
    }

    #[test]
    fn empty_and_tiny_inputs_round_trip() {
        roundtrip(b"");
        roundtrip(b"a");
        roundtrip(b"abc");
    }

    #[test]
    fn repetitive_input_compresses() {
        let data: Vec<u8> = (0..4096u32).map(|i| (i % 16) as u8).collect();
        let comp = roundtrip(&data);
        assert!(comp.len() * 4 < data.len(), "16-byte cycle must shrink: {}", comp.len());
    }

    #[test]
    fn incompressible_input_still_round_trips() {
        // xorshift noise defeats the 4-byte match finder.
        let mut state = 0x9E37_79B9_u32;
        let data: Vec<u8> = (0..2048)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 17;
                state ^= state << 5;
                state as u8
            })
            .collect();
        roundtrip(&data);
    }

    #[test]
    fn long_runs_exercise_length_extensions() {
        let mut data = vec![7u8; 5000]; // match length ≫ 15 + 255
        data.extend(std::iter::repeat(0u8).take(16).chain(1..=255u8).cycle().take(600));
        roundtrip(&data);
    }

    #[test]
    fn corrupt_streams_fail_without_panicking() {
        let data: Vec<u8> = (0..512u32).map(|i| (i / 7) as u8).collect();
        let mut comp = Vec::new();
        compress(&data, &mut comp);
        // Wrong expected length (both directions).
        let mut out = Vec::new();
        assert!(decompress(&comp, data.len() + 1, &mut out).is_err());
        assert!(decompress(&comp, data.len().saturating_sub(1), &mut out).is_err());
        // Truncation at every prefix must error, never panic or hang.
        for cut in 0..comp.len() {
            let _ = decompress(&comp[..cut], data.len(), &mut out);
            assert!(out.is_empty(), "failed decompress must restore the output buffer");
        }
        // A zero offset is structurally invalid.
        let bad = [0x40, b'a', b'b', b'c', b'd', 0x00, 0x00];
        assert!(decompress(&bad, 8, &mut out).is_err());
    }
}
