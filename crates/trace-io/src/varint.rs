//! LEB128 varints and zigzag mapping for delta-encoded record fields.
//!
//! Trace fields (PCs, line addresses) are strongly locally correlated:
//! consecutive records differ by small signed strides. Each field is
//! stored as the zigzag-mapped difference from its predecessor, so a
//! stride of ±1 line costs one byte instead of eight.

/// Maps a signed delta onto an unsigned value with small magnitudes first
/// (`0, -1, 1, -2, 2, ...`), so varint encoding stays short for deltas of
/// either sign.
pub fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
pub fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Longest encoding of a `u64` varint (ten 7-bit groups cover 64 bits).
pub const MAX_VARINT_BYTES: usize = 10;

/// Appends `v` as an LEB128 varint.
pub fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    while v >= 0x80 {
        out.push((v as u8) | 0x80);
        v >>= 7;
    }
    out.push(v as u8);
}

/// Reads one varint at `*pos`, advancing it past the encoding.
///
/// Returns `None` on a truncated buffer or an encoding that does not fit
/// in 64 bits (more than [`MAX_VARINT_BYTES`] groups, or high bits set in
/// the tenth group) — both only occur on corrupt input.
pub fn get_varint(buf: &[u8], pos: &mut usize) -> Option<u64> {
    let mut v = 0u64;
    for i in 0..MAX_VARINT_BYTES {
        let b = *buf.get(*pos)?;
        *pos += 1;
        let group = u64::from(b & 0x7F);
        if i == MAX_VARINT_BYTES - 1 && group > 1 {
            return None; // 64-bit overflow
        }
        v |= group << (7 * i);
        if b & 0x80 == 0 {
            return Some(v);
        }
    }
    None // continuation bit set on the final permitted group
}

/// Appends `current` as a zigzag-varint delta against `prev`.
pub fn put_delta(out: &mut Vec<u8>, prev: u64, current: u64) {
    put_varint(out, zigzag(current.wrapping_sub(prev) as i64));
}

/// Reads one zigzag-varint delta and applies it to `prev`.
pub fn get_delta(buf: &[u8], pos: &mut usize, prev: u64) -> Option<u64> {
    Some(prev.wrapping_add(unzigzag(get_varint(buf, pos)?) as u64))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zigzag_orders_by_magnitude() {
        assert_eq!(zigzag(0), 0);
        assert_eq!(zigzag(-1), 1);
        assert_eq!(zigzag(1), 2);
        assert_eq!(zigzag(-2), 3);
        for v in [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }

    #[test]
    fn varints_round_trip_across_widths() {
        let mut buf = Vec::new();
        let values = [0u64, 1, 127, 128, 16_383, 16_384, u32::MAX as u64, u64::MAX];
        for &v in &values {
            put_varint(&mut buf, v);
        }
        let mut pos = 0;
        for &v in &values {
            assert_eq!(get_varint(&buf, &mut pos), Some(v));
        }
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn truncated_and_overlong_varints_are_rejected() {
        let mut buf = Vec::new();
        put_varint(&mut buf, u64::MAX);
        assert_eq!(get_varint(&buf[..buf.len() - 1], &mut 0), None, "truncated");
        // Eleven continuation groups never terminate within the limit.
        assert_eq!(get_varint(&[0x80u8; 11], &mut 0), None, "overlong");
        // A tenth group carrying more than the top bit overflows 64 bits.
        let overflow = [0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x02];
        assert_eq!(get_varint(&overflow, &mut 0), None, "overflow");
    }

    #[test]
    fn deltas_wrap_cleanly() {
        let mut buf = Vec::new();
        put_delta(&mut buf, u64::MAX, 3); // wraps forward by 4
        put_delta(&mut buf, 3, u64::MAX); // wraps backward
        let mut pos = 0;
        assert_eq!(get_delta(&buf, &mut pos, u64::MAX), Some(3));
        assert_eq!(get_delta(&buf, &mut pos, 3), Some(u64::MAX));
    }
}
