//! Read-only memory-mapped open path for `RLT1` containers.
//!
//! The streaming [`TraceReader`](crate::TraceReader) copies every byte it
//! touches through a buffered file handle — fine for a single replay, but
//! the resilient sweep runner replays the *same* corpus file from many
//! worker threads at once, and N workers × buffered reads means N private
//! copies of the hot blocks. [`MappedContainer`] maps the file read-only
//! instead: every worker's [`MappedContainer::reader`] decodes straight
//! out of one shared page-cache mapping, so the corpus is resident once
//! no matter how wide the sweep fans out.
//!
//! The mapping is raw `mmap(2)`/`munmap(2)` through `extern "C"` — the
//! workspace's hermetic-build policy rules out an mmap crate. On
//! non-Unix targets the type transparently falls back to reading the
//! file into an owned buffer; the API and decode results are identical,
//! only the sharing is lost.

use std::fs::File;
#[cfg(not(unix))]
use std::io::Read;
use std::path::Path;

use crate::container::{TraceIoError, TraceReader};

#[cfg(unix)]
mod sys {
    use std::ffi::c_void;

    pub const PROT_READ: i32 = 1;
    pub const MAP_PRIVATE: i32 = 2;

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> i32;
    }

    pub fn map_failed() -> *mut c_void {
        usize::MAX as *mut c_void
    }
}

enum Backing {
    /// A live `mmap(2)` region (Unix only; never zero-length).
    #[cfg(unix)]
    Mapped {
        ptr: *mut std::ffi::c_void,
        len: usize,
    },
    /// Owned bytes: the non-Unix fallback, and the zero-length case
    /// everywhere (`mmap` rejects empty mappings).
    Owned(Vec<u8>),
}

/// A whole trace container, memory-mapped read-only.
///
/// Dereferences to the raw file bytes; [`MappedContainer::reader`] starts
/// a fresh streaming decode over them. The container is `Send + Sync`, so
/// one mapping can serve every worker of a parallel sweep:
///
/// ```no_run
/// # fn main() -> Result<(), trace_io::TraceIoError> {
/// let mapped = trace_io::MappedContainer::open("corpus/429.mcf.rlt".as_ref())?;
/// let trace = mapped.reader()?.read_to_trace()?;
/// # Ok(()) }
/// ```
pub struct MappedContainer {
    backing: Backing,
}

// SAFETY: the mapping is PROT_READ/MAP_PRIVATE and never mutated after
// `open` returns; shared immutable access from any thread is sound.
unsafe impl Send for MappedContainer {}
unsafe impl Sync for MappedContainer {}

impl MappedContainer {
    /// Maps `path` read-only (Unix), or reads it into memory (elsewhere).
    pub fn open(path: &Path) -> Result<Self, TraceIoError> {
        #[cfg_attr(unix, allow(unused_mut))]
        let mut file = File::open(path)?;
        let len = file.metadata()?.len();
        let len_usize =
            usize::try_from(len).map_err(|_| TraceIoError::Corrupt("trace exceeds address space"))?;
        if len_usize == 0 {
            return Ok(Self { backing: Backing::Owned(Vec::new()) });
        }
        #[cfg(unix)]
        {
            use std::os::unix::io::AsRawFd;
            // SAFETY: fd is a freshly opened readable file, the length
            // matches its current size, and PROT_READ/MAP_PRIVATE gives a
            // region we only ever read. MAP_FAILED is checked below.
            let ptr = unsafe {
                sys::mmap(
                    std::ptr::null_mut(),
                    len_usize,
                    sys::PROT_READ,
                    sys::MAP_PRIVATE,
                    file.as_raw_fd(),
                    0,
                )
            };
            if ptr == sys::map_failed() {
                return Err(TraceIoError::Io(std::io::Error::last_os_error()));
            }
            // The mapping outlives the fd; dropping `file` here is fine.
            Ok(Self { backing: Backing::Mapped { ptr, len: len_usize } })
        }
        #[cfg(not(unix))]
        {
            let mut buf = Vec::with_capacity(len_usize);
            file.read_to_end(&mut buf)?;
            Ok(Self { backing: Backing::Owned(buf) })
        }
    }

    /// The mapped bytes.
    pub fn bytes(&self) -> &[u8] {
        match &self.backing {
            #[cfg(unix)]
            // SAFETY: ptr/len describe the live mapping created in `open`
            // and released only in `drop`.
            Backing::Mapped { ptr, len } => unsafe {
                std::slice::from_raw_parts((*ptr).cast::<u8>(), *len)
            },
            Backing::Owned(buf) => buf,
        }
    }

    /// Bytes in the container file.
    pub fn len(&self) -> usize {
        self.bytes().len()
    }

    /// Whether the file was empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Starts a streaming decode over the mapping. Each call returns an
    /// independent reader positioned at the first block; concurrent
    /// readers share the pages.
    pub fn reader(&self) -> Result<TraceReader<&[u8]>, TraceIoError> {
        TraceReader::new(self.bytes())
    }
}

impl std::ops::Deref for MappedContainer {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.bytes()
    }
}

impl Drop for MappedContainer {
    fn drop(&mut self) {
        #[cfg(unix)]
        if let Backing::Mapped { ptr, len } = self.backing {
            // SAFETY: ptr/len are the exact values mmap returned; the
            // region is unmapped exactly once.
            unsafe {
                sys::munmap(ptr, len);
            }
        }
    }
}
