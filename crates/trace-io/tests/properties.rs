//! Property-based round-trip and corruption invariants for the trace
//! container stack — varint, delta, LZ, and the full block format — on
//! the in-tree `simrng::prop` harness (with shrinking).

use cache_sim::{AccessKind, LlcRecord};
use simrng::prop::{check, Config};
use simrng::{prop_assert_eq, Rng, SimRng};
use trace_io::varint::{get_delta, get_varint, put_delta, put_varint, unzigzag, zigzag};
use trace_io::{lz, TraceIoError, TraceReader, TraceWriter};

fn random_values(rng: &mut SimRng) -> Vec<u64> {
    let n = rng.gen_range(0..200usize);
    (0..n)
        .map(|_| {
            // Mix magnitudes so varints of every length show up.
            let shift = rng.gen_range(0..64u32);
            rng.next_u64() >> shift
        })
        .collect()
}

#[test]
fn varint_round_trips() {
    check(
        "varint_round_trips",
        Config::with_cases(64),
        random_values,
        |values| {
            let mut buf = Vec::new();
            for &v in values {
                put_varint(&mut buf, v);
            }
            let mut pos = 0usize;
            for &v in values {
                let got = get_varint(&buf, &mut pos)
                    .ok_or_else(|| "varint decode failed".to_string())?;
                prop_assert_eq!(got, v);
            }
            prop_assert_eq!(pos, buf.len());
            Ok(())
        },
    );
}

#[test]
fn zigzag_is_an_involution() {
    check(
        "zigzag_is_an_involution",
        Config::with_cases(64),
        random_values,
        |values| {
            for &v in values {
                prop_assert_eq!(unzigzag(zigzag(v as i64)), v as i64);
            }
            Ok(())
        },
    );
}

#[test]
fn delta_chains_round_trip() {
    check(
        "delta_chains_round_trip",
        Config::with_cases(64),
        random_values,
        |values| {
            let mut buf = Vec::new();
            let mut prev = 0u64;
            for &v in values {
                put_delta(&mut buf, prev, v);
                prev = v;
            }
            let mut pos = 0usize;
            let mut decoded_prev = 0u64;
            for &v in values {
                let got = get_delta(&buf, &mut pos, decoded_prev)
                    .ok_or_else(|| "delta decode failed".to_string())?;
                prop_assert_eq!(got, v);
                decoded_prev = got;
            }
            prop_assert_eq!(pos, buf.len());
            Ok(())
        },
    );
}

fn random_bytes(rng: &mut SimRng) -> Vec<u8> {
    // Mix compressible runs with incompressible noise.
    let n = rng.gen_range(0..2000usize);
    let mut out = Vec::with_capacity(n);
    while out.len() < n {
        if rng.gen_range(0..2u8) == 0 {
            let b = rng.gen_range(0..8u8);
            let run = rng.gen_range(1..64usize).min(n - out.len());
            out.extend(std::iter::repeat(b).take(run));
        } else {
            out.push(rng.gen_range(0..=255u8));
        }
    }
    out
}

#[test]
fn lz_round_trips() {
    check(
        "lz_round_trips",
        Config::with_cases(64),
        random_bytes,
        |data| {
            let mut compressed = Vec::new();
            lz::compress(data, &mut compressed);
            let mut back = Vec::new();
            lz::decompress(&compressed, data.len(), &mut back)
                .map_err(|e| format!("decompress failed: {e}"))?;
            prop_assert_eq!(&back, data);
            Ok(())
        },
    );
}

fn random_records(rng: &mut SimRng) -> Vec<LlcRecord> {
    let n = rng.gen_range(0..1500usize);
    let mut pc = rng.next_u64() >> 16;
    let mut line = rng.next_u64() >> 20;
    (0..n)
        .map(|_| {
            // Mostly local strides with occasional long jumps, like a
            // real LLC stream.
            if rng.gen_range(0..16u8) == 0 {
                pc = rng.next_u64() >> 16;
                line = rng.next_u64() >> 20;
            } else {
                pc = pc.wrapping_add(rng.gen_range(0..64u64));
                line = line.wrapping_add(rng.gen_range(0..8u64)).wrapping_sub(3);
            }
            LlcRecord {
                pc,
                line,
                kind: AccessKind::ALL[rng.gen_range(0..4usize)],
                core: rng.gen_range(0..4u8),
            }
        })
        .collect()
}

#[test]
fn container_round_trips_arbitrary_streams() {
    check(
        "container_round_trips_arbitrary_streams",
        Config::with_cases(48),
        |rng| (random_records(rng), rng.gen_range(1..300usize) as u32),
        |(records, block_len)| {
            let mut writer = TraceWriter::with_block_len(Vec::new(), *block_len)
                .map_err(|e| format!("writer: {e}"))?;
            writer.extend(records).map_err(|e| format!("push: {e}"))?;
            let bytes = writer.finish().map_err(|e| format!("finish: {e}"))?;
            let trace = TraceReader::new(bytes.as_slice())
                .map_err(|e| format!("header: {e}"))?
                .read_to_trace()
                .map_err(|e| format!("read: {e}"))?;
            prop_assert_eq!(trace.records(), records.as_slice());
            Ok(())
        },
    );
}

/// Flipping any byte of a container must surface as a typed error —
/// never a panic, never silently different records.
#[test]
fn corrupt_containers_fail_cleanly() {
    check(
        "corrupt_containers_fail_cleanly",
        Config::with_cases(64),
        |rng| {
            let records = random_records(rng);
            let mut writer = TraceWriter::with_block_len(Vec::new(), 128).expect("writer");
            writer.extend(&records).expect("push");
            let bytes = writer.finish().expect("finish");
            let pos = rng.gen_range(0..bytes.len());
            let mask = rng.gen_range(0..=255u8) | 1; // never a no-op flip
            (bytes, (pos, mask))
        },
        |(bytes, (pos, mask))| {
            // Shrinking halves `bytes`, so re-wrap the flip position; the
            // property (typed error, no panic) holds for any prefix too.
            let mut corrupt = bytes.clone();
            let pos = pos % corrupt.len();
            corrupt[pos] ^= mask;
            let outcome =
                TraceReader::new(corrupt.as_slice()).and_then(|r| r.read_to_trace());
            match outcome {
                Ok(_) => Err(format!("byte {pos} flip with mask {mask:#04x} was undetected")),
                Err(
                    TraceIoError::BadMagic(_)
                    | TraceIoError::UnsupportedVersion(_)
                    | TraceIoError::Truncated(_)
                    | TraceIoError::Corrupt(_)
                    | TraceIoError::ChecksumMismatch { .. }
                    | TraceIoError::CountMismatch { .. },
                ) => Ok(()),
                Err(other) => Err(format!("unexpected error class: {other}")),
            }
        },
    );
}
