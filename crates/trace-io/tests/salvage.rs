//! The RLT1 salvage wall: truncation at *every* byte offset and payload
//! corruption at *every* payload byte must leave salvage with exactly the
//! intact blocks — never a panic, never a non-verifying output container.

use cache_sim::{AccessKind, LlcRecord};
use simrng::prop::{check, Config};
use simrng::{Rng, SimRng};
use trace_io::{
    salvage, scan, BlockOutcome, TailStatus, TraceIoError, TraceReader, TraceWriter,
};

fn sample(n: u64) -> Vec<LlcRecord> {
    (0..n)
        .map(|i| LlcRecord {
            pc: 0x400_000 + (i % 91) * 4,
            line: 0x8000 + (i * 13) % 777,
            kind: AccessKind::ALL[(i % 4) as usize],
            core: (i % 2) as u8,
        })
        .collect()
}

fn encode(records: &[LlcRecord], block_len: u32) -> Vec<u8> {
    let mut w = TraceWriter::with_block_len(Vec::new(), block_len).expect("writer");
    w.extend(records).expect("extend");
    w.finish().expect("finish")
}

/// One block frame's byte extent within a valid container.
struct Frame {
    /// One past the last payload byte.
    end: usize,
    /// First payload byte.
    payload_start: usize,
    /// Records the block declares.
    n_records: usize,
    /// Stored payload checksum.
    checksum: u64,
}

/// Walks a container and returns each complete block frame's extent (the
/// test's independent notion of where blocks live, so assertions about
/// salvage don't lean on salvage itself). Lenient about the tail: stops
/// at the first frame that is not a whole block, so it also accepts the
/// prefixes the shrinker produces.
fn frames(bytes: &[u8]) -> Vec<Frame> {
    let mut out = Vec::new();
    let mut pos = 12usize;
    while pos + 21 <= bytes.len() && bytes[pos] == 0x01 {
        let n_records =
            u32::from_le_bytes(bytes[pos + 1..pos + 5].try_into().expect("4 bytes")) as usize;
        let comp_len =
            u32::from_le_bytes(bytes[pos + 9..pos + 13].try_into().expect("4 bytes")) as usize;
        let checksum = u64::from_le_bytes(bytes[pos + 13..pos + 21].try_into().expect("8 bytes"));
        let payload_start = pos + 21;
        let end = payload_start + comp_len;
        if end > bytes.len() {
            break;
        }
        out.push(Frame { end, payload_start, n_records, checksum });
        pos = end;
    }
    out
}

fn read_all(bytes: &[u8]) -> Vec<LlcRecord> {
    TraceReader::new(bytes)
        .expect("salvaged header")
        .read_to_trace()
        .expect("salvaged container verifies")
        .records()
        .to_vec()
}

/// Truncating a container at every byte offset: offsets inside the header
/// are a typed error; past it, salvage recovers exactly the blocks whose
/// frames fit in the prefix, reports a truncated tail, and emits a
/// verifying container.
#[test]
fn truncation_at_every_offset_salvages_the_intact_prefix() {
    let records = sample(300);
    let bytes = encode(&records, 64);
    let blocks = frames(&bytes);
    for cut in 0..=bytes.len() {
        let result = salvage(&bytes[..cut], Vec::new());
        if cut < 12 {
            assert!(
                matches!(result, Err(TraceIoError::Truncated(_))),
                "cut {cut} inside the header must be a typed truncation error"
            );
            continue;
        }
        let (report, out) = result.unwrap_or_else(|e| panic!("cut {cut}: salvage failed: {e}"));
        let intact: Vec<&Frame> = blocks.iter().filter(|f| f.end <= cut).collect();
        assert_eq!(
            report.recovered_blocks,
            intact.len() as u64,
            "cut {cut}: exactly the fully-contained blocks are recovered"
        );
        assert_eq!(report.damaged_blocks, 0, "cut {cut}: truncation damages no whole block");
        let expect_records: usize = intact.iter().map(|f| f.n_records).sum();
        assert_eq!(report.recovered_records, expect_records as u64, "cut {cut}");
        if cut == bytes.len() {
            assert_eq!(report.tail, TailStatus::CleanEnd);
            assert!(report.is_intact());
        } else {
            assert!(
                matches!(report.tail, TailStatus::Truncated(_)),
                "cut {cut}: tail must be typed as truncated, got {:?}",
                report.tail
            );
        }
        // The salvaged output verifies end to end and holds exactly the
        // original's prefix records.
        let summary = scan(out.as_slice()).expect("salvaged output verifies");
        assert_eq!(summary.records, expect_records as u64);
        assert_eq!(read_all(&out), records[..expect_records], "cut {cut}");
    }
}

/// Flipping every payload byte in turn: the owning block reports a
/// checksum mismatch with the stored checksum, every other block is
/// recovered, the tail still checks out (framing is unharmed), and the
/// salvaged container holds exactly the surviving records.
#[test]
fn flip_of_every_payload_byte_recovers_all_other_blocks() {
    let records = sample(300);
    let bytes = encode(&records, 64);
    let blocks = frames(&bytes);
    for (i, frame) in blocks.iter().enumerate() {
        for target in frame.payload_start..frame.end {
            let mut corrupt = bytes.clone();
            corrupt[target] ^= 0x5A;
            let (report, out) =
                salvage(corrupt.as_slice(), Vec::new()).expect("payload flips are never fatal");
            assert_eq!(report.blocks.len(), blocks.len(), "flip at {target}");
            for (j, outcome) in report.blocks.iter().enumerate() {
                if j == i {
                    match outcome {
                        BlockOutcome::ChecksumFailed { expected, actual } => {
                            assert_eq!(*expected, frame.checksum, "flip at {target}");
                            assert_ne!(actual, expected, "flip at {target}");
                        }
                        other => panic!("flip at {target}: block {j} reported {other:?}"),
                    }
                } else {
                    assert!(
                        matches!(outcome, BlockOutcome::Recovered { .. }),
                        "flip at {target}: undamaged block {j} reported {outcome:?}"
                    );
                }
            }
            assert_eq!(
                report.tail,
                TailStatus::CleanEnd,
                "flip at {target}: a payload flip never breaks framing"
            );
            assert!(!report.is_intact());
            // Survivors: everything except the flipped block's records.
            let mut expect = records[..i * 64].to_vec();
            expect.extend_from_slice(&records[((i + 1) * 64).min(records.len())..]);
            assert_eq!(read_all(&out), expect, "flip at {target}");
        }
    }
}

/// Random streams, random single-byte flips anywhere in the file: salvage
/// never panics, always emits a verifying container, and every block that
/// sits entirely before the flipped byte is recovered verbatim.
#[test]
fn flip_anywhere_property() {
    check(
        "flip_anywhere_property",
        Config::with_cases(48),
        |rng: &mut SimRng| {
            let n = rng.gen_range(1..800u64);
            let block_len = rng.gen_range(1..200usize) as u32;
            let records = sample(n);
            let bytes = encode(&records, block_len);
            let pos = rng.gen_range(0..bytes.len());
            let mask = rng.gen_range(0..=255u8) | 1;
            (bytes, (records, pos, mask))
        },
        |(bytes, (records, pos, mask))| {
            // Shrinking truncates `bytes`; every check below is guarded so
            // the property also holds for any prefix.
            let pos = pos % bytes.len();
            let mut corrupt = bytes.clone();
            corrupt[pos] ^= mask;
            let result = salvage(corrupt.as_slice(), Vec::new());
            if pos < 12 {
                // Header flips may be fatal (that's the typed contract) —
                // but must never panic or produce a bogus success marked
                // intact.
                if let Ok((report, _)) = result {
                    if report.is_intact() {
                        return Err(format!("header flip at {pos} verified as intact"));
                    }
                }
                return Ok(());
            }
            let (report, out) =
                result.map_err(|e| format!("body flip at {pos} was fatal: {e}"))?;
            if report.is_intact() {
                return Err(format!("flip at {pos} (mask {mask:#04x}) went undetected"));
            }
            let summary = scan(out.as_slice())
                .map_err(|e| format!("salvaged output does not verify: {e}"))?;
            if summary.records != report.recovered_records {
                return Err("report and output disagree on record count".to_owned());
            }
            // Every block frame that ends at or before the flip offset is
            // untouched and must be recovered, in order, with its exact
            // records.
            let prefix_records: usize = frames(bytes)
                .iter()
                .take_while(|f| f.end <= pos)
                .map(|f| f.n_records)
                .sum();
            let salvaged = read_all(&out);
            if prefix_records <= records.len()
                && (salvaged.len() < prefix_records
                    || salvaged[..prefix_records] != records[..prefix_records])
            {
                return Err(format!(
                    "flip at {pos}: intact prefix ({prefix_records} records) not recovered"
                ));
            }
            Ok(())
        },
    );
}

/// Random streams, random truncation points: salvage of any prefix either
/// errors (header cuts) or yields a verifying container holding a prefix
/// of the original records.
#[test]
fn truncation_property() {
    check(
        "truncation_property",
        Config::with_cases(48),
        |rng: &mut SimRng| {
            let n = rng.gen_range(0..800u64);
            let block_len = rng.gen_range(1..200usize) as u32;
            let records = sample(n);
            let bytes = encode(&records, block_len);
            let cut = rng.gen_range(0..=bytes.len());
            (bytes, (records, cut))
        },
        |(bytes, (records, cut))| {
            let cut = (*cut).min(bytes.len());
            match salvage(&bytes[..cut], Vec::new()) {
                Err(_) if cut < 12 => Ok(()),
                Err(e) => Err(format!("cut {cut} past the header was fatal: {e}")),
                Ok((report, out)) => {
                    if cut < bytes.len() && report.is_intact() {
                        return Err(format!("cut {cut} of {} went undetected", bytes.len()));
                    }
                    let salvaged = read_all(&out);
                    if salvaged.as_slice() != &records[..salvaged.len()] {
                        return Err(format!("cut {cut}: salvage is not an exact prefix"));
                    }
                    Ok(())
                }
            }
        },
    );
}
