//! Golden-fixture wall for the on-disk container format.
//!
//! `tests/data/golden_429mcf.rlt` was captured once with
//! `rlr trace capture 429.mcf --records 8192 --warmup 200000` and is
//! committed. Every future reader must keep decoding it to the exact
//! same records: these assertions fail if the wire format, the LZ
//! codec, or the varint layer changes incompatibly.

use std::io::Cursor;
use std::path::Path;

use trace_io::{fnv1a, read_trace_file, scan, sniff_format, TraceFormat, TraceReader};

const FIXTURE: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/data/golden_429mcf.rlt");
const RECORDS: u64 = 8192;

/// fnv1a over the decoded records re-serialized in the legacy
/// fixed-width encoding — i.e. a digest of the *records*, independent
/// of the container's own framing.
const DECODED_DIGEST: u64 = 0x688A_2357_FF6D_4736;

#[test]
fn golden_fixture_scans_clean() {
    let file = std::fs::File::open(FIXTURE).expect("committed fixture exists");
    let summary = scan(std::io::BufReader::new(file)).expect("committed fixture verifies");
    assert_eq!(summary.version, 1);
    assert_eq!(summary.records, RECORDS);
    assert_eq!(summary.blocks, 2);
    assert_eq!(summary.kind_counts, [3610, 328, 3940, 314]);
    assert!(
        summary.compressed_pct_of_fixed() <= 50.0,
        "fixture must stay at or under half of fixed-width: {:.1}%",
        summary.compressed_pct_of_fixed()
    );
}

#[test]
fn golden_fixture_decodes_to_pinned_records() {
    let trace = read_trace_file(Path::new(FIXTURE)).expect("committed fixture decodes");
    assert_eq!(trace.len(), RECORDS as usize);
    let mut legacy = Vec::new();
    trace.write_to(&mut legacy).expect("in-memory write");
    assert_eq!(
        fnv1a(&legacy),
        DECODED_DIGEST,
        "decoded records changed — the container format is no longer stable"
    );
}

#[test]
fn golden_fixture_round_trips_through_legacy() {
    assert_eq!(sniff_format(Path::new(FIXTURE)).expect("readable"), TraceFormat::Rlt);
    let trace = read_trace_file(Path::new(FIXTURE)).expect("committed fixture decodes");
    let mut legacy = Vec::new();
    trace.write_to(&mut legacy).expect("in-memory write");
    let back = cache_sim::LlcTrace::read_from(&mut Cursor::new(&legacy)).expect("legacy decodes");
    assert_eq!(trace, back);
    let reencoded = trace_io::encode_trace(&back, trace_io::DEFAULT_BLOCK_LEN).expect("encode");
    let twice = TraceReader::new(reencoded.as_slice())
        .expect("valid header")
        .read_to_trace()
        .expect("valid container");
    assert_eq!(trace, twice);
}
