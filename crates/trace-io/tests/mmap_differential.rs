//! Differential wall: the mmap-backed open path must decode every
//! container byte-for-byte identically to the streaming file reader, and
//! one mapping must support many concurrent readers (the sweep-runner
//! sharing scenario it exists for).

use std::path::Path;
use std::sync::Arc;

use trace_io::{read_trace_file, MappedContainer, TraceIoError};

const FIXTURE: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/data/golden_429mcf.rlt");

#[test]
fn mapped_decode_matches_the_streaming_reader_exactly() {
    let path = Path::new(FIXTURE);
    let streamed = read_trace_file(path).expect("fixture decodes via the file reader");
    let mapped = MappedContainer::open(path).expect("fixture maps");
    let via_map = mapped.reader().expect("header parses").read_to_trace().expect("body decodes");
    assert_eq!(streamed.records(), via_map.records(), "the two open paths must agree record-for-record");
}

#[test]
fn mapped_bytes_are_the_file_bytes() {
    let path = Path::new(FIXTURE);
    let on_disk = std::fs::read(path).expect("fixture readable");
    let mapped = MappedContainer::open(path).expect("fixture maps");
    assert_eq!(&*mapped, &on_disk[..], "the mapping is the file, byte for byte");
    assert_eq!(mapped.len(), on_disk.len());
    assert!(!mapped.is_empty());
}

#[test]
fn one_mapping_serves_concurrent_readers() {
    let mapped = Arc::new(MappedContainer::open(Path::new(FIXTURE)).expect("fixture maps"));
    let baseline = mapped.reader().unwrap().read_to_trace().unwrap();
    let handles: Vec<_> = (0..4)
        .map(|_| {
            let m = Arc::clone(&mapped);
            let want = baseline.records().to_vec();
            std::thread::spawn(move || {
                let got = m.reader().unwrap().read_to_trace().unwrap();
                assert_eq!(got.records(), want);
            })
        })
        .collect();
    for h in handles {
        h.join().expect("reader thread succeeds");
    }
}

#[test]
fn mapping_garbage_fails_like_streaming_does() {
    let dir = std::env::temp_dir().join(format!("rlr-mmap-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("garbage.rlt");
    std::fs::write(&path, b"not a container").unwrap();
    let mapped = MappedContainer::open(&path).expect("any file maps");
    assert!(matches!(mapped.reader(), Err(TraceIoError::BadMagic(_))));

    let empty = dir.join("empty.rlt");
    std::fs::write(&empty, b"").unwrap();
    let mapped = MappedContainer::open(&empty).expect("empty files open via the fallback");
    assert!(mapped.is_empty());
    assert!(matches!(mapped.reader(), Err(TraceIoError::Truncated(_))));
    std::fs::remove_dir_all(&dir).ok();
}
