//! Deterministic, dependency-free randomness for the whole workspace.
//!
//! The simulator's reproducibility story rests on two rules:
//!
//! 1. **Every stochastic component owns a [`SimRng`] seeded from an explicit
//!    `u64`.** Nothing ever reads the OS entropy pool, so the same seed
//!    always replays the same simulation, on any platform.
//! 2. **Derived seeds are XOR-salted, never incremented.** A component that
//!    needs several independent streams derives them as
//!    `seed ^ CONSTANT` (see [`SimRng::split`]); SplitMix64 scrambling
//!    guarantees the resulting states are uncorrelated even for adjacent
//!    seeds.
//!
//! The generator is xoshiro256++ (Blackman & Vigna), whose 256-bit state is
//! initialized from the seed via SplitMix64 — the reference seeding scheme
//! recommended by the algorithm's authors. Both are public-domain
//! algorithms, reimplemented here so the workspace builds with zero
//! registry access.
//!
//! ```
//! use simrng::{Rng, SimRng};
//!
//! let mut rng = SimRng::seed_from_u64(42);
//! let x: f32 = rng.gen();            // uniform in [0, 1)
//! let k = rng.gen_range(0..10u64);   // uniform in 0..10
//! assert!((0.0..1.0).contains(&x) && k < 10);
//! ```
//!
//! The [`prop`] module layers a small property-test harness (seeded case
//! generation, shrink-by-halving, failure-seed reporting) on top of the
//! generator, replacing the external `proptest` dependency.

mod rng;

pub mod prop;

pub use rng::{splitmix64, Rng, SimRng};
