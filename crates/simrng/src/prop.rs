//! A minimal property-test harness: seeded case generation, shrink-by-
//! halving, and failure-seed reporting.
//!
//! Replaces the external `proptest` dependency for the workspace's
//! invariant suites. A property is a closure from a generated case to
//! `Result<(), String>`; the [`prop_assert!`] family produces the `Err`
//! side with context. On failure the harness shrinks the case (halving
//! vectors, halving scalars toward zero), then panics with the per-case
//! seed so the exact failure replays under `PROP_SEED`.
//!
//! ```
//! use simrng::prop::{check, Config};
//! use simrng::Rng;
//!
//! check(
//!     "reverse twice is identity",
//!     Config::default(),
//!     |rng| {
//!         let n = rng.gen_range(0..64usize);
//!         (0..n).map(|_| rng.gen_range(0..100u32)).collect::<Vec<_>>()
//!     },
//!     |v| {
//!         let mut w = v.clone();
//!         w.reverse();
//!         w.reverse();
//!         simrng::prop_assert_eq!(&w, v);
//!         Ok(())
//!     },
//! );
//! ```

use crate::{splitmix64, SimRng};

/// Harness configuration: number of cases and the base seed.
#[derive(Clone, Copy, Debug)]
pub struct Config {
    /// Generated cases per property (`PROP_CASES` overrides).
    pub cases: u32,
    /// Base seed; each case derives its own seed from it (`PROP_SEED`
    /// overrides, which is how a reported failure is replayed).
    pub seed: u64,
    /// Cap on shrink iterations after a failure.
    pub max_shrink: u32,
}

impl Default for Config {
    fn default() -> Self {
        let env_u64 = |key: &str| -> Option<u64> {
            let raw = std::env::var(key).ok()?;
            let raw = raw.trim();
            raw.strip_prefix("0x")
                .map_or_else(|| raw.parse().ok(), |hex| u64::from_str_radix(hex, 16).ok())
        };
        Self {
            cases: env_u64("PROP_CASES").map_or(32, |c| c as u32),
            seed: env_u64("PROP_SEED").unwrap_or(0x05EE_DF0C_A5E5),
            max_shrink: 256,
        }
    }
}

impl Config {
    /// A configuration running `cases` cases with the default seed.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases, ..Self::default() }
    }
}

/// Values the harness knows how to shrink toward a minimal counterexample.
///
/// The default implementation offers no candidates (scalars that cannot
/// meaningfully shrink, opaque types). Implementations return *smaller*
/// candidate values; the harness keeps any candidate that still fails and
/// recurses on it.
pub trait Shrink: Sized {
    /// Candidate smaller values, most aggressive first.
    fn shrink_candidates(&self) -> Vec<Self> {
        Vec::new()
    }
}

impl<T: Clone> Shrink for Vec<T> {
    /// Halving: first half, second half, then the vector minus each
    /// quarter — drives the length down by powers of two.
    fn shrink_candidates(&self) -> Vec<Self> {
        let n = self.len();
        if n <= 1 {
            return Vec::new();
        }
        let mut out = vec![self[..n / 2].to_vec(), self[n / 2..].to_vec()];
        if n >= 4 {
            let q = n / 4;
            let mut without_mid = self[..q].to_vec();
            without_mid.extend_from_slice(&self[3 * q..]);
            out.push(without_mid);
        }
        out
    }
}

macro_rules! shrink_halving {
    ($($t:ty),+) => {$(
        impl Shrink for $t {
            fn shrink_candidates(&self) -> Vec<Self> {
                if *self == 0 { Vec::new() } else { vec![*self / 2, 0] }
            }
        }
    )+};
}

shrink_halving!(u8, u16, u32, u64, usize);

/// Pairs shrink their first element (the usual "sequence + parameter"
/// shape of the workspace's properties).
impl<A: Shrink, B: Clone> Shrink for (A, B) {
    fn shrink_candidates(&self) -> Vec<Self> {
        self.0
            .shrink_candidates()
            .into_iter()
            .map(|a| (a, self.1.clone()))
            .collect()
    }
}

/// Runs `prop` against `config.cases` generated cases.
///
/// # Panics
///
/// Panics with the failing (shrunk) case, its error, and the seed needed to
/// replay it when the property is falsified.
pub fn check<T, G, P>(name: &str, config: Config, mut gen: G, mut prop: P)
where
    T: Shrink + std::fmt::Debug,
    G: FnMut(&mut SimRng) -> T,
    P: FnMut(&T) -> Result<(), String>,
{
    for case in 0..config.cases {
        // Per-case seed: replaying `PROP_SEED=<reported>` with one case
        // regenerates exactly this input.
        let mut salt = config.seed ^ u64::from(case);
        let case_seed = splitmix64(&mut salt);
        let mut rng = SimRng::seed_from_u64(case_seed);
        let input = gen(&mut rng);
        if let Err(error) = prop(&input) {
            let (minimal, error) = shrink(input, error, &mut prop, config.max_shrink);
            panic!(
                "property `{name}` falsified at case {case}\n  \
                 error: {error}\n  \
                 minimal input: {minimal:?}\n  \
                 replay with PROP_SEED={:#x} PROP_CASES={} (base seed {:#x})",
                config.seed, config.cases, config.seed,
            );
        }
    }
}

/// Greedy shrink loop: keep the first still-failing candidate, repeat.
fn shrink<T, P>(mut input: T, mut error: String, prop: &mut P, budget: u32) -> (T, String)
where
    T: Shrink + std::fmt::Debug,
    P: FnMut(&T) -> Result<(), String>,
{
    let mut remaining = budget;
    'outer: while remaining > 0 {
        for candidate in input.shrink_candidates() {
            remaining -= 1;
            if let Err(e) = prop(&candidate) {
                input = candidate;
                error = e;
                continue 'outer;
            }
            if remaining == 0 {
                break;
            }
        }
        break;
    }
    (input, error)
}

/// `assert!` for properties: evaluates to `return Err(..)` on failure.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err(format!("assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err(format!($($fmt)+));
        }
    };
}

/// `assert_eq!` for properties.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if l != r {
            return Err(format!(
                "assertion failed: {} == {}\n  left: {:?}\n  right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if l != r {
            return Err(format!($($fmt)+));
        }
    }};
}

/// `assert_ne!` for properties.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if l == r {
            return Err(format!(
                "assertion failed: {} != {} (both {:?})",
                stringify!($left),
                stringify!($right),
                l
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Rng;

    #[test]
    fn passing_property_completes() {
        check(
            "sum is commutative",
            Config::with_cases(16),
            |rng| (rng.gen_range(0..100u64), rng.gen_range(0..100u64)),
            |&(a, b)| {
                prop_assert_eq!(a + b, b + a);
                Ok(())
            },
        );
    }

    #[test]
    fn failing_property_panics_with_seed_and_minimal_case() {
        let result = std::panic::catch_unwind(|| {
            check(
                "vectors are shorter than 5",
                Config { cases: 64, seed: 1, max_shrink: 256 },
                |rng| {
                    let n = rng.gen_range(0..40usize);
                    (0..n).map(|_| rng.gen_range(0..9u8)).collect::<Vec<_>>()
                },
                |v| {
                    prop_assert!(v.len() < 5, "len {} >= 5", v.len());
                    Ok(())
                },
            );
        });
        let msg = *result.expect_err("must falsify").downcast::<String>().expect("string panic");
        assert!(msg.contains("falsified"), "message: {msg}");
        assert!(msg.contains("PROP_SEED"), "message: {msg}");
        // Shrink-by-halving lands just past the boundary: 5..=9 elements.
        let shown = msg.split("minimal input: ").nth(1).expect("shows input");
        let commas = shown.split('\n').next().expect("line").matches(',').count();
        assert!((4..=9).contains(&commas), "shrunk vector should be near length 5: {shown}");
    }

    #[test]
    fn same_config_generates_identical_cases() {
        let collect = || {
            let mut cases = Vec::new();
            check(
                "collector",
                Config { cases: 8, seed: 42, max_shrink: 0 },
                |rng| rng.gen_range(0..1_000_000u64),
                |&v| {
                    cases.push(v);
                    Ok(())
                },
            );
            cases
        };
        assert_eq!(collect(), collect());
    }

    #[test]
    fn scalars_shrink_toward_zero() {
        assert_eq!(100u64.shrink_candidates(), vec![50, 0]);
        assert!(0u32.shrink_candidates().is_empty());
    }
}
