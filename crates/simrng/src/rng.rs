//! The generator: SplitMix64 seeding + xoshiro256++, behind an `Rng` trait
//! mirroring the subset of the `rand` API the workspace uses.

/// One SplitMix64 step: advances `state` and returns the next output.
///
/// Used to expand a 64-bit seed into the 256-bit xoshiro state, and useful
/// on its own for cheap stateless hashing of task indices into seeds.
///
/// ```
/// let mut s = 7u64;
/// let a = simrng::splitmix64(&mut s);
/// let b = simrng::splitmix64(&mut s);
/// assert_ne!(a, b);
/// ```
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The workspace's pseudo-random number generator: xoshiro256++.
///
/// Fast (a handful of ALU ops per output), 256 bits of state, passes BigCrush,
/// and — unlike the standard library — fully deterministic across platforms
/// and versions. Not cryptographically secure, which is fine: nothing here
/// needs unpredictability, everything needs replayability.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SimRng {
    s: [u64; 4],
}

impl SimRng {
    /// Creates a generator whose 256-bit state is expanded from `seed` with
    /// SplitMix64 (the seeding scheme recommended by xoshiro's authors —
    /// adjacent seeds yield uncorrelated streams).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Self { s }
    }

    /// The raw 256-bit generator state, for checkpointing. Restoring it
    /// with [`SimRng::from_state`] resumes the stream exactly where it
    /// left off.
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Rebuilds a generator from a state captured by [`SimRng::state`].
    pub fn from_state(s: [u64; 4]) -> Self {
        Self { s }
    }

    /// Derives an independent child generator. Equivalent to
    /// `SimRng::seed_from_u64(salt ^ self.next_u64())`: the child's stream
    /// shares no state with the parent's subsequent outputs.
    pub fn split(&mut self, salt: u64) -> SimRng {
        SimRng::seed_from_u64(salt ^ Rng::next_u64(self))
    }

    #[inline]
    fn step(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl Rng for SimRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.step()
    }
}

/// Uniform random generation, mirroring the subset of `rand::Rng` the
/// simulator uses (`gen`, `gen_range`, `gen_bool`, `shuffle`, `sample`).
pub trait Rng {
    /// The next raw 64-bit output.
    fn next_u64(&mut self) -> u64;

    /// A uniform value of `T`'s natural domain: full range for integers,
    /// `[0, 1)` for floats, fair coin for `bool`.
    #[inline]
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_rng(self)
    }

    /// A uniform value in `range` (half-open or inclusive).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty (or, for floats, not finite).
    #[inline]
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        f64::from_rng(self) < p
    }

    /// Fisher–Yates shuffle of `slice` in place.
    fn shuffle<T>(&mut self, slice: &mut [T])
    where
        Self: Sized,
    {
        for i in (1..slice.len()).rev() {
            let j = gen_u64_below(self, i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }

    /// A uniformly chosen element of `slice`, or `None` if it is empty.
    fn sample<'a, T>(&mut self, slice: &'a [T]) -> Option<&'a T>
    where
        Self: Sized,
    {
        if slice.is_empty() {
            None
        } else {
            Some(&slice[gen_u64_below(self, slice.len() as u64) as usize])
        }
    }
}

/// Unbiased `0..n` via Lemire's multiply-shift rejection method.
#[inline]
fn gen_u64_below<R: Rng>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    // Reject outputs in the short "wrap-around" zone so every residue is
    // equally likely.
    let threshold = n.wrapping_neg() % n;
    loop {
        let m = u128::from(rng.next_u64()) * u128::from(n);
        if (m as u64) >= threshold {
            return (m >> 64) as u64;
        }
    }
}

/// Types [`Rng::gen`] can produce from their natural uniform distribution.
pub trait Standard {
    /// Draws one value.
    fn from_rng<R: Rng>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    #[inline]
    fn from_rng<R: Rng>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    #[inline]
    fn from_rng<R: Rng>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    #[inline]
    fn from_rng<R: Rng>(rng: &mut R) -> Self {
        rng.next_u64() >> 63 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    #[inline]
    fn from_rng<R: Rng>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    #[inline]
    fn from_rng<R: Rng>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: Rng>(self, rng: &mut R) -> T;
}

macro_rules! int_range_impls {
    ($($t:ty),+) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            #[inline]
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as u64) - (self.start as u64);
                self.start + gen_u64_below(rng, span) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as u64) - (lo as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + gen_u64_below(rng, span + 1) as $t
            }
        }
    )+};
}

int_range_impls!(u8, u16, u32, u64, usize);

macro_rules! float_range_impls {
    ($($t:ty),+) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            #[inline]
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                assert!(
                    self.start < self.end && (self.end - self.start).is_finite(),
                    "gen_range: range must be non-empty and finite"
                );
                let u = <$t as Standard>::from_rng(rng);
                self.start + u * (self.end - self.start)
            }
        }
    )+};
}

float_range_impls!(f32, f64);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_replays_identically() {
        let mut a = SimRng::seed_from_u64(99);
        let mut b = SimRng::seed_from_u64(99);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn adjacent_seeds_are_uncorrelated() {
        // SplitMix64 expansion must decorrelate seeds 0 and 1: their first
        // outputs should differ in roughly half of all bit positions.
        let a = SimRng::seed_from_u64(0).next_u64();
        let b = SimRng::seed_from_u64(1).next_u64();
        let differing = (a ^ b).count_ones();
        assert!((16..=48).contains(&differing), "only {differing} differing bits");
    }

    #[test]
    fn golden_outputs_are_pinned() {
        // Drift detector: any change to the seeding or generation algorithm
        // silently changes every simulation result in the repo. These values
        // pin the current SplitMix64 + xoshiro256++ implementation.
        let mut sm = 0u64;
        assert_eq!(splitmix64(&mut sm), 0xE220_A839_7B1D_CDAF);
        assert_eq!(splitmix64(&mut sm), 0x6E78_9E6A_A1B9_65F4);
        let mut rng = SimRng::seed_from_u64(0);
        let first: Vec<u64> = (0..3).map(|_| rng.next_u64()).collect();
        assert_eq!(first, vec![0x5317_5D61_490B_23DF, 0x61DA_6F3D_C380_D507, 0x5C0F_DF91_EC9A_7BFC]);
    }

    #[test]
    fn gen_range_covers_and_respects_bounds() {
        let mut rng = SimRng::seed_from_u64(3);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[rng.gen_range(0..10usize)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues reachable");
        for _ in 0..1000 {
            let v = rng.gen_range(5..=7u32);
            assert!((5..=7).contains(&v));
            let f = rng.gen_range(-2.0..2.0f32);
            assert!((-2.0..2.0).contains(&f));
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn integer_sampling_is_unbiased_enough() {
        // 30k draws over 0..3: each bucket within 5 sigma of 10k.
        let mut rng = SimRng::seed_from_u64(8);
        let mut counts = [0u32; 3];
        for _ in 0..30_000 {
            counts[rng.gen_range(0..3usize)] += 1;
        }
        for &c in &counts {
            assert!((9_600..=10_400).contains(&c), "bucket count {c} out of range");
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SimRng::seed_from_u64(4);
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_200..=2_800).contains(&heads), "got {heads} heads");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SimRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<u32>>());
        assert_ne!(v, sorted, "a 100-element shuffle virtually never fixes everything");
    }

    #[test]
    fn sample_draws_from_slice() {
        let mut rng = SimRng::seed_from_u64(6);
        let items = [10, 20, 30];
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            seen.insert(*rng.sample(&items).expect("non-empty"));
        }
        assert_eq!(seen.len(), 3);
        assert_eq!(rng.sample::<u8>(&[]), None);
    }

    #[test]
    fn state_roundtrip_resumes_the_stream() {
        let mut rng = SimRng::seed_from_u64(11);
        for _ in 0..17 {
            let _ = rng.next_u64();
        }
        let mut resumed = SimRng::from_state(rng.state());
        for _ in 0..100 {
            assert_eq!(rng.next_u64(), resumed.next_u64());
        }
    }

    #[test]
    fn split_streams_diverge_from_parent() {
        let mut parent = SimRng::seed_from_u64(7);
        let mut child = parent.split(0xABCD);
        let p: Vec<u64> = (0..8).map(|_| parent.next_u64()).collect();
        let c: Vec<u64> = (0..8).map(|_| child.next_u64()).collect();
        assert_ne!(p, c);
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = SimRng::seed_from_u64(1);
        let _ = rng.gen_range(5..5u32);
    }
}
