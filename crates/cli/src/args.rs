//! Minimal command-line argument parsing (no external dependencies).

use std::collections::BTreeMap;

/// Parsed command line: a subcommand, `--key value` / `--flag` options, and
/// positional arguments.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Args {
    command: String,
    options: BTreeMap<String, String>,
    flags: Vec<String>,
    positional: Vec<String>,
}

/// A parse or validation error, displayed to the user.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ArgError(pub String);

impl std::fmt::Display for ArgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for ArgError {}

impl Args {
    /// Parses raw arguments (excluding the program name).
    ///
    /// Grammar: `<command> [--key value | --flag | positional]...`.
    /// An option is a flag if it is followed by another `--option` or by
    /// nothing.
    ///
    /// # Errors
    ///
    /// Returns an error when no subcommand is present.
    pub fn parse<I: IntoIterator<Item = String>>(raw: I) -> Result<Self, ArgError> {
        let mut iter = raw.into_iter().peekable();
        let command = iter
            .next()
            .ok_or_else(|| ArgError("missing subcommand; try `rlr help`".to_owned()))?;
        let mut out = Args { command, ..Args::default() };
        while let Some(token) = iter.next() {
            if let Some(key) = token.strip_prefix("--") {
                match iter.peek() {
                    Some(next) if !next.starts_with("--") => {
                        let value = iter.next().expect("peeked");
                        out.options.insert(key.to_owned(), value);
                    }
                    _ => out.flags.push(key.to_owned()),
                }
            } else {
                out.positional.push(token);
            }
        }
        Ok(out)
    }

    /// The subcommand name.
    pub fn command(&self) -> &str {
        &self.command
    }

    /// Positional arguments, in order.
    pub fn positional(&self) -> &[String] {
        &self.positional
    }

    /// String option by key.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.options.get(key).map(String::as_str)
    }

    /// String option with a default.
    pub fn get_or<'a>(&'a self, key: &str, default: &'a str) -> &'a str {
        self.get(key).unwrap_or(default)
    }

    /// Parsed numeric option with a default.
    ///
    /// # Errors
    ///
    /// Returns an error if present but unparsable.
    pub fn get_num<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, ArgError> {
        match self.get(key) {
            None => Ok(default),
            Some(raw) => raw
                .parse()
                .map_err(|_| ArgError(format!("--{key}: cannot parse `{raw}`"))),
        }
    }

    /// Whether a bare `--flag` was given.
    pub fn has_flag(&self, flag: &str) -> bool {
        self.flags.iter().any(|f| f == flag)
    }

    /// Rejects unknown options (catches typos early).
    ///
    /// # Errors
    ///
    /// Returns an error naming the first unknown option or flag.
    pub fn expect_known(&self, known: &[&str]) -> Result<(), ArgError> {
        for key in self.options.keys() {
            if !known.contains(&key.as_str()) {
                return Err(ArgError(format!("unknown option --{key}")));
            }
        }
        for flag in &self.flags {
            if !known.contains(&flag.as_str()) {
                return Err(ArgError(format!("unknown flag --{flag}")));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(line: &str) -> Args {
        Args::parse(line.split_whitespace().map(str::to_owned)).expect("parses")
    }

    #[test]
    fn parses_options_flags_and_positionals() {
        let a = parse("run 429.mcf --policy rlr --instructions 1000 --verbose");
        assert_eq!(a.command(), "run");
        assert_eq!(a.positional(), ["429.mcf"]);
        assert_eq!(a.get("policy"), Some("rlr"));
        assert_eq!(a.get_num::<u64>("instructions", 0).expect("numeric"), 1000);
        assert!(a.has_flag("verbose"));
    }

    #[test]
    fn missing_command_is_an_error() {
        assert!(Args::parse(Vec::new()).is_err());
    }

    #[test]
    fn numeric_parse_errors_are_reported() {
        let a = parse("run --instructions bogus");
        assert!(a.get_num::<u64>("instructions", 0).is_err());
    }

    #[test]
    fn defaults_apply_when_absent() {
        let a = parse("run");
        assert_eq!(a.get_or("policy", "lru"), "lru");
        assert_eq!(a.get_num::<u64>("warmup", 42).expect("default"), 42);
    }

    #[test]
    fn unknown_options_are_rejected() {
        let a = parse("run --polcy rlr");
        assert!(a.expect_known(&["policy"]).is_err());
        assert!(a.expect_known(&["polcy"]).is_ok());
    }

    #[test]
    fn flag_followed_by_option_is_a_flag() {
        let a = parse("run --verbose --policy rlr");
        assert!(a.has_flag("verbose"));
        assert_eq!(a.get("policy"), Some("rlr"));
    }
}
