//! `rlr` — the command-line driver for the RLR reproduction.
//!
//! See `rlr help` (or [`commands::help`]) for usage.

mod args;
mod commands;

use args::Args;

fn main() {
    let parsed = match Args::parse(std::env::args().skip(1)) {
        Ok(parsed) => parsed,
        Err(e) => {
            eprintln!("error: {e}");
            commands::help();
            std::process::exit(2);
        }
    };
    let result = match parsed.command() {
        "list" => commands::list(),
        "run" => commands::run(&parsed),
        "compare" => commands::compare(&parsed),
        "capture" => commands::capture(&parsed),
        "replay" => commands::replay(&parsed),
        "train" => commands::train(&parsed),
        "analyze" => commands::analyze(&parsed),
        "characterize" => commands::characterize(&parsed),
        "overhead" => commands::overhead(),
        "trace" => commands::trace(&parsed),
        "objcache" => commands::objcache(&parsed),
        "tenancy" => commands::tenancy(&parsed),
        "doctor" => commands::doctor(&parsed),
        "perf-report" => commands::perf_report(&parsed),
        "help" | "--help" | "-h" => {
            commands::help();
            Ok(())
        }
        other => {
            eprintln!("error: unknown command `{other}`");
            commands::help();
            std::process::exit(2);
        }
    };
    if let Err(e) = result {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}

#[cfg(test)]
mod tests {
    use crate::commands::policy_by_name;
    use experiments::PolicyKind;

    #[test]
    fn policy_aliases_resolve() {
        assert_eq!(policy_by_name("rlr").expect("rlr"), PolicyKind::Rlr);
        assert_eq!(policy_by_name("RLR(unopt)").expect("unopt"), PolicyKind::RlrUnopt);
        assert_eq!(policy_by_name("rlr-unopt").expect("alias"), PolicyKind::RlrUnopt);
        assert_eq!(policy_by_name("ship++").expect("shippp"), PolicyKind::ShipPp);
        assert_eq!(policy_by_name("OPT").expect("belady"), PolicyKind::Belady);
        assert!(policy_by_name("nonsense").is_err());
    }
}
