//! The CLI subcommands.

use std::fs;
use std::io::{BufReader, BufWriter};
use std::path::Path;

use cache_sim::{LlcTrace, SingleCoreSystem, SystemConfig, TimingMode};
use experiments::checkpoint::{self, write_atomic};
use experiments::fault::FaultWriter;
use experiments::runner::{replay_llc_reader, run_tasks_resilient, RunOptions};
use experiments::{PolicyKind, Table};
use rl::{Agent, AgentConfig, FeatureSet, LlcModel, Mlp, Trainer};
use trace_io::{TraceFormat, TraceReader, TraceWriter};
use objcache::{ObjCacheConfig, ObjPolicyKind};
use workloads::{ObjectTraffic, TenantMix, Workload, CLOUDSUITE, SPEC2006};

use crate::args::{ArgError, Args};

/// Resolves a policy by (case-insensitive) name.
pub fn policy_by_name(name: &str) -> Result<PolicyKind, ArgError> {
    let needle = name.to_lowercase();
    for kind in PolicyKind::ALL_ONLINE {
        if kind.name().to_lowercase() == needle {
            return Ok(kind);
        }
    }
    match needle.as_str() {
        "rlr-unopt" | "rlrunopt" | "rlr_unopt" => Ok(PolicyKind::RlrUnopt),
        "rlr-mc" | "rlr-multicore" => Ok(PolicyKind::RlrMulticore),
        "ship" => Ok(PolicyKind::Ship),
        "ship++" | "shippp" => Ok(PolicyKind::ShipPp),
        "belady" | "opt" | "min" => Ok(PolicyKind::Belady),
        _ => Err(ArgError(format!(
            "unknown policy `{name}`; try `rlr list` for the roster"
        ))),
    }
}

fn workload_by_name(name: &str) -> Result<Workload, ArgError> {
    workloads::by_name(name)
        .ok_or_else(|| ArgError(format!("unknown benchmark `{name}`; try `rlr list`")))
}

/// Resolves the core timing model: `--timing` wins, then `RLR_TIMING`,
/// then the analytic default.
fn timing_by_args(args: &Args) -> Result<TimingMode, ArgError> {
    match args.get("timing") {
        None => Ok(TimingMode::from_env()),
        Some(raw) => TimingMode::parse(raw)
            .ok_or_else(|| ArgError(format!("--timing must be `analytic` or `event`, got `{raw}`"))),
    }
}

fn parse_policies(raw: &str) -> Result<Vec<PolicyKind>, ArgError> {
    raw.split(',').map(policy_by_name).collect()
}

/// `rlr list` — available benchmarks and policies.
pub fn list() -> Result<(), ArgError> {
    println!("SPEC CPU 2006 benchmarks ({}):", SPEC2006.len());
    for chunk in SPEC2006.chunks(5) {
        println!("  {}", chunk.join("  "));
    }
    println!("\nCloudSuite benchmarks ({}):", CLOUDSUITE.len());
    println!("  {}", CLOUDSUITE.join("  "));
    println!("\nPolicies:");
    for kind in PolicyKind::ALL_ONLINE {
        println!(
            "  {:12} {}",
            kind.name(),
            if kind.uses_pc() { "(PC-based)" } else { "" }
        );
    }
    println!("  {:12} (offline optimum; replay only)", "Belady");
    Ok(())
}

/// `rlr run <bench> [--policy P] [--instructions N] [--warmup N]
///  [--no-prefetch] [--timing analytic|event]` — one single-core
/// simulation.
pub fn run(args: &Args) -> Result<(), ArgError> {
    args.expect_known(&["policy", "instructions", "warmup", "no-prefetch", "timing"])?;
    let bench = args
        .positional()
        .first()
        .ok_or_else(|| ArgError("usage: rlr run <benchmark> [--policy P]".to_owned()))?;
    let workload = workload_by_name(bench)?;
    let kind = policy_by_name(args.get_or("policy", "RLR"))?;
    let instructions = args.get_num("instructions", 10_000_000u64)?;
    let warmup = args.get_num("warmup", 2_000_000u64)?;
    let timing = timing_by_args(args)?;
    let mut config = SystemConfig::paper_single_core().with_timing(timing);
    if args.has_flag("no-prefetch") {
        config = config.without_prefetchers();
    }

    let mut system = SingleCoreSystem::new(&config, kind.build(&config.llc, None));
    let mut stream = workload.stream();
    system.warm_up(&mut stream, warmup);
    let stats = system.run(stream, instructions);

    println!("benchmark    {bench}");
    println!("policy       {}", kind.name());
    println!("timing       {timing}");
    println!("instructions {}", stats.instructions);
    println!("cycles       {}", stats.cycles);
    println!("IPC          {:.4}", stats.ipc());
    println!("L1D hit      {:.2}%", stats.l1d.hit_rate() * 100.0);
    println!("L2 hit       {:.2}%", stats.l2.hit_rate() * 100.0);
    println!("LLC demand   {:.2}% hit, {:.2} MPKI", stats.llc_hit_rate_pct(), stats.llc_demand_mpki());
    println!("memory       {} reads, {} writes", stats.memory_reads, stats.memory_writes);
    println!("DRAM         {:.1}% row-buffer hits", stats.dram_row_hit_rate() * 100.0);
    Ok(())
}

/// `rlr compare <bench...> [--policies a,b,c] [--instructions N]
///  [--warmup N] [--jobs N]` — speedup-over-LRU table, sharded over a
/// worker pool (every benchmark × policy cell is an independent task).
pub fn compare(args: &Args) -> Result<(), ArgError> {
    args.expect_known(&["policies", "instructions", "warmup", "jobs", "timing"])?;
    if args.positional().is_empty() {
        return Err(ArgError("usage: rlr compare <benchmark...> [--policies a,b,c]".to_owned()));
    }
    let kinds = parse_policies(args.get_or("policies", "DRRIP,KPC-R,SHiP,RLR,Hawkeye,SHiP++"))?;
    if kinds.contains(&PolicyKind::Belady) {
        return Err(ArgError("Belady is replay-only; use `rlr replay`".to_owned()));
    }
    let instructions = args.get_num("instructions", 10_000_000u64)?;
    let warmup = args.get_num("warmup", 2_000_000u64)?;
    let jobs = args.get_num("jobs", 0usize)?;
    let jobs = experiments::runner::resolve_jobs((jobs > 0).then_some(jobs));
    let timing = timing_by_args(args)?;
    let config = SystemConfig::paper_single_core().with_timing(timing);

    // Resolve every benchmark up front so typos fail before any work runs.
    let workloads: Vec<Workload> = args
        .positional()
        .iter()
        .map(|b| workload_by_name(b))
        .collect::<Result<_, _>>()?;
    let mut all_kinds = vec![PolicyKind::Lru];
    all_kinds.extend_from_slice(&kinds);
    let tasks: Vec<(usize, usize)> = (0..workloads.len())
        .flat_map(|b| (0..all_kinds.len()).map(move |k| (b, k)))
        .collect();
    // Failure handling and per-cell resume: a crashing cell is retried
    // (RLR_RETRIES), then reported as `failed` without aborting the rest;
    // completed cells are checkpointed so a killed run resumes where it
    // stopped (disable with RLR_CHECKPOINT=0).
    let run_opts = RunOptions::from_env();
    let cache_dir = checkpoint::checkpointing_enabled().then(checkpoint::sweep_cache_dir);
    if let Some(dir) = &cache_dir {
        // Reap crash residue (orphaned scratch files) on checkpoint-dir open.
        checkpoint::sweep_orphans(dir);
    }
    // Timing mode is part of the checkpoint key: analytic and event cells
    // of the same sweep must never satisfy each other.
    let params = format!("cli|i{instructions}|w{warmup}|t{timing}");
    let benches = args.positional();
    let cells = run_tasks_resilient(&tasks, jobs, &run_opts, |_, &(b, k)| {
        let kind = all_kinds[k];
        let key = cache_dir
            .is_some()
            .then(|| checkpoint::cell_key(&benches[b], kind.name(), &params));
        if let (Some(dir), Some(key)) = (&cache_dir, &key) {
            if let Some(cached) = checkpoint::load_cell(dir, key) {
                return cached;
            }
        }
        let mut system = SingleCoreSystem::new(&config, kind.build(&config.llc, None));
        let mut stream = workloads[b].stream();
        system.warm_up(&mut stream, warmup);
        let out = system.run(stream, instructions);
        if let (Some(dir), Some(key)) = (&cache_dir, &key) {
            checkpoint::store_cell(dir, key, &out);
        }
        out
    });

    let mut headers = vec!["benchmark".to_owned(), "LRU IPC".to_owned()];
    headers.extend(kinds.iter().map(|k| k.name().to_owned()));
    let mut table = Table::new(format!("IPC speedup over LRU (%), {timing} timing"), headers);
    let mut failures: Vec<String> = Vec::new();
    for (b, bench) in benches.iter().enumerate() {
        let base = b * all_kinds.len();
        let mut row = vec![bench.clone()];
        match &cells[base] {
            Err(e) => {
                failures.push(format!("{bench}/LRU: {}", e.kind));
                row.extend(std::iter::repeat("n/a".to_owned()).take(all_kinds.len()));
            }
            Ok(lru) => {
                row.push(format!("{:.4}", lru.ipc()));
                for k in 1..all_kinds.len() {
                    match &cells[base + k] {
                        Ok(stats) => row.push(Table::fmt(stats.speedup_pct_over(lru))),
                        Err(e) => {
                            failures.push(format!("{bench}/{}: {}", all_kinds[k].name(), e.kind));
                            row.push("failed".to_owned());
                        }
                    }
                }
            }
        }
        table.push_row(row);
    }
    if !failures.is_empty() {
        table.push_note(format!("failed cells: {}", failures.join("; ")));
    }
    println!("{}", table.render());
    Ok(())
}

/// `rlr capture <bench> --out FILE [--records N] [--warmup N]` — capture an
/// LLC trace.
pub fn capture(args: &Args) -> Result<(), ArgError> {
    args.expect_known(&["out", "records", "warmup"])?;
    let bench = args
        .positional()
        .first()
        .ok_or_else(|| ArgError("usage: rlr capture <benchmark> --out trace.bin".to_owned()))?;
    let out = args
        .get("out")
        .ok_or_else(|| ArgError("--out <file> is required".to_owned()))?;
    let records = args.get_num("records", 100_000usize)?;
    let warmup = args.get_num("warmup", 1_000_000u64)?;
    let workload = workload_by_name(bench)?;

    let config = SystemConfig::paper_single_core();
    let mut system = SingleCoreSystem::new(&config, PolicyKind::Lru.build(&config.llc, None));
    let mut stream = workload.stream();
    system.warm_up(&mut stream, warmup);
    system.llc_mut().enable_capture();
    let mut instructions = 0u64;
    loop {
        instructions += 1_000_000;
        let _ = system.run(&mut stream, instructions);
        let trace = system.llc().accesses_seen();
        if trace as usize >= records || instructions > 400_000_000 {
            break;
        }
    }
    let mut trace = system
        .llc_mut()
        .take_capture()
        .ok_or_else(|| ArgError(experiments::RunnerError::CaptureUnavailable.to_string()))?;
    trace.truncate(records);
    let file = fs::File::create(out).map_err(|e| ArgError(format!("create {out}: {e}")))?;
    trace
        .write_to(BufWriter::new(file))
        .map_err(|e| ArgError(format!("write {out}: {e}")))?;
    println!("captured {} LLC records from {bench} into {out}", trace.len());
    Ok(())
}

/// Loads a whole trace from either on-disk format (legacy `LLCT` or the
/// compressed `RLT1` container), sniffed by magic.
fn load_trace(path: &str) -> Result<LlcTrace, ArgError> {
    trace_io::read_trace_file(Path::new(path)).map_err(|e| ArgError(format!("read {path}: {e}")))
}

/// `rlr replay <trace> [--policy P|belady|agent] [--agent FILE]` —
/// trace-driven replay through the LLC-only model or a full cache.
/// Accepts both trace formats; an online policy over an `RLT1` container
/// replays block-by-block without loading the trace.
pub fn replay(args: &Args) -> Result<(), ArgError> {
    args.expect_known(&["policy", "agent", "hidden"])?;
    let path = args
        .positional()
        .first()
        .ok_or_else(|| ArgError("usage: rlr replay <trace> [--policy P]".to_owned()))?;
    let format = trace_io::sniff_format(Path::new(path))
        .map_err(|e| ArgError(format!("read {path}: {e}")))?;
    let config = SystemConfig::paper_single_core();
    let name = args.get_or("policy", "belady").to_lowercase();

    // (policy, demand hit rate, hits, accesses)
    let stats: (String, f64, u64, u64) = if name == "belady" || name == "opt" {
        let trace = load_trace(path)?;
        let mut model = LlcModel::new(&config.llc, &trace);
        let s = model.run_belady(&trace);
        ("Belady".to_owned(), s.demand_hit_rate(), s.hits, s.accesses)
    } else if name == "agent" {
        let trace = load_trace(path)?;
        let agent_path = args
            .get("agent")
            .ok_or_else(|| ArgError("--agent <file> required with --policy agent".to_owned()))?;
        let file =
            fs::File::open(agent_path).map_err(|e| ArgError(format!("open {agent_path}: {e}")))?;
        let net = Mlp::load(BufReader::new(file))
            .map_err(|e| ArgError(format!("load {agent_path}: {e}")))?;
        let mut agent_config = AgentConfig::default();
        agent_config.hidden = net.hidden();
        let agent = Agent::from_net(agent_config, &config.llc, net);
        let mut model = LlcModel::new(&config.llc, &trace);
        let s = model.run(&trace, &mut |view| agent.decide_greedy(view));
        ("RL agent".to_owned(), s.demand_hit_rate(), s.hits, s.accesses)
    } else {
        let kind = policy_by_name(&name)?;
        if format == TraceFormat::Rlt && kind != PolicyKind::Belady {
            // Online policies don't need the trace up front: stream the
            // container through the cache with O(block) memory.
            let file = fs::File::open(path).map_err(|e| ArgError(format!("open {path}: {e}")))?;
            let mut reader = TraceReader::new(BufReader::new(file))
                .map_err(|e| ArgError(format!("read {path}: {e}")))?;
            let mut cache =
                cache_sim::SetAssocCache::new("LLC", config.llc, kind.build(&config.llc, None));
            let summary = replay_llc_reader(&mut cache, &mut reader)
                .map_err(|e| ArgError(format!("replay {path}: {e}")))?;
            (kind.name().to_owned(), summary.demand_hit_rate(), summary.hits, summary.accesses)
        } else {
            let trace = load_trace(path)?;
            let mut cache = cache_sim::SetAssocCache::new(
                "LLC",
                config.llc,
                kind.build(&config.llc, Some(&trace)),
            );
            let summary = experiments::runner::replay_llc_trace(&mut cache, &trace);
            (kind.name().to_owned(), summary.demand_hit_rate(), summary.hits, trace.len() as u64)
        }
    };

    println!("trace        {path} ({} records)", stats.3);
    println!("policy       {}", stats.0);
    println!("demand hit   {:.2}%", stats.1 * 100.0);
    println!("total hits   {} / {}", stats.2, stats.3);
    Ok(())
}

/// `rlr train <bench|trace.bin> --out agent.mlp [--epochs N] [--hidden N]
///  [--records N] [--resume] [--checkpoint FILE] [--stop-after N]` — train
/// a DQN agent and save its network.
///
/// Training checkpoints after every epoch (atomically, to `--checkpoint`,
/// default `<out>.ck`); `--resume` continues an interrupted run from that
/// checkpoint and is bit-identical to a run that never stopped.
/// `--stop-after N` deterministically interrupts after N epochs, leaving
/// the checkpoint behind (used by tests and CI to exercise resume).
pub fn train(args: &Args) -> Result<(), ArgError> {
    args.expect_known(&[
        "out", "epochs", "hidden", "records", "seed", "resume", "checkpoint", "stop-after",
    ])?;
    let source = args
        .positional()
        .first()
        .ok_or_else(|| ArgError("usage: rlr train <benchmark|trace.bin> --out agent.mlp".to_owned()))?;
    let out = args
        .get("out")
        .ok_or_else(|| ArgError("--out <file> is required".to_owned()))?;
    let epochs = args.get_num("epochs", 3usize)?;
    let hidden = args.get_num("hidden", 64usize)?;
    let records = args.get_num("records", 60_000usize)?;
    let seed = args.get_num("seed", 0xCAFEu64)?;
    let ck_path = args.get("checkpoint").map_or_else(|| format!("{out}.ck"), str::to_owned);
    let stop_after = args.get_num("stop-after", 0usize)?;

    let config = SystemConfig::paper_single_core();
    let trace = if source.ends_with(".bin") || source.ends_with(".trace") {
        load_trace(source)?
    } else {
        let workload = workload_by_name(source)?;
        println!("capturing {records} LLC records from {source}...");
        let mut system = SingleCoreSystem::new(&config, PolicyKind::Lru.build(&config.llc, None));
        let mut stream = workload.stream();
        system.llc_mut().enable_capture();
        let mut instructions = 0u64;
        loop {
            instructions += 1_000_000;
            let _ = system.run(&mut stream, instructions);
            if system.llc().accesses_seen() as usize >= records || instructions > 400_000_000 {
                break;
            }
        }
        let mut t = system
            .llc_mut()
            .take_capture()
            .ok_or_else(|| ArgError(experiments::RunnerError::CaptureUnavailable.to_string()))?;
        t.truncate(records);
        t
    };

    let agent_config = AgentConfig {
        hidden,
        seed,
        features: FeatureSet::full(),
        ..AgentConfig::default()
    };
    let mut start_epoch = 0usize;
    let mut trainer = if args.has_flag("resume") {
        let file = fs::File::open(&ck_path)
            .map_err(|e| ArgError(format!("--resume: open {ck_path}: {e}")))?;
        let (trainer, done) = Trainer::load_checkpoint(BufReader::new(file), &config.llc)
            .map_err(|e| ArgError(format!("--resume: load {ck_path}: {e}")))?;
        if *trainer.agent().config() != agent_config {
            return Err(ArgError(format!(
                "--resume: {ck_path} was written with different hyperparameters; \
                 pass the original --hidden/--seed or drop --resume"
            )));
        }
        println!("resuming from {ck_path} after epoch {done}");
        start_epoch = done as usize;
        trainer
    } else {
        Trainer::new(agent_config, &config.llc)
    };
    for epoch in start_epoch..epochs {
        let report = trainer.train_epoch(&trace, &config.llc);
        println!(
            "epoch {epoch}: demand hit {:.1}%, {:.1}% Belady-optimal, TD loss {:.4}",
            report.stats.demand_hit_rate() * 100.0,
            report.optimal_rate() * 100.0,
            report.mean_loss
        );
        let mut bytes = Vec::new();
        trainer
            .save_checkpoint(&mut bytes, epoch as u64 + 1)
            .and_then(|()| write_atomic(std::path::Path::new(&ck_path), &bytes))
            .map_err(|e| ArgError(format!("write checkpoint {ck_path}: {e}")))?;
        if stop_after > 0 && epoch + 1 >= stop_after && epoch + 1 < epochs {
            println!(
                "stopped after epoch {} (checkpoint at {ck_path}); rerun with --resume to finish",
                epoch + 1
            );
            return Ok(());
        }
    }
    let mut bytes = Vec::new();
    trainer
        .agent()
        .net()
        .save(&mut bytes)
        .and_then(|()| write_atomic(std::path::Path::new(out), &bytes))
        .map_err(|e| ArgError(format!("write {out}: {e}")))?;
    // The finished network supersedes the in-progress checkpoint.
    let _ = fs::remove_file(&ck_path);
    println!("saved agent network to {out}");
    Ok(())
}

/// `rlr analyze --agent agent.mlp [--top N]` — weight heat map of a trained
/// agent.
pub fn analyze(args: &Args) -> Result<(), ArgError> {
    args.expect_known(&["agent", "top"])?;
    let agent_path = args
        .get("agent")
        .ok_or_else(|| ArgError("--agent <file> is required".to_owned()))?;
    let top = args.get_num("top", rl::NUM_FEATURES)?;
    let config = SystemConfig::paper_single_core();
    let file = fs::File::open(agent_path).map_err(|e| ArgError(format!("open {agent_path}: {e}")))?;
    let net = Mlp::load(BufReader::new(file)).map_err(|e| ArgError(format!("load: {e}")))?;
    let mut agent_config = AgentConfig::default();
    agent_config.hidden = net.hidden();
    let agent = Agent::from_net(agent_config, &config.llc, net);
    let mut heat = rl::analysis::weight_heatmap(&agent);
    heat.sort_by(|a, b| b.1.total_cmp(&a.1));
    println!("feature importance (mean |first-layer weight|):");
    for (feature, weight) in heat.iter().take(top) {
        println!("  {weight:.4}  {feature}");
    }
    Ok(())
}

/// `rlr characterize <bench> [--entries N]` — workload personality.
pub fn characterize(args: &Args) -> Result<(), ArgError> {
    args.expect_known(&["entries"])?;
    let bench = args
        .positional()
        .first()
        .ok_or_else(|| ArgError("usage: rlr characterize <benchmark>".to_owned()))?;
    let entries = args.get_num("entries", 500_000u64)?;
    let workload = workload_by_name(bench)?;
    println!("benchmark        {bench}");
    println!("{}", workloads::Characterization::measure(&workload, entries));
    Ok(())
}

/// `rlr overhead` — Table I.
pub fn overhead() -> Result<(), ArgError> {
    println!("{}", experiments::tables::table1().render());
    Ok(())
}

/// `rlr trace <capture|export|info|verify|convert> ...` — the compressed
/// trace-container toolbox.
pub fn trace(args: &Args) -> Result<(), ArgError> {
    let usage = "usage: rlr trace <capture|export|info|verify|convert> ...";
    let action = args.positional().first().ok_or_else(|| ArgError(usage.to_owned()))?.clone();
    match action.as_str() {
        "capture" => trace_capture(args),
        "export" => trace_export(args),
        "info" => trace_info(args),
        "verify" => trace_verify(args),
        "convert" => trace_convert(args),
        other => Err(ArgError(format!("unknown trace action `{other}`; {usage}"))),
    }
}

/// Opens a container writer behind the I/O fault seam, so `RLR_FAIL_PLAN`
/// torn/flip/enospc directives reach `trace capture` and `trace export`
/// exactly like any other faultable write.
fn open_trace_writer(
    out: &str,
    block: u32,
) -> Result<TraceWriter<FaultWriter<BufWriter<fs::File>>>, ArgError> {
    let file = fs::File::create(out).map_err(|e| ArgError(format!("create {out}: {e}")))?;
    TraceWriter::with_block_len(FaultWriter::new(BufWriter::new(file)), block)
        .map_err(|e| ArgError(format!("write {out}: {e}")))
}

/// `rlr trace capture <bench> --out FILE [--records N] [--warmup N]
///  [--block N]` — stream an LLC capture straight into a compressed
/// container. The capture buffer is drained every simulation slice, so
/// memory stays bounded by one slice plus one block at any trace length.
///
/// With `--mix`, `<bench>` is a comma-separated list run on one core
/// each through the shared LLC; every record carries its issuing core's
/// id, so the container splits back per core with
/// `rlr trace export <file.rlt> --core N`.
fn trace_capture(args: &Args) -> Result<(), ArgError> {
    args.expect_known(&["out", "records", "warmup", "block", "mix"])?;
    // `--mix a,b` (value form) and `<a,b> --mix` (flag form) both work;
    // the value form needs no positional benchmark at all.
    let bench = match (args.get("mix"), args.positional().get(1)) {
        (Some(list), _) => list.to_owned(),
        (None, Some(bench)) => bench.clone(),
        (None, None) => {
            return Err(ArgError("usage: rlr trace capture <benchmark> --out trace.rlt".to_owned()))
        }
    };
    let bench = bench.as_str();
    let out = args
        .get("out")
        .ok_or_else(|| ArgError("--out <file> is required".to_owned()))?;
    let records = args.get_num("records", 100_000u64)?;
    let warmup = args.get_num("warmup", 1_000_000u64)?;
    let block = args.get_num("block", trace_io::DEFAULT_BLOCK_LEN)?;
    if args.has_flag("mix") || args.get("mix").is_some() {
        let names: Vec<&str> = bench.split(',').filter(|s| !s.is_empty()).collect();
        if names.len() < 2 {
            return Err(ArgError("--mix needs a comma-separated benchmark list".to_owned()));
        }
        let trace = experiments::runner::capture_mix_llc_trace(
            &names,
            experiments::Scale::from_env(),
            records as usize,
        )
        .map_err(|e| ArgError(e.to_string()))?;
        let mut writer = open_trace_writer(out, block)?;
        writer.extend(trace.records()).map_err(|e| ArgError(format!("write {out}: {e}")))?;
        writer.finish().map_err(|e| ArgError(format!("write {out}: {e}")))?;
        let cores = trace.cores();
        println!(
            "captured {} LLC records from {}-core mix {bench} into {out} (cores seen: {cores:?})",
            trace.len(),
            names.len()
        );
        return Ok(());
    }
    let workload = workload_by_name(bench)?;

    let mut writer = open_trace_writer(out, block)?;
    let config = SystemConfig::paper_single_core();
    let mut system = SingleCoreSystem::new(&config, PolicyKind::Lru.build(&config.llc, None));
    let mut stream = workload.stream();
    system.warm_up(&mut stream, warmup);
    system.llc_mut().enable_capture();
    let mut written = 0u64;
    let mut instructions = 0u64;
    loop {
        instructions += 1_000_000;
        let _ = system.run(&mut stream, instructions);
        let drained = system
            .llc_mut()
            .drain_capture()
            .ok_or_else(|| ArgError(experiments::RunnerError::CaptureUnavailable.to_string()))?;
        let take = (records - written).min(drained.len() as u64) as usize;
        writer
            .extend(&drained.records()[..take])
            .map_err(|e| ArgError(format!("write {out}: {e}")))?;
        written += take as u64;
        if written >= records || instructions > 400_000_000 {
            break;
        }
    }
    writer.finish().map_err(|e| ArgError(format!("write {out}: {e}")))?;
    println!("captured {written} LLC records from {bench} into {out}");
    Ok(())
}

/// `rlr trace export <bench> --out FILE [--records N] [--block N]` —
/// write a synthetic workload's raw demand stream (pre-hierarchy) as a
/// container, without simulating the caches.
///
/// When the first argument is an existing trace file instead of a
/// benchmark name, export filters *that container*:
/// `rlr trace export <file.rlt> --core N --out FILE` keeps only core
/// `N`'s records (in their original order) — the split side of a
/// `trace capture --mix` round trip.
fn trace_export(args: &Args) -> Result<(), ArgError> {
    args.expect_known(&["out", "records", "block", "core"])?;
    let bench = args
        .positional()
        .get(1)
        .ok_or_else(|| ArgError("usage: rlr trace export <benchmark> --out trace.rlt".to_owned()))?;
    let out = args
        .get("out")
        .ok_or_else(|| ArgError("--out <file> is required".to_owned()))?;
    let records = args.get_num("records", 100_000u64)?;
    let block = args.get_num("block", trace_io::DEFAULT_BLOCK_LEN)?;
    if Path::new(bench).is_file() {
        let core = args
            .get_num::<u8>("core", 0)
            .map_err(|_| ArgError("--core must be a core id (0-255)".to_owned()))?;
        if args.get("core").is_none() {
            return Err(ArgError(format!(
                "{bench} is a trace file; container export needs --core N"
            )));
        }
        let full = load_trace(bench)?;
        let filtered = full.filter_core(core);
        if filtered.is_empty() {
            return Err(ArgError(format!(
                "{bench} has no records from core {core} (cores present: {:?})",
                full.cores()
            )));
        }
        let mut writer = open_trace_writer(out, block)?;
        writer.extend(filtered.records()).map_err(|e| ArgError(format!("write {out}: {e}")))?;
        writer.finish().map_err(|e| ArgError(format!("write {out}: {e}")))?;
        println!(
            "exported {} of {} records (core {core}) from {bench} into {out}",
            filtered.len(),
            full.len()
        );
        return Ok(());
    }
    let workload = workload_by_name(bench)?;

    let mut writer = open_trace_writer(out, block)?;
    let written = trace_io::export_workload(&workload, records, &mut writer)
        .map_err(|e| ArgError(format!("write {out}: {e}")))?;
    writer.finish().map_err(|e| ArgError(format!("write {out}: {e}")))?;
    println!("exported {written} demand records from {bench} into {out}");
    Ok(())
}

/// `rlr trace info <FILE>` — summarize either trace format.
fn trace_info(args: &Args) -> Result<(), ArgError> {
    args.expect_known(&[])?;
    let path = args
        .positional()
        .get(1)
        .ok_or_else(|| ArgError("usage: rlr trace info <file>".to_owned()))?;
    match trace_io::sniff_format(Path::new(path)).map_err(|e| ArgError(format!("{path}: {e}")))? {
        TraceFormat::Rlt => {
            let file = fs::File::open(path).map_err(|e| ArgError(format!("open {path}: {e}")))?;
            let summary = trace_io::scan(BufReader::new(file))
                .map_err(|e| ArgError(format!("{path}: {e}")))?;
            println!("{summary}");
        }
        TraceFormat::Legacy => {
            let trace = load_trace(path)?;
            println!("format       legacy LLCT (fixed-width records)");
            println!("records      {}", trace.len());
            println!("size         {} bytes", 12 + 18 * trace.len());
        }
    }
    Ok(())
}

/// `rlr trace verify <FILE> [--repair] [--out FILE]` — full verifying scan
/// (checksums, structure, end-frame totals); exits non-zero on the first
/// violation. With `--repair`, a damaged container is salvaged instead:
/// every block whose checksum verifies is rewritten as a clean container
/// (to `--out`, or in place with the original kept at `<file>.damaged`),
/// and the per-block salvage report is printed. Repair fails only when
/// nothing is salvageable.
fn trace_verify(args: &Args) -> Result<(), ArgError> {
    args.expect_known(&["repair", "out"])?;
    let path = args
        .positional()
        .get(1)
        .ok_or_else(|| ArgError("usage: rlr trace verify <file> [--repair] [--out FILE]".to_owned()))?;
    let file = fs::File::open(path).map_err(|e| ArgError(format!("open {path}: {e}")))?;
    let error = match trace_io::scan(BufReader::new(file)) {
        Ok(summary) => {
            println!("{path}: OK — {} records in {} blocks verified", summary.records, summary.blocks);
            return Ok(());
        }
        Err(e) => e,
    };
    if !args.has_flag("repair") {
        return Err(ArgError(format!("{path}: {error}")));
    }
    let (report, bytes) =
        trace_io::salvage_file(Path::new(path)).map_err(|e| ArgError(format!("{path}: {e}")))?;
    println!("{path}: {error}");
    println!("{report}");
    if report.recovered_records == 0 {
        return Err(ArgError(format!("{path}: nothing salvageable")));
    }
    let dest = match args.get("out") {
        Some(out) => out.to_owned(),
        None => {
            // In-place repair: keep the damaged original as evidence. The
            // `.damaged` extension keeps it out of `*.rlt` globs and the
            // corpus registry.
            let backup = format!("{path}.damaged");
            fs::rename(path, &backup).map_err(|e| ArgError(format!("backup {backup}: {e}")))?;
            println!("damaged original kept at {backup}");
            path.clone()
        }
    };
    write_atomic(Path::new(&dest), &bytes).map_err(|e| ArgError(format!("write {dest}: {e}")))?;
    println!(
        "repaired container written to {dest} ({} records in {} blocks)",
        report.recovered_records, report.recovered_blocks
    );
    Ok(())
}

/// `rlr trace convert <IN> <OUT> [--block N]` — convert between the legacy
/// fixed-width format and the compressed container (direction chosen by
/// the input's magic).
fn trace_convert(args: &Args) -> Result<(), ArgError> {
    args.expect_known(&["block"])?;
    let (input, output) = match (args.positional().get(1), args.positional().get(2)) {
        (Some(i), Some(o)) => (i.clone(), o.clone()),
        _ => return Err(ArgError("usage: rlr trace convert <in> <out> [--block N]".to_owned())),
    };
    let block = args.get_num("block", trace_io::DEFAULT_BLOCK_LEN)?;
    let format =
        trace_io::sniff_format(Path::new(&input)).map_err(|e| ArgError(format!("{input}: {e}")))?;
    let trace = load_trace(&input)?;
    match format {
        TraceFormat::Legacy => {
            trace_io::write_trace_file(Path::new(&output), &trace, block)
                .map_err(|e| ArgError(format!("write {output}: {e}")))?;
            println!("converted {input} (legacy) -> {output} (RLT1, {} records)", trace.len());
        }
        TraceFormat::Rlt => {
            let file =
                fs::File::create(&output).map_err(|e| ArgError(format!("create {output}: {e}")))?;
            trace
                .write_to(BufWriter::new(file))
                .map_err(|e| ArgError(format!("write {output}: {e}")))?;
            println!("converted {input} (RLT1) -> {output} (legacy, {} records)", trace.len());
        }
    }
    Ok(())
}

/// `rlr doctor [--dry-run]` — scan the results tree (checkpoint cells,
/// corpus containers, bench history), classify every artifact as
/// ok / repaired / quarantined / damaged, repair what can be repaired, and
/// print the summary. `--dry-run` reports the same classification without
/// touching anything. Honours `RLR_RESULTS_DIR`.
pub fn doctor(args: &Args) -> Result<(), ArgError> {
    args.expect_known(&["dry-run"])?;
    let root = experiments::report::results_dir();
    let repair = !args.has_flag("dry-run");
    let report = experiments::doctor::run(&root, repair);
    println!("{}", report.render());
    if report.all_clean() {
        println!("doctor: {} is clean", root.display());
    } else if !repair {
        println!("doctor: dry run — re-run without --dry-run to repair");
    }
    Ok(())
}

/// `rlr perf-report [--bench TARGET] [--record LABEL]` — the perf-over-time
/// report built from `results/bench/<target>.json` snapshots.
pub fn perf_report(args: &Args) -> Result<(), ArgError> {
    args.expect_known(&["bench", "record"])?;
    let target = args.get_or("bench", "hotpath").to_owned();
    if let Some(label) = args.get("record") {
        match experiments::perf::record_snapshot(&target, label)
            .map_err(|e| ArgError(format!("record snapshot: {e}")))?
        {
            Some(snap) => println!(
                "recorded {} row(s) of `{target}` under label `{}`",
                snap.rows.len(),
                snap.label
            ),
            None => {
                return Err(ArgError(format!(
                    "no bench artifact for `{target}`; run `cargo bench -p rlr-bench --bench {target}` first"
                )))
            }
        }
    }
    match experiments::perf::trend_table(&target) {
        Some(table) => println!("{}", table.render()),
        None => println!(
            "no recorded history for `{target}` yet; record one with \
             `rlr perf-report --bench {target} --record <label>`"
        ),
    }
    Ok(())
}

/// Builds the object-cache scenario (traffic + cache shape + trace length)
/// from the shared `rlr objcache` flags, starting from the internet-scale
/// default.
fn objcache_scenario(args: &Args) -> Result<(ObjectTraffic, ObjCacheConfig, u64), ArgError> {
    let mut traffic = ObjectTraffic::internet_default();
    traffic.catalog = args.get_num("catalog", traffic.catalog)?;
    traffic.skew = args.get_num("skew", traffic.skew)?;
    traffic.rps = args.get_num("rps", traffic.rps)?;
    traffic.seed = args.get_num("seed", traffic.seed)?;
    traffic.flash_every = args.get_num("flash-every", traffic.flash_every)?;
    traffic.flash_len = args.get_num("flash-len", traffic.flash_len)?;
    traffic.flash_share_pct = args.get_num("flash-share", traffic.flash_share_pct)?;
    if traffic.catalog == 0 {
        return Err(ArgError("--catalog must be positive".to_owned()));
    }
    if traffic.rps == 0 {
        return Err(ArgError("--rps must be positive".to_owned()));
    }
    if traffic.flash_every > 0 && traffic.flash_len >= traffic.flash_every {
        return Err(ArgError("--flash-len must be smaller than --flash-every".to_owned()));
    }
    let mut cfg = ObjCacheConfig::with_capacity_mib(args.get_num("capacity-mib", 256u64)?);
    cfg.protected_pct = args.get_num("protected-pct", cfg.protected_pct)?;
    if cfg.capacity_bytes == 0 || cfg.protected_pct > 100 {
        return Err(ArgError(
            "--capacity-mib must be positive and --protected-pct at most 100".to_owned(),
        ));
    }
    let requests = args.get_num("requests", 200_000u64)?;
    Ok((traffic, cfg, requests))
}

const OBJCACHE_FLAGS: &[&str] = &[
    "catalog",
    "skew",
    "rps",
    "seed",
    "flash-every",
    "flash-len",
    "flash-share",
    "capacity-mib",
    "protected-pct",
    "requests",
];

/// `rlr objcache <run|compare|derive> ...` — the object-cache serving
/// tier: variable-size values, byte budget, TTLs, and an explicit
/// admission decision point.
pub fn objcache(args: &Args) -> Result<(), ArgError> {
    let usage = "usage: rlr objcache <run|compare|derive> ...";
    let action = args.positional().first().ok_or_else(|| ArgError(usage.to_owned()))?.clone();
    match action.as_str() {
        "run" => objcache_run(args),
        "compare" => objcache_compare(args),
        "derive" => objcache_derive(args),
        other => Err(ArgError(format!("unknown objcache action `{other}`; {usage}"))),
    }
}

/// `rlr objcache run [--policy P] [scenario flags]` — one replay.
fn objcache_run(args: &Args) -> Result<(), ArgError> {
    let known: Vec<&str> = OBJCACHE_FLAGS.iter().copied().chain(["policy"]).collect();
    args.expect_known(&known)?;
    let (traffic, cfg, requests) = objcache_scenario(args)?;
    let raw = args.get_or("policy", "rlr");
    let policy = ObjPolicyKind::parse(raw)
        .ok_or_else(|| ArgError(format!("unknown object-cache policy `{raw}`; try lru, slru, gdsf, or rlr")))?;
    let stats = experiments::objects::run_object_cell(&traffic, requests, cfg, policy);
    println!("policy           {}", policy.name());
    println!("trace            {}", traffic.fingerprint());
    println!("capacity         {} MiB ({}% protected)", cfg.capacity_bytes >> 20, cfg.protected_pct);
    println!("requests         {}", stats.requests);
    println!("hit rate         {:.4}", stats.hit_rate());
    println!("miss-byte ratio  {:.4}", stats.miss_byte_ratio());
    println!("admitted         {} ({} rejected)", stats.admitted, stats.rejected);
    println!("evictions        {} ({} bytes)", stats.evictions, stats.evicted_bytes);
    println!("expirations      {} ({} bytes)", stats.expirations, stats.expired_bytes);
    Ok(())
}

/// `rlr objcache compare [--policies a,b,c] [--jobs N] [scenario flags]` —
/// the roster sweep with per-cell checkpoint resume, rendered as the
/// serving-tier comparison table and saved as CSV.
fn objcache_compare(args: &Args) -> Result<(), ArgError> {
    let known: Vec<&str> = OBJCACHE_FLAGS.iter().copied().chain(["policies", "jobs"]).collect();
    args.expect_known(&known)?;
    let (traffic, cfg, requests) = objcache_scenario(args)?;
    let policies: Vec<ObjPolicyKind> = match args.get("policies") {
        None => ObjPolicyKind::roster(),
        Some(raw) => raw
            .split(',')
            .map(|name| {
                ObjPolicyKind::parse(name).ok_or_else(|| {
                    ArgError(format!("unknown object-cache policy `{name}`; try lru, slru, gdsf, or rlr"))
                })
            })
            .collect::<Result<_, _>>()?,
    };
    let jobs = args.get_num("jobs", 0usize)?;
    let mut opts = experiments::runner::SweepOptions::from_env_for("objcache");
    opts.jobs = (jobs > 0).then_some(jobs);
    let results = experiments::objects::run_object_sweep(&traffic, requests, cfg, &policies, &opts);
    let table = experiments::objects::compare_table(&traffic, requests, &cfg, &results);
    println!("{}", table.render());
    match table.write_csv(experiments::report::results_dir()) {
        Ok(path) => println!("saved {}", path.display()),
        Err(e) => eprintln!("warning: could not save CSV: {e}"),
    }
    Ok(())
}

/// `rlr objcache derive [--horizon N] [--epochs N] [scenario flags]` — run
/// the paper's derivation loop on the configured trace and print the
/// offline agent's weights next to the quantized rule.
fn objcache_derive(args: &Args) -> Result<(), ArgError> {
    let known: Vec<&str> = OBJCACHE_FLAGS.iter().copied().chain(["horizon", "epochs"]).collect();
    args.expect_known(&known)?;
    let (traffic, _, requests) = objcache_scenario(args)?;
    let mut cfg = objcache::DeriveConfig::default();
    cfg.horizon = args.get_num("horizon", cfg.horizon)?;
    cfg.epochs = args.get_num("epochs", cfg.epochs)?;
    let trace: Vec<_> = traffic.stream().take(requests as usize).collect();
    let (model, weights) = objcache::derive_weights(&trace, &cfg);
    println!("trace            {} (n={requests})", traffic.fingerprint());
    println!("samples          {} ({} positive)", model.samples, model.positives);
    println!("eviction head    freq {:+.4}  size {:+.4}  ttl {:+.4}  recency {:+.4}  bias {:+.4}",
        model.ev_weights[0], model.ev_weights[1], model.ev_weights[2], model.ev_weights[3], model.ev_bias);
    println!("admission head   freq {:+.4}  size {:+.4}  ttl {:+.4}  bias {:+.4}",
        model.ad_weights[0], model.ad_weights[1], model.ad_weights[2], model.ad_bias);
    println!("derived rule     evict  {}*freq + {}*size + {}*ttl (min wins, LRU tie-break)",
        weights.ev_freq, weights.ev_size, weights.ev_ttl);
    println!("                 admit  {}*freq + {}*size + {}*ttl >= {}",
        weights.ad_freq, weights.ad_size, weights.ad_ttl, weights.ad_threshold);
    if weights == objcache::DerivedWeights::paper_default() {
        println!("matches the pinned paper_default rule");
    } else {
        println!("differs from the pinned paper_default rule ({})",
            objcache::DerivedWeights::paper_default().fingerprint());
    }
    Ok(())
}

/// Shared `rlr tenancy` scenario flags: the pinned three-class mix with
/// an optional interleave seed, the scaled-down contended LLC with
/// optional geometry overrides, and the access budget.
fn tenancy_scenario(args: &Args) -> Result<(TenantMix, cache_sim::CacheConfig, u64), ArgError> {
    let mut mix = TenantMix::default_three_class();
    mix.seed = args.get_num("seed", mix.seed)?;
    let mut llc = experiments::tenancy::default_llc();
    llc.sets = args.get_num("sets", llc.sets)?;
    llc.ways = args.get_num("ways", llc.ways)?;
    if llc.sets == 0 || !llc.sets.is_power_of_two() {
        return Err(ArgError("--sets must be a positive power of two".to_owned()));
    }
    if usize::from(llc.ways) < mix.tenants.len() || llc.ways > 32 {
        return Err(ArgError(format!(
            "--ways must cover the {} tenants and fit the 32-lane scan",
            mix.tenants.len()
        )));
    }
    let accesses = args.get_num(
        "accesses",
        experiments::tenancy::accesses_for(experiments::Scale::from_env()),
    )?;
    if accesses == 0 {
        return Err(ArgError("--accesses must be positive".to_owned()));
    }
    Ok((mix, llc, accesses))
}

const TENANCY_FLAGS: &[&str] = &["seed", "sets", "ways", "accesses"];

/// Parses `--ranks a,b,c` (one per tenant); `default` when absent.
fn tenancy_ranks(args: &Args, tenants: usize, default: Vec<u32>) -> Result<Vec<u32>, ArgError> {
    let Some(raw) = args.get("ranks") else { return Ok(default) };
    let ranks: Vec<u32> = raw
        .split(',')
        .map(|r| r.trim().parse().map_err(|_| ArgError(format!("bad rank `{r}` in --ranks"))))
        .collect::<Result<_, _>>()?;
    if ranks.len() != tenants {
        return Err(ArgError(format!("--ranks needs {tenants} comma-separated values")));
    }
    if let Some(bad) = ranks.iter().find(|&&r| r > u32::from(tenancy::MAX_PRIORITY)) {
        return Err(ArgError(format!("rank {bad} exceeds the maximum {}", tenancy::MAX_PRIORITY)));
    }
    Ok(ranks)
}

/// `rlr tenancy <run|compare|derive> ...` — the multi-tenant shared-LLC
/// serving tier: isolation modes, per-tenant QoS, and the learned
/// per-tenant priority table.
pub fn tenancy(args: &Args) -> Result<(), ArgError> {
    let usage = "usage: rlr tenancy <run|compare|derive> ...";
    let action = args.positional().first().ok_or_else(|| ArgError(usage.to_owned()))?.clone();
    match action.as_str() {
        "run" => tenancy_run(args),
        "compare" => tenancy_compare(args),
        "derive" => tenancy_derive(args),
        other => Err(ArgError(format!("unknown tenancy action `{other}`; {usage}"))),
    }
}

/// `rlr tenancy run [--mode M] [--ranks a,b,c] [scenario flags]` — one
/// run of the pinned mix under a single isolation mode.
fn tenancy_run(args: &Args) -> Result<(), ArgError> {
    let known: Vec<&str> = TENANCY_FLAGS.iter().copied().chain(["mode", "ranks"]).collect();
    args.expect_known(&known)?;
    let (mix, llc, accesses) = tenancy_scenario(args)?;
    let mode = match args.get_or("mode", "shared") {
        "shared" => tenancy::IsolationMode::Shared,
        "way-partition" | "partition" => tenancy::IsolationMode::WayPartition(
            tenancy::partition_by_weight(llc.ways, &mix.weights()),
        ),
        "learned-priority" | "learned" => tenancy::IsolationMode::LearnedPriority(
            tenancy_ranks(args, mix.tenants.len(), vec![4, 1, 0])?,
        ),
        other => {
            return Err(ArgError(format!(
                "unknown isolation mode `{other}`; try shared, way-partition, or learned-priority"
            )))
        }
    };
    let stats =
        experiments::tenancy::run_tenant_mix(&mix, &mode, &llc, accesses, experiments::Scale::from_env());
    println!("mode             {}", mode.name());
    println!("mix              {}", mix.fingerprint());
    println!("llc              {} sets x {} ways", llc.sets, llc.ways);
    for (spec, s) in mix.tenants.iter().zip(&stats) {
        println!(
            "tenant {:<10} {:<7} accesses {:<8} demand-miss {:.4}  peak-occ {:<5} p50 {} p99 {}",
            spec.name,
            spec.class.name(),
            s.accesses,
            s.demand_miss_rate(),
            s.peak_occupancy,
            s.lat_p50,
            s.lat_p99,
        );
    }
    println!(
        "weighted demand miss rate {:.4}",
        experiments::tenancy::weighted_rate(&stats, &mix.weights())
    );
    Ok(())
}

/// `rlr tenancy compare [--jobs N] [--ranks a,b,c] [scenario flags]` —
/// all three isolation modes side by side with per-tenant QoS and the
/// slowdown index vs isolated runs; resumable via cell checkpoints.
fn tenancy_compare(args: &Args) -> Result<(), ArgError> {
    let known: Vec<&str> = TENANCY_FLAGS.iter().copied().chain(["jobs", "ranks"]).collect();
    args.expect_known(&known)?;
    let (mix, llc, accesses) = tenancy_scenario(args)?;
    let ranks = tenancy_ranks(args, mix.tenants.len(), vec![4, 1, 0])?;
    let scale = experiments::Scale::from_env();
    let jobs = args.get_num("jobs", 0usize)?;
    let mut opts = experiments::runner::SweepOptions::from_env_for("tenancy");
    opts.jobs = (jobs > 0).then_some(jobs);
    let modes = experiments::tenancy::standard_modes(&mix, &llc, ranks);
    let results = experiments::tenancy::run_tenancy_sweep(&mix, &modes, &llc, accesses, scale, &opts);
    let baselines: Vec<_> = (0..mix.tenants.len())
        .map(|t| experiments::tenancy::run_isolated_tenant(&mix, t, &llc, accesses, scale))
        .collect();
    let table = experiments::tenancy::compare_table(&mix, &llc, &results, &baselines);
    println!("{}", table.render());
    let weights = mix.weights();
    let rate_of = |want: fn(&tenancy::IsolationMode) -> bool| {
        results.iter().find_map(|(mode, r)| {
            if !want(mode) {
                return None;
            }
            r.as_ref().ok().map(|stats| experiments::tenancy::weighted_rate(stats, &weights))
        })
    };
    if let (Some(shared), Some(learned)) = (
        rate_of(|m| matches!(m, tenancy::IsolationMode::Shared)),
        rate_of(|m| matches!(m, tenancy::IsolationMode::LearnedPriority(_))),
    ) {
        if learned < shared {
            println!(
                "learned-priority beats shared: {:.4} vs {:.4} weighted demand miss rate ({:.2}% better)",
                learned,
                shared,
                100.0 * (shared - learned) / shared,
            );
        } else {
            println!(
                "learned-priority does NOT beat shared here: {learned:.4} vs {shared:.4} weighted demand miss rate"
            );
        }
    }
    match table.write_csv(experiments::report::results_dir()) {
        Ok(path) => println!("saved {}", path.display()),
        Err(e) => eprintln!("warning: could not save CSV: {e}"),
    }
    Ok(())
}

/// `rlr tenancy derive [scenario flags]` — the offline weight-analysis
/// loop over the per-tenant rank table; prints the derived table and the
/// miss-rate delta vs the shared baseline.
fn tenancy_derive(args: &Args) -> Result<(), ArgError> {
    args.expect_known(TENANCY_FLAGS)?;
    let (mix, llc, accesses) = tenancy_scenario(args)?;
    let outcome = experiments::tenancy::derive_priorities(
        &mix,
        &llc,
        accesses,
        experiments::Scale::from_env(),
    );
    println!("mix              {}", mix.fingerprint());
    println!("evaluated        {} candidate tables", outcome.evaluated);
    for (spec, rank) in mix.tenants.iter().zip(&outcome.ranks) {
        println!("tenant {:<10} {:<7} rank {rank}", spec.name, spec.class.name());
    }
    println!("shared baseline  {:.4} weighted demand miss rate", outcome.shared_rate);
    println!("derived table    {:.4} weighted demand miss rate", outcome.derived_rate);
    if outcome.derived_rate < outcome.shared_rate {
        println!(
            "improvement      {:.2}%  (replay with: rlr tenancy compare --ranks {})",
            100.0 * (outcome.shared_rate - outcome.derived_rate) / outcome.shared_rate,
            outcome.ranks.iter().map(u32::to_string).collect::<Vec<_>>().join(","),
        );
    } else {
        println!("no improvement over shared on this mix (table stays all-zero)");
    }
    Ok(())
}

/// `rlr help` — usage.
pub fn help() {
    println!(
        "rlr — RLR cache replacement reproduction (HPCA 2021)

USAGE: rlr <command> [options]

COMMANDS:
  list                          benchmarks and policies
  run <bench>                   one simulation       [--policy P] [--instructions N]
                                                     [--warmup N] [--no-prefetch]
                                                     [--timing analytic|event]
  compare <bench...>            speedup-over-LRU     [--policies a,b,c] [--instructions N]
                                                     [--jobs N] [--timing analytic|event]
  capture <bench>               record an LLC trace  --out FILE [--records N]
                                                     (legacy format; see `trace capture`)
  replay <trace>                trace-driven replay  [--policy P|belady|agent] [--agent FILE]
                                (either format; RLT1 + online policy streams block-by-block)
  train <bench|trace.bin>       train a DQN agent    --out FILE [--epochs N] [--hidden N]
                                                     [--resume] [--checkpoint FILE]
                                                     [--stop-after N]
  analyze                       agent weight heatmap --agent FILE [--top N]
  characterize <bench>          workload personality [--entries N]
  overhead                      Table I (policy metadata budgets)
  trace capture <bench>         streaming compressed capture  --out FILE [--records N]
                                                     [--warmup N] [--block N]
                                (--mix a,b,... captures a multi-core run into one
                                container, core ids tagged per record)
  trace export <bench>          workload demand stream -> container  --out FILE [--records N]
                                (<file.rlt> --core N filters one core's records
                                out of a multi-core capture)
  trace info <file>             summarize a trace file (either format)
  trace verify <file>           checksum-verify an RLT1 container  [--repair] [--out FILE]
                                (--repair salvages intact blocks into a clean container)
  trace convert <in> <out>      legacy <-> RLT1 (direction by input magic)  [--block N]
  objcache run                  object-cache replay  [--policy lru|slru|gdsf|rlr]
                                                     [--requests N] [--capacity-mib N]
  objcache compare              serving-tier roster  [--policies a,b,c] [--jobs N]
                                (miss-byte ratio; resumable via cell checkpoints)
  objcache derive               derivation loop: offline agent -> quantized rule
                                                     [--horizon N] [--epochs N]
  tenancy run                   multi-tenant LLC run [--mode shared|way-partition|
                                                     learned-priority] [--ranks a,b,c]
                                                     [--accesses N] [--sets N] [--ways N]
  tenancy compare               isolation modes side by side, per-tenant QoS +
                                slowdown vs isolated runs  [--jobs N] [--ranks a,b,c]
  tenancy derive                learn the per-tenant priority table offline
                                (coordinate ascent on weighted demand miss rate)
  doctor                        scan results/ artifacts; repair or quarantine damage
                                [--dry-run]
  perf-report                   perf-over-time table [--bench TARGET] [--record LABEL]
  help                          this text

FAULT TOLERANCE (compare + bench sweeps):
  RLR_RETRIES=N       retries per crashing cell (default 1)
  RLR_BACKOFF_MS=N    base retry backoff, doubled per attempt (default 100)
  RLR_TASK_BUDGET=N   logical work-unit watchdog per task (default off)
  RLR_CHECKPOINT=0    disable per-cell result checkpoints (resume-on-rerun)
  RLR_RESULTS_DIR=D   relocate results/ and its cell-checkpoint cache
  RLR_FAIL_PLAN=...   deterministic fault injection: task faults
                      (\"panic:3:2;stall:1\") and I/O faults at the storage
                      seam (\"torn:64\", \"flip:100@2\", \"enospc\", \"short-read:40\")

TIMING:
  --timing analytic|event  core timing model (default analytic; functional
                           hit/miss counters are identical in both modes)
  RLR_TIMING=MODE          same selector for bench/experiment runs without
                           a --timing flag (CLI flag wins when both set)

The full per-figure evaluation lives in `cargo bench -p rlr-bench` (see README)."
    );
}
