//! Property-based invariants shared by every baseline policy, on the
//! in-tree `simrng::prop` harness.

use cache_sim::{Access, AccessKind, CacheConfig, LlcRecord, LlcTrace, SetAssocCache, TrueLru};
use policies::{
    Belady, Brrip, CounterBased, Drrip, Eva, Fifo, Glider, Hawkeye, KpcR, Mpppb, Pdp, Ship,
    ShipPp, Srrip,
};
use simrng::prop::{check, Config};
use simrng::{prop_assert, Rng};

fn kind_of(tag: u8) -> AccessKind {
    match tag % 4 {
        0 => AccessKind::Load,
        1 => AccessKind::Rfo,
        2 => AccessKind::Prefetch,
        _ => AccessKind::Writeback,
    }
}

/// Drives one policy with the sequence, checking cache-level invariants
/// (residency after access, accounting, no eviction on hits).
fn drive(
    make: &dyn Fn(&CacheConfig) -> Box<dyn cache_sim::ReplacementPolicy>,
    seq: &[(u16, u8)],
) {
    let geometry = CacheConfig { sets: 8, ways: 4, latency: 1 };
    let mut cache = SetAssocCache::new("prop", geometry, make(&geometry));
    for (i, &(line, tag)) in seq.iter().enumerate() {
        let access = Access {
            pc: u64::from(tag) * 4 + 0x400,
            addr: u64::from(line) * 64,
            kind: kind_of(tag),
            core: 0,
            seq: i as u64,
        };
        let out = cache.access(&access);
        assert!(cache.contains(access.addr), "line must be resident after access");
        if out.hit {
            assert!(out.evicted.is_none());
        }
    }
    assert_eq!(cache.stats().accesses(), seq.len() as u64);
}

/// Generates a line/tag access sequence of `lines` distinct lines.
fn line_tag_seq(rng: &mut simrng::SimRng, lines: u16, tags: u8, len: std::ops::Range<usize>) -> Vec<(u16, u8)> {
    let n = rng.gen_range(len);
    (0..n).map(|_| (rng.gen_range(0..lines), rng.gen_range(0..tags))).collect()
}

#[test]
fn every_policy_maintains_invariants() {
    check(
        "every_policy_maintains_invariants",
        Config::with_cases(24),
        |rng| line_tag_seq(rng, 256, 16, 1..500),
        |seq| {
            let makes: Vec<Box<dyn Fn(&CacheConfig) -> Box<dyn cache_sim::ReplacementPolicy>>> = vec![
                Box::new(|c| Box::new(Fifo::new(c))),
                Box::new(|c| Box::new(Srrip::new(c))),
                Box::new(|c| Box::new(Brrip::new(c))),
                Box::new(|c| Box::new(Drrip::new(c))),
                Box::new(|c| Box::new(KpcR::new(c))),
                Box::new(|c| Box::new(Ship::new(c))),
                Box::new(|c| Box::new(ShipPp::new(c))),
                Box::new(|c| Box::new(Hawkeye::new(c))),
                Box::new(|c| Box::new(Glider::new(c))),
                Box::new(|c| Box::new(Mpppb::new(c))),
                Box::new(|c| Box::new(CounterBased::new(c))),
                Box::new(|c| Box::new(Pdp::new(c))),
                Box::new(|c| Box::new(Eva::new(c))),
            ];
            for make in &makes {
                drive(make.as_ref(), seq);
            }
            Ok(())
        },
    );
}

/// Belady's optimum never yields fewer hits than LRU or FIFO on any
/// load-only trace — the defining property of MIN.
#[test]
fn belady_dominates_heuristics() {
    check(
        "belady_dominates_heuristics",
        Config::with_cases(24),
        |rng| {
            let n = rng.gen_range(32..500usize);
            (0..n).map(|_| rng.gen_range(0..24u64)).collect::<Vec<_>>()
        },
        |lines| {
            let geometry = CacheConfig { sets: 2, ways: 4, latency: 1 };
            let trace: LlcTrace = lines
                .iter()
                .map(|&l| LlcRecord { pc: 0x400, line: l, kind: AccessKind::Load, core: 0 })
                .collect();

            let hits_with = |policy: Box<dyn cache_sim::ReplacementPolicy>| {
                let mut cache = SetAssocCache::new("b", geometry, policy);
                let mut hits = 0u64;
                for (i, &line) in lines.iter().enumerate() {
                    let access = Access {
                        pc: 0x400,
                        addr: line * 64,
                        kind: AccessKind::Load,
                        core: 0,
                        seq: i as u64,
                    };
                    if cache.access(&access).hit {
                        hits += 1;
                    }
                }
                hits
            };

            let opt = hits_with(Box::new(Belady::from_trace(&trace, &geometry)));
            let lru = hits_with(Box::new(TrueLru::new(&geometry)));
            let fifo = hits_with(Box::new(Fifo::new(&geometry)));
            prop_assert!(opt >= lru, "OPT {opt} < LRU {lru}");
            prop_assert!(opt >= fifo, "OPT {opt} < FIFO {fifo}");
            Ok(())
        },
    );
}

/// PDP's recomputed protecting distance stays within its 1..=256 search
/// range under arbitrary traffic (drive the policy by value through a
/// faithful miniature cache loop so it stays observable).
#[test]
fn pdp_protecting_distance_in_range() {
    check(
        "pdp_protecting_distance_in_range",
        Config::with_cases(24),
        |rng| line_tag_seq(rng, 64, 4, 200..2000),
        |seq| {
            use cache_sim::{Decision, LineSnapshot, ReplacementPolicy};
            let geometry = CacheConfig { sets: 4, ways: 4, latency: 1 };
            let mut pdp = Pdp::new(&geometry);
            let (sets, ways) = (geometry.sets as usize, geometry.ways as usize);
            let mut tags = vec![u64::MAX; sets * ways];
            for (i, &(line16, tag)) in seq.iter().enumerate() {
                let line = u64::from(line16);
                let access = Access {
                    pc: 0x400,
                    addr: line * 64,
                    kind: kind_of(tag),
                    core: 0,
                    seq: i as u64,
                };
                let set = (line % sets as u64) as usize;
                let base = set * ways;
                if let Some(w) = (0..ways).find(|&w| tags[base + w] == line) {
                    pdp.on_hit(set as u32, w as u16, &access);
                } else {
                    pdp.on_miss(set as u32, &access);
                    let w = if let Some(free) = (0..ways).find(|&w| tags[base + w] == u64::MAX) {
                        free
                    } else {
                        let snapshot: Vec<LineSnapshot> = (0..ways)
                            .map(|w| LineSnapshot {
                                valid: true,
                                line: tags[base + w],
                                dirty: false,
                                core: 0,
                            })
                            .collect();
                        match pdp.select_victim(set as u32, &snapshot, &access) {
                            Decision::Evict(w) => w as usize,
                            Decision::Bypass => 0,
                        }
                    };
                    tags[base + w] = line;
                    pdp.on_fill(set as u32, w as u16, &access);
                }
                let pd = pdp.protecting_distance();
                prop_assert!((1..=256).contains(&pd), "PD {pd} out of range");
            }
            Ok(())
        },
    );
}
