//! Scenario tests: each baseline policy's defining behaviour on the access
//! pattern its paper motivates it with.

use cache_sim::{Access, AccessKind, CacheConfig, SetAssocCache, TrueLru};
use policies::{Drrip, Hawkeye, KpcR, Ship, Srrip};

fn geometry() -> CacheConfig {
    CacheConfig { sets: 4, ways: 4, latency: 1 }
}

fn load(pc: u64, line: u64, seq: u64) -> Access {
    Access { pc, addr: line * 64, kind: AccessKind::Load, core: 0, seq }
}

/// One-set workload: a promoted hot pair interleaved with scan bursts.
/// The hot pair is touched twice up front so promotion-based policies have
/// their hit bit/RRPV established before the scans begin.
fn scan_with_hot<P: cache_sim::ReplacementPolicy>(
    cache: &mut SetAssocCache<P>,
    rounds: u64,
) -> (u64, u64) {
    let mut seq = 0u64;
    let mut touch = |cache: &mut SetAssocCache<P>, line: u64, pc: u64| {
        let hit = cache.access(&load(pc, line * 4, seq)).hit; // stay in set 0 (4 sets)
        seq += 1;
        hit
    };
    // Warm the hot pair (two rounds establish reuse).
    for _ in 0..2 {
        let _ = touch(cache, 1, 0x400);
        let _ = touch(cache, 2, 0x404);
    }
    let mut hot_hits = 0;
    let mut hot_refs = 0;
    for r in 0..rounds {
        // Three one-shot scan lines, then the hot pair again.
        for k in 0..3 {
            let _ = touch(cache, 1_000 + r * 3 + k, 0x900);
        }
        for (line, pc) in [(1u64, 0x400u64), (2, 0x404)] {
            hot_refs += 1;
            hot_hits += u64::from(touch(cache, line, pc));
        }
    }
    (hot_hits, hot_refs)
}

#[test]
fn srrip_protects_hot_lines_against_scans_better_than_lru() {
    let cfg = geometry();
    let mut lru = SetAssocCache::new("lru", cfg, TrueLru::new(&cfg));
    let mut srrip = SetAssocCache::new("srrip", cfg, Srrip::new(&cfg));
    let (lru_hits, refs) = scan_with_hot(&mut lru, 1_500);
    let (srrip_hits, _) = scan_with_hot(&mut srrip, 1_500);
    assert!(
        srrip_hits > lru_hits + refs / 4,
        "scan resistance: SRRIP {srrip_hits} vs LRU {lru_hits} of {refs}"
    );
}

#[test]
fn drrip_survives_pure_thrash_where_lru_gets_nothing() {
    // Cyclic pattern of 6 lines per 4-way set, in *follower* sets (set 0 is
    // a dueling leader): LRU yields zero hits; DRRIP's BRRIP mode keeps a
    // resident subset.
    let cfg = geometry(); // 4 sets: sets 1-3 are followers
    let run = |policy: Box<dyn cache_sim::ReplacementPolicy>| {
        let mut cache = SetAssocCache::new("t", cfg, policy);
        let mut hits = 0u64;
        let mut seq = 0u64;
        for lap in 0..1_500u64 {
            for elem in 0..6u64 {
                // 6 distinct lines per set, touching all 4 sets per element.
                for set in 0..4u64 {
                    let line = elem * 4 + set;
                    let hit = cache.access(&load(0x400, line, seq)).hit;
                    seq += 1;
                    if set != 0 && lap > 2 {
                        hits += u64::from(hit); // count follower sets, warm laps
                    }
                }
            }
        }
        hits
    };
    let lru_hits = run(Box::new(TrueLru::new(&cfg)));
    let drrip_hits = run(Box::new(Drrip::new(&cfg)));
    assert_eq!(lru_hits, 0, "LRU thrashes the 6-line cycles");
    assert!(drrip_hits > 3_000, "DRRIP must stabilize a resident subset: {drrip_hits}");
}

#[test]
fn ship_discriminates_by_signature() {
    // PC A's lines are always reused; PC B's never. After training, SHiP
    // must protect A-lines over B-lines.
    let cfg = geometry();
    let mut cache = SetAssocCache::new("ship", cfg, Box::new(Ship::new(&cfg)));
    let mut seq = 0u64;
    let mut a_hits = 0u64;
    let mut a_refs = 0u64;
    for i in 0..4_000u64 {
        let a_line = i % 8; // reused A-lines
        a_refs += 1;
        if cache.access(&load(0xA000, a_line, seq)).hit {
            a_hits += 1;
        }
        seq += 1;
        let b_line = 10_000 + i; // one-shot B-lines
        let _ = cache.access(&load(0xB000, b_line, seq));
        seq += 1;
    }
    assert!(
        a_hits as f64 / a_refs as f64 > 0.8,
        "SHiP must learn that A-lines are reused: {a_hits}/{a_refs}"
    );
}

#[test]
fn hawkeye_learns_like_belady_on_a_friendly_loop() {
    // A loop that fits: OPTgen labels everything cache-friendly, so after
    // warm-up the hit rate approaches 100%.
    let cfg = geometry();
    let mut cache = SetAssocCache::new("hawk", cfg, Box::new(Hawkeye::new(&cfg)));
    let mut late_hits = 0u64;
    let mut late_refs = 0u64;
    for i in 0..8_000u64 {
        let line = i % 12;
        let hit = cache.access(&load(0x400 + line * 4, line, i)).hit;
        if i > 4_000 {
            late_refs += 1;
            late_hits += u64::from(hit);
        }
    }
    assert!(
        late_hits as f64 / late_refs as f64 > 0.95,
        "a fitting loop must stabilize: {late_hits}/{late_refs}"
    );
}

#[test]
fn kpcr_demotes_prefetched_lines() {
    // Prefetched lines that are never demanded must be evicted before
    // demand lines of the same age.
    let cfg = CacheConfig { sets: 1, ways: 4, latency: 1 };
    let mut cache = SetAssocCache::new("kpc", cfg, Box::new(KpcR::new(&cfg)));
    // Two demand lines, two prefetched lines.
    let mut seq = 0;
    for (line, kind) in [
        (1u64, AccessKind::Load),
        (2, AccessKind::Prefetch),
        (3, AccessKind::Load),
        (4, AccessKind::Prefetch),
    ] {
        let a = Access { pc: 0x400, addr: line * 64, kind, core: 0, seq };
        let _ = cache.access(&a);
        seq += 1;
    }
    // Re-touch the demand lines so they are promoted.
    for line in [1u64, 3] {
        let _ = cache.access(&load(0x400, line, seq));
        seq += 1;
    }
    // The next two fills must evict the prefetched lines, not the demand ones.
    for line in [5u64, 6] {
        let _ = cache.access(&load(0x500, line, seq));
        seq += 1;
    }
    assert!(cache.contains(1 * 64), "demand line 1 must survive");
    assert!(cache.contains(3 * 64), "demand line 3 must survive");
    assert!(!cache.contains(2 * 64), "unreused prefetch 2 must be evicted");
    assert!(!cache.contains(4 * 64), "unreused prefetch 4 must be evicted");
}
