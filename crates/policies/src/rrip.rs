//! The RRIP family: SRRIP, BRRIP, and set-dueling DRRIP (Jaleel et al.,
//! ISCA 2010), the paper's strongest non-PC baseline besides KPC-R.

use cache_sim::{Access, AccessKind, CacheConfig, Decision, LineSnapshot, ReplacementPolicy};

/// Maximum re-reference prediction value for 2-bit RRPVs ("distant future").
pub(crate) const MAX_RRPV: u8 = 3;
/// "Long" re-reference interval used at insertion by SRRIP.
pub(crate) const LONG_RRPV: u8 = 2;

/// Shared RRPV bookkeeping for the RRIP family.
#[derive(Clone, Debug)]
pub(crate) struct RrpvTable {
    ways: u16,
    rrpv: Vec<u8>,
}

impl RrpvTable {
    pub(crate) fn new(config: &CacheConfig) -> Self {
        Self { ways: config.ways, rrpv: vec![MAX_RRPV; config.lines() as usize] }
    }

    pub(crate) fn get(&self, set: u32, way: u16) -> u8 {
        self.rrpv[set as usize * self.ways as usize + way as usize]
    }

    pub(crate) fn set(&mut self, set: u32, way: u16, value: u8) {
        debug_assert!(value <= MAX_RRPV);
        self.rrpv[set as usize * self.ways as usize + way as usize] = value;
    }

    /// Standard RRIP victim search: the leftmost way at `MAX_RRPV`, aging
    /// the whole set until one exists.
    pub(crate) fn find_victim(&mut self, set: u32) -> u16 {
        let base = set as usize * self.ways as usize;
        loop {
            for w in 0..self.ways as usize {
                if self.rrpv[base + w] == MAX_RRPV {
                    return w as u16;
                }
            }
            for w in 0..self.ways as usize {
                self.rrpv[base + w] += 1;
            }
        }
    }

    /// Metadata cost: 2 bits per line.
    pub(crate) fn overhead_bits(config: &CacheConfig) -> u64 {
        config.lines() * 2
    }
}

/// Static RRIP: insert at "long" (RRPV 2), promote to 0 on hit, evict at
/// RRPV 3. Scan-resistant but not thrash-resistant.
#[derive(Clone, Debug)]
pub struct Srrip {
    table: RrpvTable,
}

impl Srrip {
    /// Creates SRRIP for the geometry.
    pub fn new(config: &CacheConfig) -> Self {
        Self { table: RrpvTable::new(config) }
    }
}

impl ReplacementPolicy for Srrip {
    fn uses_line_snapshots(&self) -> bool {
        false // victim choice reads only internal (set, way) metadata
    }

    fn name(&self) -> String {
        "SRRIP".to_owned()
    }

    fn select_victim(&mut self, set: u32, _lines: &[LineSnapshot], _access: &Access) -> Decision {
        Decision::Evict(self.table.find_victim(set))
    }

    fn on_hit(&mut self, set: u32, way: u16, _access: &Access) {
        self.table.set(set, way, 0);
    }

    fn on_fill(&mut self, set: u32, way: u16, _access: &Access) {
        self.table.set(set, way, LONG_RRPV);
    }

    fn overhead_bits(&self, config: &CacheConfig) -> u64 {
        RrpvTable::overhead_bits(config)
    }
}

/// Bimodal RRIP: like SRRIP but inserts at "distant" (RRPV 3) most of the
/// time, and "long" (RRPV 2) with probability 1/32 — thrash-resistant.
#[derive(Clone, Debug)]
pub struct Brrip {
    table: RrpvTable,
    throttle: u32,
}

/// BRRIP inserts at LONG once per this many fills.
const BRRIP_PERIOD: u32 = 32;

impl Brrip {
    /// Creates BRRIP for the geometry.
    pub fn new(config: &CacheConfig) -> Self {
        Self { table: RrpvTable::new(config), throttle: 0 }
    }

    fn insertion_rrpv(&mut self) -> u8 {
        self.throttle = (self.throttle + 1) % BRRIP_PERIOD;
        if self.throttle == 0 {
            LONG_RRPV
        } else {
            MAX_RRPV
        }
    }
}

impl ReplacementPolicy for Brrip {
    fn uses_line_snapshots(&self) -> bool {
        false // victim choice reads only internal (set, way) metadata
    }

    fn name(&self) -> String {
        "BRRIP".to_owned()
    }

    fn select_victim(&mut self, set: u32, _lines: &[LineSnapshot], _access: &Access) -> Decision {
        Decision::Evict(self.table.find_victim(set))
    }

    fn on_hit(&mut self, set: u32, way: u16, _access: &Access) {
        self.table.set(set, way, 0);
    }

    fn on_fill(&mut self, set: u32, way: u16, _access: &Access) {
        let rrpv = self.insertion_rrpv();
        self.table.set(set, way, rrpv);
    }

    fn overhead_bits(&self, config: &CacheConfig) -> u64 {
        RrpvTable::overhead_bits(config) + 5 // throttle counter
    }
}

/// Which dueling team a set belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum DuelRole {
    LeaderA,
    LeaderB,
    Follower,
}

/// Classic set-dueling constituency assignment: a handful of leader sets
/// per team, everyone else follows the winning team.
pub(crate) fn duel_role(set: u32) -> DuelRole {
    match set % 64 {
        0 => DuelRole::LeaderA,
        33 => DuelRole::LeaderB,
        _ => DuelRole::Follower,
    }
}

/// Dynamic RRIP: set-dueling between SRRIP and BRRIP insertion with a
/// 10-bit PSEL counter (Table I: 8 KB for a 16-way 2 MB cache).
#[derive(Clone, Debug)]
pub struct Drrip {
    table: RrpvTable,
    throttle: u32,
    /// Saturating selector; high = BRRIP is losing (more leader misses).
    psel: i32,
}

/// PSEL saturation bound (10-bit counter centred on zero).
const PSEL_MAX: i32 = 511;

impl Drrip {
    /// Creates DRRIP for the geometry.
    pub fn new(config: &CacheConfig) -> Self {
        Self { table: RrpvTable::new(config), throttle: 0, psel: 0 }
    }

    fn brrip_insertion(&mut self) -> u8 {
        self.throttle = (self.throttle + 1) % BRRIP_PERIOD;
        if self.throttle == 0 {
            LONG_RRPV
        } else {
            MAX_RRPV
        }
    }
}

impl ReplacementPolicy for Drrip {
    fn uses_line_snapshots(&self) -> bool {
        false // victim choice reads only internal (set, way) metadata
    }

    fn name(&self) -> String {
        "DRRIP".to_owned()
    }

    fn select_victim(&mut self, set: u32, _lines: &[LineSnapshot], access: &Access) -> Decision {
        // Leader-set misses steer the selector (writebacks excluded, as in
        // the original proposal's demand-miss accounting).
        if access.kind != AccessKind::Writeback {
            match duel_role(set) {
                DuelRole::LeaderA => self.psel = (self.psel + 1).min(PSEL_MAX),
                DuelRole::LeaderB => self.psel = (self.psel - 1).max(-PSEL_MAX - 1),
                DuelRole::Follower => {}
            }
        }
        Decision::Evict(self.table.find_victim(set))
    }

    fn on_hit(&mut self, set: u32, way: u16, _access: &Access) {
        self.table.set(set, way, 0);
    }

    fn on_fill(&mut self, set: u32, way: u16, _access: &Access) {
        let use_srrip = match duel_role(set) {
            DuelRole::LeaderA => true,
            DuelRole::LeaderB => false,
            // psel > 0 means SRRIP leaders missed more: follow BRRIP.
            DuelRole::Follower => self.psel <= 0,
        };
        let rrpv = if use_srrip { LONG_RRPV } else { self.brrip_insertion() };
        self.table.set(set, way, rrpv);
    }

    fn overhead_bits(&self, config: &CacheConfig) -> u64 {
        RrpvTable::overhead_bits(config) + 10
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> CacheConfig {
        CacheConfig { sets: 64, ways: 4, latency: 1 }
    }

    fn access(addr: u64) -> Access {
        Access { pc: 0x400, addr, kind: AccessKind::Load, core: 0, seq: 0 }
    }

    fn lines() -> Vec<LineSnapshot> {
        vec![LineSnapshot { valid: true, line: 0, dirty: false, core: 0 }; 4]
    }

    #[test]
    fn srrip_evicts_distant_line_first() {
        let mut p = Srrip::new(&cfg());
        for w in 0..4 {
            p.on_fill(0, w, &access(0));
        }
        // Promote three lines; the fourth stays at LONG and must age out first.
        p.on_hit(0, 0, &access(0));
        p.on_hit(0, 1, &access(0));
        p.on_hit(0, 3, &access(0));
        match p.select_victim(0, &lines(), &access(64)) {
            Decision::Evict(w) => assert_eq!(w, 2),
            Decision::Bypass => panic!("SRRIP never bypasses"),
        }
    }

    #[test]
    fn srrip_aging_terminates_and_is_uniform() {
        let mut p = Srrip::new(&cfg());
        for w in 0..4 {
            p.on_fill(0, w, &access(0));
            p.on_hit(0, w, &access(0)); // everyone at RRPV 0
        }
        // Victim search must age everyone up to MAX and pick way 0.
        match p.select_victim(0, &lines(), &access(64)) {
            Decision::Evict(w) => assert_eq!(w, 0),
            Decision::Bypass => panic!("SRRIP never bypasses"),
        }
        // After aging, the others sit at MAX too.
        assert_eq!(p.table.get(0, 1), MAX_RRPV);
    }

    #[test]
    fn brrip_mostly_inserts_distant() {
        let mut p = Brrip::new(&cfg());
        let mut distant = 0;
        for i in 0..320 {
            let set = (i % 64) as u32;
            p.on_fill(set, 0, &access(0));
            if p.table.get(set, 0) == MAX_RRPV {
                distant += 1;
            }
        }
        assert_eq!(distant, 310, "10 of 320 fills (1/32) insert at LONG");
    }

    #[test]
    fn drrip_followers_switch_with_psel() {
        let mut p = Drrip::new(&cfg());
        // Hammer misses into the SRRIP leader set (set 0) to push PSEL up.
        for _ in 0..100 {
            let _ = p.select_victim(0, &lines(), &access(0));
        }
        assert!(p.psel > 0);
        // Followers now use BRRIP insertion: overwhelmingly distant.
        let mut distant = 0;
        for _ in 0..64 {
            p.on_fill(5, 1, &access(0));
            if p.table.get(5, 1) == MAX_RRPV {
                distant += 1;
            }
        }
        assert!(distant >= 62);

        // Push PSEL the other way via the BRRIP leader set (set 33).
        for _ in 0..300 {
            let _ = p.select_victim(33, &lines(), &access(0));
        }
        assert!(p.psel < 0);
        p.on_fill(5, 1, &access(0));
        assert_eq!(p.table.get(5, 1), LONG_RRPV, "followers now insert like SRRIP");
    }

    #[test]
    fn duel_roles_are_sparse() {
        let leaders = (0..2048u32)
            .filter(|&s| duel_role(s) != DuelRole::Follower)
            .count();
        assert_eq!(leaders, 64, "one leader per team per 64-set group");
    }
}
