//! KPC-R: the replacement half of "Kill the Program Counter" (Kim et al.,
//! 2017) — the paper's strongest non-PC baseline.
//!
//! KPC-R is RRIP-based and uses global counters to adapt the insertion
//! depth between "near LRU" (RRPV 2) and "LRU" (RRPV 3) across program
//! phases, without any PC information. Prefetch fills always insert at
//! distant RRPV, and prefetch re-references promote only part-way, limiting
//! LLC pollution from the prefetcher.

use cache_sim::{Access, AccessKind, CacheConfig, Decision, LineSnapshot, ReplacementPolicy};

use crate::rrip::{duel_role, DuelRole, RrpvTable, LONG_RRPV, MAX_RRPV};

/// Selector saturation (10-bit counter centred on zero).
const PSEL_MAX: i32 = 511;

/// The KPC-R replacement policy.
#[derive(Clone, Debug)]
pub struct KpcR {
    table: RrpvTable,
    /// Global phase selector: positive means near-LRU-insertion leaders are
    /// missing more, so followers insert at LRU (distant).
    psel: i32,
}

impl KpcR {
    /// Creates KPC-R for the geometry.
    pub fn new(config: &CacheConfig) -> Self {
        Self { table: RrpvTable::new(config), psel: 0 }
    }
}

impl ReplacementPolicy for KpcR {
    fn uses_line_snapshots(&self) -> bool {
        false // victim choice reads only internal (set, way) metadata
    }

    fn name(&self) -> String {
        "KPC-R".to_owned()
    }

    fn select_victim(&mut self, set: u32, _lines: &[LineSnapshot], access: &Access) -> Decision {
        if access.kind != AccessKind::Writeback {
            match duel_role(set) {
                DuelRole::LeaderA => self.psel = (self.psel + 1).min(PSEL_MAX),
                DuelRole::LeaderB => self.psel = (self.psel - 1).max(-PSEL_MAX - 1),
                DuelRole::Follower => {}
            }
        }
        Decision::Evict(self.table.find_victim(set))
    }

    fn on_hit(&mut self, set: u32, way: u16, access: &Access) {
        if access.kind == AccessKind::Prefetch {
            // Prefetch re-references promote only to "long", so lines kept
            // alive purely by the prefetcher still age out quickly.
            let current = self.table.get(set, way);
            self.table.set(set, way, current.min(LONG_RRPV));
        } else {
            self.table.set(set, way, 0);
        }
    }

    fn on_fill(&mut self, set: u32, way: u16, access: &Access) {
        let rrpv = if access.kind == AccessKind::Prefetch {
            // All prefetched lines are inserted at the LRU position.
            MAX_RRPV
        } else {
            match duel_role(set) {
                DuelRole::LeaderA => LONG_RRPV,
                DuelRole::LeaderB => MAX_RRPV,
                DuelRole::Follower => {
                    if self.psel <= 0 {
                        LONG_RRPV
                    } else {
                        MAX_RRPV
                    }
                }
            }
        };
        self.table.set(set, way, rrpv);
    }

    fn overhead_bits(&self, config: &CacheConfig) -> u64 {
        // RRPVs plus the global selector and phase counters (~0.57 KB of
        // global state in the original proposal).
        RrpvTable::overhead_bits(config) + 10 + 4672
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> CacheConfig {
        CacheConfig { sets: 64, ways: 4, latency: 1 }
    }

    fn access(kind: AccessKind) -> Access {
        Access { pc: 0x400, addr: 0, kind, core: 0, seq: 0 }
    }

    #[test]
    fn prefetch_fills_insert_distant() {
        let mut p = KpcR::new(&cfg());
        p.on_fill(2, 0, &access(AccessKind::Prefetch));
        assert_eq!(p.table.get(2, 0), MAX_RRPV);
    }

    #[test]
    fn demand_hit_promotes_fully_prefetch_hit_partially() {
        let mut p = KpcR::new(&cfg());
        p.on_fill(2, 0, &access(AccessKind::Prefetch));
        p.on_hit(2, 0, &access(AccessKind::Prefetch));
        assert_eq!(p.table.get(2, 0), LONG_RRPV);
        p.on_hit(2, 0, &access(AccessKind::Load));
        assert_eq!(p.table.get(2, 0), 0);
    }

    #[test]
    fn followers_track_the_selector() {
        let mut p = KpcR::new(&cfg());
        let lines = [LineSnapshot { valid: true, line: 0, dirty: false, core: 0 }; 4];
        for _ in 0..50 {
            let _ = p.select_victim(0, &lines, &access(AccessKind::Load));
        }
        assert!(p.psel > 0);
        p.on_fill(7, 0, &access(AccessKind::Load));
        assert_eq!(p.table.get(7, 0), MAX_RRPV, "followers insert distant when near-LRU leaders miss");
    }

    #[test]
    fn overhead_is_near_table_i() {
        let cfg = CacheConfig::with_capacity_kb(2048, 16, 26);
        let p = KpcR::new(&cfg);
        let kb = p.overhead_bits(&cfg) as f64 / 8.0 / 1024.0;
        // Table I reports 8.57 KB.
        assert!((8.0..9.2).contains(&kb), "KPC-R overhead {kb:.2} KB");
    }
}
