//! Belady's optimal replacement (MIN), driven by a precomputed next-use
//! oracle.
//!
//! Belady's algorithm evicts the line whose next reference is farthest in
//! the future. It requires future knowledge, so — exactly as in the paper,
//! where RL and Belady run in a separate trace-driven simulator — it is
//! driven by an oracle built from a captured LLC access trace
//! ([`cache_sim::LlcTrace::next_use_table`]). Because the simulated LLC
//! access stream is invariant across LLC policies, replaying the same
//! workload with this policy is exact.

use cache_sim::{Access, CacheConfig, Decision, LineSnapshot, LlcTrace, ReplacementPolicy};

/// Belady's optimal policy (OPT/MIN).
///
/// ```
/// use cache_sim::{AccessKind, LlcRecord, LlcTrace};
/// use policies::Belady;
///
/// let trace: LlcTrace = [
///     LlcRecord { pc: 0, line: 1, kind: AccessKind::Load, core: 0 },
///     LlcRecord { pc: 0, line: 2, kind: AccessKind::Load, core: 0 },
///     LlcRecord { pc: 0, line: 1, kind: AccessKind::Load, core: 0 },
/// ].into_iter().collect();
/// let cfg = cache_sim::CacheConfig { sets: 1, ways: 2, latency: 1 };
/// let opt = Belady::from_trace(&trace, &cfg);
/// ```
#[derive(Clone, Debug)]
pub struct Belady {
    ways: u16,
    /// For access index `i`, the index of the next access to the same line.
    next_use: Vec<u64>,
    /// Per resident line: the sequence number of its next reference.
    line_next: Vec<u64>,
    /// Evict-on-farthest can optionally become bypass-on-farthest when the
    /// incoming line's next use is beyond every resident line's.
    bypass: bool,
}

impl Belady {
    /// Builds the oracle from a captured LLC trace for a cache of the given
    /// geometry.
    pub fn from_trace(trace: &LlcTrace, config: &CacheConfig) -> Self {
        Self::from_next_use(trace.next_use_table(), config)
    }

    /// Builds the policy from a precomputed next-use table.
    pub fn from_next_use(next_use: Vec<u64>, config: &CacheConfig) -> Self {
        Self {
            ways: config.ways,
            next_use,
            line_next: vec![u64::MAX; config.lines() as usize],
            bypass: false,
        }
    }

    /// Enables optimal bypassing (MIN with bypass): an incoming line whose
    /// next use is farther than every resident line's is not cached.
    pub fn with_bypass(mut self) -> Self {
        self.bypass = true;
        self
    }

    fn oracle(&self, seq: u64) -> u64 {
        self.next_use.get(seq as usize).copied().unwrap_or(u64::MAX)
    }
}

impl ReplacementPolicy for Belady {
    fn name(&self) -> String {
        "Belady".to_owned()
    }

    fn select_victim(&mut self, set: u32, lines: &[LineSnapshot], access: &Access) -> Decision {
        let base = set as usize * self.ways as usize;
        let (victim, farthest) = (0..lines.len())
            .map(|w| (w, self.line_next[base + w]))
            .max_by_key(|&(w, next)| (next, std::cmp::Reverse(w)))
            .expect("non-empty set");
        if self.bypass && self.oracle(access.seq) > farthest {
            return Decision::Bypass;
        }
        Decision::Evict(victim as u16)
    }

    fn on_hit(&mut self, set: u32, way: u16, access: &Access) {
        self.line_next[set as usize * self.ways as usize + way as usize] =
            self.oracle(access.seq);
    }

    fn on_fill(&mut self, set: u32, way: u16, access: &Access) {
        self.line_next[set as usize * self.ways as usize + way as usize] =
            self.oracle(access.seq);
    }

    fn overhead_bits(&self, _config: &CacheConfig) -> u64 {
        // Not implementable in hardware: requires future knowledge.
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cache_sim::{AccessKind, CacheConfig, SetAssocCache};

    /// Simulates `lines` through a one-set cache of `ways`, returning hits.
    fn run_policy(
        accesses: &[u64],
        ways: u16,
        make: impl Fn(&LlcTrace, &CacheConfig) -> Box<dyn ReplacementPolicy>,
    ) -> u64 {
        let trace: LlcTrace = accesses
            .iter()
            .map(|&l| cache_sim::LlcRecord { pc: 0, line: l, kind: AccessKind::Load, core: 0 })
            .collect();
        let cfg = CacheConfig { sets: 1, ways, latency: 1 };
        let mut cache = SetAssocCache::new("llc", cfg, make(&trace, &cfg));
        let mut hits = 0;
        for (i, &line) in accesses.iter().enumerate() {
            let a = Access {
                pc: 0,
                addr: line * 64,
                kind: AccessKind::Load,
                core: 0,
                seq: i as u64,
            };
            if cache.access(&a).hit {
                hits += 1;
            }
        }
        hits
    }

    #[test]
    fn classic_belady_example() {
        // 2-way cache. A B A C B C: OPT evicts A at the fill of C (A is
        // never needed again) and hits on the B and C reuses (2 hits); LRU
        // evicts B there and gets only 1 hit.
        let pattern = [1, 2, 1, 3, 2, 3];
        let opt_hits = run_policy(&pattern, 2, |t, c| Box::new(Belady::from_trace(t, c)));
        let lru_hits = run_policy(&pattern, 2, |_, _| {
            Box::new(cache_sim::TrueLru::new(&CacheConfig { sets: 1, ways: 2, latency: 1 }))
        });
        assert_eq!(opt_hits, 3);
        assert_eq!(lru_hits, 2);
    }

    #[test]
    fn belady_never_loses_to_lru_on_random_streams() {
        use simrng::Rng;
        let mut rng = simrng::SimRng::seed_from_u64(11);
        for trial in 0..20 {
            let pattern: Vec<u64> = (0..400).map(|_| rng.gen_range(0..12)).collect();
            let opt = run_policy(&pattern, 4, |t, c| Box::new(Belady::from_trace(t, c)));
            let lru = run_policy(&pattern, 4, |_, _| {
                Box::new(cache_sim::TrueLru::new(&CacheConfig { sets: 1, ways: 4, latency: 1 }))
            });
            assert!(opt >= lru, "trial {trial}: OPT {opt} < LRU {lru}");
        }
    }

    #[test]
    fn thrash_pattern_optimal_keeps_a_subset() {
        // Cyclic pattern over 5 lines in a 4-way cache: LRU gets zero hits;
        // OPT retains 4 of 5 lines and hits on 3 of every 5 accesses
        // asymptotically.
        let mut pattern = Vec::new();
        for _ in 0..40 {
            for l in 0..5 {
                pattern.push(l);
            }
        }
        let opt = run_policy(&pattern, 4, |t, c| Box::new(Belady::from_trace(t, c)));
        let lru = run_policy(&pattern, 4, |_, _| {
            Box::new(cache_sim::TrueLru::new(&CacheConfig { sets: 1, ways: 4, latency: 1 }))
        });
        assert_eq!(lru, 0, "LRU thrashes the cyclic pattern");
        assert!(opt > 100, "OPT must retain most of the working set, got {opt}");
    }

    #[test]
    fn bypass_variant_never_hurts() {
        use simrng::Rng;
        let mut rng = simrng::SimRng::seed_from_u64(5);
        let pattern: Vec<u64> = (0..500).map(|_| rng.gen_range(0..16)).collect();
        let plain = run_policy(&pattern, 4, |t, c| Box::new(Belady::from_trace(t, c)));
        // Note: the test cache has bypass disabled, so Bypass falls back to
        // way 0; enable it to observe the benefit.
        let trace: LlcTrace = pattern
            .iter()
            .map(|&l| cache_sim::LlcRecord { pc: 0, line: l, kind: AccessKind::Load, core: 0 })
            .collect();
        let cfg = CacheConfig { sets: 1, ways: 4, latency: 1 };
        let mut cache =
            SetAssocCache::new("llc", cfg, Box::new(Belady::from_trace(&trace, &cfg).with_bypass()));
        cache.set_allow_bypass(true);
        let mut bypass_hits = 0;
        for (i, &line) in pattern.iter().enumerate() {
            let a = Access { pc: 0, addr: line * 64, kind: AccessKind::Load, core: 0, seq: i as u64 };
            if cache.access(&a).hit {
                bypass_hits += 1;
            }
        }
        assert!(bypass_hits >= plain, "bypass-capable OPT ({bypass_hits}) must not lose to OPT ({plain})");
    }
}
