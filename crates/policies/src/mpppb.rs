//! MPPPB: Multiperspective Placement, Promotion, and Bypass (Jiménez &
//! Teran, MICRO 2017).
//!
//! A perceptron-style reuse predictor: several independent feature tables
//! (each a different "perspective" on the access — the PC, older PCs from
//! the path history, address bits, and the offset) are indexed by hashed
//! feature values; the sum of the selected weights predicts whether the
//! line will be reused. Predicted-dead lines are placed at distant RRPV
//! and evicted first; sampled sets train the weights on observed reuse.

use cache_sim::{Access, AccessKind, CacheConfig, Decision, LineSnapshot, ReplacementPolicy};

use crate::pc_signature;
use crate::rrip::{RrpvTable, LONG_RRPV, MAX_RRPV};

/// Number of feature tables (perspectives).
const TABLES: usize = 6;
/// Entries per feature table.
const TABLE_BITS: u32 = 8;
/// Signed weight saturation (6-bit).
const WEIGHT_MAX: i16 = 31;
/// Prediction threshold: sum below this predicts "dead on arrival".
const DEAD_THRESHOLD: i32 = -12;
/// Training margin.
const MARGIN: i32 = 24;
/// One of every `SAMPLE_PERIOD` sets trains the predictor.
const SAMPLE_PERIOD: u32 = 32;
/// Path-history length feeding the older-PC perspectives.
const PATH: usize = 3;

/// The MPPPB replacement policy (placement + promotion; bypass requires a
/// bypass-capable cache and is therefore optional).
#[derive(Clone, Debug)]
pub struct Mpppb {
    table: RrpvTable,
    ways: u16,
    /// `weights[t][i]`: weight `i` of perspective `t`.
    weights: Vec<i16>,
    /// Recent PC path (hashed), newest first.
    path: [u64; PATH],
    /// Sampled-set training state: feature indices used at insertion and
    /// whether the line has been reused.
    sampler_features: Vec<[u16; TABLES]>,
    sampler_reused: Vec<bool>,
    sampler_valid: Vec<bool>,
}

impl Mpppb {
    /// Creates MPPPB for the geometry.
    pub fn new(config: &CacheConfig) -> Self {
        let sampled_lines =
            (config.sets as usize).div_ceil(SAMPLE_PERIOD as usize) * config.ways as usize;
        Self {
            table: RrpvTable::new(config),
            ways: config.ways,
            weights: vec![0; TABLES << TABLE_BITS],
            path: [0; PATH],
            sampler_features: vec![[0; TABLES]; sampled_lines],
            sampler_reused: vec![false; sampled_lines],
            sampler_valid: vec![false; sampled_lines],
        }
    }

    /// The six perspectives: current PC, the three most recent path PCs
    /// (each xor-folded with its depth), the line address tag bits, and the
    /// page-offset bits.
    fn features(&self, access: &Access) -> [u16; TABLES] {
        let mask = (1u64 << TABLE_BITS) - 1;
        let mut out = [0u16; TABLES];
        out[0] = (pc_signature(access.pc, TABLE_BITS)) as u16;
        for (depth, slot) in self.path.iter().enumerate() {
            out[1 + depth] = (pc_signature(slot ^ ((depth as u64 + 1) << 20), TABLE_BITS)) as u16;
        }
        out[4] = ((access.line() >> 10) & mask) as u16;
        out[5] = (access.line() & mask) as u16;
        out
    }

    fn weight_index(table: usize, feature: u16) -> usize {
        (table << TABLE_BITS) + usize::from(feature)
    }

    fn predict(&self, features: &[u16; TABLES]) -> i32 {
        features
            .iter()
            .enumerate()
            .map(|(t, &f)| i32::from(self.weights[Self::weight_index(t, f)]))
            .sum()
    }

    fn train(&mut self, features: &[u16; TABLES], reused: bool) {
        let sum = self.predict(features);
        let update = if reused { sum < MARGIN } else { sum > -MARGIN };
        if !update {
            return;
        }
        for (t, &f) in features.iter().enumerate() {
            let w = &mut self.weights[Self::weight_index(t, f)];
            if reused {
                *w = (*w + 1).min(WEIGHT_MAX);
            } else {
                *w = (*w - 1).max(-WEIGHT_MAX);
            }
        }
    }

    fn push_path(&mut self, pc: u64) {
        self.path.rotate_right(1);
        self.path[0] = pc;
    }

    fn sampler_slot(&self, set: u32, way: u16) -> Option<usize> {
        set.is_multiple_of(SAMPLE_PERIOD)
            .then(|| (set / SAMPLE_PERIOD) as usize * self.ways as usize + way as usize)
    }
}

impl ReplacementPolicy for Mpppb {
    fn uses_line_snapshots(&self) -> bool {
        false // victim choice reads only internal (set, way) metadata
    }

    fn name(&self) -> String {
        "MPPPB".to_owned()
    }

    fn select_victim(&mut self, set: u32, _lines: &[LineSnapshot], _access: &Access) -> Decision {
        Decision::Evict(self.table.find_victim(set))
    }

    fn on_hit(&mut self, set: u32, way: u16, access: &Access) {
        // Promotion is prediction-gated: predicted-dead re-references only
        // reach the middle of the stack.
        let features = self.features(access);
        let promote_to = if self.predict(&features) < DEAD_THRESHOLD { LONG_RRPV } else { 0 };
        let current = self.table.get(set, way);
        self.table.set(set, way, promote_to.min(current));
        if access.kind.is_demand() {
            self.push_path(access.pc);
        }
        if let Some(slot) = self.sampler_slot(set, way) {
            if self.sampler_valid[slot] && !self.sampler_reused[slot] {
                self.sampler_reused[slot] = true;
                let feats = self.sampler_features[slot];
                self.train(&feats, true);
            }
        }
    }

    fn on_fill(&mut self, set: u32, way: u16, access: &Access) {
        let features = self.features(access);
        if let Some(slot) = self.sampler_slot(set, way) {
            if self.sampler_valid[slot] && !self.sampler_reused[slot] {
                let feats = self.sampler_features[slot];
                self.train(&feats, false);
            }
            self.sampler_features[slot] = features;
            self.sampler_reused[slot] = false;
            self.sampler_valid[slot] = true;
        }
        let rrpv = if access.kind == AccessKind::Writeback {
            MAX_RRPV
        } else {
            let sum = self.predict(&features);
            if sum < DEAD_THRESHOLD {
                MAX_RRPV
            } else if sum < MARGIN {
                LONG_RRPV
            } else {
                0
            }
        };
        self.table.set(set, way, rrpv);
        if access.kind.is_demand() {
            self.push_path(access.pc);
        }
    }

    fn overhead_bits(&self, config: &CacheConfig) -> u64 {
        let rrpv = RrpvTable::overhead_bits(config);
        let weights = (TABLES as u64) * (1 << TABLE_BITS) * 6;
        let sampled_lines =
            u64::from(config.sets.div_ceil(SAMPLE_PERIOD)) * u64::from(config.ways);
        // Stored feature indices + reuse bit per sampled line.
        rrpv + weights + sampled_lines * (TABLES as u64 * u64::from(TABLE_BITS) + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> CacheConfig {
        CacheConfig { sets: 64, ways: 4, latency: 1 }
    }

    fn access(pc: u64, addr: u64) -> Access {
        Access { pc, addr, kind: AccessKind::Load, core: 0, seq: 0 }
    }

    #[test]
    fn reuse_in_sampled_sets_trains_toward_keep() {
        let mut p = Mpppb::new(&cfg());
        let a = access(0x400, 0);
        let before = p.predict(&p.features(&a));
        p.on_fill(0, 0, &a);
        p.on_hit(0, 0, &a);
        let after = p.predict(&p.features(&a));
        assert!(after > before, "reuse must raise the prediction: {before} -> {after}");
    }

    #[test]
    fn dead_lines_train_toward_evict() {
        let mut p = Mpppb::new(&cfg());
        let a = access(0x500, 64);
        p.on_fill(0, 1, &a);
        // Replaced without any hit: the insertion features train negative.
        let b = access(0x500, 128);
        p.on_fill(0, 1, &b);
        assert!(p.predict(&p.features(&a)) < 0);
    }

    #[test]
    fn trained_dead_predictor_inserts_distant() {
        let mut p = Mpppb::new(&cfg());
        let a = access(0x700, 0);
        let feats = p.features(&a);
        for _ in 0..40 {
            p.train(&feats, false);
        }
        p.on_fill(3, 2, &a);
        assert_eq!(p.table.get(3, 2), MAX_RRPV);
    }

    #[test]
    fn writebacks_insert_distant() {
        let mut p = Mpppb::new(&cfg());
        let wb = Access { pc: 0, addr: 0, kind: AccessKind::Writeback, core: 0, seq: 0 };
        p.on_fill(2, 0, &wb);
        assert_eq!(p.table.get(2, 0), MAX_RRPV);
    }

    #[test]
    fn perspectives_differ_across_features() {
        let p = Mpppb::new(&cfg());
        let a = p.features(&access(0x400, 0x1234_5678));
        let b = p.features(&access(0x404, 0x1234_5678));
        let c = p.features(&access(0x400, 0x9999_0000));
        assert_ne!(a[0], b[0], "PC perspective must react to the PC");
        assert_ne!(a[4..], c[4..], "address perspectives must react to the address");
    }

    #[test]
    fn overhead_is_in_mpppbs_class() {
        let cfg = CacheConfig::with_capacity_kb(2048, 16, 26);
        let p = Mpppb::new(&cfg);
        let kb = p.overhead_bits(&cfg) as f64 / 8.0 / 1024.0;
        // Table I reports 28 KB.
        assert!((9.0..32.0).contains(&kb), "MPPPB overhead {kb:.2} KB");
    }
}
