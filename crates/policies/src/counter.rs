//! Counter-based replacement (Kharbutli & Solihin, IEEE TC 2008): the AIP
//! (Access Interval Predictor) variant discussed in the paper's §II.
//!
//! Each line carries an event counter (set accesses since its last access)
//! and a learned expiration threshold; once the counter passes the
//! threshold the line is considered dead and becomes eligible for
//! replacement. Thresholds are learned per PC: when a line is evicted or
//! re-accessed, its observed maximal access interval updates a PC-indexed
//! prediction table, which seeds the threshold of future lines inserted by
//! the same PC.

use cache_sim::{Access, CacheConfig, Decision, LineSnapshot, ReplacementPolicy};

use crate::pc_signature;

/// Prediction-table index width.
const TABLE_BITS: u32 = 12;
/// Counter/threshold saturation (6-bit counters in the original).
const COUNTER_MAX: u64 = 63;
/// Threshold slack: a line expires once its interval exceeds the learned
/// maximum interval plus this margin (the original uses a small constant).
const SLACK: u64 = 2;

/// The counter-based (AIP) replacement policy.
#[derive(Clone, Debug)]
pub struct CounterBased {
    ways: u16,
    /// Per-set access clock (intervals are derived from stamps).
    set_clock: Vec<u64>,
    /// Per-line stamp at last access.
    stamp: Vec<u64>,
    /// Per-line largest access interval observed during residency.
    max_interval: Vec<u64>,
    /// Per-line learned expiration threshold.
    threshold: Vec<u64>,
    /// Per-line owning PC signature (to update the table on eviction).
    line_sig: Vec<u16>,
    /// PC-indexed predicted thresholds.
    table: Vec<u8>,
}

impl CounterBased {
    /// Creates the policy for the geometry.
    pub fn new(config: &CacheConfig) -> Self {
        let lines = config.lines() as usize;
        Self {
            ways: config.ways,
            set_clock: vec![0; config.sets as usize],
            stamp: vec![0; lines],
            max_interval: vec![0; lines],
            threshold: vec![COUNTER_MAX; lines],
            line_sig: vec![0; lines],
            table: vec![COUNTER_MAX as u8; 1 << TABLE_BITS],
        }
    }

    fn idx(&self, set: u32, way: u16) -> usize {
        set as usize * self.ways as usize + way as usize
    }

    fn interval(&self, set: u32, way: u16) -> u64 {
        (self.set_clock[set as usize] - self.stamp[self.idx(set, way)]).min(COUNTER_MAX)
    }

    /// Folds an observed interval into the PC table (max-with-decay, so
    /// phase changes are eventually forgotten).
    fn learn(&mut self, sig: u16, observed: u64) {
        let entry = &mut self.table[usize::from(sig)];
        let observed = observed.min(COUNTER_MAX) as u8;
        if observed > *entry {
            *entry = observed;
        } else {
            // Exponential-ish decay toward the observation.
            *entry -= (*entry - observed) / 4;
        }
    }
}

impl ReplacementPolicy for CounterBased {
    fn uses_line_snapshots(&self) -> bool {
        false // victim choice reads only internal (set, way) metadata
    }

    fn name(&self) -> String {
        "Counter(AIP)".to_owned()
    }

    fn on_miss(&mut self, set: u32, _access: &Access) {
        self.set_clock[set as usize] += 1;
    }

    fn select_victim(&mut self, set: u32, _lines: &[LineSnapshot], _access: &Access) -> Decision {
        // Prefer an expired line (counter past threshold); fall back to the
        // line closest past / nearest to expiration (largest interval).
        let mut expired: Option<(u16, u64)> = None;
        let mut oldest: (u16, u64) = (0, 0);
        for w in 0..self.ways {
            let interval = self.interval(set, w);
            let i = self.idx(set, w);
            if interval > self.threshold[i] + SLACK && expired.is_none_or(|(_, v)| interval > v) {
                expired = Some((w, interval));
            }
            if interval >= oldest.1 {
                oldest = (w, interval);
            }
        }
        let victim = expired.map_or(oldest.0, |(w, _)| w);
        // The evicted line's lifetime knowledge flows back into the table.
        let i = self.idx(set, victim);
        let sig = self.line_sig[i];
        let observed = self.max_interval[i].max(self.interval(set, victim));
        self.learn(sig, observed);
        Decision::Evict(victim)
    }

    fn on_hit(&mut self, set: u32, way: u16, access: &Access) {
        self.set_clock[set as usize] += 1;
        let interval = self.interval(set, way);
        let i = self.idx(set, way);
        self.max_interval[i] = self.max_interval[i].max(interval);
        // Re-access also refreshes the learned threshold for this line.
        self.threshold[i] = self.threshold[i].max(interval + SLACK).min(COUNTER_MAX);
        self.stamp[i] = self.set_clock[set as usize];
        self.line_sig[i] = pc_signature(access.pc, TABLE_BITS) as u16;
    }

    fn on_fill(&mut self, set: u32, way: u16, access: &Access) {
        let i = self.idx(set, way);
        let sig = pc_signature(access.pc, TABLE_BITS) as u16;
        self.stamp[i] = self.set_clock[set as usize];
        self.max_interval[i] = 0;
        self.line_sig[i] = sig;
        self.threshold[i] = u64::from(self.table[usize::from(sig)]);
    }

    fn overhead_bits(&self, config: &CacheConfig) -> u64 {
        // 6-bit counter + 6-bit threshold + PC signature per line, plus the
        // prediction table.
        config.lines() * (6 + 6 + u64::from(TABLE_BITS)) + (1 << TABLE_BITS) * 6
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cache_sim::AccessKind;

    fn cfg() -> CacheConfig {
        CacheConfig { sets: 2, ways: 4, latency: 1 }
    }

    fn access(pc: u64, addr: u64) -> Access {
        Access { pc, addr, kind: AccessKind::Load, core: 0, seq: 0 }
    }

    fn lines() -> Vec<LineSnapshot> {
        vec![LineSnapshot { valid: true, line: 0, dirty: false, core: 0 }; 4]
    }

    #[test]
    fn expired_lines_are_preferred() {
        let mut p = CounterBased::new(&cfg());
        for w in 0..4 {
            p.on_fill(0, w, &access(0x400, u64::from(w) * 64));
        }
        // Tighten way 1's threshold, then age the set far past it.
        let i = p.idx(0, 1);
        p.threshold[i] = 1;
        for _ in 0..20 {
            p.on_miss(0, &access(0x400, 999));
        }
        // Refresh every other way so only way 1 is expired.
        for w in [0u16, 2, 3] {
            p.on_hit(0, w, &access(0x400, u64::from(w) * 64));
        }
        match p.select_victim(0, &lines(), &access(0x1, 4096)) {
            Decision::Evict(w) => assert_eq!(w, 1),
            Decision::Bypass => panic!("counter-based never bypasses"),
        }
    }

    #[test]
    fn eviction_feeds_the_pc_table() {
        let mut p = CounterBased::new(&cfg());
        let pc = 0x777;
        let sig = pc_signature(pc, TABLE_BITS) as usize;
        p.on_fill(0, 0, &access(pc, 0));
        // Age a little, then force the eviction of way 0.
        for _ in 0..5 {
            p.on_miss(0, &access(0x1, 64));
        }
        let before = p.table[sig];
        let _ = p.select_victim(0, &lines(), &access(0x1, 4096));
        assert!(p.table[sig] <= before, "short lifetime must pull the prediction down");
    }

    #[test]
    fn new_lines_inherit_the_learned_threshold() {
        let mut p = CounterBased::new(&cfg());
        let pc = 0x123;
        let sig = pc_signature(pc, TABLE_BITS) as usize;
        p.table[sig] = 7;
        p.on_fill(1, 2, &access(pc, 64 * 3));
        assert_eq!(p.threshold[p.idx(1, 2)], 7);
    }

    #[test]
    fn hits_extend_the_threshold() {
        let mut p = CounterBased::new(&cfg());
        p.on_fill(0, 0, &access(0x1, 0));
        let i = p.idx(0, 0);
        p.threshold[i] = 1;
        for _ in 0..6 {
            p.on_miss(0, &access(0x2, 64));
        }
        p.on_hit(0, 0, &access(0x1, 0));
        assert!(p.threshold[i] >= 6, "a long observed interval must extend protection");
    }
}
