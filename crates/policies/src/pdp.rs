//! PDP: Protecting Distance based Policy (Duong et al., MICRO 2012).
//!
//! PDP protects every line until it has survived `PD` set accesses since
//! its last touch, where the protecting distance `PD` is recomputed
//! periodically from a reuse-distance histogram by maximizing the expected
//! hits per unit of cache occupancy.

use cache_sim::{Access, CacheConfig, Decision, LineSnapshot, ReplacementPolicy};

/// Largest protecting distance considered (the paper searches below 256).
const MAX_PD: usize = 256;
/// Recompute the PD after this many LLC accesses.
const RECOMPUTE_PERIOD: u64 = 128 * 1024;

/// The PDP replacement policy.
#[derive(Clone, Debug)]
pub struct Pdp {
    ways: u16,
    /// Per-set access counters (ages are derived lazily from stamps).
    set_clock: Vec<u64>,
    /// Per-line set-access stamp at last touch.
    stamp: Vec<u64>,
    /// Reuse-distance histogram (set accesses between touches), capped.
    hist: Vec<u64>,
    /// Current protecting distance.
    pd: u64,
    accesses: u64,
    /// Whether the policy may request bypass (requires cache support).
    bypass: bool,
}

impl Pdp {
    /// Creates PDP for the geometry, with bypassing disabled.
    pub fn new(config: &CacheConfig) -> Self {
        Self {
            ways: config.ways,
            set_clock: vec![0; config.sets as usize],
            stamp: vec![0; config.lines() as usize],
            hist: vec![0; MAX_PD + 1],
            pd: 64,
            accesses: 0,
            bypass: false,
        }
    }

    /// Enables bypass requests (honoured only by caches with bypass
    /// support).
    pub fn with_bypass(mut self) -> Self {
        self.bypass = true;
        self
    }

    /// The protecting distance currently in force.
    pub fn protecting_distance(&self) -> u64 {
        self.pd
    }

    fn idx(&self, set: u32, way: u16) -> usize {
        set as usize * self.ways as usize + way as usize
    }

    fn tick(&mut self, set: u32) -> u64 {
        self.set_clock[set as usize] += 1;
        self.accesses += 1;
        if self.accesses.is_multiple_of(RECOMPUTE_PERIOD) {
            self.recompute_pd();
        }
        self.set_clock[set as usize]
    }

    /// Chooses the PD maximizing E(dp) = hits(dp) / line-time(dp): the
    /// expected hits per unit of cache occupancy (the paper's "hits per
    /// line per unit time" criterion).
    fn recompute_pd(&mut self) {
        let total: u64 = self.hist.iter().sum();
        if total == 0 {
            return;
        }
        let mut best_pd = self.pd;
        let mut best_score = 0.0f64;
        let mut hits: u64 = 0;
        let mut weighted_time: u64 = 0;
        for d in 1..=MAX_PD as u64 {
            let h = self.hist[d as usize];
            hits += h;
            weighted_time += d * h;
            // Lines that never hit within d occupy the cache for d accesses.
            let occupancy = weighted_time + d * (total - hits);
            if occupancy > 0 {
                let score = hits as f64 / occupancy as f64;
                if score > best_score {
                    best_score = score;
                    best_pd = d;
                }
            }
        }
        self.pd = best_pd;
        // Decay so the estimate follows phase changes.
        for h in &mut self.hist {
            *h /= 2;
        }
    }
}

impl ReplacementPolicy for Pdp {
    fn uses_line_snapshots(&self) -> bool {
        false // victim choice reads only internal (set, way) metadata
    }

    fn name(&self) -> String {
        "PDP".to_owned()
    }

    fn on_miss(&mut self, set: u32, _access: &Access) {
        self.tick(set);
    }

    fn select_victim(&mut self, set: u32, _lines: &[LineSnapshot], _access: &Access) -> Decision {
        let clock = self.set_clock[set as usize];
        let base = self.idx(set, 0);
        let mut unprotected: Option<(u16, u64)> = None;
        let mut oldest: (u16, u64) = (0, 0);
        for w in 0..self.ways {
            let age = clock - self.stamp[base + w as usize];
            if age > self.pd && unprotected.is_none_or(|(_, a)| age > a) {
                unprotected = Some((w, age));
            }
            if age >= oldest.1 {
                oldest = (w, age);
            }
        }
        match unprotected {
            Some((w, _)) => Decision::Evict(w),
            None if self.bypass => Decision::Bypass,
            // All lines protected and no bypass: evict the one closest to
            // losing protection.
            None => Decision::Evict(oldest.0),
        }
    }

    fn on_hit(&mut self, set: u32, way: u16, _access: &Access) {
        let clock = self.tick(set);
        let i = self.idx(set, way);
        let distance = (clock - self.stamp[i]).min(MAX_PD as u64);
        self.hist[distance as usize] += 1;
        self.stamp[i] = clock;
    }

    fn on_fill(&mut self, set: u32, way: u16, _access: &Access) {
        // `on_miss` already advanced the clock for this access.
        let clock = self.set_clock[set as usize];
        let i = self.idx(set, way);
        self.stamp[i] = clock;
    }

    fn overhead_bits(&self, config: &CacheConfig) -> u64 {
        // The paper's implementation: an n-bit distance counter per line
        // (8 bits covers PD < 256), a per-set access counter, the RD
        // histogram, and the search logic's registers.
        config.lines() * 8 + u64::from(config.sets) * 8 + (MAX_PD as u64 + 1) * 16
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cache_sim::AccessKind;

    fn cfg() -> CacheConfig {
        CacheConfig { sets: 4, ways: 4, latency: 1 }
    }

    fn access(addr: u64) -> Access {
        Access { pc: 0, addr, kind: AccessKind::Load, core: 0, seq: 0 }
    }

    fn lines() -> Vec<LineSnapshot> {
        vec![LineSnapshot { valid: true, line: 0, dirty: false, core: 0 }; 4]
    }

    #[test]
    fn protected_lines_survive_until_pd() {
        let mut p = Pdp::new(&cfg());
        p.pd = 10;
        for w in 0..4 {
            p.on_fill(0, w, &access(u64::from(w) * 64));
        }
        // Immediately after filling, everything is protected: the policy
        // falls back to the oldest line rather than bypassing.
        match p.select_victim(0, &lines(), &access(999 * 64)) {
            Decision::Evict(w) => assert!(w < 4),
            Decision::Bypass => panic!("bypass disabled by default"),
        }
    }

    #[test]
    fn bypass_mode_bypasses_when_all_protected() {
        let mut p = Pdp::new(&cfg()).with_bypass();
        p.pd = 100;
        for w in 0..4 {
            p.on_fill(0, w, &access(u64::from(w) * 64));
        }
        assert_eq!(p.select_victim(0, &lines(), &access(999 * 64)), Decision::Bypass);
    }

    #[test]
    fn unprotected_line_is_chosen() {
        let mut p = Pdp::new(&cfg());
        p.pd = 2;
        for w in 0..4 {
            p.on_fill(0, w, &access(u64::from(w) * 64));
        }
        // Touch ways 1..3 repeatedly; way 0 ages beyond PD.
        for _ in 0..4 {
            for w in 1..4 {
                p.on_hit(0, w, &access(u64::from(w) * 64));
            }
        }
        match p.select_victim(0, &lines(), &access(999 * 64)) {
            Decision::Evict(w) => assert_eq!(w, 0),
            Decision::Bypass => panic!("unexpected bypass"),
        }
    }

    #[test]
    fn recompute_picks_reuse_knee() {
        let mut p = Pdp::new(&cfg());
        // All observed reuse happens at distance 8: the best PD is 8
        // (protecting longer only wastes occupancy).
        p.hist[8] = 1000;
        p.recompute_pd();
        assert_eq!(p.protecting_distance(), 8);
    }
}
