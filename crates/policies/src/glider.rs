//! Glider (Shi, Huang, Jain, Lin — MICRO 2019): an Integer Support Vector
//! Machine over an unordered PC history register, trained online with
//! OPTgen labels.
//!
//! Glider is the most hardware-expensive policy in the paper's Table I
//! (61.6 KB). Its offline LSTM analysis showed that an *unordered* set of
//! the last few PCs suffices to predict reuse; the hardware distills this
//! into a per-PC table of integer weights indexed by the history PCs.

use std::collections::HashMap;

use cache_sim::{Access, AccessKind, CacheConfig, Decision, LineSnapshot, ReplacementPolicy};

use crate::pc_signature;

/// 3-bit RRIP values, as in Hawkeye; 7 marks cache-averse lines.
const MAX_RRPV: u8 = 7;
/// Tracked history length (the paper's PCHR holds 5 PCs).
const HISTORY: usize = 5;
/// Hash width selecting the ISVM row (one row per current PC).
const ROW_BITS: u32 = 11;
/// Weights per row; each history PC selects one.
const WEIGHTS_PER_ROW: usize = 16;
/// Integer weight saturation (6-bit signed in the paper's budget).
const WEIGHT_MAX: i16 = 31;
/// Prediction sum for a high-confidence friendly insertion.
const CONFIDENT: i32 = 30;
/// Training margin: update until the sum clears this magnitude.
const MARGIN: i32 = 30;
/// One of every `SAMPLE_PERIOD` sets feeds OPTgen.
const SAMPLE_PERIOD: u32 = 32;

/// Per-sampled-set OPTgen, storing the PC history snapshot alongside each
/// access so training reconstructs the exact SVM inputs.
#[derive(Clone, Debug)]
struct OptGenSet {
    time: u64,
    window: usize,
    occupancy: Vec<u8>,
    last_access: HashMap<u64, (u64, u64, [u16; HISTORY])>,
}

impl OptGenSet {
    fn new(window: usize) -> Self {
        Self { time: 0, window, occupancy: vec![0; window], last_access: HashMap::new() }
    }

    /// Returns `Some((pc, history_snapshot, opt_hit))` when a label for the
    /// previous access to `line` is available.
    fn access(
        &mut self,
        line: u64,
        pc: u64,
        history: [u16; HISTORY],
        ways: u16,
    ) -> Option<(u64, [u16; HISTORY], bool)> {
        let now = self.time;
        self.time += 1;
        self.occupancy[(now % self.window as u64) as usize] = 0;
        let label = self.last_access.get(&line).copied().map(|(prev_t, prev_pc, prev_hist)| {
            let age = now - prev_t;
            if age == 0 || age >= self.window as u64 {
                (prev_pc, prev_hist, false)
            } else {
                let fits = (prev_t..now)
                    .all(|t| self.occupancy[(t % self.window as u64) as usize] < ways as u8);
                if fits {
                    for t in prev_t..now {
                        self.occupancy[(t % self.window as u64) as usize] += 1;
                    }
                }
                (prev_pc, prev_hist, fits)
            }
        });
        self.last_access.insert(line, (now, pc, history));
        if self.last_access.len() > 4 * self.window {
            let horizon = now.saturating_sub(self.window as u64);
            self.last_access.retain(|_, &mut (t, _, _)| t >= horizon);
        }
        label
    }
}

/// The Glider replacement policy.
#[derive(Clone, Debug)]
pub struct Glider {
    ways: u16,
    rrpv: Vec<u8>,
    /// Per line: the (row, selected weight indices) used at insertion, for
    /// eviction-time detraining.
    line_row: Vec<u16>,
    line_hist: Vec<[u16; HISTORY]>,
    /// ISVM: `weights[row * WEIGHTS_PER_ROW + k]`.
    weights: Vec<i16>,
    /// The PC history register: the last `HISTORY` hashed PCs (unordered
    /// use, ordered storage).
    history: [u16; HISTORY],
    optgen: Vec<OptGenSet>,
}

impl Glider {
    /// Creates Glider for the geometry.
    pub fn new(config: &CacheConfig) -> Self {
        let sampled = (config.sets as usize).div_ceil(SAMPLE_PERIOD as usize);
        let window = 8 * config.ways as usize;
        Self {
            ways: config.ways,
            rrpv: vec![MAX_RRPV; config.lines() as usize],
            line_row: vec![0; config.lines() as usize],
            line_hist: vec![[0; HISTORY]; config.lines() as usize],
            weights: vec![0; (1 << ROW_BITS) * WEIGHTS_PER_ROW],
            history: [0; HISTORY],
            optgen: (0..sampled).map(|_| OptGenSet::new(window)).collect(),
        }
    }

    fn row_of(pc: u64) -> u16 {
        pc_signature(pc, ROW_BITS) as u16
    }

    fn weight_index(row: u16, hist_pc: u16) -> usize {
        usize::from(row) * WEIGHTS_PER_ROW + usize::from(hist_pc) % WEIGHTS_PER_ROW
    }

    fn predict(&self, row: u16, history: &[u16; HISTORY]) -> i32 {
        history
            .iter()
            .map(|&h| i32::from(self.weights[Self::weight_index(row, h)]))
            .sum()
    }

    fn train(&mut self, row: u16, history: &[u16; HISTORY], friendly: bool) {
        let sum = self.predict(row, history);
        // Integer-SVM update rule: adjust only while inside the margin or
        // mispredicting.
        let update = if friendly { sum < MARGIN } else { sum > -MARGIN };
        if !update {
            return;
        }
        for &h in history {
            let w = &mut self.weights[Self::weight_index(row, h)];
            if friendly {
                *w = (*w + 1).min(WEIGHT_MAX);
            } else {
                *w = (*w - 1).max(-WEIGHT_MAX);
            }
        }
    }

    fn push_history(&mut self, pc: u64) {
        let hashed = pc_signature(pc, ROW_BITS) as u16;
        self.history.rotate_right(1);
        self.history[0] = hashed;
    }

    fn idx(&self, set: u32, way: u16) -> usize {
        set as usize * self.ways as usize + way as usize
    }

    fn observe_and_place(&mut self, set: u32, way: u16, access: &Access, is_fill: bool) {
        if access.kind != AccessKind::Writeback {
            // OPTgen training on sampled sets.
            if set.is_multiple_of(SAMPLE_PERIOD) {
                let slot = (set / SAMPLE_PERIOD) as usize;
                let ways = self.ways;
                let history = self.history;
                if let Some((prev_pc, prev_hist, opt_hit)) =
                    self.optgen[slot].access(access.line(), access.pc, history, ways)
                {
                    self.train(Self::row_of(prev_pc), &prev_hist, opt_hit);
                }
            }
            self.push_history(access.pc);
        }

        let row = Self::row_of(access.pc);
        let i = self.idx(set, way);
        self.line_row[i] = row;
        self.line_hist[i] = self.history;
        if access.kind == AccessKind::Writeback {
            self.rrpv[i] = MAX_RRPV;
            return;
        }
        let sum = self.predict(row, &self.history);
        self.rrpv[i] = if sum >= CONFIDENT {
            0
        } else if sum >= 0 {
            if is_fill {
                2
            } else {
                0
            }
        } else {
            MAX_RRPV
        };
    }
}

impl ReplacementPolicy for Glider {
    fn uses_line_snapshots(&self) -> bool {
        false // victim choice reads only internal (set, way) metadata
    }

    fn name(&self) -> String {
        "Glider".to_owned()
    }

    fn select_victim(&mut self, set: u32, _lines: &[LineSnapshot], _access: &Access) -> Decision {
        let base = set as usize * self.ways as usize;
        for w in 0..self.ways as usize {
            if self.rrpv[base + w] == MAX_RRPV {
                return Decision::Evict(w as u16);
            }
        }
        let victim = (0..self.ways as usize)
            .max_by_key(|&w| self.rrpv[base + w])
            .expect("at least one way");
        // Evicting a predicted-friendly line: detrain its insertion inputs.
        let row = self.line_row[base + victim];
        let hist = self.line_hist[base + victim];
        self.train(row, &hist, false);
        Decision::Evict(victim as u16)
    }

    fn on_hit(&mut self, set: u32, way: u16, access: &Access) {
        self.observe_and_place(set, way, access, false);
    }

    fn on_fill(&mut self, set: u32, way: u16, access: &Access) {
        self.observe_and_place(set, way, access, true);
    }

    fn overhead_bits(&self, config: &CacheConfig) -> u64 {
        let rrpv = config.lines() * 3;
        // ISVM weights (6-bit) + PCHR + sampled OPTgen (as in Hawkeye) +
        // per-line history hashes in the sampler.
        let isvm = (1u64 << ROW_BITS) * WEIGHTS_PER_ROW as u64 * 6;
        let pchr = HISTORY as u64 * u64::from(ROW_BITS);
        let window = 8 * u64::from(config.ways);
        let sampled = u64::from(config.sets.div_ceil(SAMPLE_PERIOD));
        let optgen = sampled
            * (window * 4
                + 2 * u64::from(config.ways) * (u64::from(ROW_BITS) * (1 + HISTORY as u64) + 8 + 8));
        rrpv + isvm + pchr + optgen
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> CacheConfig {
        CacheConfig { sets: 64, ways: 4, latency: 1 }
    }

    fn access(pc: u64, addr: u64) -> Access {
        Access { pc, addr, kind: AccessKind::Load, core: 0, seq: 0 }
    }

    fn lines() -> Vec<LineSnapshot> {
        vec![LineSnapshot { valid: true, line: 0, dirty: false, core: 0 }; 4]
    }

    #[test]
    fn positive_weights_insert_friendly() {
        let mut g = Glider::new(&cfg());
        // Pre-train: every weight of this PC's row strongly positive.
        let row = Glider::row_of(0x400);
        for k in 0..WEIGHTS_PER_ROW {
            g.weights[usize::from(row) * WEIGHTS_PER_ROW + k] = WEIGHT_MAX;
        }
        g.on_fill(1, 0, &access(0x400, 64));
        assert_eq!(g.rrpv[4], 0, "confident friendly PCs insert at MRU");
    }

    #[test]
    fn negative_weights_insert_averse() {
        let mut g = Glider::new(&cfg());
        let row = Glider::row_of(0x900);
        for k in 0..WEIGHTS_PER_ROW {
            g.weights[usize::from(row) * WEIGHTS_PER_ROW + k] = -WEIGHT_MAX;
        }
        g.on_fill(1, 2, &access(0x900, 128));
        assert_eq!(g.rrpv[6], MAX_RRPV);
        match g.select_victim(1, &lines(), &access(0x1, 999 * 64)) {
            Decision::Evict(w) => assert_eq!(w, 0, "first averse way wins (way 0 is averse-initialized)"),
            Decision::Bypass => panic!("Glider never bypasses"),
        }
    }

    #[test]
    fn optgen_labels_train_the_svm() {
        let mut g = Glider::new(&cfg());
        let pc = 0x400;
        // Short reuse in sampled set 0 must push the PC's weights up.
        g.on_fill(0, 0, &access(pc, 0));
        g.on_hit(0, 0, &access(pc, 0));
        let row = Glider::row_of(pc);
        let sum: i32 = (0..WEIGHTS_PER_ROW)
            .map(|k| i32::from(g.weights[usize::from(row) * WEIGHTS_PER_ROW + k]))
            .sum();
        assert!(sum > 0, "reuse must train weights positive, sum={sum}");
    }

    #[test]
    fn training_respects_the_margin() {
        // All five history slots select the same weight, so training stops
        // once 5·w clears the margin (the integer-SVM fixed-margin rule).
        let mut g = Glider::new(&cfg());
        let hist = [3u16; HISTORY];
        for _ in 0..100 {
            g.train(7, &hist, true);
        }
        let w = g.weights[Glider::weight_index(7, 3)];
        assert!(i32::from(w) * HISTORY as i32 >= MARGIN, "w = {w}");
        assert!(w <= WEIGHT_MAX);
        for _ in 0..300 {
            g.train(7, &hist, false);
        }
        let w = g.weights[Glider::weight_index(7, 3)];
        assert!(i32::from(w) * HISTORY as i32 <= -MARGIN, "w = {w}");
        assert!(w >= -WEIGHT_MAX);
    }

    #[test]
    fn history_register_shifts() {
        let mut g = Glider::new(&cfg());
        for pc in [0x10u64, 0x20, 0x30, 0x40, 0x50, 0x60] {
            g.push_history(pc);
        }
        assert_eq!(g.history[0], pc_signature(0x60, ROW_BITS) as u16);
        assert_eq!(g.history[HISTORY - 1], pc_signature(0x20, ROW_BITS) as u16);
    }

    #[test]
    fn overhead_is_in_gliders_class() {
        let cfg = CacheConfig::with_capacity_kb(2048, 16, 26);
        let g = Glider::new(&cfg);
        let kb = g.overhead_bits(&cfg) as f64 / 8.0 / 1024.0;
        // Table I reports 61.6 KB; our accounting lands in the tens of KB.
        assert!((25.0..70.0).contains(&kb), "Glider overhead {kb:.2} KB");
    }
}
