//! First-in first-out replacement.

use cache_sim::{Access, CacheConfig, Decision, LineSnapshot, ReplacementPolicy};

/// FIFO replacement: evicts the line that has been resident longest,
/// ignoring hits entirely.
///
/// Not evaluated in the paper, but a useful floor baseline and differential
/// test subject (FIFO equals LRU on access streams with no reuse).
#[derive(Clone, Debug)]
pub struct Fifo {
    ways: u16,
    /// Insertion stamp per line; smallest = oldest.
    stamps: Vec<u64>,
    clock: u64,
}

impl Fifo {
    /// Creates a FIFO policy for the geometry.
    pub fn new(config: &CacheConfig) -> Self {
        Self { ways: config.ways, stamps: vec![0; config.lines() as usize], clock: 0 }
    }
}

impl ReplacementPolicy for Fifo {
    fn uses_line_snapshots(&self) -> bool {
        false // victim choice reads only internal (set, way) metadata
    }

    fn name(&self) -> String {
        "FIFO".to_owned()
    }

    fn select_victim(&mut self, set: u32, _lines: &[LineSnapshot], _access: &Access) -> Decision {
        let base = set as usize * self.ways as usize;
        let victim = (0..self.ways)
            .min_by_key(|&w| self.stamps[base + w as usize])
            .expect("at least one way");
        Decision::Evict(victim)
    }

    fn on_hit(&mut self, _set: u32, _way: u16, _access: &Access) {}

    fn on_fill(&mut self, set: u32, way: u16, _access: &Access) {
        self.clock += 1;
        self.stamps[set as usize * self.ways as usize + way as usize] = self.clock;
    }

    fn overhead_bits(&self, config: &CacheConfig) -> u64 {
        config.lines() * u64::from(config.way_bits())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cache_sim::AccessKind;

    fn access(addr: u64) -> Access {
        Access { pc: 0, addr, kind: AccessKind::Load, core: 0, seq: 0 }
    }

    #[test]
    fn hits_do_not_change_order() {
        let cfg = CacheConfig { sets: 1, ways: 3, latency: 1 };
        let mut fifo = Fifo::new(&cfg);
        for way in 0..3 {
            fifo.on_fill(0, way, &access(u64::from(way) * 64));
        }
        fifo.on_hit(0, 0, &access(0)); // should be irrelevant
        let lines = [LineSnapshot { valid: true, line: 0, dirty: false, core: 0 }; 3];
        match fifo.select_victim(0, &lines, &access(999)) {
            Decision::Evict(w) => assert_eq!(w, 0, "oldest insertion wins despite the hit"),
            Decision::Bypass => panic!("FIFO never bypasses"),
        }
    }
}
