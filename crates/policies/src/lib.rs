//! Baseline LLC replacement policies for the RLR reproduction.
//!
//! Implements every comparison policy the paper evaluates:
//!
//! * recency family: [`TrueLru`](cache_sim::TrueLru) (from `cache-sim`),
//!   [`Fifo`],
//! * RRIP family: [`Srrip`], [`Brrip`], [`Drrip`] (set dueling),
//! * PC-based state of the art: [`Ship`], [`ShipPp`], [`Hawkeye`],
//!   [`Glider`] (ISVM), [`Mpppb`] (multiperspective perceptron),
//!   [`CounterBased`] (AIP),
//! * non-PC adaptive: [`KpcR`], [`Pdp`], [`Eva`],
//! * the offline optimum: [`Belady`] (with its oracle built from a captured
//!   LLC trace).
//!
//! All policies implement [`cache_sim::ReplacementPolicy`] and report their
//! hardware metadata cost via `overhead_bits`, reproducing Table I.
//!
//! ```
//! use cache_sim::{CacheConfig, ReplacementPolicy};
//! use policies::Drrip;
//!
//! let cfg = CacheConfig::with_capacity_kb(2048, 16, 26);
//! let drrip = Drrip::new(&cfg);
//! // Table I: DRRIP costs 8 KB (plus a PSEL counter) in a 16-way 2 MB cache.
//! assert_eq!(drrip.overhead_bits(&cfg), 8 * 1024 * 8 + 10);
//! ```

mod belady;
mod counter;
mod eva;
mod fifo;
mod glider;
mod hawkeye;
mod kpc;
mod mpppb;
mod pdp;
mod rrip;
mod ship;
mod shippp;

pub use belady::Belady;
pub use counter::CounterBased;
pub use eva::Eva;
pub use fifo::Fifo;
pub use glider::Glider;
pub use hawkeye::Hawkeye;
pub use kpc::KpcR;
pub use mpppb::Mpppb;
pub use pdp::Pdp;
pub use rrip::{Brrip, Drrip, Srrip};
pub use ship::Ship;
pub use shippp::ShipPp;

/// Hashes a program counter into a signature of `bits` bits, as used by the
/// PC-indexed predictors (SHiP, SHiP++, Hawkeye).
pub(crate) fn pc_signature(pc: u64, bits: u32) -> u64 {
    let mut h = pc >> 2; // drop instruction alignment bits
    h ^= h >> 17;
    h = h.wrapping_mul(0xED5A_D4BB);
    h ^= h >> 11;
    h = h.wrapping_mul(0xAC4C_1B51);
    h ^= h >> 15;
    h & ((1 << bits) - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn signatures_fit_in_requested_bits() {
        for pc in [0u64, 0x400_000, 0xdead_beef, u64::MAX] {
            assert!(pc_signature(pc, 14) < (1 << 14));
            assert!(pc_signature(pc, 13) < (1 << 13));
        }
    }

    #[test]
    fn signatures_spread_nearby_pcs() {
        let a = pc_signature(0x40_0000, 14);
        let b = pc_signature(0x40_0004, 14);
        let c = pc_signature(0x40_0008, 14);
        assert!(a != b || b != c, "adjacent PCs should not all collide");
    }
}
