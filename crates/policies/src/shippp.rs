//! SHiP++: the enhanced signature-based hit predictor (Young et al.,
//! CRC2 2017), the strongest PC-based baseline in the paper's single-core
//! results.

use cache_sim::{Access, AccessKind, CacheConfig, Decision, LineSnapshot, ReplacementPolicy};

use crate::pc_signature;
use crate::rrip::{RrpvTable, LONG_RRPV, MAX_RRPV};

/// Signature width in bits.
const SIG_BITS: u32 = 14;
/// Signature history counter table entries.
const SHCT_ENTRIES: usize = 1 << SIG_BITS;
/// SHCT counter ceiling (3-bit counters in SHiP++).
const SHCT_MAX: u8 = 7;
/// One of every `SAMPLE_PERIOD` sets carries training metadata.
const SAMPLE_PERIOD: u32 = 8;
/// Salt mixed into prefetch signatures so prefetches train separately.
const PREFETCH_SALT: u64 = 0x5A5A_5A5A_0000_0000;

/// SHiP++, implementing the five published enhancements over SHiP:
///
/// 1. fills whose signature counter is saturated insert at RRPV 0,
/// 2. the SHCT is trained only on a line's *first* re-reference,
/// 3. writeback fills insert at distant RRPV 3,
/// 4. prefetch accesses use a separate signature space,
/// 5. re-references by prefetch accesses do not promote the line.
#[derive(Clone, Debug)]
pub struct ShipPp {
    table: RrpvTable,
    shct: Vec<u8>,
    ways: u16,
    sampler_sig: Vec<u16>,
    sampler_reused: Vec<bool>,
    sampler_valid: Vec<bool>,
}

impl ShipPp {
    /// Creates SHiP++ for the geometry.
    pub fn new(config: &CacheConfig) -> Self {
        let sampled_lines =
            (config.sets as usize).div_ceil(SAMPLE_PERIOD as usize) * config.ways as usize;
        Self {
            table: RrpvTable::new(config),
            shct: vec![0; SHCT_ENTRIES],
            ways: config.ways,
            sampler_sig: vec![0; sampled_lines],
            sampler_reused: vec![false; sampled_lines],
            sampler_valid: vec![false; sampled_lines],
        }
    }

    fn signature(access: &Access) -> u16 {
        let pc = if access.kind == AccessKind::Prefetch {
            access.pc ^ PREFETCH_SALT
        } else {
            access.pc
        };
        pc_signature(pc, SIG_BITS) as u16
    }

    fn sampler_slot(&self, set: u32, way: u16) -> Option<usize> {
        set.is_multiple_of(SAMPLE_PERIOD)
            .then(|| (set / SAMPLE_PERIOD) as usize * self.ways as usize + way as usize)
    }
}

impl ReplacementPolicy for ShipPp {
    fn uses_line_snapshots(&self) -> bool {
        false // victim choice reads only internal (set, way) metadata
    }

    fn name(&self) -> String {
        "SHiP++".to_owned()
    }

    fn select_victim(&mut self, set: u32, _lines: &[LineSnapshot], _access: &Access) -> Decision {
        Decision::Evict(self.table.find_victim(set))
    }

    fn on_hit(&mut self, set: u32, way: u16, access: &Access) {
        // Enhancement 5: prefetch re-references leave the RRPV untouched.
        if access.kind != AccessKind::Prefetch {
            self.table.set(set, way, 0);
        }
        if let Some(slot) = self.sampler_slot(set, way) {
            // Enhancement 2: only the first re-reference trains the SHCT.
            if self.sampler_valid[slot] && !self.sampler_reused[slot] {
                self.sampler_reused[slot] = true;
                let sig = self.sampler_sig[slot] as usize;
                self.shct[sig] = (self.shct[sig] + 1).min(SHCT_MAX);
            }
        }
    }

    fn on_fill(&mut self, set: u32, way: u16, access: &Access) {
        let sig = Self::signature(access);
        if let Some(slot) = self.sampler_slot(set, way) {
            if self.sampler_valid[slot] && !self.sampler_reused[slot] {
                let old = self.sampler_sig[slot] as usize;
                self.shct[old] = self.shct[old].saturating_sub(1);
            }
            self.sampler_sig[slot] = sig;
            self.sampler_reused[slot] = false;
            self.sampler_valid[slot] = true;
        }
        // Enhancement 3: writebacks insert distant.
        let rrpv = if access.kind == AccessKind::Writeback {
            MAX_RRPV
        } else {
            match self.shct[sig as usize] {
                // Enhancement 1: saturated counters insert at MRU.
                c if c == SHCT_MAX => 0,
                0 => MAX_RRPV,
                _ => LONG_RRPV,
            }
        };
        self.table.set(set, way, rrpv);
    }

    fn overhead_bits(&self, config: &CacheConfig) -> u64 {
        let rrpv = RrpvTable::overhead_bits(config);
        let shct = SHCT_ENTRIES as u64 * 3;
        let sampled_lines =
            u64::from(config.sets.div_ceil(SAMPLE_PERIOD)) * u64::from(config.ways);
        rrpv + shct + sampled_lines * (u64::from(SIG_BITS) + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> CacheConfig {
        CacheConfig { sets: 64, ways: 4, latency: 1 }
    }

    fn access(pc: u64, kind: AccessKind) -> Access {
        Access { pc, addr: 0, kind, core: 0, seq: 0 }
    }

    #[test]
    fn writebacks_insert_distant() {
        let mut p = ShipPp::new(&cfg());
        p.on_fill(3, 0, &access(0, AccessKind::Writeback));
        assert_eq!(p.table.get(3, 0), MAX_RRPV);
    }

    #[test]
    fn saturated_signature_inserts_mru() {
        let mut p = ShipPp::new(&cfg());
        let pc = 0x400;
        let sig = ShipPp::signature(&access(pc, AccessKind::Load)) as usize;
        p.shct[sig] = SHCT_MAX;
        p.on_fill(5, 1, &access(pc, AccessKind::Load));
        assert_eq!(p.table.get(5, 1), 0);
    }

    #[test]
    fn only_first_rereference_trains() {
        let mut p = ShipPp::new(&cfg());
        let pc = 0x400;
        let sig = ShipPp::signature(&access(pc, AccessKind::Load)) as usize;
        p.on_fill(0, 0, &access(pc, AccessKind::Load));
        p.on_hit(0, 0, &access(pc, AccessKind::Load));
        p.on_hit(0, 0, &access(pc, AccessKind::Load));
        p.on_hit(0, 0, &access(pc, AccessKind::Load));
        assert_eq!(p.shct[sig], 1, "repeat hits must not inflate the counter");
    }

    #[test]
    fn prefetch_signature_is_separate() {
        let demand = ShipPp::signature(&access(0x400, AccessKind::Load));
        let prefetch = ShipPp::signature(&access(0x400, AccessKind::Prefetch));
        assert_ne!(demand, prefetch);
    }

    #[test]
    fn prefetch_hits_do_not_promote() {
        let mut p = ShipPp::new(&cfg());
        p.on_fill(1, 2, &access(0x99, AccessKind::Load));
        let before = p.table.get(1, 2);
        p.on_hit(1, 2, &access(0x99, AccessKind::Prefetch));
        assert_eq!(p.table.get(1, 2), before);
        p.on_hit(1, 2, &access(0x99, AccessKind::Load));
        assert_eq!(p.table.get(1, 2), 0);
    }

    #[test]
    fn overhead_is_near_table_i() {
        let cfg = CacheConfig::with_capacity_kb(2048, 16, 26);
        let p = ShipPp::new(&cfg);
        let kb = p.overhead_bits(&cfg) as f64 / 8.0 / 1024.0;
        // Table I reports 20 KB.
        assert!((14.0..24.0).contains(&kb), "SHiP++ overhead {kb:.2} KB");
    }
}
