//! SHiP: Signature-based Hit Predictor (Wu et al., MICRO 2011).

use cache_sim::{Access, CacheConfig, Decision, LineSnapshot, ReplacementPolicy};

use crate::pc_signature;
use crate::rrip::{RrpvTable, LONG_RRPV, MAX_RRPV};

/// Signature width in bits.
const SIG_BITS: u32 = 14;
/// Signature history counter table entries.
const SHCT_ENTRIES: usize = 1 << SIG_BITS;
/// SHCT counter ceiling (2-bit counters).
const SHCT_MAX: u8 = 3;
/// One of every `SAMPLE_PERIOD` sets carries training metadata.
const SAMPLE_PERIOD: u32 = 16;

/// SHiP: predicts a fill's re-reference behaviour from a PC signature.
///
/// Lines inserted by PCs with a non-zero Signature History Counter get
/// RRPV 2 (likely reused); others get RRPV 3 (distant). The SHCT is trained
/// in sampled sets: incremented when a sampled line is re-referenced,
/// decremented when a sampled line is evicted without reuse. The sampling
/// keeps the hardware budget at Table I's 14 KB.
#[derive(Clone, Debug)]
pub struct Ship {
    table: RrpvTable,
    shct: Vec<u8>,
    ways: u16,
    /// Per sampled line: (signature, has been re-referenced, slot in use).
    sampler_sig: Vec<u16>,
    sampler_reused: Vec<bool>,
    sampler_valid: Vec<bool>,
}

impl Ship {
    /// Creates SHiP for the geometry.
    pub fn new(config: &CacheConfig) -> Self {
        let sampled_lines =
            (config.sets as usize).div_ceil(SAMPLE_PERIOD as usize) * config.ways as usize;
        Self {
            table: RrpvTable::new(config),
            shct: vec![0; SHCT_ENTRIES],
            ways: config.ways,
            sampler_sig: vec![0; sampled_lines],
            sampler_reused: vec![false; sampled_lines],
            sampler_valid: vec![false; sampled_lines],
        }
    }

    fn sampler_slot(&self, set: u32, way: u16) -> Option<usize> {
        set.is_multiple_of(SAMPLE_PERIOD)
            .then(|| (set / SAMPLE_PERIOD) as usize * self.ways as usize + way as usize)
    }
}

impl ReplacementPolicy for Ship {
    fn uses_line_snapshots(&self) -> bool {
        false // victim choice reads only internal (set, way) metadata
    }

    fn name(&self) -> String {
        "SHiP".to_owned()
    }

    fn select_victim(&mut self, set: u32, _lines: &[LineSnapshot], _access: &Access) -> Decision {
        Decision::Evict(self.table.find_victim(set))
    }

    fn on_hit(&mut self, set: u32, way: u16, _access: &Access) {
        self.table.set(set, way, 0);
        if let Some(slot) = self.sampler_slot(set, way) {
            if self.sampler_valid[slot] {
                self.sampler_reused[slot] = true;
                let sig = self.sampler_sig[slot] as usize;
                self.shct[sig] = (self.shct[sig] + 1).min(SHCT_MAX);
            }
        }
    }

    fn on_fill(&mut self, set: u32, way: u16, access: &Access) {
        let sig = pc_signature(access.pc, SIG_BITS) as u16;
        if let Some(slot) = self.sampler_slot(set, way) {
            // Train down on a dead (never re-referenced) sampled line.
            if self.sampler_valid[slot] && !self.sampler_reused[slot] {
                let old = self.sampler_sig[slot] as usize;
                self.shct[old] = self.shct[old].saturating_sub(1);
            }
            self.sampler_sig[slot] = sig;
            self.sampler_reused[slot] = false;
            self.sampler_valid[slot] = true;
        }
        let rrpv = if self.shct[sig as usize] > 0 { LONG_RRPV } else { MAX_RRPV };
        self.table.set(set, way, rrpv);
    }

    fn overhead_bits(&self, config: &CacheConfig) -> u64 {
        let rrpv = RrpvTable::overhead_bits(config);
        let shct = SHCT_ENTRIES as u64 * 2;
        let sampled_lines =
            u64::from(config.sets.div_ceil(SAMPLE_PERIOD)) * u64::from(config.ways);
        // Signature + reuse bit per sampled line.
        rrpv + shct + sampled_lines * (u64::from(SIG_BITS) + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cache_sim::AccessKind;

    fn cfg() -> CacheConfig {
        CacheConfig { sets: 64, ways: 4, latency: 1 }
    }

    fn access(pc: u64, addr: u64) -> Access {
        Access { pc, addr, kind: AccessKind::Load, core: 0, seq: 0 }
    }

    #[test]
    fn trained_pc_inserts_at_long() {
        let mut p = Ship::new(&cfg());
        let hot_pc = 0x400;
        // Fill + re-reference in the sampled set 0 to train the signature.
        p.on_fill(0, 0, &access(hot_pc, 0));
        p.on_hit(0, 0, &access(hot_pc, 0));
        // A later fill from the same PC (any set) now predicts reuse.
        p.on_fill(5, 2, &access(hot_pc, 64));
        assert_eq!(p.table.get(5, 2), LONG_RRPV);
    }

    #[test]
    fn untrained_pc_inserts_distant() {
        let mut p = Ship::new(&cfg());
        p.on_fill(7, 1, &access(0x1234, 0));
        assert_eq!(p.table.get(7, 1), MAX_RRPV);
    }

    #[test]
    fn dead_lines_detrain_the_signature() {
        let mut p = Ship::new(&cfg());
        let pc = 0x400;
        let sig = pc_signature(pc, SIG_BITS) as usize;
        // Train up.
        p.on_fill(0, 0, &access(pc, 0));
        p.on_hit(0, 0, &access(pc, 0));
        assert_eq!(p.shct[sig], 1);
        // Replace the (already reused) line, then kill one without reuse.
        p.on_fill(0, 0, &access(pc, 64));
        p.on_fill(0, 0, &access(pc, 128));
        assert_eq!(p.shct[sig], 0, "unreused sampled line must decrement SHCT");
    }

    #[test]
    fn overhead_is_near_table_i() {
        let cfg = CacheConfig::with_capacity_kb(2048, 16, 26);
        let p = Ship::new(&cfg);
        let kb = p.overhead_bits(&cfg) as f64 / 8.0 / 1024.0;
        // Table I reports 14 KB; our structure accounting lands close.
        assert!((11.0..17.0).contains(&kb), "SHiP overhead {kb:.2} KB");
    }
}
