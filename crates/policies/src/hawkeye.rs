//! Hawkeye (Jain & Lin, ISCA 2016): learn from Belady's OPT.
//!
//! Hawkeye reconstructs, for a handful of sampled sets, what Belady's
//! optimal policy *would have done* (OPTgen), and trains a PC-indexed
//! predictor with those labels. Fills from "cache-friendly" PCs are
//! inserted at MRU; fills from "cache-averse" PCs are marked for immediate
//! eviction.

use std::collections::HashMap;

use cache_sim::{Access, AccessKind, CacheConfig, Decision, LineSnapshot, ReplacementPolicy};

use crate::pc_signature;

/// Hawkeye uses 3-bit RRIP values; 7 marks cache-averse lines.
const MAX_RRPV: u8 = 7;
/// Predictor index width (8K entries).
const PRED_BITS: u32 = 13;
/// 3-bit predictor counters; >= this value predicts cache-friendly.
const PRED_THRESHOLD: u8 = 4;
const PRED_MAX: u8 = 7;
/// One of every `SAMPLE_PERIOD` sets feeds OPTgen (64 sampled sets for the
/// paper's 2048-set LLC, matching the published hardware budget).
const SAMPLE_PERIOD: u32 = 32;

/// Per-sampled-set OPTgen state: a sliding occupancy vector over the last
/// `window` set accesses, plus the last access time and PC per line.
#[derive(Clone, Debug)]
struct OptGenSet {
    time: u64,
    window: usize,
    /// occupancy[i] = lines Belady would keep live during quantum
    /// `time - window + i`.
    occupancy: Vec<u8>,
    last_access: HashMap<u64, (u64, u64)>,
}

impl OptGenSet {
    fn new(window: usize) -> Self {
        Self { time: 0, window, occupancy: vec![0; window], last_access: HashMap::new() }
    }

    /// Records an access to `line` by `pc`; returns `Some((prev_pc, opt_hit))`
    /// when a training label for the previous access is available.
    fn access(&mut self, line: u64, pc: u64, ways: u16) -> Option<(u64, bool)> {
        let now = self.time;
        self.time += 1;
        // Slide the window: quantum `now` starts empty.
        self.occupancy[(now % self.window as u64) as usize] = 0;

        let label = self.last_access.get(&line).copied().map(|(prev_t, prev_pc)| {
            let age = now - prev_t;
            if age == 0 || age >= self.window as u64 {
                (prev_pc, false)
            } else {
                let fits = (prev_t..now)
                    .all(|t| self.occupancy[(t % self.window as u64) as usize] < ways as u8);
                if fits {
                    for t in prev_t..now {
                        self.occupancy[(t % self.window as u64) as usize] += 1;
                    }
                }
                (prev_pc, fits)
            }
        });
        self.last_access.insert(line, (now, pc));
        // Keep the map bounded to lines that can still produce labels.
        if self.last_access.len() > 4 * self.window {
            let horizon = now.saturating_sub(self.window as u64);
            self.last_access.retain(|_, &mut (t, _)| t >= horizon);
        }
        label
    }
}

/// The Hawkeye replacement policy.
#[derive(Clone, Debug)]
pub struct Hawkeye {
    ways: u16,
    rrpv: Vec<u8>,
    /// Hashed PC that last touched each line (for eviction-time detraining).
    line_sig: Vec<u16>,
    predictor: Vec<u8>,
    optgen: Vec<OptGenSet>,
}

impl Hawkeye {
    /// Creates Hawkeye for the geometry.
    pub fn new(config: &CacheConfig) -> Self {
        let sampled = (config.sets as usize).div_ceil(SAMPLE_PERIOD as usize);
        let window = 8 * config.ways as usize;
        Self {
            ways: config.ways,
            rrpv: vec![MAX_RRPV; config.lines() as usize],
            line_sig: vec![0; config.lines() as usize],
            predictor: vec![PRED_THRESHOLD; 1 << PRED_BITS],
            optgen: (0..sampled).map(|_| OptGenSet::new(window)).collect(),
        }
    }

    fn idx(&self, set: u32, way: u16) -> usize {
        set as usize * self.ways as usize + way as usize
    }

    fn predict_friendly(&self, sig: u16) -> bool {
        self.predictor[sig as usize] >= PRED_THRESHOLD
    }

    fn train(&mut self, sig: u16, up: bool) {
        let c = &mut self.predictor[sig as usize];
        if up {
            *c = (*c + 1).min(PRED_MAX);
        } else {
            *c = c.saturating_sub(1);
        }
    }

    /// Runs OPTgen for sampled sets and trains the predictor.
    fn observe(&mut self, set: u32, access: &Access) {
        if access.kind == AccessKind::Writeback || !set.is_multiple_of(SAMPLE_PERIOD) {
            return;
        }
        let slot = (set / SAMPLE_PERIOD) as usize;
        let ways = self.ways;
        if let Some((prev_pc, opt_hit)) =
            self.optgen[slot].access(access.line(), access.pc, ways)
        {
            let sig = pc_signature(prev_pc, PRED_BITS) as u16;
            self.train(sig, opt_hit);
        }
    }

    fn apply_prediction(&mut self, set: u32, way: u16, access: &Access, is_fill: bool) {
        let sig = pc_signature(access.pc, PRED_BITS) as u16;
        let i = self.idx(set, way);
        self.line_sig[i] = sig;
        let friendly = access.kind != AccessKind::Writeback && self.predict_friendly(sig);
        if friendly {
            if is_fill {
                // Age the other friendly lines, as in the original design.
                let base = set as usize * self.ways as usize;
                for w in 0..self.ways as usize {
                    let j = base + w;
                    if j != i && self.rrpv[j] < MAX_RRPV - 1 {
                        self.rrpv[j] += 1;
                    }
                }
            }
            self.rrpv[i] = 0;
        } else {
            self.rrpv[i] = MAX_RRPV;
        }
    }
}

impl ReplacementPolicy for Hawkeye {
    fn uses_line_snapshots(&self) -> bool {
        false // victim choice reads only internal (set, way) metadata
    }

    fn name(&self) -> String {
        "Hawkeye".to_owned()
    }

    fn select_victim(&mut self, set: u32, _lines: &[LineSnapshot], _access: &Access) -> Decision {
        let base = set as usize * self.ways as usize;
        // Prefer a cache-averse line.
        for w in 0..self.ways as usize {
            if self.rrpv[base + w] == MAX_RRPV {
                return Decision::Evict(w as u16);
            }
        }
        // No averse line: evict the oldest friendly line and detrain its PC.
        let victim = (0..self.ways as usize)
            .max_by_key(|&w| self.rrpv[base + w])
            .expect("at least one way");
        let sig = self.line_sig[base + victim];
        self.train(sig, false);
        Decision::Evict(victim as u16)
    }

    fn on_hit(&mut self, set: u32, way: u16, access: &Access) {
        self.observe(set, access);
        self.apply_prediction(set, way, access, false);
    }

    fn on_fill(&mut self, set: u32, way: u16, access: &Access) {
        self.observe(set, access);
        self.apply_prediction(set, way, access, true);
    }

    fn overhead_bits(&self, config: &CacheConfig) -> u64 {
        let rrpv = config.lines() * 3;
        let predictor = (1u64 << PRED_BITS) * 3;
        // Sampled-set OPTgen: per sampled set, an occupancy vector (4 bits
        // per quantum over an 8x-associativity window) plus last-access tags
        // (13-bit PC hash + 8-bit time + 8-bit partial tag) for 2x ways of
        // tracked lines, as in the published 28 KB budget.
        let window = 8 * u64::from(config.ways);
        let sampled = u64::from(config.sets.div_ceil(SAMPLE_PERIOD));
        let optgen = sampled * (window * 4 + 2 * u64::from(config.ways) * (13 + 8 + 8));
        rrpv + predictor + optgen
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> CacheConfig {
        CacheConfig { sets: 64, ways: 4, latency: 1 }
    }

    fn access(pc: u64, addr: u64) -> Access {
        Access { pc, addr, kind: AccessKind::Load, core: 0, seq: 0 }
    }

    #[test]
    fn averse_lines_are_evicted_first() {
        let mut h = Hawkeye::new(&cfg());
        let sig = pc_signature(0x999, PRED_BITS) as usize;
        h.predictor[sig] = 0; // averse PC
        h.on_fill(1, 2, &access(0x999, 64));
        let friendly_sig = pc_signature(0x400, PRED_BITS) as usize;
        h.predictor[friendly_sig] = PRED_MAX;
        h.on_fill(1, 0, &access(0x400, 128));
        h.on_fill(1, 1, &access(0x400, 192));
        h.on_fill(1, 3, &access(0x400, 256));
        let lines = [LineSnapshot { valid: true, line: 0, dirty: false, core: 0 }; 4];
        match h.select_victim(1, &lines, &access(0x1, 320)) {
            Decision::Evict(w) => assert_eq!(w, 2, "the averse line must go first"),
            Decision::Bypass => panic!("Hawkeye never bypasses"),
        }
    }

    #[test]
    fn optgen_rewards_short_reuse() {
        // In a sampled set, a tight reuse must OPT-hit and train up.
        let mut h = Hawkeye::new(&cfg());
        let pc = 0x400;
        let sig = pc_signature(pc, PRED_BITS) as usize;
        let before = h.predictor[sig];
        h.on_fill(0, 0, &access(pc, 0));
        h.on_hit(0, 0, &access(pc, 0)); // immediate reuse: OPT would hit
        assert!(h.predictor[sig] > before, "short reuse must train the PC up");
    }

    #[test]
    fn optgen_punishes_thrash() {
        // A line reused only after far more than 8*ways distinct intervening
        // accesses can never fit in OPT's occupancy window.
        let mut h = Hawkeye::new(&cfg());
        let pc = 0x400;
        let sig = pc_signature(pc, PRED_BITS) as usize;
        h.predictor[sig] = PRED_THRESHOLD;
        h.on_fill(0, 0, &access(pc, 0));
        for i in 1..100u64 {
            h.on_fill(0, (i % 4) as u16, &access(pc, i * 64 * 64));
        }
        // Reuse of the very first line, far beyond the window.
        h.on_fill(0, 0, &access(pc, 0));
        assert!(h.predictor[sig] < PRED_THRESHOLD, "distant reuse must train down");
    }

    #[test]
    fn evicting_friendly_line_detrains_it() {
        let mut h = Hawkeye::new(&cfg());
        let pc = 0x400;
        let sig = pc_signature(pc, PRED_BITS) as usize;
        h.predictor[sig] = PRED_MAX;
        for w in 0..4 {
            h.on_fill(2, w, &access(pc, u64::from(w) * 64));
        }
        let lines = [LineSnapshot { valid: true, line: 0, dirty: false, core: 0 }; 4];
        let _ = h.select_victim(2, &lines, &access(0x1, 999 * 64));
        assert!(h.predictor[sig] < PRED_MAX, "forced eviction of a friendly line detrains");
    }

    #[test]
    fn overhead_is_near_table_i() {
        let cfg = CacheConfig::with_capacity_kb(2048, 16, 26);
        let h = Hawkeye::new(&cfg);
        let kb = h.overhead_bits(&cfg) as f64 / 8.0 / 1024.0;
        // Table I reports 28 KB.
        assert!((20.0..34.0).contains(&kb), "Hawkeye overhead {kb:.2} KB");
    }
}
