//! EVA: Economic Value Added replacement (Beckmann & Sanchez, HPCA 2017).
//!
//! EVA ranks lines by the difference between the hits a line of a given age
//! is still expected to contribute and the cache space-time it is expected
//! to consume, priced at the cache's average hit rate per unit space-time.
//! Ages are tracked in coarse quanta; per-age hit and eviction counters are
//! folded into an EVA table periodically.
//!
//! This is a single-class implementation (no reused/non-reused
//! classification) of the published design; the paper reproduced here found
//! EVA slightly *below* LRU on its trace selection, which this
//! implementation also exhibits on prefetch-heavy workloads since EVA does
//! not model non-demand accesses.

use cache_sim::{Access, CacheConfig, Decision, LineSnapshot, ReplacementPolicy};

/// Number of coarse age buckets.
const AGE_BUCKETS: usize = 64;
/// Set accesses per age quantum.
const AGE_QUANTUM: u64 = 16;
/// Recompute the EVA table after this many recorded events.
const RECOMPUTE_PERIOD: u64 = 64 * 1024;

/// The EVA replacement policy.
#[derive(Clone, Debug)]
pub struct Eva {
    ways: u16,
    set_clock: Vec<u64>,
    stamp: Vec<u64>,
    hits: Vec<u64>,
    evictions: Vec<u64>,
    /// Rank per age bucket; the line whose age has the smallest rank is
    /// evicted.
    rank: Vec<f64>,
    events: u64,
}

impl Eva {
    /// Creates EVA for the geometry.
    pub fn new(config: &CacheConfig) -> Self {
        Self {
            ways: config.ways,
            set_clock: vec![0; config.sets as usize],
            stamp: vec![0; config.lines() as usize],
            hits: vec![0; AGE_BUCKETS],
            evictions: vec![0; AGE_BUCKETS],
            // Until trained, prefer evicting older lines (LRU-like).
            rank: (0..AGE_BUCKETS).map(|a| -(a as f64)).collect(),
            events: 0,
        }
    }

    fn idx(&self, set: u32, way: u16) -> usize {
        set as usize * self.ways as usize + way as usize
    }

    fn age_bucket(&self, set: u32, way: u16) -> usize {
        let age = self.set_clock[set as usize].saturating_sub(self.stamp[self.idx(set, way)]);
        ((age / AGE_QUANTUM) as usize).min(AGE_BUCKETS - 1)
    }

    fn record(&mut self, bucket: usize, hit: bool) {
        if hit {
            self.hits[bucket] += 1;
        } else {
            self.evictions[bucket] += 1;
        }
        self.events += 1;
        if self.events.is_multiple_of(RECOMPUTE_PERIOD) {
            self.recompute();
        }
    }

    /// Folds the event counters into per-age EVA values:
    /// `EVA(a) = (hits expected above age a − g · space-time above age a)
    ///           / lines reaching age a`,
    /// where `g` is the cache's overall hit rate per unit space-time.
    fn recompute(&mut self) {
        let total_hits: u64 = self.hits.iter().sum();
        let total_events: u64 = total_hits + self.evictions.iter().sum::<u64>();
        if total_events == 0 {
            return;
        }
        // Mean lifetime (in quanta) weighted by events ending at each age.
        let total_lifetime: u64 = (0..AGE_BUCKETS)
            .map(|a| (a as u64 + 1) * (self.hits[a] + self.evictions[a]))
            .sum();
        let g = total_hits as f64 / total_lifetime.max(1) as f64;

        let mut cum_hits = 0u64;
        let mut cum_events = 0u64;
        let mut cum_lifetime = 0u64;
        for a in (0..AGE_BUCKETS).rev() {
            cum_hits += self.hits[a];
            let events_here = self.hits[a] + self.evictions[a];
            cum_events += events_here;
            // Lines ending at age x >= a live (x - a + 1) further quanta.
            cum_lifetime += cum_events; // telescoping sum of remaining quanta
            self.rank[a] = if cum_events == 0 {
                // Never observed: treat like the oldest age.
                f64::NEG_INFINITY
            } else {
                (cum_hits as f64 - g * cum_lifetime as f64) / cum_events as f64
            };
        }
        for h in &mut self.hits {
            *h /= 2;
        }
        for e in &mut self.evictions {
            *e /= 2;
        }
    }
}

impl ReplacementPolicy for Eva {
    fn uses_line_snapshots(&self) -> bool {
        false // victim choice reads only internal (set, way) metadata
    }

    fn name(&self) -> String {
        "EVA".to_owned()
    }

    fn on_miss(&mut self, set: u32, _access: &Access) {
        self.set_clock[set as usize] += 1;
    }

    fn select_victim(&mut self, set: u32, _lines: &[LineSnapshot], _access: &Access) -> Decision {
        let mut victim = 0u16;
        let mut worst = f64::INFINITY;
        for w in 0..self.ways {
            let bucket = self.age_bucket(set, w);
            let value = self.rank[bucket];
            if value < worst {
                worst = value;
                victim = w;
            }
        }
        let bucket = self.age_bucket(set, victim);
        self.record(bucket, false);
        Decision::Evict(victim)
    }

    fn on_hit(&mut self, set: u32, way: u16, _access: &Access) {
        self.set_clock[set as usize] += 1;
        let bucket = self.age_bucket(set, way);
        self.record(bucket, true);
        let i = self.idx(set, way);
        self.stamp[i] = self.set_clock[set as usize];
    }

    fn on_fill(&mut self, set: u32, way: u16, _access: &Access) {
        let i = self.idx(set, way);
        self.stamp[i] = self.set_clock[set as usize];
    }

    fn overhead_bits(&self, config: &CacheConfig) -> u64 {
        // Coarse per-line age (6 bits), per-set clock, event counters and
        // the EVA table (the published design's budget class).
        config.lines() * 6
            + u64::from(config.sets) * 8
            + (AGE_BUCKETS as u64) * 2 * 16
            + (AGE_BUCKETS as u64) * 16
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cache_sim::AccessKind;

    fn cfg() -> CacheConfig {
        CacheConfig { sets: 4, ways: 4, latency: 1 }
    }

    fn access(addr: u64) -> Access {
        Access { pc: 0, addr, kind: AccessKind::Load, core: 0, seq: 0 }
    }

    fn lines() -> Vec<LineSnapshot> {
        vec![LineSnapshot { valid: true, line: 0, dirty: false, core: 0 }; 4]
    }

    #[test]
    fn untrained_eva_behaves_like_lru() {
        let mut p = Eva::new(&cfg());
        for w in 0..4 {
            p.on_fill(0, w, &access(u64::from(w) * 64));
        }
        // Age way 0 by touching the others many times.
        for _ in 0..AGE_QUANTUM * 2 {
            for w in 1..4 {
                p.on_hit(0, w, &access(u64::from(w) * 64));
            }
        }
        match p.select_victim(0, &lines(), &access(999 * 64)) {
            Decision::Evict(w) => assert_eq!(w, 0, "oldest line evicted before training"),
            Decision::Bypass => panic!("EVA never bypasses"),
        }
    }

    #[test]
    fn recompute_prefers_to_keep_hit_rich_ages() {
        let mut p = Eva::new(&cfg());
        // Most lines hit young (cheaply); a small population of dead lines
        // lingers to old age. The dead old lines must rank lowest.
        p.hits[2] = 50_000;
        p.evictions[40] = 10_000;
        p.recompute();
        assert!(
            p.rank[33] < p.rank[1],
            "old, hit-less ages ({}) must rank below young, hit-rich ages ({})",
            p.rank[33],
            p.rank[1]
        );
    }

    #[test]
    fn events_trigger_periodic_recompute() {
        let mut p = Eva::new(&cfg());
        let before = p.rank.clone();
        for i in 0..RECOMPUTE_PERIOD {
            p.on_hit(0, (i % 4) as u16, &access((i % 4) * 64));
        }
        assert_ne!(before, p.rank, "recompute must have produced a trained table");
    }
}
