//! The object-cache differential wall: the fast `ObjectCache` (hash lookup,
//! ordered victim indexes) replayed against the deliberately naive
//! `ReferenceObjectCache` (linear scans, recomputed accounting) across
//! randomized traces — hit bytes, evictions, and expirations must match
//! exactly for every policy. Mirrors the `ReferenceCache` wall that guards
//! the LLC hot path (PR 3).

use objcache::{ObjCacheConfig, ObjPolicyKind, ObjectCache, ReferenceObjectCache};
use simrng::prop::{check, Config, Shrink};
use simrng::{prop_assert, prop_assert_eq, Rng, SimRng};
use workloads::ObjectTraffic;

/// A randomized scenario: traffic shape + cache shape. Tight capacities and
/// small catalogs force heavy eviction / expiry traffic, which is where the
/// two implementations could diverge.
#[derive(Clone, Debug)]
struct Case {
    traffic: ObjectTraffic,
    cfg: ObjCacheConfig,
    requests: usize,
}

impl Shrink for Case {
    fn shrink_candidates(&self) -> Vec<Case> {
        if self.requests <= 64 {
            return Vec::new();
        }
        let mut half = self.clone();
        half.requests /= 2;
        vec![half]
    }
}

fn gen_case(rng: &mut SimRng) -> Case {
    let min_size = 1u32 << rng.gen_range(4..10u32);
    let max_size = min_size << rng.gen_range(1..6u32);
    let min_ttl_s = rng.gen_range(1..4u64);
    let traffic = ObjectTraffic {
        catalog: rng.gen_range(16..600u64),
        skew: f64::from(rng.gen_range(0..13u16)) / 10.0,
        rps: rng.gen_range(50..5000u64),
        min_size,
        max_size,
        min_ttl_s,
        max_ttl_s: min_ttl_s + rng.gen_range(1..60u64),
        flash_every: 200,
        flash_len: rng.gen_range(10..100u64),
        flash_share_pct: rng.gen_range(0..90u32),
        flash_hot: rng.gen_range(1..12u64),
        seed: rng.gen_range(0..1_000_000u64),
    };
    // Capacity between ~4 and ~64 max-sized objects: small enough to churn.
    let cfg = ObjCacheConfig {
        capacity_bytes: max_size as u64 * rng.gen_range(4..64u64),
        protected_pct: rng.gen_range(10..95u32),
    };
    Case { traffic, cfg, requests: rng.gen_range(200..2500usize) }
}

/// Replays `case` through both implementations, comparing the full counter
/// set at a fixed cadence (divergence points shrink toward the cadence
/// boundary) and the fast path's internal invariants at the end.
fn run_differential(case: &Case, policy: ObjPolicyKind) -> Result<(), String> {
    let mut fast = ObjectCache::new(case.cfg, policy);
    let mut oracle = ReferenceObjectCache::new(case.cfg, policy);
    for (i, r) in case.traffic.stream().take(case.requests).enumerate() {
        fast.request(&r);
        oracle.request(&r);
        if i % 64 == 0 {
            prop_assert_eq!(
                fast.stats(),
                oracle.stats(),
                "{} diverged at request {} ({:?}): fast {:?} vs oracle {:?}",
                policy.name(),
                i,
                r,
                fast.stats(),
                oracle.stats()
            );
        }
    }
    prop_assert_eq!(fast.stats(), oracle.stats(), "{} diverged at end", policy.name());
    prop_assert_eq!(fast.used_bytes(), oracle.used_bytes(), "resident bytes differ");
    prop_assert_eq!(fast.resident(), oracle.resident(), "resident object counts differ");
    fast.check_invariants();
    // The issue's wall is about these three specifically; spell them out so
    // a regression names the counter that moved.
    prop_assert_eq!(fast.stats().hit_bytes, oracle.stats().hit_bytes);
    prop_assert_eq!(fast.stats().evictions, oracle.stats().evictions);
    prop_assert_eq!(fast.stats().expirations, oracle.stats().expirations);
    Ok(())
}

#[test]
fn lru_matches_oracle() {
    check("objcache_lru_matches_oracle", Config::with_cases(40), gen_case, |case| {
        run_differential(case, ObjPolicyKind::Lru)
    });
}

#[test]
fn slru_matches_oracle() {
    check("objcache_slru_matches_oracle", Config::with_cases(40), gen_case, |case| {
        run_differential(case, ObjPolicyKind::Slru)
    });
}

#[test]
fn gdsf_matches_oracle() {
    check("objcache_gdsf_matches_oracle", Config::with_cases(40), gen_case, |case| {
        run_differential(case, ObjPolicyKind::Gdsf)
    });
}

#[test]
fn derived_matches_oracle() {
    check("objcache_derived_matches_oracle", Config::with_cases(40), gen_case, |case| {
        run_differential(case, ObjPolicyKind::parse("rlr").expect("pinned rule"))
    });
}

/// The walls above use randomized shapes; this one runs the exact default
/// scenario (scaled down) so the headline configuration itself is
/// oracle-checked, eviction pressure and flash crowds included.
#[test]
fn default_scenario_matches_oracle() {
    let traffic = ObjectTraffic {
        catalog: 5_000,
        flash_every: 2_000,
        flash_len: 400,
        ..ObjectTraffic::internet_default()
    };
    let cfg = ObjCacheConfig::with_capacity_mib(8);
    for policy in ObjPolicyKind::roster() {
        let mut fast = ObjectCache::new(cfg, policy);
        let mut oracle = ReferenceObjectCache::new(cfg, policy);
        for r in traffic.stream().take(6_000) {
            fast.request(&r);
            oracle.request(&r);
        }
        assert_eq!(fast.stats(), oracle.stats(), "{} diverged", policy.name());
        assert!(fast.stats().evictions > 0, "{}: scenario exerted no pressure", policy.name());
        fast.check_invariants();
    }
}

/// Headline acceptance: on the default Zipf + flash-crowd trace the pinned
/// derived rule must beat plain LRU on miss-byte ratio.
#[test]
fn derived_beats_lru_on_default_trace() {
    let traffic = ObjectTraffic::internet_default();
    let trace: Vec<_> = traffic.stream().take(120_000).collect();
    let cfg = ObjCacheConfig::with_capacity_mib(256);
    let lru = objcache::replay(cfg, ObjPolicyKind::Lru, trace.iter().copied());
    let derived =
        objcache::replay(cfg, ObjPolicyKind::parse("rlr").expect("pinned"), trace.iter().copied());
    assert!(
        derived.miss_byte_ratio() < lru.miss_byte_ratio(),
        "derived rule must beat LRU: derived {:.4} vs lru {:.4}",
        derived.miss_byte_ratio(),
        lru.miss_byte_ratio()
    );
}
