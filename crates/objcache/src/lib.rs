//! Object-cache serving tier: a byte-budget, TTL-aware, variable-size
//! object cache simulator with an explicit admission decision point.
//!
//! This crate ports the paper's derivation story (offline agent → weight
//! analysis → cheap derived rule) from hardware LLC replacement to the
//! serving-tier domain of Cold-RL / DEAP Cache: internet-scale object
//! caches where values have sizes and lifetimes, capacity is a byte budget,
//! and *whether to admit* an object matters as much as *what to evict*.
//!
//! - [`ObjectCache`] — the fast implementation (hash lookup + ordered
//!   victim indexes).
//! - [`ReferenceObjectCache`] — the naive linear-scan oracle it is
//!   differentially tested against.
//! - [`policy`] — the shared policy contract: LRU / SLRU / GDSF baselines
//!   and the integer-weight derived rule ([`DerivedWeights`]).
//! - [`derive`] — the offline derivation loop that produces those weights
//!   from a traffic trace.
//!
//! # Request semantics
//!
//! Both implementations follow this contract exactly, per request `r`
//! (with `seq` the 0-based request counter):
//!
//! 1. If the policy is the derived rule, record `r.key` in the admission
//!    frequency sketch (hits included).
//! 2. If `r.key` is resident and `r.now_ms >= expires_at`, the entry has
//!    lazily expired: count one expiration, free its bytes, and treat the
//!    request as a miss (step 4).
//! 3. Otherwise if resident: a hit. `hit_bytes += r.size`; the policy
//!    updates its entry state (recency, frequency, SLRU promotion, GDSF /
//!    derived priority recomputed from this moment's inflation and TTL
//!    slack). TTLs are **not** refreshed by hits.
//! 4. Miss: `miss_bytes += r.size`, then the admission decision. Objects
//!    larger than the whole budget are always rejected; the derived rule
//!    additionally requires its admission score to clear the threshold.
//!    Rejected objects are *not* inserted and evict nothing.
//! 5. Admitted objects evict the policy's victims one at a time until the
//!    object fits. A victim whose TTL already lapsed counts as an
//!    expiration, not an eviction (GDSF still takes its inflation from it).
//! 6. The object is inserted with `expires_at = now_ms + ttl_ms`.

pub mod cache;
pub mod derive;
pub mod policy;
pub mod reference;

pub use cache::ObjectCache;
pub use derive::{derive_weights, DeriveConfig, DerivedModel};
pub use policy::{DerivedWeights, ObjPolicyKind};
pub use reference::ReferenceObjectCache;
use workloads::ObjectRequest;

/// Capacity configuration of an object cache.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ObjCacheConfig {
    /// Total byte budget.
    pub capacity_bytes: u64,
    /// SLRU: the protected segment's share of the budget, in percent.
    pub protected_pct: u32,
}

impl ObjCacheConfig {
    /// A cache of `mib` MiB with the default 80% protected segment.
    pub fn with_capacity_mib(mib: u64) -> Self {
        Self { capacity_bytes: mib << 20, protected_pct: 80 }
    }

    /// SLRU protected-segment byte budget.
    pub fn protected_capacity(&self) -> u64 {
        self.capacity_bytes * self.protected_pct as u64 / 100
    }

    pub(crate) fn validate(&self) {
        assert!(self.capacity_bytes > 0, "object cache needs a byte budget");
        assert!(self.protected_pct <= 100, "protected share is a percentage");
    }

    /// Fingerprint for sweep checkpoint keys.
    pub fn fingerprint(&self) -> String {
        format!("cap{}|p{}", self.capacity_bytes, self.protected_pct)
    }
}

/// Outcome counters of a replay. All integers, so sweeps checkpoint and
/// resume bit-identically through the exact-u64 JSON codec.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct ObjStats {
    pub requests: u64,
    pub hits: u64,
    pub misses: u64,
    pub hit_bytes: u64,
    pub miss_bytes: u64,
    pub admitted: u64,
    pub rejected: u64,
    pub evictions: u64,
    pub evicted_bytes: u64,
    pub expirations: u64,
    pub expired_bytes: u64,
}

impl ObjStats {
    /// Fraction of requested bytes that missed — the serving-tier headline
    /// metric (each missed byte is origin egress).
    pub fn miss_byte_ratio(&self) -> f64 {
        let total = self.hit_bytes + self.miss_bytes;
        if total == 0 {
            return 0.0;
        }
        self.miss_bytes as f64 / total as f64
    }

    /// Fraction of requests that hit.
    pub fn hit_rate(&self) -> f64 {
        if self.requests == 0 {
            return 0.0;
        }
        self.hits as f64 / self.requests as f64
    }
}

/// Replays a request trace through a fresh [`ObjectCache`] and returns its
/// counters. The semantics contract both implementations follow is
/// documented on the crate root.
pub fn replay<I>(cfg: ObjCacheConfig, policy: ObjPolicyKind, requests: I) -> ObjStats
where
    I: IntoIterator<Item = ObjectRequest>,
{
    let mut cache = ObjectCache::new(cfg, policy);
    for r in requests {
        cache.request(&r);
    }
    *cache.stats()
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::ObjectTraffic;

    fn small_traffic() -> ObjectTraffic {
        ObjectTraffic {
            catalog: 2000,
            max_size: 1 << 16,
            flash_every: 1000,
            flash_len: 200,
            ..ObjectTraffic::internet_default()
        }
    }

    #[test]
    fn replay_accounts_every_request() {
        let t = small_traffic();
        for policy in ObjPolicyKind::roster() {
            let s = replay(ObjCacheConfig::with_capacity_mib(4), policy, t.stream().take(5000));
            assert_eq!(s.requests, 5000, "{}", policy.name());
            assert_eq!(s.hits + s.misses, s.requests, "{}", policy.name());
            assert_eq!(s.admitted + s.rejected, s.misses, "{}", policy.name());
        }
    }

    #[test]
    fn oversized_objects_are_rejected() {
        let r = ObjectRequest { now_ms: 0, key: 1, size: 2048, ttl_ms: 60_000 };
        let cfg = ObjCacheConfig { capacity_bytes: 1024, protected_pct: 80 };
        let s = replay(cfg, ObjPolicyKind::Lru, [r, r]);
        assert_eq!(s.rejected, 2);
        assert_eq!(s.hits, 0);
    }

    #[test]
    fn ttl_expiry_counts_as_expiration_not_eviction() {
        let mk = |now_ms| ObjectRequest { now_ms, key: 7, size: 100, ttl_ms: 1000 };
        let cfg = ObjCacheConfig { capacity_bytes: 1 << 20, protected_pct: 80 };
        let s = replay(cfg, ObjPolicyKind::Lru, [mk(0), mk(500), mk(2000)]);
        assert_eq!(s.hits, 1, "second request hits before expiry");
        assert_eq!(s.expirations, 1, "third request finds the entry expired");
        assert_eq!(s.evictions, 0);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let cfg = ObjCacheConfig { capacity_bytes: 300, protected_pct: 80 };
        let mk = |key, now_ms| ObjectRequest { now_ms, key, size: 100, ttl_ms: 1 << 30 };
        // Fill with 1,2,3; touch 1; insert 4 -> victim must be 2.
        let s = replay(
            cfg,
            ObjPolicyKind::Lru,
            [mk(1, 0), mk(2, 1), mk(3, 2), mk(1, 3), mk(4, 4), mk(2, 5)],
        );
        assert_eq!(s.evictions, 2, "4 evicts 2; re-fetching 2 evicts 3");
        // The touch of 1 kept it resident: requests = 6, hits = 1 (key 1).
        assert_eq!(s.hits, 1);
    }

    #[test]
    fn gdsf_prefers_evicting_large_cold_objects() {
        let cfg = ObjCacheConfig { capacity_bytes: 3000, protected_pct: 80 };
        let big = ObjectRequest { now_ms: 0, key: 1, size: 2000, ttl_ms: 1 << 30 };
        let small = ObjectRequest { now_ms: 1, key: 2, size: 500, ttl_ms: 1 << 30 };
        let newer = ObjectRequest { now_ms: 2, key: 3, size: 2000, ttl_ms: 1 << 30 };
        let s = replay(cfg, ObjPolicyKind::Gdsf, [big, small, newer]);
        // big (2000B) has the lowest H; inserting `newer` evicts it even
        // though `small` is equally cold — LRU would have evicted neither.
        assert_eq!(s.evictions, 1);
        let s2 = replay(cfg, ObjPolicyKind::Gdsf, [big, small, newer, small, big]);
        assert_eq!(s2.hits, 1, "small survived, big was the victim");
    }

    #[test]
    fn slru_protects_rereferenced_objects() {
        let cfg = ObjCacheConfig { capacity_bytes: 300, protected_pct: 50 };
        let mk = |key, now_ms| ObjectRequest { now_ms, key, size: 100, ttl_ms: 1 << 30 };
        // 1 is promoted to protected; scanning 2,3,4,5 churns probation but
        // must not evict 1.
        let s = replay(
            cfg,
            ObjPolicyKind::Slru,
            [mk(1, 0), mk(1, 1), mk(2, 2), mk(3, 3), mk(4, 4), mk(5, 5), mk(1, 6)],
        );
        assert_eq!(s.hits, 2, "the scan must not flush the protected entry");
    }
}
