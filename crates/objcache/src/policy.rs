//! The policy *contract* shared by the fast cache and the reference oracle.
//!
//! Everything in this module is part of the behavioural specification: the
//! feature bucketings, the derived-rule scoring, the GDSF priority formula,
//! and the admission frequency sketch. Both [`crate::ObjectCache`] and
//! [`crate::ReferenceObjectCache`] call these functions; what they do *not*
//! share is the bookkeeping machinery (victim indexes vs linear scans),
//! which is exactly what the differential wall cross-checks.
//!
//! All scoring is integer arithmetic so the two implementations can be
//! required to match bit-for-bit.

/// Fixed-point scale for the GDSF priority `H = L + freq * SCALE / size`.
/// With sizes up to a few MiB the per-object term stays >= 2^8, so unequal
/// sizes remain distinguishable after the integer division.
pub const GDSF_SCALE: u64 = 1 << 30;

/// Frequency cap shared by the eviction feature and the admission sketch
/// estimate (matches the 4-bit saturating counters the paper's hardware
/// budget allows).
pub const FREQ_CAP: u32 = 15;

/// Eviction + admission policy of an object cache.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ObjPolicyKind {
    /// Evict the least-recently-used object; admit everything that fits.
    Lru,
    /// Segmented LRU: new objects enter a probation segment and are promoted
    /// to a protected segment on re-reference; probation is evicted first.
    Slru,
    /// Greedy-Dual-Size-Frequency: evict the minimum `L + freq*SCALE/size`,
    /// inflating `L` to the victim's priority.
    Gdsf,
    /// The RLR-style derived rule: integer-weighted admission and eviction
    /// scores over object features (frequency, size, TTL slack), with
    /// recency as the tie-break.
    DerivedRlr(DerivedWeights),
}

impl ObjPolicyKind {
    /// Display / checkpoint name.
    pub fn name(&self) -> &'static str {
        match self {
            ObjPolicyKind::Lru => "LRU",
            ObjPolicyKind::Slru => "SLRU",
            ObjPolicyKind::Gdsf => "GDSF",
            ObjPolicyKind::DerivedRlr(_) => "RLR-derived",
        }
    }

    /// Parses a policy name as used by the CLI (`--policies lru,slru,...`).
    /// `rlr` / `derived` / `rlr-derived` resolve to the pinned
    /// [`DerivedWeights::paper_default`] rule.
    pub fn parse(name: &str) -> Option<Self> {
        match name.to_ascii_lowercase().as_str() {
            "lru" => Some(ObjPolicyKind::Lru),
            "slru" => Some(ObjPolicyKind::Slru),
            "gdsf" => Some(ObjPolicyKind::Gdsf),
            "rlr" | "derived" | "rlr-derived" => {
                Some(ObjPolicyKind::DerivedRlr(DerivedWeights::paper_default()))
            }
            _ => None,
        }
    }

    /// All four roster policies with the pinned derived rule.
    pub fn roster() -> Vec<ObjPolicyKind> {
        vec![
            ObjPolicyKind::Lru,
            ObjPolicyKind::Slru,
            ObjPolicyKind::Gdsf,
            ObjPolicyKind::DerivedRlr(DerivedWeights::paper_default()),
        ]
    }
}

/// Integer weights of the derived admission + eviction rule — the output of
/// the paper's derivation loop (offline agent -> weight analysis ->
/// quantized rule) ported to object features.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct DerivedWeights {
    /// Eviction: weight on the capped hit count.
    pub ev_freq: i32,
    /// Eviction: weight on the inverse-log-size feature (favors small).
    pub ev_size: i32,
    /// Eviction: weight on remaining-TTL slack.
    pub ev_ttl: i32,
    /// Admission: weight on the sketch frequency estimate.
    pub ad_freq: i32,
    /// Admission: weight on the inverse-log-size feature.
    pub ad_size: i32,
    /// Admission: weight on the full-TTL slack.
    pub ad_ttl: i32,
    /// Admit iff the admission score is >= this threshold.
    pub ad_threshold: i32,
}

impl DerivedWeights {
    /// The pinned rule used by `ObjPolicyKind::parse("rlr")`, tests, and the
    /// CLI default. Produced by `objcache::derive` on the
    /// `ObjectTraffic::internet_default()` trace (see `derive.rs` tests) and
    /// frozen here so results are stable across hosts.
    pub fn paper_default() -> Self {
        Self {
            ev_freq: 8,
            ev_size: 1,
            ev_ttl: 1,
            ad_freq: 8,
            ad_size: 1,
            ad_ttl: 0,
            ad_threshold: 51,
        }
    }

    /// Compact fingerprint for checkpoint keys: two derived rules with
    /// different weights must never share a sweep cell.
    pub fn fingerprint(&self) -> String {
        format!(
            "w{}/{}/{}|a{}/{}/{}|t{}",
            self.ev_freq, self.ev_size, self.ev_ttl, self.ad_freq, self.ad_size, self.ad_ttl,
            self.ad_threshold
        )
    }
}

/// `floor(log2(x))`, with `log2(0) = 0`.
#[inline]
pub fn ilog2(x: u64) -> u32 {
    if x == 0 { 0 } else { 63 - x.leading_zeros() }
}

/// Capped hit-count feature.
#[inline]
pub fn freq_feat(freq: u32) -> i64 {
    freq.min(FREQ_CAP) as i64
}

/// Inverse-log-size feature: larger for *smaller* objects, 0 at >= 4 MiB.
#[inline]
pub fn size_feat(size: u32) -> i64 {
    let l = ilog2(size.max(1) as u64).min(22);
    (22 - l) as i64
}

/// TTL-slack feature: `log2(seconds remaining + 1)`, capped at 15.
#[inline]
pub fn ttl_feat(remaining_ms: u64) -> i64 {
    ilog2(remaining_ms / 1000 + 1).min(15) as i64
}

/// Eviction priority of a resident object under the derived rule: the
/// lowest-priority object (ties broken by least-recent use) is evicted.
#[inline]
pub fn derived_priority(w: &DerivedWeights, freq: u32, size: u32, remaining_ms: u64) -> i64 {
    w.ev_freq as i64 * freq_feat(freq)
        + w.ev_size as i64 * size_feat(size)
        + w.ev_ttl as i64 * ttl_feat(remaining_ms)
}

/// Upper bound on `|derived_priority|` for max-magnitude-8 weights
/// (8 * (15 + 22 + 15) = 416, rounded up), used to keep ranks non-negative.
pub const DERIVED_PRIO_OFFSET: i64 = 512;

/// The derived rule's eviction *rank*: its priority shifted by the same
/// inflation mechanism GDSF uses (`L` = rank of the last victim). Without
/// inflation, a formerly hot object — a dead flash-crowd key, say — keeps a
/// high frequency score forever and pins its bytes; the rising waterline
/// ages it out exactly as it does for GDSF. Assigned at touch time; the
/// minimum `(rank, last_seq)` is the victim.
#[inline]
pub fn derived_rank(
    inflation: u64,
    w: &DerivedWeights,
    freq: u32,
    size: u32,
    remaining_ms: u64,
) -> u64 {
    let p = derived_priority(w, freq, size, remaining_ms) + DERIVED_PRIO_OFFSET;
    debug_assert!(p >= 0, "derived priority exceeded its offset bound");
    inflation + p.max(0) as u64
}

/// Admission score of a missing object; admit iff `>= w.ad_threshold`.
#[inline]
pub fn admission_score(w: &DerivedWeights, freq_est: u32, size: u32, ttl_ms: u64) -> i64 {
    w.ad_freq as i64 * freq_feat(freq_est)
        + w.ad_size as i64 * size_feat(size)
        + w.ad_ttl as i64 * ttl_feat(ttl_ms)
}

/// Order-preserving map `i64 -> u64` (for BTreeSet victim indexes).
#[inline]
pub fn prio_to_u64(p: i64) -> u64 {
    (p as u64) ^ (1 << 63)
}

/// GDSF priority `H = L + freq * SCALE / size`.
#[inline]
pub fn gdsf_priority(inflation: u64, freq: u32, size: u32) -> u64 {
    inflation + (freq as u64 * GDSF_SCALE) / size.max(1) as u64
}

/// A tiny count-min sketch (2 hash rows folded into one array) feeding the
/// derived rule's admission frequency estimate. Records *every* request —
/// hits and misses — and halves all counters every 8192 requests so the
/// estimate tracks recent popularity. Fully deterministic.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FreqSketch {
    counters: Vec<u8>,
    ops: u64,
}

const SKETCH_SLOTS: usize = 4096;
const SKETCH_AGE_PERIOD: u64 = 8192;
const SKETCH_SALT_A: u64 = 0x9E37_79B9_7F4A_7C15;
const SKETCH_SALT_B: u64 = 0xD1B5_4A32_D192_ED03;

impl FreqSketch {
    pub fn new() -> Self {
        Self { counters: vec![0; SKETCH_SLOTS], ops: 0 }
    }

    #[inline]
    fn slot(key: u64, salt: u64) -> usize {
        let mut x = key ^ salt;
        x = simrng::splitmix64(&mut x);
        (x as usize) & (SKETCH_SLOTS - 1)
    }

    /// Records one request for `key`.
    pub fn record(&mut self, key: u64) {
        self.ops += 1;
        let a = Self::slot(key, SKETCH_SALT_A);
        let b = Self::slot(key, SKETCH_SALT_B);
        self.counters[a] = self.counters[a].saturating_add(1);
        if b != a {
            self.counters[b] = self.counters[b].saturating_add(1);
        }
        if self.ops % SKETCH_AGE_PERIOD == 0 {
            for c in &mut self.counters {
                *c >>= 1;
            }
        }
    }

    /// Estimated request count for `key` (an overestimate, capped for the
    /// admission feature by [`freq_feat`]).
    pub fn estimate(&self, key: u64) -> u32 {
        let a = self.counters[Self::slot(key, SKETCH_SALT_A)];
        let b = self.counters[Self::slot(key, SKETCH_SALT_B)];
        a.min(b) as u32
    }
}

impl Default for FreqSketch {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ilog2_matches_std() {
        for x in [1u64, 2, 3, 4, 1023, 1024, 1025, u64::MAX] {
            assert_eq!(ilog2(x), 63 - x.leading_zeros(), "x={x}");
        }
        assert_eq!(ilog2(0), 0);
    }

    #[test]
    fn prio_map_preserves_order() {
        let xs = [i64::MIN, -5, -1, 0, 1, 42, i64::MAX];
        for w in xs.windows(2) {
            assert!(prio_to_u64(w[0]) < prio_to_u64(w[1]));
        }
    }

    #[test]
    fn sketch_counts_and_ages() {
        let mut s = FreqSketch::new();
        for _ in 0..5 {
            s.record(77);
        }
        assert!(s.estimate(77) >= 5);
        assert_eq!(s.estimate(123_456), 0);
        for i in 0..SKETCH_AGE_PERIOD {
            s.record(1_000_000 + i);
        }
        assert!(s.estimate(77) <= 3, "aging should halve stale counts");
    }

    #[test]
    fn policy_parse_roundtrip() {
        for p in ObjPolicyKind::roster() {
            assert_eq!(ObjPolicyKind::parse(p.name()), Some(p));
        }
        assert_eq!(ObjPolicyKind::parse("rlr"), ObjPolicyKind::parse("derived"));
        assert!(ObjPolicyKind::parse("belady").is_none());
    }
}
