//! `ReferenceObjectCache` — the deliberately naive oracle for the
//! differential wall.
//!
//! One flat `Vec` of entries, linear-scan lookup, victim selection by
//! rescanning every resident entry, and byte accounting recomputed by
//! summation. No ordered indexes, no hash maps, no packed metadata — just
//! the request semantics of [`crate::replay`] written the simplest possible
//! way. Anything clever lives only in [`crate::ObjectCache`]; if the two
//! ever disagree on hit bytes, evictions, or expirations, the wall in
//! `objcache/tests/differential.rs` fails.
//!
//! Two things *are* shared with the fast path, deliberately, because they
//! are the policy specification rather than machinery: the scoring formulas
//! in [`crate::policy`], and the rule that GDSF / derived priorities are
//! assigned at touch time (insert or hit) from that moment's inflation and
//! TTL slack — they are entry state, not scan-time quantities.

use crate::policy::{
    admission_score, derived_rank, gdsf_priority, FreqSketch, ObjPolicyKind,
};
use crate::{ObjCacheConfig, ObjStats};
use workloads::ObjectRequest;

#[derive(Clone, Copy, Debug)]
struct RefEntry {
    key: u64,
    size: u32,
    expires_at: u64,
    freq: u32,
    last_seq: u64,
    /// SLRU segment.
    protected: bool,
    /// GDSF `H` / mapped derived priority, assigned at touch time.
    rank: u64,
}

/// The naive oracle. API mirrors [`crate::ObjectCache`].
#[derive(Clone, Debug)]
pub struct ReferenceObjectCache {
    cfg: ObjCacheConfig,
    policy: ObjPolicyKind,
    entries: Vec<RefEntry>,
    inflation: u64,
    sketch: Option<FreqSketch>,
    seq: u64,
    stats: ObjStats,
}

impl ReferenceObjectCache {
    pub fn new(cfg: ObjCacheConfig, policy: ObjPolicyKind) -> Self {
        cfg.validate();
        let sketch = match policy {
            ObjPolicyKind::DerivedRlr(_) => Some(FreqSketch::new()),
            _ => None,
        };
        Self {
            cfg,
            policy,
            entries: Vec::new(),
            inflation: 0,
            sketch,
            seq: 0,
            stats: ObjStats::default(),
        }
    }

    pub fn stats(&self) -> &ObjStats {
        &self.stats
    }

    /// Bytes resident, recomputed from scratch (the naive way).
    pub fn used_bytes(&self) -> u64 {
        self.entries.iter().map(|e| e.size as u64).sum()
    }

    pub fn resident(&self) -> usize {
        self.entries.len()
    }

    fn find(&self, key: u64) -> Option<usize> {
        self.entries.iter().position(|e| e.key == key)
    }

    /// The total eviction order: minimum `(rank-or-recency, last_seq, key)`
    /// goes first.
    fn order_of(policy: &ObjPolicyKind, e: &RefEntry) -> (u64, u64, u64) {
        match policy {
            ObjPolicyKind::Lru | ObjPolicyKind::Slru => (e.last_seq, 0, e.key),
            ObjPolicyKind::Gdsf | ObjPolicyKind::DerivedRlr(_) => (e.rank, e.last_seq, e.key),
        }
    }

    /// Picks the victim by scanning every resident entry; SLRU drains
    /// probation before touching the protected segment.
    fn victim(&self) -> usize {
        assert!(!self.entries.is_empty(), "eviction with an empty cache");
        let restrict_probation = matches!(self.policy, ObjPolicyKind::Slru)
            && self.entries.iter().any(|e| !e.protected);
        let mut best: Option<usize> = None;
        for i in 0..self.entries.len() {
            if restrict_probation && self.entries[i].protected {
                continue;
            }
            best = match best {
                None => Some(i),
                Some(b) => {
                    if Self::order_of(&self.policy, &self.entries[i])
                        < Self::order_of(&self.policy, &self.entries[b])
                    {
                        Some(i)
                    } else {
                        Some(b)
                    }
                }
            };
        }
        best.expect("non-empty scan produced no victim")
    }

    fn protected_bytes(&self) -> u64 {
        self.entries.iter().filter(|e| e.protected).map(|e| e.size as u64).sum()
    }

    /// SLRU: demote protected-LRU entries until the segment fits.
    fn rebalance_slru(&mut self) {
        let cap = self.cfg.protected_capacity();
        while self.protected_bytes() > cap {
            let mut oldest: Option<usize> = None;
            for i in 0..self.entries.len() {
                if !self.entries[i].protected {
                    continue;
                }
                oldest = match oldest {
                    None => Some(i),
                    Some(b) => {
                        if self.entries[i].last_seq < self.entries[b].last_seq {
                            Some(i)
                        } else {
                            Some(b)
                        }
                    }
                };
            }
            let i = oldest.expect("protected bytes but no protected entry");
            self.entries[i].protected = false;
        }
    }

    fn touch(&mut self, i: usize, now_ms: u64) {
        let policy = self.policy;
        let inflation = self.inflation;
        let e = &mut self.entries[i];
        e.freq = e.freq.saturating_add(1);
        e.last_seq = self.seq;
        match policy {
            ObjPolicyKind::Lru => {}
            ObjPolicyKind::Slru => e.protected = true,
            ObjPolicyKind::Gdsf => e.rank = gdsf_priority(inflation, e.freq, e.size),
            ObjPolicyKind::DerivedRlr(w) => {
                let remaining = e.expires_at.saturating_sub(now_ms);
                e.rank = derived_rank(inflation, &w, e.freq, e.size, remaining);
            }
        }
        if matches!(policy, ObjPolicyKind::Slru) {
            self.rebalance_slru();
        }
    }

    fn admit(&self, r: &ObjectRequest) -> bool {
        if r.size as u64 > self.cfg.capacity_bytes {
            return false;
        }
        match self.policy {
            ObjPolicyKind::DerivedRlr(w) => {
                let est =
                    self.sketch.as_ref().expect("derived policy without sketch").estimate(r.key);
                admission_score(&w, est, r.size, r.ttl_ms) >= w.ad_threshold as i64
            }
            _ => true,
        }
    }

    /// Serves one request. See [`crate::replay`] for the semantics contract.
    pub fn request(&mut self, r: &ObjectRequest) {
        self.stats.requests += 1;
        if let Some(sketch) = self.sketch.as_mut() {
            sketch.record(r.key);
        }
        if let Some(i) = self.find(r.key) {
            if r.now_ms >= self.entries[i].expires_at {
                let e = self.entries.remove(i);
                self.stats.expirations += 1;
                self.stats.expired_bytes += e.size as u64;
            } else {
                self.stats.hits += 1;
                self.stats.hit_bytes += r.size as u64;
                self.touch(i, r.now_ms);
                self.seq += 1;
                return;
            }
        }
        self.stats.misses += 1;
        self.stats.miss_bytes += r.size as u64;
        if self.admit(r) {
            while self.used_bytes() + r.size as u64 > self.cfg.capacity_bytes {
                let v = self.victim();
                let e = self.entries.remove(v);
                if matches!(self.policy, ObjPolicyKind::Gdsf | ObjPolicyKind::DerivedRlr(_)) {
                    self.inflation = e.rank;
                }
                if r.now_ms >= e.expires_at {
                    self.stats.expirations += 1;
                    self.stats.expired_bytes += e.size as u64;
                } else {
                    self.stats.evictions += 1;
                    self.stats.evicted_bytes += e.size as u64;
                }
            }
            let rank = match self.policy {
                ObjPolicyKind::Gdsf => gdsf_priority(self.inflation, 1, r.size),
                ObjPolicyKind::DerivedRlr(w) => {
                    derived_rank(self.inflation, &w, 1, r.size, r.ttl_ms)
                }
                _ => 0,
            };
            self.entries.push(RefEntry {
                key: r.key,
                size: r.size,
                expires_at: r.now_ms + r.ttl_ms,
                freq: 1,
                last_seq: self.seq,
                protected: false,
                rank,
            });
            self.stats.admitted += 1;
        } else {
            self.stats.rejected += 1;
        }
        self.seq += 1;
    }
}
