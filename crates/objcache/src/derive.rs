//! The paper's derivation loop ported to object features: train an offline
//! agent on a traffic trace, inspect its weights, and distill them into the
//! cheap integer rule the cache actually runs ([`DerivedWeights`]).
//!
//! Pipeline (mirrors RLR's "RL agent → weight analysis → derived policy"):
//!
//! 1. **Label extraction** — for every request, look *forward* in the trace
//!    (the offline luxury): the label is 1 iff the object is re-requested
//!    within `horizon` requests *and* before its TTL lapses, i.e. caching
//!    it would have produced a hit.
//! 2. **Offline agent** — two logistic heads over normalized object
//!    features, trained by deterministic SGD with a simrng-shuffled visit
//!    order:
//!    - the *eviction head* sees what a resident entry knows: exact prior
//!      hit count, log size, TTL slack, and recency (requests since the
//!      previous occurrence);
//!    - the *admission head* sees only what the runtime admission point
//!      can afford for a non-resident object: the frequency-sketch
//!      estimate (simulated over the trace with the same
//!      [`FreqSketch`](crate::policy::FreqSketch) the cache runs), log
//!      size, and TTL.
//! 3. **Weight analysis** — each head's weights are rescaled to small
//!    integers (max magnitude 8, the budget RLR's hardware rule uses).
//!    Recency is handled *structurally*: eviction breaks rank ties by
//!    least-recent use instead of spending a weight on it. The admission
//!    bias becomes the threshold (admit iff the model says reuse is more
//!    likely than not).
//!
//! The result of running this on `ObjectTraffic::internet_default()` is
//! frozen as [`DerivedWeights::paper_default`]; tests keep the pinned rule
//! honest against re-derivation.

use crate::policy::{DerivedWeights, FreqSketch, FREQ_CAP};
use simrng::{Rng, SimRng};
use std::collections::HashMap;
use workloads::ObjectRequest;

/// Hyperparameters of the offline agent.
#[derive(Clone, Copy, Debug)]
pub struct DeriveConfig {
    /// A re-reference within this many requests counts as "soon".
    pub horizon: u64,
    /// SGD epochs.
    pub epochs: u32,
    /// Initial learning rate (decays per epoch).
    pub lr: f64,
    /// Shuffle seed.
    pub seed: u64,
}

impl Default for DeriveConfig {
    fn default() -> Self {
        Self { horizon: 50_000, epochs: 4, lr: 0.5, seed: 1 }
    }
}

/// The trained float agent, kept for reporting (`rlr objcache derive`
/// prints it next to the quantized rule).
#[derive(Clone, Copy, Debug)]
pub struct DerivedModel {
    /// Eviction head over `[freq, size, ttl, recency]` (normalized).
    pub ev_weights: [f64; 4],
    pub ev_bias: f64,
    /// Admission head over `[sketch_freq, size, ttl]` (normalized).
    pub ad_weights: [f64; 3],
    pub ad_bias: f64,
    /// Number of training samples / positive labels, for the report.
    pub samples: u64,
    pub positives: u64,
}

/// Normalization caps per feature: freq / TTL / recency share the 4-bit
/// bucket budget, size uses the 22-bucket inverse log scale.
const EV_CAPS: [f64; 4] = [FREQ_CAP as f64, 22.0, 15.0, 15.0];
const AD_CAPS: [f64; 3] = [FREQ_CAP as f64, 22.0, 15.0];

fn sigmoid(z: f64) -> f64 {
    1.0 / (1.0 + (-z).exp())
}

struct Samples {
    ev: Vec<[f64; 4]>,
    ad: Vec<[f64; 3]>,
    labels: Vec<bool>,
}

/// Extracts per-request features and forward-looking labels.
fn collect(trace: &[ObjectRequest], horizon: u64) -> Samples {
    // Next occurrence of each request's key, by a backward scan.
    let mut next = vec![usize::MAX; trace.len()];
    let mut last_pos: HashMap<u64, usize> = HashMap::new();
    for i in (0..trace.len()).rev() {
        next[i] = last_pos.get(&trace[i].key).copied().unwrap_or(usize::MAX);
        last_pos.insert(trace[i].key, i);
    }
    let mut out = Samples {
        ev: Vec::with_capacity(trace.len()),
        ad: Vec::with_capacity(trace.len()),
        labels: Vec::with_capacity(trace.len()),
    };
    let mut seen: HashMap<u64, (u32, usize)> = HashMap::new();
    // The admission head trains on the estimate the deployed sketch would
    // actually produce at this point in the trace (own request included,
    // matching the runtime order: record, then estimate).
    let mut sketch = FreqSketch::new();
    for (i, r) in trace.iter().enumerate() {
        sketch.record(r.key);
        let (freq_before, last_idx) = seen.get(&r.key).copied().unwrap_or((0, usize::MAX));
        let recency_buckets = if last_idx == usize::MAX {
            15.0
        } else {
            crate::policy::ttl_feat(((i - last_idx) as u64 + 1).saturating_mul(1000)) as f64
        };
        let sizef = crate::policy::size_feat(r.size) as f64;
        let ttlf = crate::policy::ttl_feat(r.ttl_ms) as f64;
        out.ev.push([
            crate::policy::freq_feat(freq_before) as f64 / EV_CAPS[0],
            sizef / EV_CAPS[1],
            ttlf / EV_CAPS[2],
            recency_buckets / EV_CAPS[3],
        ]);
        out.ad.push([
            crate::policy::freq_feat(sketch.estimate(r.key)) as f64 / AD_CAPS[0],
            sizef / AD_CAPS[1],
            ttlf / AD_CAPS[2],
        ]);
        out.labels.push(
            next[i] != usize::MAX
                && (next[i] - i) as u64 <= horizon
                && trace[next[i]].now_ms < r.now_ms + r.ttl_ms,
        );
        seen.insert(r.key, (freq_before.saturating_add(1), i));
    }
    out
}

/// One logistic head trained with deterministic SGD.
fn train_head<const N: usize>(
    xs: &[[f64; N]],
    ys: &[bool],
    cfg: &DeriveConfig,
) -> ([f64; N], f64) {
    assert!(!xs.is_empty(), "derivation needs a non-empty trace");
    let mut w = [0.0f64; N];
    let mut b = 0.0f64;
    let mut order: Vec<usize> = (0..xs.len()).collect();
    let mut rng = SimRng::seed_from_u64(cfg.seed);
    const L2: f64 = 1e-5;
    for epoch in 0..cfg.epochs {
        // Fisher–Yates with the sim RNG: same seed, same visit order.
        for i in (1..order.len()).rev() {
            let j = rng.gen_range(0..(i as u64 + 1)) as usize;
            order.swap(i, j);
        }
        let lr = cfg.lr / (1.0 + epoch as f64);
        for &i in &order {
            let x = &xs[i];
            let z = w.iter().zip(x).map(|(wi, xi)| wi * xi).sum::<f64>() + b;
            let g = sigmoid(z) - if ys[i] { 1.0 } else { 0.0 };
            for j in 0..N {
                w[j] -= lr * (g * x[j] + L2 * w[j]);
            }
            b -= lr * g;
        }
    }
    (w, b)
}

/// Weight analysis: distill the float agent into the integer rule.
pub fn quantize(model: &DerivedModel) -> DerivedWeights {
    // Coefficient per *integer* feature unit (undo the normalization), then
    // rescale so the largest magnitude lands on 8.
    let scale_to_i32 = |coeffs: &[f64]| -> (Vec<i32>, f64) {
        let max_mag = coeffs.iter().fold(0.0f64, |m, v| m.max(v.abs())).max(1e-12);
        let scale = 8.0 / max_mag;
        (coeffs.iter().map(|v| (v * scale).round().clamp(-8.0, 8.0) as i32).collect(), scale)
    };
    let ev_c: Vec<f64> =
        model.ev_weights[..3].iter().zip(EV_CAPS).map(|(w, cap)| w / cap).collect();
    let (ev_q, _) = scale_to_i32(&ev_c);
    let ad_c: Vec<f64> = model.ad_weights.iter().zip(AD_CAPS).map(|(w, cap)| w / cap).collect();
    let (ad_q, ad_scale) = scale_to_i32(&ad_c);
    // Admit iff P(reuse) >= 1/2, i.e. score + bias >= 0 in model units.
    let threshold = (-model.ad_bias * ad_scale).round().clamp(-512.0, 512.0) as i32;
    DerivedWeights {
        ev_freq: ev_q[0],
        ev_size: ev_q[1],
        ev_ttl: ev_q[2],
        ad_freq: ad_q[0],
        ad_size: ad_q[1],
        ad_ttl: ad_q[2],
        ad_threshold: threshold,
    }
}

/// Runs the full loop: label extraction → offline agent → weight analysis.
pub fn derive_weights(
    trace: &[ObjectRequest],
    cfg: &DeriveConfig,
) -> (DerivedModel, DerivedWeights) {
    let s = collect(trace, cfg.horizon);
    let (ev_weights, ev_bias) = train_head(&s.ev, &s.labels, cfg);
    let (ad_weights, ad_bias) = train_head(&s.ad, &s.labels, cfg);
    let model = DerivedModel {
        ev_weights,
        ev_bias,
        ad_weights,
        ad_bias,
        samples: s.labels.len() as u64,
        positives: s.labels.iter().filter(|&&y| y).count() as u64,
    };
    (model, quantize(&model))
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::ObjectTraffic;

    fn trace(n: usize) -> Vec<ObjectRequest> {
        ObjectTraffic { catalog: 20_000, ..ObjectTraffic::internet_default() }
            .stream()
            .take(n)
            .collect()
    }

    #[test]
    fn derivation_is_deterministic() {
        let t = trace(20_000);
        let cfg = DeriveConfig::default();
        let (m1, w1) = derive_weights(&t, &cfg);
        let (m2, w2) = derive_weights(&t, &cfg);
        assert_eq!(m1.ev_weights, m2.ev_weights);
        assert_eq!(m1.ad_weights, m2.ad_weights);
        assert_eq!(m1.ev_bias, m2.ev_bias);
        assert_eq!(w1, w2);
    }

    #[test]
    fn agent_learns_the_popularity_signal() {
        let t = trace(30_000);
        let (model, w) = derive_weights(&t, &DeriveConfig::default());
        assert!(
            model.ev_weights[0] > 0.0,
            "frequency must predict re-reference, got {:?}",
            model.ev_weights
        );
        assert!(model.ad_weights[0] > 0.0, "admission head lost frequency: {:?}", model.ad_weights);
        assert!(w.ev_freq > 0, "quantized rule lost the frequency signal: {w:?}");
        assert!(model.positives > 0 && model.positives < model.samples);
    }
}
