//! The fast object cache: hash-map residency plus ordered victim indexes.
//!
//! Victim selection is O(log n) — each policy maintains a `BTreeSet` of
//! `(primary, tiebreak, key)` tuples whose minimum is the next victim —
//! where the [`crate::ReferenceObjectCache`] oracle rescans every resident
//! object per decision. The differential wall
//! (`objcache/tests/differential.rs`) holds the two bit-identical.
//!
//! The request semantics both implementations follow are documented on
//! [`crate::replay`]; scoring formulas live in [`crate::policy`].

use crate::policy::{
    admission_score, derived_rank, gdsf_priority, DerivedWeights, FreqSketch, ObjPolicyKind,
};
use crate::{ObjCacheConfig, ObjStats};
use std::collections::{BTreeSet, HashMap};
use workloads::ObjectRequest;

#[derive(Clone, Copy, Debug)]
struct Entry {
    size: u32,
    expires_at: u64,
    freq: u32,
    last_seq: u64,
    /// SLRU: false = probation, true = protected.
    protected: bool,
    /// GDSF `H` — also reused to store the derived rule's mapped priority.
    rank: u64,
}

/// The production-path object cache.
#[derive(Clone, Debug)]
pub struct ObjectCache {
    cfg: ObjCacheConfig,
    policy: ObjPolicyKind,
    entries: HashMap<u64, Entry>,
    /// Victim order for LRU / GDSF / derived, and SLRU's probation segment.
    main_idx: BTreeSet<(u64, u64, u64)>,
    /// SLRU's protected segment order.
    prot_idx: BTreeSet<(u64, u64, u64)>,
    used: u64,
    protected_bytes: u64,
    /// GDSF inflation `L`.
    inflation: u64,
    sketch: Option<FreqSketch>,
    seq: u64,
    stats: ObjStats,
}

impl ObjectCache {
    pub fn new(cfg: ObjCacheConfig, policy: ObjPolicyKind) -> Self {
        cfg.validate();
        let sketch = match policy {
            ObjPolicyKind::DerivedRlr(_) => Some(FreqSketch::new()),
            _ => None,
        };
        Self {
            cfg,
            policy,
            entries: HashMap::new(),
            main_idx: BTreeSet::new(),
            prot_idx: BTreeSet::new(),
            used: 0,
            protected_bytes: 0,
            inflation: 0,
            sketch,
            seq: 0,
            stats: ObjStats::default(),
        }
    }

    pub fn stats(&self) -> &ObjStats {
        &self.stats
    }

    /// Bytes currently resident.
    pub fn used_bytes(&self) -> u64 {
        self.used
    }

    /// Number of resident objects.
    pub fn resident(&self) -> usize {
        self.entries.len()
    }

    /// The index tuple for `key`'s current entry state.
    fn index_key(&self, key: u64, e: &Entry) -> (u64, u64, u64) {
        match self.policy {
            ObjPolicyKind::Lru | ObjPolicyKind::Slru => (e.last_seq, 0, key),
            ObjPolicyKind::Gdsf | ObjPolicyKind::DerivedRlr(_) => (e.rank, e.last_seq, key),
        }
    }

    fn index_insert(&mut self, key: u64, e: &Entry) {
        let tuple = self.index_key(key, e);
        if e.protected {
            self.prot_idx.insert(tuple);
        } else {
            self.main_idx.insert(tuple);
        }
    }

    fn index_remove(&mut self, key: u64, e: &Entry) {
        let tuple = self.index_key(key, e);
        if e.protected {
            self.prot_idx.remove(&tuple);
        } else {
            self.main_idx.remove(&tuple);
        }
    }

    /// Removes `key` entirely (residency, index, byte accounting).
    fn remove_entry(&mut self, key: u64) -> Entry {
        let e = self.entries.remove(&key).expect("removing a non-resident key");
        self.index_remove(key, &e);
        self.used -= e.size as u64;
        if e.protected {
            self.protected_bytes -= e.size as u64;
        }
        e
    }

    /// Policy reaction to a hit on a fresh resident entry.
    fn touch(&mut self, key: u64, now_ms: u64) {
        let mut e = *self.entries.get(&key).expect("touching a non-resident key");
        self.index_remove(key, &e);
        if e.protected {
            self.protected_bytes -= e.size as u64;
        }
        e.freq = e.freq.saturating_add(1);
        e.last_seq = self.seq;
        match self.policy {
            ObjPolicyKind::Lru => {}
            ObjPolicyKind::Slru => {
                // Probation hit promotes; protected hit just refreshes.
                e.protected = true;
            }
            ObjPolicyKind::Gdsf => {
                e.rank = gdsf_priority(self.inflation, e.freq, e.size);
            }
            ObjPolicyKind::DerivedRlr(w) => {
                let remaining = e.expires_at.saturating_sub(now_ms);
                e.rank = derived_rank(self.inflation, &w, e.freq, e.size, remaining);
            }
        }
        if e.protected {
            self.protected_bytes += e.size as u64;
        }
        self.entries.insert(key, e);
        self.index_insert(key, &e);
        if matches!(self.policy, ObjPolicyKind::Slru) {
            self.rebalance_slru();
        }
    }

    /// Demotes protected-LRU entries until the protected segment fits its
    /// byte budget.
    fn rebalance_slru(&mut self) {
        let cap = self.cfg.protected_capacity();
        while self.protected_bytes > cap {
            let &(_, _, key) = self.prot_idx.iter().next().expect("protected bytes but no entry");
            let mut e = *self.entries.get(&key).expect("indexed key not resident");
            self.index_remove(key, &e);
            self.protected_bytes -= e.size as u64;
            e.protected = false;
            self.entries.insert(key, e);
            self.index_insert(key, &e);
        }
    }

    /// The key the policy would evict next: SLRU drains probation before
    /// protected; everything else takes the minimum of the main index.
    fn victim(&self) -> u64 {
        let tuple = self
            .main_idx
            .iter()
            .next()
            .or_else(|| self.prot_idx.iter().next())
            .expect("eviction with an empty cache");
        tuple.2
    }

    /// Frees space until `need` more bytes fit, counting each removal as an
    /// eviction or (if the victim's TTL already lapsed) an expiration.
    fn make_room(&mut self, need: u64, now_ms: u64) {
        while self.used + need > self.cfg.capacity_bytes {
            let key = self.victim();
            let e = self.remove_entry(key);
            if matches!(self.policy, ObjPolicyKind::Gdsf | ObjPolicyKind::DerivedRlr(_)) {
                // Inflation: future ranks start from the evicted minimum,
                // which is what ages out stale high-frequency entries.
                // Applies to expired victims too (both impls agree).
                self.inflation = e.rank;
            }
            if now_ms >= e.expires_at {
                self.stats.expirations += 1;
                self.stats.expired_bytes += e.size as u64;
            } else {
                self.stats.evictions += 1;
                self.stats.evicted_bytes += e.size as u64;
            }
        }
    }

    fn insert(&mut self, r: &ObjectRequest) {
        let mut e = Entry {
            size: r.size,
            expires_at: r.now_ms + r.ttl_ms,
            freq: 1,
            last_seq: self.seq,
            protected: false,
            rank: 0,
        };
        match self.policy {
            ObjPolicyKind::Gdsf => e.rank = gdsf_priority(self.inflation, 1, r.size),
            ObjPolicyKind::DerivedRlr(w) => {
                e.rank = derived_rank(self.inflation, &w, 1, r.size, r.ttl_ms);
            }
            _ => {}
        }
        self.used += r.size as u64;
        self.entries.insert(r.key, e);
        self.index_insert(r.key, &e);
        self.stats.admitted += 1;
    }

    fn admit(&self, r: &ObjectRequest) -> bool {
        if r.size as u64 > self.cfg.capacity_bytes {
            return false;
        }
        match self.policy {
            ObjPolicyKind::DerivedRlr(w) => {
                let est = self.sketch.as_ref().expect("derived policy without sketch").estimate(r.key);
                self.admission_passes(&w, est, r)
            }
            _ => true,
        }
    }

    fn admission_passes(&self, w: &DerivedWeights, est: u32, r: &ObjectRequest) -> bool {
        admission_score(w, est, r.size, r.ttl_ms) >= w.ad_threshold as i64
    }

    /// Serves one request. See [`crate::replay`] for the full semantics.
    pub fn request(&mut self, r: &ObjectRequest) {
        self.stats.requests += 1;
        if let Some(sketch) = self.sketch.as_mut() {
            sketch.record(r.key);
        }
        let resident = self.entries.get(&r.key).copied();
        if let Some(e) = resident {
            if r.now_ms >= e.expires_at {
                // Lazy expiry: the object is gone; fall through to the miss
                // path (re-fetch, subject to admission).
                self.remove_entry(r.key);
                self.stats.expirations += 1;
                self.stats.expired_bytes += e.size as u64;
            } else {
                self.stats.hits += 1;
                self.stats.hit_bytes += r.size as u64;
                self.touch(r.key, r.now_ms);
                self.seq += 1;
                return;
            }
        }
        self.stats.misses += 1;
        self.stats.miss_bytes += r.size as u64;
        if self.admit(r) {
            self.make_room(r.size as u64, r.now_ms);
            self.insert(r);
        } else {
            self.stats.rejected += 1;
        }
        self.seq += 1;
    }

    /// Internal consistency invariants, asserted by the differential wall.
    pub fn check_invariants(&self) {
        let sum: u64 = self.entries.values().map(|e| e.size as u64).sum();
        assert_eq!(sum, self.used, "byte accounting drifted");
        assert!(self.used <= self.cfg.capacity_bytes, "over budget");
        assert_eq!(
            self.main_idx.len() + self.prot_idx.len(),
            self.entries.len(),
            "victim index out of sync"
        );
        let prot: u64 =
            self.entries.values().filter(|e| e.protected).map(|e| e.size as u64).sum();
        assert_eq!(prot, self.protected_bytes, "protected byte accounting drifted");
    }
}
