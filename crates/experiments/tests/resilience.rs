//! Fault-tolerance of the experiment pipeline, exercised end to end with
//! deterministic fault injection — no timing, no flakiness.

use std::path::PathBuf;

use experiments::fault::FailPlan;
use experiments::figures::speedup_table;
use experiments::runner::{
    run_roster_resilient, run_tasks_resilient, watchdog_tick, FailureKind, RunOptions,
    RunnerError, SweepOptions, TaskFailure,
};
use experiments::{PolicyKind, Scale};

fn opts(plan: &str, retries: u32) -> RunOptions {
    RunOptions {
        retries,
        backoff_ms: 0, // keep tests instant; delay growth is unit-tested
        budget: None,
        fail_plan: FailPlan::parse(plan).expect("valid plan"),
    }
}

#[test]
fn injected_panic_spares_every_other_task() {
    let items: Vec<u64> = (0..6).collect();
    let results = run_tasks_resilient(&items, 3, &opts("panic:2:*", 1), |_, &x| x * 10);
    for (i, r) in results.iter().enumerate() {
        if i == 2 {
            let failure = r.as_ref().expect_err("task 2 must fail");
            assert_eq!(failure.index, 2);
            assert_eq!(failure.attempts, 2, "1 attempt + 1 retry");
            assert!(
                matches!(&failure.kind, FailureKind::Panicked(msg) if msg.contains("injected")),
                "unexpected kind: {:?}",
                failure.kind
            );
        } else {
            assert_eq!(*r.as_ref().expect("other tasks succeed"), i as u64 * 10);
        }
    }
}

#[test]
fn retry_recovers_a_task_that_fails_transiently() {
    let items = [0u8; 5];
    // The fault fires on the first two attempts; with two retries the
    // third attempt succeeds.
    let results = run_tasks_resilient(&items, 2, &opts("panic:4:2", 2), |i, _| i);
    assert!(results.iter().all(Result::is_ok), "all tasks recover: {results:?}");
    // One retry fewer and the same fault is terminal.
    let results = run_tasks_resilient(&items, 2, &opts("panic:4:2", 1), |i, _| i);
    let failure = results[4].as_ref().expect_err("retry budget exhausted");
    assert_eq!(failure.attempts, 2);
}

#[test]
fn watchdog_stops_a_stalled_task() {
    let items = [(); 3];
    let options = RunOptions { budget: Some(50), ..opts("stall:1", 0) };
    let results = run_tasks_resilient(&items, 3, &options, |i, ()| i);
    assert_eq!(results[0], Ok(0));
    assert_eq!(results[2], Ok(2));
    let failure = results[1].as_ref().expect_err("stalled task is aborted");
    assert_eq!(failure.kind, FailureKind::BudgetExceeded { budget: 50 });
}

#[test]
fn watchdog_bounds_a_runaway_loop_in_the_task_body() {
    // A cooperative loop that never finishes on its own (the shape of
    // capture_llc_trace's slice loop) is cut off at the budget.
    let items = [(); 1];
    let options = RunOptions { budget: Some(100), ..opts("", 0) };
    let results = run_tasks_resilient(&items, 1, &options, |_, ()| {
        let mut spins = 0u64;
        loop {
            watchdog_tick(1);
            spins += 1;
            assert!(spins <= 100, "watchdog must fire within the budget");
        }
    });
    assert!(
        matches!(results[0], Err(TaskFailure { kind: FailureKind::BudgetExceeded { budget: 100 }, .. }))
    );
}

#[test]
fn unknown_benchmark_fails_before_any_work() {
    let err = run_roster_resilient(
        &["429.mcf", "999.bogus"],
        &[PolicyKind::Lru],
        Scale::Small,
        &SweepOptions::none(),
    )
    .expect_err("bogus name is rejected");
    assert_eq!(err, RunnerError::UnknownBenchmark("999.bogus".to_owned()));
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rlr_resilience_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The tentpole acceptance test: a sweep interrupted by a crashing cell
/// and then re-run against the same checkpoint directory produces output
/// identical to a sweep that was never interrupted — for every pool shape.
#[test]
fn interrupted_sweep_resumes_identically_to_a_clean_run() {
    let benchmarks = ["429.mcf", "470.lbm"];
    let policies = [PolicyKind::Lru, PolicyKind::Fifo];
    let clean = run_roster_resilient(&benchmarks, &policies, Scale::Small, &SweepOptions::none())
        .expect("clean sweep");
    assert!(clean.iter().all(|(_, runs)| runs.iter().all(|(_, c)| c.is_ok())));

    for jobs in [1usize, 2, 8] {
        let dir = scratch_dir(&format!("resume_j{jobs}"));
        // "Interrupted" run: task 3 (470.lbm under Fifo) crashes with no
        // retry; the three other cells complete and are checkpointed.
        let interrupted = run_roster_resilient(
            &benchmarks,
            &policies,
            Scale::Small,
            &SweepOptions {
                jobs: Some(jobs),
                run: opts("panic:3:*", 0),
                cache_dir: Some(dir.clone()),
            },
        )
        .expect("sweep runs");
        let (_, lbm_runs) = &interrupted[1];
        assert!(lbm_runs[1].1.is_err(), "injected cell must fail (jobs={jobs})");
        assert_eq!(
            interrupted.iter().flat_map(|(_, r)| r).filter(|(_, c)| c.is_ok()).count(),
            3,
            "every non-injected cell completes (jobs={jobs})"
        );

        // Resumed run: no injection, same checkpoint dir. Cached cells are
        // loaded, the failed one is recomputed.
        let resumed = run_roster_resilient(
            &benchmarks,
            &policies,
            Scale::Small,
            &SweepOptions {
                jobs: Some(jobs),
                run: RunOptions::none(),
                cache_dir: Some(dir.clone()),
            },
        )
        .expect("sweep resumes");
        assert_eq!(resumed, clean, "resumed sweep diverged from clean run (jobs={jobs})");
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn failed_cells_degrade_to_annotated_gaps_in_reports() {
    // Build a synthetic sweep shaped like single_core_sweep's output: one
    // failed policy cell and one failed LRU baseline.
    let ok = cache_sim::RunStats {
        instructions: 1_000,
        cycles: 2_000,
        ..cache_sim::RunStats::default()
    };
    let fail = |index| TaskFailure {
        index,
        attempts: 2,
        kind: FailureKind::Panicked("boom".to_owned()),
    };
    let cells = |dead: Option<usize>| -> Vec<(PolicyKind, experiments::CellResult)> {
        std::iter::once(PolicyKind::Lru)
            .chain(PolicyKind::SINGLE_CORE.iter().copied())
            .enumerate()
            .map(|(i, p)| (p, if dead == Some(i) { Err(fail(i)) } else { Ok(ok) }))
            .collect()
    };
    let sweep = vec![
        ("one.ok".to_owned(), cells(None)),
        ("two.cell".to_owned(), cells(Some(2))),
        ("three.lru".to_owned(), cells(Some(0))),
    ];
    let table = speedup_table("degradation test", &sweep);
    let text = table.render();
    assert!(text.contains("failed"), "failed cell is visible:\n{text}");
    assert!(text.contains("n/a"), "missing baseline blanks the row:\n{text}");
    assert!(text.contains("note:") && text.contains("boom"), "failures are annotated:\n{text}");
    assert!(text.contains("Overall"), "overall row still renders:\n{text}");
}
