//! The sharded roster runner is bit-identical to a serial sweep: results
//! depend only on (workload, policy, scale), never on worker count or
//! scheduling order.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

use cache_sim::RunStats;
use experiments::runner::{resolve_jobs, run_roster_parallel, run_tasks_parallel};
use experiments::{PolicyKind, Scale};

/// A stable per-(workload, policy) fingerprint of the full RunStats.
fn fingerprint(name: &str, policy: PolicyKind, stats: &RunStats) -> u64 {
    let mut h = DefaultHasher::new();
    name.hash(&mut h);
    policy.name().hash(&mut h);
    format!("{stats:?}").hash(&mut h);
    h.finish()
}

fn fingerprints(sweep: &[(String, Vec<(PolicyKind, RunStats)>)]) -> Vec<(String, String, u64)> {
    sweep
        .iter()
        .flat_map(|(name, runs)| {
            runs.iter().map(move |(policy, stats)| {
                (name.clone(), policy.name().to_owned(), fingerprint(name, *policy, stats))
            })
        })
        .collect()
}

#[test]
fn parallel_roster_is_bit_identical_to_serial() {
    let benchmarks = ["429.mcf", "482.sphinx3"];
    let policies = [PolicyKind::Lru, PolicyKind::Rlr];
    let serial =
        run_roster_parallel(&benchmarks, &policies, Scale::Small, Some(1)).expect("known roster");
    // More workers than tasks exercises the pool clamp and, on multi-core
    // hosts, true interleaving; on a single-core host it still runs the
    // whole queue through scoped worker threads.
    let parallel =
        run_roster_parallel(&benchmarks, &policies, Scale::Small, Some(3)).expect("known roster");

    // Bit-identical stats, per (workload, policy) cell.
    assert_eq!(serial, parallel);
    assert_eq!(fingerprints(&serial), fingerprints(&parallel));

    // Grouping preserves both input orders.
    let names: Vec<&str> = serial.iter().map(|(n, _)| n.as_str()).collect();
    assert_eq!(names, benchmarks);
    for (_, runs) in &serial {
        let kinds: Vec<PolicyKind> = runs.iter().map(|(k, _)| *k).collect();
        assert_eq!(kinds, policies);
    }
}

#[test]
fn task_pool_preserves_input_order_under_any_worker_count() {
    let items: Vec<u64> = (0..97).collect();
    for jobs in [1, 2, 5, 128] {
        let out = run_tasks_parallel(&items, jobs, |i, &x| {
            assert_eq!(i as u64, x);
            x * 3 + 1
        });
        let expected: Vec<u64> = items.iter().map(|x| x * 3 + 1).collect();
        assert_eq!(out, expected, "jobs={jobs}");
    }
}

#[test]
fn job_resolution_prefers_explicit_then_env() {
    assert_eq!(resolve_jobs(Some(7)), 7);
    // `None` must yield at least one worker no matter the environment.
    assert!(resolve_jobs(None) >= 1);
}
