//! Multicore runner invariants.

use experiments::runner::{mix_speedup_pct, run_mix};
use experiments::{PolicyKind, Scale};
use workloads::{spec2006, WorkloadMix};

/// Scale::Small multicore budgets are too slow for a test; drive run_mix's
/// building blocks at test size instead.
#[test]
fn per_core_pc_salting_separates_identical_workloads() {
    // Two cores running the SAME benchmark must not present identical PCs
    // to the shared LLC (distinct address spaces in reality).
    use cache_sim::{MultiCoreSystem, SystemConfig, TrueLru};
    use workloads::TraceEntry;

    let mut config = SystemConfig::paper_quad_core();
    config.cores = 2;
    // Reuse the salting logic indirectly: replicate what run_mix does.
    let wl = spec2006("450.soplex").expect("known benchmark");
    let streams: Vec<Box<dyn Iterator<Item = TraceEntry> + Send>> = (0..2)
        .map(|core| {
            let seeded = wl.clone().with_seed(wl.seed() ^ (core as u64 + 1));
            let salt = (core as u64 + 1) << 44;
            Box::new(seeded.stream().map(move |mut e| {
                e.pc ^= salt;
                e
            })) as Box<dyn Iterator<Item = TraceEntry> + Send>
        })
        .collect();
    let mut system = MultiCoreSystem::new(&config, Box::new(TrueLru::new(&config.llc)), streams);
    system.llc_mut().enable_capture();
    let _ = system.run(0, 150_000);
    let trace = system.llc_mut().take_capture().expect("capture enabled");
    let mut pcs0 = std::collections::HashSet::new();
    let mut pcs1 = std::collections::HashSet::new();
    for r in trace.records() {
        if r.pc == 0 {
            continue; // writebacks carry no PC
        }
        if r.core == 0 {
            pcs0.insert(r.pc);
        } else {
            pcs1.insert(r.pc);
        }
    }
    assert!(!pcs0.is_empty() && !pcs1.is_empty());
    assert!(
        pcs0.is_disjoint(&pcs1),
        "per-core PC salting must prevent cross-core collisions"
    );
}

#[test]
fn mix_speedup_requires_matching_core_counts() {
    let stats = cache_sim::RunStats { instructions: 10, cycles: 10, ..Default::default() };
    let result = std::panic::catch_unwind(|| mix_speedup_pct(&[stats], &[stats, stats]));
    assert!(result.is_err(), "mismatched core counts must panic");
}

#[test]
#[ignore = "slow: full Scale::Small multicore run; exercised by the fig13 bench"]
fn run_mix_produces_stats_for_every_core() {
    let mix = WorkloadMix::new(
        "t",
        vec![
            spec2006("416.gamess").expect("known"),
            spec2006("450.soplex").expect("known"),
            spec2006("470.lbm").expect("known"),
            spec2006("429.mcf").expect("known"),
        ],
    );
    let stats = run_mix(&mix, PolicyKind::Rlr, Scale::Small);
    assert_eq!(stats.len(), 4);
}
