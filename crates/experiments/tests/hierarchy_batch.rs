//! Hierarchy batching equivalence: the staged
//! [`CoreHierarchy::data_access_batch`] path against the per-access
//! [`CoreHierarchy::data_access`] path, on the demand stream of the golden
//! `429.mcf` RLT fixture. Batched replay must be **bit-identical** — the
//! same service level for every request and the same hit/miss/writeback
//! counters at L1D, L1I, L2, the LLC, and memory — because the staging
//! only reorders L2-and-below work *after* L1 work it cannot influence.

use cache_sim::{CoreHierarchy, SharedLlc, SystemConfig};
use experiments::runner::{demand_requests, replay_hierarchy, HierarchyReplayMode};
use experiments::PolicyKind;

const FIXTURE: &str =
    concat!(env!("CARGO_MANIFEST_DIR"), "/../trace-io/tests/data/golden_429mcf.rlt");

fn fixture_requests() -> Vec<cache_sim::DataRequest> {
    let trace = trace_io::read_trace_file(std::path::Path::new(FIXTURE))
        .expect("golden fixture is committed and verifies");
    let requests = demand_requests(&trace);
    assert!(requests.len() > 3000, "fixture must carry a real demand stream");
    requests
}

/// Replays `requests` through a fresh hierarchy + LLC in the given mode
/// and returns everything observable about the run.
fn replay(
    llc_policy: PolicyKind,
    requests: &[cache_sim::DataRequest],
    mode: HierarchyReplayMode,
) -> (Vec<cache_sim::ServiceLevel>, Vec<cache_sim::CacheStats>, u64, u64) {
    let config = SystemConfig::paper_single_core();
    let mut core = CoreHierarchy::new(0, &config);
    let mut llc = SharedLlc::new(&config, llc_policy.build(&config.llc, None));
    let levels = replay_hierarchy(&mut core, &mut llc, requests, mode);
    let stats = vec![
        core.l1d_stats().clone(),
        core.l1i_stats().clone(),
        core.l2_stats().clone(),
        llc.stats().clone(),
    ];
    (levels, stats, llc.memory_reads(), llc.memory_writes())
}

fn assert_modes_identical(llc_policy: PolicyKind, requests: &[cache_sim::DataRequest]) {
    let (levels_single, stats_single, reads_single, writes_single) =
        replay(llc_policy, requests, HierarchyReplayMode::PerAccess);
    let (levels_batch, stats_batch, reads_batch, writes_batch) =
        replay(llc_policy, requests, HierarchyReplayMode::Batched);
    assert_eq!(
        levels_single.len(),
        levels_batch.len(),
        "[{}] batched replay lost or invented requests",
        llc_policy.name()
    );
    if let Some(i) = (0..levels_single.len()).find(|&i| levels_single[i] != levels_batch[i]) {
        panic!(
            "[{}] service level diverged at request {i}: per-access {:?} vs batched {:?}",
            llc_policy.name(),
            levels_single[i],
            levels_batch[i]
        );
    }
    for (stats, level) in stats_single.iter().zip(["L1D", "L1I", "L2", "LLC"]) {
        let batched = &stats_batch[match level {
            "L1D" => 0,
            "L1I" => 1,
            "L2" => 2,
            _ => 3,
        }];
        assert_eq!(
            stats, batched,
            "[{}] {level} hit/miss/writeback counters diverged",
            llc_policy.name()
        );
    }
    assert_eq!(reads_single, reads_batch, "[{}] memory reads diverged", llc_policy.name());
    assert_eq!(writes_single, writes_batch, "[{}] memory writes diverged", llc_policy.name());
}

/// The golden 429.mcf demand stream, batched vs per-access, with the
/// paper's RLR at the LLC.
#[test]
fn batched_replay_matches_per_access_on_golden_mcf() {
    let requests = fixture_requests();
    assert_modes_identical(PolicyKind::Rlr, &requests);
}

/// Same wall with LRU (the TrueLru lane scan also runs at the LLC here)
/// and snapshot-elided multicore RLR.
#[test]
fn batched_replay_matches_per_access_across_llc_policies() {
    let requests = fixture_requests();
    assert_modes_identical(PolicyKind::Lru, &requests);
    assert_modes_identical(PolicyKind::RlrMulticore, &requests);
}

/// Chunk-size invariance: any batch boundary must land on the same state,
/// so odd chunk sizes (including 1) reproduce the full-batch replay.
#[test]
fn batch_boundaries_do_not_leak_into_results() {
    let requests: Vec<_> = fixture_requests().into_iter().take(2500).collect();
    let config = SystemConfig::paper_single_core();
    let reference = replay(PolicyKind::Rlr, &requests, HierarchyReplayMode::Batched);
    for chunk_len in [1usize, 7, 64, 1023] {
        let mut core = CoreHierarchy::new(0, &config);
        let mut llc = SharedLlc::new(&config, PolicyKind::Rlr.build(&config.llc, None));
        let mut levels = Vec::new();
        for chunk in requests.chunks(chunk_len) {
            core.data_access_batch(chunk, &mut llc, &mut levels);
        }
        assert_eq!(levels, reference.0, "chunk size {chunk_len} changed service levels");
        assert_eq!(
            llc.stats(),
            &reference.1[3],
            "chunk size {chunk_len} changed LLC statistics"
        );
    }
}
