//! Differential wall between the two timing modes on the golden `429.mcf`
//! RLT fixture: the event-driven core must (a) be bit-deterministic,
//! (b) leave every functional counter byte-identical to analytic mode —
//! timing is a pure consumer of the hit/miss stream — and (c) preserve
//! the analytic policy ranking, so figures produced from simulated time
//! tell the same story in either mode. Event-mode cycle counts are pinned
//! so any change to the bank model or queue arithmetic is a conscious one.

use cache_sim::{CacheStats, CoreHierarchy, SharedLlc, SystemConfig, TimingMode};
use experiments::runner::{demand_requests, replay_hierarchy_timed, TimedReplay};
use experiments::PolicyKind;

const FIXTURE: &str =
    concat!(env!("CARGO_MANIFEST_DIR"), "/../trace-io/tests/data/golden_429mcf.rlt");

const POLICIES: [PolicyKind; 4] =
    [PolicyKind::Lru, PolicyKind::Srrip, PolicyKind::Drrip, PolicyKind::Rlr];

/// The golden demand stream, looped three times. A single pass carries
/// almost no LLC-level reuse (every policy ties at ~0 demand hits); the
/// repeats turn it into a cyclic scan larger than the shrunken LLC, the
/// regime where retention policies genuinely separate.
fn fixture_requests() -> Vec<cache_sim::DataRequest> {
    let trace = trace_io::read_trace_file(std::path::Path::new(FIXTURE))
        .expect("golden fixture is committed and verifies");
    let requests = demand_requests(&trace);
    assert!(requests.len() > 3000, "fixture must carry a real demand stream");
    requests.repeat(3)
}

/// The paper config with the LLC shrunk to 64 KB. The fixture's demand
/// stream fits the full 2 MB LLC (every policy would tie with zero
/// evictions); a small LLC puts real replacement pressure on the stream
/// so the policies — and the ranking wall — actually separate.
fn pressured_config(mode: TimingMode) -> SystemConfig {
    let mut config = SystemConfig::paper_single_core().with_timing(mode);
    config.llc = cache_sim::CacheConfig::with_capacity_kb(64, 16, config.llc.latency);
    config
}

/// One timed replay of the fixture: simulated time plus everything
/// functional the run observed.
fn replay(
    policy: PolicyKind,
    requests: &[cache_sim::DataRequest],
    mode: TimingMode,
) -> (TimedReplay, CacheStats, u64, u64) {
    let config = pressured_config(mode);
    let mut core = CoreHierarchy::new(0, &config);
    let mut llc = SharedLlc::new(&config, policy.build(&config.llc, None));
    let timed = replay_hierarchy_timed(&mut core, &mut llc, requests, &config);
    (timed, llc.stats().clone(), llc.memory_reads(), llc.memory_writes())
}

/// Two event-mode replays of the same stream must agree bit-for-bit —
/// the bank queues are deterministic state, not a stochastic model.
#[test]
fn event_replay_is_deterministic_on_golden_mcf() {
    let requests = fixture_requests();
    for policy in POLICIES {
        let first = replay(policy, &requests, TimingMode::Event);
        let second = replay(policy, &requests, TimingMode::Event);
        assert_eq!(first, second, "[{}] event replay diverged between runs", policy.name());
    }
}

/// The timing mode must be invisible to the functional simulation:
/// identical LLC hit/miss/writeback counters, memory traffic, and
/// retired-instruction counts in both modes, for every policy.
#[test]
fn functional_counters_identical_across_modes() {
    let requests = fixture_requests();
    for policy in POLICIES {
        let (timed_a, stats_a, reads_a, writes_a) =
            replay(policy, &requests, TimingMode::Analytic);
        let (timed_e, stats_e, reads_e, writes_e) = replay(policy, &requests, TimingMode::Event);
        assert_eq!(stats_a, stats_e, "[{}] LLC counters diverged across modes", policy.name());
        assert_eq!(reads_a, reads_e, "[{}] memory reads diverged", policy.name());
        assert_eq!(writes_a, writes_e, "[{}] memory writes diverged", policy.name());
        assert_eq!(
            timed_a.instructions,
            timed_e.instructions,
            "[{}] instruction counts diverged",
            policy.name()
        );
    }
}

/// For every pair of policies the analytic model separates, the event
/// model must agree on which one is faster: bank queueing scales the
/// cost of misses, it does not reward a policy that misses more.
#[test]
fn policy_ranking_preserved_across_modes() {
    let requests = fixture_requests();
    let analytic: Vec<(PolicyKind, u64)> = POLICIES
        .iter()
        .map(|&p| (p, replay(p, &requests, TimingMode::Analytic).0.cycles))
        .collect();
    let event: Vec<(PolicyKind, u64)> = POLICIES
        .iter()
        .map(|&p| (p, replay(p, &requests, TimingMode::Event).0.cycles))
        .collect();
    assert!(
        analytic.iter().any(|&(_, c)| c != analytic[0].1),
        "fixture no longer separates the policies — the ranking wall is vacuous"
    );
    for i in 0..POLICIES.len() {
        for j in i + 1..POLICIES.len() {
            let (pa, ca_i) = analytic[i];
            let (pb, ca_j) = analytic[j];
            if ca_i == ca_j {
                continue; // analytic dead heat: either order is fine
            }
            let (ce_i, ce_j) = (event[i].1, event[j].1);
            assert_eq!(
                ca_i < ca_j,
                ce_i < ce_j,
                "ranking flipped across modes: analytic {}={ca_i} vs {}={ca_j}, \
                 event {}={ce_i} vs {}={ce_j}",
                pa.name(),
                pb.name(),
                pa.name(),
                pb.name()
            );
        }
    }
}

/// Pinned event-mode cycle counts on the golden stream. These encode the
/// exact DRAM bank geometry, row-buffer service times, and queue
/// arithmetic; a failure here means the event timing model changed, not
/// that it broke — update deliberately, alongside DESIGN.md.
#[test]
fn event_cycle_counts_are_pinned_on_golden_mcf() {
    let requests = fixture_requests();
    let pinned: [(PolicyKind, u64); 4] = [
        (PolicyKind::Lru, 372_828),
        (PolicyKind::Srrip, 372_718),
        (PolicyKind::Drrip, 348_663),
        (PolicyKind::Rlr, 341_877),
    ];
    for (policy, expect) in pinned {
        let got = replay(policy, &requests, TimingMode::Event).0.cycles;
        assert_eq!(got, expect, "[{}] pinned event-mode cycle count moved", policy.name());
    }
}
