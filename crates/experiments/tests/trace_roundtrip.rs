//! The trace-io acceptance wall: a captured 429.mcf LLC trace must
//! round-trip bit-identically through the compressed container, the
//! streaming capture must produce the identical record stream as the
//! in-memory capture, streaming replay must produce identical statistics
//! to in-memory replay, and the container must stay at or under half the
//! raw fixed-width encoding.

use cache_sim::{SetAssocCache, SystemConfig};
use experiments::corpus::capture_stream;
use experiments::runner::{capture_llc_trace, replay_llc_reader, replay_llc_trace};
use experiments::{PolicyKind, Scale};
use trace_io::{TraceReader, TraceWriter};

const RECORDS: usize = 20_000;

fn mcf_trace() -> cache_sim::LlcTrace {
    let wl = workloads::spec2006("429.mcf").expect("known benchmark");
    capture_llc_trace(&wl, Scale::Small, RECORDS).expect("capture succeeds")
}

#[test]
fn container_round_trip_is_bit_identical() {
    let trace = mcf_trace();
    assert_eq!(trace.len(), RECORDS);
    let bytes = trace_io::encode_trace(&trace, trace_io::DEFAULT_BLOCK_LEN).expect("encode");
    let back = TraceReader::new(bytes.as_slice())
        .expect("valid header")
        .read_to_trace()
        .expect("valid container");
    assert_eq!(trace, back, "container round-trip must be bit-identical");
}

#[test]
fn streaming_capture_matches_in_memory_capture() {
    let wl = workloads::spec2006("429.mcf").expect("known benchmark");
    let reference = mcf_trace();
    let mut writer = TraceWriter::new(Vec::new()).expect("header");
    let written = capture_stream(&wl, Scale::Small, RECORDS as u64, &mut writer)
        .expect("streaming capture succeeds");
    assert_eq!(written, RECORDS as u64);
    let bytes = writer.finish().expect("finish");
    let streamed = TraceReader::new(bytes.as_slice())
        .expect("valid header")
        .read_to_trace()
        .expect("valid container");
    assert_eq!(reference, streamed, "drain-based capture must produce the same stream");
}

#[test]
fn streaming_replay_matches_in_memory_replay() {
    let trace = mcf_trace();
    let config = SystemConfig::paper_single_core();
    let in_memory = {
        let mut cache =
            SetAssocCache::new("LLC", config.llc, PolicyKind::Rlr.build(&config.llc, None));
        replay_llc_trace(&mut cache, &trace)
    };
    // Deliberately small blocks so the replay crosses many block
    // boundaries (and the per-block delta restart actually matters).
    let bytes = trace_io::encode_trace(&trace, 512).expect("encode");
    let streamed = {
        let mut reader = TraceReader::new(bytes.as_slice()).expect("valid header");
        let mut cache =
            SetAssocCache::new("LLC", config.llc, PolicyKind::Rlr.build(&config.llc, None));
        replay_llc_reader(&mut cache, &mut reader).expect("valid container")
    };
    assert_eq!(in_memory, streamed, "streaming replay must be statistically identical");
    assert!(in_memory.accesses == RECORDS as u64);
    assert!(in_memory.demand_hits > 0, "mcf replay should see some demand hits");
}

#[test]
fn compression_stays_at_or_under_half_of_raw() {
    let trace = mcf_trace();
    let bytes = trace_io::encode_trace(&trace, trace_io::DEFAULT_BLOCK_LEN).expect("encode");
    let raw = 12 + 18 * trace.len();
    assert!(
        bytes.len() * 2 <= raw,
        "container must be <= 50% of the fixed-width encoding: {} vs {} raw",
        bytes.len(),
        raw
    );
}
