//! Round-trip wall for per-core capture: a multi-core mix captured into
//! one `RLT1` container must carry core ids end-to-end, split cleanly per
//! core, and reassemble into exactly the original stream.

use cache_sim::LlcTrace;
use experiments::runner::capture_mix_llc_trace;
use experiments::Scale;
use trace_io::MappedContainer;

#[test]
fn mix_capture_splits_per_core_and_reassembles_exactly() {
    let trace = capture_mix_llc_trace(&["429.mcf", "470.lbm"], Scale::Small, 20_000)
        .expect("both benchmarks are in the roster");
    assert!(trace.len() >= 10_000, "mix capture produced only {} records", trace.len());
    let cores = trace.cores();
    assert_eq!(cores, vec![0, 1], "both cores reach the shared LLC");

    // Through the container and back (via the mmap open path), then split.
    let dir = std::env::temp_dir().join(format!("rlr-mix-roundtrip-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("mix.rlt");
    trace_io::write_trace_file(&path, &trace, trace_io::DEFAULT_BLOCK_LEN).expect("container writes");
    let mapped = MappedContainer::open(&path).expect("container maps");
    let reread = mapped.reader().unwrap().read_to_trace().expect("container decodes");
    assert_eq!(reread.records(), trace.records(), "container round trip is exact");

    let per_core: Vec<LlcTrace> = cores.iter().map(|&c| reread.filter_core(c)).collect();
    let total: usize = per_core.iter().map(LlcTrace::len).sum();
    assert_eq!(total, trace.len(), "the split partitions the trace");
    for (slice, &core) in per_core.iter().zip(&cores) {
        assert!(!slice.is_empty());
        assert!(slice.records().iter().all(|r| r.core == core), "split leaks another core");
    }

    // Reassemble by stable merge on original order: filter_core preserves
    // order, so walking the full trace and popping from the right slice
    // must consume every slice exactly.
    let mut idx = vec![0usize; cores.len()];
    for r in trace.records() {
        let c = usize::from(r.core);
        assert_eq!(per_core[c].records()[idx[c]], *r);
        idx[c] += 1;
    }
    assert!(idx.iter().zip(&per_core).all(|(&i, t)| i == t.len()));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn mix_capture_is_deterministic() {
    let a = capture_mix_llc_trace(&["429.mcf", "403.gcc"], Scale::Small, 4_000).unwrap();
    let b = capture_mix_llc_trace(&["429.mcf", "403.gcc"], Scale::Small, 4_000).unwrap();
    assert_eq!(a.records(), b.records(), "capture is a pure function of its inputs");
}
