//! The crash-consistency wall: a checkpoint write torn at *every* byte
//! offset must never expose a partial cell, a damaged cell is always a
//! miss (never silently wrong data), an I/O fault mid-sweep never stops
//! the sweep or perturbs its results, the corpus quarantines and
//! re-captures corrupt containers, and `doctor` heals a battered results
//! tree in one pass.

use std::fs;
use std::path::PathBuf;

use cache_sim::{AccessKind, LlcRecord, LlcTrace, RunStats};
use experiments::checkpoint::{
    cell_key, decode_cell, encode_cell, load_cell, store_cell, sweep_orphans, write_atomic,
};
use experiments::fault::{with_io_plan, IoFailPlan};
use experiments::runner::{run_roster_resilient, RunOptions, SweepOptions};
use experiments::{PolicyKind, Scale};
use simrng::prop::{check, Config};
use simrng::{Rng, SimRng};

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rlr_crash_wall_{tag}_{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// Deterministic non-trivial stats, parameterised so property tests can
/// vary every field from plain `u64` draws.
fn stats_from(seeds: &[u64]) -> RunStats {
    let at = |i: usize| seeds.get(i).copied().unwrap_or(i as u64 * 7 + 1);
    let mut stats = RunStats {
        instructions: at(0),
        cycles: at(1),
        memory_reads: at(2),
        memory_writes: at(3),
        dram_row_hits: at(4),
        dram_row_misses: at(5),
        ..RunStats::default()
    };
    for (i, k) in stats.llc.by_kind.iter_mut().enumerate() {
        k.accesses = at(6 + i);
        k.hits = k.accesses / 2;
    }
    stats.llc.evictions = at(10);
    stats.l1d.writebacks_out = at(11);
    stats
}

fn list_scratch_files(dir: &std::path::Path) -> Vec<String> {
    let Ok(entries) = fs::read_dir(dir) else { return Vec::new() };
    entries
        .flatten()
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .filter(|n| n.contains(".tmp."))
        .collect()
}

/// Tearing the checkpoint write at every byte offset: the write fails, no
/// final-name file ever appears, a resumed load is a miss, and the only
/// residue is one scratch file that the orphan sweep removes.
#[test]
fn torn_write_at_every_offset_never_exposes_a_partial_checkpoint() {
    let dir = scratch_dir("torn_offsets");
    let key = cell_key("429.mcf", "rlr", "crash-wall");
    let path = dir.join(key.file_name());
    let stats = stats_from(&[3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8]);
    let encoded = encode_cell(&key, &stats);
    for cut in 0..encoded.len() {
        let plan = IoFailPlan::parse(&format!("torn:{cut}")).expect("valid plan");
        with_io_plan(plan, || {
            write_atomic(&path, encoded.as_bytes())
                .expect_err(&format!("a write torn at byte {cut} must fail"));
        });
        assert!(!path.exists(), "cut {cut}: no final-name file may appear");
        assert!(load_cell(&dir, &key).is_none(), "cut {cut}: a torn cell is a miss");
        assert_eq!(sweep_orphans(&dir), 1, "cut {cut}: exactly one scratch file of residue");
    }
    // A fault *past* the payload never fires: the write goes through.
    let plan = IoFailPlan::parse(&format!("torn:{}", encoded.len())).expect("valid plan");
    with_io_plan(plan, || {
        write_atomic(&path, encoded.as_bytes()).expect("untriggered fault is a clean write");
    });
    assert_eq!(load_cell(&dir, &key), Some(stats));
    assert!(list_scratch_files(&dir).is_empty(), "a successful write leaves no scratch file");
    let _ = fs::remove_dir_all(&dir);
}

/// An `enospc` fault behaves like the torn write: the error surfaces, the
/// final name never appears, and only scratch residue is left behind.
#[test]
fn enospc_write_is_invisible_and_leaves_only_scratch_residue() {
    let dir = scratch_dir("enospc");
    let key = cell_key("470.lbm", "lru", "crash-wall");
    let path = dir.join(key.file_name());
    let encoded = encode_cell(&key, &stats_from(&[42]));
    with_io_plan(IoFailPlan::parse("enospc").expect("valid plan"), || {
        let err = write_atomic(&path, encoded.as_bytes()).expect_err("full disk fails the write");
        assert_eq!(err.kind(), std::io::ErrorKind::StorageFull);
    });
    assert!(!path.exists());
    assert!(load_cell(&dir, &key).is_none());
    assert_eq!(sweep_orphans(&dir), 1);
    let _ = fs::remove_dir_all(&dir);
}

/// A short read of a perfectly good checkpoint is a miss, never a panic
/// or a truncated decode.
#[test]
fn short_read_makes_a_stored_cell_a_miss() {
    let dir = scratch_dir("short_read");
    let key = cell_key("429.mcf", "fifo", "crash-wall");
    let stats = stats_from(&[7, 7, 7]);
    store_cell(&dir, &key, &stats);
    with_io_plan(IoFailPlan::parse("short-read:10").expect("valid plan"), || {
        assert!(load_cell(&dir, &key).is_none(), "a 10-byte read of the cell is a miss");
    });
    assert_eq!(load_cell(&dir, &key), Some(stats), "the cell itself is undamaged");
    let _ = fs::remove_dir_all(&dir);
}

/// Property: a checkpoint cell truncated at *any* byte offset decodes as
/// a miss — for arbitrary stats, including the shrunk prefixes of the
/// seed vector.
#[test]
fn truncated_cell_always_decodes_as_a_miss() {
    check(
        "truncated_cell_always_decodes_as_a_miss",
        Config::with_cases(24),
        |rng: &mut SimRng| (0..12).map(|_| rng.gen_range(0..u64::MAX)).collect::<Vec<u64>>(),
        |seeds: &Vec<u64>| {
            let key = cell_key("429.mcf", "rlr", "truncation-prop");
            let stats = stats_from(seeds);
            let text = encode_cell(&key, &stats);
            if decode_cell(&text, &key).as_ref() != Some(&stats) {
                return Err("the untruncated cell must round-trip".to_owned());
            }
            // The encoding is pure ASCII, so every byte offset is a valid
            // char boundary.
            for cut in 0..text.len() {
                if decode_cell(&text[..cut], &key).is_some() {
                    return Err(format!("prefix of {cut}/{} bytes decoded", text.len()));
                }
            }
            Ok(())
        },
    );
}

/// Flipping any single byte of a stored cell on disk makes the load a
/// miss: the high bit set by the flip can never survive key verification
/// or JSON parsing, so a resumed sweep recomputes rather than trusting
/// damaged data.
#[test]
fn flipped_cell_byte_at_every_offset_is_a_miss() {
    let dir = scratch_dir("flip_offsets");
    let key = cell_key("429.mcf", "ship++", "crash-wall");
    let stats = stats_from(&[11, 22, 33]);
    store_cell(&dir, &key, &stats);
    let path = dir.join(key.file_name());
    let pristine = fs::read(&path).expect("stored cell");
    for pos in 0..pristine.len() {
        let mut bytes = pristine.clone();
        bytes[pos] ^= experiments::fault::FLIP_MASK;
        fs::write(&path, &bytes).expect("plant corruption");
        assert!(
            load_cell(&dir, &key).is_none(),
            "flip at byte {pos} must be a miss, not silently-wrong stats"
        );
    }
    fs::write(&path, &pristine).expect("restore");
    assert_eq!(load_cell(&dir, &key), Some(stats));
    let _ = fs::remove_dir_all(&dir);
}

/// I/O faults mid-sweep — a torn checkpoint store, then a full disk — are
/// benign: the sweep completes with results identical to a fault-free
/// run, the failed store leaves one scratch orphan plus a gap that resume
/// recomputes, and the resumed run (which also reaps the orphan) is
/// byte-identical to the clean baseline.
#[test]
fn faulted_checkpoint_stores_never_perturb_a_sweep_or_its_resume() {
    let benchmarks = ["429.mcf"];
    let policies = [PolicyKind::Lru, PolicyKind::Fifo];
    let clean = run_roster_resilient(&benchmarks, &policies, Scale::Small, &SweepOptions::none())
        .expect("clean run");
    for plan in ["torn:16", "enospc"] {
        let dir = scratch_dir(&format!("sweep_{}", plan.split(':').next().expect("tag")));
        let opts = SweepOptions {
            // jobs = 1 keeps the sweep on this thread, where the scoped
            // I/O plan is installed (it deliberately does not leak into
            // pool workers).
            jobs: Some(1),
            run: RunOptions::none(),
            cache_dir: Some(dir.clone()),
        };
        let faulted = with_io_plan(IoFailPlan::parse(plan).expect("valid plan"), || {
            run_roster_resilient(&benchmarks, &policies, Scale::Small, &opts)
        })
        .expect("a failed checkpoint store must not fail the sweep");
        assert_eq!(faulted, clean, "plan {plan}: results are computed, not read from disk");
        assert_eq!(
            list_scratch_files(&dir).len(),
            1,
            "plan {plan}: the first store's crash residue is one scratch file"
        );
        let resumed = run_roster_resilient(&benchmarks, &policies, Scale::Small, &opts)
            .expect("resumed run");
        assert_eq!(resumed, clean, "plan {plan}: resume is identical to the clean run");
        assert!(
            list_scratch_files(&dir).is_empty(),
            "plan {plan}: opening the checkpoint dir reaps the orphan"
        );
        let _ = fs::remove_dir_all(&dir);
    }
}

/// A corrupt corpus container never fails a sweep: it is quarantined
/// (evidence preserved), logged, and re-captured — and the re-capture
/// reproduces the original trace exactly.
#[test]
fn corrupt_corpus_container_is_quarantined_and_recaptured() {
    let dir = scratch_dir("corpus");
    let first = experiments::corpus::load_or_capture_in(&dir, "429.mcf", Scale::Small, false)
        .expect("initial capture");
    let container: Vec<PathBuf> = fs::read_dir(&dir)
        .expect("corpus dir")
        .flatten()
        .map(|e| e.path())
        .filter(|p| p.extension().and_then(|e| e.to_str()) == Some("rlt"))
        .collect();
    assert_eq!(container.len(), 1, "capture published exactly one container");
    let path = &container[0];
    let mut bytes = fs::read(path).expect("container bytes");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xFF;
    fs::write(path, &bytes).expect("plant corruption");
    let second = experiments::corpus::load_or_capture_in(&dir, "429.mcf", Scale::Small, false)
        .expect("recovery capture");
    assert_eq!(second.records(), first.records(), "re-capture reproduces the trace exactly");
    let quarantined = dir.join("quarantine").join(path.file_name().expect("name"));
    assert_eq!(
        fs::read(&quarantined).expect("quarantined evidence"),
        bytes,
        "the damaged bytes are preserved verbatim in quarantine"
    );
    let republished = fs::read(path).expect("republished container");
    trace_io::scan(republished.as_slice()).expect("the fresh container verifies");
    let _ = fs::remove_dir_all(&dir);
}

/// The tenancy sweep's cells sit behind the same wall: a torn write
/// never exposes a partial cell, every truncation of a stored cell is a
/// miss, and `doctor` quarantines a torn cell out of `cache/tenancy/`.
#[test]
fn torn_tenancy_cell_is_a_miss_and_doctor_quarantines_it() {
    use experiments::tenancy::{
        decode_tenancy_cell, default_llc, encode_tenancy_cell, load_tenancy_cell,
        store_tenancy_cell, tenancy_cell_key, TenantCellStats,
    };

    let root = scratch_dir("tenancy_cell");
    let dir = root.join("cache").join("tenancy");
    let mix = workloads::TenantMix::default_three_class();
    let mode = tenancy::IsolationMode::LearnedPriority(vec![4, 1, 0]);
    let key = tenancy_cell_key(&mix, &mode, &default_llc(), 9_000);
    let stats: Vec<TenantCellStats> = (0..3)
        .map(|t| TenantCellStats {
            accesses: 1_000 + t,
            hits: 500,
            demand_accesses: 900,
            demand_hits: 400,
            occupancy: 10 + t,
            peak_occupancy: 20,
            miss_count: 500,
            miss_ticks: 90_000,
            lat_p50: 180,
            lat_p99: 400,
        })
        .collect();
    let encoded = encode_tenancy_cell(&key, &stats);

    // Torn mid-write: the write fails, no final-name file appears, the
    // resume is a miss, and the only residue is one scratch file.
    for cut in [0, 1, encoded.len() / 2, encoded.len() - 1] {
        let plan = IoFailPlan::parse(&format!("torn:{cut}")).expect("valid plan");
        with_io_plan(plan, || {
            write_atomic(&dir.join(key.file_name()), encoded.as_bytes())
                .expect_err("a torn write must fail");
        });
        assert!(!dir.join(key.file_name()).exists(), "cut {cut}: no final-name file");
        assert!(load_tenancy_cell(&dir, &key).is_none(), "cut {cut}: a torn cell is a miss");
        assert_eq!(sweep_orphans(&dir), 1, "cut {cut}: one scratch file of residue");
    }

    // Every truncation of the encoded cell decodes as a miss.
    store_tenancy_cell(&dir, &key, &stats);
    for cut in 0..encoded.len() {
        assert!(decode_tenancy_cell(&encoded[..cut], &key).is_none(), "cut {cut}");
    }
    assert_eq!(load_tenancy_cell(&dir, &key), Some(stats));

    // A torn sibling planted on disk: one doctor pass quarantines it and
    // leaves the valid cell in place.
    fs::write(dir.join("00000000deadbeef.json"), &encoded.as_bytes()[..encoded.len() / 2])
        .expect("plant torn cell");
    experiments::doctor::run(&root, true);
    assert!(dir.join(key.file_name()).exists(), "valid cell untouched");
    assert!(!dir.join("00000000deadbeef.json").exists());
    assert!(dir.join("quarantine").join("00000000deadbeef.json").exists(), "evidence kept");
    assert!(experiments::doctor::run(&root, true).all_clean());
    let _ = fs::remove_dir_all(&root);
}

fn sample_records(n: u64) -> Vec<LlcRecord> {
    (0..n)
        .map(|i| LlcRecord {
            pc: 0x400_000 + (i % 91) * 4,
            line: 0x8000 + (i * 13) % 777,
            kind: AccessKind::ALL[(i % 4) as usize],
            core: 0,
        })
        .collect()
}

/// End-to-end doctor pass over a battered results tree: every artifact
/// family damaged at once, one `run(root, true)` heals all of it, and a
/// second pass finds a clean tree.
#[test]
fn doctor_heals_a_battered_results_tree_in_one_pass() {
    use experiments::doctor::{self, ArtifactStatus};
    let root = scratch_dir("doctor");
    // Checkpoint cells: one valid, one garbage, one orphan.
    let sweep = root.join("cache").join("sweep");
    let key = cell_key("429.mcf", "lru", "doctor-wall");
    store_cell(&sweep, &key, &stats_from(&[1, 2, 3]));
    fs::write(sweep.join("00000000deadbeef.json"), b"{torn").expect("garbage cell");
    fs::write(sweep.join(".z.json.tmp.41"), b"").expect("orphan");
    // Corpus: one valid container, one with a flipped byte near the end
    // (all blocks salvageable), one that is not a container at all.
    let corpus = root.join("corpus");
    let records = sample_records(500);
    let trace: LlcTrace = records.iter().cloned().collect();
    let encoded = trace_io::encode_trace(&trace, 64).expect("encode");
    write_atomic(&corpus.join("good_small.rlt"), &encoded).expect("good container");
    let mut damaged = encoded.clone();
    let n = damaged.len();
    damaged[n - 5] ^= 0xA5; // inside the end frame: framing intact, digest broken
    write_atomic(&corpus.join("bad_small.rlt"), &damaged).expect("damaged container");
    write_atomic(&corpus.join("junk_small.rlt"), b"not a container").expect("junk");
    // Bench: one valid snapshot, a history file with one rotten line.
    let bench = root.join("bench");
    write_atomic(&bench.join("snap.json"), b"{\"ipc\":1}").expect("snapshot");
    write_atomic(&bench.join("history.jsonl"), b"{\"a\":1}\nROT\n{\"b\":2}\n").expect("history");

    let report = doctor::run(&root, true);
    let count = |status: ArtifactStatus| {
        report.artifacts.iter().filter(|a| a.status == status).count()
    };
    assert_eq!(count(ArtifactStatus::Ok), 3, "valid cell, container, and snapshot: {report:?}");
    assert_eq!(count(ArtifactStatus::Repaired), 2, "damaged container and history: {report:?}");
    assert_eq!(count(ArtifactStatus::Quarantined), 2, "garbage cell and junk rlt: {report:?}");
    assert_eq!(count(ArtifactStatus::Damaged), 0, "{report:?}");
    assert_eq!(report.orphans_removed, 1);

    // The repaired container verifies and holds every original record
    // (only the end frame was damaged).
    let repaired = fs::read(corpus.join("bad_small.rlt")).expect("repaired container");
    let summary = trace_io::scan(repaired.as_slice()).expect("repaired container verifies");
    assert_eq!(summary.records, records.len() as u64);
    // Evidence for everything that was moved aside.
    assert!(corpus.join("quarantine").join("bad_small.rlt").exists());
    assert!(corpus.join("quarantine").join("junk_small.rlt").exists());
    assert!(sweep.join("quarantine").join("00000000deadbeef.json").exists());
    assert!(bench.join("quarantine").join("history.jsonl").exists());
    assert_eq!(
        fs::read_to_string(bench.join("history.jsonl")).expect("rewritten history"),
        "{\"a\":1}\n{\"b\":2}\n"
    );
    // Idempotence: the healed tree is clean.
    assert!(doctor::run(&root, true).all_clean(), "second pass finds nothing to do");
    let _ = fs::remove_dir_all(&root);
}
