//! The object-cache sweep determinism wall: the roster sweep is a pure
//! function of (traffic, config, policies) — worker count, checkpoint
//! resume, injected crashes, and torn checkpoint stores must never change
//! a single counter. Extends the LLC walls (`parallel_determinism.rs`,
//! `crash_wall.rs`) to the serving tier.

use std::fs;
use std::path::PathBuf;

use experiments::fault::{with_io_plan, FailPlan, IoFailPlan};
use experiments::objects::{
    decode_obj_cell, encode_obj_cell, load_obj_cell, obj_cell_key, run_object_sweep,
    store_obj_cell, ObjCellResult,
};
use experiments::runner::{RunOptions, SweepOptions};
use objcache::{ObjCacheConfig, ObjPolicyKind};
use workloads::ObjectTraffic;

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rlr_objcache_det_{tag}_{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// A small but non-trivial scenario: tight capacity plus short TTLs so
/// every counter (evictions, expirations, rejections) is exercised.
fn scenario() -> (ObjectTraffic, ObjCacheConfig, u64) {
    let traffic = ObjectTraffic {
        catalog: 3_000,
        // 6k requests at 300 rps span 20 simulated seconds against 1-10s
        // TTLs, so lazy expiry fires alongside capacity evictions.
        rps: 300,
        min_ttl_s: 1,
        max_ttl_s: 10,
        flash_every: 1_500,
        flash_len: 300,
        ..ObjectTraffic::internet_default()
    };
    (traffic, ObjCacheConfig::with_capacity_mib(8), 6_000)
}

fn stats_of(results: &[(ObjPolicyKind, ObjCellResult)]) -> Vec<objcache::ObjStats> {
    results.iter().map(|(p, c)| *c.as_ref().unwrap_or_else(|e| panic!("{}: {e}", p.name()))).collect()
}

/// Serial and 4-worker sweeps are bit-identical, in roster order. This is
/// the `RLR_JOBS=4` contract without mutating process-global env: an
/// explicit job count takes the same code path `resolve_jobs` routes the
/// env var through.
#[test]
fn parallel_object_sweep_is_bit_identical_to_serial() {
    let (traffic, cfg, n) = scenario();
    let roster = ObjPolicyKind::roster();
    let sweep = |jobs| {
        let opts = SweepOptions { jobs: Some(jobs), run: RunOptions::none(), cache_dir: None };
        run_object_sweep(&traffic, n, cfg, &roster, &opts)
    };
    let serial = sweep(1);
    let parallel = sweep(4);
    assert_eq!(stats_of(&serial), stats_of(&parallel));
    let order: Vec<String> = serial.iter().map(|(p, _)| p.name().to_owned()).collect();
    assert_eq!(order, vec!["LRU", "SLRU", "GDSF", "RLR-derived"]);
    // The replay did real work on this scenario.
    for s in stats_of(&serial) {
        assert!(s.evictions > 0 && s.expirations > 0, "scenario exerts no pressure: {s:?}");
    }
}

/// A sweep killed mid-run (one cell crashes, the rest checkpoint) and then
/// resumed through the checkpoint seam is bit-identical to an
/// uninterrupted serial sweep — and the resume really does load the
/// surviving cells instead of recomputing them.
#[test]
fn killed_then_resumed_sweep_is_bit_identical() {
    let (traffic, cfg, n) = scenario();
    let roster = ObjPolicyKind::roster();
    let clean = run_object_sweep(&traffic, n, cfg, &roster, &SweepOptions::none());

    let dir = scratch_dir("resume");
    // "Kill" the GDSF cell: an injected panic with zero retries leaves its
    // slot failed and its checkpoint missing, exactly like a crashed
    // worker; the other three cells complete and persist.
    let killed_opts = SweepOptions {
        jobs: Some(1),
        run: RunOptions {
            fail_plan: FailPlan::parse("panic:2").expect("valid plan"),
            ..RunOptions::none()
        },
        cache_dir: Some(dir.clone()),
    };
    let killed = run_object_sweep(&traffic, n, cfg, &roster, &killed_opts);
    assert!(killed[2].1.is_err(), "the injected crash must surface in the GDSF slot");
    assert_eq!(
        killed.iter().filter(|(_, c)| c.is_ok()).count(),
        roster.len() - 1,
        "every other cell completes"
    );
    for (i, (policy, _)) in killed.iter().enumerate() {
        let key = obj_cell_key(&traffic, n, &cfg, policy);
        assert_eq!(
            load_obj_cell(&dir, &key).is_some(),
            i != 2,
            "{}: exactly the surviving cells are checkpointed",
            policy.name()
        );
    }

    // Resume: tamper-evident marker cells prove cached results are loaded,
    // not recomputed — then a second pristine resume must equal the clean
    // baseline bit for bit.
    let resume_opts =
        SweepOptions { jobs: Some(1), run: RunOptions::none(), cache_dir: Some(dir.clone()) };
    let marker_key = obj_cell_key(&traffic, n, &cfg, &roster[0]);
    let mut marker = *killed[0].1.as_ref().expect("LRU survived");
    marker.hits += 1_000_000;
    store_obj_cell(&dir, &marker_key, &marker);
    let resumed = run_object_sweep(&traffic, n, cfg, &roster, &resume_opts);
    assert_eq!(
        resumed[0].1.as_ref().expect("loaded"),
        &marker,
        "a checkpointed cell must be loaded, not recomputed"
    );
    store_obj_cell(&dir, &marker_key, killed[0].1.as_ref().expect("LRU survived"));
    let resumed = run_object_sweep(&traffic, n, cfg, &roster, &resume_opts);
    assert_eq!(stats_of(&resumed), stats_of(&clean), "resume is bit-identical to a clean sweep");
    let _ = fs::remove_dir_all(&dir);
}

/// A torn checkpoint store mid-sweep neither perturbs the results nor
/// poisons the resume: the sweep computes everything, leaves only scratch
/// residue for the gap, and the next run over the same directory is again
/// bit-identical.
#[test]
fn torn_checkpoint_store_never_perturbs_sweep_or_resume() {
    let (traffic, cfg, n) = scenario();
    let roster = ObjPolicyKind::roster();
    let clean = run_object_sweep(&traffic, n, cfg, &roster, &SweepOptions::none());
    let dir = scratch_dir("torn");
    let opts = SweepOptions {
        // jobs = 1 keeps the sweep on this thread, where the scoped I/O
        // plan is installed (it deliberately does not leak into workers).
        jobs: Some(1),
        run: RunOptions::none(),
        cache_dir: Some(dir.clone()),
    };
    let faulted = with_io_plan(IoFailPlan::parse("torn:16").expect("valid plan"), || {
        run_object_sweep(&traffic, n, cfg, &roster, &opts)
    });
    assert_eq!(stats_of(&faulted), stats_of(&clean), "results are computed, not read from disk");
    let resumed = run_object_sweep(&traffic, n, cfg, &roster, &opts);
    assert_eq!(stats_of(&resumed), stats_of(&clean), "resume over the torn store is identical");
    let _ = fs::remove_dir_all(&dir);
}

/// The codec layer refuses corrupted or mismatched cells at every byte
/// offset — a damaged object-cache checkpoint is always a miss, never
/// silently-wrong counters.
#[test]
fn flipped_obj_cell_byte_at_every_offset_is_a_miss() {
    let (traffic, cfg, n) = scenario();
    let policy = ObjPolicyKind::parse("rlr").expect("pinned rule");
    let key = obj_cell_key(&traffic, n, &cfg, &policy);
    let stats = objcache::ObjStats {
        requests: n,
        hits: 123,
        misses: n - 123,
        hit_bytes: 456_789,
        miss_bytes: 987_654,
        admitted: 4_000,
        rejected: 1_877,
        evictions: 3_210,
        evicted_bytes: 9_999_999,
        expirations: 55,
        expired_bytes: 321,
    };
    let dir = scratch_dir("flip");
    store_obj_cell(&dir, &key, &stats);
    let path = dir.join(key.file_name());
    let pristine = fs::read(&path).expect("stored cell");
    assert_eq!(decode_obj_cell(&String::from_utf8(pristine.clone()).expect("utf8"), &key), Some(stats));
    for pos in 0..pristine.len() {
        let mut bytes = pristine.clone();
        bytes[pos] ^= experiments::fault::FLIP_MASK;
        fs::write(&path, &bytes).expect("plant corruption");
        assert!(
            load_obj_cell(&dir, &key).is_none(),
            "flip at byte {pos} must be a miss, not silently-wrong stats"
        );
    }
    // A different scenario's key never accepts this cell either.
    let other = obj_cell_key(&traffic, n + 1, &cfg, &policy);
    assert!(decode_obj_cell(&encode_obj_cell(&key, &stats), &other).is_none());
    let _ = fs::remove_dir_all(&dir);
}
