//! Golden smoke test for the trace-capture pipeline: a fixed seed and
//! scale must reproduce the exact same LLC trace, record for record.
//!
//! These constants were pinned from two independent release-mode runs; a
//! mismatch means the simulator, the workload generator, or the PRNG
//! changed behaviour (any of which invalidates stored traces and trained
//! agents).

use cache_sim::AccessKind;
use experiments::runner::capture_llc_trace;
use experiments::Scale;

#[test]
fn capture_is_golden_for_mcf_small() {
    let wl = workloads::spec2006("429.mcf").expect("known benchmark");
    let trace = capture_llc_trace(&wl, Scale::Small, 5_000).expect("capture succeeds");

    assert_eq!(trace.len(), 5_000, "record count drifted");

    let first = &trace.records()[0];
    assert_eq!(first.pc, 0x40_0000);
    assert_eq!(first.line, 0x402_bb9c);
    assert_eq!(first.kind, AccessKind::Load);
    assert_eq!(first.core, 0);

    let last = &trace.records()[trace.len() - 1];
    assert_eq!(last.pc, 0x40_0000);
    assert_eq!(last.line, 0x404_7662);
    assert_eq!(last.kind, AccessKind::Prefetch);
    assert_eq!(last.core, 0);
}
