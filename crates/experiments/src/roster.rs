//! The policy roster: every replacement policy the paper evaluates,
//! constructible by name.

use cache_sim::{
    Access, CacheConfig, Decision, LineSnapshot, LlcTrace, RandomLite, ReplacementPolicy, TrueLru,
};
use policies::{
    Belady, Brrip, CounterBased, Drrip, Eva, Fifo, Glider, Hawkeye, KpcR, Mpppb, Pdp, Ship,
    ShipPp, Srrip,
};
use rlr::RlrPolicy;

/// Every LLC replacement policy as one concrete enum, so the simulator's
/// hot path dispatches policy callbacks with a jump table (or better, after
/// inlining) instead of a virtual call through `Box<dyn ReplacementPolicy>`.
///
/// This type lives here — not in `cache-sim` — because it must name every
/// concrete policy type, and the policy crates depend on `cache-sim`.
/// [`PolicyKind::build`] constructs it; `SetAssocCache<LlcPolicy>` (via
/// `SingleCoreSystem::new(&config, kind.build(..))`) monomorphizes the
/// cache over it. The `ReplacementPolicy` trait remains the construction
/// boundary: anything that implements it still works boxed through the
/// cache's default `Box<dyn ReplacementPolicy>` parameter.
#[derive(Debug)]
pub enum LlcPolicy {
    /// True LRU.
    Lru(TrueLru),
    /// FIFO.
    Fifo(Fifo),
    /// Pseudo-random.
    Random(RandomLite),
    /// Static RRIP.
    Srrip(Srrip),
    /// Bimodal RRIP.
    Brrip(Brrip),
    /// Dynamic RRIP.
    Drrip(Drrip),
    /// KPC-R.
    KpcR(KpcR),
    /// SHiP.
    Ship(Ship),
    /// SHiP++.
    ShipPp(ShipPp),
    /// Hawkeye.
    Hawkeye(Hawkeye),
    /// Glider.
    Glider(Glider),
    /// MPPPB.
    Mpppb(Box<Mpppb>),
    /// Counter-based AIP.
    CounterBased(CounterBased),
    /// PDP.
    Pdp(Pdp),
    /// EVA.
    Eva(Eva),
    /// RLR in any of its variants (optimized / unoptimized / multicore —
    /// all are configurations of [`RlrPolicy`]).
    Rlr(RlrPolicy),
    /// Belady's offline optimal.
    Belady(Box<Belady>),
}

/// Forwards one trait method to whichever policy the enum holds.
macro_rules! dispatch {
    ($self:expr, $p:pat => $body:expr) => {
        match $self {
            LlcPolicy::Lru($p) => $body,
            LlcPolicy::Fifo($p) => $body,
            LlcPolicy::Random($p) => $body,
            LlcPolicy::Srrip($p) => $body,
            LlcPolicy::Brrip($p) => $body,
            LlcPolicy::Drrip($p) => $body,
            LlcPolicy::KpcR($p) => $body,
            LlcPolicy::Ship($p) => $body,
            LlcPolicy::ShipPp($p) => $body,
            LlcPolicy::Hawkeye($p) => $body,
            LlcPolicy::Glider($p) => $body,
            LlcPolicy::Mpppb($p) => $body,
            LlcPolicy::CounterBased($p) => $body,
            LlcPolicy::Pdp($p) => $body,
            LlcPolicy::Eva($p) => $body,
            LlcPolicy::Rlr($p) => $body,
            LlcPolicy::Belady($p) => $body,
        }
    };
}

impl ReplacementPolicy for LlcPolicy {
    fn name(&self) -> String {
        dispatch!(self, p => p.name())
    }

    fn on_miss(&mut self, set: u32, access: &Access) {
        dispatch!(self, p => p.on_miss(set, access));
    }

    fn select_victim(&mut self, set: u32, lines: &[LineSnapshot], access: &Access) -> Decision {
        dispatch!(self, p => p.select_victim(set, lines, access))
    }

    fn on_hit(&mut self, set: u32, way: u16, access: &Access) {
        dispatch!(self, p => p.on_hit(set, way, access));
    }

    fn on_fill(&mut self, set: u32, way: u16, access: &Access) {
        dispatch!(self, p => p.on_fill(set, way, access));
    }

    fn overhead_bits(&self, config: &CacheConfig) -> u64 {
        dispatch!(self, p => p.overhead_bits(config))
    }

    fn uses_line_snapshots(&self) -> bool {
        dispatch!(self, p => p.uses_line_snapshots())
    }
}

/// A replacement policy selectable by the harness.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PolicyKind {
    /// True LRU (the baseline all speedups are relative to).
    Lru,
    /// First-in first-out.
    Fifo,
    /// Pseudo-random.
    Random,
    /// Static RRIP.
    Srrip,
    /// Bimodal RRIP.
    Brrip,
    /// Dynamic RRIP (set dueling).
    Drrip,
    /// KPC-R (non-PC adaptive insertion).
    KpcR,
    /// SHiP (PC-based).
    Ship,
    /// SHiP++ (PC-based).
    ShipPp,
    /// Hawkeye (PC-based, OPTgen).
    Hawkeye,
    /// Glider (PC-based, integer SVM over PC history).
    Glider,
    /// MPPPB (PC-based, multiperspective perceptron).
    Mpppb,
    /// Counter-based AIP (PC-indexed interval prediction).
    CounterBased,
    /// Protecting Distance based Policy.
    Pdp,
    /// Economic Value Added.
    Eva,
    /// RLR, optimized hardware variant (the paper's contribution).
    Rlr,
    /// RLR without the §IV-C overhead optimizations.
    RlrUnopt,
    /// RLR with the §IV-D multicore extension (4 cores).
    RlrMulticore,
    /// Belady's optimal (needs a captured trace).
    Belady,
}

impl PolicyKind {
    /// The policies of the paper's single-core comparison (Figs. 10–12),
    /// excluding the LRU baseline.
    pub const SINGLE_CORE: [PolicyKind; 7] = [
        PolicyKind::Drrip,
        PolicyKind::KpcR,
        PolicyKind::Ship,
        PolicyKind::Rlr,
        PolicyKind::RlrUnopt,
        PolicyKind::Hawkeye,
        PolicyKind::ShipPp,
    ];

    /// The policies of the 4-core comparison (Fig. 13), excluding LRU;
    /// RLR runs with its multicore extension.
    pub const MULTI_CORE: [PolicyKind; 6] = [
        PolicyKind::Drrip,
        PolicyKind::KpcR,
        PolicyKind::Ship,
        PolicyKind::RlrMulticore,
        PolicyKind::Hawkeye,
        PolicyKind::ShipPp,
    ];

    /// Every implementable policy (excludes Belady's oracle).
    pub const ALL_ONLINE: [PolicyKind; 18] = [
        PolicyKind::Lru,
        PolicyKind::Fifo,
        PolicyKind::Random,
        PolicyKind::Srrip,
        PolicyKind::Brrip,
        PolicyKind::Drrip,
        PolicyKind::KpcR,
        PolicyKind::Ship,
        PolicyKind::ShipPp,
        PolicyKind::Hawkeye,
        PolicyKind::Glider,
        PolicyKind::Mpppb,
        PolicyKind::CounterBased,
        PolicyKind::Pdp,
        PolicyKind::Eva,
        PolicyKind::Rlr,
        PolicyKind::RlrUnopt,
        PolicyKind::RlrMulticore,
    ];

    /// Display name matching the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            PolicyKind::Lru => "LRU",
            PolicyKind::Fifo => "FIFO",
            PolicyKind::Random => "Random",
            PolicyKind::Srrip => "SRRIP",
            PolicyKind::Brrip => "BRRIP",
            PolicyKind::Drrip => "DRRIP",
            PolicyKind::KpcR => "KPC-R",
            PolicyKind::Ship => "SHiP",
            PolicyKind::ShipPp => "SHiP++",
            PolicyKind::Hawkeye => "Hawkeye",
            PolicyKind::Glider => "Glider",
            PolicyKind::Mpppb => "MPPPB",
            PolicyKind::CounterBased => "Counter(AIP)",
            PolicyKind::Pdp => "PDP",
            PolicyKind::Eva => "EVA",
            PolicyKind::Rlr => "RLR",
            PolicyKind::RlrUnopt => "RLR(unopt)",
            PolicyKind::RlrMulticore => "RLR",
            PolicyKind::Belady => "Belady",
        }
    }

    /// Whether the policy requires PC information at the LLC (Table I's
    /// "Uses PC" column).
    pub fn uses_pc(self) -> bool {
        matches!(
            self,
            PolicyKind::Ship
                | PolicyKind::ShipPp
                | PolicyKind::Hawkeye
                | PolicyKind::Glider
                | PolicyKind::Mpppb
                | PolicyKind::CounterBased
        )
    }

    /// Builds the policy for a cache geometry. `trace` is required only for
    /// [`PolicyKind::Belady`].
    ///
    /// # Panics
    ///
    /// Panics if Belady is requested without a trace.
    pub fn build(self, config: &CacheConfig, trace: Option<&LlcTrace>) -> LlcPolicy {
        match self {
            PolicyKind::Lru => LlcPolicy::Lru(TrueLru::new(config)),
            PolicyKind::Fifo => LlcPolicy::Fifo(Fifo::new(config)),
            PolicyKind::Random => LlcPolicy::Random(RandomLite::new(config)),
            PolicyKind::Srrip => LlcPolicy::Srrip(Srrip::new(config)),
            PolicyKind::Brrip => LlcPolicy::Brrip(Brrip::new(config)),
            PolicyKind::Drrip => LlcPolicy::Drrip(Drrip::new(config)),
            PolicyKind::KpcR => LlcPolicy::KpcR(KpcR::new(config)),
            PolicyKind::Ship => LlcPolicy::Ship(Ship::new(config)),
            PolicyKind::ShipPp => LlcPolicy::ShipPp(ShipPp::new(config)),
            PolicyKind::Hawkeye => LlcPolicy::Hawkeye(Hawkeye::new(config)),
            PolicyKind::Glider => LlcPolicy::Glider(Glider::new(config)),
            PolicyKind::Mpppb => LlcPolicy::Mpppb(Box::new(Mpppb::new(config))),
            PolicyKind::CounterBased => LlcPolicy::CounterBased(CounterBased::new(config)),
            PolicyKind::Pdp => LlcPolicy::Pdp(Pdp::new(config)),
            PolicyKind::Eva => LlcPolicy::Eva(Eva::new(config)),
            PolicyKind::Rlr => LlcPolicy::Rlr(RlrPolicy::optimized(config)),
            PolicyKind::RlrUnopt => LlcPolicy::Rlr(RlrPolicy::unoptimized(config)),
            PolicyKind::RlrMulticore => LlcPolicy::Rlr(RlrPolicy::multicore(4, config)),
            PolicyKind::Belady => LlcPolicy::Belady(Box::new(Belady::from_trace(
                trace.expect("Belady needs a captured LLC trace"),
                config,
            ))),
        }
    }
}

impl std::fmt::Display for PolicyKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_online_policy_builds() {
        let cfg = CacheConfig { sets: 64, ways: 8, latency: 1 };
        for kind in PolicyKind::ALL_ONLINE {
            let p = kind.build(&cfg, None);
            assert!(!p.name().is_empty());
        }
    }

    #[test]
    fn pc_flags_match_table_i() {
        assert!(!PolicyKind::Lru.uses_pc());
        assert!(!PolicyKind::Drrip.uses_pc());
        assert!(!PolicyKind::KpcR.uses_pc());
        assert!(!PolicyKind::Rlr.uses_pc());
        assert!(PolicyKind::Ship.uses_pc());
        assert!(PolicyKind::ShipPp.uses_pc());
        assert!(PolicyKind::Hawkeye.uses_pc());
    }

    #[test]
    #[should_panic(expected = "captured LLC trace")]
    fn belady_without_trace_panics() {
        let cfg = CacheConfig { sets: 4, ways: 2, latency: 1 };
        let _ = PolicyKind::Belady.build(&cfg, None);
    }
}
