//! The policy roster: every replacement policy the paper evaluates,
//! constructible by name.

use cache_sim::{CacheConfig, LlcTrace, RandomLite, ReplacementPolicy, TrueLru};
use policies::{
    Belady, Brrip, CounterBased, Drrip, Eva, Fifo, Glider, Hawkeye, KpcR, Mpppb, Pdp, Ship,
    ShipPp, Srrip,
};
use rlr::RlrPolicy;

/// A replacement policy selectable by the harness.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PolicyKind {
    /// True LRU (the baseline all speedups are relative to).
    Lru,
    /// First-in first-out.
    Fifo,
    /// Pseudo-random.
    Random,
    /// Static RRIP.
    Srrip,
    /// Bimodal RRIP.
    Brrip,
    /// Dynamic RRIP (set dueling).
    Drrip,
    /// KPC-R (non-PC adaptive insertion).
    KpcR,
    /// SHiP (PC-based).
    Ship,
    /// SHiP++ (PC-based).
    ShipPp,
    /// Hawkeye (PC-based, OPTgen).
    Hawkeye,
    /// Glider (PC-based, integer SVM over PC history).
    Glider,
    /// MPPPB (PC-based, multiperspective perceptron).
    Mpppb,
    /// Counter-based AIP (PC-indexed interval prediction).
    CounterBased,
    /// Protecting Distance based Policy.
    Pdp,
    /// Economic Value Added.
    Eva,
    /// RLR, optimized hardware variant (the paper's contribution).
    Rlr,
    /// RLR without the §IV-C overhead optimizations.
    RlrUnopt,
    /// RLR with the §IV-D multicore extension (4 cores).
    RlrMulticore,
    /// Belady's optimal (needs a captured trace).
    Belady,
}

impl PolicyKind {
    /// The policies of the paper's single-core comparison (Figs. 10–12),
    /// excluding the LRU baseline.
    pub const SINGLE_CORE: [PolicyKind; 7] = [
        PolicyKind::Drrip,
        PolicyKind::KpcR,
        PolicyKind::Ship,
        PolicyKind::Rlr,
        PolicyKind::RlrUnopt,
        PolicyKind::Hawkeye,
        PolicyKind::ShipPp,
    ];

    /// The policies of the 4-core comparison (Fig. 13), excluding LRU;
    /// RLR runs with its multicore extension.
    pub const MULTI_CORE: [PolicyKind; 6] = [
        PolicyKind::Drrip,
        PolicyKind::KpcR,
        PolicyKind::Ship,
        PolicyKind::RlrMulticore,
        PolicyKind::Hawkeye,
        PolicyKind::ShipPp,
    ];

    /// Every implementable policy (excludes Belady's oracle).
    pub const ALL_ONLINE: [PolicyKind; 18] = [
        PolicyKind::Lru,
        PolicyKind::Fifo,
        PolicyKind::Random,
        PolicyKind::Srrip,
        PolicyKind::Brrip,
        PolicyKind::Drrip,
        PolicyKind::KpcR,
        PolicyKind::Ship,
        PolicyKind::ShipPp,
        PolicyKind::Hawkeye,
        PolicyKind::Glider,
        PolicyKind::Mpppb,
        PolicyKind::CounterBased,
        PolicyKind::Pdp,
        PolicyKind::Eva,
        PolicyKind::Rlr,
        PolicyKind::RlrUnopt,
        PolicyKind::RlrMulticore,
    ];

    /// Display name matching the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            PolicyKind::Lru => "LRU",
            PolicyKind::Fifo => "FIFO",
            PolicyKind::Random => "Random",
            PolicyKind::Srrip => "SRRIP",
            PolicyKind::Brrip => "BRRIP",
            PolicyKind::Drrip => "DRRIP",
            PolicyKind::KpcR => "KPC-R",
            PolicyKind::Ship => "SHiP",
            PolicyKind::ShipPp => "SHiP++",
            PolicyKind::Hawkeye => "Hawkeye",
            PolicyKind::Glider => "Glider",
            PolicyKind::Mpppb => "MPPPB",
            PolicyKind::CounterBased => "Counter(AIP)",
            PolicyKind::Pdp => "PDP",
            PolicyKind::Eva => "EVA",
            PolicyKind::Rlr => "RLR",
            PolicyKind::RlrUnopt => "RLR(unopt)",
            PolicyKind::RlrMulticore => "RLR",
            PolicyKind::Belady => "Belady",
        }
    }

    /// Whether the policy requires PC information at the LLC (Table I's
    /// "Uses PC" column).
    pub fn uses_pc(self) -> bool {
        matches!(
            self,
            PolicyKind::Ship
                | PolicyKind::ShipPp
                | PolicyKind::Hawkeye
                | PolicyKind::Glider
                | PolicyKind::Mpppb
                | PolicyKind::CounterBased
        )
    }

    /// Builds the policy for a cache geometry. `trace` is required only for
    /// [`PolicyKind::Belady`].
    ///
    /// # Panics
    ///
    /// Panics if Belady is requested without a trace.
    pub fn build(self, config: &CacheConfig, trace: Option<&LlcTrace>) -> Box<dyn ReplacementPolicy> {
        match self {
            PolicyKind::Lru => Box::new(TrueLru::new(config)),
            PolicyKind::Fifo => Box::new(Fifo::new(config)),
            PolicyKind::Random => Box::new(RandomLite::new(config)),
            PolicyKind::Srrip => Box::new(Srrip::new(config)),
            PolicyKind::Brrip => Box::new(Brrip::new(config)),
            PolicyKind::Drrip => Box::new(Drrip::new(config)),
            PolicyKind::KpcR => Box::new(KpcR::new(config)),
            PolicyKind::Ship => Box::new(Ship::new(config)),
            PolicyKind::ShipPp => Box::new(ShipPp::new(config)),
            PolicyKind::Hawkeye => Box::new(Hawkeye::new(config)),
            PolicyKind::Glider => Box::new(Glider::new(config)),
            PolicyKind::Mpppb => Box::new(Mpppb::new(config)),
            PolicyKind::CounterBased => Box::new(CounterBased::new(config)),
            PolicyKind::Pdp => Box::new(Pdp::new(config)),
            PolicyKind::Eva => Box::new(Eva::new(config)),
            PolicyKind::Rlr => Box::new(RlrPolicy::optimized(config)),
            PolicyKind::RlrUnopt => Box::new(RlrPolicy::unoptimized(config)),
            PolicyKind::RlrMulticore => Box::new(RlrPolicy::multicore(4, config)),
            PolicyKind::Belady => Box::new(Belady::from_trace(
                trace.expect("Belady needs a captured LLC trace"),
                config,
            )),
        }
    }
}

impl std::fmt::Display for PolicyKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_online_policy_builds() {
        let cfg = CacheConfig { sets: 64, ways: 8, latency: 1 };
        for kind in PolicyKind::ALL_ONLINE {
            let p = kind.build(&cfg, None);
            assert!(!p.name().is_empty());
        }
    }

    #[test]
    fn pc_flags_match_table_i() {
        assert!(!PolicyKind::Lru.uses_pc());
        assert!(!PolicyKind::Drrip.uses_pc());
        assert!(!PolicyKind::KpcR.uses_pc());
        assert!(!PolicyKind::Rlr.uses_pc());
        assert!(PolicyKind::Ship.uses_pc());
        assert!(PolicyKind::ShipPp.uses_pc());
        assert!(PolicyKind::Hawkeye.uses_pc());
    }

    #[test]
    #[should_panic(expected = "captured LLC trace")]
    fn belady_without_trace_panics() {
        let cfg = CacheConfig { sets: 4, ways: 2, latency: 1 };
        let _ = PolicyKind::Belady.build(&cfg, None);
    }
}
