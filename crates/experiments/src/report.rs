//! Table rendering: aligned text to stdout, CSV to `results/`.

use std::fs;
use std::io::{self, Write};
use std::path::{Path, PathBuf};

/// A rendered experiment result: a titled grid of cells.
///
/// ```
/// use experiments::Table;
///
/// let mut t = Table::new("demo", vec!["bench".into(), "ipc".into()]);
/// t.push_row(vec!["429.mcf".into(), "0.16".into()]);
/// let text = t.render();
/// assert!(text.contains("429.mcf"));
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
    notes: Vec<String>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, headers: Vec<String>) -> Self {
        Self { title: title.into(), headers, rows: Vec::new(), notes: Vec::new() }
    }

    /// The table's title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// The header cells.
    pub fn headers(&self) -> &[String] {
        &self.headers
    }

    /// The body rows.
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn push_row(&mut self, row: Vec<String>) {
        assert_eq!(row.len(), self.headers.len(), "row width must match headers");
        self.rows.push(row);
    }

    /// Appends a footnote printed under the table.
    pub fn push_note(&mut self, note: impl Into<String>) {
        self.notes.push(note.into());
    }

    /// Formats a float with 2 decimal places (the convention used across
    /// all reports).
    pub fn fmt(v: f64) -> String {
        format!("{v:.2}")
    }

    /// Renders the table as aligned text.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let line = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&line(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&line(row, &widths));
            out.push('\n');
        }
        for note in &self.notes {
            out.push_str(&format!("note: {note}\n"));
        }
        out
    }

    /// Writes the table as CSV into `dir`, deriving the file name from the
    /// title. Returns the path written.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from creating the directory or file.
    pub fn write_csv(&self, dir: impl AsRef<Path>) -> io::Result<PathBuf> {
        fs::create_dir_all(&dir)?;
        let slug: String = self
            .title
            .to_lowercase()
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
            .collect();
        let path = dir.as_ref().join(format!("{}.csv", slug.trim_matches('_')));
        let mut f = fs::File::create(&path)?;
        writeln!(f, "{}", escape_csv_row(&self.headers))?;
        for row in &self.rows {
            writeln!(f, "{}", escape_csv_row(row))?;
        }
        Ok(path)
    }

    /// Prints the table and saves it as CSV under `results/` (relative to
    /// the workspace root when run via cargo, else the current directory).
    pub fn emit(&self) {
        println!("{}", self.render());
        let dir = results_dir();
        match self.write_csv(&dir) {
            Ok(path) => println!("[csv] {}\n", path.display()),
            Err(e) => eprintln!("[csv] failed to write {}: {e}\n", dir.display()),
        }
    }
}

fn escape_csv_row(cells: &[String]) -> String {
    cells
        .iter()
        .map(|c| {
            if c.contains(',') || c.contains('"') {
                format!("\"{}\"", c.replace('"', "\"\""))
            } else {
                c.clone()
            }
        })
        .collect::<Vec<_>>()
        .join(",")
}

/// The output directory for CSV artifacts (and, under `cache/`, the
/// sweep's cell checkpoints). `RLR_RESULTS_DIR` overrides the default.
pub fn results_dir() -> PathBuf {
    if let Ok(dir) = std::env::var("RLR_RESULTS_DIR") {
        if !dir.trim().is_empty() {
            return PathBuf::from(dir);
        }
    }
    // CARGO_MANIFEST_DIR points at the invoking crate; hop to the
    // workspace root's results/ directory.
    if let Ok(dir) = std::env::var("CARGO_MANIFEST_DIR") {
        let p = PathBuf::from(dir);
        if let Some(ws) = p.ancestors().find(|a| a.join("Cargo.toml").exists() && a.join("crates").exists()) {
            return ws.join("results");
        }
    }
    PathBuf::from("results")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new("t", vec!["a".into(), "long-header".into()]);
        t.push_row(vec!["xxxxxxx".into(), "1".into()]);
        let r = t.render();
        let lines: Vec<&str> = r.lines().collect();
        assert!(lines[1].ends_with("long-header"));
        assert!(lines[3].ends_with("1"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        let mut t = Table::new("t", vec!["a".into()]);
        t.push_row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn csv_escapes_commas() {
        let mut t = Table::new("csv test", vec!["a,b".into()]);
        t.push_row(vec!["x\"y".into()]);
        let dir = std::env::temp_dir().join("rlr_csv_test");
        let path = t.write_csv(&dir).expect("csv written");
        let content = std::fs::read_to_string(path).expect("readable");
        assert!(content.contains("\"a,b\""));
        assert!(content.contains("\"x\"\"y\""));
    }
}
