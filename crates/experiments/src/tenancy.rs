//! The multi-tenant LLC experiment: run a [`TenantMix`] under each
//! [`IsolationMode`], account per-tenant QoS, and derive the learned
//! per-tenant priority table.
//!
//! Structure mirrors the object-cache sweep ([`crate::objects`]): the same
//! resilient worker pool, the same per-cell checkpoint resume with an
//! exact all-`u64` codec (cells live under `results/cache/tenancy/`, a
//! sibling of the LLC sweep's cells, and `rlr doctor` walks them with the
//! rest of the tree).
//!
//! # The learned priority table
//!
//! [`derive_priorities`] is the paper's offline weight-analysis loop
//! transplanted to tenancy: observe per-tenant reuse under the `Shared`
//! baseline, then coordinate-ascend the per-tenant rank table, accepting a
//! candidate only when the *weighted* demand miss rate strictly improves.
//! Because an all-zero rank table prices every tenant identically — the
//! scan adds rank 0 to every line, reproducing `Shared` key-for-key — the
//! ascent starts exactly at the baseline and can only move down: the
//! derived table is never worse than `Shared` by construction.

use cache_sim::{AccessKind, CacheConfig, LlcRecord, SystemConfig};
use tenancy::{partition_by_weight, IsolationMode, MultiTenantLlc, TenantQos};
use workloads::tenants::{TenantMix, TenantSource, TenantSpec};
use workloads::WeightedInterleave;

use std::io::Read as _;
use std::path::Path;

use crate::checkpoint::{self, write_atomic, CellKey};
use crate::fault::FaultReader;
use crate::json::Json;
use crate::report::Table;
use crate::runner::{resolve_jobs, run_tasks_resilient, watchdog_tick, SweepOptions, TaskFailure};
use crate::scale::Scale;

/// Per-tenant address/PC salt shift: tenant `t`'s traffic is relocated by
/// `(t+1) << 40`, modelling disjoint address spaces (no cross-tenant
/// sharing, like the per-core PC salt in `run_mix`).
const TENANT_SALT_SHIFT: u32 = 40;

/// One tenancy sweep cell: per-tenant QoS counters, or why the run died.
pub type TenancyCellResult = Result<Vec<TenantCellStats>, TaskFailure>;

/// The LLC the tenancy experiment shares between tenants. Deliberately
/// smaller than the paper's 2 MiB LLC so the pinned default mix actually
/// contends: the gold tenant's working set is ~3/4 of it and the bronze
/// scanner could stream the rest away.
pub fn default_llc() -> CacheConfig {
    CacheConfig { sets: 256, ways: 8, latency: 26 }
}

/// Interleaved accesses a tenancy run serves at `scale`.
pub fn accesses_for(scale: Scale) -> u64 {
    match scale {
        Scale::Small => 240_000,
        Scale::Medium => 1_200_000,
        Scale::Full => 6_000_000,
    }
}

/// The exact, checkpointable snapshot of one tenant's [`TenantQos`] —
/// every field a `u64`, so a resumed sweep is byte-identical.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TenantCellStats {
    /// All LLC accesses the tenant issued.
    pub accesses: u64,
    /// Accesses that hit.
    pub hits: u64,
    /// Demand (load/RFO) accesses.
    pub demand_accesses: u64,
    /// Demand accesses that hit.
    pub demand_hits: u64,
    /// Lines owned at the end of the run.
    pub occupancy: u64,
    /// Most lines ever owned at once.
    pub peak_occupancy: u64,
    /// Misses with a recorded DRAM round-trip.
    pub miss_count: u64,
    /// Sum of those round-trips, in timing ticks.
    pub miss_ticks: u64,
    /// Median miss latency, in ticks.
    pub lat_p50: u64,
    /// 99th-percentile miss latency, in ticks.
    pub lat_p99: u64,
}

impl TenantCellStats {
    /// Demand miss rate in 0..=1 (0 with no demand traffic).
    pub fn demand_miss_rate(&self) -> f64 {
        if self.demand_accesses == 0 {
            0.0
        } else {
            1.0 - self.demand_hits as f64 / self.demand_accesses as f64
        }
    }

    /// Mean miss latency in ticks (0 with no misses).
    pub fn mean_miss_latency(&self) -> f64 {
        if self.miss_count == 0 { 0.0 } else { self.miss_ticks as f64 / self.miss_count as f64 }
    }

    /// Average memory-access time proxy in ticks: LLC latency for hits,
    /// the recorded DRAM round-trip for misses. The slowdown index is a
    /// ratio of these.
    pub fn amat(&self, llc: &CacheConfig) -> f64 {
        if self.accesses == 0 {
            return 0.0;
        }
        (self.hits as f64 * f64::from(llc.latency) + self.miss_ticks as f64) / self.accesses as f64
    }
}

fn snapshot(q: &TenantQos) -> TenantCellStats {
    TenantCellStats {
        accesses: q.accesses,
        hits: q.hits,
        demand_accesses: q.demand_accesses,
        demand_hits: q.demand_hits,
        occupancy: q.occupancy,
        peak_occupancy: q.peak_occupancy,
        miss_count: q.miss_latency.count(),
        miss_ticks: q.miss_latency.total(),
        lat_p50: q.miss_latency.percentile(0.50),
        lat_p99: q.miss_latency.percentile(0.99),
    }
}

/// Aggregate demand miss rate weighted by the mix's class weights — the
/// serving tier's headline, and the objective the derive loop descends.
pub fn weighted_rate(stats: &[TenantCellStats], weights: &[u32]) -> f64 {
    assert_eq!(stats.len(), weights.len());
    let total: f64 = weights.iter().map(|&w| f64::from(w)).sum();
    stats
        .iter()
        .zip(weights)
        .map(|(s, &w)| f64::from(w) * s.demand_miss_rate())
        .sum::<f64>()
        / total
}

/// Materializes one tenant's endless access stream, relocated into its
/// private address space. Benchmark tenants replay their corpus trace
/// (captured on demand) in a loop, keeping the original access kinds;
/// synthetic tenants are demand loads.
///
/// # Panics
///
/// Panics when a benchmark tenant's trace cannot be captured — under the
/// resilient sweep runner that surfaces as a structured [`TaskFailure`]
/// for that cell rather than killing the sweep.
fn tenant_stream(
    spec: &TenantSpec,
    tenant: usize,
    scale: Scale,
) -> Box<dyn Iterator<Item = (u64, u64, AccessKind)>> {
    let salt = (tenant as u64 + 1) << TENANT_SALT_SHIFT;
    match &spec.source {
        TenantSource::Benchmark(name) => {
            // The corpus keys on the roster's `&'static` names; intern
            // through it so an unknown tenant fails loudly here.
            let interned = workloads::SPEC2006
                .iter()
                .chain(workloads::CLOUDSUITE.iter())
                .copied()
                .find(|&n| n == name.as_str())
                .unwrap_or_else(|| panic!("benchmark tenant {name} is not in the roster"));
            let trace = crate::corpus::load_or_capture(interned, scale, false)
                .unwrap_or_else(|e| panic!("capture {name} for tenant {tenant}: {e}"));
            let records: Vec<LlcRecord> = trace.records().to_vec();
            assert!(!records.is_empty(), "empty corpus trace for {name}");
            let mut at = 0usize;
            Box::new(std::iter::from_fn(move || {
                let r = records[at % records.len()];
                at += 1;
                Some((r.pc ^ salt, r.line ^ salt, r.kind))
            }))
        }
        source => {
            let stream = source.synthetic_stream().expect("non-benchmark sources are synthetic");
            Box::new(stream.map(move |a| (a.pc ^ salt, a.line ^ salt, AccessKind::Load)))
        }
    }
}

/// Runs `mix` under `mode` for `accesses` interleaved LLC accesses and
/// returns one [`TenantCellStats`] per tenant.
///
/// Deterministic: the interleave order depends only on the mix (seed and
/// rates), never on the mode, so per-tenant access counts are identical
/// across modes and any QoS difference is the isolation policy's doing.
pub fn run_tenant_mix(
    mix: &TenantMix,
    mode: &IsolationMode,
    llc: &CacheConfig,
    accesses: u64,
    scale: Scale,
) -> Vec<TenantCellStats> {
    let mut cfg = SystemConfig::paper_single_core();
    cfg.llc = *llc;
    let mut sys = MultiTenantLlc::new(&cfg, mix.tenants.len() as u8, mode.clone());
    let streams: Vec<_> =
        mix.tenants.iter().enumerate().map(|(t, spec)| tenant_stream(spec, t, scale)).collect();
    let interleave = WeightedInterleave::new(streams, &mix.rates(), mix.seed);
    for (i, (tenant, (pc, line, kind))) in interleave.take(accesses as usize).enumerate() {
        if i % 4096 == 0 {
            watchdog_tick(1);
        }
        sys.access(tenant as u8, pc, line << 6, kind);
    }
    sys.qos_all().iter().map(snapshot).collect()
}

/// Runs tenant `t` of `mix` *alone* on the full LLC for the same access
/// volume it would get in the interleave — the isolated baseline the
/// slowdown index compares against.
pub fn run_isolated_tenant(
    mix: &TenantMix,
    tenant: usize,
    llc: &CacheConfig,
    accesses: u64,
    scale: Scale,
) -> TenantCellStats {
    let rates = mix.rates();
    let total: u64 = rates.iter().map(|&r| u64::from(r)).sum();
    let share = accesses * u64::from(rates[tenant]) / total.max(1);
    let mut cfg = SystemConfig::paper_single_core();
    cfg.llc = *llc;
    let mut sys = MultiTenantLlc::new(&cfg, 1, IsolationMode::Shared);
    for (i, (pc, line, kind)) in tenant_stream(&mix.tenants[tenant], tenant, scale)
        .take(share as usize)
        .enumerate()
    {
        if i % 4096 == 0 {
            watchdog_tick(1);
        }
        sys.access(0, pc, line << 6, kind);
    }
    snapshot(&sys.qos_all()[0])
}

/// Cell name of one isolation mode, embedding its tables so two different
/// partitions or rank vectors never share a checkpoint.
pub fn mode_cell_name(mode: &IsolationMode) -> String {
    match mode {
        IsolationMode::Shared => "shared".to_owned(),
        IsolationMode::WayPartition(masks) => format!("way-partition{masks:?}"),
        IsolationMode::LearnedPriority(ranks) => format!("learned-priority{ranks:?}"),
    }
}

fn sweep_params(mix: &TenantMix, llc: &CacheConfig, accesses: u64) -> String {
    format!("{}|llc s{} w{} l{}|n{accesses}", mix.fingerprint(), llc.sets, llc.ways, llc.latency)
}

/// Checkpoint key for one tenancy cell.
pub fn tenancy_cell_key(
    mix: &TenantMix,
    mode: &IsolationMode,
    llc: &CacheConfig,
    accesses: u64,
) -> CellKey {
    checkpoint::cell_key("tenancy", &mode_cell_name(mode), &sweep_params(mix, llc, accesses))
}

/// Dedicated cell directory: `results/cache/tenancy/`.
pub fn tenancy_cache_dir() -> std::path::PathBuf {
    checkpoint::cache_dir_for("tenancy")
}

fn stats_to_json(s: &TenantCellStats) -> Json {
    Json::Arr(
        [
            s.accesses,
            s.hits,
            s.demand_accesses,
            s.demand_hits,
            s.occupancy,
            s.peak_occupancy,
            s.miss_count,
            s.miss_ticks,
            s.lat_p50,
            s.lat_p99,
        ]
        .iter()
        .map(|&v| Json::U64(v))
        .collect(),
    )
}

fn stats_from_json(v: &Json) -> Option<TenantCellStats> {
    let arr = v.as_arr()?;
    if arr.len() != 10 {
        return None;
    }
    let mut f = [0u64; 10];
    for (slot, x) in f.iter_mut().zip(arr) {
        *slot = x.as_u64()?;
    }
    Some(TenantCellStats {
        accesses: f[0],
        hits: f[1],
        demand_accesses: f[2],
        demand_hits: f[3],
        occupancy: f[4],
        peak_occupancy: f[5],
        miss_count: f[6],
        miss_ticks: f[7],
        lat_p50: f[8],
        lat_p99: f[9],
    })
}

/// Encodes a tenancy cell: the verification key plus per-tenant counters.
pub fn encode_tenancy_cell(key: &CellKey, stats: &[TenantCellStats]) -> String {
    Json::obj([
        ("key", Json::Str(key.key.clone())),
        ("tenants", Json::Arr(stats.iter().map(stats_to_json).collect())),
    ])
    .encode()
}

/// Decodes a tenancy cell, verifying its embedded key.
pub fn decode_tenancy_cell(text: &str, key: &CellKey) -> Option<Vec<TenantCellStats>> {
    let v = Json::parse(text).ok()?;
    if v.get("key")?.as_str()? != key.key {
        return None; // hash collision or stale file from another config
    }
    v.get("tenants")?.as_arr()?.iter().map(stats_from_json).collect()
}

/// Loads the checkpoint for `key` from `dir`, or `None` if absent,
/// corrupt, or written for a different key.
pub fn load_tenancy_cell(dir: &Path, key: &CellKey) -> Option<Vec<TenantCellStats>> {
    let mut text = String::new();
    let mut reader = FaultReader::new(std::fs::File::open(dir.join(key.file_name())).ok()?);
    reader.read_to_string(&mut text).ok()?;
    decode_tenancy_cell(&text, key)
}

/// Persists one completed cell; failure to write only costs recomputation.
pub fn store_tenancy_cell(dir: &Path, key: &CellKey, stats: &[TenantCellStats]) {
    let path = dir.join(key.file_name());
    if let Err(e) = write_atomic(&path, encode_tenancy_cell(key, stats).as_bytes()) {
        eprintln!("warning: could not write checkpoint {}: {e}", path.display());
    }
}

/// The three modes `rlr tenancy compare` runs: free-for-all, proportional
/// way partitions, and the learned table (`ranks`).
pub fn standard_modes(mix: &TenantMix, llc: &CacheConfig, ranks: Vec<u32>) -> Vec<IsolationMode> {
    vec![
        IsolationMode::Shared,
        IsolationMode::WayPartition(partition_by_weight(llc.ways, &mix.weights())),
        IsolationMode::LearnedPriority(ranks),
    ]
}

/// Runs `modes` over one mix on the worker pool, with per-cell checkpoint
/// resume exactly like the LLC and object-cache sweeps. Results preserve
/// `modes` order independent of scheduling.
pub fn run_tenancy_sweep(
    mix: &TenantMix,
    modes: &[IsolationMode],
    llc: &CacheConfig,
    accesses: u64,
    scale: Scale,
    opts: &SweepOptions,
) -> Vec<(IsolationMode, TenancyCellResult)> {
    if let Some(dir) = &opts.cache_dir {
        let swept = checkpoint::sweep_orphans(dir);
        if swept > 0 {
            eprintln!("[tenancy] removed {swept} orphaned scratch file(s) from {}", dir.display());
        }
    }
    let results = run_tasks_resilient(modes, resolve_jobs(opts.jobs), &opts.run, |_, mode| {
        let key = opts.cache_dir.is_some().then(|| tenancy_cell_key(mix, mode, llc, accesses));
        if let (Some(dir), Some(key)) = (&opts.cache_dir, &key) {
            if let Some(cached) = load_tenancy_cell(dir, key) {
                eprintln!("[tenancy] {} cached", mode_cell_name(mode));
                return cached;
            }
        }
        let out = run_tenant_mix(mix, mode, llc, accesses, scale);
        if let (Some(dir), Some(key)) = (&opts.cache_dir, &key) {
            store_tenancy_cell(dir, key, &out);
        }
        eprintln!("[tenancy] {} done", mode_cell_name(mode));
        out
    });
    modes.iter().cloned().zip(results).collect()
}

/// What [`derive_priorities`] found.
#[derive(Clone, Debug, PartialEq)]
pub struct DeriveOutcome {
    /// The derived per-tenant rank table.
    pub ranks: Vec<u32>,
    /// Weighted demand miss rate of the `Shared` baseline.
    pub shared_rate: f64,
    /// Weighted demand miss rate under the derived table.
    pub derived_rate: f64,
    /// Candidate tables evaluated (ascent cost, for reporting).
    pub evaluated: u32,
}

/// Rank levels the ascent may assign a tenant. Spread exponentially: one
/// rank step must out-price the scan's hit bit (+1) and, at the top, the
/// whole age term (+8).
const RANK_LEVELS: [u32; 6] = [0, 1, 2, 4, 8, 16];

/// Derives the learned per-tenant priority table: the paper's offline
/// weight-analysis loop with the per-tenant rank vector as the weight
/// space and the weighted demand miss rate as the objective.
///
/// Coordinate ascent from the all-zero table (= the `Shared` baseline,
/// exactly — rank 0 adds nothing to any key), accepting a move only on
/// strict improvement. The result therefore never loses to `Shared`; on
/// contended mixes it wins by pricing high-weight tenants' lines up.
pub fn derive_priorities(
    mix: &TenantMix,
    llc: &CacheConfig,
    accesses: u64,
    scale: Scale,
) -> DeriveOutcome {
    let weights = mix.weights();
    let shared_rate = weighted_rate(&run_tenant_mix(mix, &IsolationMode::Shared, llc, accesses, scale), &weights);
    let mut ranks = vec![0u32; mix.tenants.len()];
    let mut best = shared_rate;
    let mut evaluated = 1u32;
    for _pass in 0..2 {
        let mut improved = false;
        // Heaviest class first: its rank moves the weighted objective
        // most, so the ascent converges in fewer evaluations.
        let mut order: Vec<usize> = (0..ranks.len()).collect();
        order.sort_by_key(|&t| (std::cmp::Reverse(weights[t]), t));
        for &t in &order {
            for level in RANK_LEVELS {
                if level == ranks[t] {
                    continue;
                }
                let mut trial = ranks.clone();
                trial[t] = level;
                let rate = weighted_rate(
                    &run_tenant_mix(mix, &IsolationMode::LearnedPriority(trial.clone()), llc, accesses, scale),
                    &weights,
                );
                evaluated += 1;
                if rate < best {
                    best = rate;
                    ranks = trial;
                    improved = true;
                }
            }
        }
        if !improved {
            break;
        }
    }
    DeriveOutcome { ranks, shared_rate, derived_rate: best, evaluated }
}

/// Renders a sweep as the per-mode QoS table: one row per (mode, tenant)
/// with occupancy, demand miss rate, miss-latency percentiles, and the
/// slowdown index vs `baselines` (the isolated runs from
/// [`run_isolated_tenant`]), then one aggregate row per mode.
pub fn compare_table(
    mix: &TenantMix,
    llc: &CacheConfig,
    results: &[(IsolationMode, TenancyCellResult)],
    baselines: &[TenantCellStats],
) -> Table {
    let weights = mix.weights();
    let mut table = Table::new(
        "Multi-tenant LLC: per-tenant QoS by isolation mode",
        ["mode", "tenant", "class", "accesses", "demand miss", "peak occ", "p50", "p99", "slowdown"]
            .map(String::from)
            .to_vec(),
    );
    for (mode, cell) in results {
        let stats = match cell {
            Ok(stats) => stats,
            Err(e) => {
                table.push_row(vec![
                    mode.name().to_owned(),
                    format!("FAILED: {e}"),
                    String::new(),
                    String::new(),
                    String::new(),
                    String::new(),
                    String::new(),
                    String::new(),
                    String::new(),
                ]);
                continue;
            }
        };
        let mut slowdowns = Vec::new();
        for (t, (spec, s)) in mix.tenants.iter().zip(stats).enumerate() {
            let iso = baselines.get(t).map_or(0.0, |b| b.amat(llc));
            let slowdown = if iso > 0.0 { s.amat(llc) / iso } else { 0.0 };
            slowdowns.push(slowdown);
            table.push_row(vec![
                mode.name().to_owned(),
                spec.name.clone(),
                spec.class.name().to_owned(),
                s.accesses.to_string(),
                Table::fmt(s.demand_miss_rate()),
                s.peak_occupancy.to_string(),
                s.lat_p50.to_string(),
                s.lat_p99.to_string(),
                format!("{slowdown:.3}"),
            ]);
        }
        let spread = match (
            slowdowns.iter().cloned().filter(|s| *s > 0.0).reduce(f64::min),
            slowdowns.iter().cloned().reduce(f64::max),
        ) {
            (Some(lo), Some(hi)) if lo > 0.0 => hi / lo,
            _ => 0.0,
        };
        table.push_row(vec![
            mode.name().to_owned(),
            "= aggregate".to_owned(),
            String::new(),
            String::new(),
            Table::fmt(weighted_rate(stats, &weights)),
            String::new(),
            String::new(),
            String::new(),
            format!("spread {spread:.3}"),
        ]);
    }
    table.push_note(format!(
        "mix {} | llc {}x{} | weights {:?} (weighted demand miss rate; slowdown = AMAT vs isolated run)",
        mix.fingerprint(),
        llc.sets,
        llc.ways,
        weights,
    ));
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> (TenantMix, CacheConfig, u64) {
        (TenantMix::default_three_class(), default_llc(), 60_000)
    }

    #[test]
    fn runs_are_deterministic_and_mode_independent_in_volume() {
        let (mix, llc, n) = small();
        let shared = run_tenant_mix(&mix, &IsolationMode::Shared, &llc, n, Scale::Small);
        let again = run_tenant_mix(&mix, &IsolationMode::Shared, &llc, n, Scale::Small);
        assert_eq!(shared, again, "the run is a pure function of its inputs");
        let part = run_tenant_mix(
            &mix,
            &IsolationMode::WayPartition(partition_by_weight(llc.ways, &mix.weights())),
            &llc,
            n,
            Scale::Small,
        );
        for (s, p) in shared.iter().zip(&part) {
            assert_eq!(s.accesses, p.accesses, "interleave volume is mode-independent");
        }
        let total: u64 = shared.iter().map(|s| s.accesses).sum();
        assert_eq!(total, n);
    }

    #[test]
    fn all_zero_learned_table_reproduces_shared_exactly() {
        let (mix, llc, n) = small();
        let shared = run_tenant_mix(&mix, &IsolationMode::Shared, &llc, n, Scale::Small);
        let zeros = run_tenant_mix(
            &mix,
            &IsolationMode::LearnedPriority(vec![0; mix.tenants.len()]),
            &llc,
            n,
            Scale::Small,
        );
        assert_eq!(shared, zeros, "rank 0 everywhere must be a no-op on the victim keys");
    }

    #[test]
    fn cell_codec_roundtrips_exactly() {
        let (mix, llc, n) = small();
        let mode = IsolationMode::WayPartition(partition_by_weight(llc.ways, &mix.weights()));
        let key = tenancy_cell_key(&mix, &mode, &llc, n);
        let stats = run_tenant_mix(&mix, &mode, &llc, 8_000, Scale::Small);
        let decoded =
            decode_tenancy_cell(&encode_tenancy_cell(&key, &stats), &key).expect("roundtrip");
        assert_eq!(decoded, stats);
        let other = tenancy_cell_key(&mix, &IsolationMode::Shared, &llc, n);
        assert!(decode_tenancy_cell(&encode_tenancy_cell(&key, &stats), &other).is_none());
    }

    #[test]
    fn mode_cell_names_separate_tables() {
        assert_ne!(
            mode_cell_name(&IsolationMode::LearnedPriority(vec![1, 0])),
            mode_cell_name(&IsolationMode::LearnedPriority(vec![0, 1])),
        );
        assert_ne!(
            mode_cell_name(&IsolationMode::WayPartition(vec![0xF, 0xF0])),
            mode_cell_name(&IsolationMode::WayPartition(vec![0x3, 0xFC])),
        );
    }

    #[test]
    fn sweep_matches_serial_runs_and_renders() {
        let (mix, llc, _) = small();
        let n = 20_000;
        let modes = standard_modes(&mix, &llc, vec![4, 1, 0]);
        let swept =
            run_tenancy_sweep(&mix, &modes, &llc, n, Scale::Small, &SweepOptions::none());
        for (mode, cell) in &swept {
            let direct = run_tenant_mix(&mix, mode, &llc, n, Scale::Small);
            assert_eq!(cell.as_ref().expect("cell ok"), &direct, "{}", mode.name());
        }
        let baselines: Vec<TenantCellStats> = (0..mix.tenants.len())
            .map(|t| run_isolated_tenant(&mix, t, &llc, n, Scale::Small))
            .collect();
        let rendered = compare_table(&mix, &llc, &swept, &baselines).render();
        assert!(rendered.contains("way-partition"), "{rendered}");
        assert!(rendered.contains("= aggregate"), "{rendered}");
    }

    #[test]
    fn derived_table_beats_shared_on_the_default_mix() {
        let (mix, llc, _) = small();
        let n = 60_000;
        let outcome = derive_priorities(&mix, &llc, n, Scale::Small);
        assert!(
            outcome.derived_rate <= outcome.shared_rate,
            "ascent can never accept a regression: {} vs {}",
            outcome.derived_rate,
            outcome.shared_rate
        );
        assert!(
            outcome.derived_rate < outcome.shared_rate - 1e-6,
            "the pinned default mix must be contended enough for the learned table to win \
             (derived {}, shared {}, ranks {:?})",
            outcome.derived_rate,
            outcome.shared_rate,
            outcome.ranks
        );
        assert!(outcome.ranks.iter().any(|&r| r > 0), "a winning table is non-trivial");
    }
}
