//! Experiment scaling: the paper's 200M-warm-up/1B-measure runs are scaled
//! down by default so the whole evaluation fits on a laptop; `RLR_SCALE=full`
//! approaches paper-scale runs.

/// Experiment scale, selected via the `RLR_SCALE` environment variable.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Scale {
    /// Minutes-scale runs (default): qualitative shape reproduction.
    Small,
    /// Tens of minutes: tighter statistics.
    Medium,
    /// Hours: closest to the paper's methodology.
    Full,
}

impl Scale {
    /// Reads `RLR_SCALE` (`small` / `medium` / `full`), defaulting to
    /// [`Scale::Small`].
    pub fn from_env() -> Self {
        match std::env::var("RLR_SCALE").unwrap_or_default().to_lowercase().as_str() {
            "medium" => Scale::Medium,
            "full" => Scale::Full,
            _ => Scale::Small,
        }
    }

    /// Warm-up instructions for single-core runs.
    pub fn warmup(self) -> u64 {
        match self {
            Scale::Small => 2_000_000,
            Scale::Medium => 5_000_000,
            Scale::Full => 20_000_000,
        }
    }

    /// Measured instructions for single-core runs.
    pub fn instructions(self) -> u64 {
        match self {
            Scale::Small => 10_000_000,
            Scale::Medium => 40_000_000,
            Scale::Full => 200_000_000,
        }
    }

    /// Warm-up instructions per core for 4-core runs.
    pub fn mc_warmup(self) -> u64 {
        match self {
            Scale::Small => 500_000,
            Scale::Medium => 2_000_000,
            Scale::Full => 10_000_000,
        }
    }

    /// Measured instructions per core for 4-core runs.
    pub fn mc_instructions(self) -> u64 {
        match self {
            Scale::Small => 3_000_000,
            Scale::Medium => 10_000_000,
            Scale::Full => 50_000_000,
        }
    }

    /// Number of random 4-benchmark SPEC mixes (paper: 100).
    pub fn mix_count(self) -> usize {
        match self {
            Scale::Small => 8,
            Scale::Medium => 30,
            Scale::Full => 100,
        }
    }

    /// LLC trace length (records) for RL training and trace-driven stats.
    pub fn rl_trace_len(self) -> usize {
        match self {
            Scale::Small => 60_000,
            Scale::Medium => 150_000,
            Scale::Full => 400_000,
        }
    }

    /// Training epochs per benchmark for the RL agent.
    pub fn rl_epochs(self) -> usize {
        match self {
            Scale::Small => 3,
            Scale::Medium => 5,
            Scale::Full => 8,
        }
    }

    /// Hidden-layer width for the RL agent (paper: 175).
    pub fn rl_hidden(self) -> usize {
        match self {
            Scale::Small => 64,
            Scale::Medium => 128,
            Scale::Full => 175,
        }
    }

    /// LLC trace length for hill-climbing evaluations.
    pub fn hill_trace_len(self) -> usize {
        match self {
            Scale::Small => 15_000,
            Scale::Medium => 40_000,
            Scale::Full => 100_000,
        }
    }

    /// Maximum features the hill climb may select (paper finds 5).
    pub fn hill_max_features(self) -> usize {
        match self {
            Scale::Small => 5,
            Scale::Medium => 6,
            Scale::Full => 8,
        }
    }
}

impl std::fmt::Display for Scale {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Scale::Small => "small",
            Scale::Medium => "medium",
            Scale::Full => "full",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_are_ordered() {
        assert!(Scale::Small.instructions() < Scale::Medium.instructions());
        assert!(Scale::Medium.instructions() < Scale::Full.instructions());
        assert!(Scale::Small.mix_count() < Scale::Full.mix_count());
    }

    #[test]
    fn display_names_round_trip() {
        assert_eq!(Scale::Small.to_string(), "small");
        assert_eq!(Scale::Full.to_string(), "full");
    }
}
