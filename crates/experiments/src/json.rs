//! A minimal JSON subset for cell checkpoints: unsigned integers, strings,
//! arrays, and objects — exactly what [`cache_sim::RunStats`] needs.
//!
//! Every statistic in a run is a `u64`, so restricting the format to
//! unsigned integers makes the encode/decode roundtrip *exact*: a cell
//! loaded from a checkpoint is bit-identical to one that was just
//! computed, which is what lets a resumed sweep produce byte-identical
//! output. Floats are deliberately unsupported.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A JSON value in the supported subset.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Json {
    /// An unsigned integer (the only number form supported).
    U64(u64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; `BTreeMap` keeps key order deterministic.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Builds an object from key/value pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Self {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
    }

    /// Returns the integer value, if this is a [`Json::U64`].
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::U64(n) => Some(*n),
            _ => None,
        }
    }

    /// Returns the string value, if this is a [`Json::Str`].
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Looks up `key`, if this is a [`Json::Obj`].
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// Returns the elements, if this is a [`Json::Arr`].
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Serializes to compact JSON text (no whitespace, sorted object keys).
    pub fn encode(&self) -> String {
        let mut out = String::new();
        self.encode_into(&mut out);
        out
    }

    fn encode_into(&self, out: &mut String) {
        match self {
            Json::U64(n) => {
                let _ = write!(out, "{n}");
            }
            Json::Str(s) => encode_str(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.encode_into(out);
                }
                out.push(']');
            }
            Json::Obj(map) => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    encode_str(k, out);
                    out.push(':');
                    v.encode_into(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses JSON text in the supported subset.
    ///
    /// # Errors
    ///
    /// Returns a message describing the first syntax error, unsupported
    /// construct (floats, booleans, null, negatives), or trailing garbage.
    pub fn parse(text: &str) -> Result<Self, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing garbage at byte {pos}"));
        }
        Ok(value)
    }
}

fn encode_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, want: u8) -> Result<(), String> {
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&want) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected `{}` at byte {}", want as char, *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => parse_obj(bytes, pos),
        Some(b'[') => parse_arr(bytes, pos),
        Some(b'"') => Ok(Json::Str(parse_str(bytes, pos)?)),
        Some(b'0'..=b'9') => parse_u64(bytes, pos),
        Some(&c) => Err(format!("unsupported value starting with `{}` at byte {}", c as char, *pos)),
        None => Err("unexpected end of input".to_owned()),
    }
}

fn parse_u64(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while matches!(bytes.get(*pos), Some(b'0'..=b'9')) {
        *pos += 1;
    }
    if matches!(bytes.get(*pos), Some(b'.' | b'e' | b'E')) {
        return Err(format!("floats are not supported (byte {})", *pos));
    }
    std::str::from_utf8(&bytes[start..*pos])
        .ok()
        .and_then(|s| s.parse().ok())
        .map(Json::U64)
        .ok_or_else(|| format!("bad number at byte {start}"))
}

fn parse_str(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_owned()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .and_then(char::from_u32)
                            .ok_or_else(|| format!("bad \\u escape at byte {}", *pos))?;
                        out.push(hex);
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (input is a &str, so slicing at
                // the next boundary is safe via chars()).
                let rest = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| "invalid utf-8".to_owned())?;
                let c = rest.chars().next().expect("non-empty");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_arr(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected `,` or `]` at byte {}", *pos)),
        }
    }
}

fn parse_obj(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'{')?;
    let mut map = BTreeMap::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(map));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_str(bytes, pos)?;
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        map.insert(key, value);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(map));
            }
            _ => return Err(format!("expected `,` or `}}` at byte {}", *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_nested_values() {
        let v = Json::obj([
            ("stats", Json::Arr(vec![Json::U64(0), Json::U64(u64::MAX)])),
            ("name", Json::Str("429.mcf \"quoted\"\n".to_owned())),
            ("empty", Json::obj([])),
        ]);
        let text = v.encode();
        assert_eq!(Json::parse(&text).expect("self-encoded json parses"), v);
    }

    #[test]
    fn parse_accepts_whitespace_and_sorts_keys() {
        let v = Json::parse(" { \"b\" : 2 , \"a\" : [ 1 , \"x\" ] } ").expect("valid");
        assert_eq!(v.get("b").and_then(Json::as_u64), Some(2));
        assert_eq!(v.encode(), "{\"a\":[1,\"x\"],\"b\":2}");
    }

    #[test]
    fn rejects_unsupported_constructs() {
        for bad in ["1.5", "-3", "true", "null", "{\"a\":1}x", "[1,", "\"oops", "{1:2}"] {
            assert!(Json::parse(bad).is_err(), "`{bad}` should be rejected");
        }
    }

    #[test]
    fn u64_range_is_exact() {
        let text = Json::U64(u64::MAX).encode();
        assert_eq!(Json::parse(&text).expect("parses").as_u64(), Some(u64::MAX));
    }
}
