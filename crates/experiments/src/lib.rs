//! The evaluation harness: reproduces every table and figure of the RLR
//! paper (HPCA 2021).
//!
//! Each experiment is a function returning one or more [`report::Table`]s
//! that can be printed and saved as CSV. The `rlr-bench` crate exposes one
//! `cargo bench` target per experiment; everything honours the `RLR_SCALE`
//! environment variable (`small` / `medium` / `full`) via [`Scale`].
//!
//! | Paper artifact | Function |
//! |---|---|
//! | Table I (storage overhead) | [`tables::table1`] |
//! | Fig. 1 (LLC hit rate incl. RL + Belady) | [`figures::fig1`] |
//! | Fig. 3 (weight heat map) | [`figures::fig3`] |
//! | Fig. 4 (preuse vs reuse gap) | [`figures::fig4`] |
//! | Fig. 5 (victim age by type) | [`figures::fig5`] |
//! | Fig. 6 (victim hits) | [`figures::fig6`] |
//! | Fig. 7 (victim recency) | [`figures::fig7`] |
//! | Fig. 10 (SPEC speedups) | [`figures::fig10`] |
//! | Fig. 11 (CloudSuite speedups) | [`figures::fig11`] |
//! | Fig. 12 (demand MPKI) | [`figures::fig12`] |
//! | Fig. 13 (4-core mixes) | [`figures::fig13`] |
//! | Table IV (overall speedups) | [`tables::table4`] |
//! | §V-B ablations + §IV-C sweeps | [`ablations`] |

pub mod ablations;
pub mod checkpoint;
pub mod corpus;
pub mod doctor;
pub mod fault;
pub mod figures;
pub mod json;
pub mod objects;
pub mod perf;
pub mod pipeline;
pub mod report;
pub mod roster;
pub mod runner;
pub mod scale;
pub mod tables;
pub mod tenancy;

pub use report::Table;
pub use roster::{LlcPolicy, PolicyKind};
pub use runner::{CellResult, RunnerError, TaskFailure};
pub use scale::Scale;

/// Geometric mean of (1 + x/100) speedup percentages, returned as a
/// percentage — the paper's overall-speedup aggregation.
pub fn geomean_speedup_pct(pcts: impl IntoIterator<Item = f64>) -> f64 {
    let mut log_sum = 0.0;
    let mut n = 0usize;
    for p in pcts {
        log_sum += (1.0 + p / 100.0).ln();
        n += 1;
    }
    if n == 0 {
        0.0
    } else {
        ((log_sum / n as f64).exp() - 1.0) * 100.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_of_equal_values_is_identity() {
        let g = geomean_speedup_pct([5.0, 5.0, 5.0]);
        assert!((g - 5.0).abs() < 1e-9);
    }

    #[test]
    fn geomean_handles_negatives_and_empty() {
        assert_eq!(geomean_speedup_pct([]), 0.0);
        let g = geomean_speedup_pct([10.0, -10.0]);
        assert!(g < 0.1 && g > -0.6, "≈ sqrt(1.1*0.9)-1: {g}");
    }
}
