//! The object-cache serving-tier experiment: sweep the admission+eviction
//! roster (`LRU` / `SLRU` / `GDSF` / the RLR-derived rule) over one
//! [`ObjectTraffic`] trace and report miss-byte ratios.
//!
//! This mirrors the LLC roster sweep in [`crate::runner`] — same worker
//! pool ([`run_tasks_resilient`]), same `RLR_JOBS` resolution, same
//! per-cell checkpoint resume — but with its own cell codec, because
//! object-cache cells carry [`ObjStats`] (byte counters, admissions,
//! expirations) rather than `RunStats`. Like the LLC codec it is exact:
//! every field is a `u64` round-tripped through [`crate::json`], so a
//! resumed sweep is byte-identical to an uninterrupted one (the
//! `objcache_determinism` wall holds this down).

use std::io::Read as _;
use std::path::Path;

use objcache::{ObjCacheConfig, ObjPolicyKind, ObjStats};
use workloads::ObjectTraffic;

use crate::checkpoint::{self, write_atomic, CellKey};
use crate::fault::FaultReader;
use crate::json::Json;
use crate::report::Table;
use crate::runner::{resolve_jobs, run_tasks_resilient, watchdog_tick, SweepOptions, TaskFailure};

/// One object-cache sweep cell: the replay's counters, or why it failed.
pub type ObjCellResult = Result<ObjStats, TaskFailure>;

/// Cell name for one policy. The derived rule embeds its weight
/// fingerprint so two different derived rules never share a checkpoint.
pub fn policy_cell_name(policy: &ObjPolicyKind) -> String {
    match policy {
        ObjPolicyKind::DerivedRlr(w) => format!("{}[{}]", policy.name(), w.fingerprint()),
        _ => policy.name().to_owned(),
    }
}

/// The free-form params string of an object-cache cell: everything besides
/// the policy that determines the result.
fn sweep_params(traffic: &ObjectTraffic, requests: u64, cfg: &ObjCacheConfig) -> String {
    format!("{}|{}|n{requests}", traffic.fingerprint(), cfg.fingerprint())
}

/// Checkpoint key for one object-cache cell.
pub fn obj_cell_key(
    traffic: &ObjectTraffic,
    requests: u64,
    cfg: &ObjCacheConfig,
    policy: &ObjPolicyKind,
) -> CellKey {
    checkpoint::cell_key("objcache", &policy_cell_name(policy), &sweep_params(traffic, requests, cfg))
}

/// Encodes an object-cache cell: the verification key plus every counter.
pub fn encode_obj_cell(key: &CellKey, stats: &ObjStats) -> String {
    Json::obj([
        ("key", Json::Str(key.key.clone())),
        ("requests", Json::U64(stats.requests)),
        ("hits", Json::U64(stats.hits)),
        ("misses", Json::U64(stats.misses)),
        ("hit_bytes", Json::U64(stats.hit_bytes)),
        ("miss_bytes", Json::U64(stats.miss_bytes)),
        ("admitted", Json::U64(stats.admitted)),
        ("rejected", Json::U64(stats.rejected)),
        ("evictions", Json::U64(stats.evictions)),
        ("evicted_bytes", Json::U64(stats.evicted_bytes)),
        ("expirations", Json::U64(stats.expirations)),
        ("expired_bytes", Json::U64(stats.expired_bytes)),
    ])
    .encode()
}

/// Decodes an object-cache cell, verifying its embedded key.
pub fn decode_obj_cell(text: &str, key: &CellKey) -> Option<ObjStats> {
    let v = Json::parse(text).ok()?;
    if v.get("key")?.as_str()? != key.key {
        return None; // hash collision or stale file from another config
    }
    Some(ObjStats {
        requests: v.get("requests")?.as_u64()?,
        hits: v.get("hits")?.as_u64()?,
        misses: v.get("misses")?.as_u64()?,
        hit_bytes: v.get("hit_bytes")?.as_u64()?,
        miss_bytes: v.get("miss_bytes")?.as_u64()?,
        admitted: v.get("admitted")?.as_u64()?,
        rejected: v.get("rejected")?.as_u64()?,
        evictions: v.get("evictions")?.as_u64()?,
        evicted_bytes: v.get("evicted_bytes")?.as_u64()?,
        expirations: v.get("expirations")?.as_u64()?,
        expired_bytes: v.get("expired_bytes")?.as_u64()?,
    })
}

/// Loads the checkpoint for `key` from `dir`, or `None` if absent,
/// corrupt, or written for a different key. Reads go through the fault
/// seam like every other checkpoint load.
pub fn load_obj_cell(dir: &Path, key: &CellKey) -> Option<ObjStats> {
    let mut text = String::new();
    let mut reader = FaultReader::new(std::fs::File::open(dir.join(key.file_name())).ok()?);
    reader.read_to_string(&mut text).ok()?;
    decode_obj_cell(&text, key)
}

/// Persists one completed cell; failure to write only costs recomputation.
pub fn store_obj_cell(dir: &Path, key: &CellKey, stats: &ObjStats) {
    let path = dir.join(key.file_name());
    if let Err(e) = write_atomic(&path, encode_obj_cell(key, stats).as_bytes()) {
        eprintln!("warning: could not write checkpoint {}: {e}", path.display());
    }
}

/// Replays `requests` of `traffic` through one policy, feeding the task
/// watchdog so a runaway replay can be budget-aborted like any LLC cell.
pub fn run_object_cell(
    traffic: &ObjectTraffic,
    requests: u64,
    cfg: ObjCacheConfig,
    policy: ObjPolicyKind,
) -> ObjStats {
    let mut cache = objcache::ObjectCache::new(cfg, policy);
    for (i, r) in traffic.stream().take(requests as usize).enumerate() {
        if i % 1024 == 0 {
            watchdog_tick(1);
        }
        cache.request(&r);
    }
    *cache.stats()
}

/// Runs the policy roster over one trace on the worker pool, with per-cell
/// checkpoint resume exactly like the LLC roster sweep: each cell is first
/// looked up in `opts.cache_dir` (a hit skips the replay), and stored
/// there atomically on completion. Results preserve `policies` order
/// independent of scheduling.
pub fn run_object_sweep(
    traffic: &ObjectTraffic,
    requests: u64,
    cfg: ObjCacheConfig,
    policies: &[ObjPolicyKind],
    opts: &SweepOptions,
) -> Vec<(ObjPolicyKind, ObjCellResult)> {
    if let Some(dir) = &opts.cache_dir {
        let swept = checkpoint::sweep_orphans(dir);
        if swept > 0 {
            eprintln!("[objcache] removed {swept} orphaned scratch file(s) from {}", dir.display());
        }
    }
    let results =
        run_tasks_resilient(policies, resolve_jobs(opts.jobs), &opts.run, |_, policy| {
            let key = opts
                .cache_dir
                .is_some()
                .then(|| obj_cell_key(traffic, requests, &cfg, policy));
            if let (Some(dir), Some(key)) = (&opts.cache_dir, &key) {
                if let Some(cached) = load_obj_cell(dir, key) {
                    eprintln!("[objcache] {} cached", policy_cell_name(policy));
                    return cached;
                }
            }
            let out = run_object_cell(traffic, requests, cfg, *policy);
            if let (Some(dir), Some(key)) = (&opts.cache_dir, &key) {
                store_obj_cell(dir, key, &out);
            }
            eprintln!("[objcache] {} done", policy_cell_name(policy));
            out
        });
    policies.iter().copied().zip(results).collect()
}

/// Renders a sweep as the serving-tier comparison table: per policy, the
/// object hit rate, the headline miss-byte ratio, and the admission /
/// eviction / expiry traffic behind it.
pub fn compare_table(
    traffic: &ObjectTraffic,
    requests: u64,
    cfg: &ObjCacheConfig,
    results: &[(ObjPolicyKind, ObjCellResult)],
) -> Table {
    let mut table = Table::new(
        "Object-cache serving tier: miss-byte ratio by policy",
        ["policy", "hit rate", "miss-byte ratio", "admitted", "rejected", "evictions", "expirations"]
            .map(String::from)
            .to_vec(),
    );
    for (policy, cell) in results {
        match cell {
            Ok(s) => table.push_row(vec![
                policy.name().to_owned(),
                Table::fmt(s.hit_rate()),
                Table::fmt(s.miss_byte_ratio()),
                s.admitted.to_string(),
                s.rejected.to_string(),
                s.evictions.to_string(),
                s.expirations.to_string(),
            ]),
            Err(e) => table.push_row(vec![
                policy.name().to_owned(),
                format!("FAILED: {e}"),
                String::new(),
                String::new(),
                String::new(),
                String::new(),
                String::new(),
            ]),
        }
    }
    table.push_note(format!(
        "trace {} | n={requests} | capacity {} MiB, protected {}%",
        traffic.fingerprint(),
        cfg.capacity_bytes >> 20,
        cfg.protected_pct
    ));
    let ratio = |name: &str| {
        results
            .iter()
            .find(|(p, _)| p.name() == name)
            .and_then(|(_, c)| c.as_ref().ok())
            .map(ObjStats::miss_byte_ratio)
    };
    if let (Some(lru), Some(derived)) = (ratio("LRU"), ratio("RLR-derived")) {
        table.push_note(if derived < lru {
            format!("derived-RLR beats LRU: {:.4} vs {:.4} miss-byte ratio", derived, lru)
        } else {
            format!("derived-RLR does NOT beat LRU: {:.4} vs {:.4}", derived, lru)
        });
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_scenario() -> (ObjectTraffic, u64, ObjCacheConfig) {
        let traffic = ObjectTraffic {
            catalog: 2_000,
            flash_every: 1_000,
            flash_len: 200,
            ..ObjectTraffic::internet_default()
        };
        (traffic, 4_000, ObjCacheConfig::with_capacity_mib(8))
    }

    #[test]
    fn obj_cell_codec_roundtrips_exactly() {
        let (traffic, n, cfg) = small_scenario();
        let policy = ObjPolicyKind::parse("rlr").expect("pinned rule");
        let key = obj_cell_key(&traffic, n, &cfg, &policy);
        let stats = run_object_cell(&traffic, n, cfg, policy);
        let decoded = decode_obj_cell(&encode_obj_cell(&key, &stats), &key).expect("roundtrip");
        assert_eq!(decoded, stats);
        // Another cell's key must refuse this payload.
        let other = obj_cell_key(&traffic, n + 1, &cfg, &policy);
        assert!(decode_obj_cell(&encode_obj_cell(&key, &stats), &other).is_none());
    }

    #[test]
    fn cell_names_separate_derived_rules() {
        let mut w = objcache::DerivedWeights::paper_default();
        let a = policy_cell_name(&ObjPolicyKind::DerivedRlr(w));
        w.ad_threshold += 1;
        let b = policy_cell_name(&ObjPolicyKind::DerivedRlr(w));
        assert_ne!(a, b);
        assert_eq!(policy_cell_name(&ObjPolicyKind::Lru), "LRU");
    }

    #[test]
    fn sweep_matches_serial_replay_and_renders() {
        let (traffic, n, cfg) = small_scenario();
        let roster = ObjPolicyKind::roster();
        let swept = run_object_sweep(&traffic, n, cfg, &roster, &SweepOptions::none());
        for (policy, cell) in &swept {
            let direct = run_object_cell(&traffic, n, cfg, *policy);
            assert_eq!(cell.as_ref().expect("cell ok"), &direct, "{}", policy.name());
        }
        let rendered = compare_table(&traffic, n, &cfg, &swept).render();
        assert!(rendered.contains("GDSF"), "table lists the roster:\n{rendered}");
        assert!(rendered.contains("miss-byte ratio"), "{rendered}");
    }
}
