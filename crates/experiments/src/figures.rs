//! Every figure of the paper's evaluation, as harness functions.

use rl::stats::{collect_victim_stats, preuse_reuse_gap};
use rl::LlcModel;
use workloads::{random_spec_mixes, spec2006, CLOUDSUITE, SPEC2006};

use crate::pipeline::TrainedPipeline;
use crate::report::Table;
use crate::roster::PolicyKind;
use crate::runner::{
    mix_speedup_pct, run_mix, run_roster_resilient, run_single, ResilientSweep, SweepOptions,
};
use crate::scale::Scale;
use crate::geomean_speedup_pct;

/// Fraction of a trace-driven replay excluded from measurement (model
/// cold-start; the 2 MB LLC needs a sizeable slice of the trace to fill).
const REPLAY_WARM_FRACTION: f64 = 0.5;

/// Replays a trace through the LLC-only model with `chooser`, skipping the
/// warm fraction, and returns the demand hit rate in percent.
fn replay_hit_rate(
    trace: &cache_sim::LlcTrace,
    cache: &cache_sim::CacheConfig,
    mut chooser: impl FnMut(&rl::DecisionView) -> u16,
) -> f64 {
    let mut model = LlcModel::new(cache, trace);
    let skip = (trace.len() as f64 * REPLAY_WARM_FRACTION) as usize;
    for (i, record) in trace.records().iter().enumerate() {
        if i == skip {
            model.reset_stats();
        }
        let _ = model.step(record, &mut chooser);
    }
    model.stats().demand_hit_rate() * 100.0
}

/// Belady hit rate on a trace (same measured window as [`replay_hit_rate`]).
fn belady_hit_rate(trace: &cache_sim::LlcTrace, cache: &cache_sim::CacheConfig) -> f64 {
    let mut model = LlcModel::new(cache, trace);
    let skip = (trace.len() as f64 * REPLAY_WARM_FRACTION) as usize;
    for (i, record) in trace.records().iter().enumerate() {
        if i == skip {
            model.reset_stats();
        }
        let _ = model.step_belady(record);
    }
    model.stats().demand_hit_rate() * 100.0
}

/// Figure 1: LLC demand hit rate for LRU, DRRIP, SHiP, SHiP++, Hawkeye and
/// RLR (full-hierarchy runs), plus the trained RL agent and Belady
/// (trace-driven replay, as in the paper's footnote 1), over the eight
/// training benchmarks.
pub fn fig1(scale: Scale) -> Table {
    let pipeline = TrainedPipeline::build(scale);
    let policies = [
        PolicyKind::Lru,
        PolicyKind::Drrip,
        PolicyKind::Ship,
        PolicyKind::ShipPp,
        PolicyKind::Hawkeye,
        PolicyKind::Rlr,
    ];
    let mut headers = vec!["benchmark".to_owned()];
    headers.extend(policies.iter().map(|p| p.name().to_owned()));
    headers.push("LRU*".to_owned());
    headers.push("RL*".to_owned());
    headers.push("Belady*".to_owned());
    let mut table = Table::new("Fig 1: LLC hit rate (%)", headers);

    for tb in &pipeline.benchmarks {
        let workload = spec2006(tb.name).expect("training benchmark");
        let mut row = vec![tb.name.to_owned()];
        for &p in &policies {
            let stats = run_single(&workload, p, scale);
            row.push(Table::fmt(stats.llc_hit_rate_pct()));
        }
        // Trace-driven LRU baseline: evict the line with the largest age.
        row.push(Table::fmt(replay_hit_rate(&tb.trace, &pipeline.cache, |v| {
            let mut victim = 0usize;
            for (w, line) in v.lines.iter().enumerate() {
                if line.age_since_last_access
                    > v.lines[victim].age_since_last_access
                {
                    victim = w;
                }
            }
            victim as u16
        })));
        let agent = &tb.agent;
        row.push(Table::fmt(replay_hit_rate(&tb.trace, &pipeline.cache, |v| {
            agent.decide_greedy(v)
        })));
        row.push(Table::fmt(belady_hit_rate(&tb.trace, &pipeline.cache)));
        table.push_row(row);
    }
    table.push_note(
        "Starred columns replay the captured trace in the LLC-only simulator (the paper's \
         footnote 1); compare RL*/Belady* against LRU*, not the full-hierarchy columns.",
    );
    table
}

/// Figure 3: heat map of first-layer weight magnitudes per feature (rows)
/// and training benchmark (columns). Higher = more important to the agent.
pub fn fig3(scale: Scale) -> Table {
    let pipeline = TrainedPipeline::build(scale);
    let mut headers = vec!["feature".to_owned()];
    headers.extend(pipeline.benchmarks.iter().map(|b| b.name.to_owned()));
    let mut table = Table::new("Fig 3: weight heat map (mean |w|)", headers);

    let maps: Vec<Vec<(rl::Feature, f64)>> = pipeline
        .benchmarks
        .iter()
        .map(|b| rl::analysis::weight_heatmap(&b.agent))
        .collect();
    // The agents observe the Table II features; rows follow the first
    // map's feature list (identical across agents).
    for (i, &(feature, _)) in maps[0].iter().enumerate() {
        let mut row = vec![feature.short_name().to_owned()];
        for map in &maps {
            row.push(format!("{:.4}", map[i].1));
        }
        table.push_row(row);
    }
    table.push_note("paper's top features: access preuse, line preuse, line last access type, line hits since insertion, line recency");
    table
}

/// Figure 4: distribution of |preuse − reuse| for reused lines, per
/// training benchmark.
pub fn fig4(scale: Scale) -> Table {
    let llc = cache_sim::SystemConfig::paper_single_core().llc;
    let mut table = Table::new(
        "Fig 4: |preuse - reuse| distribution (% of reused lines)",
        vec!["benchmark".into(), "<10".into(), "10-50".into(), ">50".into()],
    );
    for (name, trace) in crate::pipeline::training_traces(scale) {
        let gap = preuse_reuse_gap(&trace, &llc);
        let p = gap.percentages();
        table.push_row(vec![
            name.to_owned(),
            Table::fmt(p[0]),
            Table::fmt(p[1]),
            Table::fmt(p[2]),
        ]);
    }
    table
}

/// Figures 5–7 share one replay of the trained agent per benchmark.
fn victim_stats_table(scale: Scale, which: VictimFigure) -> Table {
    let pipeline = TrainedPipeline::build(scale);
    let ways = pipeline.cache.ways as usize;
    let mut table = match which {
        VictimFigure::AgeByType => Table::new(
            "Fig 5: average victim age by access type",
            vec!["benchmark".into(), "LOAD".into(), "RFO".into(), "PREFETCH".into(), "WRITEBACK".into()],
        ),
        VictimFigure::Hits => Table::new(
            "Fig 6: victims by hits at eviction (%)",
            vec!["benchmark".into(), "0 hits".into(), "1 hit".into(), ">1 hits".into()],
        ),
        VictimFigure::Recency => {
            let mut headers = vec!["benchmark".to_owned()];
            headers.extend((0..ways).map(|r| r.to_string()));
            Table::new("Fig 7: victim recency distribution (%)", headers)
        }
    };

    for tb in &pipeline.benchmarks {
        let agent = &tb.agent;
        let stats = collect_victim_stats(&tb.trace, &pipeline.cache, &mut |v| {
            agent.decide_greedy(v)
        });
        let mut row = vec![tb.name.to_owned()];
        match which {
            VictimFigure::AgeByType => {
                row.extend(stats.avg_age_by_kind().iter().map(|&v| Table::fmt(v)));
            }
            VictimFigure::Hits => {
                row.extend(stats.hits_percentages().iter().map(|&v| Table::fmt(v)));
            }
            VictimFigure::Recency => {
                row.extend(stats.recency_percentages().iter().map(|&v| Table::fmt(v)));
            }
        }
        table.push_row(row);
    }
    table
}

#[derive(Clone, Copy)]
enum VictimFigure {
    AgeByType,
    Hits,
    Recency,
}

/// Figure 5: average victim age (set accesses since last access), per
/// access type, for the trained agent's evictions.
pub fn fig5(scale: Scale) -> Table {
    victim_stats_table(scale, VictimFigure::AgeByType)
}

/// Figure 6: percentage of the agent's victims with 0, 1, and >1 hits.
pub fn fig6(scale: Scale) -> Table {
    victim_stats_table(scale, VictimFigure::Hits)
}

/// Figure 7: recency distribution of the agent's victims.
pub fn fig7(scale: Scale) -> Table {
    victim_stats_table(scale, VictimFigure::Recency)
}

/// Runs the full single-core sweep used by Figs. 10/12 and Table IV,
/// sharded over the worker pool (`RLR_JOBS` / available parallelism) with
/// failure isolation, retries, and per-cell resume (`RLR_RETRIES`,
/// `RLR_CHECKPOINT`; see [`SweepOptions::from_env`]). Failed cells appear
/// as `Err` and degrade to annotated gaps in the rendered tables.
pub fn single_core_sweep(benchmarks: &[&str], scale: Scale) -> ResilientSweep {
    let mut policies = vec![PolicyKind::Lru];
    policies.extend_from_slice(&PolicyKind::SINGLE_CORE);
    run_roster_resilient(benchmarks, &policies, scale, &SweepOptions::from_env())
        .expect("roster benchmark names are statically known")
}

/// Builds a speedup-over-LRU table from a resilient sweep, degrading
/// gracefully: a failed policy cell renders as `failed` (and is excluded
/// from the Overall geomean), a failed LRU baseline blanks its whole row,
/// and every failure is listed in a footnote.
pub fn speedup_table(title: &str, sweep: &ResilientSweep) -> Table {
    let mut headers = vec!["benchmark".to_owned()];
    headers.extend(PolicyKind::SINGLE_CORE.iter().map(|p| p.name().to_owned()));
    let mut table = Table::new(title, headers);
    let mut per_policy: Vec<Vec<f64>> = vec![Vec::new(); PolicyKind::SINGLE_CORE.len()];
    let mut failures: Vec<String> = Vec::new();
    for (name, runs) in sweep {
        let mut row = vec![name.clone()];
        match &runs[0].1 {
            Err(e) => {
                failures.push(format!("{name}/LRU: {}", e.kind));
                row.extend(std::iter::repeat("n/a".to_owned()).take(PolicyKind::SINGLE_CORE.len()));
            }
            Ok(lru) => {
                for (i, (policy, cell)) in runs[1..].iter().enumerate() {
                    match cell {
                        Ok(stats) => {
                            let s = stats.speedup_pct_over(lru);
                            per_policy[i].push(s);
                            row.push(Table::fmt(s));
                        }
                        Err(e) => {
                            failures.push(format!("{name}/{}: {}", policy.name(), e.kind));
                            row.push("failed".to_owned());
                        }
                    }
                }
            }
        }
        table.push_row(row);
    }
    let mut overall = vec!["Overall".to_owned()];
    for col in &per_policy {
        overall.push(Table::fmt(geomean_speedup_pct(col.iter().copied())));
    }
    table.push_row(overall);
    if !failures.is_empty() {
        table.push_note(format!(
            "failed cells (excluded from Overall): {}",
            failures.join("; ")
        ));
    }
    table
}

/// Figure 10: IPC speedup over LRU for all 29 SPEC CPU 2006 benchmarks.
pub fn fig10(scale: Scale) -> Table {
    let sweep = single_core_sweep(&SPEC2006, scale);
    speedup_table("Fig 10: IPC speedup over LRU (%), SPEC CPU 2006", &sweep)
}

/// Figure 11: IPC speedup over LRU for the CloudSuite benchmarks.
pub fn fig11(scale: Scale) -> Table {
    let sweep = single_core_sweep(&CLOUDSUITE, scale);
    speedup_table("Fig 11: IPC speedup over LRU (%), CloudSuite", &sweep)
}

/// Figure 12: demand MPKI for every benchmark whose LRU MPKI exceeds 3
/// (the paper's filter), all policies including LRU.
pub fn fig12(scale: Scale) -> Table {
    let sweep = single_core_sweep(&SPEC2006, scale);
    let mut headers = vec!["benchmark".to_owned(), "LRU".to_owned()];
    headers.extend(PolicyKind::SINGLE_CORE.iter().map(|p| p.name().to_owned()));
    let mut table = Table::new("Fig 12: demand MPKI (benchmarks with LRU MPKI > 3)", headers);
    let mut failures: Vec<String> = Vec::new();
    for (name, runs) in &sweep {
        let Ok(lru) = &runs[0].1 else {
            // Without the LRU baseline the MPKI filter can't be applied;
            // report the gap instead of silently dropping the benchmark.
            failures.push(format!("{name}/LRU"));
            continue;
        };
        let lru_mpki = lru.llc_demand_mpki();
        if lru_mpki <= 3.0 {
            continue;
        }
        let mut row = vec![name.clone(), Table::fmt(lru_mpki)];
        for (policy, cell) in &runs[1..] {
            match cell {
                Ok(stats) => row.push(Table::fmt(stats.llc_demand_mpki())),
                Err(_) => {
                    failures.push(format!("{name}/{}", policy.name()));
                    row.push("failed".to_owned());
                }
            }
        }
        table.push_row(row);
    }
    if !failures.is_empty() {
        table.push_note(format!("failed cells: {}", failures.join("; ")));
    }
    table
}

/// Figure 13: per-mix 4-core speedups over LRU for random SPEC mixes.
pub fn fig13(scale: Scale) -> Table {
    let mixes = random_spec_mixes(scale.mix_count(), 4, 2021);
    let mut headers = vec!["mix".to_owned(), "workloads".to_owned()];
    headers.extend(PolicyKind::MULTI_CORE.iter().map(|p| p.name().to_owned()));
    let mut table = Table::new("Fig 13: 4-core IPC speedup over LRU (%), SPEC mixes", headers);
    let mut per_policy: Vec<Vec<f64>> = vec![Vec::new(); PolicyKind::MULTI_CORE.len()];
    for mix in &mixes {
        let lru = run_mix(mix, PolicyKind::Lru, scale);
        let mut row = vec![
            mix.name().to_owned(),
            mix.workloads()
                .iter()
                .map(|w| w.name().split('.').next_back().unwrap_or(w.name()))
                .collect::<Vec<_>>()
                .join("+"),
        ];
        for (i, &p) in PolicyKind::MULTI_CORE.iter().enumerate() {
            let runs = run_mix(mix, p, scale);
            let s = mix_speedup_pct(&runs, &lru);
            per_policy[i].push(s);
            row.push(Table::fmt(s));
        }
        eprintln!("[fig13] {} done", mix.name());
        table.push_row(row);
    }
    let mut overall = vec!["Overall".to_owned(), String::new()];
    for col in &per_policy {
        overall.push(Table::fmt(geomean_speedup_pct(col.iter().copied())));
    }
    table.push_row(overall);
    table
}

