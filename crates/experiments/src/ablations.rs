//! RLR design-choice ablations (§V-B and §IV-C of the paper).

use cache_sim::{ReplacementPolicy, SingleCoreSystem, SystemConfig};
use rlr::{AgeUnit, RecencyMode, RlrConfig, RlrPolicy};
use workloads::{spec2006, TRAINING_SET};

use crate::geomean_speedup_pct;
use crate::report::Table;
use crate::scale::Scale;

/// Runs a workload with an explicitly configured policy (statically
/// dispatched — `P` monomorphizes the whole system).
fn run_with<P: ReplacementPolicy>(
    workload: &workloads::Workload,
    policy: P,
    scale: Scale,
) -> cache_sim::RunStats {
    let config = SystemConfig::paper_single_core();
    let mut system = SingleCoreSystem::new(&config, policy);
    let mut stream = workload.stream();
    system.warm_up(&mut stream, scale.warmup());
    system.run(stream, scale.instructions())
}

/// Geomean speedup over LRU of an RLR configuration across the training
/// benchmarks (the memory-sensitive subset, keeping ablations fast).
fn geomean_speedup(config: RlrConfig, scale: Scale) -> f64 {
    let system = SystemConfig::paper_single_core();
    geomean_speedup_pct(TRAINING_SET.iter().map(|&name| {
        let workload = spec2006(name).expect("training benchmark");
        let lru = run_with(&workload, cache_sim::TrueLru::new(&system.llc), scale);
        let stats = run_with(&workload, RlrPolicy::with_config(config, &system.llc), scale);
        stats.speedup_pct_over(&lru)
    }))
}

/// §V-B: contribution of the hit and type priorities. The paper reports
/// that disabling the hit register costs 12% of RLR's speedup and disabling
/// the type register costs 30%.
pub fn hit_type_ablation(scale: Scale) -> Table {
    let mut table = Table::new(
        "Ablation: hit/type priority contributions (training set)",
        vec!["variant".into(), "speedup over LRU (%)".into(), "share of full speedup (%)".into()],
    );
    let full = geomean_speedup(RlrConfig::optimized(), scale);
    let variants: Vec<(&str, RlrConfig)> = vec![
        ("RLR (full)", RlrConfig::optimized()),
        ("- hit priority", RlrConfig { use_hit_priority: false, ..RlrConfig::optimized() }),
        ("- type priority", RlrConfig { use_type_priority: false, ..RlrConfig::optimized() }),
        ("- both", RlrConfig {
            use_hit_priority: false,
            use_type_priority: false,
            ..RlrConfig::optimized()
        }),
    ];
    for (name, config) in variants {
        let s = geomean_speedup(config, scale);
        let share = if full.abs() < 1e-9 { 0.0 } else { s / full * 100.0 };
        table.push_row(vec![name.to_owned(), Table::fmt(s), Table::fmt(share)]);
    }
    table.push_note("paper: -12% of gain without hit register, -30% without type register");
    table
}

/// §IV-C: age-counter width sweep (2–8 bits on the unoptimized base).
pub fn age_bits_sweep(scale: Scale) -> Table {
    let mut table = Table::new(
        "Ablation: age counter width (unoptimized base)",
        vec!["age bits".into(), "speedup over LRU (%)".into()],
    );
    for bits in 2..=8u32 {
        let config = RlrConfig { age_bits: bits, ..RlrConfig::unoptimized() };
        table.push_row(vec![bits.to_string(), Table::fmt(geomean_speedup(config, scale))]);
    }
    table.push_note("paper picks 5 bits as the quality/cost knee");
    table
}

/// RD-multiplier sweep (the paper doubles the average preuse distance).
pub fn rd_multiplier_sweep(scale: Scale) -> Table {
    let mut table = Table::new(
        "Ablation: RD multiplier",
        vec!["multiplier".into(), "speedup over LRU (%)".into()],
    );
    for mult in [1.0, 1.5, 2.0, 3.0, 4.0] {
        let config = RlrConfig { rd_multiplier: mult, ..RlrConfig::optimized() };
        table.push_row(vec![format!("{mult:.1}"), Table::fmt(geomean_speedup(config, scale))]);
    }
    table.push_note("paper: x2 lets lines with preuse < reuse distance survive to their reuse");
    table
}

/// Demand-hit window sweep (RD update period; the paper uses 32).
pub fn window_sweep(scale: Scale) -> Table {
    let mut table = Table::new(
        "Ablation: RD demand-hit window",
        vec!["window".into(), "speedup over LRU (%)".into()],
    );
    for window in [8u32, 16, 32, 64, 128] {
        let config = RlrConfig { demand_hit_window: window, ..RlrConfig::optimized() };
        table.push_row(vec![window.to_string(), Table::fmt(geomean_speedup(config, scale))]);
    }
    table
}

/// Recency representation: exact log2(ways) bits vs the age==0
/// approximation, on both age units.
pub fn recency_mode_ablation(scale: Scale) -> Table {
    let mut table = Table::new(
        "Ablation: recency representation and age unit",
        vec!["variant".into(), "speedup over LRU (%)".into(), "overhead (KB)".into()],
    );
    let llc = SystemConfig::paper_single_core().llc;
    let variants: Vec<(&str, RlrConfig)> = vec![
        ("optimized (epochs + age-approx)", RlrConfig::optimized()),
        (
            "epochs + exact recency",
            RlrConfig { recency: RecencyMode::Exact, ..RlrConfig::optimized() },
        ),
        (
            "set accesses + age-approx",
            RlrConfig {
                age_unit: AgeUnit::SetAccesses,
                age_bits: 5,
                recency: RecencyMode::AgeApprox,
                ..RlrConfig::optimized()
            },
        ),
        ("unoptimized (accesses + exact)", RlrConfig::unoptimized()),
    ];
    for (name, config) in variants {
        let policy = RlrPolicy::with_config(config, &llc);
        let kb = policy.overhead_bits(&llc) as f64 / 8.0 / 1024.0;
        table.push_row(vec![
            name.to_owned(),
            Table::fmt(geomean_speedup(config, scale)),
            Table::fmt(kb),
        ]);
    }
    table
}

/// §V-B prefetcher study: KPC-R and RLR under the default IP-stride L2
/// prefetcher versus KPC-P. The paper reports that with KPC-P, KPC-R and
/// RLR improve by 3.9% and 5.5% respectively on SPEC — RLR stays ahead of
/// KPC-R even under KPC's own prefetcher.
pub fn kpc_prefetcher_comparison(scale: Scale) -> Table {
    use crate::roster::PolicyKind;
    let mut table = Table::new(
        "Ablation: L2 prefetcher study (SV-B) - speedup over LRU (%) on the training set",
        vec!["policy".into(), "IP-stride".into(), "KPC-P".into()],
    );
    let speedup = |policy: PolicyKind, kpc: bool| {
        let mut system = SystemConfig::paper_single_core();
        if kpc {
            system = system.with_kpc_prefetcher();
        }
        crate::geomean_speedup_pct(TRAINING_SET.iter().map(|&name| {
            let workload = spec2006(name).expect("training benchmark");
            let run = |kind: PolicyKind| {
                let mut sys = SingleCoreSystem::new(&system, kind.build(&system.llc, None));
                let mut stream = workload.stream();
                sys.warm_up(&mut stream, scale.warmup());
                sys.run(stream, scale.instructions())
            };
            run(policy).speedup_pct_over(&run(PolicyKind::Lru))
        }))
    };
    for policy in [PolicyKind::KpcR, PolicyKind::Rlr, PolicyKind::Drrip] {
        table.push_row(vec![
            policy.name().to_owned(),
            Table::fmt(speedup(policy, false)),
            Table::fmt(speedup(policy, true)),
        ]);
    }
    table.push_note("paper (full SPEC): with KPC-P, KPC-R gains 3.9% and RLR 5.5% over LRU");
    table
}

/// RL extensions the paper mentions but does not build: PC-augmented
/// features ("RL performance can be improved by including PC-based
/// features") and multiple agents partitioned over cache sets (§III-A).
/// Trains each variant on a subset of the training benchmarks and reports
/// trace-replay demand hit rates against Belady.
pub fn rl_extensions(scale: Scale) -> Table {
    use rl::{AgentConfig, FeatureSet, LlcModel, MultiAgentTrainer, Trainer};

    // A smaller model LLC (512 KB) that the scaled-down traces can warm;
    // only *relative* hit rates across agent variants matter here.
    let llc = cache_sim::CacheConfig { sets: 512, ways: 16, latency: 26 };
    let mut table = Table::new(
        "RL extensions: trace-replay demand hit rate (%)",
        vec![
            "benchmark".into(),
            "RL (Table II)".into(),
            "RL + PC features".into(),
            "RL x2 agents".into(),
            "Belady".into(),
        ],
    );
    // Two representative training benchmarks keep this affordable.
    for name in ["450.soplex", "483.xalancbmk"] {
        let workload = spec2006(name).expect("training benchmark");
        let trace = crate::runner::capture_llc_trace(&workload, scale, scale.rl_trace_len())
            .expect("capture is enabled for the whole run");
        let epochs = scale.rl_epochs().min(3);

        let base_config = AgentConfig {
            hidden: scale.rl_hidden().min(64),
            seed: 0x5EED_0001,
            features: FeatureSet::full(),
            ..AgentConfig::default()
        };
        let mut base = Trainer::new(base_config, &llc);
        for _ in 0..epochs {
            let _ = base.train_epoch(&trace, &llc);
        }
        let base_rate = base.evaluate(&trace, &llc).demand_hit_rate() * 100.0;

        let pc_config = AgentConfig { features: FeatureSet::full_with_pc(), ..base_config };
        let mut with_pc = Trainer::new(pc_config, &llc);
        for _ in 0..epochs {
            let _ = with_pc.train_epoch(&trace, &llc);
        }
        let pc_rate = with_pc.evaluate(&trace, &llc).demand_hit_rate() * 100.0;

        let mut multi = MultiAgentTrainer::new(2, base_config, &llc);
        for _ in 0..epochs {
            let _ = multi.train_epoch(&trace, &llc);
        }
        let multi_rate = multi.evaluate(&trace, &llc).demand_hit_rate() * 100.0;

        let mut opt = LlcModel::new(&llc, &trace);
        let belady = opt.run_belady(&trace).demand_hit_rate() * 100.0;

        table.push_row(vec![
            name.to_owned(),
            Table::fmt(base_rate),
            Table::fmt(pc_rate),
            Table::fmt(multi_rate),
            Table::fmt(belady),
        ]);
        eprintln!("[rl-ext] {name} done");
    }
    table.push_note("extensions the paper mentions (SIII-A / SI) but leaves unbuilt");
    table
}

/// §III-B: greedy forward feature selection. The paper's hill climb over
/// the Table II features converged on five: access preuse, line preuse,
/// line last access type, line hits since insertion, and line recency.
/// This reruns the procedure on (scaled-down) captured traces.
///
/// The search model uses a smaller LLC than Table III so that short traces
/// warm it: feature *rankings* transfer across sizes, which is all the
/// selection needs.
pub fn hill_climb_selection(scale: Scale) -> Table {
    let small_llc = cache_sim::CacheConfig { sets: 256, ways: 16, latency: 26 };
    let mut table = Table::new(
        "Hill climbing feature selection (SIII-B)",
        vec!["round".into(), "feature added".into(), "demand hit rate (%)".into()],
    );
    let names = ["450.soplex", "471.omnetpp", "483.xalancbmk"];
    let mut traces = Vec::new();
    for name in names {
        let workload = spec2006(name).expect("training benchmark");
        let mut trace = crate::runner::capture_llc_trace(&workload, scale, scale.hill_trace_len())
            .expect("capture is enabled for the whole run");
        trace.truncate(scale.hill_trace_len());
        traces.push((name, trace));
    }
    let refs: Vec<(&str, &cache_sim::LlcTrace)> =
        traces.iter().map(|(n, t)| (*n, t)).collect();
    let rounds = rl::analysis::hill_climb(&refs, &small_llc, scale.hill_max_features(), 1, 0xC11B);
    for (i, round) in rounds.iter().enumerate() {
        table.push_row(vec![
            (i + 1).to_string(),
            round.added.to_string(),
            Table::fmt(round.score * 100.0),
        ]);
    }
    table.push_note(
        "paper's converged set: access preuse, line preuse, line last access type, \
         line hits since insertion, line recency",
    );
    table
}

/// Every ablation, in sequence.
pub fn all(scale: Scale) -> Vec<Table> {
    vec![
        hit_type_ablation(scale),
        age_bits_sweep(scale),
        rd_multiplier_sweep(scale),
        window_sweep(scale),
        recency_mode_ablation(scale),
        kpc_prefetcher_comparison(scale),
    ]
}
