//! The shared RL pipeline: captured traces and trained agents per training
//! benchmark, cached on disk so the five RL-driven figures don't retrain.

use std::fs;
use std::path::PathBuf;

use cache_sim::{CacheConfig, LlcTrace, SystemConfig};
use rl::{Agent, AgentConfig, FeatureSet, Mlp, Trainer};
use workloads::TRAINING_SET;

use crate::checkpoint::write_atomic;
use crate::report::results_dir;
use crate::scale::Scale;

/// One benchmark's trace and trained agent.
pub struct TrainedBenchmark {
    /// Benchmark name (e.g. `"429.mcf"`).
    pub name: &'static str,
    /// The captured LLC access trace.
    pub trace: LlcTrace,
    /// The trained agent.
    pub agent: Agent,
}

/// The full trained pipeline over the paper's eight training benchmarks.
pub struct TrainedPipeline {
    /// LLC geometry the agents were trained for.
    pub cache: CacheConfig,
    /// Per-benchmark artifacts, in [`TRAINING_SET`] order.
    pub benchmarks: Vec<TrainedBenchmark>,
}

/// The agent configuration used by the pipeline at a given scale.
pub fn agent_config(scale: Scale) -> AgentConfig {
    AgentConfig {
        hidden: scale.rl_hidden(),
        features: FeatureSet::full(),
        seed: 0x524C_5231, // "RLR1"
        ..AgentConfig::default()
    }
}

fn cache_dir() -> PathBuf {
    results_dir().join("cache")
}

fn net_path(name: &str, scale: Scale) -> PathBuf {
    cache_dir().join(format!("{}_{}.mlp", name.replace('.', "_"), scale))
}

fn train_ck_path(name: &str, scale: Scale) -> PathBuf {
    cache_dir().join(format!("{}_{}.ck", name.replace('.', "_"), scale))
}

/// Captures (or loads from cache) the LLC traces of the eight training
/// benchmarks without training agents — enough for the trace-only
/// statistics (Fig. 4).
pub fn training_traces(scale: Scale) -> Vec<(&'static str, LlcTrace)> {
    let _ = fs::create_dir_all(cache_dir());
    let retrain = std::env::var("RLR_RETRAIN").is_ok();
    TRAINING_SET
        .iter()
        .map(|&name| (name, TrainedPipeline::load_or_capture_trace(name, scale, retrain)))
        .collect()
}

impl TrainedPipeline {
    /// Builds (or loads from the on-disk cache) the traces and trained
    /// agents for all eight training benchmarks. Progress is logged to
    /// stderr; set `RLR_RETRAIN=1` to ignore the cache.
    pub fn build(scale: Scale) -> Self {
        let system = SystemConfig::paper_single_core();
        let cache = system.llc;
        let retrain = std::env::var("RLR_RETRAIN").is_ok();
        let _ = fs::create_dir_all(cache_dir());

        let benchmarks = TRAINING_SET
            .iter()
            .map(|&name| {
                let trace = Self::load_or_capture_trace(name, scale, retrain);
                let agent = Self::load_or_train_agent(name, scale, &cache, &trace, retrain);
                TrainedBenchmark { name, trace, agent }
            })
            .collect();
        Self { cache, benchmarks }
    }

    fn load_or_capture_trace(name: &'static str, scale: Scale, retrain: bool) -> LlcTrace {
        // The corpus handles the whole resolution chain: an existing
        // compressed container, migration of this module's old
        // `results/cache/*.trace` files, or a fresh capture published
        // atomically.
        crate::corpus::load_or_capture(name, scale, retrain)
            .unwrap_or_else(|e| panic!("[pipeline] {name}: trace unavailable: {e}"))
    }

    fn load_or_train_agent(
        name: &'static str,
        scale: Scale,
        cache: &CacheConfig,
        trace: &LlcTrace,
        retrain: bool,
    ) -> Agent {
        let config = agent_config(scale);
        let path = net_path(name, scale);
        if !retrain {
            if let Ok(f) = fs::File::open(&path) {
                if let Ok(net) = Mlp::load(std::io::BufReader::new(f)) {
                    if net.hidden() == config.hidden && net.outputs() == cache.ways as usize {
                        eprintln!("[pipeline] {name}: loaded cached agent");
                        return Agent::from_net(config, cache, net);
                    }
                }
            }
        }
        let ck_path = train_ck_path(name, scale);
        // Resume an interrupted training run from its epoch checkpoint;
        // the checkpoint stores the full trainer state, so the resumed run
        // is bit-identical to one that never stopped.
        let mut trainer = None;
        let mut start_epoch = 0usize;
        if !retrain {
            if let Ok(f) = fs::File::open(&ck_path) {
                match Trainer::load_checkpoint(std::io::BufReader::new(f), cache) {
                    Ok((t, done)) if *t.agent().config() == config => {
                        eprintln!("[pipeline] {name}: resuming training after epoch {done}");
                        start_epoch = done as usize;
                        trainer = Some(t);
                    }
                    Ok(_) => eprintln!("[pipeline] {name}: checkpoint config mismatch; retraining"),
                    Err(e) => eprintln!("[pipeline] {name}: unusable checkpoint ({e}); retraining"),
                }
            }
        }
        let mut trainer = trainer.unwrap_or_else(|| Trainer::new(config, cache));
        eprintln!(
            "[pipeline] {name}: training agent (epochs {start_epoch}..{})...",
            scale.rl_epochs()
        );
        for epoch in start_epoch..scale.rl_epochs() {
            let report = trainer.train_epoch(trace, cache);
            eprintln!(
                "[pipeline] {name}: epoch {epoch}: hit rate {:.1}%, {:.1}% Belady-optimal decisions",
                report.stats.demand_hit_rate() * 100.0,
                report.optimal_rate() * 100.0,
            );
            let mut bytes = Vec::new();
            if trainer.save_checkpoint(&mut bytes, epoch as u64 + 1).is_ok() {
                let _ = write_atomic(&ck_path, &bytes);
            }
        }
        let agent = trainer.into_agent();
        let mut bytes = Vec::new();
        if agent.net().save(&mut bytes).is_ok() {
            let _ = write_atomic(&path, &bytes);
        }
        // The finished network supersedes the in-progress checkpoint.
        let _ = fs::remove_file(&ck_path);
        agent
    }
}
