//! Performance-over-time tracking: turns the bench targets' JSON
//! artifacts (`results/bench/<target>.json`) into an append-only history
//! and a trend table, so throughput regressions show up as a report, not
//! as an archaeology project over old terminal scrollback.

use std::fs;
use std::io::Write;
use std::path::PathBuf;

use crate::json::Json;
use crate::report::{results_dir, Table};

/// One benchmark row extracted from a bench target's JSON artifact.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BenchRow {
    /// Row name, e.g. `llc_replay/Rlr/packed`.
    pub name: String,
    /// Median nanoseconds per iteration.
    pub median_ns: u64,
    /// Median throughput in accesses per second.
    pub accesses_per_sec: u64,
}

/// One recorded point of a target's performance history.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Snapshot {
    /// The bench target (e.g. `hotpath`, `ci_smoke`).
    pub target: String,
    /// Caller-supplied label (a commit, a date, `ci`...).
    pub label: String,
    /// The rows at that point.
    pub rows: Vec<BenchRow>,
}

fn bench_dir() -> PathBuf {
    results_dir().join("bench")
}

fn history_path() -> PathBuf {
    bench_dir().join("history.jsonl")
}

fn parse_rows(doc: &Json) -> Option<Vec<BenchRow>> {
    let rows = doc.get("rows")?.as_arr()?;
    let mut out = Vec::with_capacity(rows.len());
    for row in rows {
        out.push(BenchRow {
            name: row.get("name")?.as_str()?.to_owned(),
            median_ns: row.get("median_ns")?.as_u64()?,
            accesses_per_sec: row.get("accesses_per_sec")?.as_u64()?,
        });
    }
    Some(out)
}

/// Loads the *current* rows of a bench target from
/// `results/bench/<target>.json`, or `None` if the target has not been
/// run (or wrote something unparseable).
pub fn load_bench_rows(target: &str) -> Option<Vec<BenchRow>> {
    let text = fs::read_to_string(bench_dir().join(format!("{target}.json"))).ok()?;
    parse_rows(&Json::parse(&text).ok()?)
}

fn snapshot_json(snapshot: &Snapshot) -> Json {
    Json::obj([
        ("target", Json::Str(snapshot.target.clone())),
        ("label", Json::Str(snapshot.label.clone())),
        (
            "rows",
            Json::Arr(
                snapshot
                    .rows
                    .iter()
                    .map(|r| {
                        Json::obj([
                            ("name", Json::Str(r.name.clone())),
                            ("median_ns", Json::U64(r.median_ns)),
                            ("accesses_per_sec", Json::U64(r.accesses_per_sec)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

fn parse_snapshot(line: &str) -> Option<Snapshot> {
    let doc = Json::parse(line).ok()?;
    Some(Snapshot {
        target: doc.get("target")?.as_str()?.to_owned(),
        label: doc.get("label")?.as_str()?.to_owned(),
        rows: parse_rows(&doc)?,
    })
}

/// Appends the target's current bench rows to the history
/// (`results/bench/history.jsonl`, one JSON object per line) under
/// `label`. Returns the recorded snapshot.
///
/// # Errors
///
/// Returns `Ok(None)` when the target has no parseable JSON artifact, or
/// an I/O error if the history file cannot be appended.
pub fn record_snapshot(target: &str, label: &str) -> std::io::Result<Option<Snapshot>> {
    let Some(rows) = load_bench_rows(target) else {
        return Ok(None);
    };
    let snapshot =
        Snapshot { target: target.to_owned(), label: label.to_owned(), rows };
    fs::create_dir_all(bench_dir())?;
    let mut f = fs::OpenOptions::new().create(true).append(true).open(history_path())?;
    // JSONL: `Json::encode` emits no raw newlines, so one line per record.
    writeln!(f, "{}", snapshot_json(&snapshot).encode().replace('\n', " "))?;
    Ok(Some(snapshot))
}

/// Loads the recorded history of one target, oldest first. Corrupt or
/// foreign lines are skipped — a torn append must not take down the
/// report.
pub fn history(target: &str) -> Vec<Snapshot> {
    let Ok(text) = fs::read_to_string(history_path()) else {
        return Vec::new();
    };
    text.lines()
        .filter_map(parse_snapshot)
        .filter(|s| s.target == target)
        .collect()
}

/// How many history points the trend table shows.
const TREND_WINDOW: usize = 5;

/// Builds the perf-over-time table for one target: one row per benchmark
/// name, one column per recorded snapshot (most recent [`TREND_WINDOW`]),
/// plus the relative change of the latest snapshot against the previous
/// one. Returns `None` when nothing has been recorded.
pub fn trend_table(target: &str) -> Option<Table> {
    let all = history(target);
    if all.is_empty() {
        return None;
    }
    let window = &all[all.len().saturating_sub(TREND_WINDOW)..];
    let latest = window.last().expect("window is non-empty");
    let mut headers = vec!["Benchmark".to_owned()];
    headers.extend(window.iter().map(|s| format!("{} (Macc/s)", s.label)));
    headers.push("Δ vs prev".to_owned());
    let mut table = Table::new(format!("Perf over time: {target}"), headers);
    let lookup = |s: &Snapshot, name: &str| -> Option<u64> {
        s.rows.iter().find(|r| r.name == name).map(|r| r.accesses_per_sec)
    };
    for row in &latest.rows {
        let mut cells = vec![row.name.clone()];
        for s in window {
            cells.push(match lookup(s, &row.name) {
                Some(aps) => Table::fmt(aps as f64 / 1e6),
                None => "-".to_owned(),
            });
        }
        let delta = if window.len() >= 2 {
            match lookup(&window[window.len() - 2], &row.name) {
                Some(prev) if prev > 0 => {
                    let pct = (row.accesses_per_sec as f64 / prev as f64 - 1.0) * 100.0;
                    format!("{pct:+.1}%")
                }
                _ => "-".to_owned(),
            }
        } else {
            "-".to_owned()
        };
        cells.push(delta);
        table.push_row(cells);
    }
    table.push_note(format!(
        "{} snapshot(s) recorded; latest label `{}`. Record with `rlr perf-report --record <label>` \
         after a bench run.",
        all.len(),
        latest.label
    ));
    Some(table)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_lines_round_trip() {
        let snap = Snapshot {
            target: "hotpath".to_owned(),
            label: "pr-5".to_owned(),
            rows: vec![
                BenchRow { name: "a".to_owned(), median_ns: 10, accesses_per_sec: 1_000_000 },
                BenchRow { name: "b".to_owned(), median_ns: 20, accesses_per_sec: 500_000 },
            ],
        };
        let line = snapshot_json(&snap).encode().replace('\n', " ");
        assert_eq!(parse_snapshot(&line), Some(snap));
    }

    #[test]
    fn corrupt_history_lines_are_skipped() {
        assert_eq!(parse_snapshot("{not json"), None);
        assert_eq!(parse_snapshot(r#"{"target": "x"}"#), None, "missing fields");
    }
}
