//! Tables I and IV of the paper.

use cache_sim::{CacheConfig, ReplacementPolicy};
use workloads::{cloudsuite, random_spec_mixes, CLOUDSUITE, SPEC2006};

use crate::figures::single_core_sweep;
use crate::report::Table;
use crate::roster::PolicyKind;
use crate::runner::{mix_speedup_pct, run_mix};
use crate::scale::Scale;
use crate::geomean_speedup_pct;

/// Table I: hardware overhead per policy in a 16-way 2 MB LLC. Implemented
/// policies report their actual metadata accounting; MPPPB and Glider are
/// quoted from the literature (the paper compares against them only here).
pub fn table1() -> Table {
    let llc = CacheConfig::with_capacity_kb(2048, 16, 26);
    let mut table = Table::new(
        "Table I: hardware overhead (16-way 2MB LLC)",
        vec!["policy".into(), "uses PC".into(), "overhead (KB)".into(), "paper (KB)".into()],
    );
    let kb = |p: &dyn ReplacementPolicy| p.overhead_bits(&llc) as f64 / 8.0 / 1024.0;
    let rows: Vec<(PolicyKind, &str)> = vec![
        (PolicyKind::Lru, "16"),
        (PolicyKind::Drrip, "8"),
        (PolicyKind::KpcR, "8.57"),
        (PolicyKind::Mpppb, "28"),
        (PolicyKind::Ship, "14"),
        (PolicyKind::ShipPp, "20"),
        (PolicyKind::Hawkeye, "28"),
        (PolicyKind::Glider, "61.6"),
        (PolicyKind::Rlr, "16.75"),
        (PolicyKind::RlrUnopt, "40"),
        (PolicyKind::CounterBased, "-"),
        (PolicyKind::Srrip, "-"),
        (PolicyKind::Brrip, "-"),
        (PolicyKind::Fifo, "-"),
        (PolicyKind::Pdp, "-"),
        (PolicyKind::Eva, "-"),
        (PolicyKind::Random, "-"),
    ];
    for (kind, paper) in rows {
        let policy = kind.build(&llc, None);
        table.push_row(vec![
            kind.name().to_owned(),
            if kind.uses_pc() { "yes" } else { "no" }.to_owned(),
            format!("{:.2}", kb(&policy)),
            paper.to_owned(),
        ]);
    }
    table.push_note(
        "Glider's paper budget (61.6 KB) includes larger tables than this implementation's; \
         rows marked '-' have no Table I entry in the paper.",
    );
    table
}

/// Table IV: overall geometric-mean IPC speedup over LRU for 1-core
/// (2 MB LLC) and 4-core (8 MB LLC) systems, on SPEC CPU 2006 and
/// CloudSuite.
pub fn table4(scale: Scale) -> Table {
    let mut table = Table::new(
        "Table IV: overall speedup over LRU (%)",
        vec![
            "policy".into(),
            "1-core SPEC".into(),
            "1-core Cloud".into(),
            "4-core SPEC".into(),
            "4-core Cloud".into(),
        ],
    );

    // Single-core sweeps. Failed cells (or a failed LRU baseline) are
    // dropped from the geomean rather than aborting the whole table.
    let spec = single_core_sweep(&SPEC2006, scale);
    let cloud = single_core_sweep(&CLOUDSUITE, scale);
    let overall_1c = |sweep: &crate::runner::ResilientSweep, kind: PolicyKind| {
        geomean_speedup_pct(sweep.iter().filter_map(|(_, runs)| {
            let lru = runs[0].1.as_ref().ok()?;
            runs.iter()
                .find(|(p, _)| *p == kind)
                .expect("policy in sweep")
                .1
                .as_ref()
                .ok()
                .map(|s| s.speedup_pct_over(lru))
        }))
    };

    // Multi-core: random SPEC mixes + homogeneous CloudSuite mixes.
    let spec_mixes = random_spec_mixes(scale.mix_count(), 4, 2021);
    let cloud_mixes: Vec<workloads::WorkloadMix> = CLOUDSUITE
        .iter()
        .map(|name| {
            let wl = cloudsuite(name).expect("cloud benchmark");
            workloads::WorkloadMix::new(
                format!("cloud-{name}"),
                (0..4).map(|i| wl.clone().with_seed(wl.seed() ^ i)).collect(),
            )
        })
        .collect();

    let mc_speedups = |mixes: &[workloads::WorkloadMix], kind: PolicyKind| {
        geomean_speedup_pct(mixes.iter().map(|mix| {
            let lru = run_mix(mix, PolicyKind::Lru, scale);
            let runs = run_mix(mix, kind, scale);
            mix_speedup_pct(&runs, &lru)
        }))
    };

    // The paper's Table IV rows.
    let rows: Vec<(PolicyKind, PolicyKind)> = vec![
        // (single-core variant, multicore variant)
        (PolicyKind::Drrip, PolicyKind::Drrip),
        (PolicyKind::KpcR, PolicyKind::KpcR),
        (PolicyKind::Rlr, PolicyKind::RlrMulticore),
        (PolicyKind::RlrUnopt, PolicyKind::RlrUnopt),
        (PolicyKind::Ship, PolicyKind::Ship),
        (PolicyKind::Hawkeye, PolicyKind::Hawkeye),
        (PolicyKind::ShipPp, PolicyKind::ShipPp),
    ];
    for (single, multi) in rows {
        eprintln!("[table4] {}", single.name());
        table.push_row(vec![
            if single == PolicyKind::RlrUnopt { "RLR(unopt)".to_owned() } else { single.name().to_owned() },
            Table::fmt(overall_1c(&spec, single)),
            Table::fmt(overall_1c(&cloud, single)),
            Table::fmt(mc_speedups(&spec_mixes, multi)),
            Table::fmt(mc_speedups(&cloud_mixes, multi)),
        ]);
    }
    table
}
