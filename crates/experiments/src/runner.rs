//! Simulation drivers shared by every experiment, including the sharded
//! parallel roster runner.
//!
//! # Determinism
//!
//! [`run_single`] is a pure function of `(workload, policy, scale)`: every
//! random stream is owned by the workload and seeded from its definition,
//! never from global state or scheduling order. The parallel runner
//! exploits this — each (workload, policy) task is independent, results
//! land in pre-assigned slots, and the output of
//! [`run_roster_parallel`] is byte-identical to a serial sweep regardless
//! of worker count or interleaving.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use cache_sim::{LlcTrace, MultiCoreSystem, RunStats, SingleCoreSystem, SystemConfig};
use workloads::{cloudsuite, spec2006, Workload, WorkloadMix};

use crate::roster::PolicyKind;
use crate::scale::Scale;

/// Runs one workload on the paper's single-core system with the given LLC
/// policy, honouring the scale's warm-up/measure split.
pub fn run_single(workload: &Workload, policy: PolicyKind, scale: Scale) -> RunStats {
    let config = SystemConfig::paper_single_core();
    let mut system = SingleCoreSystem::new(&config, policy.build(&config.llc, None));
    let mut stream = workload.stream();
    system.warm_up(&mut stream, scale.warmup());
    system.run(stream, scale.instructions())
}

/// Runs a workload once with LRU and captures its LLC access trace
/// (`max_records` records, collected after warm-up), for the trace-driven
/// pipeline (RL training, Belady, Figs. 1 and 3–7).
///
/// The capture is policy-invariant: the LLC access stream does not depend
/// on the LLC replacement policy in this simulator.
pub fn capture_llc_trace(workload: &Workload, scale: Scale, max_records: usize) -> LlcTrace {
    let config = SystemConfig::paper_single_core();
    let mut system = SingleCoreSystem::new(&config, PolicyKind::Lru.build(&config.llc, None));
    let mut stream = workload.stream();
    system.warm_up(&mut stream, scale.warmup() / 2);
    let base = system.llc().accesses_seen();
    system.llc_mut().enable_capture();
    // Run in slices until enough LLC records accumulate (memory-bound
    // workloads need far fewer instructions than cache-friendly ones).
    let mut instructions = 0u64;
    loop {
        instructions += 1_000_000;
        let _ = system.run(&mut stream, instructions);
        let captured = system.llc().accesses_seen() - base;
        if captured as usize >= max_records || instructions >= 40 * scale.instructions() {
            break;
        }
    }
    let mut trace = system.llc_mut().take_capture().expect("capture enabled");
    trace.truncate(max_records);
    trace
}

/// Runs a 4-core mix on the paper's quad-core system; returns per-core
/// statistics.
pub fn run_mix(mix: &WorkloadMix, policy: PolicyKind, scale: Scale) -> Vec<RunStats> {
    let config = SystemConfig::paper_quad_core();
    let streams = mix
        .workloads()
        .iter()
        .enumerate()
        .map(|(core, wl)| {
            // Distinct per-core seeds keep identical benchmarks from
            // running in lockstep; a per-core PC salt models distinct
            // binaries/address spaces (without it, every synthetic
            // workload allocates PCs from the same base and cross-core
            // collisions poison shared PC-indexed predictors).
            let seeded = wl.clone().with_seed(wl.seed() ^ (core as u64 + 1).wrapping_mul(0x9E37));
            let pc_salt = (core as u64 + 1) << 44;
            Box::new(seeded.stream().map(move |mut e| {
                e.pc ^= pc_salt;
                e
            })) as Box<dyn Iterator<Item = workloads::TraceEntry> + Send>
        })
        .collect();
    let mut system = MultiCoreSystem::new(&config, policy.build(&config.llc, None), streams);
    system.run(scale.mc_warmup(), scale.mc_instructions())
}

/// Resolves the experiment worker count: an explicit `jobs` wins, then the
/// `RLR_JOBS` environment variable, then the machine's available
/// parallelism (1 if that cannot be determined).
pub fn resolve_jobs(jobs: Option<usize>) -> usize {
    jobs.filter(|&j| j > 0)
        .or_else(|| {
            std::env::var("RLR_JOBS").ok().and_then(|v| v.trim().parse().ok()).filter(|&j| j > 0)
        })
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()))
}

/// Applies `f` to every item on a pool of `jobs` scoped threads.
///
/// Work is handed out through an atomic cursor (a sharded work queue, so
/// an expensive item does not stall the others) and each result is written
/// to the slot of its input: the returned vector matches input order
/// exactly, independent of scheduling. A panicking task propagates when
/// the scope joins.
pub fn run_tasks_parallel<T, R, F>(items: &[T], jobs: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let jobs = jobs.clamp(1, items.len().max(1));
    if jobs == 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let cursor = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(item) = items.get(i) else { break };
                let result = f(i, item);
                *slots[i].lock().expect("slot lock") = Some(result);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| slot.into_inner().expect("slot lock").expect("worker filled slot"))
        .collect()
}

/// Runs the full `benchmarks` × `policies` roster on a worker pool and
/// regroups the results per benchmark, preserving both input orders.
///
/// `jobs: None` defers to [`resolve_jobs`] (so `RLR_JOBS=1` forces a
/// serial run). Output is identical to the equivalent nested serial loop.
pub fn run_roster_parallel(
    benchmarks: &[&str],
    policies: &[PolicyKind],
    scale: Scale,
    jobs: Option<usize>,
) -> Vec<(String, Vec<(PolicyKind, RunStats)>)> {
    let tasks: Vec<(usize, usize)> = (0..benchmarks.len())
        .flat_map(|b| (0..policies.len()).map(move |p| (b, p)))
        .collect();
    let stats = run_tasks_parallel(&tasks, resolve_jobs(jobs), |_, &(b, p)| {
        let name = benchmarks[b];
        let workload = spec2006(name)
            .or_else(|| cloudsuite(name))
            .unwrap_or_else(|| panic!("unknown benchmark {name}"));
        let out = run_single(&workload, policies[p], scale);
        eprintln!("[sweep] {name}/{} done", policies[p].name());
        out
    });
    benchmarks
        .iter()
        .enumerate()
        .map(|(b, &name)| {
            let runs = policies
                .iter()
                .enumerate()
                .map(|(p, &policy)| (policy, stats[b * policies.len() + p].clone()))
                .collect();
            (name.to_owned(), runs)
        })
        .collect()
}

/// The paper's multicore per-mix metric: the geometric mean over cores of
/// each core's IPC speedup versus the same core under LRU.
pub fn mix_speedup_pct(policy_runs: &[RunStats], lru_runs: &[RunStats]) -> f64 {
    assert_eq!(policy_runs.len(), lru_runs.len(), "core counts must match");
    let mut log_sum = 0.0;
    for (p, l) in policy_runs.iter().zip(lru_runs) {
        log_sum += (p.ipc() / l.ipc()).ln();
    }
    ((log_sum / policy_runs.len() as f64).exp() - 1.0) * 100.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::spec2006;

    /// A scale smaller than `Scale::Small` is not exposed publicly; tests
    /// use Small but with the cheapest benchmark.
    #[test]
    fn capture_produces_bounded_trace() {
        let wl = spec2006("429.mcf").expect("known benchmark");
        let trace = capture_llc_trace(&wl, Scale::Small, 5_000);
        assert!(trace.len() <= 5_000);
        assert!(trace.len() >= 4_000, "mcf floods the LLC: got {}", trace.len());
    }

    #[test]
    fn mix_speedup_is_zero_against_itself() {
        let stats = RunStats { instructions: 100, cycles: 50, ..RunStats::default() };
        let s = mix_speedup_pct(&[stats, stats], &[stats, stats]);
        assert!(s.abs() < 1e-9);
    }
}
