//! Simulation drivers shared by every experiment, including the sharded
//! parallel roster runner.
//!
//! # Determinism
//!
//! [`run_single`] is a pure function of `(workload, policy, scale)`: every
//! random stream is owned by the workload and seeded from its definition,
//! never from global state or scheduling order. The parallel runner
//! exploits this — each (workload, policy) task is independent, results
//! land in pre-assigned slots, and the output of
//! [`run_roster_parallel`] is byte-identical to a serial sweep regardless
//! of worker count or interleaving.
//!
//! # Fault tolerance
//!
//! [`run_tasks_resilient`] isolates each task behind `catch_unwind`: a
//! panicking cell becomes a structured [`TaskFailure`] instead of
//! poisoning the pool, with bounded deterministic retry
//! ([`RunOptions::retries`]) and an optional logical work-unit watchdog
//! ([`RunOptions::budget`], ticked by cooperative loops via
//! [`watchdog_tick`]) that aborts runaway tasks without wall-clock timers.
//! [`run_roster_resilient`] layers per-cell checkpoints on top
//! ([`crate::checkpoint`]) so interrupted sweeps resume. All failure paths
//! are exercised deterministically through [`crate::fault::FailPlan`].

use std::cell::Cell;
use std::panic::AssertUnwindSafe;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, PoisonError};

use cache_sim::{
    Access, AccessKind, AccessOutcome, CoreHierarchy, DataRequest, DramTiming, LlcRecord, LlcTrace,
    MultiCoreSystem, ReplacementPolicy, RunStats, ServiceLevel, SetAssocCache, SharedLlc,
    SingleCoreSystem, SystemConfig, TimingMode, TimingModel,
};
use workloads::{cloudsuite, spec2006, Workload, WorkloadMix};

use crate::checkpoint;
use crate::fault::{FailPlan, FaultKind};
use crate::roster::PolicyKind;
use crate::scale::Scale;

/// An error preventing a task from being *started* (as opposed to a
/// [`TaskFailure`], which is a task that started and died).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RunnerError {
    /// A benchmark name matched neither the SPEC nor the CloudSuite
    /// roster. Detected up front, before any worker runs.
    UnknownBenchmark(String),
    /// The LLC model produced no capture buffer (capture was not enabled
    /// or was already taken).
    CaptureUnavailable,
}

impl std::fmt::Display for RunnerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::UnknownBenchmark(name) => write!(f, "unknown benchmark `{name}`"),
            Self::CaptureUnavailable => write!(f, "LLC capture buffer unavailable"),
        }
    }
}

impl std::error::Error for RunnerError {}

/// Why one task attempt (and, after retries, the whole task) failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FailureKind {
    /// The task panicked; carries the panic message.
    Panicked(String),
    /// The task exceeded its logical work-unit budget (see
    /// [`watchdog_tick`]).
    BudgetExceeded {
        /// The budget that was exhausted, in work units.
        budget: u64,
    },
}

impl std::fmt::Display for FailureKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Panicked(msg) => write!(f, "panicked: {msg}"),
            Self::BudgetExceeded { budget } => {
                write!(f, "exceeded work budget of {budget} units")
            }
        }
    }
}

/// A task that failed every attempt. The pool keeps running; the failure
/// is returned in the task's slot for the caller to report or degrade on.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TaskFailure {
    /// The task's index in the pool's input slice.
    pub index: usize,
    /// How many attempts were made (1 + retries).
    pub attempts: u32,
    /// The final attempt's failure.
    pub kind: FailureKind,
}

impl std::fmt::Display for TaskFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "task {} failed after {} attempt(s): {}", self.index, self.attempts, self.kind)
    }
}

impl std::error::Error for TaskFailure {}

/// Failure-handling knobs for [`run_tasks_resilient`].
#[derive(Debug)]
pub struct RunOptions {
    /// Retries after the first failed attempt (total attempts = 1 + this).
    pub retries: u32,
    /// Base backoff before retry `n` (delay = `backoff_ms << (n-1)`,
    /// capped at 10 s). Zero disables sleeping entirely.
    pub backoff_ms: u64,
    /// Logical work-unit budget per attempt; `None` disables the watchdog.
    pub budget: Option<u64>,
    /// Deterministic fault injection schedule (empty in production).
    pub fail_plan: FailPlan,
}

impl RunOptions {
    /// No retries, no watchdog, no injection: a plain isolated pool.
    pub fn none() -> Self {
        Self { retries: 0, backoff_ms: 0, budget: None, fail_plan: FailPlan::none() }
    }

    /// Production defaults, overridable via `RLR_RETRIES`,
    /// `RLR_BACKOFF_MS`, `RLR_TASK_BUDGET`, and `RLR_FAIL_PLAN`.
    pub fn from_env() -> Self {
        Self {
            retries: env_num("RLR_RETRIES").unwrap_or(1) as u32,
            backoff_ms: env_num("RLR_BACKOFF_MS").unwrap_or(100),
            budget: env_num("RLR_TASK_BUDGET").filter(|&b| b > 0),
            fail_plan: FailPlan::from_env(),
        }
    }
}

fn env_num(name: &str) -> Option<u64> {
    std::env::var(name).ok().and_then(|v| v.trim().parse().ok())
}

/// Runs one workload on the paper's single-core system with the given LLC
/// policy, honouring the scale's warm-up/measure split. The core timing
/// model follows `RLR_TIMING` (`analytic` by default, `event` for
/// simulated time with DRAM bank queueing); functional counters are
/// identical either way.
pub fn run_single(workload: &Workload, policy: PolicyKind, scale: Scale) -> RunStats {
    let config = SystemConfig::paper_single_core().with_timing(TimingMode::from_env());
    let mut system = SingleCoreSystem::new(&config, policy.build(&config.llc, None));
    let mut stream = workload.stream();
    system.warm_up(&mut stream, scale.warmup());
    system.run(stream, scale.instructions())
}

/// Runs a workload once with LRU and captures its LLC access trace
/// (`max_records` records, collected after warm-up), for the trace-driven
/// pipeline (RL training, Belady, Figs. 1 and 3–7).
///
/// The capture is policy-invariant: the LLC access stream does not depend
/// on the LLC replacement policy in this simulator. Each 1M-instruction
/// slice ticks the task watchdog, so a workload that never fills its
/// capture quota is bounded by [`RunOptions::budget`] as well as the
/// 40×scale instruction ceiling.
///
/// # Errors
///
/// Returns [`RunnerError::CaptureUnavailable`] if the LLC yields no
/// capture buffer.
pub fn capture_llc_trace(
    workload: &Workload,
    scale: Scale,
    max_records: usize,
) -> Result<LlcTrace, RunnerError> {
    let config = SystemConfig::paper_single_core();
    let mut system = SingleCoreSystem::new(&config, PolicyKind::Lru.build(&config.llc, None));
    let mut stream = workload.stream();
    system.warm_up(&mut stream, scale.warmup() / 2);
    let base = system.llc().accesses_seen();
    system.llc_mut().enable_capture();
    // Run in slices until enough LLC records accumulate (memory-bound
    // workloads need far fewer instructions than cache-friendly ones).
    let mut instructions = 0u64;
    loop {
        watchdog_tick(1);
        instructions += 1_000_000;
        let _ = system.run(&mut stream, instructions);
        let captured = system.llc().accesses_seen() - base;
        if captured as usize >= max_records || instructions >= 40 * scale.instructions() {
            break;
        }
    }
    let mut trace = system.llc_mut().take_capture().ok_or(RunnerError::CaptureUnavailable)?;
    trace.truncate(max_records);
    Ok(trace)
}

/// Chunk size for batched trace replay: large enough to amortize per-call
/// overhead, small enough to keep the access buffer in L1/L2.
const REPLAY_CHUNK: usize = 4096;

/// Aggregate counters of one trace replay.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ReplaySummary {
    /// Total accesses replayed.
    pub accesses: u64,
    /// Hits across all access kinds.
    pub hits: u64,
    /// Demand (load + RFO) accesses.
    pub demand_accesses: u64,
    /// Demand hits.
    pub demand_hits: u64,
}

impl ReplaySummary {
    /// Demand hit rate in `[0, 1]` (0 when the trace has no demand traffic).
    pub fn demand_hit_rate(&self) -> f64 {
        if self.demand_accesses == 0 {
            0.0
        } else {
            self.demand_hits as f64 / self.demand_accesses as f64
        }
    }
}

/// Reusable scratch buffers plus the sequence counter one replay threads
/// through its chunks, shared by the in-memory and streaming replay paths
/// so their access streams (and therefore results) are identical.
#[derive(Default)]
struct ReplayState {
    batch: Vec<Access>,
    outcomes: Vec<AccessOutcome>,
    seq: u64,
    summary: ReplaySummary,
}

impl ReplayState {
    /// Replays `records` in [`REPLAY_CHUNK`]-sized batches, continuing the
    /// running sequence numbering.
    fn feed<P: ReplacementPolicy>(&mut self, cache: &mut SetAssocCache<P>, records: &[LlcRecord]) {
        for chunk in records.chunks(REPLAY_CHUNK) {
            self.batch.clear();
            self.batch.extend(chunk.iter().map(|r| {
                let access =
                    Access { pc: r.pc, addr: r.line << 6, kind: r.kind, core: r.core, seq: self.seq };
                self.seq += 1;
                access
            }));
            self.outcomes.clear();
            cache.access_batch(&self.batch, &mut self.outcomes);
            for (record, outcome) in chunk.iter().zip(&self.outcomes) {
                self.summary.accesses += 1;
                self.summary.hits += u64::from(outcome.hit);
                if record.kind.is_demand() {
                    self.summary.demand_accesses += 1;
                    self.summary.demand_hits += u64::from(outcome.hit);
                }
            }
        }
    }
}

/// Replays a captured LLC trace through a standalone cache in
/// [`REPLAY_CHUNK`]-sized batches ([`SetAssocCache::access_batch`]),
/// sequence-numbering records exactly as a one-at-a-time loop would.
/// This is the hot loop of trace-driven evaluation (CLI `replay`, benches);
/// results are identical to per-record [`SetAssocCache::access`] calls.
pub fn replay_llc_trace<P: ReplacementPolicy>(
    cache: &mut SetAssocCache<P>,
    trace: &LlcTrace,
) -> ReplaySummary {
    let mut state = ReplayState::default();
    state.feed(cache, trace.records());
    state.summary
}

/// Replays a compressed trace container *as it streams* — each decoded
/// block is fed straight through the same chunked batching as
/// [`replay_llc_trace`], so peak memory is one container block plus one
/// replay chunk, and the resulting [`ReplaySummary`] is identical to
/// loading the whole trace first.
///
/// # Errors
///
/// Propagates any [`trace_io::TraceIoError`] from the reader (corrupt or
/// truncated containers fail the replay rather than silently shortening it).
pub fn replay_llc_reader<P: ReplacementPolicy, R: std::io::Read>(
    cache: &mut SetAssocCache<P>,
    reader: &mut trace_io::TraceReader<R>,
) -> Result<ReplaySummary, trace_io::TraceIoError> {
    let mut state = ReplayState::default();
    while let Some(block) = reader.next_block()? {
        // `feed` borrows the cache, not the reader, so the block slice
        // stays valid; watchdog ticks keep streamed replays budgetable.
        watchdog_tick(1);
        state.feed(cache, block);
    }
    Ok(state.summary)
}

/// How [`replay_hierarchy`] drives the private levels.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HierarchyReplayMode {
    /// One [`CoreHierarchy::data_access`] call per request.
    PerAccess,
    /// [`CoreHierarchy::data_access_batch`] over [`REPLAY_CHUNK`]-sized
    /// chunks — the fast path, bit-identical to `PerAccess` (the batch
    /// equivalence suite locks the two together on the golden fixture).
    Batched,
}

/// Replays a demand data stream through one core's private hierarchy and a
/// shared LLC, returning the [`ServiceLevel`] of every request in order.
pub fn replay_hierarchy<P: ReplacementPolicy>(
    core: &mut CoreHierarchy,
    llc: &mut SharedLlc<P>,
    requests: &[DataRequest],
    mode: HierarchyReplayMode,
) -> Vec<ServiceLevel> {
    let mut levels = Vec::with_capacity(requests.len());
    match mode {
        HierarchyReplayMode::PerAccess => {
            for r in requests {
                levels.push(core.data_access(r.pc, r.addr, r.is_store, llc));
            }
        }
        HierarchyReplayMode::Batched => {
            for chunk in requests.chunks(REPLAY_CHUNK) {
                core.data_access_batch(chunk, llc, &mut levels);
            }
        }
    }
    levels
}

/// Timing result of one [`replay_hierarchy_timed`] run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TimedReplay {
    /// Instructions the synthetic core retired (requests + leading
    /// compute).
    pub instructions: u64,
    /// Simulated cycles under `config.timing`.
    pub cycles: u64,
}

impl TimedReplay {
    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }
}

/// Leading compute instructions charged per replayed request by
/// [`replay_hierarchy_timed`] — a fixed op mix so replays are comparable
/// across policies and timing modes.
const TIMED_REPLAY_LEADING: u32 = 2;

/// Replays a demand data stream through one core's private hierarchy and a
/// shared LLC *under the timing model selected by `config.timing`*,
/// returning simulated time. Each request retires a fixed
/// [`TIMED_REPLAY_LEADING`]-instruction compute burst, then one
/// independent memory op at whatever [`ServiceLevel`] the functional
/// hierarchy reports — so the functional stream (and every hit/miss
/// counter) is identical across timing modes, while cycles reflect the
/// selected model. This is the substrate of the timing differential wall.
pub fn replay_hierarchy_timed<P: ReplacementPolicy>(
    core: &mut CoreHierarchy,
    llc: &mut SharedLlc<P>,
    requests: &[DataRequest],
    config: &SystemConfig,
) -> TimedReplay {
    let mut timing = TimingModel::new(config);
    let mut dram = DramTiming::new(config);
    let mut traffic = Vec::new();
    if config.timing == TimingMode::Event {
        llc.enable_traffic_tap();
    }
    for r in requests {
        timing.retire(TIMED_REPLAY_LEADING);
        let level = core.data_access(r.pc, r.addr, r.is_store, llc);
        timing.memory_op(level, false, r.addr >> 6, &mut dram, config);
        if config.timing == TimingMode::Event {
            traffic.clear();
            llc.drain_traffic(&mut traffic);
            timing.background(&traffic, &mut dram);
        }
    }
    timing.finish();
    TimedReplay { instructions: timing.instructions(), cycles: timing.cycles() }
}

/// Extracts a demand-request stream from a captured LLC trace for
/// hierarchy replay: loads and RFOs keep their PC and address; prefetches
/// and writebacks are dropped, since a replayed private hierarchy
/// regenerates its own.
pub fn demand_requests(trace: &LlcTrace) -> Vec<DataRequest> {
    trace
        .records()
        .iter()
        .filter(|r| r.kind.is_demand())
        .map(|r| DataRequest { pc: r.pc, addr: r.line << 6, is_store: r.kind == AccessKind::Rfo })
        .collect()
}

/// Runs a 4-core mix on the paper's quad-core system; returns per-core
/// statistics.
pub fn run_mix(mix: &WorkloadMix, policy: PolicyKind, scale: Scale) -> Vec<RunStats> {
    let config = SystemConfig::paper_quad_core().with_timing(TimingMode::from_env());
    let streams = mix
        .workloads()
        .iter()
        .enumerate()
        .map(|(core, wl)| {
            // Distinct per-core seeds keep identical benchmarks from
            // running in lockstep; a per-core PC salt models distinct
            // binaries/address spaces (without it, every synthetic
            // workload allocates PCs from the same base and cross-core
            // collisions poison shared PC-indexed predictors).
            let seeded = wl.clone().with_seed(wl.seed() ^ (core as u64 + 1).wrapping_mul(0x9E37));
            let pc_salt = (core as u64 + 1) << 44;
            Box::new(seeded.stream().map(move |mut e| {
                e.pc ^= pc_salt;
                e
            })) as Box<dyn Iterator<Item = workloads::TraceEntry> + Send>
        })
        .collect();
    let mut system = MultiCoreSystem::new(&config, policy.build(&config.llc, None), streams);
    system.run(scale.mc_warmup(), scale.mc_instructions())
}

/// Captures the shared LLC's access stream for a multi-core mix into one
/// trace — every record carries its issuing core's id, so the container
/// can later be split per core ([`cache_sim::LlcTrace::filter_core`],
/// `rlr trace export <file.rlt> --core N`).
///
/// Mirrors [`capture_llc_trace`]'s slice-drained structure on
/// [`MultiCoreSystem::warm_up`]/[`MultiCoreSystem::run_until`]: warm up
/// unmeasured, then enable capture and grow the instruction target in
/// slices, draining the buffer each slice so capture memory stays bounded.
///
/// # Errors
///
/// Returns [`RunnerError::UnknownBenchmark`] for the first unknown name,
/// or [`RunnerError::CaptureUnavailable`] if the LLC stops yielding its
/// capture buffer.
pub fn capture_mix_llc_trace(
    benchmarks: &[&str],
    scale: Scale,
    max_records: usize,
) -> Result<LlcTrace, RunnerError> {
    assert!(!benchmarks.is_empty(), "at least one benchmark");
    assert!(benchmarks.len() <= u8::MAX as usize + 1, "core ids are one byte");
    let mut config = SystemConfig::paper_quad_core();
    config.cores = benchmarks.len() as u8;
    let mut streams: Vec<Box<dyn Iterator<Item = workloads::TraceEntry> + Send>> = Vec::new();
    for (core, name) in benchmarks.iter().enumerate() {
        let wl = resolve_workload(name)?;
        // Same per-core decorrelation as `run_mix`: distinct seeds and a
        // per-core PC salt modelling distinct address spaces.
        let seeded = wl.clone().with_seed(wl.seed() ^ (core as u64 + 1).wrapping_mul(0x9E37));
        let pc_salt = (core as u64 + 1) << 44;
        streams.push(Box::new(seeded.stream().map(move |mut e| {
            e.pc ^= pc_salt;
            e
        })));
    }
    let mut system =
        MultiCoreSystem::new(&config, PolicyKind::Lru.build(&config.llc, None), streams);
    system.warm_up(scale.mc_warmup());
    system.llc_mut().enable_capture();
    let mut trace = LlcTrace::new();
    let mut target = 0u64;
    loop {
        watchdog_tick(1);
        target += 250_000;
        let _ = system.run_until(target);
        let drained =
            system.llc_mut().drain_capture().ok_or(RunnerError::CaptureUnavailable)?;
        for &r in drained.records() {
            if trace.len() >= max_records {
                break;
            }
            trace.push(r);
        }
        if trace.len() >= max_records || target >= 40 * scale.mc_instructions() {
            break;
        }
    }
    Ok(trace)
}

/// Resolves the experiment worker count: an explicit `jobs` wins, then the
/// `RLR_JOBS` environment variable, then the machine's available
/// parallelism (1 if that cannot be determined).
pub fn resolve_jobs(jobs: Option<usize>) -> usize {
    jobs.filter(|&j| j > 0)
        .or_else(|| {
            std::env::var("RLR_JOBS").ok().and_then(|v| v.trim().parse().ok()).filter(|&j| j > 0)
        })
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()))
}

// ---------------------------------------------------------------------------
// Watchdog: a logical, deterministic per-task budget.
//
// Wall-clock timeouts make tests flaky and results machine-dependent, so
// runaway tasks are bounded in *work units* instead: cooperative loops
// (e.g. the capture slices above) call `watchdog_tick`, and when an armed
// task exhausts its budget the tick panics with a private payload that the
// pool classifies as `FailureKind::BudgetExceeded`.
// ---------------------------------------------------------------------------

/// Panic payload distinguishing a watchdog abort from an organic panic.
struct WatchdogAbort {
    budget: u64,
}

#[derive(Clone, Copy)]
struct WatchdogState {
    remaining: u64,
    budget: u64,
}

thread_local! {
    static WATCHDOG: Cell<Option<WatchdogState>> = const { Cell::new(None) };
}

/// Consumes `units` of the current task's work budget; a no-op when no
/// watchdog is armed (e.g. serial use outside the pool).
///
/// # Panics
///
/// Panics with a pool-internal payload once an armed budget is exhausted;
/// [`run_tasks_resilient`] converts this into
/// [`FailureKind::BudgetExceeded`].
pub fn watchdog_tick(units: u64) {
    WATCHDOG.with(|w| {
        if let Some(mut state) = w.get() {
            if units >= state.remaining {
                w.set(None);
                std::panic::panic_any(WatchdogAbort { budget: state.budget });
            }
            state.remaining -= units;
            w.set(Some(state));
        }
    });
}

fn watchdog_armed() -> bool {
    WATCHDOG.with(|w| w.get().is_some())
}

/// Arms the thread's watchdog for the lifetime of the guard.
struct WatchdogGuard;

impl WatchdogGuard {
    fn arm(budget: u64) -> Self {
        WATCHDOG.with(|w| w.set(Some(WatchdogState { remaining: budget.max(1), budget })));
        Self
    }
}

impl Drop for WatchdogGuard {
    fn drop(&mut self) {
        WATCHDOG.with(|w| w.set(None));
    }
}

fn inject_fault(kind: FaultKind) {
    match kind {
        FaultKind::Panic => std::panic::panic_any("injected fault: panic".to_owned()),
        FaultKind::Stall => {
            // A stall only terminates through the watchdog. Injecting one
            // without an armed budget would hang forever, so that
            // misconfiguration degrades to an ordinary panic.
            if !watchdog_armed() {
                std::panic::panic_any("injected fault: stall with no watchdog armed".to_owned());
            }
            loop {
                watchdog_tick(1);
            }
        }
    }
}

fn classify_panic(payload: Box<dyn std::any::Any + Send>) -> FailureKind {
    match payload.downcast::<WatchdogAbort>() {
        Ok(abort) => FailureKind::BudgetExceeded { budget: abort.budget },
        Err(other) => {
            let msg = other
                .downcast_ref::<&str>()
                .map(|s| (*s).to_owned())
                .or_else(|| other.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".to_owned());
            FailureKind::Panicked(msg)
        }
    }
}

fn retry_delay_ms(backoff_ms: u64, failed_attempts: u32) -> u64 {
    if backoff_ms == 0 {
        return 0;
    }
    let shift = (failed_attempts.saturating_sub(1)).min(16);
    backoff_ms.saturating_mul(1u64 << shift).min(10_000)
}

/// Runs one task to completion or final failure under `opts`.
fn run_one_task<T, R, F>(opts: &RunOptions, index: usize, item: &T, f: &F) -> Result<R, TaskFailure>
where
    F: Fn(usize, &T) -> R,
{
    let mut attempts = 0u32;
    loop {
        attempts += 1;
        let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| {
            let _guard = opts.budget.map(WatchdogGuard::arm);
            if let Some(fault) = opts.fail_plan.fault_for(index) {
                inject_fault(fault);
            }
            f(index, item)
        }));
        match outcome {
            Ok(result) => return Ok(result),
            Err(payload) => {
                let kind = classify_panic(payload);
                if attempts <= opts.retries {
                    let delay = retry_delay_ms(opts.backoff_ms, attempts);
                    eprintln!(
                        "[pool] task {index} attempt {attempts} failed ({kind}); \
                         retrying in {delay} ms"
                    );
                    if delay > 0 {
                        std::thread::sleep(std::time::Duration::from_millis(delay));
                    }
                } else {
                    return Err(TaskFailure { index, attempts, kind });
                }
            }
        }
    }
}

/// Applies `f` to every item on a pool of `jobs` scoped threads, isolating
/// each task's failures.
///
/// Work is handed out through an atomic cursor (a sharded work queue, so
/// an expensive item does not stall the others) and each result is written
/// to the slot of its input: the returned vector matches input order
/// exactly, independent of scheduling. A panicking or over-budget task
/// yields `Err(TaskFailure)` in its slot after exhausting
/// [`RunOptions::retries`]; every other task still completes.
pub fn run_tasks_resilient<T, R, F>(
    items: &[T],
    jobs: usize,
    opts: &RunOptions,
    f: F,
) -> Vec<Result<R, TaskFailure>>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let jobs = jobs.clamp(1, items.len().max(1));
    if jobs == 1 {
        return items.iter().enumerate().map(|(i, t)| run_one_task(opts, i, t, &f)).collect();
    }
    let cursor = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<Result<R, TaskFailure>>>> =
        items.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(item) = items.get(i) else { break };
                let result = run_one_task(opts, i, item, &f);
                // Recover a poisoned slot rather than cascading: the
                // poisoning panic was already captured as that task's
                // failure, and the lock protects a plain Option.
                *slots[i].lock().unwrap_or_else(PoisonError::into_inner) = Some(result);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .unwrap_or_else(PoisonError::into_inner)
                .expect("worker filled slot")
        })
        .collect()
}

/// Applies `f` to every item on a pool of `jobs` scoped threads.
///
/// The non-resilient wrapper: no retries, no injection, and any task
/// failure panics after the whole pool drains (so sibling tasks are never
/// torn down mid-run). Results match input order exactly.
///
/// # Panics
///
/// Panics if any task panicked, with that task's failure message.
pub fn run_tasks_parallel<T, R, F>(items: &[T], jobs: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    run_tasks_resilient(items, jobs, &RunOptions::none(), f)
        .into_iter()
        .map(|r| r.unwrap_or_else(|e| panic!("{e}")))
        .collect()
}

/// One sweep cell: the run's statistics, or why the cell failed.
pub type CellResult = Result<RunStats, TaskFailure>;

/// A roster sweep's output: per benchmark, per policy, a [`CellResult`].
pub type ResilientSweep = Vec<(String, Vec<(PolicyKind, CellResult)>)>;

/// Configuration for [`run_roster_resilient`].
#[derive(Debug)]
pub struct SweepOptions {
    /// Worker count; `None` defers to [`resolve_jobs`].
    pub jobs: Option<usize>,
    /// Failure handling for the underlying pool.
    pub run: RunOptions,
    /// Cell-checkpoint directory; `None` disables checkpointing.
    pub cache_dir: Option<PathBuf>,
}

impl SweepOptions {
    /// No checkpointing, no retries — the pure in-memory sweep.
    pub fn none() -> Self {
        Self { jobs: None, run: RunOptions::none(), cache_dir: None }
    }

    /// Production defaults: env-tunable failure handling and cell
    /// checkpoints under `results/cache/sweep/` (disable with
    /// `RLR_CHECKPOINT=0`; relocate with `RLR_RESULTS_DIR`).
    pub fn from_env() -> Self {
        Self {
            jobs: None,
            run: RunOptions::from_env(),
            cache_dir: checkpoint::checkpointing_enabled()
                .then(checkpoint::sweep_cache_dir),
        }
    }

    /// [`SweepOptions::from_env`], but with cells under the named
    /// checkpoint family's directory (`results/cache/<family>/`).
    pub fn from_env_for(family: &str) -> Self {
        Self {
            jobs: None,
            run: RunOptions::from_env(),
            cache_dir: checkpoint::checkpointing_enabled()
                .then(|| checkpoint::cache_dir_for(family)),
        }
    }
}

fn resolve_workload(name: &str) -> Result<Workload, RunnerError> {
    spec2006(name)
        .or_else(|| cloudsuite(name))
        .ok_or_else(|| RunnerError::UnknownBenchmark(name.to_owned()))
}

fn sweep_params(scale: Scale) -> String {
    // The timing mode is part of the cell key: analytic and event sweeps
    // of the same roster must never satisfy each other's checkpoints.
    format!(
        "single|{scale}|i{}|w{}|t{}",
        scale.instructions(),
        scale.warmup(),
        TimingMode::from_env()
    )
}

/// Runs the full `benchmarks` × `policies` roster with failure isolation
/// and per-cell resume.
///
/// Benchmark names are validated *before* any worker starts. Each cell is
/// first looked up in `opts.cache_dir` (a hit skips the simulation
/// entirely — this is what makes interrupted sweeps resumable) and stored
/// there on completion via an atomic write. Failed cells surface as
/// `Err(TaskFailure)` in their slot; the rest of the sweep completes.
///
/// # Errors
///
/// Returns [`RunnerError::UnknownBenchmark`] for the first unknown name.
pub fn run_roster_resilient(
    benchmarks: &[&str],
    policies: &[PolicyKind],
    scale: Scale,
    opts: &SweepOptions,
) -> Result<ResilientSweep, RunnerError> {
    let workloads: Vec<Workload> =
        benchmarks.iter().map(|&name| resolve_workload(name)).collect::<Result<_, _>>()?;
    if let Some(dir) = &opts.cache_dir {
        // Opening the checkpoint dir is the natural point to reap crash
        // residue: scratch files left by killed runs (resume ignores them
        // but nothing else ever deletes them).
        let swept = checkpoint::sweep_orphans(dir);
        if swept > 0 {
            eprintln!("[sweep] removed {swept} orphaned scratch file(s) from {}", dir.display());
        }
    }
    let tasks: Vec<(usize, usize)> = (0..benchmarks.len())
        .flat_map(|b| (0..policies.len()).map(move |p| (b, p)))
        .collect();
    let results =
        run_tasks_resilient(&tasks, resolve_jobs(opts.jobs), &opts.run, |_, &(b, p)| {
            let name = benchmarks[b];
            let policy = policies[p];
            let key = opts
                .cache_dir
                .is_some()
                .then(|| checkpoint::cell_key(name, policy.name(), &sweep_params(scale)));
            if let (Some(dir), Some(key)) = (&opts.cache_dir, &key) {
                if let Some(cached) = checkpoint::load_cell(dir, key) {
                    eprintln!("[sweep] {name}/{} cached", policy.name());
                    return cached;
                }
            }
            let out = run_single(&workloads[b], policy, scale);
            if let (Some(dir), Some(key)) = (&opts.cache_dir, &key) {
                checkpoint::store_cell(dir, key, &out);
            }
            eprintln!("[sweep] {name}/{} done", policy.name());
            out
        });
    Ok(benchmarks
        .iter()
        .enumerate()
        .map(|(b, &name)| {
            let runs = policies
                .iter()
                .enumerate()
                .map(|(p, &policy)| (policy, results[b * policies.len() + p].clone()))
                .collect();
            (name.to_owned(), runs)
        })
        .collect())
}

/// Runs the full `benchmarks` × `policies` roster on a worker pool and
/// regroups the results per benchmark, preserving both input orders.
///
/// `jobs: None` defers to [`resolve_jobs`] (so `RLR_JOBS=1` forces a
/// serial run). Output is identical to the equivalent nested serial loop;
/// no retries or checkpoints are involved, so this path stays a pure
/// function of its inputs.
///
/// # Errors
///
/// Returns [`RunnerError::UnknownBenchmark`] for the first unknown name.
///
/// # Panics
///
/// Panics if a simulation itself panics (no retry is configured here).
pub fn run_roster_parallel(
    benchmarks: &[&str],
    policies: &[PolicyKind],
    scale: Scale,
    jobs: Option<usize>,
) -> Result<Vec<(String, Vec<(PolicyKind, RunStats)>)>, RunnerError> {
    let opts = SweepOptions { jobs, ..SweepOptions::none() };
    let sweep = run_roster_resilient(benchmarks, policies, scale, &opts)?;
    Ok(sweep
        .into_iter()
        .map(|(name, runs)| {
            let runs = runs
                .into_iter()
                .map(|(policy, cell)| (policy, cell.unwrap_or_else(|e| panic!("{e}"))))
                .collect();
            (name, runs)
        })
        .collect())
}

/// The paper's multicore per-mix metric: the geometric mean over cores of
/// each core's IPC speedup versus the same core under LRU.
pub fn mix_speedup_pct(policy_runs: &[RunStats], lru_runs: &[RunStats]) -> f64 {
    assert_eq!(policy_runs.len(), lru_runs.len(), "core counts must match");
    let mut log_sum = 0.0;
    for (p, l) in policy_runs.iter().zip(lru_runs) {
        log_sum += (p.ipc() / l.ipc()).ln();
    }
    ((log_sum / policy_runs.len() as f64).exp() - 1.0) * 100.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::spec2006;

    /// A scale smaller than `Scale::Small` is not exposed publicly; tests
    /// use Small but with the cheapest benchmark.
    #[test]
    fn capture_produces_bounded_trace() {
        let wl = spec2006("429.mcf").expect("known benchmark");
        let trace = capture_llc_trace(&wl, Scale::Small, 5_000).expect("capture succeeds");
        assert!(trace.len() <= 5_000);
        assert!(trace.len() >= 4_000, "mcf floods the LLC: got {}", trace.len());
    }

    #[test]
    fn mix_speedup_is_zero_against_itself() {
        let stats = RunStats { instructions: 100, cycles: 50, ..RunStats::default() };
        let s = mix_speedup_pct(&[stats, stats], &[stats, stats]);
        assert!(s.abs() < 1e-9);
    }

    #[test]
    fn watchdog_is_a_noop_when_disarmed() {
        // Ticking without an armed budget must never panic.
        for _ in 0..10 {
            watchdog_tick(u64::MAX);
        }
        assert!(!watchdog_armed());
    }

    #[test]
    fn watchdog_guard_disarms_on_drop() {
        {
            let _guard = WatchdogGuard::arm(100);
            assert!(watchdog_armed());
            watchdog_tick(50);
        }
        assert!(!watchdog_armed());
        watchdog_tick(u64::MAX); // disarmed again: no panic
    }

    #[test]
    fn retry_delay_grows_and_caps() {
        assert_eq!(retry_delay_ms(0, 5), 0);
        assert_eq!(retry_delay_ms(100, 1), 100);
        assert_eq!(retry_delay_ms(100, 2), 200);
        assert_eq!(retry_delay_ms(100, 3), 400);
        assert_eq!(retry_delay_ms(100, 40), 10_000, "capped");
    }

    #[test]
    fn unknown_benchmark_is_an_upfront_error() {
        let err = run_roster_parallel(&["not.a.benchmark"], &[PolicyKind::Lru], Scale::Small, Some(1))
            .expect_err("must be rejected");
        assert_eq!(err, RunnerError::UnknownBenchmark("not.a.benchmark".to_owned()));
    }
}
