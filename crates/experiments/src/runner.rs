//! Simulation drivers shared by every experiment.

use cache_sim::{LlcTrace, MultiCoreSystem, RunStats, SingleCoreSystem, SystemConfig};
use workloads::{Workload, WorkloadMix};

use crate::roster::PolicyKind;
use crate::scale::Scale;

/// Runs one workload on the paper's single-core system with the given LLC
/// policy, honouring the scale's warm-up/measure split.
pub fn run_single(workload: &Workload, policy: PolicyKind, scale: Scale) -> RunStats {
    let config = SystemConfig::paper_single_core();
    let mut system = SingleCoreSystem::new(&config, policy.build(&config.llc, None));
    let mut stream = workload.stream();
    system.warm_up(&mut stream, scale.warmup());
    system.run(stream, scale.instructions())
}

/// Runs a workload once with LRU and captures its LLC access trace
/// (`max_records` records, collected after warm-up), for the trace-driven
/// pipeline (RL training, Belady, Figs. 1 and 3–7).
///
/// The capture is policy-invariant: the LLC access stream does not depend
/// on the LLC replacement policy in this simulator.
pub fn capture_llc_trace(workload: &Workload, scale: Scale, max_records: usize) -> LlcTrace {
    let config = SystemConfig::paper_single_core();
    let mut system = SingleCoreSystem::new(&config, PolicyKind::Lru.build(&config.llc, None));
    let mut stream = workload.stream();
    system.warm_up(&mut stream, scale.warmup() / 2);
    let base = system.llc().accesses_seen();
    system.llc_mut().enable_capture();
    // Run in slices until enough LLC records accumulate (memory-bound
    // workloads need far fewer instructions than cache-friendly ones).
    let mut instructions = 0u64;
    loop {
        instructions += 1_000_000;
        let _ = system.run(&mut stream, instructions);
        let captured = system.llc().accesses_seen() - base;
        if captured as usize >= max_records || instructions >= 40 * scale.instructions() {
            break;
        }
    }
    let mut trace = system.llc_mut().take_capture().expect("capture enabled");
    trace.truncate(max_records);
    trace
}

/// Runs a 4-core mix on the paper's quad-core system; returns per-core
/// statistics.
pub fn run_mix(mix: &WorkloadMix, policy: PolicyKind, scale: Scale) -> Vec<RunStats> {
    let config = SystemConfig::paper_quad_core();
    let streams = mix
        .workloads()
        .iter()
        .enumerate()
        .map(|(core, wl)| {
            // Distinct per-core seeds keep identical benchmarks from
            // running in lockstep; a per-core PC salt models distinct
            // binaries/address spaces (without it, every synthetic
            // workload allocates PCs from the same base and cross-core
            // collisions poison shared PC-indexed predictors).
            let seeded = wl.clone().with_seed(wl.seed() ^ (core as u64 + 1).wrapping_mul(0x9E37));
            let pc_salt = (core as u64 + 1) << 44;
            Box::new(seeded.stream().map(move |mut e| {
                e.pc ^= pc_salt;
                e
            })) as Box<dyn Iterator<Item = workloads::TraceEntry> + Send>
        })
        .collect();
    let mut system = MultiCoreSystem::new(&config, policy.build(&config.llc, None), streams);
    system.run(scale.mc_warmup(), scale.mc_instructions())
}

/// The paper's multicore per-mix metric: the geometric mean over cores of
/// each core's IPC speedup versus the same core under LRU.
pub fn mix_speedup_pct(policy_runs: &[RunStats], lru_runs: &[RunStats]) -> f64 {
    assert_eq!(policy_runs.len(), lru_runs.len(), "core counts must match");
    let mut log_sum = 0.0;
    for (p, l) in policy_runs.iter().zip(lru_runs) {
        log_sum += (p.ipc() / l.ipc()).ln();
    }
    ((log_sum / policy_runs.len() as f64).exp() - 1.0) * 100.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::spec2006;

    /// A scale smaller than `Scale::Small` is not exposed publicly; tests
    /// use Small but with the cheapest benchmark.
    #[test]
    fn capture_produces_bounded_trace() {
        let wl = spec2006("429.mcf").expect("known benchmark");
        let trace = capture_llc_trace(&wl, Scale::Small, 5_000);
        assert!(trace.len() <= 5_000);
        assert!(trace.len() >= 4_000, "mcf floods the LLC: got {}", trace.len());
    }

    #[test]
    fn mix_speedup_is_zero_against_itself() {
        let stats = RunStats { instructions: 100, cycles: 50, ..RunStats::default() };
        let s = mix_speedup_pct(&[stats, stats], &[stats, stats]);
        assert!(s.abs() < 1e-9);
    }
}
