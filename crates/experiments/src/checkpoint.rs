//! Atomic per-cell result checkpoints for experiment sweeps.
//!
//! Every completed (workload, policy, config) cell of a sweep is persisted
//! as a small JSON file under a cache directory, keyed by a fingerprint of
//! everything that determines its value. Re-running the sweep loads
//! finished cells instead of recomputing them, so an interrupted run
//! resumes where it stopped — and because [`cache_sim::RunStats`] is all
//! `u64`s and the codec is exact ([`crate::json`]), a resumed sweep is
//! byte-identical to an uninterrupted one.
//!
//! # Durability contract
//!
//! [`write_atomic`] provides *atomic visibility* and *rename durability*:
//!
//! * Data goes to a pid-suffixed scratch file (`.{name}.tmp.{pid}`) in the
//!   target directory, is `fsync`ed there, and only then `rename`d into
//!   place. A reader therefore sees either no file or the complete file —
//!   never a torn one — and the renamed file's *contents* are on stable
//!   storage before the name appears.
//! * After a successful rename the parent **directory** is `fsync`ed too
//!   (on Unix), so the new directory entry itself survives power loss; a
//!   checkpoint that `write_atomic` returned `Ok` for cannot silently
//!   vanish.
//! * A failed write leaves the scratch file behind, exactly as a crash
//!   would; [`sweep_orphans`] (run when a checkpoint directory is opened
//!   for a sweep) deletes such leftovers. Resume correctness never depends
//!   on the sweep — loads only look at final names — it just stops killed
//!   runs leaking files forever.
//!
//! Loads verify the embedded key string and treat any mismatch, short
//! read, or corruption as a miss (the cell is recomputed). All file I/O
//! goes through the [`crate::fault`] seam, so every one of these crash
//! shapes is drivable deterministically from a test or `RLR_FAIL_PLAN`.

use std::fs;
use std::io::{Read as _, Write as _};
use std::path::{Path, PathBuf};

use crate::fault::{FaultReader, FaultWriter};

use cache_sim::{CacheStats, KindCounts, RunStats};

use crate::json::Json;

/// Version prefix baked into every cell key; bump to invalidate all
/// existing checkpoints when the simulator's semantics change.
const KEY_VERSION: &str = "v1";

/// Identifies one sweep cell: a human-readable key plus its hash.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CellKey {
    /// The full key string (embedded in the checkpoint for verification).
    pub key: String,
    /// FNV-1a hash of `key`, used as the file name.
    pub hash: u64,
}

impl CellKey {
    /// File name for this cell's checkpoint.
    pub fn file_name(&self) -> String {
        format!("{:016x}.json", self.hash)
    }
}

/// Builds the key for one cell from the benchmark, policy, and a free-form
/// `params` string capturing everything else that affects the result
/// (scale, instruction counts, config knobs).
pub fn cell_key(bench: &str, policy: &str, params: &str) -> CellKey {
    let key = format!("{KEY_VERSION}|{bench}|{policy}|{params}");
    let hash = fnv1a(key.as_bytes());
    CellKey { key, hash }
}

/// 64-bit FNV-1a. Inlined because this crate deliberately has no hashing
/// dependency and `DefaultHasher` is not stable across releases.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Writes `contents` to `path` atomically and durably: scratch file,
/// `fsync`, `rename`, parent-directory `fsync` (see the module docs for
/// the full contract).
///
/// # Errors
///
/// Returns any I/O error from creating the parent directory, writing or
/// syncing the scratch file, or renaming it into place. A write/sync
/// failure leaves the scratch file on disk — the same residue a crash
/// leaves — for [`sweep_orphans`] to clean up; the final name is never
/// created or modified on any error path.
pub fn write_atomic(path: &Path, contents: &[u8]) -> std::io::Result<()> {
    let dir = path.parent().unwrap_or_else(|| Path::new("."));
    fs::create_dir_all(dir)?;
    // Pid-suffixed scratch name so concurrent processes can't tear each
    // other's writes; rename within one directory is atomic on POSIX.
    let scratch = dir.join(format!(
        ".{}.tmp.{}",
        path.file_name().and_then(|n| n.to_str()).unwrap_or("checkpoint"),
        std::process::id()
    ));
    let mut f = FaultWriter::new(fs::File::create(&scratch)?);
    f.write_all(contents)?;
    f.get_ref().sync_all()?;
    drop(f);
    match fs::rename(&scratch, path) {
        Ok(()) => {
            sync_dir(dir);
            Ok(())
        }
        Err(e) => {
            let _ = fs::remove_file(&scratch);
            Err(e)
        }
    }
}

/// Fsyncs a directory so a just-renamed entry survives power loss.
/// Best-effort: a failure here cannot un-publish the rename, and some
/// filesystems refuse directory fsync, so errors are ignored.
fn sync_dir(dir: &Path) {
    #[cfg(unix)]
    if let Ok(d) = fs::File::open(dir) {
        let _ = d.sync_all();
    }
    #[cfg(not(unix))]
    let _ = dir;
}

/// Deletes orphaned scratch files (`.{name}.tmp.{pid}` leftovers from
/// killed or fault-injected runs) in `dir`, returning how many were
/// removed. Final-name checkpoints are never touched. Called when a sweep
/// opens its checkpoint directory; racing a *live* writer's scratch file
/// is benign — its rename fails, [`store_cell`] warns, and that one cell
/// is recomputed on the next run.
pub fn sweep_orphans(dir: &Path) -> usize {
    let Ok(entries) = fs::read_dir(dir) else { return 0 };
    let mut removed = 0;
    for entry in entries.flatten() {
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if name.starts_with('.') && name.contains(".tmp.") && fs::remove_file(entry.path()).is_ok()
        {
            removed += 1;
        }
    }
    removed
}

fn kind_counts_to_json(k: &KindCounts) -> Json {
    Json::Arr(vec![Json::U64(k.accesses), Json::U64(k.hits)])
}

fn kind_counts_from_json(v: &Json) -> Option<KindCounts> {
    let arr = v.as_arr()?;
    if arr.len() != 2 {
        return None;
    }
    let accesses = arr[0].as_u64()?;
    let hits = arr[1].as_u64()?;
    if hits > accesses {
        return None;
    }
    Some(KindCounts { accesses, hits })
}

fn cache_stats_to_json(s: &CacheStats) -> Json {
    Json::obj([
        ("by_kind", Json::Arr(s.by_kind.iter().map(kind_counts_to_json).collect())),
        ("writebacks_out", Json::U64(s.writebacks_out)),
        ("bypasses", Json::U64(s.bypasses)),
        ("evictions", Json::U64(s.evictions)),
    ])
}

fn cache_stats_from_json(v: &Json) -> Option<CacheStats> {
    let kinds = v.get("by_kind")?.as_arr()?;
    if kinds.len() != 4 {
        return None;
    }
    let mut by_kind = [KindCounts::default(); 4];
    for (slot, k) in by_kind.iter_mut().zip(kinds) {
        *slot = kind_counts_from_json(k)?;
    }
    Some(CacheStats {
        by_kind,
        writebacks_out: v.get("writebacks_out")?.as_u64()?,
        bypasses: v.get("bypasses")?.as_u64()?,
        evictions: v.get("evictions")?.as_u64()?,
    })
}

/// Encodes a cell checkpoint: the verification key plus the full stats.
pub fn encode_cell(key: &CellKey, stats: &RunStats) -> String {
    let body = Json::obj([
        ("key", Json::Str(key.key.clone())),
        ("instructions", Json::U64(stats.instructions)),
        ("cycles", Json::U64(stats.cycles)),
        ("l1d", cache_stats_to_json(&stats.l1d)),
        ("l2", cache_stats_to_json(&stats.l2)),
        ("llc", cache_stats_to_json(&stats.llc)),
        ("memory_reads", Json::U64(stats.memory_reads)),
        ("memory_writes", Json::U64(stats.memory_writes)),
        ("dram_row_hits", Json::U64(stats.dram_row_hits)),
        ("dram_row_misses", Json::U64(stats.dram_row_misses)),
    ]);
    body.encode()
}

/// Decodes a cell checkpoint, verifying its embedded key matches `key`.
pub fn decode_cell(text: &str, key: &CellKey) -> Option<RunStats> {
    let v = Json::parse(text).ok()?;
    if v.get("key")?.as_str()? != key.key {
        return None; // hash collision or stale file from another config
    }
    Some(RunStats {
        instructions: v.get("instructions")?.as_u64()?,
        cycles: v.get("cycles")?.as_u64()?,
        l1d: cache_stats_from_json(v.get("l1d")?)?,
        l2: cache_stats_from_json(v.get("l2")?)?,
        llc: cache_stats_from_json(v.get("llc")?)?,
        memory_reads: v.get("memory_reads")?.as_u64()?,
        memory_writes: v.get("memory_writes")?.as_u64()?,
        dram_row_hits: v.get("dram_row_hits")?.as_u64()?,
        dram_row_misses: v.get("dram_row_misses")?.as_u64()?,
    })
}

/// Loads the checkpoint for `key` from `dir`, or `None` if absent,
/// corrupt, or written for a different key.
pub fn load_cell(dir: &Path, key: &CellKey) -> Option<RunStats> {
    let mut text = String::new();
    let mut reader = FaultReader::new(fs::File::open(dir.join(key.file_name())).ok()?);
    reader.read_to_string(&mut text).ok()?;
    decode_cell(&text, key)
}

/// Persists one completed cell. Failure to write is reported on stderr but
/// never aborts the sweep — a missing checkpoint only costs recomputation.
pub fn store_cell(dir: &Path, key: &CellKey, stats: &RunStats) {
    let path = dir.join(key.file_name());
    if let Err(e) = write_atomic(&path, encode_cell(key, stats).as_bytes()) {
        eprintln!("warning: could not write checkpoint {}: {e}", path.display());
    }
}

/// Cell-checkpoint directory for a named family: `results/cache/<family>/`.
/// Each experiment family (`sweep`, `objcache`, `tenancy`, ...) keeps its
/// cells in its own subdirectory so `rlr doctor` can walk and classify
/// them uniformly.
pub fn cache_dir_for(family: &str) -> PathBuf {
    crate::report::results_dir().join("cache").join(family)
}

/// Default cell-checkpoint directory for figure/table sweeps.
pub fn sweep_cache_dir() -> PathBuf {
    cache_dir_for("sweep")
}

/// `true` unless checkpointing is disabled via `RLR_CHECKPOINT=0`.
pub fn checkpointing_enabled() -> bool {
    !matches!(std::env::var("RLR_CHECKPOINT").as_deref(), Ok("0"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_stats(seed: u64) -> RunStats {
        let mut stats = RunStats {
            instructions: seed.wrapping_mul(0x9e37_79b9_7f4a_7c15),
            cycles: seed + 17,
            memory_reads: seed * 3,
            memory_writes: seed / 2,
            dram_row_hits: u64::MAX - seed,
            dram_row_misses: 0,
            ..RunStats::default()
        };
        for (i, k) in stats.llc.by_kind.iter_mut().enumerate() {
            k.accesses = seed + 10 * i as u64;
            k.hits = (seed + 10 * i as u64) / 2;
        }
        stats.llc.evictions = seed;
        stats.l1d.writebacks_out = seed + 1;
        stats
    }

    #[test]
    fn cell_roundtrips_exactly() {
        for seed in [0, 1, 12345, u64::MAX / 3] {
            let key = cell_key("429.mcf", "rlr", "small|i1000");
            let stats = sample_stats(seed);
            let decoded = decode_cell(&encode_cell(&key, &stats), &key).expect("roundtrip");
            assert_eq!(decoded, stats);
        }
    }

    #[test]
    fn key_mismatch_is_a_miss() {
        let key = cell_key("429.mcf", "rlr", "small");
        let other = cell_key("429.mcf", "lru", "small");
        let text = encode_cell(&key, &sample_stats(7));
        assert!(decode_cell(&text, &other).is_none());
        assert!(decode_cell("{\"key\":1}", &key).is_none(), "corrupt text is a miss");
        assert!(decode_cell("", &key).is_none());
    }

    #[test]
    fn distinct_cells_get_distinct_files() {
        let a = cell_key("429.mcf", "rlr", "small");
        let b = cell_key("429.mcf", "rlr", "medium");
        let c = cell_key("470.lbm", "rlr", "small");
        assert_ne!(a.file_name(), b.file_name());
        assert_ne!(a.file_name(), c.file_name());
        // Same inputs must always map to the same file (stable hash).
        assert_eq!(a, cell_key("429.mcf", "rlr", "small"));
    }

    #[test]
    fn store_and_load_via_disk() {
        let dir = std::env::temp_dir().join(format!("rlr_ck_test_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let key = cell_key("483.xalancbmk", "ship", "small|i5000");
        assert!(load_cell(&dir, &key).is_none(), "cold cache misses");
        let stats = sample_stats(99);
        store_cell(&dir, &key, &stats);
        assert_eq!(load_cell(&dir, &key), Some(stats));
        // A torn write (scratch file left behind) must not be visible.
        assert!(
            fs::read_dir(&dir).expect("dir exists").all(|e| {
                !e.expect("entry").file_name().to_string_lossy().contains(".tmp.")
            }),
            "no scratch files survive a successful store"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn orphan_sweep_removes_scratch_but_not_checkpoints() {
        let dir = std::env::temp_dir().join(format!("rlr_orphan_test_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let key = cell_key("429.mcf", "rlr", "small");
        let stats = sample_stats(3);
        store_cell(&dir, &key, &stats);
        // Fabricate the residue of two killed runs plus an unrelated dotfile.
        fs::write(dir.join(".aaaa.json.tmp.123"), b"torn").expect("orphan 1");
        fs::write(dir.join(".bbbb.json.tmp.99999"), b"").expect("orphan 2");
        fs::write(dir.join(".keepme"), b"not a scratch file").expect("dotfile");
        assert_eq!(sweep_orphans(&dir), 2);
        assert_eq!(load_cell(&dir, &key), Some(stats), "checkpoint survives the sweep");
        assert!(dir.join(".keepme").exists(), "non-scratch dotfiles survive");
        assert_eq!(sweep_orphans(&dir), 0, "sweep is idempotent");
        assert_eq!(sweep_orphans(Path::new("/nonexistent/rlr")), 0, "missing dir is a no-op");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_write_leaves_scratch_and_no_checkpoint() {
        use crate::fault::{with_io_plan, IoFailPlan};
        let dir = std::env::temp_dir().join(format!("rlr_torn_test_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let key = cell_key("429.mcf", "rlr", "small");
        let path = dir.join(key.file_name());
        let encoded = encode_cell(&key, &sample_stats(11));
        with_io_plan(IoFailPlan::parse("torn:8").expect("valid"), || {
            write_atomic(&path, encoded.as_bytes()).expect_err("torn write fails");
        });
        assert!(!path.exists(), "no final-name file appears on a torn write");
        assert!(load_cell(&dir, &key).is_none());
        assert_eq!(sweep_orphans(&dir), 1, "the crash residue is exactly one scratch file");
        let _ = fs::remove_dir_all(&dir);
    }
}
