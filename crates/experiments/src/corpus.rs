//! The trace corpus: capture-once / replay-many storage for LLC traces.
//!
//! Every trace-driven experiment used to re-capture its traces (or cache
//! them in the legacy fixed-width format, fully resident). The corpus
//! stores each `(benchmark, scale)` trace exactly once, as a compressed
//! `RLT1` container under `results/corpus/`, and hands it to any number of
//! replays. Publication is atomic ([`crate::checkpoint::write_atomic`]),
//! so an interrupted capture can never be mistaken for a complete trace —
//! complementing the container's own end-frame truncation detection — and
//! an existing legacy `.trace` cache is migrated in place of re-simulating.
//!
//! A *corrupt* container (checksum failure, torn tail, garbage) never
//! fails a sweep: [`load_or_capture`] quarantines it into
//! `results/corpus/quarantine/` (preserving the evidence for `rlr doctor`
//! / `trace verify --repair`), logs the move, and re-captures. Reads go
//! through the [`crate::fault`] seam, so every corruption shape is
//! reproducible in tests.

use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};

use cache_sim::{LlcTrace, SystemConfig, SingleCoreSystem};
use trace_io::{TraceIoError, TraceReader, TraceWriter};
use workloads::{spec2006, Workload};

use crate::checkpoint::write_atomic;
use crate::fault::FaultReader;
use crate::report::results_dir;
use crate::roster::PolicyKind;
use crate::runner::{capture_llc_trace, watchdog_tick, RunnerError};
use crate::scale::Scale;

/// Why a corpus trace could not be produced or loaded.
#[derive(Debug)]
pub enum CorpusError {
    /// The underlying simulation could not run.
    Runner(RunnerError),
    /// Reading or writing the container failed.
    Trace(TraceIoError),
    /// Filesystem failure outside the container codec.
    Io(std::io::Error),
}

impl std::fmt::Display for CorpusError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Runner(e) => write!(f, "capture failed: {e}"),
            Self::Trace(e) => write!(f, "trace container: {e}"),
            Self::Io(e) => write!(f, "I/O error: {e}"),
        }
    }
}

impl std::error::Error for CorpusError {}

impl From<RunnerError> for CorpusError {
    fn from(e: RunnerError) -> Self {
        Self::Runner(e)
    }
}

impl From<TraceIoError> for CorpusError {
    fn from(e: TraceIoError) -> Self {
        Self::Trace(e)
    }
}

impl From<std::io::Error> for CorpusError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e)
    }
}

/// Where corpus containers live (honours `RLR_RESULTS_DIR`).
pub fn corpus_dir() -> PathBuf {
    results_dir().join("corpus")
}

/// The corpus file for one `(benchmark, scale)` pair.
pub fn corpus_path(name: &str, scale: Scale) -> PathBuf {
    corpus_file(&corpus_dir(), name, scale)
}

fn corpus_file(dir: &Path, name: &str, scale: Scale) -> PathBuf {
    dir.join(format!("{}_{}.rlt", name.replace('.', "_"), scale))
}

/// Moves a damaged artifact into a `quarantine/` subdirectory beside it,
/// returning the destination. Never overwrites earlier quarantined copies
/// (a numeric suffix disambiguates), so repeated corruption of the same
/// path preserves every specimen.
///
/// # Errors
///
/// Returns the error from creating the quarantine directory or renaming.
pub fn quarantine_file(path: &Path) -> std::io::Result<PathBuf> {
    let parent = path.parent().unwrap_or_else(|| Path::new("."));
    let qdir = parent.join("quarantine");
    fs::create_dir_all(&qdir)?;
    let name = path
        .file_name()
        .and_then(|n| n.to_str())
        .ok_or_else(|| std::io::Error::other("artifact path has no file name"))?;
    let mut dest = qdir.join(name);
    let mut n = 1u32;
    while dest.exists() {
        dest = qdir.join(format!("{name}.{n}"));
        n += 1;
    }
    fs::rename(path, &dest)?;
    Ok(dest)
}

/// The legacy pipeline cache file this corpus entry supersedes.
fn legacy_path(name: &str, scale: Scale) -> PathBuf {
    results_dir().join("cache").join(format!("{}_{}.trace", name.replace('.', "_"), scale))
}

/// Captures a workload's LLC trace *directly into* `writer`, draining the
/// capture buffer every simulation slice so peak memory is one slice of
/// records plus one container block — never the whole trace. The record
/// stream is identical to [`capture_llc_trace`] with the same arguments
/// (same warm-up, same slicing, same instruction ceiling); only the
/// buffering differs.
///
/// Returns the number of records written (≤ `max_records`).
///
/// # Errors
///
/// Returns [`RunnerError::CaptureUnavailable`] wrapped in
/// [`CorpusError::Runner`] if the LLC stops yielding its capture buffer,
/// or any container/I/O error from the writer.
pub fn capture_stream<W: Write>(
    workload: &Workload,
    scale: Scale,
    max_records: u64,
    writer: &mut TraceWriter<W>,
) -> Result<u64, CorpusError> {
    let config = SystemConfig::paper_single_core();
    let mut system = SingleCoreSystem::new(&config, PolicyKind::Lru.build(&config.llc, None));
    let mut stream = workload.stream();
    system.warm_up(&mut stream, scale.warmup() / 2);
    system.llc_mut().enable_capture();
    let mut written = 0u64;
    let mut instructions = 0u64;
    loop {
        watchdog_tick(1);
        instructions += 1_000_000;
        let _ = system.run(&mut stream, instructions);
        let drained =
            system.llc_mut().drain_capture().ok_or(RunnerError::CaptureUnavailable)?;
        let take = (max_records - written).min(drained.len() as u64) as usize;
        writer.extend(&drained.records()[..take])?;
        written += take as u64;
        if written >= max_records || instructions >= 40 * scale.instructions() {
            return Ok(written);
        }
    }
}

/// Reads the container at `path` through the fault seam. A missing file
/// surfaces as `CorpusError::Io` with `NotFound`; anything else that fails
/// is damage.
fn read_container(path: &Path) -> Result<LlcTrace, CorpusError> {
    let f = FaultReader::new(fs::File::open(path)?);
    Ok(TraceReader::new(std::io::BufReader::new(f))?.read_to_trace()?)
}

/// Loads a `(benchmark, scale)` trace from the corpus, building it if
/// needed. Resolution order:
///
/// 1. an existing corpus container with at least half the scale's target
///    record count (so a smaller-scale capture is never silently reused);
/// 2. a legacy `results/cache/*.trace` file, migrated into the corpus;
/// 3. a fresh capture, published atomically.
///
/// `retrain` (the pipeline's `RLR_RETRAIN` switch) skips 1 and 2.
///
/// A container that exists but is *damaged* (bad checksum, torn tail,
/// garbage bytes) is quarantined into `quarantine/` beside it — evidence
/// preserved for `rlr doctor` — the move is logged on stderr, and capture
/// proceeds as if the entry were absent. A merely short container is
/// re-captured in place.
///
/// # Errors
///
/// Returns any capture error; a missing, short, or corrupt cached file is
/// never an error — it falls through to the next source.
pub fn load_or_capture(
    name: &'static str,
    scale: Scale,
    retrain: bool,
) -> Result<LlcTrace, CorpusError> {
    load_or_capture_in(&corpus_dir(), name, scale, retrain)
}

/// [`load_or_capture`] against an explicit corpus directory. This is the
/// seam the crash-consistency tests use: no environment mutation, no
/// shared global directory.
pub fn load_or_capture_in(
    dir: &Path,
    name: &'static str,
    scale: Scale,
    retrain: bool,
) -> Result<LlcTrace, CorpusError> {
    let min_len = scale.rl_trace_len() / 2;
    let path = corpus_file(dir, name, scale);
    if !retrain {
        match read_container(&path) {
            Ok(trace) if trace.len() >= min_len => {
                eprintln!("[corpus] {name}: loaded {} records from {}", trace.len(), path.display());
                return Ok(trace);
            }
            Ok(trace) => {
                eprintln!(
                    "[corpus] {name}: cached trace too short ({} records), re-capturing",
                    trace.len()
                );
            }
            Err(CorpusError::Io(e)) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => match quarantine_file(&path) {
                Ok(dest) => eprintln!(
                    "[corpus] {name}: corrupt container ({e}); quarantined to {}, re-capturing",
                    dest.display()
                ),
                Err(qe) => eprintln!(
                    "[corpus] {name}: corrupt container ({e}); quarantine failed ({qe}), \
                     re-capturing over it"
                ),
            },
        }
        if let Ok(f) = fs::File::open(legacy_path(name, scale)) {
            if let Ok(trace) = LlcTrace::read_from(std::io::BufReader::new(f)) {
                if trace.len() >= min_len {
                    eprintln!("[corpus] {name}: migrating legacy trace ({} records)", trace.len());
                    publish(&path, &trace)?;
                    return Ok(trace);
                }
            }
        }
    }
    eprintln!("[corpus] {name}: capturing LLC trace...");
    let workload = spec2006(name).ok_or_else(|| {
        CorpusError::Runner(RunnerError::UnknownBenchmark(name.to_owned()))
    })?;
    let trace = capture_llc_trace(&workload, scale, scale.rl_trace_len())?;
    publish(&path, &trace)?;
    Ok(trace)
}

/// Encodes `trace` and publishes it atomically at `path`.
fn publish(path: &PathBuf, trace: &LlcTrace) -> Result<(), CorpusError> {
    if let Some(dir) = path.parent() {
        fs::create_dir_all(dir)?;
    }
    let bytes = trace_io::encode_trace(trace, trace_io::DEFAULT_BLOCK_LEN)?;
    write_atomic(path, &bytes)?;
    Ok(())
}

/// Full verification pass over one corpus entry (used by `trace verify`
/// and the experiment preflight): checksums, structure, and totals.
///
/// # Errors
///
/// Returns the first container error the scan hits.
pub fn verify(name: &str, scale: Scale) -> Result<trace_io::TraceSummary, CorpusError> {
    let f = FaultReader::new(fs::File::open(corpus_path(name, scale))?);
    Ok(trace_io::scan(std::io::BufReader::new(f))?)
}

/// A corpus entry opened for streaming replay; reads go through the fault
/// seam so tests can inject short reads.
pub type CorpusReader = TraceReader<std::io::BufReader<FaultReader<fs::File>>>;

/// Opens one corpus entry as a streaming reader (bounded-memory replay).
///
/// # Errors
///
/// Returns any open or header-validation error.
pub fn open(name: &str, scale: Scale) -> Result<CorpusReader, CorpusError> {
    let f = FaultReader::new(fs::File::open(corpus_path(name, scale))?);
    Ok(TraceReader::new(std::io::BufReader::new(f))?)
}
