//! Deterministic fault injection: task faults for the resilient pool and
//! I/O faults for the storage layer.
//!
//! Failure-handling machinery (panic isolation, retry, the instruction
//! watchdog, crash-safe checkpoints) is impossible to test reliably with
//! *real* faults — OOM kills, torn writes, and wall-clock stalls are flaky
//! by nature. A [`FailPlan`] instead injects faults at exact, reproducible
//! points.
//!
//! Two directive families share one grammar (and one `RLR_FAIL_PLAN`
//! environment variable):
//!
//! * **Task faults** (`panic`, `stall`) are keyed by *task index* (the
//!   item's position in the pool input), which is stable across worker
//!   counts and scheduling orders. They are consumed by
//!   [`crate::runner::run_tasks_resilient`] via [`FailPlan`].
//! * **I/O faults** (`torn`, `flip`, `enospc`, `short-read`) are keyed by
//!   *byte offset* within one I/O operation, and by the operation's ordinal
//!   (`@OP`, default 0) among all faultable operations of its direction
//!   (write vs. read). They are consumed by the fallible-I/O seam —
//!   [`FaultWriter`] / [`FaultReader`] — which
//!   [`crate::checkpoint::write_atomic`], corpus publication, and the CLI's
//!   streaming `TraceWriter` paths all write through, so "the process died
//!   at byte k of this write" is a reproducible test case, not a flaky one.
//!
//! ```text
//! RLR_FAIL_PLAN="panic:3"          # panic task 3, first attempt only
//! RLR_FAIL_PLAN="panic:3:2"        # panic task 3's first two attempts
//! RLR_FAIL_PLAN="stall:1:*"        # stall task 1 on every attempt
//! RLR_FAIL_PLAN="torn:64"          # first seam write dies after 64 bytes
//! RLR_FAIL_PLAN="torn:64@2"        # ... the third seam write instead
//! RLR_FAIL_PLAN="flip:100"         # first seam write corrupts byte 100
//! RLR_FAIL_PLAN="enospc"           # first seam write fails: no space
//! RLR_FAIL_PLAN="short-read:40"    # first seam read sees only 40 bytes
//! RLR_FAIL_PLAN="panic:0;torn:16"  # families mix freely
//! ```
//!
//! I/O plans are installed process-wide from the environment (first seam
//! use wins), or per-thread and scoped via [`with_io_plan`] — the form the
//! crash-consistency test wall uses so concurrently running tests cannot
//! observe each other's faults.

use std::cell::RefCell;
use std::io::{self, Read, Write};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

/// The kind of fault a task directive injects.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// Panic before the task body runs (models a crashing cell).
    Panic,
    /// Spin consuming watchdog budget without progress (models a runaway
    /// or hung workload; requires an armed watchdog to terminate).
    Stall,
}

/// The kind of fault an I/O directive injects at the seam.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IoFaultKind {
    /// The write dies after exactly N bytes reached the file — the shape a
    /// SIGKILL or power loss leaves behind. The seam returns an error after
    /// the partial payload, so an atomic write never renames into place.
    Torn(u64),
    /// Byte N of the written stream is corrupted (XOR `0xA5`), but the
    /// write *completes* — the shape of silent media corruption. Offsets
    /// past the end of the stream are a no-op.
    Flip(u64),
    /// The write fails immediately with an out-of-space error, before any
    /// byte is written.
    Enospc,
    /// The read observes end-of-file after N bytes — the shape of reading
    /// a file another process only half-wrote.
    ShortRead(u64),
}

impl IoFaultKind {
    fn is_write(self) -> bool {
        !matches!(self, Self::ShortRead(_))
    }
}

#[derive(Clone, Debug, PartialEq, Eq)]
struct Directive {
    kind: FaultKind,
    task: usize,
    /// Attempts affected; `None` means every attempt.
    times: Option<u32>,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct IoDirective {
    kind: IoFaultKind,
    /// Which faultable operation (0-based, counted per direction) fires it.
    op: u64,
}

/// A deterministic schedule of injected task faults, keyed by task index.
#[derive(Debug, Default)]
pub struct FailPlan {
    directives: Vec<Directive>,
    /// Attempts seen so far per directive (same order as `directives`).
    seen: Mutex<Vec<u32>>,
}

/// A deterministic schedule of injected I/O faults, consumed by the
/// [`FaultWriter`]/[`FaultReader`] seam. Each directive fires on one
/// specific seam operation, identified by its ordinal since the plan was
/// installed (writes and reads are counted independently).
#[derive(Debug, Default)]
pub struct IoFailPlan {
    directives: Vec<IoDirective>,
    write_ops: AtomicU64,
    read_ops: AtomicU64,
}

/// Splits a raw plan into task and I/O directives; shared by both parsers
/// so either family tolerates (and ignores) the other's directives while
/// still rejecting genuine typos.
fn parse_directives(raw: &str) -> Result<(Vec<Directive>, Vec<IoDirective>), String> {
    let mut tasks = Vec::new();
    let mut ios = Vec::new();
    for part in raw.split(';').map(str::trim).filter(|p| !p.is_empty()) {
        let (body, op) = match part.split_once('@') {
            None => (part, 0u64),
            Some((body, op)) => (
                body,
                op.parse()
                    .map_err(|_| format!("`{part}`: @OP must be a number, got `{op}`"))?,
            ),
        };
        let fields: Vec<&str> = body.split(':').collect();
        match fields[0] {
            "panic" | "stall" => {
                if part.contains('@') {
                    return Err(format!("`{part}`: @OP applies to I/O faults only"));
                }
                if fields.len() < 2 || fields.len() > 3 {
                    return Err(format!("`{part}`: expected kind:task[:times]"));
                }
                let kind = if fields[0] == "panic" { FaultKind::Panic } else { FaultKind::Stall };
                let task = fields[1]
                    .parse()
                    .map_err(|_| format!("`{}`: task index must be a number", fields[1]))?;
                let times = match fields.get(2) {
                    None => Some(1),
                    Some(&"*") => None,
                    Some(n) => Some(
                        n.parse::<u32>()
                            .ok()
                            .filter(|&n| n > 0)
                            .ok_or_else(|| format!("`{n}`: times must be a positive number or `*`"))?,
                    ),
                };
                tasks.push(Directive { kind, task, times });
            }
            "torn" | "flip" | "short-read" => {
                if fields.len() != 2 {
                    return Err(format!("`{part}`: expected {}:byte-offset[@OP]", fields[0]));
                }
                let at: u64 = fields[1]
                    .parse()
                    .map_err(|_| format!("`{}`: byte offset must be a number", fields[1]))?;
                let kind = match fields[0] {
                    "torn" => IoFaultKind::Torn(at),
                    "flip" => IoFaultKind::Flip(at),
                    _ => IoFaultKind::ShortRead(at),
                };
                ios.push(IoDirective { kind, op });
            }
            "enospc" => {
                if fields.len() != 1 {
                    return Err(format!("`{part}`: expected enospc[@OP]"));
                }
                ios.push(IoDirective { kind: IoFaultKind::Enospc, op });
            }
            other => {
                return Err(format!(
                    "`{other}`: unknown fault kind (panic|stall|torn|flip|enospc|short-read)"
                ))
            }
        }
    }
    Ok((tasks, ios))
}

impl FailPlan {
    /// A plan that injects nothing.
    pub fn none() -> Self {
        Self::default()
    }

    /// Reads `RLR_FAIL_PLAN`; unset or empty means no injection. I/O
    /// directives in the variable are ignored here (the seam reads them
    /// itself); only the task-fault family is kept.
    ///
    /// # Panics
    ///
    /// Panics on a malformed plan: silently ignoring a typo would make a
    /// fault-injection run indistinguishable from a clean one.
    pub fn from_env() -> Self {
        match std::env::var("RLR_FAIL_PLAN") {
            Ok(raw) if !raw.trim().is_empty() => {
                Self::parse(&raw).unwrap_or_else(|e| panic!("RLR_FAIL_PLAN: {e}"))
            }
            _ => Self::none(),
        }
    }

    /// Parses the task-fault directives of a plan (see the module docs).
    /// I/O directives are validated but not retained.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed directive.
    pub fn parse(raw: &str) -> Result<Self, String> {
        let (directives, _ios) = parse_directives(raw)?;
        let seen = Mutex::new(vec![0; directives.len()]);
        Ok(Self { directives, seen })
    }

    /// `true` if the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.directives.is_empty()
    }

    /// Consults the plan for one attempt of `task`, advancing the
    /// directive's attempt counter. Called by the pool immediately before
    /// the task body runs.
    pub fn fault_for(&self, task: usize) -> Option<FaultKind> {
        if self.directives.is_empty() {
            return None;
        }
        let mut seen = self.seen.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        for (i, d) in self.directives.iter().enumerate() {
            if d.task != task {
                continue;
            }
            let attempt = seen[i];
            seen[i] += 1;
            match d.times {
                None => return Some(d.kind),
                Some(times) if attempt < times => return Some(d.kind),
                Some(_) => return None,
            }
        }
        None
    }
}

impl IoFailPlan {
    /// A plan that injects nothing.
    pub fn none() -> Self {
        Self::default()
    }

    /// Parses the I/O-fault directives of a plan (see the module docs).
    /// Task directives are validated but not retained.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed directive.
    pub fn parse(raw: &str) -> Result<Self, String> {
        let (_tasks, directives) = parse_directives(raw)?;
        Ok(Self { directives, ..Self::default() })
    }

    /// `true` if the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.directives.is_empty()
    }

    fn next(&self, write: bool) -> Option<IoFaultKind> {
        let counter = if write { &self.write_ops } else { &self.read_ops };
        let op = counter.fetch_add(1, Ordering::Relaxed);
        self.directives
            .iter()
            .find(|d| d.kind.is_write() == write && d.op == op)
            .map(|d| d.kind)
    }
}

// ---------------------------------------------------------------------------
// Plan installation: scoped thread-local (tests) over process-global (env).
// ---------------------------------------------------------------------------

thread_local! {
    static TL_IO_PLAN: RefCell<Option<IoFailPlan>> = const { RefCell::new(None) };
}

fn global_io_plan() -> &'static IoFailPlan {
    static GLOBAL: OnceLock<IoFailPlan> = OnceLock::new();
    GLOBAL.get_or_init(|| match std::env::var("RLR_FAIL_PLAN") {
        Ok(raw) if !raw.trim().is_empty() => {
            IoFailPlan::parse(&raw).unwrap_or_else(|e| panic!("RLR_FAIL_PLAN: {e}"))
        }
        _ => IoFailPlan::none(),
    })
}

/// Runs `f` with `plan` installed as this thread's I/O fault plan,
/// restoring the previous plan (if any) afterwards. Operation ordinals
/// (`@OP`) count from the moment of installation. This is how tests inject
/// storage faults without touching process-global state.
pub fn with_io_plan<T>(plan: IoFailPlan, f: impl FnOnce() -> T) -> T {
    let previous = TL_IO_PLAN.with(|tl| tl.replace(Some(plan)));
    struct Restore(Option<IoFailPlan>);
    impl Drop for Restore {
        fn drop(&mut self) {
            TL_IO_PLAN.with(|tl| *tl.borrow_mut() = self.0.take());
        }
    }
    let _restore = Restore(previous);
    f()
}

/// Consumes the next fault for one seam operation: the thread-local plan
/// if one is installed, else the process-global plan from `RLR_FAIL_PLAN`.
fn next_io_fault(write: bool) -> Option<IoFaultKind> {
    let local = TL_IO_PLAN.with(|tl| {
        let tl = tl.borrow();
        tl.as_ref().map(|plan| (true, plan.next(write)))
    });
    match local {
        Some((_, fault)) => fault,
        None => {
            let global = global_io_plan();
            if global.is_empty() {
                None // skip the counter churn for the common clean path
            } else {
                global.next(write)
            }
        }
    }
}

fn torn_error() -> io::Error {
    // Not `Interrupted`: `write_all` transparently retries that kind, and a
    // torn write must look terminal, like the process dying mid-write.
    io::Error::other("injected fault: torn write")
}

fn enospc_error() -> io::Error {
    io::Error::new(io::ErrorKind::StorageFull, "injected fault: no space left on device")
}

/// The XOR mask [`IoFaultKind::Flip`] applies (never a no-op).
pub const FLIP_MASK: u8 = 0xA5;

// ---------------------------------------------------------------------------
// The seam: Write/Read adapters every faultable storage path goes through.
// ---------------------------------------------------------------------------

/// The fallible-write seam. Wraps any [`Write`] sink; constructing one
/// claims the next write-operation ordinal from the installed
/// [`IoFailPlan`] (if any) and applies the claimed fault at exact byte
/// offsets as data streams through. With no plan installed this is a
/// zero-cost pass-through.
pub struct FaultWriter<W: Write> {
    inner: W,
    written: u64,
    fault: Option<IoFaultKind>,
}

impl<W: Write> FaultWriter<W> {
    /// Wraps `inner`, claiming the next write-op fault from the plan.
    pub fn new(inner: W) -> Self {
        Self { inner, written: 0, fault: next_io_fault(true) }
    }

    /// The wrapped sink (e.g. to `sync_all` a file after writing).
    pub fn get_ref(&self) -> &W {
        &self.inner
    }

    /// Unwraps into the inner sink.
    pub fn into_inner(self) -> W {
        self.inner
    }
}

impl<W: Write> Write for FaultWriter<W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self.fault {
            None => {
                let n = self.inner.write(buf)?;
                self.written += n as u64;
                Ok(n)
            }
            Some(IoFaultKind::Enospc) => Err(enospc_error()),
            Some(IoFaultKind::Torn(at)) => {
                if self.written >= at {
                    // The bytes up to `at` are on disk; everything after
                    // "never happened". Flush so the partial payload is
                    // observable, exactly like a kill mid-write.
                    self.inner.flush()?;
                    return Err(torn_error());
                }
                let take = usize::try_from(at - self.written)
                    .unwrap_or(usize::MAX)
                    .min(buf.len());
                let n = self.inner.write(&buf[..take])?;
                self.written += n as u64;
                Ok(n)
            }
            Some(IoFaultKind::Flip(at)) => {
                let end = self.written + buf.len() as u64;
                let n = if at >= self.written && at < end {
                    let mut copy = buf.to_vec();
                    copy[(at - self.written) as usize] ^= FLIP_MASK;
                    self.inner.write(&copy)?
                } else {
                    self.inner.write(buf)?
                };
                self.written += n as u64;
                Ok(n)
            }
            Some(IoFaultKind::ShortRead(_)) => {
                // Read faults never reach a writer (`next_io_fault`
                // filters by direction); treat defensively as clean.
                let n = self.inner.write(buf)?;
                self.written += n as u64;
                Ok(n)
            }
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

/// The fallible-read seam: the read-side dual of [`FaultWriter`].
/// A claimed [`IoFaultKind::ShortRead`] makes the stream report a clean
/// end-of-file after N bytes — how a half-written file reads back.
pub struct FaultReader<R: Read> {
    inner: R,
    read: u64,
    fault: Option<IoFaultKind>,
}

impl<R: Read> FaultReader<R> {
    /// Wraps `inner`, claiming the next read-op fault from the plan.
    pub fn new(inner: R) -> Self {
        Self { inner, read: 0, fault: next_io_fault(false) }
    }
}

impl<R: Read> Read for FaultReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let cap = match self.fault {
            Some(IoFaultKind::ShortRead(at)) => {
                if self.read >= at {
                    return Ok(0); // injected EOF
                }
                usize::try_from(at - self.read).unwrap_or(usize::MAX).min(buf.len())
            }
            _ => buf.len(),
        };
        let n = self.inner.read(&mut buf[..cap])?;
        self.read += n as u64;
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_directive_form() {
        let plan = FailPlan::parse("panic:3; stall:1:*;panic:0:2").expect("valid plan");
        assert_eq!(plan.directives.len(), 3);
        assert_eq!(plan.directives[0], Directive { kind: FaultKind::Panic, task: 3, times: Some(1) });
        assert_eq!(plan.directives[1], Directive { kind: FaultKind::Stall, task: 1, times: None });
        assert_eq!(plan.directives[2], Directive { kind: FaultKind::Panic, task: 0, times: Some(2) });
    }

    #[test]
    fn parses_io_directive_forms() {
        let plan = IoFailPlan::parse("torn:64;flip:100@2; enospc@1;short-read:40").expect("valid");
        assert_eq!(
            plan.directives,
            vec![
                IoDirective { kind: IoFaultKind::Torn(64), op: 0 },
                IoDirective { kind: IoFaultKind::Flip(100), op: 2 },
                IoDirective { kind: IoFaultKind::Enospc, op: 1 },
                IoDirective { kind: IoFaultKind::ShortRead(40), op: 0 },
            ]
        );
    }

    #[test]
    fn families_tolerate_each_other_but_not_typos() {
        // A mixed plan parses under both families, each keeping its own.
        let tasks = FailPlan::parse("panic:1;torn:8").expect("task side");
        assert_eq!(tasks.directives.len(), 1);
        let ios = IoFailPlan::parse("panic:1;torn:8").expect("io side");
        assert_eq!(ios.directives.len(), 1);
        for bad in ["oops:1", "torn", "torn:x", "flip:1:2", "enospc:5", "torn:1@x", "panic:1@2"] {
            assert!(FailPlan::parse(bad).is_err(), "`{bad}` must not parse");
            assert!(IoFailPlan::parse(bad).is_err(), "`{bad}` must not parse");
        }
    }

    #[test]
    fn rejects_malformed_plans() {
        for bad in ["oops:1", "panic", "panic:x", "panic:1:0", "panic:1:2:3"] {
            assert!(FailPlan::parse(bad).is_err(), "`{bad}` should not parse");
        }
        assert!(FailPlan::parse("").expect("empty is a no-op plan").is_empty());
        assert!(IoFailPlan::parse("").expect("empty is a no-op plan").is_empty());
    }

    #[test]
    fn counts_attempts_per_directive() {
        let plan = FailPlan::parse("panic:2:2").expect("valid");
        assert_eq!(plan.fault_for(2), Some(FaultKind::Panic));
        assert_eq!(plan.fault_for(2), Some(FaultKind::Panic));
        assert_eq!(plan.fault_for(2), None, "third attempt succeeds");
        assert_eq!(plan.fault_for(1), None, "other tasks unaffected");
    }

    #[test]
    fn always_directive_never_relents() {
        let plan = FailPlan::parse("stall:0:*").expect("valid");
        for _ in 0..10 {
            assert_eq!(plan.fault_for(0), Some(FaultKind::Stall));
        }
    }

    #[test]
    fn torn_writer_stops_at_the_exact_byte() {
        with_io_plan(IoFailPlan::parse("torn:5").expect("valid"), || {
            let mut sink = Vec::new();
            let mut w = FaultWriter::new(&mut sink);
            let err = w.write_all(b"0123456789").expect_err("torn write must fail");
            assert_eq!(err.kind(), io::ErrorKind::Other);
            assert_eq!(sink, b"01234", "exactly 5 bytes reached the sink");
        });
    }

    #[test]
    fn torn_past_the_end_is_a_complete_write() {
        with_io_plan(IoFailPlan::parse("torn:100").expect("valid"), || {
            let mut sink = Vec::new();
            FaultWriter::new(&mut sink).write_all(b"short").expect("fits under the tear");
            assert_eq!(sink, b"short");
        });
    }

    #[test]
    fn flip_corrupts_one_byte_and_succeeds() {
        with_io_plan(IoFailPlan::parse("flip:3").expect("valid"), || {
            let mut sink = Vec::new();
            let mut w = FaultWriter::new(&mut sink);
            // Two writes so the flip has to track absolute offsets.
            w.write_all(b"ab").expect("clean");
            w.write_all(b"cdef").expect("flip still succeeds");
            assert_eq!(sink, [b'a', b'b', b'c', b'd' ^ FLIP_MASK, b'e', b'f']);
        });
    }

    #[test]
    fn enospc_fails_before_any_byte() {
        with_io_plan(IoFailPlan::parse("enospc").expect("valid"), || {
            let mut sink = Vec::new();
            let err = FaultWriter::new(&mut sink).write_all(b"data").expect_err("no space");
            assert_eq!(err.kind(), io::ErrorKind::StorageFull);
            assert!(sink.is_empty());
        });
    }

    #[test]
    fn op_ordinals_select_one_operation() {
        with_io_plan(IoFailPlan::parse("torn:0@1").expect("valid"), || {
            let mut a = Vec::new();
            FaultWriter::new(&mut a).write_all(b"first").expect("op 0 untouched");
            let mut b = Vec::new();
            assert!(FaultWriter::new(&mut b).write_all(b"second").is_err(), "op 1 torn");
            let mut c = Vec::new();
            FaultWriter::new(&mut c).write_all(b"third").expect("op 2 untouched");
        });
    }

    #[test]
    fn short_read_injects_an_early_eof() {
        with_io_plan(IoFailPlan::parse("short-read:4").expect("valid"), || {
            let mut out = Vec::new();
            let n = FaultReader::new(&b"0123456789"[..])
                .read_to_end(&mut out)
                .expect("short read is clean EOF, not an error");
            assert_eq!(n, 4);
            assert_eq!(out, b"0123");
        });
    }

    #[test]
    fn reads_and_writes_are_counted_independently() {
        with_io_plan(IoFailPlan::parse("short-read:0;flip:0").expect("valid"), || {
            // The write op does not consume the read directive or vice versa.
            let mut sink = Vec::new();
            FaultWriter::new(&mut sink).write_all(b"x").expect("flip completes");
            assert_eq!(sink, [b'x' ^ FLIP_MASK]);
            let mut out = Vec::new();
            FaultReader::new(&b"abc"[..]).read_to_end(&mut out).expect("clean EOF");
            assert!(out.is_empty(), "read op 0 sees an immediate EOF");
        });
    }

    #[test]
    fn scoped_plans_restore_the_previous_plan() {
        with_io_plan(IoFailPlan::parse("torn:0").expect("valid"), || {
            with_io_plan(IoFailPlan::none(), || {
                let mut sink = Vec::new();
                FaultWriter::new(&mut sink).write_all(b"inner").expect("inner plan is clean");
            });
            let mut sink = Vec::new();
            assert!(
                FaultWriter::new(&mut sink).write_all(b"outer").is_err(),
                "outer plan is restored (its op 0 is still pending)"
            );
        });
    }
}
