//! Deterministic fault injection for the resilient task pool.
//!
//! Failure-handling machinery (panic isolation, retry, the instruction
//! watchdog) is impossible to test reliably with *real* faults — OOM kills
//! and wall-clock stalls are flaky by nature. A [`FailPlan`] instead
//! injects faults at exact, reproducible points: "panic task 3 on its
//! first two attempts", "stall task 1 until the watchdog fires". Plans are
//! keyed by *task index* (the item's position in the pool input), which is
//! stable across worker counts and scheduling orders, so every injected
//! failure is deterministic.
//!
//! Plans parse from the `RLR_FAIL_PLAN` environment variable:
//!
//! ```text
//! RLR_FAIL_PLAN="panic:3"        # panic task 3, first attempt only
//! RLR_FAIL_PLAN="panic:3:2"      # panic task 3's first two attempts
//! RLR_FAIL_PLAN="panic:3:*"      # panic task 3 on every attempt
//! RLR_FAIL_PLAN="stall:1"        # stall task 1 until the watchdog fires
//! RLR_FAIL_PLAN="panic:0;stall:4:*"  # multiple directives
//! ```

use std::sync::Mutex;

/// The kind of fault a directive injects.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// Panic before the task body runs (models a crashing cell).
    Panic,
    /// Spin consuming watchdog budget without progress (models a runaway
    /// or hung workload; requires an armed watchdog to terminate).
    Stall,
}

#[derive(Clone, Debug, PartialEq, Eq)]
struct Directive {
    kind: FaultKind,
    task: usize,
    /// Attempts affected; `None` means every attempt.
    times: Option<u32>,
}

/// A deterministic schedule of injected faults, keyed by task index.
#[derive(Debug, Default)]
pub struct FailPlan {
    directives: Vec<Directive>,
    /// Attempts seen so far per directive (same order as `directives`).
    seen: Mutex<Vec<u32>>,
}

impl FailPlan {
    /// A plan that injects nothing.
    pub fn none() -> Self {
        Self::default()
    }

    /// Reads `RLR_FAIL_PLAN`; unset or empty means no injection.
    ///
    /// # Panics
    ///
    /// Panics on a malformed plan: silently ignoring a typo would make a
    /// fault-injection run indistinguishable from a clean one.
    pub fn from_env() -> Self {
        match std::env::var("RLR_FAIL_PLAN") {
            Ok(raw) if !raw.trim().is_empty() => {
                Self::parse(&raw).unwrap_or_else(|e| panic!("RLR_FAIL_PLAN: {e}"))
            }
            _ => Self::none(),
        }
    }

    /// Parses a plan from its textual form (see the module docs).
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed directive.
    pub fn parse(raw: &str) -> Result<Self, String> {
        let mut directives = Vec::new();
        for part in raw.split(';').map(str::trim).filter(|p| !p.is_empty()) {
            let fields: Vec<&str> = part.split(':').collect();
            if fields.len() < 2 || fields.len() > 3 {
                return Err(format!("`{part}`: expected kind:task[:times]"));
            }
            let kind = match fields[0] {
                "panic" => FaultKind::Panic,
                "stall" => FaultKind::Stall,
                other => return Err(format!("`{other}`: unknown fault kind (panic|stall)")),
            };
            let task = fields[1]
                .parse()
                .map_err(|_| format!("`{}`: task index must be a number", fields[1]))?;
            let times = match fields.get(2) {
                None => Some(1),
                Some(&"*") => None,
                Some(n) => Some(
                    n.parse::<u32>()
                        .ok()
                        .filter(|&n| n > 0)
                        .ok_or_else(|| format!("`{n}`: times must be a positive number or `*`"))?,
                ),
            };
            directives.push(Directive { kind, task, times });
        }
        let seen = Mutex::new(vec![0; directives.len()]);
        Ok(Self { directives, seen })
    }

    /// `true` if the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.directives.is_empty()
    }

    /// Consults the plan for one attempt of `task`, advancing the
    /// directive's attempt counter. Called by the pool immediately before
    /// the task body runs.
    pub fn fault_for(&self, task: usize) -> Option<FaultKind> {
        if self.directives.is_empty() {
            return None;
        }
        let mut seen = self.seen.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        for (i, d) in self.directives.iter().enumerate() {
            if d.task != task {
                continue;
            }
            let attempt = seen[i];
            seen[i] += 1;
            match d.times {
                None => return Some(d.kind),
                Some(times) if attempt < times => return Some(d.kind),
                Some(_) => return None,
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_directive_form() {
        let plan = FailPlan::parse("panic:3; stall:1:*;panic:0:2").expect("valid plan");
        assert_eq!(plan.directives.len(), 3);
        assert_eq!(plan.directives[0], Directive { kind: FaultKind::Panic, task: 3, times: Some(1) });
        assert_eq!(plan.directives[1], Directive { kind: FaultKind::Stall, task: 1, times: None });
        assert_eq!(plan.directives[2], Directive { kind: FaultKind::Panic, task: 0, times: Some(2) });
    }

    #[test]
    fn rejects_malformed_plans() {
        for bad in ["oops:1", "panic", "panic:x", "panic:1:0", "panic:1:2:3"] {
            assert!(FailPlan::parse(bad).is_err(), "`{bad}` should not parse");
        }
        assert!(FailPlan::parse("").expect("empty is a no-op plan").is_empty());
    }

    #[test]
    fn counts_attempts_per_directive() {
        let plan = FailPlan::parse("panic:2:2").expect("valid");
        assert_eq!(plan.fault_for(2), Some(FaultKind::Panic));
        assert_eq!(plan.fault_for(2), Some(FaultKind::Panic));
        assert_eq!(plan.fault_for(2), None, "third attempt succeeds");
        assert_eq!(plan.fault_for(1), None, "other tasks unaffected");
    }

    #[test]
    fn always_directive_never_relents() {
        let plan = FailPlan::parse("stall:0:*").expect("valid");
        for _ in 0..10 {
            assert_eq!(plan.fault_for(0), Some(FaultKind::Stall));
        }
    }
}
