//! `rlr doctor`: scan the results tree, classify every artifact, repair
//! what can be repaired, quarantine what cannot.
//!
//! Long sweeps leave their value on disk — sweep checkpoint cells, corpus
//! containers, bench snapshots and history — and a crash (or bad media)
//! can damage any of them. The doctor walks one results root and applies
//! a uniform policy:
//!
//! * **Orphaned scratch files** (`.{name}.tmp.{pid}` crash residue) are
//!   deleted ([`crate::checkpoint::sweep_orphans`]).
//! * **Checkpoint cells** (`cache/sweep/*.json`) must parse and embed a
//!   key whose FNV-1a hash matches their file name; anything else is
//!   quarantined (resume already treats it as a miss, so removal only
//!   costs a recomputation, never correctness).
//! * **Corpus containers** (`corpus/*.rlt`) are verified block by block;
//!   a damaged container is salvaged ([`trace_io::salvage_file`]) — the
//!   original moves to `quarantine/` and the recovered blocks are
//!   republished atomically in its place. A container with nothing to
//!   salvage is quarantined only.
//! * **Bench artifacts** (`bench/*.json`, `bench/history.jsonl`) must
//!   parse; a history file with some corrupt lines is rewritten keeping
//!   the valid lines (original quarantined first), any other unparsable
//!   file is quarantined.
//!
//! Every quarantine preserves the damaged bytes beside the artifact (see
//! [`crate::corpus::quarantine_file`]); nothing is silently destroyed
//! except scratch orphans, which were never addressable by any reader.
//! Running with `repair = false` (`rlr doctor --dry-run`) reports the
//! same classification without touching the filesystem.

use std::fs;
use std::path::{Path, PathBuf};

use crate::checkpoint::{self, write_atomic};
use crate::corpus::quarantine_file;
use crate::json::Json;
use crate::report::Table;

/// What the doctor concluded (and did) about one artifact.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ArtifactStatus {
    /// Verified clean; untouched.
    Ok,
    /// Was damaged; a repaired replacement is now in place (original
    /// quarantined).
    Repaired,
    /// Damaged beyond repair; moved to `quarantine/`.
    Quarantined,
    /// Damaged, but this was a dry run (or the repair itself failed) —
    /// nothing was changed.
    Damaged,
}

impl ArtifactStatus {
    fn label(self) -> &'static str {
        match self {
            Self::Ok => "ok",
            Self::Repaired => "repaired",
            Self::Quarantined => "quarantined",
            Self::Damaged => "damaged",
        }
    }
}

/// One scanned artifact.
#[derive(Debug)]
pub struct ArtifactReport {
    /// Where it lives.
    pub path: PathBuf,
    /// Artifact family (checkpoint cell, corpus container, ...).
    pub kind: &'static str,
    /// Verdict (and action taken, when repairing).
    pub status: ArtifactStatus,
    /// Human-readable specifics: what was wrong, what was recovered.
    pub detail: String,
}

/// Everything one doctor pass found.
#[derive(Debug, Default)]
pub struct DoctorReport {
    /// Per-artifact verdicts, in scan order.
    pub artifacts: Vec<ArtifactReport>,
    /// Orphaned scratch files deleted (counted, not listed — they carry
    /// no recoverable content).
    pub orphans_removed: usize,
}

impl DoctorReport {
    fn count(&self, status: ArtifactStatus) -> usize {
        self.artifacts.iter().filter(|a| a.status == status).count()
    }

    /// `true` when nothing needed (or needs) attention.
    pub fn all_clean(&self) -> bool {
        self.orphans_removed == 0 && self.artifacts.iter().all(|a| a.status == ArtifactStatus::Ok)
    }

    /// Renders the summary table `rlr doctor` prints: one row per
    /// artifact that needed attention, totals in the notes.
    pub fn render(&self) -> String {
        let mut table = Table::new(
            "doctor",
            vec!["artifact".to_owned(), "kind".to_owned(), "status".to_owned(), "detail".to_owned()],
        );
        for a in &self.artifacts {
            if a.status == ArtifactStatus::Ok {
                continue;
            }
            table.push_row(vec![
                a.path.display().to_string(),
                a.kind.to_owned(),
                a.status.label().to_owned(),
                a.detail.clone(),
            ]);
        }
        table.push_note(format!(
            "{} ok, {} repaired, {} quarantined, {} damaged; {} orphaned scratch file(s) removed",
            self.count(ArtifactStatus::Ok),
            self.count(ArtifactStatus::Repaired),
            self.count(ArtifactStatus::Quarantined),
            self.count(ArtifactStatus::Damaged),
            self.orphans_removed,
        ));
        table.render()
    }
}

/// Files of `dir` with extension `ext`, sorted for a deterministic report;
/// skips subdirectories (and with them every `quarantine/`).
fn files_with_ext(dir: &Path, ext: &str) -> Vec<PathBuf> {
    let Ok(entries) = fs::read_dir(dir) else { return Vec::new() };
    let mut files: Vec<PathBuf> = entries
        .flatten()
        .map(|e| e.path())
        .filter(|p| p.is_file() && p.extension().and_then(|e| e.to_str()) == Some(ext))
        .collect();
    files.sort();
    files
}

/// Quarantines `path` if `repair`, reporting the outcome either way.
fn quarantine_or_flag(
    report: &mut DoctorReport,
    path: &Path,
    kind: &'static str,
    repair: bool,
    problem: String,
) {
    let (status, detail) = if !repair {
        (ArtifactStatus::Damaged, format!("{problem} (dry run)"))
    } else {
        match quarantine_file(path) {
            Ok(dest) => {
                (ArtifactStatus::Quarantined, format!("{problem}; moved to {}", dest.display()))
            }
            Err(e) => (ArtifactStatus::Damaged, format!("{problem}; quarantine failed: {e}")),
        }
    };
    report.artifacts.push(ArtifactReport { path: path.to_owned(), kind, status, detail });
}

fn check_checkpoint_cells(report: &mut DoctorReport, dir: &Path, repair: bool) {
    if repair {
        report.orphans_removed += checkpoint::sweep_orphans(dir);
    } else if let Ok(entries) = fs::read_dir(dir) {
        report.orphans_removed += entries
            .flatten()
            .filter(|e| {
                let name = e.file_name();
                let name = name.to_string_lossy();
                name.starts_with('.') && name.contains(".tmp.")
            })
            .count();
    }
    for path in files_with_ext(dir, "json") {
        // A valid cell embeds its full key string, and its file name is
        // the key's 16-hex-digit FNV-1a hash — both checkable without
        // knowing which sweep wrote it.
        let verdict = fs::read_to_string(&path)
            .map_err(|e| format!("unreadable: {e}"))
            .and_then(|text| Json::parse(&text).map_err(|e| format!("invalid JSON: {e}")))
            .and_then(|v| match v.get("key").and_then(Json::as_str) {
                None => Err("no embedded key".to_owned()),
                Some(key) => {
                    let expected = format!("{:016x}.json", trace_io::fnv1a(key.as_bytes()));
                    if path.file_name().and_then(|n| n.to_str()) == Some(expected.as_str()) {
                        Ok(())
                    } else {
                        Err(format!("embedded key hashes to {expected}, not this file name"))
                    }
                }
            });
        match verdict {
            Ok(()) => report.artifacts.push(ArtifactReport {
                path,
                kind: "checkpoint cell",
                status: ArtifactStatus::Ok,
                detail: String::new(),
            }),
            Err(problem) => {
                quarantine_or_flag(report, &path, "checkpoint cell", repair, problem)
            }
        }
    }
}

fn check_corpus_containers(report: &mut DoctorReport, dir: &Path, repair: bool) {
    for path in files_with_ext(dir, "rlt") {
        let scan = fs::File::open(&path)
            .map_err(trace_io::TraceIoError::from)
            .and_then(|f| trace_io::scan(std::io::BufReader::new(f)));
        let problem = match scan {
            Ok(summary) => {
                report.artifacts.push(ArtifactReport {
                    path,
                    kind: "corpus container",
                    status: ArtifactStatus::Ok,
                    detail: format!("{} records", summary.records),
                });
                continue;
            }
            Err(e) => e.to_string(),
        };
        if !repair {
            report.artifacts.push(ArtifactReport {
                path,
                kind: "corpus container",
                status: ArtifactStatus::Damaged,
                detail: format!("{problem} (dry run)"),
            });
            continue;
        }
        // Salvage first, then quarantine the original, then republish the
        // survivors — so the damaged bytes are preserved as evidence and
        // the live name only ever holds a verifying container.
        match trace_io::salvage_file(&path) {
            Ok((salvage, bytes)) if salvage.recovered_records > 0 => {
                let outcome = quarantine_file(&path)
                    .map_err(|e| format!("quarantine failed: {e}"))
                    .and_then(|dest| {
                        write_atomic(&path, &bytes)
                            .map_err(|e| format!("republish failed: {e}"))
                            .map(|()| dest)
                    });
                match outcome {
                    Ok(dest) => report.artifacts.push(ArtifactReport {
                        path,
                        kind: "corpus container",
                        status: ArtifactStatus::Repaired,
                        detail: format!(
                            "{problem}; recovered {}/{} blocks ({} records), original at {}",
                            salvage.recovered_blocks,
                            salvage.blocks.len(),
                            salvage.recovered_records,
                            dest.display()
                        ),
                    }),
                    Err(e) => report.artifacts.push(ArtifactReport {
                        path,
                        kind: "corpus container",
                        status: ArtifactStatus::Damaged,
                        detail: format!("{problem}; {e}"),
                    }),
                }
            }
            Ok(_) => quarantine_or_flag(
                report,
                &path,
                "corpus container",
                repair,
                format!("{problem}; nothing salvageable"),
            ),
            Err(e) => quarantine_or_flag(
                report,
                &path,
                "corpus container",
                repair,
                format!("{problem}; salvage failed: {e}"),
            ),
        }
    }
}

fn check_bench_artifacts(report: &mut DoctorReport, dir: &Path, repair: bool) {
    for path in files_with_ext(dir, "json") {
        let verdict = fs::read_to_string(&path)
            .map_err(|e| format!("unreadable: {e}"))
            .and_then(|text| Json::parse(&text).map(|_| ()).map_err(|e| format!("invalid JSON: {e}")));
        match verdict {
            Ok(()) => report.artifacts.push(ArtifactReport {
                path,
                kind: "bench snapshot",
                status: ArtifactStatus::Ok,
                detail: String::new(),
            }),
            Err(problem) => quarantine_or_flag(report, &path, "bench snapshot", repair, problem),
        }
    }
    let history = dir.join("history.jsonl");
    let Ok(text) = fs::read_to_string(&history) else { return };
    let lines: Vec<&str> = text.lines().collect();
    let valid: Vec<&str> =
        lines.iter().copied().filter(|l| Json::parse(l).is_ok()).collect();
    let bad = lines.len() - valid.len();
    if bad == 0 {
        report.artifacts.push(ArtifactReport {
            path: history,
            kind: "bench history",
            status: ArtifactStatus::Ok,
            detail: format!("{} snapshots", lines.len()),
        });
        return;
    }
    let problem = format!("{bad} of {} lines unparsable", lines.len());
    if !repair {
        report.artifacts.push(ArtifactReport {
            path: history,
            kind: "bench history",
            status: ArtifactStatus::Damaged,
            detail: format!("{problem} (dry run)"),
        });
        return;
    }
    // History is append-only JSONL, so dropping only the rotten lines is
    // a faithful repair; the original (evidence) moves aside first.
    let rewritten = valid.join("\n") + if valid.is_empty() { "" } else { "\n" };
    let outcome = quarantine_file(&history)
        .map_err(|e| format!("quarantine failed: {e}"))
        .and_then(|dest| {
            write_atomic(&history, rewritten.as_bytes())
                .map_err(|e| format!("rewrite failed: {e}"))
                .map(|()| dest)
        });
    match outcome {
        Ok(dest) => report.artifacts.push(ArtifactReport {
            path: history,
            kind: "bench history",
            status: ArtifactStatus::Repaired,
            detail: format!(
                "{problem}; kept {} valid line(s), original at {}",
                valid.len(),
                dest.display()
            ),
        }),
        Err(e) => report.artifacts.push(ArtifactReport {
            path: history,
            kind: "bench history",
            status: ArtifactStatus::Damaged,
            detail: format!("{problem}; {e}"),
        }),
    }
}

/// Scans the results tree under `root` (normally
/// [`crate::report::results_dir`]) and applies the repair policy described
/// in the module docs. With `repair = false` the same classification is
/// reported but the filesystem is left untouched.
pub fn run(root: &Path, repair: bool) -> DoctorReport {
    let mut report = DoctorReport::default();
    // Every checkpoint family keeps its cells in its own subdirectory of
    // `cache/` (`sweep`, `objcache`, `tenancy`, ...). Cells embed their
    // key regardless of which sweep wrote them, so one walk classifies
    // them all; sorted so the report order is deterministic.
    let mut families: Vec<PathBuf> = fs::read_dir(root.join("cache"))
        .map(|entries| entries.flatten().map(|e| e.path()).filter(|p| p.is_dir()).collect())
        .unwrap_or_default();
    families.sort();
    for dir in &families {
        check_checkpoint_cells(&mut report, dir, repair);
    }
    check_corpus_containers(&mut report, &root.join("corpus"), repair);
    check_bench_artifacts(&mut report, &root.join("bench"), repair);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch_root(tag: &str) -> PathBuf {
        let root = std::env::temp_dir().join(format!("rlr_doctor_{tag}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&root);
        root
    }

    #[test]
    fn empty_root_is_clean() {
        let root = scratch_root("empty");
        let report = run(&root, true);
        assert!(report.all_clean());
        assert!(report.artifacts.is_empty());
    }

    #[test]
    fn dry_run_reports_without_touching() {
        let root = scratch_root("dry");
        let sweep = root.join("cache").join("sweep");
        fs::create_dir_all(&sweep).expect("mkdir");
        let bad = sweep.join("00000000deadbeef.json");
        fs::write(&bad, b"not json at all").expect("write");
        fs::write(sweep.join(".x.json.tmp.1"), b"").expect("orphan");
        let report = run(&root, false);
        assert_eq!(report.count(ArtifactStatus::Damaged), 1);
        assert_eq!(report.orphans_removed, 1, "dry run still counts orphans");
        assert!(bad.exists(), "dry run must not move anything");
        assert!(sweep.join(".x.json.tmp.1").exists(), "dry run must not delete orphans");
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn repairs_quarantine_and_leave_valid_cells() {
        let root = scratch_root("repair");
        let sweep = root.join("cache").join("sweep");
        // One valid cell (key hash matches file name)...
        let key = crate::checkpoint::cell_key("429.mcf", "lru", "doctor-test");
        let stats = cache_sim::RunStats::default();
        crate::checkpoint::store_cell(&sweep, &key, &stats);
        // ...one with a mismatched name, one with garbage, one orphan.
        let text = crate::checkpoint::encode_cell(&key, &stats);
        fs::write(sweep.join("0123456789abcdef.json"), text).expect("mismatched");
        fs::write(sweep.join("ffffffffffffffff.json"), b"{broken").expect("garbage");
        fs::write(sweep.join(".y.json.tmp.7"), b"torn").expect("orphan");
        let report = run(&root, true);
        assert_eq!(report.count(ArtifactStatus::Ok), 1);
        assert_eq!(report.count(ArtifactStatus::Quarantined), 2);
        assert_eq!(report.orphans_removed, 1);
        assert!(sweep.join(key.file_name()).exists(), "valid cell untouched");
        assert!(!sweep.join("0123456789abcdef.json").exists());
        assert!(sweep.join("quarantine").join("0123456789abcdef.json").exists());
        // Doctor is idempotent: a second pass finds a clean tree.
        assert!(run(&root, true).all_clean());
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn walks_every_checkpoint_family() {
        let root = scratch_root("families");
        // A valid tenancy cell and a torn one, plus a broken objcache
        // cell: doctor must classify all of them, not just cache/sweep.
        let tenancy_dir = root.join("cache").join("tenancy");
        let mix = workloads::TenantMix::default_three_class();
        let llc = crate::tenancy::default_llc();
        let key = crate::tenancy::tenancy_cell_key(
            &mix,
            &tenancy::IsolationMode::Shared,
            &llc,
            1_000,
        );
        let stats = vec![crate::tenancy::TenantCellStats::default(); 3];
        crate::tenancy::store_tenancy_cell(&tenancy_dir, &key, &stats);
        let full = crate::tenancy::encode_tenancy_cell(&key, &stats);
        fs::create_dir_all(&tenancy_dir).expect("mkdir");
        fs::write(tenancy_dir.join("00000000torncell.json"), &full[..full.len() / 2])
            .expect("torn cell");
        let obj_dir = root.join("cache").join("objcache");
        fs::create_dir_all(&obj_dir).expect("mkdir");
        fs::write(obj_dir.join("ffffffffffffffff.json"), b"{broken").expect("garbage");
        let report = run(&root, true);
        assert_eq!(report.count(ArtifactStatus::Ok), 1, "{report:?}");
        assert_eq!(report.count(ArtifactStatus::Quarantined), 2, "{report:?}");
        assert!(tenancy_dir.join(key.file_name()).exists(), "valid cell untouched");
        assert!(tenancy_dir.join("quarantine").join("00000000torncell.json").exists());
        assert!(obj_dir.join("quarantine").join("ffffffffffffffff.json").exists());
        assert!(run(&root, true).all_clean());
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn history_repair_keeps_valid_lines() {
        let root = scratch_root("hist");
        let bench = root.join("bench");
        fs::create_dir_all(&bench).expect("mkdir");
        fs::write(
            bench.join("history.jsonl"),
            "{\"a\":1}\nGARBAGE LINE\n{\"b\":2}\n",
        )
        .expect("write");
        let report = run(&root, true);
        assert_eq!(report.count(ArtifactStatus::Repaired), 1);
        let text = fs::read_to_string(bench.join("history.jsonl")).expect("rewritten");
        assert_eq!(text, "{\"a\":1}\n{\"b\":2}\n");
        assert!(bench.join("quarantine").join("history.jsonl").exists(), "evidence kept");
        assert!(run(&root, true).all_clean());
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn render_summarises_counts() {
        let root = scratch_root("render");
        let report = run(&root, true);
        let text = report.render();
        assert!(text.contains("0 repaired"));
        assert!(text.contains("orphaned scratch"));
    }
}
