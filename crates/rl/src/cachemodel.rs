//! The trace-driven, LLC-only functional simulator (the paper's
//! "Python-based cache simulator", Fig. 2).
//!
//! Replays a captured LLC access trace, maintains the full Table II feature
//! state per set and line, and on every non-compulsory miss asks a victim
//! chooser (the RL agent, Belady, or any heuristic) which way to evict.

use std::collections::HashMap;

use cache_sim::{AccessKind, CacheConfig, LlcRecord, LlcTrace};

use crate::features::{DecisionView, LineView};

/// Folds a PC into the 8-bit hash used by the PC extension features.
fn pc_hash8(pc: u64) -> u8 {
    let h = (pc >> 2).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    (h >> 56) as u8
}

#[derive(Clone, Debug)]
struct ModelLine {
    valid: bool,
    line: u64,
    dirty: bool,
    /// Set-access stamp at insertion.
    insert_stamp: u64,
    /// Set-access stamp at last access.
    last_stamp: u64,
    /// Set accesses between the last two accesses.
    preuse: u64,
    last_type: AccessKind,
    /// Saturating per-kind access counts (LD, RFO, PF, WB).
    counts: [u8; 4],
    hits: u64,
    /// Hashed PC of the last access (PC extension feature).
    last_pc_hash: u8,
    /// Oracle: sequence number of this line's next reference (training).
    next_use: u64,
}

impl ModelLine {
    fn invalid() -> Self {
        Self {
            valid: false,
            line: 0,
            dirty: false,
            insert_stamp: 0,
            last_stamp: 0,
            preuse: 0,
            last_type: AccessKind::Load,
            counts: [0; 4],
            hits: 0,
            last_pc_hash: 0,
            next_use: u64::MAX,
        }
    }
}

/// Aggregate statistics of a model run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ModelStats {
    /// Total accesses replayed.
    pub accesses: u64,
    /// Total hits.
    pub hits: u64,
    /// Demand (LD+RFO) accesses.
    pub demand_accesses: u64,
    /// Demand hits.
    pub demand_hits: u64,
    /// Victim decisions made (non-compulsory misses).
    pub decisions: u64,
}

impl ModelStats {
    /// Overall hit rate in `[0, 1]`.
    pub fn hit_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.hits as f64 / self.accesses as f64
        }
    }

    /// Demand hit rate in `[0, 1]` (the Fig. 1 metric).
    pub fn demand_hit_rate(&self) -> f64 {
        if self.demand_accesses == 0 {
            0.0
        } else {
            self.demand_hits as f64 / self.demand_accesses as f64
        }
    }
}

/// What happened for one replayed record.
#[derive(Clone, Debug)]
pub enum StepOutcome {
    /// The access hit.
    Hit,
    /// Compulsory fill into an invalid way — no decision needed.
    FilledFree,
    /// A victim was chosen and evicted.
    Evicted {
        /// The chosen way.
        way: u16,
        /// Snapshot of the victim line at eviction (for Figs. 5–7).
        victim: LineView,
        /// Oracle next use of the victim.
        victim_next_use: u64,
        /// Farthest next use among all lines in the set (incl. the victim).
        farthest_next_use: u64,
        /// Oracle next use of the line being inserted.
        inserted_next_use: u64,
    },
}

/// The trace-driven LLC model.
///
/// ```
/// use cache_sim::{AccessKind, CacheConfig, LlcRecord, LlcTrace};
/// use rl::LlcModel;
///
/// let cfg = CacheConfig { sets: 2, ways: 2, latency: 1 };
/// let trace: LlcTrace = (0..8u64)
///     .map(|i| LlcRecord { pc: 0, line: i % 3, kind: AccessKind::Load, core: 0 })
///     .collect();
/// let mut model = LlcModel::new(&cfg, &trace);
/// let stats = model.run(&trace, &mut |view| (view.lines.len() - 1) as u16);
/// assert!(stats.hits > 0);
/// ```
#[derive(Clone, Debug)]
pub struct LlcModel {
    sets: u32,
    ways: u16,
    lines: Vec<ModelLine>,
    set_accesses: Vec<u64>,
    set_since_miss: Vec<u64>,
    /// Per-address: set-access stamp of its last access (access preuse).
    addr_last: HashMap<u64, u64>,
    /// Oracle next-use table for the trace being replayed.
    next_use: Vec<u64>,
    seq: u64,
    stats: ModelStats,
}

impl LlcModel {
    /// Builds a model for `config`, with the oracle derived from `trace`.
    pub fn new(config: &CacheConfig, trace: &LlcTrace) -> Self {
        Self {
            sets: config.sets,
            ways: config.ways,
            lines: vec![ModelLine::invalid(); config.lines() as usize],
            set_accesses: vec![0; config.sets as usize],
            set_since_miss: vec![0; config.sets as usize],
            addr_last: HashMap::new(),
            next_use: trace.next_use_table(),
            seq: 0,
            stats: ModelStats::default(),
        }
    }

    /// Statistics so far.
    pub fn stats(&self) -> &ModelStats {
        &self.stats
    }

    /// Zeroes the statistics while keeping cache contents — used to
    /// exclude the model's cold-start from measured replay windows.
    pub fn reset_stats(&mut self) {
        self.stats = ModelStats::default();
    }

    fn set_of(&self, line: u64) -> u32 {
        (line & u64::from(self.sets - 1)) as u32
    }

    fn base(&self, set: u32) -> usize {
        set as usize * self.ways as usize
    }

    /// Builds the decision view for `set` under the incoming `record`.
    fn view(&self, set: u32, record: &LlcRecord, access_preuse: u64) -> DecisionView {
        let base = self.base(set);
        let now = self.set_accesses[set as usize];
        // Recency ranks from last-access stamps: 0 = LRU.
        let mut order: Vec<u16> = (0..self.ways).collect();
        order.sort_by_key(|&w| self.lines[base + w as usize].last_stamp);
        let mut recency = vec![0u16; self.ways as usize];
        for (rank, &w) in order.iter().enumerate() {
            recency[w as usize] = rank as u16;
        }
        let lines = (0..self.ways)
            .map(|w| {
                let l = &self.lines[base + w as usize];
                LineView {
                    valid: l.valid,
                    offset6: (l.line & 0x3F) as u8,
                    dirty: l.dirty,
                    preuse: l.preuse,
                    age_since_insertion: now.saturating_sub(l.insert_stamp),
                    age_since_last_access: now.saturating_sub(l.last_stamp),
                    last_type: l.last_type,
                    counts: l.counts,
                    hits: l.hits,
                    recency: recency[w as usize],
                    pc_hash: l.last_pc_hash,
                }
            })
            .collect();
        DecisionView {
            access_offset6: (record.line & 0x3F) as u8,
            access_preuse,
            access_kind: record.kind,
            set_number: set,
            set_accesses: now,
            set_accesses_since_miss: self.set_since_miss[set as usize],
            lines,
            access_pc_hash: pc_hash8(record.pc),
        }
    }

    /// Replays one record; `chooser` is consulted on non-compulsory misses
    /// with the decision view and must return the victim way.
    pub fn step(
        &mut self,
        record: &LlcRecord,
        chooser: &mut dyn FnMut(&DecisionView) -> u16,
    ) -> StepOutcome {
        let seq = self.seq;
        self.seq += 1;
        let set = self.set_of(record.line);
        let si = set as usize;
        self.set_accesses[si] += 1;
        let now = self.set_accesses[si];
        let access_preuse = self
            .addr_last
            .get(&record.line)
            .map_or(u64::MAX, |&t| now - 1 - t);
        self.addr_last.insert(record.line, now);

        self.stats.accesses += 1;
        if record.kind.is_demand() {
            self.stats.demand_accesses += 1;
        }

        let base = self.base(set);
        let hit_way =
            (0..self.ways).find(|&w| {
                let l = &self.lines[base + w as usize];
                l.valid && l.line == record.line
            });

        if let Some(way) = hit_way {
            self.stats.hits += 1;
            if record.kind.is_demand() {
                self.stats.demand_hits += 1;
            }
            self.set_since_miss[si] += 1;
            let next = self.oracle(seq);
            let l = &mut self.lines[base + way as usize];
            l.preuse = (now - 1).saturating_sub(l.last_stamp);
            l.last_stamp = now;
            l.hits += 1;
            l.last_type = record.kind;
            l.counts[record.kind.index()] = l.counts[record.kind.index()].saturating_add(1);
            if record.kind == AccessKind::Writeback {
                l.dirty = true;
            }
            l.last_pc_hash = pc_hash8(record.pc);
            l.next_use = next;
            return StepOutcome::Hit;
        }

        // Miss.
        self.set_since_miss[si] = 0;
        if let Some(free) = (0..self.ways).find(|&w| !self.lines[base + w as usize].valid) {
            self.fill(set, free, record, seq, now);
            return StepOutcome::FilledFree;
        }

        let view = self.view(set, record, access_preuse);
        let way = chooser(&view);
        assert!(way < self.ways, "chooser returned way {way} of {}", self.ways);
        self.stats.decisions += 1;

        let farthest = (0..self.ways)
            .map(|w| self.lines[base + w as usize].next_use)
            .max()
            .expect("non-empty set");
        let victim_line = &self.lines[base + way as usize];
        let outcome = StepOutcome::Evicted {
            way,
            victim: view.lines[way as usize],
            victim_next_use: victim_line.next_use,
            farthest_next_use: farthest,
            inserted_next_use: self.oracle(seq),
        };
        self.fill(set, way, record, seq, now);
        outcome
    }

    fn oracle(&self, seq: u64) -> u64 {
        self.next_use.get(seq as usize).copied().unwrap_or(u64::MAX)
    }

    fn fill(&mut self, set: u32, way: u16, record: &LlcRecord, seq: u64, now: u64) {
        let next = self.oracle(seq);
        let idx = self.base(set) + way as usize;
        let l = &mut self.lines[idx];
        *l = ModelLine {
            valid: true,
            line: record.line,
            dirty: record.kind == AccessKind::Writeback,
            insert_stamp: now,
            last_stamp: now,
            preuse: 0,
            last_type: record.kind,
            counts: {
                let mut c = [0u8; 4];
                c[record.kind.index()] = 1;
                c
            },
            hits: 0,
            last_pc_hash: pc_hash8(record.pc),
            next_use: next,
        };
    }

    /// Replays an entire trace, returning the final statistics.
    pub fn run(
        &mut self,
        trace: &LlcTrace,
        chooser: &mut dyn FnMut(&DecisionView) -> u16,
    ) -> ModelStats {
        for record in trace.records() {
            let _ = self.step(record, chooser);
        }
        *self.stats()
    }
}

/// Decision views don't carry oracle next uses, so Belady's decisions are
/// made from the model's internal state instead of through a chooser.
impl LlcModel {
    /// Replays one record with Belady's optimal decision: on a full-set
    /// miss, the line with the farthest oracle next use is evicted.
    pub fn step_belady(&mut self, record: &LlcRecord) -> StepOutcome {
        let set = self.set_of(record.line);
        let base = self.base(set);
        let ways = self.ways;
        let mut best = 0u16;
        for w in 0..ways {
            if self.lines[base + w as usize].next_use > self.lines[base + best as usize].next_use {
                best = w;
            }
        }
        self.step(record, &mut |_| best)
    }

    /// Replays the trace with Belady's optimal decisions (used for the
    /// Fig. 1 `BELADY` series and for reward verification in tests).
    pub fn run_belady(&mut self, trace: &LlcTrace) -> ModelStats {
        for record in trace.records() {
            let _ = self.step_belady(record);
        }
        *self.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> CacheConfig {
        CacheConfig { sets: 1, ways: 2, latency: 1 }
    }

    fn trace(lines: &[u64]) -> LlcTrace {
        lines
            .iter()
            .map(|&l| LlcRecord { pc: 0, line: l, kind: AccessKind::Load, core: 0 })
            .collect()
    }

    #[test]
    fn hits_and_misses_are_counted() {
        let t = trace(&[1, 2, 1, 2]);
        let mut m = LlcModel::new(&cfg(), &t);
        let stats = m.run(&t, &mut |_| 0);
        assert_eq!(stats.accesses, 4);
        assert_eq!(stats.hits, 2);
        assert_eq!(stats.decisions, 0, "everything fit");
    }

    #[test]
    fn chooser_is_consulted_on_full_sets_only() {
        let t = trace(&[1, 2, 3]);
        let mut m = LlcModel::new(&cfg(), &t);
        let mut calls = 0;
        m.run(&t, &mut |_| {
            calls += 1;
            0
        });
        assert_eq!(calls, 1, "only the third access needs a decision");
    }

    #[test]
    fn eviction_outcome_reports_oracle_values() {
        // Trace: 1, 2, 3, 1 — at the decision (access 3), line 1 is reused
        // at index 3, line 2 never, incoming 3 never.
        let t = trace(&[1, 2, 3, 1]);
        let mut m = LlcModel::new(&cfg(), &t);
        let mut outcome = None;
        for r in t.records() {
            if let StepOutcome::Evicted { victim_next_use, farthest_next_use, inserted_next_use, way, .. } =
                m.step(r, &mut |_| 1)
            {
                outcome = Some((way, victim_next_use, farthest_next_use, inserted_next_use));
            }
        }
        let (way, victim_nu, farthest, inserted_nu) = outcome.expect("one decision");
        assert_eq!(way, 1);
        assert_eq!(victim_nu, u64::MAX, "line 2 is never reused");
        assert_eq!(farthest, u64::MAX);
        assert_eq!(inserted_nu, u64::MAX, "line 3 is never reused");
    }

    #[test]
    fn belady_mode_beats_a_bad_chooser() {
        // Thrash pattern: cyclic over 3 lines in 2 ways.
        let pattern: Vec<u64> = (0..60).map(|i| i % 3).collect();
        let t = trace(&pattern);
        let mut opt = LlcModel::new(&cfg(), &t);
        let opt_stats = opt.run_belady(&t);
        let mut bad = LlcModel::new(&cfg(), &t);
        // Always evict the line that is needed soonest (anti-Belady): a
        // worst-case chooser.
        let bad_stats = bad.run(&t, &mut |_| 0);
        assert!(opt_stats.hits > bad_stats.hits);
    }

    #[test]
    fn feature_state_tracks_hits_and_types() {
        let mut records = vec![
            LlcRecord { pc: 0, line: 1, kind: AccessKind::Prefetch, core: 0 },
            LlcRecord { pc: 0, line: 1, kind: AccessKind::Load, core: 0 },
            LlcRecord { pc: 0, line: 2, kind: AccessKind::Load, core: 0 },
        ];
        records.push(LlcRecord { pc: 0, line: 3, kind: AccessKind::Load, core: 0 });
        let t: LlcTrace = records.into_iter().collect();
        let mut m = LlcModel::new(&cfg(), &t);
        let mut seen = None;
        for r in t.records() {
            if let StepOutcome::Evicted { victim, .. } = m.step(r, &mut |view| {
                // Verify the view before evicting way 0 (line 1).
                assert!(view.lines[0].valid);
                0
            }) {
                seen = Some(victim);
            }
        }
        let victim = seen.expect("one eviction");
        assert_eq!(victim.hits, 1, "line 1 was hit once");
        assert_eq!(victim.last_type, AccessKind::Load);
        assert_eq!(victim.counts[AccessKind::Prefetch.index()], 1);
        assert_eq!(victim.counts[AccessKind::Load.index()], 1);
    }

    #[test]
    fn access_preuse_measures_set_access_gap() {
        let t = trace(&[1, 2, 1]);
        let mut m = LlcModel::new(&cfg(), &t);
        // No decision happens, so inspect via a view built at the end.
        m.run(&t, &mut |_| 0);
        // Third access to line 1: one intervening set access (line 2).
        // Internal check via addr_last: the stamp gap behaves as expected.
        assert_eq!(m.addr_last[&1], 3);
        assert_eq!(m.addr_last[&2], 2);
    }
}
