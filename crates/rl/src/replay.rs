//! Experience replay (Mnih et al., 2015), as used by the paper's trainer.

use std::io::{self, Read, Write};

use simrng::{Rng, SimRng};

use crate::wire;

/// One stored transition `⟨state, action, reward, next state⟩`.
#[derive(Clone, Debug, PartialEq)]
pub struct Transition {
    /// Encoded state at decision time.
    pub state: Vec<f32>,
    /// Chosen victim way.
    pub action: u16,
    /// Reward for the decision (+1 Belady-optimal, −1 harmful, 0 neutral).
    pub reward: f32,
    /// Encoded state at the next decision.
    pub next_state: Vec<f32>,
}

/// A bounded circular buffer of transitions with uniform random sampling.
///
/// Sampling random past transitions "breaks the similarity of subsequent
/// training samples", preventing the network from chasing its own tail
/// (paper §III-A, *Training*).
///
/// ```
/// use rl::{ReplayBuffer, Transition};
///
/// let mut buf = ReplayBuffer::new(2);
/// for i in 0..3 {
///     buf.push(Transition {
///         state: vec![i as f32],
///         action: 0,
///         reward: 0.0,
///         next_state: vec![],
///     });
/// }
/// assert_eq!(buf.len(), 2); // oldest entry was overwritten
/// ```
#[derive(Clone, Debug)]
pub struct ReplayBuffer {
    entries: Vec<Transition>,
    capacity: usize,
    head: usize,
}

impl ReplayBuffer {
    /// Creates a buffer holding at most `capacity` transitions.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "replay buffer needs capacity");
        Self { entries: Vec::with_capacity(capacity.min(1 << 20)), capacity, head: 0 }
    }

    /// Stores a transition, overwriting the oldest once full.
    pub fn push(&mut self, t: Transition) {
        if self.entries.len() < self.capacity {
            self.entries.push(t);
        } else {
            self.entries[self.head] = t;
            self.head = (self.head + 1) % self.capacity;
        }
    }

    /// Number of stored transitions.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Samples one uniformly random stored transition.
    pub fn sample<'a>(&'a self, rng: &mut SimRng) -> Option<&'a Transition> {
        if self.entries.is_empty() {
            None
        } else {
            Some(&self.entries[rng.gen_range(0..self.entries.len())])
        }
    }

    /// Serializes the buffer — capacity, write cursor, and every stored
    /// transition — so a restored trainer replays the exact same samples.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from the writer.
    pub fn save<W: Write>(&self, mut w: W) -> io::Result<()> {
        wire::write_u64(&mut w, self.capacity as u64)?;
        wire::write_u64(&mut w, self.head as u64)?;
        wire::write_u64(&mut w, self.entries.len() as u64)?;
        for t in &self.entries {
            wire::write_f32s(&mut w, &t.state)?;
            wire::write_u32(&mut w, u32::from(t.action))?;
            wire::write_f32(&mut w, t.reward)?;
            wire::write_f32s(&mut w, &t.next_state)?;
        }
        Ok(())
    }

    /// Deserializes a buffer written by [`ReplayBuffer::save`].
    ///
    /// # Errors
    ///
    /// Returns an error on I/O failure or malformed input.
    pub fn load<R: Read>(mut r: R) -> io::Result<Self> {
        let capacity = wire::read_u64(&mut r)? as usize;
        let head = wire::read_u64(&mut r)? as usize;
        let len = wire::read_u64(&mut r)? as usize;
        if capacity == 0 || len > capacity || (len == capacity && head >= capacity) || (len < capacity && head != 0) {
            return Err(wire::bad_data("implausible replay-buffer geometry"));
        }
        let mut entries = Vec::with_capacity(len.min(1 << 20));
        for _ in 0..len {
            let state = wire::read_f32s(&mut r)?;
            let action = wire::read_u32(&mut r)?;
            if action > u32::from(u16::MAX) {
                return Err(wire::bad_data("implausible replay action"));
            }
            let reward = wire::read_f32(&mut r)?;
            let next_state = wire::read_f32s(&mut r)?;
            entries.push(Transition { state, action: action as u16, reward, next_state });
        }
        Ok(Self { entries, capacity, head })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(tag: f32) -> Transition {
        Transition { state: vec![tag], action: 0, reward: 0.0, next_state: vec![] }
    }

    #[test]
    fn ring_overwrites_oldest() {
        let mut buf = ReplayBuffer::new(3);
        for i in 0..5 {
            buf.push(t(i as f32));
        }
        assert_eq!(buf.len(), 3);
        let tags: Vec<f32> = buf.entries.iter().map(|e| e.state[0]).collect();
        // Entries 0 and 1 were overwritten by 3 and 4.
        assert!(tags.contains(&2.0) && tags.contains(&3.0) && tags.contains(&4.0));
        assert!(!tags.contains(&0.0));
    }

    #[test]
    fn sample_covers_the_buffer() {
        let mut buf = ReplayBuffer::new(8);
        for i in 0..8 {
            buf.push(t(i as f32));
        }
        let mut rng = SimRng::seed_from_u64(3);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            seen.insert(buf.sample(&mut rng).expect("non-empty").state[0] as i64);
        }
        assert_eq!(seen.len(), 8, "uniform sampling should reach every slot");
    }

    #[test]
    fn save_load_roundtrips_entries_and_cursor() {
        let mut buf = ReplayBuffer::new(3);
        for i in 0..5 {
            buf.push(Transition {
                state: vec![i as f32, 2.0 * i as f32],
                action: i as u16,
                reward: -0.5,
                next_state: if i == 4 { vec![] } else { vec![9.0] },
            });
        }
        let mut bytes = Vec::new();
        buf.save(&mut bytes).expect("in-memory save");
        let back = ReplayBuffer::load(bytes.as_slice()).expect("load");
        assert_eq!(back.capacity, buf.capacity);
        assert_eq!(back.head, buf.head);
        assert_eq!(back.entries, buf.entries);
        // A corrupt prefix is rejected rather than mis-parsed.
        assert!(ReplayBuffer::load(&bytes[..7]).is_err());
    }

    #[test]
    fn empty_buffer_samples_none() {
        let buf = ReplayBuffer::new(4);
        let mut rng = SimRng::seed_from_u64(1);
        assert!(buf.sample(&mut rng).is_none());
    }
}
