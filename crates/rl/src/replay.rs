//! Experience replay (Mnih et al., 2015), as used by the paper's trainer.

use simrng::{Rng, SimRng};

/// One stored transition `⟨state, action, reward, next state⟩`.
#[derive(Clone, Debug, PartialEq)]
pub struct Transition {
    /// Encoded state at decision time.
    pub state: Vec<f32>,
    /// Chosen victim way.
    pub action: u16,
    /// Reward for the decision (+1 Belady-optimal, −1 harmful, 0 neutral).
    pub reward: f32,
    /// Encoded state at the next decision.
    pub next_state: Vec<f32>,
}

/// A bounded circular buffer of transitions with uniform random sampling.
///
/// Sampling random past transitions "breaks the similarity of subsequent
/// training samples", preventing the network from chasing its own tail
/// (paper §III-A, *Training*).
///
/// ```
/// use rl::{ReplayBuffer, Transition};
///
/// let mut buf = ReplayBuffer::new(2);
/// for i in 0..3 {
///     buf.push(Transition {
///         state: vec![i as f32],
///         action: 0,
///         reward: 0.0,
///         next_state: vec![],
///     });
/// }
/// assert_eq!(buf.len(), 2); // oldest entry was overwritten
/// ```
#[derive(Clone, Debug)]
pub struct ReplayBuffer {
    entries: Vec<Transition>,
    capacity: usize,
    head: usize,
}

impl ReplayBuffer {
    /// Creates a buffer holding at most `capacity` transitions.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "replay buffer needs capacity");
        Self { entries: Vec::with_capacity(capacity.min(1 << 20)), capacity, head: 0 }
    }

    /// Stores a transition, overwriting the oldest once full.
    pub fn push(&mut self, t: Transition) {
        if self.entries.len() < self.capacity {
            self.entries.push(t);
        } else {
            self.entries[self.head] = t;
            self.head = (self.head + 1) % self.capacity;
        }
    }

    /// Number of stored transitions.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Samples one uniformly random stored transition.
    pub fn sample<'a>(&'a self, rng: &mut SimRng) -> Option<&'a Transition> {
        if self.entries.is_empty() {
            None
        } else {
            Some(&self.entries[rng.gen_range(0..self.entries.len())])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(tag: f32) -> Transition {
        Transition { state: vec![tag], action: 0, reward: 0.0, next_state: vec![] }
    }

    #[test]
    fn ring_overwrites_oldest() {
        let mut buf = ReplayBuffer::new(3);
        for i in 0..5 {
            buf.push(t(i as f32));
        }
        assert_eq!(buf.len(), 3);
        let tags: Vec<f32> = buf.entries.iter().map(|e| e.state[0]).collect();
        // Entries 0 and 1 were overwritten by 3 and 4.
        assert!(tags.contains(&2.0) && tags.contains(&3.0) && tags.contains(&4.0));
        assert!(!tags.contains(&0.0));
    }

    #[test]
    fn sample_covers_the_buffer() {
        let mut buf = ReplayBuffer::new(8);
        for i in 0..8 {
            buf.push(t(i as f32));
        }
        let mut rng = SimRng::seed_from_u64(3);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            seen.insert(buf.sample(&mut rng).expect("non-empty").state[0] as i64);
        }
        assert_eq!(seen.len(), 8, "uniform sampling should reach every slot");
    }

    #[test]
    fn empty_buffer_samples_none() {
        let buf = ReplayBuffer::new(4);
        let mut rng = SimRng::seed_from_u64(1);
        assert!(buf.sample(&mut rng).is_none());
    }
}
