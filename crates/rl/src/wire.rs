//! Little-endian binary (de)serialization helpers shared by the network
//! and checkpoint formats.

use std::io::{self, Read, Write};

pub(crate) fn write_u32<W: Write>(w: &mut W, v: u32) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

pub(crate) fn write_u64<W: Write>(w: &mut W, v: u64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

pub(crate) fn write_f32<W: Write>(w: &mut W, v: f32) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

pub(crate) fn write_f32s<W: Write>(w: &mut W, vs: &[f32]) -> io::Result<()> {
    write_u64(w, vs.len() as u64)?;
    for &v in vs {
        write_f32(w, v)?;
    }
    Ok(())
}

pub(crate) fn read_u32<R: Read>(r: &mut R) -> io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

pub(crate) fn read_u64<R: Read>(r: &mut R) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

pub(crate) fn read_f32<R: Read>(r: &mut R) -> io::Result<f32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(f32::from_le_bytes(b))
}

/// Reads a length-prefixed `f32` vector, rejecting implausible lengths so
/// a corrupt checkpoint cannot trigger a huge allocation.
pub(crate) fn read_f32s<R: Read>(r: &mut R) -> io::Result<Vec<f32>> {
    let len = read_u64(r)? as usize;
    if len > (1 << 28) {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "implausible vector length"));
    }
    let mut out = Vec::with_capacity(len.min(1 << 20));
    for _ in 0..len {
        out.push(read_f32(r)?);
    }
    Ok(out)
}

pub(crate) fn bad_data(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.to_owned())
}
