//! Victim and trace statistics behind Figs. 4–7.

use cache_sim::{CacheConfig, LlcTrace};

use crate::cachemodel::{LlcModel, StepOutcome};
use crate::features::DecisionView;

/// Fig. 4: distribution of |preuse − reuse| over reused lines, bucketed as
/// `< 10`, `10–50`, and `> 50` set accesses.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PreuseReuseGap {
    /// Reused lines with |preuse − reuse| < 10.
    pub under_10: u64,
    /// Reused lines with 10 ≤ |preuse − reuse| ≤ 50.
    pub between_10_and_50: u64,
    /// Reused lines with |preuse − reuse| > 50.
    pub over_50: u64,
}

impl PreuseReuseGap {
    /// Total classified samples.
    pub fn total(&self) -> u64 {
        self.under_10 + self.between_10_and_50 + self.over_50
    }

    /// The three buckets as percentages (<10, 10–50, >50).
    pub fn percentages(&self) -> [f64; 3] {
        let t = self.total().max(1) as f64;
        [
            self.under_10 as f64 * 100.0 / t,
            self.between_10_and_50 as f64 * 100.0 / t,
            self.over_50 as f64 * 100.0 / t,
        ]
    }
}

/// Computes the Fig. 4 distribution from a trace alone: for every access
/// with both a previous and a next reference to the same line, compare the
/// backward gap (preuse) with the forward gap (reuse), both measured in
/// accesses *to that line's set*.
pub fn preuse_reuse_gap(trace: &LlcTrace, config: &CacheConfig) -> PreuseReuseGap {
    let records = trace.records();
    let set_mask = u64::from(config.sets - 1);
    // Per-record set-access index.
    let mut set_counts = vec![0u64; config.sets as usize];
    let mut set_index = Vec::with_capacity(records.len());
    for r in records {
        let s = (r.line & set_mask) as usize;
        set_counts[s] += 1;
        set_index.push(set_counts[s]);
    }
    // Per line: (set-time of last access, preuse distance of that access).
    let mut gap = PreuseReuseGap::default();
    let mut pending: std::collections::HashMap<u64, (u64, Option<u64>)> =
        std::collections::HashMap::new();
    for (i, r) in records.iter().enumerate() {
        let t = set_index[i];
        match pending.get_mut(&r.line) {
            None => {
                pending.insert(r.line, (t, None));
            }
            Some(entry) => {
                let (last_t, preuse_of_last) = *entry;
                let this_gap = t - last_t;
                // `this_gap` is the reuse distance of the *previous* access
                // and the preuse distance of *this* access.
                if let Some(prev_preuse) = preuse_of_last {
                    let diff = prev_preuse.abs_diff(this_gap);
                    if diff < 10 {
                        gap.under_10 += 1;
                    } else if diff <= 50 {
                        gap.between_10_and_50 += 1;
                    } else {
                        gap.over_50 += 1;
                    }
                }
                *entry = (t, Some(this_gap));
            }
        }
    }
    gap
}

/// Victim statistics collected while replaying a trace with a chooser:
/// the inputs to Figs. 5 (age by last access type), 6 (hits at eviction),
/// and 7 (victim recency).
#[derive(Clone, Debug)]
pub struct VictimStats {
    /// Summed victim age (since last access) per last-access kind.
    pub age_sum: [u64; 4],
    /// Victim count per last-access kind.
    pub age_n: [u64; 4],
    /// Victims with zero, one, and more-than-one hits.
    pub hits_buckets: [u64; 3],
    /// Victim count per recency rank (index 0 = LRU).
    pub recency_hist: Vec<u64>,
    /// Total victims observed.
    pub victims: u64,
}

impl VictimStats {
    fn new(ways: usize) -> Self {
        Self {
            age_sum: [0; 4],
            age_n: [0; 4],
            hits_buckets: [0; 3],
            recency_hist: vec![0; ways],
            victims: 0,
        }
    }

    /// Fig. 5: average victim age per access kind (LD, RFO, PF, WB).
    pub fn avg_age_by_kind(&self) -> [f64; 4] {
        let mut out = [0.0; 4];
        for k in 0..4 {
            if self.age_n[k] > 0 {
                out[k] = self.age_sum[k] as f64 / self.age_n[k] as f64;
            }
        }
        out
    }

    /// Fig. 6: percentage of victims with 0, 1, and >1 hits.
    pub fn hits_percentages(&self) -> [f64; 3] {
        let t = self.victims.max(1) as f64;
        [
            self.hits_buckets[0] as f64 * 100.0 / t,
            self.hits_buckets[1] as f64 * 100.0 / t,
            self.hits_buckets[2] as f64 * 100.0 / t,
        ]
    }

    /// Fig. 7: percentage of victims at each recency rank.
    pub fn recency_percentages(&self) -> Vec<f64> {
        let t = self.victims.max(1) as f64;
        self.recency_hist.iter().map(|&c| c as f64 * 100.0 / t).collect()
    }
}

/// Replays `trace` with `chooser` making the eviction decisions and
/// collects the victim statistics.
pub fn collect_victim_stats(
    trace: &LlcTrace,
    config: &CacheConfig,
    chooser: &mut dyn FnMut(&DecisionView) -> u16,
) -> VictimStats {
    let mut model = LlcModel::new(config, trace);
    let mut stats = VictimStats::new(config.ways as usize);
    for record in trace.records() {
        if let StepOutcome::Evicted { victim, .. } = model.step(record, chooser) {
            stats.victims += 1;
            let k = victim.last_type.index();
            stats.age_sum[k] += victim.age_since_last_access;
            stats.age_n[k] += 1;
            let bucket = match victim.hits {
                0 => 0,
                1 => 1,
                _ => 2,
            };
            stats.hits_buckets[bucket] += 1;
            stats.recency_hist[victim.recency as usize] += 1;
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use cache_sim::{AccessKind, LlcRecord};

    fn rec(line: u64, kind: AccessKind) -> LlcRecord {
        LlcRecord { pc: 0, line, kind, core: 0 }
    }

    #[test]
    fn constant_stride_reuse_has_zero_gap() {
        // One set (sets=1). Lines 0..4 accessed round-robin: for every
        // line, preuse == reuse == 5 set accesses, so all diffs are < 10.
        let cfg = CacheConfig { sets: 1, ways: 4, latency: 1 };
        let trace: LlcTrace = (0..60).map(|i| rec(i % 5, AccessKind::Load)).collect();
        let gap = preuse_reuse_gap(&trace, &cfg);
        assert!(gap.total() > 0);
        assert_eq!(gap.between_10_and_50, 0);
        assert_eq!(gap.over_50, 0);
    }

    #[test]
    fn irregular_reuse_lands_in_larger_buckets() {
        let cfg = CacheConfig { sets: 1, ways: 4, latency: 1 };
        let mut records = Vec::new();
        // Line 9: preuse 2, then reuse 80 — diff 78 lands in >50.
        records.push(rec(9, AccessKind::Load));
        records.push(rec(1, AccessKind::Load));
        records.push(rec(9, AccessKind::Load)); // preuse=2
        for i in 0..79 {
            records.push(rec(100 + i, AccessKind::Load));
        }
        records.push(rec(9, AccessKind::Load)); // reuse=80
        let trace: LlcTrace = records.into_iter().collect();
        let gap = preuse_reuse_gap(&trace, &cfg);
        assert_eq!(gap.over_50, 1);
    }

    #[test]
    fn victim_stats_bucket_hits_and_types() {
        let cfg = CacheConfig { sets: 1, ways: 2, latency: 1 };
        // Fill 1 (prefetch, never hit) and 2 (load, hit once), then insert
        // 3 and evict way 0 (the prefetch line).
        let trace: LlcTrace = vec![
            rec(1, AccessKind::Prefetch),
            rec(2, AccessKind::Load),
            rec(2, AccessKind::Load),
            rec(3, AccessKind::Load),
        ]
        .into_iter()
        .collect();
        let stats = collect_victim_stats(&trace, &cfg, &mut |_| 0);
        assert_eq!(stats.victims, 1);
        assert_eq!(stats.age_n[AccessKind::Prefetch.index()], 1);
        assert_eq!(stats.hits_buckets, [1, 0, 0]);
    }

    #[test]
    fn recency_histogram_sums_to_victims() {
        let cfg = CacheConfig { sets: 2, ways: 4, latency: 1 };
        let trace: LlcTrace = (0..500u64).map(|i| rec(i * 7 % 40, AccessKind::Load)).collect();
        let stats = collect_victim_stats(&trace, &cfg, &mut |v| (v.lines.len() - 1) as u16);
        assert_eq!(stats.recency_hist.iter().sum::<u64>(), stats.victims);
        assert!(stats.victims > 0);
    }
}
