//! Multi-agent training: one agent per cache-set group.
//!
//! The paper's framework uses a single network for all sets but notes that
//! "designers can choose to use multiple agents by training them using
//! different combinations of cache sets" (§III-A). This module implements
//! that extension: sets are partitioned by `set % agents`, each partition
//! gets its own DQN (network + replay memory), and decisions/training are
//! routed by the accessed set.

use cache_sim::{CacheConfig, LlcTrace};
use simrng::SimRng;

use crate::agent::{Agent, AgentConfig, TrainingReport};
use crate::cachemodel::{LlcModel, ModelStats, StepOutcome};
use crate::replay::{ReplayBuffer, Transition};

/// A group of agents partitioned over the cache sets.
pub struct MultiAgentTrainer {
    agents: Vec<Agent>,
    replays: Vec<ReplayBuffer>,
    /// Per-partition pending transition awaiting its successor state.
    pending: Vec<Option<(Vec<f32>, u16, f32)>>,
    rng: SimRng,
    config: AgentConfig,
}

impl MultiAgentTrainer {
    /// Creates `agents` partitions for a cache geometry.
    ///
    /// # Panics
    ///
    /// Panics if `agents` is zero.
    pub fn new(agents: usize, config: AgentConfig, cache: &CacheConfig) -> Self {
        assert!(agents > 0, "need at least one agent");
        Self {
            agents: (0..agents)
                .map(|i| {
                    let mut c = config;
                    c.seed = config.seed ^ ((i as u64 + 1) << 16);
                    Agent::new(c, cache)
                })
                .collect(),
            replays: (0..agents).map(|_| ReplayBuffer::new(config.replay_capacity)).collect(),
            pending: vec![None; agents],
            rng: SimRng::seed_from_u64(config.seed ^ 0x3417),
            config,
        }
    }

    /// Number of partitions.
    pub fn partitions(&self) -> usize {
        self.agents.len()
    }

    /// The agent owning `set`.
    pub fn agent_for(&self, set: u32) -> &Agent {
        &self.agents[set as usize % self.agents.len()]
    }

    /// One ε-greedy training epoch over the trace, routing every decision
    /// to the owning partition.
    pub fn train_epoch(&mut self, trace: &LlcTrace, cache: &CacheConfig) -> TrainingReport {
        let mut model = LlcModel::new(cache, trace);
        let mut report = TrainingReport::default();
        let mut losses = 0.0f64;
        let mut updates = 0u64;
        let train_every = self.config.train_every.max(1);
        let batch = self.config.batch_size;
        let mut decisions = 0u32;

        for record in trace.records() {
            let n = self.agents.len();
            let agents = &mut self.agents;
            let mut decided: Option<(usize, Vec<f32>, u16)> = None;
            let outcome = model.step(record, &mut |view| {
                let partition = view.set_number as usize % n;
                let (state, action) = agents[partition].decide(view);
                decided = Some((partition, state, action));
                action
            });
            if let StepOutcome::Evicted {
                victim_next_use,
                farthest_next_use,
                inserted_next_use,
                ..
            } = outcome
            {
                let (partition, state, action) = decided.expect("chooser ran");
                let reward = if victim_next_use == farthest_next_use {
                    report.optimal_decisions += 1;
                    1.0
                } else if victim_next_use < inserted_next_use {
                    report.harmful_decisions += 1;
                    -1.0
                } else {
                    0.0
                };
                if let Some((ps, pa, pr)) = self.pending[partition].take() {
                    self.replays[partition].push(Transition {
                        state: ps,
                        action: pa,
                        reward: pr,
                        next_state: state.clone(),
                    });
                }
                self.pending[partition] = Some((state, action, reward));

                decisions += 1;
                if decisions.is_multiple_of(train_every) && !self.replays[partition].is_empty() {
                    for _ in 0..batch {
                        let t = self.replays[partition]
                            .sample(&mut self.rng)
                            .expect("buffer checked non-empty")
                            .clone();
                        losses += f64::from(self.agents[partition].learn_public(&t));
                        updates += 1;
                    }
                }
            }
        }
        for (partition, pending) in self.pending.iter_mut().enumerate() {
            if let Some((ps, pa, pr)) = pending.take() {
                self.replays[partition].push(Transition {
                    state: ps,
                    action: pa,
                    reward: pr,
                    next_state: Vec::new(),
                });
            }
        }
        report.stats = *model.stats();
        report.mean_loss = if updates == 0 { 0.0 } else { losses / updates as f64 };
        report
    }

    /// Greedy evaluation, each decision routed to the owning partition.
    pub fn evaluate(&self, trace: &LlcTrace, cache: &CacheConfig) -> ModelStats {
        let mut model = LlcModel::new(cache, trace);
        let n = self.agents.len();
        let agents = &self.agents;
        model.run(trace, &mut |view| {
            agents[view.set_number as usize % n].decide_greedy(view)
        })
    }
}

impl std::fmt::Debug for MultiAgentTrainer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MultiAgentTrainer")
            .field("partitions", &self.agents.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::FeatureSet;
    use cache_sim::LlcRecord;

    fn trace(len: usize) -> LlcTrace {
        (0..len)
            .map(|i| LlcRecord {
                pc: 0x400 + (i as u64 % 13) * 4,
                line: (i as u64 * 7) % 24,
                kind: cache_sim::AccessKind::Load,
                core: 0,
            })
            .collect()
    }

    fn cache() -> CacheConfig {
        CacheConfig { sets: 4, ways: 4, latency: 1 }
    }

    #[test]
    fn partitions_route_by_set() {
        let trainer = MultiAgentTrainer::new(2, AgentConfig::small(FeatureSet::full(), 3), &cache());
        assert_eq!(trainer.partitions(), 2);
        let a0 = trainer.agent_for(0) as *const Agent;
        let a2 = trainer.agent_for(2) as *const Agent;
        let a1 = trainer.agent_for(1) as *const Agent;
        assert_eq!(a0, a2, "sets 0 and 2 share partition 0 of 2");
        assert_ne!(a0, a1);
    }

    #[test]
    fn multi_agent_training_runs_and_learns_signal() {
        let t = trace(4000);
        let cache = cache();
        let mut trainer = MultiAgentTrainer::new(2, AgentConfig::small(FeatureSet::full(), 5), &cache);
        let first = trainer.train_epoch(&t, &cache);
        assert!(first.stats.decisions > 0);
        let second = trainer.train_epoch(&t, &cache);
        // Training proceeds without degenerating (loss finite, stats sane).
        assert!(second.mean_loss.is_finite());
        assert!(second.stats.accesses == t.len() as u64);
    }

    #[test]
    fn evaluation_is_deterministic() {
        let t = trace(2000);
        let cache = cache();
        let mut trainer = MultiAgentTrainer::new(3, AgentConfig::small(FeatureSet::full(), 9), &cache);
        let _ = trainer.train_epoch(&t, &cache);
        assert_eq!(trainer.evaluate(&t, &cache), trainer.evaluate(&t, &cache));
    }
}
