//! The offline reinforcement-learning pipeline used to *derive* RLR
//! (paper §III).
//!
//! The paper's methodology, reproduced end to end:
//!
//! 1. Capture LLC access traces `<PC, type, address>` from the hierarchy
//!    simulator ([`cache_sim::LlcTrace`]).
//! 2. Replay them through a trace-driven, LLC-only functional simulator
//!    ([`LlcModel`]) that maintains the full Table II feature state.
//! 3. On every non-compulsory miss, a DQN agent ([`Agent`]) — an MLP with
//!    one hidden layer (334→175→16, tanh/linear) trained with experience
//!    replay and an ε-greedy policy — picks the victim way.
//! 4. The reward compares the eviction with Belady's choice, using a
//!    next-use oracle computed from the trace: +1 for evicting the line
//!    with the farthest reuse, −1 for evicting a line that would have been
//!    reused before the inserted one, 0 otherwise.
//! 5. The trained network's first-layer weights are aggregated into the
//!    per-feature heat map of Fig. 3 ([`analysis::weight_heatmap`]), and
//!    greedy forward feature selection ([`analysis::hill_climb`])
//!    identifies the critical feature subset that RLR hard-codes.
//!
//! The victim statistics behind Figs. 4–7 (preuse-vs-reuse gap, victim age
//! by access type, hits at eviction, victim recency) are collected by
//! [`stats`].

pub mod analysis;
mod agent;
mod cachemodel;
mod features;
mod mlp;
mod multi;
mod replay;
pub mod stats;
mod wire;

pub use agent::{Agent, AgentConfig, Trainer, TrainingReport};
pub use cachemodel::{LlcModel, ModelStats, StepOutcome};
pub use features::{
    DecisionView, Feature, FeatureSet, LineView, StateEncoder, NUM_FEATURES,
    NUM_FEATURES_EXTENDED,
};
pub use multi::MultiAgentTrainer;
pub use mlp::Mlp;
pub use replay::{ReplayBuffer, Transition};
