//! A from-scratch multi-layer perceptron.
//!
//! One hidden layer with tanh activation and a linear output layer — the
//! architecture the paper settled on after its hyperparameter exploration
//! ("simple enough for interpretation but performs almost as well as
//! denser networks"). Trained with SGD plus momentum.

use simrng::{Rng, SimRng};

/// A two-layer perceptron: `inputs → hidden (tanh) → outputs (linear)`.
///
/// ```
/// use rl::Mlp;
///
/// let mut net = Mlp::new(4, 8, 2, 42);
/// let out = net.forward(&[0.1, -0.2, 0.3, 0.0]);
/// assert_eq!(out.len(), 2);
/// ```
#[derive(Clone, Debug)]
pub struct Mlp {
    inputs: usize,
    hidden: usize,
    outputs: usize,
    /// `w1[h * inputs + i]`: input `i` → hidden `h`.
    w1: Vec<f32>,
    b1: Vec<f32>,
    /// `w2[o * hidden + h]`: hidden `h` → output `o`.
    w2: Vec<f32>,
    b2: Vec<f32>,
    // Momentum buffers.
    m_w1: Vec<f32>,
    m_b1: Vec<f32>,
    m_w2: Vec<f32>,
    m_b2: Vec<f32>,
    // Scratch from the last forward pass (for backprop).
    last_input: Vec<f32>,
    last_hidden: Vec<f32>,
}

impl Mlp {
    /// Creates a network with Xavier-style initialization from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn new(inputs: usize, hidden: usize, outputs: usize, seed: u64) -> Self {
        assert!(inputs > 0 && hidden > 0 && outputs > 0, "dimensions must be positive");
        let mut rng = SimRng::seed_from_u64(seed);
        let s1 = (6.0 / (inputs + hidden) as f32).sqrt();
        let s2 = (6.0 / (hidden + outputs) as f32).sqrt();
        let w1 = (0..inputs * hidden).map(|_| rng.gen_range(-s1..s1)).collect();
        let w2 = (0..hidden * outputs).map(|_| rng.gen_range(-s2..s2)).collect();
        Self {
            inputs,
            hidden,
            outputs,
            w1,
            b1: vec![0.0; hidden],
            w2,
            b2: vec![0.0; outputs],
            m_w1: vec![0.0; inputs * hidden],
            m_b1: vec![0.0; hidden],
            m_w2: vec![0.0; hidden * outputs],
            m_b2: vec![0.0; outputs],
            last_input: vec![0.0; inputs],
            last_hidden: vec![0.0; hidden],
        }
    }

    /// Input dimension.
    pub fn inputs(&self) -> usize {
        self.inputs
    }

    /// Hidden-layer width.
    pub fn hidden(&self) -> usize {
        self.hidden
    }

    /// Output dimension.
    pub fn outputs(&self) -> usize {
        self.outputs
    }

    /// First-layer weights, laid out `[hidden][inputs]` row-major — the
    /// matrix the Fig. 3 heat map aggregates.
    pub fn first_layer_weights(&self) -> &[f32] {
        &self.w1
    }

    /// Runs a forward pass, caching activations for a subsequent
    /// [`Mlp::backward`].
    ///
    /// # Panics
    ///
    /// Panics if `input.len()` differs from the input dimension.
    pub fn forward(&mut self, input: &[f32]) -> Vec<f32> {
        assert_eq!(input.len(), self.inputs, "input dimension mismatch");
        self.last_input.copy_from_slice(input);
        for h in 0..self.hidden {
            let row = &self.w1[h * self.inputs..(h + 1) * self.inputs];
            let mut acc = self.b1[h];
            for (w, x) in row.iter().zip(input) {
                acc += w * x;
            }
            self.last_hidden[h] = acc.tanh();
        }
        let mut out = vec![0.0; self.outputs];
        for o in 0..self.outputs {
            let row = &self.w2[o * self.hidden..(o + 1) * self.hidden];
            let mut acc = self.b2[o];
            for (w, x) in row.iter().zip(&self.last_hidden) {
                acc += w * x;
            }
            out[o] = acc;
        }
        out
    }

    /// Inference without touching the backprop scratch state.
    pub fn predict(&self, input: &[f32]) -> Vec<f32> {
        assert_eq!(input.len(), self.inputs, "input dimension mismatch");
        let mut hidden = vec![0.0f32; self.hidden];
        for h in 0..self.hidden {
            let row = &self.w1[h * self.inputs..(h + 1) * self.inputs];
            let mut acc = self.b1[h];
            for (w, x) in row.iter().zip(input) {
                acc += w * x;
            }
            hidden[h] = acc.tanh();
        }
        (0..self.outputs)
            .map(|o| {
                let row = &self.w2[o * self.hidden..(o + 1) * self.hidden];
                row.iter().zip(&hidden).fold(self.b2[o], |acc, (w, x)| acc + w * x)
            })
            .collect()
    }

    /// Backpropagates `d_out` (∂loss/∂output) from the activations cached
    /// by the last [`Mlp::forward`], applying one SGD-with-momentum update.
    ///
    /// # Panics
    ///
    /// Panics if `d_out.len()` differs from the output dimension.
    pub fn backward(&mut self, d_out: &[f32], learning_rate: f32, momentum: f32) {
        assert_eq!(d_out.len(), self.outputs, "gradient dimension mismatch");
        // Hidden-layer error: δh = (Σo w2[o,h]·δo) · (1 − tanh²).
        let mut d_hidden = vec![0.0f32; self.hidden];
        for o in 0..self.outputs {
            let row = &self.w2[o * self.hidden..(o + 1) * self.hidden];
            for (h, w) in row.iter().enumerate() {
                d_hidden[h] += w * d_out[o];
            }
        }
        for h in 0..self.hidden {
            let a = self.last_hidden[h];
            d_hidden[h] *= 1.0 - a * a;
        }

        // Output layer update.
        for o in 0..self.outputs {
            let g_b = d_out[o];
            let m = &mut self.m_b2[o];
            *m = momentum * *m - learning_rate * g_b;
            self.b2[o] += *m;
            for h in 0..self.hidden {
                let g = d_out[o] * self.last_hidden[h];
                let idx = o * self.hidden + h;
                let m = &mut self.m_w2[idx];
                *m = momentum * *m - learning_rate * g;
                self.w2[idx] += *m;
            }
        }
        // Hidden layer update.
        for h in 0..self.hidden {
            let g_b = d_hidden[h];
            let m = &mut self.m_b1[h];
            *m = momentum * *m - learning_rate * g_b;
            self.b1[h] += *m;
            for i in 0..self.inputs {
                let g = d_hidden[h] * self.last_input[i];
                let idx = h * self.inputs + i;
                let m = &mut self.m_w1[idx];
                *m = momentum * *m - learning_rate * g;
                self.w1[idx] += *m;
            }
        }
    }

    /// Serializes the network (dimensions and weights; optimizer state is
    /// not persisted).
    ///
    /// # Errors
    ///
    /// Returns any I/O error from the writer.
    pub fn save<W: std::io::Write>(&self, mut w: W) -> std::io::Result<()> {
        w.write_all(b"MLP1")?;
        for dim in [self.inputs as u64, self.hidden as u64, self.outputs as u64] {
            w.write_all(&dim.to_le_bytes())?;
        }
        for buf in [&self.w1, &self.b1, &self.w2, &self.b2] {
            for v in buf.iter() {
                w.write_all(&v.to_le_bytes())?;
            }
        }
        Ok(())
    }

    /// Deserializes a network written by [`Mlp::save`].
    ///
    /// # Errors
    ///
    /// Returns an error on I/O failure or malformed input.
    pub fn load<R: std::io::Read>(mut r: R) -> std::io::Result<Self> {
        use std::io::{Error, ErrorKind};
        let mut magic = [0u8; 4];
        r.read_exact(&mut magic)?;
        if &magic != b"MLP1" {
            return Err(Error::new(ErrorKind::InvalidData, "bad MLP magic"));
        }
        let mut dims = [0u64; 3];
        for d in &mut dims {
            let mut b = [0u8; 8];
            r.read_exact(&mut b)?;
            *d = u64::from_le_bytes(b);
        }
        let (inputs, hidden, outputs) = (dims[0] as usize, dims[1] as usize, dims[2] as usize);
        if inputs == 0 || hidden == 0 || outputs == 0 || inputs * hidden > (1 << 28) {
            return Err(Error::new(ErrorKind::InvalidData, "implausible MLP dimensions"));
        }
        let mut read_f32s = |n: usize| -> std::io::Result<Vec<f32>> {
            let mut out = Vec::with_capacity(n);
            let mut b = [0u8; 4];
            for _ in 0..n {
                r.read_exact(&mut b)?;
                out.push(f32::from_le_bytes(b));
            }
            Ok(out)
        };
        let w1 = read_f32s(inputs * hidden)?;
        let b1 = read_f32s(hidden)?;
        let w2 = read_f32s(hidden * outputs)?;
        let b2 = read_f32s(outputs)?;
        let mut net = Mlp::new(inputs, hidden, outputs, 0);
        net.w1 = w1;
        net.b1 = b1;
        net.w2 = w2;
        net.b2 = b2;
        Ok(net)
    }

    /// Serializes the network *including* the SGD momentum buffers, so a
    /// restored network continues training bit-for-bit where it stopped.
    /// The backprop scratch (`last_input`/`last_hidden`) is not persisted:
    /// every [`Mlp::backward`] is preceded by a [`Mlp::forward`] that
    /// rewrites it.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from the writer.
    pub fn save_full<W: std::io::Write>(&self, mut w: W) -> std::io::Result<()> {
        w.write_all(b"MLPF")?;
        for dim in [self.inputs as u64, self.hidden as u64, self.outputs as u64] {
            w.write_all(&dim.to_le_bytes())?;
        }
        for buf in [&self.w1, &self.b1, &self.w2, &self.b2, &self.m_w1, &self.m_b1, &self.m_w2, &self.m_b2] {
            for v in buf.iter() {
                w.write_all(&v.to_le_bytes())?;
            }
        }
        Ok(())
    }

    /// Deserializes a network written by [`Mlp::save_full`].
    ///
    /// # Errors
    ///
    /// Returns an error on I/O failure or malformed input.
    pub fn load_full<R: std::io::Read>(mut r: R) -> std::io::Result<Self> {
        use std::io::{Error, ErrorKind};
        let mut magic = [0u8; 4];
        r.read_exact(&mut magic)?;
        if &magic != b"MLPF" {
            return Err(Error::new(ErrorKind::InvalidData, "bad full-MLP magic"));
        }
        let mut dims = [0u64; 3];
        for d in &mut dims {
            let mut b = [0u8; 8];
            r.read_exact(&mut b)?;
            *d = u64::from_le_bytes(b);
        }
        let (inputs, hidden, outputs) = (dims[0] as usize, dims[1] as usize, dims[2] as usize);
        if inputs == 0 || hidden == 0 || outputs == 0 || inputs * hidden > (1 << 28) {
            return Err(Error::new(ErrorKind::InvalidData, "implausible MLP dimensions"));
        }
        let mut read_f32s = |n: usize| -> std::io::Result<Vec<f32>> {
            let mut out = Vec::with_capacity(n);
            let mut b = [0u8; 4];
            for _ in 0..n {
                r.read_exact(&mut b)?;
                out.push(f32::from_le_bytes(b));
            }
            Ok(out)
        };
        let mut net = Mlp::new(inputs, hidden, outputs, 0);
        net.w1 = read_f32s(inputs * hidden)?;
        net.b1 = read_f32s(hidden)?;
        net.w2 = read_f32s(hidden * outputs)?;
        net.b2 = read_f32s(outputs)?;
        net.m_w1 = read_f32s(inputs * hidden)?;
        net.m_b1 = read_f32s(hidden)?;
        net.m_w2 = read_f32s(hidden * outputs)?;
        net.m_b2 = read_f32s(outputs)?;
        Ok(net)
    }

    /// Mean-squared-error convenience: forward on `input`, backward against
    /// `target` on the selected `action` output only (other outputs receive
    /// zero gradient, as in DQN), returning the squared error.
    pub fn train_action(
        &mut self,
        input: &[f32],
        action: usize,
        target: f32,
        learning_rate: f32,
        momentum: f32,
    ) -> f32 {
        let out = self.forward(input);
        let mut d_out = vec![0.0f32; self.outputs];
        let err = out[action] - target;
        // Huber-style gradient clipping keeps large TD errors from blowing
        // up the weights (the standard DQN stabilization).
        d_out[action] = err.clamp(-1.0, 1.0);
        self.backward(&d_out, learning_rate, momentum);
        err * err
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_is_deterministic_per_seed() {
        let mut a = Mlp::new(6, 5, 3, 7);
        let mut b = Mlp::new(6, 5, 3, 7);
        let x = [0.5, -0.5, 0.25, 0.0, 1.0, -1.0];
        assert_eq!(a.forward(&x), b.forward(&x));
        let mut c = Mlp::new(6, 5, 3, 8);
        assert_ne!(a.forward(&x), c.forward(&x));
    }

    #[test]
    fn predict_matches_forward() {
        let mut net = Mlp::new(4, 6, 2, 1);
        let x = [0.1, 0.2, 0.3, 0.4];
        assert_eq!(net.forward(&x), net.predict(&x));
    }

    #[test]
    fn gradient_check_against_finite_differences() {
        let mut net = Mlp::new(3, 4, 2, 9);
        let x = [0.3, -0.7, 0.2];
        let action = 1;
        let target = 0.5f32;

        // Analytic gradient for one first-layer weight via a probe update.
        let eps = 1e-3f32;
        let loss = |n: &Mlp| {
            let y = n.predict(&x)[action];
            0.5 * (y - target) * (y - target)
        };
        for &idx in &[0usize, 5, 11] {
            let mut plus = net.clone();
            plus.w1[idx] += eps;
            let mut minus = net.clone();
            minus.w1[idx] -= eps;
            let numeric = (loss(&plus) - loss(&minus)) / (2.0 * eps);

            // Analytic: δ = (y−t); backprop by hand through the probe.
            let mut probe = net.clone();
            let y = probe.forward(&x)[action];
            let mut d_out = vec![0.0; 2];
            d_out[action] = y - target;
            // Use learning rate 1, momentum 0: weight delta = -gradient.
            let before = probe.w1[idx];
            probe.backward(&d_out, 1.0, 0.0);
            let analytic = before - probe.w1[idx];
            assert!(
                (numeric - analytic).abs() < 2e-3,
                "w1[{idx}]: numeric {numeric} vs analytic {analytic}"
            );
        }
        let _ = net.forward(&x); // keep net "used"
    }

    #[test]
    fn training_reduces_error_on_a_fixed_target() {
        let mut net = Mlp::new(5, 12, 4, 3);
        let x = [0.2, -0.1, 0.7, -0.6, 0.05];
        let first = net.train_action(&x, 2, 1.0, 0.05, 0.9);
        for _ in 0..200 {
            net.train_action(&x, 2, 1.0, 0.05, 0.9);
        }
        let last = net.train_action(&x, 2, 1.0, 0.05, 0.9);
        assert!(last < first / 10.0, "error must shrink: {first} → {last}");
    }

    #[test]
    fn learns_a_simple_function() {
        use simrng::Rng;
        // Teach output 0 to be the sign-ish of x[0].
        let mut net = Mlp::new(2, 8, 1, 5);
        let mut rng = simrng::SimRng::seed_from_u64(17);
        for _ in 0..4000 {
            let x: f32 = rng.gen_range(-1.0..1.0);
            let target = if x > 0.0 { 1.0 } else { -1.0 };
            let _ = net.train_action(&[x, 1.0 - x.abs()], 0, target, 0.02, 0.8);
        }
        assert!(net.predict(&[0.8, 0.2])[0] > 0.4);
        assert!(net.predict(&[-0.8, 0.2])[0] < -0.4);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn wrong_input_size_panics() {
        let mut net = Mlp::new(3, 3, 3, 0);
        let _ = net.forward(&[1.0]);
    }

    #[test]
    fn save_load_roundtrip_preserves_predictions() {
        let mut net = Mlp::new(7, 5, 3, 21);
        for i in 0..50 {
            net.train_action(&[0.1; 7], i % 3, 0.5, 0.01, 0.9);
        }
        let mut buf = Vec::new();
        net.save(&mut buf).expect("in-memory save");
        let back = Mlp::load(buf.as_slice()).expect("load");
        let x = [0.3, -0.1, 0.2, 0.9, -0.9, 0.0, 0.4];
        assert_eq!(net.predict(&x), back.predict(&x));
    }

    #[test]
    fn load_rejects_garbage() {
        assert!(Mlp::load(&b"NOT A NET"[..]).is_err());
        assert!(Mlp::load_full(&b"NOT A NET"[..]).is_err());
    }

    #[test]
    fn full_roundtrip_preserves_momentum() {
        let mut net = Mlp::new(4, 6, 3, 13);
        for i in 0..40 {
            net.train_action(&[0.2, -0.4, 0.6, 0.1], i % 3, 0.25, 0.02, 0.9);
        }
        let mut buf = Vec::new();
        net.save_full(&mut buf).expect("in-memory save");
        let mut back = Mlp::load_full(buf.as_slice()).expect("load");
        // Training both copies further must stay bit-identical — this only
        // holds if the momentum buffers survived the roundtrip.
        for i in 0..40 {
            let a = net.train_action(&[0.3, 0.1, -0.2, 0.0], i % 3, -0.5, 0.02, 0.9);
            let b = back.train_action(&[0.3, 0.1, -0.2, 0.0], i % 3, -0.5, 0.02, 0.9);
            assert_eq!(a, b);
        }
        assert_eq!(net.predict(&[0.1; 4]), back.predict(&[0.1; 4]));
    }
}
