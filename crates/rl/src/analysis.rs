//! Interpreting the trained agent: the weight heat map (Fig. 3) and
//! hill-climbing feature selection (§III-B).

use cache_sim::{CacheConfig, LlcTrace};

use crate::agent::{Agent, AgentConfig, Trainer};
use crate::features::{Feature, FeatureSet};

/// Aggregates the first-layer weights into one importance score per
/// feature: the mean absolute weight over all hidden neurons and over the
/// feature's dimensions (averaged across ways for per-line features) —
/// exactly the aggregation behind the Fig. 3 heat map.
///
/// Returns `(feature, mean |weight|)` pairs in Table II order, restricted
/// to the features the agent actually observes.
pub fn weight_heatmap(agent: &Agent) -> Vec<(Feature, f64)> {
    let net = agent.net();
    let dims = net.inputs();
    let hidden = net.hidden();
    let w1 = net.first_layer_weights();
    let dim_features = agent.encoder().dim_features();
    debug_assert_eq!(dim_features.len(), dims);

    // Mean |w| per input dimension over all hidden neurons.
    let mut per_dim = vec![0.0f64; dims];
    for h in 0..hidden {
        let row = &w1[h * dims..(h + 1) * dims];
        for (i, &w) in row.iter().enumerate() {
            per_dim[i] += f64::from(w.abs());
        }
    }
    for v in &mut per_dim {
        *v /= hidden as f64;
    }

    agent
        .encoder()
        .features()
        .iter()
        .map(|f| {
            let (sum, n) = per_dim
                .iter()
                .zip(&dim_features)
                .filter(|(_, df)| **df == f)
                .fold((0.0, 0usize), |(s, n), (v, _)| (s + v, n + 1));
            (f, if n == 0 { 0.0 } else { sum / n as f64 })
        })
        .collect()
}

/// One round of the hill-climbing log.
#[derive(Clone, Debug)]
pub struct HillClimbRound {
    /// The feature added in this round.
    pub added: Feature,
    /// The resulting feature set.
    pub set: FeatureSet,
    /// Demand hit rate achieved by the set, averaged over the traces.
    pub score: f64,
}

/// Greedy forward feature selection (§III-B): starting from the empty set,
/// repeatedly add the feature whose addition maximizes the trained agent's
/// demand hit rate, stopping when no candidate improves the score or when
/// `max_features` is reached.
///
/// `epochs` training epochs are run per candidate evaluation; scores are
/// averaged across `traces`. Deterministic for a fixed `seed`.
pub fn hill_climb(
    traces: &[(&str, &LlcTrace)],
    cache: &CacheConfig,
    max_features: usize,
    epochs: usize,
    seed: u64,
) -> Vec<HillClimbRound> {
    assert!(!traces.is_empty(), "hill climbing needs at least one trace");
    let mut chosen = FeatureSet::empty();
    let mut rounds = Vec::new();
    let mut best_score = f64::NEG_INFINITY;

    while chosen.len() < max_features.min(crate::features::NUM_FEATURES) {
        let mut round_best: Option<(Feature, f64)> = None;
        // The paper's hill climb searches Table II only (PC features are
        // deliberately excluded from the final design).
        for candidate in Feature::ALL.into_iter().take(crate::features::NUM_FEATURES) {
            if chosen.contains(candidate) {
                continue;
            }
            let set = chosen.with(candidate);
            let score = score_feature_set(set, traces, cache, epochs, seed);
            if round_best.is_none_or(|(_, s)| score > s) {
                round_best = Some((candidate, score));
            }
        }
        let (feature, score) = round_best.expect("at least one candidate remains");
        if score <= best_score {
            break; // no further improvement
        }
        best_score = score;
        chosen = chosen.with(feature);
        rounds.push(HillClimbRound { added: feature, set: chosen, score });
    }
    rounds
}

/// Trains a small agent on each trace with the given feature subset and
/// returns the mean demand hit rate.
pub fn score_feature_set(
    set: FeatureSet,
    traces: &[(&str, &LlcTrace)],
    cache: &CacheConfig,
    epochs: usize,
    seed: u64,
) -> f64 {
    let mut total = 0.0;
    for (i, (_, trace)) in traces.iter().enumerate() {
        let mut trainer = Trainer::new(AgentConfig::small(set, seed ^ (i as u64) << 8), cache);
        for _ in 0..epochs {
            let _ = trainer.train_epoch(trace, cache);
        }
        total += trainer.evaluate(trace, cache).demand_hit_rate();
    }
    total / traces.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use cache_sim::{AccessKind, LlcRecord};

    fn cache() -> CacheConfig {
        CacheConfig { sets: 2, ways: 4, latency: 1 }
    }

    fn thrash_trace(len: usize) -> LlcTrace {
        (0..len)
            .map(|i| LlcRecord {
                pc: 0x400,
                line: (i % 12) as u64,
                kind: AccessKind::Load,
                core: 0,
            })
            .collect()
    }

    #[test]
    fn heatmap_covers_all_observed_features() {
        let agent = Agent::new(AgentConfig::small(FeatureSet::full(), 1), &cache());
        let map = weight_heatmap(&agent);
        assert_eq!(map.len(), crate::features::NUM_FEATURES);
        for (_, v) in &map {
            assert!(*v > 0.0, "fresh Xavier weights have non-zero magnitude");
        }
    }

    #[test]
    fn heatmap_respects_feature_subsets() {
        let set = FeatureSet::empty().with(Feature::LinePreuse).with(Feature::LineRecency);
        let agent = Agent::new(AgentConfig::small(set, 1), &cache());
        let map = weight_heatmap(&agent);
        assert_eq!(map.len(), 2);
        assert_eq!(map[0].0, Feature::LinePreuse);
        assert_eq!(map[1].0, Feature::LineRecency);
    }

    #[test]
    fn hill_climb_returns_improving_rounds() {
        let trace = thrash_trace(1500);
        let rounds = hill_climb(&[("thrash", &trace)], &cache(), 2, 1, 11);
        assert!(!rounds.is_empty());
        for pair in rounds.windows(2) {
            assert!(pair[1].score >= pair[0].score, "scores must be non-decreasing");
            assert_eq!(pair[1].set.len(), pair[0].set.len() + 1);
        }
    }
}
