//! The DQN agent and its trainer (paper §III-A).

use cache_sim::{CacheConfig, LlcTrace};
use simrng::{Rng, SimRng};

use crate::cachemodel::{LlcModel, ModelStats, StepOutcome};
use crate::features::{DecisionView, FeatureSet, StateEncoder};
use crate::mlp::Mlp;
use crate::replay::{ReplayBuffer, Transition};
use crate::wire;

/// Hyperparameters of the agent, defaulting to the paper's choices.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AgentConfig {
    /// Observed feature subset (default: all of Table II).
    pub features: FeatureSet,
    /// Hidden-layer width (paper: 175).
    pub hidden: usize,
    /// ε for ε-greedy exploration (paper: 0.1).
    pub epsilon: f32,
    /// Discount factor for the DQN target.
    pub gamma: f32,
    /// SGD learning rate.
    pub learning_rate: f32,
    /// SGD momentum.
    pub momentum: f32,
    /// Replay-memory capacity.
    pub replay_capacity: usize,
    /// Minibatch size per training round.
    pub batch_size: usize,
    /// Train once per this many decisions.
    pub train_every: u32,
    /// Sync a frozen target network every this many updates (the Mnih et
    /// al. stabilization the DQN method the paper trains with is built on);
    /// 0 disables the target network and bootstraps from the live network.
    pub target_sync: u32,
    /// RNG seed (exploration + initialization).
    pub seed: u64,
}

impl Default for AgentConfig {
    fn default() -> Self {
        Self {
            features: FeatureSet::full(),
            hidden: 175,
            epsilon: 0.1,
            gamma: 0.5,
            learning_rate: 5e-3,
            momentum: 0.9,
            replay_capacity: 8192,
            batch_size: 32,
            train_every: 4,
            target_sync: 0,
            seed: 0xCAFE,
        }
    }
}

impl AgentConfig {
    /// A reduced configuration for fast exploration (hill climbing, tests):
    /// a small hidden layer and lighter replay traffic.
    pub fn small(features: FeatureSet, seed: u64) -> Self {
        Self {
            features,
            hidden: 24,
            replay_capacity: 2048,
            seed,
            ..Self::default()
        }
    }
}

/// The victim-selection agent: an MLP estimating per-way eviction quality.
#[derive(Clone, Debug)]
pub struct Agent {
    net: Mlp,
    /// Frozen copy used for bootstrap targets when `target_sync > 0`.
    target_net: Option<Mlp>,
    updates_since_sync: u32,
    encoder: StateEncoder,
    config: AgentConfig,
    rng: SimRng,
}

impl Agent {
    /// Creates an agent for a cache geometry.
    pub fn new(config: AgentConfig, cache: &CacheConfig) -> Self {
        let encoder = StateEncoder::new(config.features, cache.ways as usize, cache.sets);
        let net = Mlp::new(encoder.dims(), config.hidden, cache.ways as usize, config.seed);
        let target_net = (config.target_sync > 0).then(|| net.clone());
        Self {
            net,
            target_net,
            updates_since_sync: 0,
            encoder,
            config,
            rng: SimRng::seed_from_u64(config.seed ^ 0x5EED),
        }
    }

    /// Reconstructs an agent around a previously trained network (e.g. one
    /// loaded via [`Mlp::load`]).
    ///
    /// # Panics
    ///
    /// Panics if the network's dimensions do not match the configuration
    /// and cache geometry.
    pub fn from_net(config: AgentConfig, cache: &CacheConfig, net: Mlp) -> Self {
        let encoder = StateEncoder::new(config.features, cache.ways as usize, cache.sets);
        assert_eq!(net.inputs(), encoder.dims(), "network inputs must match the encoder");
        assert_eq!(net.outputs(), cache.ways as usize, "network outputs must match ways");
        let target_net = (config.target_sync > 0).then(|| net.clone());
        Self {
            net,
            target_net,
            updates_since_sync: 0,
            encoder,
            config,
            rng: SimRng::seed_from_u64(config.seed ^ 0x5EED),
        }
    }

    /// The state encoder in use.
    pub fn encoder(&self) -> &StateEncoder {
        &self.encoder
    }

    /// The underlying network (e.g. for weight analysis).
    pub fn net(&self) -> &Mlp {
        &self.net
    }

    /// The agent's configuration.
    pub fn config(&self) -> &AgentConfig {
        &self.config
    }

    /// ε-greedy decision: the encoded state and the chosen way.
    pub fn decide(&mut self, view: &DecisionView) -> (Vec<f32>, u16) {
        let state = self.encoder.encode(view);
        let ways = self.net.outputs() as u16;
        let action = if self.rng.gen::<f32>() < self.config.epsilon {
            self.rng.gen_range(0..ways)
        } else {
            self.greedy_from_state(&state)
        };
        (state, action)
    }

    /// Greedy (exploitation-only) decision.
    pub fn decide_greedy(&self, view: &DecisionView) -> u16 {
        self.greedy_from_state(&self.encoder.encode(view))
    }

    fn greedy_from_state(&self, state: &[f32]) -> u16 {
        let q = self.net.predict(state);
        let mut best = 0usize;
        for (i, &v) in q.iter().enumerate() {
            if v > q[best] {
                best = i;
            }
        }
        best as u16
    }

    /// One DQN update on a single transition (shared with the multi-agent
    /// trainer).
    pub(crate) fn learn_public(&mut self, t: &Transition) -> f32 {
        self.learn(t)
    }

    /// One DQN update on a single transition.
    fn learn(&mut self, t: &Transition) -> f32 {
        if let Some(target) = &mut self.target_net {
            self.updates_since_sync += 1;
            if self.updates_since_sync >= self.config.target_sync {
                *target = self.net.clone();
                self.updates_since_sync = 0;
            }
        }
        let future = if t.next_state.is_empty() {
            0.0
        } else {
            let bootstrap_net = self.target_net.as_ref().unwrap_or(&self.net);
            let q_next = bootstrap_net.predict(&t.next_state);
            q_next.iter().copied().fold(f32::NEG_INFINITY, f32::max)
        };
        // Rewards are in [-1, 1], so the true Q-value is bounded by the
        // geometric series 1/(1-γ); clamping the bootstrapped target to
        // that range prevents divergence.
        let q_max = 1.0 / (1.0 - self.config.gamma.min(0.99));
        let target = (t.reward + self.config.gamma * future).clamp(-q_max, q_max);
        self.net.train_action(
            &t.state,
            t.action as usize,
            target,
            self.config.learning_rate,
            self.config.momentum,
        )
    }
}

/// Summary of one training run over a trace.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct TrainingReport {
    /// Model statistics of the (exploring) training run.
    pub stats: ModelStats,
    /// Decisions that earned the +1 (Belady-agreeing) reward.
    pub optimal_decisions: u64,
    /// Decisions that earned the −1 (harmful) reward.
    pub harmful_decisions: u64,
    /// Mean squared TD error over the run's updates.
    pub mean_loss: f64,
}

impl TrainingReport {
    /// Fraction of decisions that matched Belady's choice.
    pub fn optimal_rate(&self) -> f64 {
        if self.stats.decisions == 0 {
            0.0
        } else {
            self.optimal_decisions as f64 / self.stats.decisions as f64
        }
    }
}

/// Drives agent training over captured LLC traces (Fig. 2's loop).
#[derive(Clone, Debug)]
pub struct Trainer {
    agent: Agent,
    replay: ReplayBuffer,
    rng: SimRng,
}

impl Trainer {
    /// Creates a trainer around a fresh agent.
    pub fn new(config: AgentConfig, cache: &CacheConfig) -> Self {
        Self {
            replay: ReplayBuffer::new(config.replay_capacity),
            rng: SimRng::seed_from_u64(config.seed ^ 0x7EA1),
            agent: Agent::new(config, cache),
        }
    }

    /// The trained agent.
    pub fn agent(&self) -> &Agent {
        &self.agent
    }

    /// Consumes the trainer, returning the agent.
    pub fn into_agent(self) -> Agent {
        self.agent
    }

    /// Runs one training epoch over `trace` (ε-greedy decisions, rewards
    /// from the Belady oracle, experience replay updates).
    pub fn train_epoch(&mut self, trace: &LlcTrace, cache: &CacheConfig) -> TrainingReport {
        let mut model = LlcModel::new(cache, trace);
        let mut report = TrainingReport::default();
        let mut pending: Option<(Vec<f32>, u16, f32)> = None;
        let mut losses = 0.0f64;
        let mut updates = 0u64;
        let train_every = self.agent.config().train_every.max(1);
        let batch = self.agent.config().batch_size;
        let mut decision_count = 0u32;

        for record in trace.records() {
            let agent = &mut self.agent;
            let mut decided: Option<(Vec<f32>, u16)> = None;
            let outcome = model.step(record, &mut |view| {
                let (state, action) = agent.decide(view);
                let a = action;
                decided = Some((state, action));
                a
            });
            if let StepOutcome::Evicted {
                victim_next_use,
                farthest_next_use,
                inserted_next_use,
                ..
            } = outcome
            {
                let (state, action) = decided.expect("chooser ran");
                // Paper reward: +1 for evicting the farthest-reuse line,
                // −1 for evicting a line that would be reused before the
                // inserted one, 0 otherwise.
                let reward = if victim_next_use == farthest_next_use {
                    report.optimal_decisions += 1;
                    1.0
                } else if victim_next_use < inserted_next_use {
                    report.harmful_decisions += 1;
                    -1.0
                } else {
                    0.0
                };
                // Complete the previous transition with this decision's
                // state as its successor.
                if let Some((ps, pa, pr)) = pending.take() {
                    self.replay.push(Transition {
                        state: ps,
                        action: pa,
                        reward: pr,
                        next_state: state.clone(),
                    });
                }
                pending = Some((state, action, reward));

                decision_count += 1;
                if decision_count.is_multiple_of(train_every) && !self.replay.is_empty() {
                    for _ in 0..batch {
                        let t = self
                            .replay
                            .sample(&mut self.rng)
                            .expect("buffer checked non-empty")
                            .clone();
                        losses += f64::from(self.agent.learn(&t));
                        updates += 1;
                    }
                }
            }
        }
        // Flush the final decision as a terminal transition.
        if let Some((ps, pa, pr)) = pending {
            self.replay.push(Transition { state: ps, action: pa, reward: pr, next_state: Vec::new() });
        }
        report.stats = *model.stats();
        report.mean_loss = if updates == 0 { 0.0 } else { losses / updates as f64 };
        report
    }

    /// Evaluates the current agent greedily (no exploration, no learning).
    pub fn evaluate(&self, trace: &LlcTrace, cache: &CacheConfig) -> ModelStats {
        let mut model = LlcModel::new(cache, trace);
        let agent = &self.agent;
        model.run(trace, &mut |view| agent.decide_greedy(view))
    }

    /// Serializes the complete training state after `epoch` finished
    /// epochs: hyperparameters, network weights *and* optimizer momentum,
    /// the frozen target network, both RNG streams, and the replay buffer.
    /// A trainer restored via [`Trainer::load_checkpoint`] continues
    /// bit-for-bit as if training had never been interrupted.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from the writer.
    pub fn save_checkpoint<W: std::io::Write>(&self, mut w: W, epoch: u64) -> std::io::Result<()> {
        let c = &self.agent.config;
        w.write_all(b"RLCK")?;
        wire::write_u32(&mut w, 1)?;
        wire::write_u64(&mut w, epoch)?;
        wire::write_u32(&mut w, c.features.bits())?;
        wire::write_u64(&mut w, c.hidden as u64)?;
        wire::write_f32(&mut w, c.epsilon)?;
        wire::write_f32(&mut w, c.gamma)?;
        wire::write_f32(&mut w, c.learning_rate)?;
        wire::write_f32(&mut w, c.momentum)?;
        wire::write_u64(&mut w, c.replay_capacity as u64)?;
        wire::write_u64(&mut w, c.batch_size as u64)?;
        wire::write_u32(&mut w, c.train_every)?;
        wire::write_u32(&mut w, c.target_sync)?;
        wire::write_u64(&mut w, c.seed)?;
        for s in self.agent.rng.state().into_iter().chain(self.rng.state()) {
            wire::write_u64(&mut w, s)?;
        }
        wire::write_u32(&mut w, self.agent.updates_since_sync)?;
        self.agent.net.save_full(&mut w)?;
        match &self.agent.target_net {
            Some(t) => {
                w.write_all(&[1])?;
                t.save_full(&mut w)?;
            }
            None => w.write_all(&[0])?,
        }
        self.replay.save(&mut w)
    }

    /// Restores a trainer from a [`Trainer::save_checkpoint`] stream,
    /// returning it together with the number of completed epochs. The
    /// agent configuration is read from the checkpoint itself, so resuming
    /// cannot silently diverge from the interrupted run's hyperparameters.
    ///
    /// # Errors
    ///
    /// Returns an error on I/O failure, malformed input, or a network that
    /// does not match `cache`'s geometry.
    pub fn load_checkpoint<R: std::io::Read>(
        mut r: R,
        cache: &CacheConfig,
    ) -> std::io::Result<(Self, u64)> {
        let mut magic = [0u8; 4];
        r.read_exact(&mut magic)?;
        if &magic != b"RLCK" {
            return Err(wire::bad_data("bad checkpoint magic"));
        }
        if wire::read_u32(&mut r)? != 1 {
            return Err(wire::bad_data("unsupported checkpoint version"));
        }
        let epoch = wire::read_u64(&mut r)?;
        let config = AgentConfig {
            features: FeatureSet::from_bits(wire::read_u32(&mut r)?),
            hidden: wire::read_u64(&mut r)? as usize,
            epsilon: wire::read_f32(&mut r)?,
            gamma: wire::read_f32(&mut r)?,
            learning_rate: wire::read_f32(&mut r)?,
            momentum: wire::read_f32(&mut r)?,
            replay_capacity: wire::read_u64(&mut r)? as usize,
            batch_size: wire::read_u64(&mut r)? as usize,
            train_every: wire::read_u32(&mut r)?,
            target_sync: wire::read_u32(&mut r)?,
            seed: wire::read_u64(&mut r)?,
        };
        let mut states = [0u64; 8];
        for s in &mut states {
            *s = wire::read_u64(&mut r)?;
        }
        let updates_since_sync = wire::read_u32(&mut r)?;
        let net = Mlp::load_full(&mut r)?;
        let mut target_flag = [0u8; 1];
        r.read_exact(&mut target_flag)?;
        let target_net = match target_flag[0] {
            0 => None,
            1 => Some(Mlp::load_full(&mut r)?),
            _ => return Err(wire::bad_data("bad target-network flag")),
        };
        let replay = ReplayBuffer::load(&mut r)?;

        let encoder = StateEncoder::new(config.features, cache.ways as usize, cache.sets);
        if net.inputs() != encoder.dims() || net.outputs() != cache.ways as usize {
            return Err(wire::bad_data("checkpoint network does not match the cache geometry"));
        }
        if config.replay_capacity == 0 || replay.len() > config.replay_capacity {
            return Err(wire::bad_data("checkpoint replay buffer exceeds its capacity"));
        }
        let agent = Agent {
            net,
            target_net,
            updates_since_sync,
            encoder,
            config,
            rng: SimRng::from_state([states[0], states[1], states[2], states[3]]),
        };
        let trainer = Self {
            agent,
            replay,
            rng: SimRng::from_state([states[4], states[5], states[6], states[7]]),
        };
        Ok((trainer, epoch))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cache_sim::{AccessKind, LlcRecord};

    fn thrash_trace(lines: u64, len: usize) -> LlcTrace {
        (0..len)
            .map(|i| LlcRecord {
                pc: 0x400 + (i as u64 % lines) * 4,
                line: i as u64 % lines,
                kind: AccessKind::Load,
                core: 0,
            })
            .collect()
    }

    fn small_cache() -> CacheConfig {
        CacheConfig { sets: 2, ways: 4, latency: 1 }
    }

    #[test]
    fn training_improves_over_random_on_thrash() {
        // Cyclic pattern over 12 lines in a 2x4 cache: optimal keeps a
        // subset; a random/untrained agent churns.
        let cache = small_cache();
        let trace = thrash_trace(12, 6000);
        let features = FeatureSet::full();
        let mut trainer = Trainer::new(AgentConfig::small(features, 7), &cache);
        let before = trainer.evaluate(&trace, &cache);
        for _ in 0..6 {
            let _ = trainer.train_epoch(&trace, &cache);
        }
        let after = trainer.evaluate(&trace, &cache);
        assert!(
            after.hits > before.hits,
            "training must help: {} → {} hits",
            before.hits,
            after.hits
        );
        // And it should close most of the gap to Belady.
        let mut opt = LlcModel::new(&cache, &trace);
        let opt_stats = opt.run_belady(&trace);
        assert!(
            after.hits as f64 >= 0.5 * opt_stats.hits as f64,
            "trained agent ({}) should approach Belady ({})",
            after.hits,
            opt_stats.hits
        );
    }

    #[test]
    fn rewards_follow_the_paper_rules() {
        let cache = CacheConfig { sets: 1, ways: 2, latency: 1 };
        // 1, 2, 3, 1: evicting 1 at the decision is harmful (reused before
        // the never-reused 3); evicting 2 is optimal.
        let t: LlcTrace = [1u64, 2, 3, 1]
            .into_iter()
            .map(|l| LlcRecord { pc: 0, line: l, kind: AccessKind::Load, core: 0 })
            .collect();
        let mut cfg = AgentConfig::small(FeatureSet::full(), 1);
        cfg.epsilon = 0.0;
        let mut trainer = Trainer::new(cfg, &cache);
        let report = trainer.train_epoch(&t, &cache);
        // The untrained net picks the first victim from its initial weights:
        // evicting 2 (optimal, +1) ends the trace with one decision, while
        // evicting 1 (harmful, −1) forces a second miss whose eviction is a
        // tie at infinity and therefore optimal. Either way every decision
        // is classified and at most the first can be harmful.
        assert_eq!(report.stats.decisions, 1 + report.harmful_decisions);
        assert!(report.harmful_decisions <= 1);
        assert_eq!(
            report.optimal_decisions + report.harmful_decisions,
            report.stats.decisions,
            "each decision here is either optimal (evict 2) or harmful (evict 1)"
        );
    }

    #[test]
    fn target_network_training_converges_too() {
        let cache = small_cache();
        let trace = thrash_trace(12, 5000);
        let mut config = AgentConfig::small(FeatureSet::full(), 7);
        config.target_sync = 256;
        let mut trainer = Trainer::new(config, &cache);
        let mut random_model = crate::cachemodel::LlcModel::new(&cache, &trace);
        let mut state = 99u64;
        let random = random_model.run(&trace, &mut |_| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) % 4) as u16
        });
        for _ in 0..6 {
            let _ = trainer.train_epoch(&trace, &cache);
        }
        let trained = trainer.evaluate(&trace, &cache);
        assert!(
            trained.hits > random.hits,
            "target-network DQN must beat random: {} vs {}",
            trained.hits,
            random.hits
        );
    }

    #[test]
    fn evaluation_is_deterministic() {
        let cache = small_cache();
        let trace = thrash_trace(10, 2000);
        let mut trainer = Trainer::new(AgentConfig::small(FeatureSet::full(), 3), &cache);
        let _ = trainer.train_epoch(&trace, &cache);
        let a = trainer.evaluate(&trace, &cache);
        let b = trainer.evaluate(&trace, &cache);
        assert_eq!(a, b);
    }
}
