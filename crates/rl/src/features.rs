//! The LLC state features of Table II and the 334-dimensional state
//! encoder.

use cache_sim::AccessKind;

/// Normalization ceiling for unbounded counters (ages, preuse distances,
/// access counts), mirroring the paper's "normalized by their respective
/// maximum values" with 8-bit saturating counters.
const NORM_CAP: f32 = 255.0;

/// One of the 18 features the RL agent may observe (Table II).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Feature {
    /// Lower-order 6 bits of the accessed address (binary encoded).
    AccessOffset,
    /// Set accesses since the last access to the accessed address.
    AccessPreuse,
    /// Type of the current access (one-hot LD/RFO/PF/WB).
    AccessType,
    /// Which set is being accessed (normalized index).
    SetNumber,
    /// Total accesses to the set.
    SetAccesses,
    /// Set accesses since the last miss to the set.
    SetAccessesSinceMiss,
    /// Lower-order 6 bits of each cache line's address (binary encoded).
    LineOffset,
    /// Each line's dirty bit.
    LineDirty,
    /// Set accesses between the last two accesses of each line.
    LinePreuse,
    /// Set accesses since each line's insertion.
    LineAgeSinceInsertion,
    /// Set accesses since each line's last access.
    LineAgeSinceLastAccess,
    /// Type of each line's last access (one-hot).
    LineLastAccessType,
    /// Load accesses to each line.
    LineLdCount,
    /// RFO accesses to each line.
    LineRfoCount,
    /// Prefetch accesses to each line.
    LinePfCount,
    /// Writeback accesses to each line.
    LineWbCount,
    /// Hits to each line since insertion.
    LineHitsSinceInsertion,
    /// Relative access order of each line within its set.
    LineRecency,
    /// EXTENSION (not in Table II): hashed PC of the current access,
    /// binary-encoded. The paper deliberately excludes PC from its final
    /// feature set but notes that "RL performance can be improved by
    /// including PC-based features"; this feature reproduces that claim.
    AccessPcHash,
    /// EXTENSION (not in Table II): hashed PC of each line's last access.
    LinePcHash,
}

/// Number of Table II features (the paper's 334-dimensional state).
pub const NUM_FEATURES: usize = 18;
/// Total features including the PC extensions.
pub const NUM_FEATURES_EXTENDED: usize = 20;

impl Feature {
    /// All features: Table II order, then the PC extensions.
    pub const ALL: [Feature; NUM_FEATURES_EXTENDED] = [
        Feature::AccessOffset,
        Feature::AccessPreuse,
        Feature::AccessType,
        Feature::SetNumber,
        Feature::SetAccesses,
        Feature::SetAccessesSinceMiss,
        Feature::LineOffset,
        Feature::LineDirty,
        Feature::LinePreuse,
        Feature::LineAgeSinceInsertion,
        Feature::LineAgeSinceLastAccess,
        Feature::LineLastAccessType,
        Feature::LineLdCount,
        Feature::LineRfoCount,
        Feature::LinePfCount,
        Feature::LineWbCount,
        Feature::LineHitsSinceInsertion,
        Feature::LineRecency,
        Feature::AccessPcHash,
        Feature::LinePcHash,
    ];

    /// Dense index in [`Feature::ALL`].
    pub fn index(self) -> usize {
        Feature::ALL.iter().position(|&f| f == self).expect("feature is in ALL")
    }

    /// `true` if the feature is replicated per cache way.
    pub fn is_per_line(self) -> bool {
        self.index() >= Feature::LineOffset.index() && self != Feature::AccessPcHash
    }

    /// Dimensions contributed per instance (per access/set, or per way for
    /// per-line features).
    pub fn width(self) -> usize {
        match self {
            Feature::AccessOffset | Feature::LineOffset => 6,
            Feature::AccessType | Feature::LineLastAccessType => 4,
            Feature::AccessPcHash => 8,
            Feature::LinePcHash => 4,
            _ => 1,
        }
    }

    /// Total dimensions contributed for a cache with `ways` ways.
    pub fn dims(self, ways: usize) -> usize {
        if self.is_per_line() {
            self.width() * ways
        } else {
            self.width()
        }
    }

    /// Short display name (matches the Fig. 3 axis labels).
    pub fn short_name(self) -> &'static str {
        match self {
            Feature::AccessOffset => "access offset",
            Feature::AccessPreuse => "access preuse",
            Feature::AccessType => "access type",
            Feature::SetNumber => "set number",
            Feature::SetAccesses => "set accesses",
            Feature::SetAccessesSinceMiss => "set accesses since miss",
            Feature::LineOffset => "line offset",
            Feature::LineDirty => "line dirty",
            Feature::LinePreuse => "line preuse",
            Feature::LineAgeSinceInsertion => "line age since insertion",
            Feature::LineAgeSinceLastAccess => "line age since last access",
            Feature::LineLastAccessType => "line last access type",
            Feature::LineLdCount => "line LD access count",
            Feature::LineRfoCount => "line RFO access count",
            Feature::LinePfCount => "line PF access count",
            Feature::LineWbCount => "line WB access count",
            Feature::LineHitsSinceInsertion => "line hits since insertion",
            Feature::LineRecency => "line recency",
            Feature::AccessPcHash => "access PC hash (ext)",
            Feature::LinePcHash => "line PC hash (ext)",
        }
    }
}

impl std::fmt::Display for Feature {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.short_name())
    }
}

/// A subset of features, as a bitmask.
///
/// ```
/// use rl::{Feature, FeatureSet};
///
/// let set = FeatureSet::empty().with(Feature::LinePreuse).with(Feature::LineRecency);
/// assert!(set.contains(Feature::LinePreuse));
/// assert_eq!(set.len(), 2);
/// assert_eq!(FeatureSet::full().len(), rl::NUM_FEATURES);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct FeatureSet(u32);

impl FeatureSet {
    /// The empty set.
    pub fn empty() -> Self {
        Self(0)
    }

    /// All 18 Table II features (the paper's full 334-dimensional state).
    pub fn full() -> Self {
        Self((1 << NUM_FEATURES) - 1)
    }

    /// Table II plus the PC extension features (the "PC-based features"
    /// the paper says would improve the RL agent).
    pub fn full_with_pc() -> Self {
        Self((1 << NUM_FEATURES_EXTENDED) - 1)
    }

    /// The raw membership bitmask (bit `i` ⇔ `Feature::ALL[i]`), for
    /// checkpoint serialization.
    pub fn bits(self) -> u32 {
        self.0
    }

    /// Rebuilds a set from a [`FeatureSet::bits`] mask; bits beyond the
    /// known features are discarded.
    pub fn from_bits(bits: u32) -> Self {
        Self(bits & ((1 << NUM_FEATURES_EXTENDED) - 1))
    }

    /// Returns the set plus `feature`.
    #[must_use]
    pub fn with(self, feature: Feature) -> Self {
        Self(self.0 | (1 << feature.index()))
    }

    /// Returns the set minus `feature`.
    #[must_use]
    pub fn without(self, feature: Feature) -> Self {
        Self(self.0 & !(1 << feature.index()))
    }

    /// Membership test.
    pub fn contains(self, feature: Feature) -> bool {
        self.0 & (1 << feature.index()) != 0
    }

    /// Number of features in the set.
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// `true` if no feature is selected.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Iterates the contained features in Table II order.
    pub fn iter(self) -> impl Iterator<Item = Feature> {
        Feature::ALL.into_iter().filter(move |f| self.contains(*f))
    }

    /// State-vector dimensionality for a cache with `ways` ways.
    pub fn dims(self, ways: usize) -> usize {
        self.iter().map(|f| f.dims(ways)).sum()
    }
}

/// A snapshot of one cache line for encoding.
#[derive(Clone, Copy, Debug)]
pub struct LineView {
    /// Line is valid (invalid lines encode as zeros).
    pub valid: bool,
    /// Lower 6 bits of the line address.
    pub offset6: u8,
    /// Dirty bit.
    pub dirty: bool,
    /// Set accesses between the line's last two accesses.
    pub preuse: u64,
    /// Set accesses since insertion.
    pub age_since_insertion: u64,
    /// Set accesses since last access.
    pub age_since_last_access: u64,
    /// Last access type.
    pub last_type: AccessKind,
    /// Per-kind access counts (LD, RFO, PF, WB), saturating.
    pub counts: [u8; 4],
    /// Hits since insertion.
    pub hits: u64,
    /// Recency rank: 0 = least recently used, `ways-1` = most recent.
    pub recency: u16,
    /// Hashed PC of the line's last access (PC extension feature).
    pub pc_hash: u8,
}

impl Default for LineView {
    fn default() -> Self {
        Self {
            valid: false,
            offset6: 0,
            dirty: false,
            preuse: 0,
            age_since_insertion: 0,
            age_since_last_access: 0,
            last_type: AccessKind::Load,
            counts: [0; 4],
            hits: 0,
            recency: 0,
            pc_hash: 0,
        }
    }
}

/// The full decision-time view handed to the encoder (and to victim
/// choosers): the current access, its set, and all lines in the set.
#[derive(Clone, Debug)]
pub struct DecisionView {
    /// Lower 6 bits of the accessed address.
    pub access_offset6: u8,
    /// Set accesses since the last access to this address (`u64::MAX` if
    /// never seen).
    pub access_preuse: u64,
    /// Kind of the access triggering the decision.
    pub access_kind: AccessKind,
    /// Index of the accessed set.
    pub set_number: u32,
    /// Total accesses to the set.
    pub set_accesses: u64,
    /// Accesses to the set since its last miss.
    pub set_accesses_since_miss: u64,
    /// One view per way.
    pub lines: Vec<LineView>,
    /// Hashed PC of the current access (PC extension feature).
    pub access_pc_hash: u8,
}

/// Encodes [`DecisionView`]s into fixed-size state vectors for a feature
/// subset.
///
/// ```
/// use rl::{FeatureSet, StateEncoder};
///
/// // The paper's full state for a 16-way, 2048-set LLC is 334-dimensional.
/// let enc = StateEncoder::new(FeatureSet::full(), 16, 2048);
/// assert_eq!(enc.dims(), 334);
/// ```
#[derive(Clone, Debug)]
pub struct StateEncoder {
    features: FeatureSet,
    ways: usize,
    sets: u32,
    dims: usize,
}

impl StateEncoder {
    /// Creates an encoder for the feature subset and cache geometry.
    pub fn new(features: FeatureSet, ways: usize, sets: u32) -> Self {
        let dims = features.dims(ways);
        Self { features, ways, sets, dims }
    }

    /// State-vector dimensionality.
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// The encoded feature subset.
    pub fn features(&self) -> FeatureSet {
        self.features
    }

    /// Ways covered by per-line features.
    pub fn ways(&self) -> usize {
        self.ways
    }

    /// For each state-vector dimension, the feature it belongs to (used by
    /// the Fig. 3 heat-map aggregation).
    pub fn dim_features(&self) -> Vec<Feature> {
        let mut out = Vec::with_capacity(self.dims);
        for f in self.features.iter() {
            for _ in 0..f.dims(self.ways) {
                out.push(f);
            }
        }
        out
    }

    fn norm(v: u64) -> f32 {
        (v.min(255) as f32) / NORM_CAP
    }

    fn push_bits6(out: &mut Vec<f32>, v: u8) {
        for b in 0..6 {
            out.push(f32::from((v >> b) & 1));
        }
    }

    fn push_onehot4(out: &mut Vec<f32>, kind: AccessKind) {
        for k in AccessKind::ALL {
            out.push(f32::from(u8::from(k == kind)));
        }
    }

    /// Encodes `view` into a fresh state vector.
    ///
    /// # Panics
    ///
    /// Panics if `view.lines.len()` differs from the encoder's way count.
    pub fn encode(&self, view: &DecisionView) -> Vec<f32> {
        assert_eq!(view.lines.len(), self.ways, "line count mismatch");
        let mut out = Vec::with_capacity(self.dims);
        for f in self.features.iter() {
            match f {
                Feature::AccessOffset => Self::push_bits6(&mut out, view.access_offset6),
                Feature::AccessPreuse => {
                    let v = if view.access_preuse == u64::MAX { 255 } else { view.access_preuse };
                    out.push(Self::norm(v));
                }
                Feature::AccessType => Self::push_onehot4(&mut out, view.access_kind),
                Feature::SetNumber => {
                    out.push(view.set_number as f32 / (self.sets.max(2) - 1) as f32)
                }
                Feature::SetAccesses => out.push(Self::norm(view.set_accesses)),
                Feature::SetAccessesSinceMiss => {
                    out.push(Self::norm(view.set_accesses_since_miss))
                }
                Feature::LineOffset => {
                    for l in &view.lines {
                        Self::push_bits6(&mut out, l.offset6);
                    }
                }
                Feature::LineDirty => {
                    for l in &view.lines {
                        out.push(f32::from(u8::from(l.dirty)));
                    }
                }
                Feature::LinePreuse => {
                    for l in &view.lines {
                        out.push(Self::norm(l.preuse));
                    }
                }
                Feature::LineAgeSinceInsertion => {
                    for l in &view.lines {
                        out.push(Self::norm(l.age_since_insertion));
                    }
                }
                Feature::LineAgeSinceLastAccess => {
                    for l in &view.lines {
                        out.push(Self::norm(l.age_since_last_access));
                    }
                }
                Feature::LineLastAccessType => {
                    for l in &view.lines {
                        Self::push_onehot4(&mut out, l.last_type);
                    }
                }
                Feature::LineLdCount => {
                    for l in &view.lines {
                        out.push(Self::norm(u64::from(l.counts[0])));
                    }
                }
                Feature::LineRfoCount => {
                    for l in &view.lines {
                        out.push(Self::norm(u64::from(l.counts[1])));
                    }
                }
                Feature::LinePfCount => {
                    for l in &view.lines {
                        out.push(Self::norm(u64::from(l.counts[2])));
                    }
                }
                Feature::LineWbCount => {
                    for l in &view.lines {
                        out.push(Self::norm(u64::from(l.counts[3])));
                    }
                }
                Feature::LineHitsSinceInsertion => {
                    for l in &view.lines {
                        out.push(Self::norm(l.hits));
                    }
                }
                Feature::LineRecency => {
                    for l in &view.lines {
                        out.push(f32::from(l.recency) / (self.ways.max(2) - 1) as f32);
                    }
                }
                Feature::AccessPcHash => {
                    for b in 0..8 {
                        out.push(f32::from((view.access_pc_hash >> b) & 1));
                    }
                }
                Feature::LinePcHash => {
                    for l in &view.lines {
                        for b in 0..4 {
                            out.push(f32::from((l.pc_hash >> b) & 1));
                        }
                    }
                }
            }
        }
        debug_assert_eq!(out.len(), self.dims);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn view(ways: usize) -> DecisionView {
        DecisionView {
            access_offset6: 0b101010,
            access_preuse: 10,
            access_kind: AccessKind::Load,
            set_number: 5,
            set_accesses: 100,
            set_accesses_since_miss: 3,
            lines: (0..ways)
                .map(|i| LineView {
                    valid: true,
                    offset6: i as u8,
                    dirty: i % 2 == 0,
                    preuse: i as u64,
                    age_since_insertion: 2 * i as u64,
                    age_since_last_access: i as u64,
                    last_type: AccessKind::ALL[i % 4],
                    counts: [1, 2, 3, 4],
                    hits: i as u64,
                    recency: i as u16,
                    pc_hash: i as u8,
                })
                .collect(),
            access_pc_hash: 0b1010_1010,
        }
    }

    #[test]
    fn full_feature_set_is_334_dimensional_for_16_ways() {
        // The paper's headline number: 11 access + 3 set + 20x16 line dims.
        assert_eq!(FeatureSet::full().dims(16), 334);
    }

    #[test]
    fn encoder_produces_exactly_dims_values() {
        for ways in [4usize, 8, 16] {
            let enc = StateEncoder::new(FeatureSet::full(), ways, 64);
            let v = enc.encode(&view(ways));
            assert_eq!(v.len(), enc.dims());
        }
    }

    #[test]
    fn values_are_bounded() {
        let enc = StateEncoder::new(FeatureSet::full(), 16, 2048);
        for x in enc.encode(&view(16)) {
            assert!((0.0..=1.0).contains(&x), "feature value {x} out of [0,1]");
        }
    }

    #[test]
    fn subset_encoding_selects_only_requested_features() {
        let set = FeatureSet::empty().with(Feature::LinePreuse);
        let enc = StateEncoder::new(set, 8, 64);
        assert_eq!(enc.dims(), 8);
        let v = enc.encode(&view(8));
        let expected: Vec<f32> = (0..8).map(|i| i as f32 / 255.0).collect();
        assert_eq!(v, expected);
    }

    #[test]
    fn offset_bits_are_binary_encoded() {
        let set = FeatureSet::empty().with(Feature::AccessOffset);
        let enc = StateEncoder::new(set, 4, 64);
        let v = enc.encode(&view(4));
        assert_eq!(v, vec![0.0, 1.0, 0.0, 1.0, 0.0, 1.0]); // 0b101010, LSB first
    }

    #[test]
    fn dim_features_aligns_with_layout() {
        let enc = StateEncoder::new(FeatureSet::full(), 16, 2048);
        let map = enc.dim_features();
        assert_eq!(map.len(), 334);
        assert_eq!(map[0], Feature::AccessOffset);
        assert_eq!(map[333], Feature::LineRecency);
    }

    #[test]
    fn pc_extension_adds_dimensions_beyond_table_ii() {
        // 334 + 8 (access PC hash) + 4x16 (line PC hashes) = 406.
        assert_eq!(FeatureSet::full_with_pc().dims(16), 406);
        let enc = StateEncoder::new(FeatureSet::full_with_pc(), 16, 2048);
        let v = enc.encode(&view(16));
        assert_eq!(v.len(), 406);
        for x in v {
            assert!((0.0..=1.0).contains(&x));
        }
    }

    #[test]
    fn never_seen_access_preuse_saturates() {
        let set = FeatureSet::empty().with(Feature::AccessPreuse);
        let enc = StateEncoder::new(set, 4, 64);
        let mut v = view(4);
        v.access_preuse = u64::MAX;
        assert_eq!(enc.encode(&v), vec![1.0]);
    }
}
