//! Scenario test: a trained agent's victims reproduce the paper's §III-B
//! insights on a controlled workload.

use cache_sim::{AccessKind, CacheConfig, LlcRecord, LlcTrace};
use rl::stats::collect_victim_stats;
use rl::{AgentConfig, FeatureSet, Trainer};

/// Hot lines reused constantly + one-shot scan lines + occasional
/// prefetch-tagged lines that are never demanded.
fn insight_trace(len: usize) -> LlcTrace {
    (0..len)
        .map(|i| {
            let i = i as u64;
            match i % 4 {
                0 | 1 => LlcRecord {
                    pc: 0xA00 + (i % 6) * 4,
                    line: i % 6, // hot, reused
                    kind: AccessKind::Load,
                    core: 0,
                },
                2 => LlcRecord {
                    pc: 0xB00,
                    line: 1_000 + i, // one-shot scan
                    kind: AccessKind::Load,
                    core: 0,
                },
                _ => LlcRecord {
                    pc: 0xC00,
                    line: 500_000 + i, // dead prefetch
                    kind: AccessKind::Prefetch,
                    core: 0,
                },
            }
        })
        .collect()
}

#[test]
fn trained_agent_victims_match_paper_insights() {
    let cache = CacheConfig { sets: 2, ways: 4, latency: 1 };
    let trace = insight_trace(8_000);
    let config = AgentConfig {
        hidden: 24,
        seed: 21,
        features: FeatureSet::full(),
        ..AgentConfig::default()
    };
    let mut trainer = Trainer::new(config, &cache);
    for _ in 0..3 {
        let _ = trainer.train_epoch(&trace, &cache);
    }
    let agent = trainer.agent();
    let stats = collect_victim_stats(&trace, &cache, &mut |v| agent.decide_greedy(v));
    assert!(stats.victims > 500, "the trace must force many decisions");

    // Insight 3 (Fig. 6): the overwhelming majority of victims had no hits
    // (hot lines keep hitting; the junk gets evicted).
    let pct = stats.hits_percentages();
    assert!(pct[0] > 50.0, "most victims must be hit-less: {pct:?}");

    // Insight 2 (Fig. 5): prefetched victims die younger than load victims.
    let ages = stats.avg_age_by_kind();
    let (load_age, pf_age) = (ages[0], ages[2]);
    if pf_age > 0.0 && load_age > 0.0 {
        assert!(
            pf_age <= load_age * 1.5,
            "prefetch victims should not be markedly older: pf {pf_age:.1} vs load {load_age:.1}"
        );
    }

    // And the agent must actually protect the hot set: its replay hit rate
    // beats a round-robin chooser's.
    let mut rr_model = rl::LlcModel::new(&cache, &trace);
    let mut turn = 0u16;
    let rr = rr_model.run(&trace, &mut |_| {
        turn = (turn + 1) % 4;
        turn
    });
    let agent_stats = trainer.evaluate(&trace, &cache);
    assert!(
        agent_stats.hits > rr.hits,
        "agent ({}) must beat round-robin ({})",
        agent_stats.hits,
        rr.hits
    );
}
