//! Property-based invariants of the RL substrate: encoder bounds, model
//! accounting, oracle correctness. Runs on the in-tree `simrng::prop`
//! harness.

use cache_sim::{AccessKind, CacheConfig, LlcRecord, LlcTrace};
use rl::{FeatureSet, LlcModel, StateEncoder};
use simrng::prop::{check, Config};
use simrng::{prop_assert, prop_assert_eq, Rng, SimRng};

fn kind_of(tag: u8) -> AccessKind {
    match tag % 4 {
        0 => AccessKind::Load,
        1 => AccessKind::Rfo,
        2 => AccessKind::Prefetch,
        _ => AccessKind::Writeback,
    }
}

fn trace_from(seq: &[(u8, u8)]) -> LlcTrace {
    seq.iter()
        .map(|&(line, tag)| LlcRecord {
            pc: u64::from(tag) * 4 + 0x400,
            line: u64::from(line),
            kind: kind_of(tag),
            core: 0,
        })
        .collect()
}

fn line_tag_seq(rng: &mut SimRng, lines: u8, tags: u8, len: std::ops::Range<usize>) -> Vec<(u8, u8)> {
    let n = rng.gen_range(len);
    (0..n).map(|_| (rng.gen_range(0..lines), rng.gen_range(0..tags))).collect()
}

/// The next-use table matches a naive O(n^2) recomputation.
#[test]
fn next_use_matches_naive() {
    check(
        "next_use_matches_naive",
        Config::with_cases(32),
        |rng| line_tag_seq(rng, 12, 8, 1..120),
        |seq| {
            let trace = trace_from(seq);
            let fast = trace.next_use_table();
            for (i, record) in trace.records().iter().enumerate() {
                let naive = trace.records()[i + 1..]
                    .iter()
                    .position(|r| r.line == record.line)
                    .map_or(u64::MAX, |k| (i + 1 + k) as u64);
                prop_assert_eq!(fast[i], naive, "mismatch at {i}: fast {} naive {naive}", fast[i]);
            }
            Ok(())
        },
    );
}

/// Every encoded state vector stays within [0, 1] and has the declared
/// dimensionality, regardless of the model state that produced it.
#[test]
fn encoded_states_are_bounded() {
    check(
        "encoded_states_are_bounded",
        Config::with_cases(32),
        |rng| line_tag_seq(rng, 32, 8, 20..300),
        |seq| {
            let geometry = CacheConfig { sets: 2, ways: 4, latency: 1 };
            let trace = trace_from(seq);
            let mut model = LlcModel::new(&geometry, &trace);
            let encoder = StateEncoder::new(FeatureSet::full(), 4, geometry.sets);
            let mut checked = 0usize;
            for record in trace.records() {
                let enc = &encoder;
                let mut local_checked = 0usize;
                let _ = model.step(record, &mut |view| {
                    let state = enc.encode(view);
                    assert_eq!(state.len(), enc.dims());
                    for &v in &state {
                        assert!((0.0..=1.0).contains(&v), "feature {v} out of range");
                    }
                    local_checked += 1;
                    0
                });
                checked += local_checked;
            }
            // With 32 possible lines over an 8-line cache, decisions must occur.
            prop_assert!(checked > 0 || seq.len() < 9);
            Ok(())
        },
    );
}

/// Model statistics are internally consistent and Belady dominates any
/// fixed-way chooser on the same trace.
#[test]
fn model_accounting_and_belady_dominance() {
    check(
        "model_accounting_and_belady_dominance",
        Config::with_cases(32),
        |rng| (line_tag_seq(rng, 16, 4, 50..400), rng.gen_range(0..4u16)),
        |(seq, fixed_way)| {
            let fixed_way = *fixed_way;
            let geometry = CacheConfig { sets: 2, ways: 4, latency: 1 };
            let trace = trace_from(seq);

            let mut fixed = LlcModel::new(&geometry, &trace);
            let fixed_stats = fixed.run(&trace, &mut |_| fixed_way);
            prop_assert_eq!(fixed_stats.accesses, seq.len() as u64);
            prop_assert!(fixed_stats.hits <= fixed_stats.accesses);
            prop_assert!(fixed_stats.demand_hits <= fixed_stats.demand_accesses);

            let mut opt = LlcModel::new(&geometry, &trace);
            let opt_stats = opt.run_belady(&trace);
            prop_assert!(
                opt_stats.hits >= fixed_stats.hits,
                "Belady ({}) < fixed-way ({})",
                opt_stats.hits,
                fixed_stats.hits
            );
            Ok(())
        },
    );
}
