//! Epoch-granular checkpoint/resume must be invisible to training: a run
//! interrupted after any epoch and restored from its checkpoint produces
//! bit-identical networks, RNG streams, and replay contents.

use cache_sim::{AccessKind, CacheConfig, LlcRecord, LlcTrace};
use rl::{AgentConfig, FeatureSet, Trainer};

fn thrash_trace(lines: u64, len: usize) -> LlcTrace {
    (0..len)
        .map(|i| LlcRecord {
            pc: 0x400 + (i as u64 % lines) * 4,
            line: i as u64 % lines,
            kind: AccessKind::Load,
            core: 0,
        })
        .collect()
}

fn small_cache() -> CacheConfig {
    CacheConfig { sets: 2, ways: 4, latency: 1 }
}

fn checkpoint_bytes(trainer: &Trainer, epoch: u64) -> Vec<u8> {
    let mut buf = Vec::new();
    trainer.save_checkpoint(&mut buf, epoch).expect("in-memory save");
    buf
}

#[test]
fn resumed_training_is_bit_identical_to_uninterrupted() {
    let cache = small_cache();
    let trace = thrash_trace(12, 3000);
    let config = AgentConfig::small(FeatureSet::full(), 21);
    const EPOCHS: usize = 4;
    const CUT: usize = 2;

    // Uninterrupted reference run.
    let mut straight = Trainer::new(config, &cache);
    for _ in 0..EPOCHS {
        let _ = straight.train_epoch(&trace, &cache);
    }

    // Interrupted run: train CUT epochs, checkpoint, "crash", restore,
    // finish the remaining epochs from the checkpoint.
    let mut first_half = Trainer::new(config, &cache);
    for _ in 0..CUT {
        let _ = first_half.train_epoch(&trace, &cache);
    }
    let ck = checkpoint_bytes(&first_half, CUT as u64);
    drop(first_half);
    let (mut resumed, done) = Trainer::load_checkpoint(ck.as_slice(), &cache).expect("restore");
    assert_eq!(done, CUT as u64);
    for _ in done as usize..EPOCHS {
        let _ = resumed.train_epoch(&trace, &cache);
    }

    // Byte-level equality of the full training state (weights, momentum,
    // target net, RNG streams, replay buffer) — not just similar metrics.
    assert_eq!(
        checkpoint_bytes(&straight, EPOCHS as u64),
        checkpoint_bytes(&resumed, EPOCHS as u64),
        "resumed training state must be bit-identical to the uninterrupted run"
    );
    assert_eq!(straight.evaluate(&trace, &cache), resumed.evaluate(&trace, &cache));
}

#[test]
fn checkpoint_with_target_network_roundtrips() {
    let cache = small_cache();
    let trace = thrash_trace(10, 1500);
    let mut config = AgentConfig::small(FeatureSet::full(), 5);
    config.target_sync = 64;

    let mut straight = Trainer::new(config, &cache);
    let mut interrupted = Trainer::new(config, &cache);
    let _ = straight.train_epoch(&trace, &cache);
    let _ = interrupted.train_epoch(&trace, &cache);
    let ck = checkpoint_bytes(&interrupted, 1);
    let (mut resumed, _) = Trainer::load_checkpoint(ck.as_slice(), &cache).expect("restore");

    let _ = straight.train_epoch(&trace, &cache);
    let _ = resumed.train_epoch(&trace, &cache);
    assert_eq!(checkpoint_bytes(&straight, 2), checkpoint_bytes(&resumed, 2));
}

#[test]
fn corrupt_or_mismatched_checkpoints_are_rejected() {
    let cache = small_cache();
    let trace = thrash_trace(8, 500);
    let mut trainer = Trainer::new(AgentConfig::small(FeatureSet::full(), 3), &cache);
    let _ = trainer.train_epoch(&trace, &cache);
    let ck = checkpoint_bytes(&trainer, 1);

    // Truncation anywhere must fail cleanly, never panic or mis-restore.
    for cut in [0, 3, 10, ck.len() / 2, ck.len() - 1] {
        assert!(Trainer::load_checkpoint(&ck[..cut], &cache).is_err(), "cut at {cut}");
    }
    // Bad magic.
    let mut bad = ck.clone();
    bad[0] = b'X';
    assert!(Trainer::load_checkpoint(bad.as_slice(), &cache).is_err());
    // A different cache geometry must be refused, not silently adopted.
    let other = CacheConfig { sets: 4, ways: 8, latency: 1 };
    assert!(Trainer::load_checkpoint(ck.as_slice(), &other).is_err());
}
