//! # tenancy — the multi-tenant shared-LLC serving tier
//!
//! N tenants of different priority classes share one LLC. This crate
//! layers tenant identity, isolation, and QoS accounting over the packed
//! [`cache_sim::SetAssocCache`]:
//!
//! * [`TenantPolicy`] — RLR's victim key extended with per-tenant state,
//!   under one of three [`IsolationMode`]s: `Shared` (free-for-all),
//!   `WayPartition` (per-tenant way masks enforced by the cache's fill
//!   mask and the masked victim scan `rlr::scan::scan_masked`), and
//!   `LearnedPriority` (a derived per-tenant priority table riding the
//!   scan's packed core-rank path).
//! * [`MultiTenantLlc`] — the serving wrapper: tags every line with its
//!   owning tenant, maintains per-tenant occupancy/hit/miss counters and
//!   exact p50/p99 miss-latency histograms fed by the event timing
//!   model's DRAM layer.
//! * [`partition_by_weight`] — contiguous way slices proportional to
//!   priority-class weights.
//!
//! The experiment harness (`experiments::tenancy`) runs tenant mixes
//! through this crate in every mode and derives the learned priority
//! table offline; `rlr tenancy run|compare|derive` is the CLI entry.

mod llc;
mod policy;

pub use llc::{LatencyHist, MultiTenantLlc, TenantQos};
pub use policy::{partition_by_weight, IsolationMode, TenantPolicy, MAX_PRIORITY, MAX_TENANTS};
