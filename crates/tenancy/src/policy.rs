//! The tenant-aware replacement policy behind [`crate::MultiTenantLlc`].
//!
//! [`TenantPolicy`] is RLR's victim key — `P = 8·P_age + P_type + P_hit`
//! with exact-recency tie-breaking and the dynamically estimated reuse
//! distance — extended for a serving tier where up to [`MAX_TENANTS`]
//! tenants share one LLC. The tenant id rides in [`Access::core`] (the
//! cache already tags every line with its last toucher there), and the
//! [`IsolationMode`] decides what the victim scan does with it:
//!
//! * [`IsolationMode::Shared`] — the id is ignored; plain RLR over the
//!   whole set.
//! * [`IsolationMode::WayPartition`] — each tenant owns a way mask;
//!   fills are confined to it via [`ReplacementPolicy::fill_mask`] and the
//!   victim scan runs the masked lane kernel ([`rlr::scan::scan_masked`])
//!   over the tenant's slice only, so no tenant can evict outside its
//!   partition.
//! * [`IsolationMode::LearnedPriority`] — the per-tenant priority table
//!   (derived offline by the weight-analysis loop in
//!   `experiments::tenancy`) feeds the scan's packed core-rank path: a
//!   tenant's rank is added to every one of its lines' priorities, exactly
//!   like the paper's `P_core` but with learned levels instead of
//!   demand-hit ranks.

use cache_sim::{Access, AccessKind, CacheConfig, Decision, LineSnapshot, ReplacementPolicy};
use rlr::packed::LineMeta;
use rlr::scan::{self, ScanParams, ScanWays};

/// Most tenants one LLC serves: the scan's packed rank path covers 8
/// cores, and tenant ids share that plumbing.
pub const MAX_TENANTS: usize = 8;

/// Saturation bound of the per-line age counter (5-bit, the unoptimized
/// RLR age so partitions as narrow as 2 ways still resolve ages).
const MAX_AGE: u64 = 31;
/// Weight of the age term in the victim key.
const AGE_WEIGHT: u32 = 8;
/// Demand hits per RD-estimator window.
const DEMAND_HIT_WINDOW: u32 = 32;
/// RD = `RD_MULTIPLIER ×` average preuse distance.
const RD_MULTIPLIER: f64 = 2.0;
/// Accesses tolerated without an RD update before the estimate resets.
const RD_STALE_LIMIT: u64 = 2048;
/// Largest learned priority level (fits the scan's packed one-byte ranks
/// and keeps the summed priority far below the key's 10-bit field).
pub const MAX_PRIORITY: u32 = 255;

/// How the shared LLC isolates its tenants.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum IsolationMode {
    /// Free-for-all: tenant ids are recorded but never influence victim
    /// selection.
    Shared,
    /// Hard isolation: tenant `t` may fill (and evict) only inside way
    /// mask `masks[t]`. Masks may overlap — overlapping ways are shared
    /// capacity.
    WayPartition(Vec<u32>),
    /// Soft isolation: tenant `t`'s lines gain `ranks[t]` priority in the
    /// victim scan, so low-rank tenants' lines are evicted first.
    LearnedPriority(Vec<u32>),
}

impl IsolationMode {
    /// Short mode name used in reports and checkpoint keys.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            Self::Shared => "shared",
            Self::WayPartition(_) => "way-partition",
            Self::LearnedPriority(_) => "learned-priority",
        }
    }
}

/// Splits `ways` into contiguous per-tenant slices proportional to
/// `weights` (every tenant gets at least one way; remainders go to the
/// heaviest tenants first). Returns one mask per tenant.
///
/// # Panics
///
/// Panics on zero tenants, more tenants than ways, or zero total weight.
#[must_use]
pub fn partition_by_weight(ways: u16, weights: &[u32]) -> Vec<u32> {
    let n = weights.len();
    assert!(n > 0, "no tenants to partition for");
    assert!(n <= usize::from(ways), "more tenants than ways");
    let total: u64 = weights.iter().map(|&w| u64::from(w)).sum();
    assert!(total > 0, "all tenant weights are zero");
    // Ideal share, floored, with one way guaranteed each.
    let mut counts: Vec<u64> =
        weights.iter().map(|&w| (u64::from(ways) * u64::from(w) / total).max(1)).collect();
    // Trim/award until the counts sum to exactly `ways`, adjusting the
    // heaviest tenants first (deterministic: index breaks ties).
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&i| (std::cmp::Reverse(weights[i]), i));
    loop {
        let sum: u64 = counts.iter().sum();
        match sum.cmp(&u64::from(ways)) {
            std::cmp::Ordering::Equal => break,
            std::cmp::Ordering::Less => {
                let i = order.iter().copied().find(|&i| counts[i] < u64::from(ways)).unwrap();
                counts[i] += 1;
            }
            std::cmp::Ordering::Greater => {
                let i = order.iter().rev().copied().find(|&i| counts[i] > 1).expect("trimmable");
                counts[i] -= 1;
            }
        }
    }
    let mut masks = Vec::with_capacity(n);
    let mut base = 0u32;
    for &c in &counts {
        let c = c as u32;
        let mask = if c >= 32 { u32::MAX } else { ((1u32 << c) - 1) << base };
        masks.push(mask);
        base += c;
    }
    masks
}

/// The tenant-aware RLR policy. See the [module docs](self) for the three
/// isolation modes.
#[derive(Clone, Debug)]
pub struct TenantPolicy {
    mode: IsolationMode,
    ways: u16,
    tenants: u8,
    /// Per-set access clock (ages count set accesses; exact recency).
    access_clock: Vec<u64>,
    /// Per-line: access-clock stamp at last touch.
    access_stamp: Vec<u64>,
    /// Per-line: packed hit/type metadata.
    meta: Vec<LineMeta>,
    /// Per-line: owning tenant (inserted or last touched), the scan's
    /// `cores` input.
    line_tenant: Vec<u8>,
    /// Predicted reuse distance (set accesses).
    rd: u64,
    preuse_accum: u64,
    window_hits: u32,
    accesses_since_rd_update: u64,
    /// Per-tenant priority levels (LearnedPriority), else empty.
    tenant_rank: Vec<u32>,
    /// Per-tenant fill masks (WayPartition), else empty.
    fill_masks: Vec<u32>,
}

impl TenantPolicy {
    /// Creates the policy for `tenants` tenants over `cache`'s geometry.
    ///
    /// # Panics
    ///
    /// Panics when the tenant count exceeds [`MAX_TENANTS`], when a mode
    /// vector's length disagrees with the tenant count, when a partition
    /// mask is empty or reaches outside the set, or when a learned
    /// priority exceeds [`MAX_PRIORITY`].
    pub fn new(cache: &CacheConfig, tenants: u8, mode: IsolationMode) -> Self {
        assert!(tenants >= 1, "at least one tenant");
        assert!(usize::from(tenants) <= MAX_TENANTS, "at most {MAX_TENANTS} tenants");
        let ways_bits: u32 = if usize::from(cache.ways) >= 32 {
            u32::MAX
        } else {
            (1u32 << cache.ways) - 1
        };
        let (tenant_rank, fill_masks) = match &mode {
            IsolationMode::Shared => (Vec::new(), Vec::new()),
            IsolationMode::WayPartition(masks) => {
                assert_eq!(masks.len(), usize::from(tenants), "one mask per tenant");
                for (t, &m) in masks.iter().enumerate() {
                    assert!(m & ways_bits != 0, "tenant {t} has an empty way mask");
                    assert!(m & !ways_bits == 0, "tenant {t}'s mask reaches outside the set");
                }
                (Vec::new(), masks.clone())
            }
            IsolationMode::LearnedPriority(ranks) => {
                assert_eq!(ranks.len(), usize::from(tenants), "one rank per tenant");
                for (t, &r) in ranks.iter().enumerate() {
                    assert!(r <= MAX_PRIORITY, "tenant {t}'s priority {r} exceeds {MAX_PRIORITY}");
                }
                (ranks.clone(), Vec::new())
            }
        };
        let lines = cache.lines() as usize;
        Self {
            mode,
            ways: cache.ways,
            tenants,
            access_clock: vec![0; cache.sets as usize],
            access_stamp: vec![0; lines],
            meta: vec![LineMeta::default(); lines],
            line_tenant: vec![0; lines],
            // Fully protective until the estimator has seen real reuse.
            rd: MAX_AGE,
            preuse_accum: 0,
            window_hits: 0,
            accesses_since_rd_update: 0,
            tenant_rank,
            fill_masks,
        }
    }

    /// The active isolation mode.
    pub fn mode(&self) -> &IsolationMode {
        &self.mode
    }

    /// The current predicted reuse distance (set accesses).
    pub fn predicted_reuse_distance(&self) -> u64 {
        self.rd
    }

    fn idx(&self, set: u32, way: u16) -> usize {
        set as usize * usize::from(self.ways) + usize::from(way)
    }

    fn tenant_of(&self, access: &Access) -> usize {
        let t = usize::from(access.core);
        assert!(t < usize::from(self.tenants), "access from unknown tenant {t}");
        t
    }

    fn record_access(&mut self) {
        self.accesses_since_rd_update += 1;
        if self.accesses_since_rd_update > RD_STALE_LIMIT {
            self.rd = MAX_AGE;
            self.accesses_since_rd_update = 0;
        }
    }
}

impl ReplacementPolicy for TenantPolicy {
    fn name(&self) -> String {
        format!("Tenant[{}]", self.mode.name())
    }

    fn on_miss(&mut self, set: u32, _access: &Access) {
        self.access_clock[set as usize] += 1;
        self.record_access();
    }

    fn uses_line_snapshots(&self) -> bool {
        // Like RLR, every scan input lives in the policy's own tables.
        false
    }

    fn fill_mask(&self, access: &Access) -> u32 {
        match &self.mode {
            IsolationMode::WayPartition(_) => self.fill_masks[self.tenant_of(access)],
            _ => u32::MAX,
        }
    }

    fn select_victim(&mut self, set: u32, _lines: &[LineSnapshot], access: &Access) -> Decision {
        let ways = usize::from(self.ways);
        let base = self.idx(set, 0);
        let clock = self.access_clock[set as usize];
        let params = ScanParams {
            now: clock,
            clock,
            rd: self.rd,
            max_age: MAX_AGE,
            age_weight: AGE_WEIGHT,
            use_type: true,
            use_hit: true,
            exact_recency: true,
        };
        let stamps = &self.access_stamp[base..base + ways];
        let scan_ways = ScanWays {
            age_stamps: stamps,
            rec_stamps: stamps,
            metas: &self.meta[base..base + ways],
            cores: &self.line_tenant[base..base + ways],
            core_rank: &self.tenant_rank,
        };
        let outcome = match &self.mode {
            // The masked kernel can only name a way inside the tenant's
            // slice, and the cache filled every invalid slice way before
            // consulting us, so the scanned metadata is always live.
            IsolationMode::WayPartition(_) => {
                scan::scan_masked(&params, &scan_ways, self.fill_masks[self.tenant_of(access)])
            }
            _ => scan::scan(&params, &scan_ways),
        };
        Decision::Evict(outcome.victim())
    }

    fn on_hit(&mut self, set: u32, way: u16, access: &Access) {
        let i = self.idx(set, way);
        // Preuse distance: the line's age at the moment of the hit.
        let preuse = (self.access_clock[set as usize] - self.access_stamp[i]).min(MAX_AGE);
        self.access_clock[set as usize] += 1;
        self.record_access();
        if access.kind.is_demand() {
            if self.meta[i].last_demand() {
                self.preuse_accum += preuse;
                self.window_hits += 1;
            }
            if self.window_hits == DEMAND_HIT_WINDOW {
                let avg = self.preuse_accum as f64 / f64::from(DEMAND_HIT_WINDOW);
                self.rd = (avg * RD_MULTIPLIER).round() as u64;
                self.preuse_accum = 0;
                self.window_hits = 0;
                self.accesses_since_rd_update = 0;
            }
        }
        let meta = &mut self.meta[i];
        meta.set_hit_count((meta.hit_count() + 1).min(LineMeta::HIT_MASK));
        meta.set_access_type(access.kind == AccessKind::Prefetch, access.kind.is_demand());
        self.line_tenant[i] = access.core;
        self.access_stamp[i] = self.access_clock[set as usize];
    }

    fn on_fill(&mut self, set: u32, way: u16, access: &Access) {
        let i = self.idx(set, way);
        self.meta[i] =
            LineMeta::filled(access.kind == AccessKind::Prefetch, access.kind.is_demand());
        self.line_tenant[i] = access.core;
        self.access_stamp[i] = self.access_clock[set as usize];
    }

    fn overhead_bits(&self, config: &CacheConfig) -> u64 {
        // 5-bit age + 1-bit hit + 1-bit type + exact recency + 3-bit
        // tenant tag per line, plus the per-tenant tables.
        let per_line = 5 + 1 + 1 + u64::from(config.way_bits()) + 3;
        let per_tenant = match &self.mode {
            IsolationMode::Shared => 0,
            IsolationMode::WayPartition(_) => u64::from(config.ways), // one mask bit per way
            IsolationMode::LearnedPriority(_) => 8,                   // one rank byte
        };
        config.lines() * per_line + u64::from(self.tenants) * per_tenant
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> CacheConfig {
        CacheConfig { sets: 4, ways: 8, latency: 26 }
    }

    fn access(tenant: u8, addr: u64) -> Access {
        Access { pc: 0x400, addr, kind: AccessKind::Load, core: tenant, seq: 0 }
    }

    #[test]
    fn partition_by_weight_covers_every_way_exactly_once_for_disjoint_slices() {
        let masks = partition_by_weight(8, &[4, 2, 1]);
        assert_eq!(masks.len(), 3);
        let union = masks.iter().fold(0u32, |u, &m| u | m);
        let sum: u32 = masks.iter().map(|m| m.count_ones()).sum();
        assert_eq!(union, 0xFF, "slices cover the set");
        assert_eq!(sum, 8, "slices are disjoint");
        assert!(masks[0].count_ones() >= masks[1].count_ones());
        assert!(masks[1].count_ones() >= masks[2].count_ones());
    }

    #[test]
    fn partition_by_weight_guarantees_a_way_per_tenant() {
        let masks = partition_by_weight(4, &[100, 1, 1, 1]);
        assert!(masks.iter().all(|m| m.count_ones() >= 1));
        assert_eq!(masks.iter().map(|m| m.count_ones()).sum::<u32>(), 4);
    }

    #[test]
    fn way_partition_fill_mask_follows_the_tenant() {
        let masks = partition_by_weight(8, &[1, 1]);
        let p = TenantPolicy::new(&cfg(), 2, IsolationMode::WayPartition(masks.clone()));
        assert_eq!(p.fill_mask(&access(0, 0)), masks[0]);
        assert_eq!(p.fill_mask(&access(1, 0)), masks[1]);
    }

    #[test]
    fn shared_and_learned_modes_leave_fills_unconstrained() {
        let p = TenantPolicy::new(&cfg(), 2, IsolationMode::Shared);
        assert_eq!(p.fill_mask(&access(1, 0)), u32::MAX);
        let q = TenantPolicy::new(&cfg(), 2, IsolationMode::LearnedPriority(vec![2, 0]));
        assert_eq!(q.fill_mask(&access(0, 0)), u32::MAX);
    }

    #[test]
    fn learned_priority_protects_high_rank_tenants_lines() {
        let mut p = TenantPolicy::new(&cfg(), 2, IsolationMode::LearnedPriority(vec![2, 0]));
        // Fill the set alternating tenants; all else equal, a rank-0
        // tenant's line must be the victim.
        for w in 0..8u16 {
            p.on_miss(0, &access((w % 2) as u8, 0));
            p.on_fill(0, w, &access((w % 2) as u8, 0));
        }
        match p.select_victim(0, &[], &access(0, 0)) {
            Decision::Evict(w) => assert_eq!(w % 2, 1, "rank-0 tenant's line goes first"),
            Decision::Bypass => panic!("tenancy policy never bypasses"),
        }
    }

    #[test]
    fn way_partition_victims_stay_inside_the_mask() {
        let masks = vec![0b0000_1111u32, 0b1111_0000];
        let mut p = TenantPolicy::new(&cfg(), 2, IsolationMode::WayPartition(masks));
        for w in 0..8u16 {
            let t = u8::from(w >= 4);
            p.on_miss(0, &access(t, 0));
            p.on_fill(0, w, &access(t, 0));
        }
        for _ in 0..32 {
            match p.select_victim(0, &[], &access(1, 0)) {
                Decision::Evict(w) => assert!(w >= 4, "tenant 1 evicted way {w} of tenant 0"),
                Decision::Bypass => panic!("tenancy policy never bypasses"),
            }
            p.on_miss(0, &access(1, 0));
        }
    }

    #[test]
    #[should_panic(expected = "empty way mask")]
    fn empty_partition_mask_is_rejected() {
        TenantPolicy::new(&cfg(), 2, IsolationMode::WayPartition(vec![0xF, 0]));
    }

    #[test]
    #[should_panic(expected = "outside the set")]
    fn oversized_partition_mask_is_rejected() {
        TenantPolicy::new(&cfg(), 1, IsolationMode::WayPartition(vec![0x1FF]));
    }
}
