//! The multi-tenant LLC: a packed [`SetAssocCache`] driven per tenant,
//! with per-tenant occupancy, hit/miss, and miss-latency accounting.
//!
//! Miss latencies come from the event timing model's DRAM layer
//! ([`DramTiming`]): every miss is queued at its bank with the current
//! arrival tick, so a tenant that saturates the banks inflates its
//! neighbours' p99 — exactly the contention a QoS report must surface.
//! Row hit/miss classification stays with the functional [`DramModel`],
//! mirroring how `cache_sim::event` splits the two.

use cache_sim::{
    Access, AccessKind, AccessOutcome, CacheConfig, DramModel, DramTiming, SetAssocCache,
    SystemConfig,
};

use crate::policy::{IsolationMode, TenantPolicy, MAX_TENANTS};

/// Ticks the LLC's clock advances per access — the arrival cadence of the
/// serving tier's request stream at the memory controller.
const TICKS_PER_ACCESS: u64 = 4;

/// Miss latencies at or above this many ticks share the top histogram
/// bucket (far above any DRAM round-trip the timing model produces).
const HIST_BUCKETS: usize = 4096;

/// An exact integer latency histogram: one bucket per tick value, so any
/// percentile is reconstructed without sampling error.
#[derive(Clone, Debug, Default)]
pub struct LatencyHist {
    buckets: Vec<u64>,
    count: u64,
    total: u64,
}

impl LatencyHist {
    fn record(&mut self, ticks: u64) {
        if self.buckets.is_empty() {
            self.buckets = vec![0; HIST_BUCKETS];
        }
        let b = (ticks as usize).min(HIST_BUCKETS - 1);
        self.buckets[b] += 1;
        self.count += 1;
        self.total += ticks;
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all recorded latencies, in ticks (exact — the checkpoint
    /// codec stores this rather than the floating-point mean).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Mean latency in ticks (0 with no samples).
    pub fn mean(&self) -> f64 {
        if self.count == 0 { 0.0 } else { self.total as f64 / self.count as f64 }
    }

    /// The smallest latency `l` such that at least `p` (0..=1) of all
    /// samples are ≤ `l`. Returns 0 with no samples.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((p * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0;
        for (lat, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return lat as u64;
            }
        }
        (HIST_BUCKETS - 1) as u64
    }
}

/// Per-tenant QoS counters maintained by [`MultiTenantLlc`].
#[derive(Clone, Debug, Default)]
pub struct TenantQos {
    /// All LLC accesses issued by the tenant.
    pub accesses: u64,
    /// Accesses that hit.
    pub hits: u64,
    /// Demand (load/RFO) accesses.
    pub demand_accesses: u64,
    /// Demand accesses that hit.
    pub demand_hits: u64,
    /// Lines the tenant currently owns.
    pub occupancy: u64,
    /// Most lines the tenant ever owned at once.
    pub peak_occupancy: u64,
    /// Miss-latency distribution (DRAM round-trips, in timing ticks).
    pub miss_latency: LatencyHist,
}

impl TenantQos {
    /// Demand miss rate in 0..=1 (0 with no demand traffic).
    pub fn demand_miss_rate(&self) -> f64 {
        if self.demand_accesses == 0 {
            0.0
        } else {
            1.0 - self.demand_hits as f64 / self.demand_accesses as f64
        }
    }
}

/// A shared LLC serving up to [`MAX_TENANTS`] tenants under one
/// [`IsolationMode`], with per-tenant QoS accounting.
///
/// ```
/// use cache_sim::{AccessKind, SystemConfig};
/// use tenancy::{IsolationMode, MultiTenantLlc};
///
/// let mut cfg = SystemConfig::paper_single_core();
/// cfg.llc = cache_sim::CacheConfig { sets: 64, ways: 8, latency: 26 };
/// let mut llc = MultiTenantLlc::new(&cfg, 2, IsolationMode::Shared);
/// llc.access(0, 0x400, 0x1000, AccessKind::Load);
/// llc.access(1, 0x400, 0x2000, AccessKind::Load);
/// assert_eq!(llc.qos(0).accesses, 1);
/// ```
pub struct MultiTenantLlc {
    cache: SetAssocCache<TenantPolicy>,
    config: CacheConfig,
    tenants: u8,
    /// Per line slot: owning tenant + 1, 0 when the slot is empty. The
    /// mirror the occupancy counters are maintained from.
    owner: Vec<u8>,
    qos: Vec<TenantQos>,
    dram_model: DramModel,
    dram_timing: DramTiming,
    /// Current arrival tick.
    now: u64,
    seq: u64,
}

impl MultiTenantLlc {
    /// Creates the LLC over `config.llc` for `tenants` tenants.
    ///
    /// # Panics
    ///
    /// Panics on invalid tenant counts or mode tables (see
    /// [`TenantPolicy::new`]).
    pub fn new(config: &SystemConfig, tenants: u8, mode: IsolationMode) -> Self {
        assert!(usize::from(tenants) <= MAX_TENANTS);
        let llc = config.llc;
        let policy = TenantPolicy::new(&llc, tenants, mode);
        Self {
            cache: SetAssocCache::new("MT-LLC", llc, policy),
            config: llc,
            tenants,
            owner: vec![0; llc.lines() as usize],
            qos: vec![TenantQos::default(); usize::from(tenants)],
            dram_model: DramModel::new(8, 128),
            dram_timing: DramTiming::new(config),
            now: 0,
            seq: 0,
        }
    }

    /// Number of tenants.
    pub fn tenants(&self) -> u8 {
        self.tenants
    }

    /// The LLC geometry.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// The active isolation mode.
    pub fn mode(&self) -> &IsolationMode {
        self.cache.policy().mode()
    }

    /// QoS counters for one tenant.
    pub fn qos(&self, tenant: u8) -> &TenantQos {
        &self.qos[usize::from(tenant)]
    }

    /// QoS counters for every tenant.
    pub fn qos_all(&self) -> &[TenantQos] {
        &self.qos
    }

    /// The owning tenant of each way in `set` (`None` = empty slot) — the
    /// property walls cross-check per-set occupancy against way masks with
    /// this.
    pub fn set_owners(&self, set: u32) -> Vec<Option<u8>> {
        let base = set as usize * usize::from(self.config.ways);
        (0..usize::from(self.config.ways))
            .map(|w| {
                let o = self.owner[base + w];
                (o != 0).then(|| o - 1)
            })
            .collect()
    }

    /// Aggregate demand miss rate weighted per tenant — the serving tier's
    /// SLO headline. `weights[t]` scales tenant `t`'s demand miss rate.
    ///
    /// # Panics
    ///
    /// Panics when `weights` does not cover every tenant.
    pub fn weighted_demand_miss_rate(&self, weights: &[u32]) -> f64 {
        assert_eq!(weights.len(), usize::from(self.tenants));
        let total: f64 = weights.iter().map(|&w| f64::from(w)).sum();
        assert!(total > 0.0, "all weights are zero");
        self.qos
            .iter()
            .zip(weights)
            .map(|(q, &w)| f64::from(w) * q.demand_miss_rate())
            .sum::<f64>()
            / total
    }

    /// Serves one access for `tenant`. The tenant id rides in
    /// [`Access::core`]; isolation is whatever the policy's mode dictates.
    ///
    /// # Panics
    ///
    /// Panics on a tenant id at or above [`MultiTenantLlc::tenants`].
    pub fn access(&mut self, tenant: u8, pc: u64, addr: u64, kind: AccessKind) -> AccessOutcome {
        assert!(tenant < self.tenants, "unknown tenant {tenant}");
        self.seq += 1;
        let access = Access { pc, addr, kind, core: tenant, seq: self.seq };
        let out = self.cache.access(&access);

        let line = addr >> 6;
        let set = self.config.set_of(addr) as usize;
        let q = &mut self.qos[usize::from(tenant)];
        q.accesses += 1;
        if kind.is_demand() {
            q.demand_accesses += 1;
        }
        if out.hit {
            q.hits += 1;
            if kind.is_demand() {
                q.demand_hits += 1;
            }
        } else if !out.bypassed {
            // Model the DRAM round-trip the miss pays: bank queueing from
            // the shared timing model plus the row hit/miss service time.
            // The requester then *blocks* until the line returns (closed
            // loop, like the event model's dependent loads) — without
            // that back-pressure an open-loop arrival cadence outruns the
            // banks and every queue grows without bound, saturating the
            // histogram instead of measuring contention.
            let row_hit = self.dram_model.access(line);
            let done = self.dram_timing.request(line, self.now, row_hit);
            q.miss_latency.record(done - self.now);
            self.now = done;
        }

        // Maintain the ownership mirror from the outcome: a fill (and a
        // hit, whose tag-store core field the cache rewrites) hands the
        // slot to `tenant`.
        if let Some(w) = out.way {
            let idx = set * usize::from(self.config.ways) + usize::from(w);
            let prev = self.owner[idx];
            if prev != tenant + 1 {
                if prev != 0 {
                    self.qos[usize::from(prev - 1)].occupancy -= 1;
                }
                let q = &mut self.qos[usize::from(tenant)];
                q.occupancy += 1;
                q.peak_occupancy = q.peak_occupancy.max(q.occupancy);
                self.owner[idx] = tenant + 1;
            }
        }

        self.now += TICKS_PER_ACCESS;
        out
    }

    /// The policy, e.g. to read the predicted reuse distance.
    pub fn policy(&self) -> &TenantPolicy {
        self.cache.policy()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::partition_by_weight;

    fn system(sets: u32, ways: u16) -> SystemConfig {
        let mut cfg = SystemConfig::paper_single_core();
        cfg.llc = CacheConfig { sets, ways, latency: 26 };
        cfg
    }

    #[test]
    fn occupancy_mirror_balances_across_tenants() {
        let cfg = system(16, 4);
        let mut llc = MultiTenantLlc::new(&cfg, 2, IsolationMode::Shared);
        for i in 0..200u64 {
            llc.access((i % 2) as u8, 0x400, i * 64, AccessKind::Load);
        }
        let total: u64 = llc.qos_all().iter().map(|q| q.occupancy).sum();
        assert_eq!(total, 64, "every slot is owned once the cache is warm");
        for set in 0..16 {
            let owners = llc.set_owners(set);
            assert!(owners.iter().all(Option::is_some));
        }
    }

    #[test]
    fn way_partition_caps_per_set_occupancy() {
        let cfg = system(8, 8);
        let masks = partition_by_weight(8, &[1, 1]);
        let mut llc = MultiTenantLlc::new(&cfg, 2, IsolationMode::WayPartition(masks.clone()));
        for i in 0..4000u64 {
            llc.access((i % 2) as u8, 0x400, i * 64, AccessKind::Load);
        }
        for set in 0..8 {
            let owners = llc.set_owners(set);
            for t in 0..2u8 {
                let held = owners.iter().filter(|&&o| o == Some(t)).count() as u32;
                assert!(
                    held <= masks[usize::from(t)].count_ones(),
                    "tenant {t} holds {held} ways in set {set}, mask allows {}",
                    masks[usize::from(t)].count_ones()
                );
            }
        }
    }

    #[test]
    fn miss_latencies_are_recorded_with_exact_percentiles() {
        let cfg = system(16, 4);
        let mut llc = MultiTenantLlc::new(&cfg, 1, IsolationMode::Shared);
        for i in 0..500u64 {
            llc.access(0, 0x400, i * 64 * 17, AccessKind::Load);
        }
        let q = llc.qos(0);
        assert_eq!(q.miss_latency.count(), q.accesses - q.hits);
        let p50 = q.miss_latency.percentile(0.50);
        let p99 = q.miss_latency.percentile(0.99);
        assert!(p50 > 0, "DRAM round-trips take time");
        assert!(p99 >= p50);
        assert!(q.miss_latency.mean() > 0.0);
    }

    #[test]
    fn hist_percentiles_are_exact_on_known_data() {
        let mut h = LatencyHist::default();
        for v in 1..=100u64 {
            h.record(v);
        }
        assert_eq!(h.percentile(0.50), 50);
        assert_eq!(h.percentile(0.99), 99);
        assert_eq!(h.percentile(1.0), 100);
        assert_eq!(h.count(), 100);
    }

    #[test]
    #[should_panic(expected = "unknown tenant")]
    fn out_of_range_tenant_is_rejected() {
        let cfg = system(8, 4);
        let mut llc = MultiTenantLlc::new(&cfg, 2, IsolationMode::Shared);
        llc.access(2, 0, 0, AccessKind::Load);
    }
}
