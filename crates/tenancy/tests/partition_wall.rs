//! The partition wall: randomized properties pinning the two guarantees
//! way-partitioned tenancy rests on.
//!
//! 1. The masked victim scan ([`rlr::scan::scan_masked`]) agrees with the
//!    one-accumulator scalar reference bit-for-bit on arbitrary sets and
//!    masks, never names a victim outside the mask, and degenerates to
//!    the unmasked scan when the mask covers every way.
//! 2. Under [`IsolationMode::WayPartition`], no tenant's lines ever
//!    appear outside its way allocation — checked way-by-way against the
//!    owner mirror throughout randomized multi-tenant runs, along with
//!    the occupancy bound it implies.
//!
//! Failures shrink toward a minimal counterexample and report a
//! `PROP_SEED` for exact replay, like the other differential walls.

use cache_sim::{AccessKind, CacheConfig, SystemConfig};
use rlr::packed::LineMeta;
use rlr::scan::{self, ScanParams, ScanWays};
use simrng::prop::{check, Config};
use simrng::{prop_assert, prop_assert_eq, Rng, SimRng};
use tenancy::{partition_by_weight, IsolationMode, MultiTenantLlc};

/// One way's generated inputs: `(age_stamp, rec_stamp, meta_bits, core)`.
type WayInput = (u64, u64, u8, u8);

/// Scan-wide knobs; ride along the shrunk way vector unchanged.
#[derive(Clone, Debug)]
struct Knobs {
    now: u64,
    clock: u64,
    rd: u64,
    max_age: u64,
    age_weight: u32,
    use_type: bool,
    use_hit: bool,
    exact_recency: bool,
    core_rank: Vec<u32>,
    mask: u32,
}

type Case = (Vec<WayInput>, Knobs);

fn meta_of(bits: u8) -> LineMeta {
    let mut meta = LineMeta::filled(bits & 0x40 != 0, bits & 0x80 != 0);
    meta.set_hit_count(bits & 0x3F);
    meta
}

fn gen_case(rng: &mut SimRng) -> Case {
    let ways = rng.gen_range(1..=32usize);
    let spread = 1u64 << rng.gen_range(0..40u32);
    let now = rng.gen_range(0..1u64 << 40);
    let clock = now + rng.gen_range(0..64u64);
    let inputs = (0..ways)
        .map(|_| {
            let age_stamp = now - rng.gen_range(0..spread.min(now + 1));
            let rec_stamp = clock - rng.gen_range(0..spread.min(clock + 1));
            (age_stamp, rec_stamp, rng.gen_range(0..=255u64) as u8, rng.gen_range(0..8u64) as u8)
        })
        .collect();
    let knobs = Knobs {
        now,
        clock,
        rd: rng.gen_range(0..64u64),
        max_age: [3, 31, rng.gen_range(1..1u64 << 38)][rng.gen_range(0..3u64) as usize],
        age_weight: rng.gen_range(0..=256u32),
        use_type: rng.gen_range(0..2u64) == 1,
        use_hit: rng.gen_range(0..2u64) == 1,
        exact_recency: rng.gen_range(0..2u64) == 1,
        core_rank: if rng.gen_range(0..2u64) == 1 {
            (0..4).map(|_| rng.gen_range(0..4u64) as u32).collect()
        } else {
            Vec::new()
        },
        // Any nonzero bits; clipped to the (possibly shrunk) way count in
        // the property so shrinking can never make the mask invalid.
        mask: rng.gen_range(1..=u32::MAX as u64) as u32,
    };
    (inputs, knobs)
}

fn run_masked_case((inputs, knobs): &Case) -> Result<(), String> {
    let age_stamps: Vec<u64> = inputs.iter().map(|w| w.0).collect();
    let rec_stamps: Vec<u64> = inputs.iter().map(|w| w.1).collect();
    let metas: Vec<LineMeta> = inputs.iter().map(|w| meta_of(w.2)).collect();
    let cores: Vec<u8> = inputs.iter().map(|w| w.3).collect();
    let params = ScanParams {
        now: knobs.now,
        clock: knobs.clock,
        rd: knobs.rd,
        max_age: knobs.max_age,
        age_weight: knobs.age_weight,
        use_type: knobs.use_type,
        use_hit: knobs.use_hit,
        exact_recency: knobs.exact_recency,
    };
    let ways = ScanWays {
        age_stamps: &age_stamps,
        rec_stamps: &rec_stamps,
        metas: &metas,
        cores: &cores,
        core_rank: &knobs.core_rank,
    };
    let n = inputs.len();
    let set_bits = if n == 32 { u32::MAX } else { (1u32 << n) - 1 };
    let mask = if knobs.mask & set_bits == 0 { 1 } else { knobs.mask & set_bits };

    let scalar = scan::scan_masked_scalar(&params, &ways, mask);
    let lanes = scan::scan_masked_lanes(&params, &ways, mask);
    let dispatch = scan::scan_masked(&params, &ways, mask);
    prop_assert_eq!(scalar, lanes);
    prop_assert_eq!(scalar, dispatch);
    prop_assert!(
        mask >> scalar.victim() & 1 == 1,
        "victim way {} escapes mask {mask:#010b}",
        scalar.victim()
    );
    // A full mask is the unmasked scan, key and bypass vote included.
    prop_assert_eq!(scan::scan_masked_scalar(&params, &ways, set_bits), scan::scan(&params, &ways));
    Ok(())
}

#[test]
fn masked_scan_backends_agree_and_never_leave_the_mask() {
    check(
        "masked_scan_backends_agree_and_never_leave_the_mask",
        Config::with_cases(400),
        gen_case,
        run_masked_case,
    );
}

/// Randomized partitioned runs: `(tenants, rng seed, weights...)`, shrunk
/// as a plain seed vector.
fn gen_partition_case(rng: &mut SimRng) -> Vec<u64> {
    let tenants = rng.gen_range(2..=4u64);
    let mut case = vec![tenants, rng.gen_range(0..u64::MAX)];
    case.extend((0..tenants).map(|_| rng.gen_range(1..5u64)));
    case
}

fn run_partition_case(case: &Vec<u64>) -> Result<(), String> {
    // Defensive decode: shrinking may cut the vector; clamp back to a
    // valid scenario rather than panicking mid-shrink.
    let tenants = case.first().copied().unwrap_or(2).clamp(2, 4) as usize;
    let seed = case.get(1).copied().unwrap_or(0);
    let weights: Vec<u32> = (0..tenants)
        .map(|t| case.get(2 + t).copied().unwrap_or(1).clamp(1, 4) as u32)
        .collect();

    let llc = CacheConfig { sets: 16, ways: 8, latency: 26 };
    let mut cfg = SystemConfig::paper_single_core();
    cfg.llc = llc;
    let masks = partition_by_weight(llc.ways, &weights);
    let mut sys = MultiTenantLlc::new(&cfg, tenants as u8, IsolationMode::WayPartition(masks.clone()));

    let mut rng = SimRng::seed_from_u64(seed ^ 0x7ab5_0a11_0c0d_e5e5);
    let check_isolation = |sys: &MultiTenantLlc, at: usize| -> Result<(), String> {
        for set in 0..llc.sets {
            let owners = sys.set_owners(set);
            let mut per_tenant = vec![0u32; tenants];
            for (way, owner) in owners.iter().enumerate() {
                if let Some(t) = owner {
                    let t = usize::from(*t);
                    prop_assert!(
                        masks[t] >> way & 1 == 1,
                        "access {at}: tenant {t} owns way {way} of set {set} \
                         outside its mask {:#010b}",
                        masks[t]
                    );
                    per_tenant[t] += 1;
                }
            }
            for (t, &count) in per_tenant.iter().enumerate() {
                prop_assert!(count <= masks[t].count_ones());
            }
        }
        for (t, q) in sys.qos_all().iter().enumerate() {
            let cap = u64::from(masks[t].count_ones()) * u64::from(llc.sets);
            prop_assert!(
                q.peak_occupancy <= cap,
                "tenant {t} peaked at {} lines, allocation is {cap}",
                q.peak_occupancy
            );
        }
        Ok(())
    };

    for at in 0..4_000usize {
        let tenant = rng.gen_range(0..tenants as u64) as u8;
        // A small hot region plus a long tail, so sets fill, hit, and
        // churn victims rather than only streaming. Tenants get disjoint
        // address spaces (the serving tier's deployment model — the
        // tenancy experiment salts every stream the same way); a *shared*
        // address hands its slot to whichever tenant hits it, which is
        // ownership transfer by design, not an isolation leak.
        let line = if rng.gen_range(0..4u64) == 0 {
            rng.gen_range(0..48u64)
        } else {
            rng.gen_range(0..2_048u64)
        } | (u64::from(tenant) + 1) << 34;
        let kind = AccessKind::ALL[rng.gen_range(0..4u64) as usize];
        sys.access(tenant, 0x400 + line % 13, line << 6, kind);
        if at % 256 == 0 {
            check_isolation(&sys, at)?;
        }
    }
    check_isolation(&sys, 4_000)
}

#[test]
fn way_partition_occupancy_never_leaves_the_allocation() {
    check(
        "way_partition_occupancy_never_leaves_the_allocation",
        Config::with_cases(24),
        gen_partition_case,
        run_partition_case,
    );
}

/// A saturating single-tenant burst inside a one-way partition: the
/// victim scan has exactly one eligible way and must keep naming it, so
/// the tenant's footprint stays pinned at one line per set while its
/// neighbour is untouched.
#[test]
fn one_way_partition_pins_a_tenant_to_one_line_per_set() {
    let llc = CacheConfig { sets: 8, ways: 4, latency: 26 };
    let mut cfg = SystemConfig::paper_single_core();
    cfg.llc = llc;
    let masks = vec![0b0001u32, 0b1110];
    let mut sys = MultiTenantLlc::new(&cfg, 2, IsolationMode::WayPartition(masks));
    for i in 0..4_096u64 {
        sys.access(0, 0x400, i << 6, AccessKind::Load);
    }
    assert_eq!(sys.qos(0).peak_occupancy, u64::from(llc.sets), "one way per set, ever");
    assert_eq!(sys.qos(1).occupancy, 0, "the idle neighbour is untouched");
    for set in 0..llc.sets {
        let owners = sys.set_owners(set);
        assert_eq!(owners[0], Some(0), "the partition's single way is in use");
        assert!(owners[1..].iter().all(Option::is_none), "ways 1..3 stay empty");
    }
}
