//! Property-based invariants of the workload generators, on the in-tree
//! `simrng::prop` harness.

use simrng::prop::{check, Config, Shrink};
use simrng::{prop_assert, prop_assert_ne, Rng, SimRng};
use workloads::{Recipe, Workload};

/// A generated case: a recipe plus a stream seed. Recipes are structural
/// (no meaningful halving), so the case does not shrink.
#[derive(Clone, Debug)]
struct Case {
    recipe: Recipe,
    seed: u64,
}

impl Shrink for Case {}

/// Draws a small leaf recipe.
fn leaf(rng: &mut SimRng) -> Recipe {
    match rng.gen_range(0..5u32) {
        0 => Recipe::Cyclic {
            bytes: rng.gen_range(1..64u64) << 10,
            stride: rng.gen_range(1..4u64) * 64,
            store_ratio: 0.3,
        },
        1 => Recipe::Zipf {
            bytes: rng.gen_range(1..64u64) << 10,
            skew: f64::from(rng.gen_range(0..15u16)) / 10.0,
            store_ratio: 0.2,
        },
        2 => Recipe::Random { bytes: rng.gen_range(1..64u64) << 10, store_ratio: 0.5 },
        3 => Recipe::Chase { bytes: rng.gen_range(1..64u64) << 10 },
        _ => Recipe::Stencil {
            rows: rng.gen_range(1..8u32),
            row_bytes: rng.gen_range(1..8u64) << 10,
        },
    }
}

/// Draws a composed recipe (one combinator level, as the original suite).
fn recipe(rng: &mut SimRng) -> Recipe {
    match rng.gen_range(0..4u32) {
        0 => leaf(rng),
        1 => Recipe::Mix(
            (0..rng.gen_range(1..4usize))
                .map(|_| (rng.gen_range(1..5u32), leaf(rng)))
                .collect(),
        ),
        2 => Recipe::Phased(
            (0..rng.gen_range(1..4usize))
                .map(|_| (rng.gen_range(1..2000u64), leaf(rng)))
                .collect(),
        ),
        _ => Recipe::Interleave((0..rng.gen_range(1..4usize)).map(|_| leaf(rng)).collect()),
    }
}

/// Streams are infinite, deterministic, and emit sane entries.
#[test]
fn streams_are_deterministic_and_sane() {
    check(
        "streams_are_deterministic_and_sane",
        Config::with_cases(48),
        |rng| Case { recipe: recipe(rng), seed: rng.gen_range(0..1_000_000u64) },
        |case| {
            let wl = Workload::new("prop", case.recipe.clone())
                .with_seed(case.seed)
                .with_compute(1, 5);
            let a: Vec<_> = wl.stream().take(300).collect();
            let b: Vec<_> = wl.stream().take(300).collect();
            prop_assert!(a == b, "same seed must replay identically");
            for e in &a {
                prop_assert!(e.leading <= 5, "leading {} > 5", e.leading);
                prop_assert!(e.addr > 0);
                prop_assert!(e.pc > 0);
            }
            Ok(())
        },
    );
}

/// Every data address falls inside the recipe's total footprint envelope
/// (regions are disjoint and bounded), and local accesses stay in their own
/// window.
#[test]
fn addresses_stay_in_allocated_regions() {
    check(
        "addresses_stay_in_allocated_regions",
        Config::with_cases(48),
        |rng| Case { recipe: recipe(rng), seed: rng.gen_range(0..1000u64) },
        |case| {
            let footprint = case.recipe.data_footprint();
            let wl = Workload::new("prop", case.recipe.clone())
                .with_seed(case.seed)
                .with_local(0.5);
            const DATA_BASE: u64 = 0x1_0000_0000;
            const STACK_BASE: u64 = 0xF000_0000_0000;
            // Regions are 1 MB-aligned; a recipe with n leaves spans at most
            // footprint + n MB of address space. Our recipes here have <= 4
            // leaves of <= 64 KB plus stencil grids.
            let envelope = DATA_BASE + footprint + (16 << 20);
            for e in wl.stream().take(500) {
                let in_data = e.addr >= DATA_BASE && e.addr < envelope;
                let in_stack = e.addr >= STACK_BASE && e.addr < STACK_BASE + (64 << 10);
                prop_assert!(in_data || in_stack, "address {:#x} outside all regions", e.addr);
            }
            Ok(())
        },
    );
}

/// Different seeds diverge for stochastic recipes (Zipf), showing the seed
/// actually feeds the generator.
#[test]
fn seeds_diverge_for_random_recipes() {
    check(
        "seeds_diverge_for_random_recipes",
        Config::with_cases(48),
        |rng| (rng.gen_range(0..500u64), rng.gen_range(501..1000u64)),
        |&(s1, s2)| {
            let r = Recipe::Zipf { bytes: 1 << 20, skew: 0.9, store_ratio: 0.5 };
            let a: Vec<_> =
                Workload::new("z", r.clone()).with_seed(s1).stream().take(64).collect();
            let b: Vec<_> = Workload::new("z", r).with_seed(s2).stream().take(64).collect();
            prop_assert_ne!(a, b);
            Ok(())
        },
    );
}
