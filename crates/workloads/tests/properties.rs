//! Property-based invariants of the workload generators.

use proptest::prelude::*;
use workloads::{Recipe, Workload};

/// A strategy over small leaf recipes.
fn leaf() -> impl Strategy<Value = Recipe> {
    prop_oneof![
        (1u64..64, 1u64..4).prop_map(|(kb, s)| Recipe::Cyclic {
            bytes: kb << 10,
            stride: s * 64,
            store_ratio: 0.3,
        }),
        (1u64..64, 0u16..15).prop_map(|(kb, skew)| Recipe::Zipf {
            bytes: kb << 10,
            skew: f64::from(skew) / 10.0,
            store_ratio: 0.2,
        }),
        (1u64..64,).prop_map(|(kb,)| Recipe::Random { bytes: kb << 10, store_ratio: 0.5 }),
        (1u64..64,).prop_map(|(kb,)| Recipe::Chase { bytes: kb << 10 }),
        (1u32..8, 1u64..8).prop_map(|(rows, kb)| Recipe::Stencil {
            rows,
            row_bytes: kb << 10,
        }),
    ]
}

/// A strategy over composed recipes (one combinator level).
fn recipe() -> impl Strategy<Value = Recipe> {
    prop_oneof![
        leaf(),
        proptest::collection::vec((1u32..5, leaf()), 1..4).prop_map(Recipe::Mix),
        proptest::collection::vec((1u64..2000, leaf()), 1..4).prop_map(Recipe::Phased),
        proptest::collection::vec(leaf(), 1..4).prop_map(Recipe::Interleave),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Streams are infinite, deterministic, and emit sane entries.
    #[test]
    fn streams_are_deterministic_and_sane(r in recipe(), seed in 0u64..1_000_000) {
        let wl = Workload::new("prop", r).with_seed(seed).with_compute(1, 5);
        let a: Vec<_> = wl.stream().take(300).collect();
        let b: Vec<_> = wl.stream().take(300).collect();
        prop_assert_eq!(&a, &b, "same seed must replay identically");
        for e in &a {
            prop_assert!(e.leading <= 5);
            prop_assert!(e.addr > 0);
            prop_assert!(e.pc > 0);
        }
    }

    /// Every data address falls inside the recipe's total footprint
    /// envelope (regions are disjoint and bounded), and local accesses
    /// stay in their own window.
    #[test]
    fn addresses_stay_in_allocated_regions(r in recipe(), seed in 0u64..1000) {
        let footprint = r.data_footprint();
        let wl = Workload::new("prop", r).with_seed(seed).with_local(0.5);
        const DATA_BASE: u64 = 0x1_0000_0000;
        const STACK_BASE: u64 = 0xF000_0000_0000;
        // Regions are 1 MB-aligned; a recipe with n leaves spans at most
        // footprint + n MB of address space. Our recipes here have <= 4
        // leaves of <= 64 KB plus stencil grids.
        let envelope = DATA_BASE + footprint + (16 << 20);
        for e in wl.stream().take(500) {
            let in_data = e.addr >= DATA_BASE && e.addr < envelope;
            let in_stack = e.addr >= STACK_BASE && e.addr < STACK_BASE + (64 << 10);
            prop_assert!(in_data || in_stack, "address {:#x} outside all regions", e.addr);
        }
    }

    /// Different seeds diverge for stochastic recipes (Zipf), showing the
    /// seed actually feeds the generator.
    #[test]
    fn seeds_diverge_for_random_recipes(s1 in 0u64..500, s2 in 501u64..1000) {
        let r = Recipe::Zipf { bytes: 1 << 20, skew: 0.9, store_ratio: 0.5 };
        let a: Vec<_> = Workload::new("z", r.clone()).with_seed(s1).stream().take(64).collect();
        let b: Vec<_> = Workload::new("z", r).with_seed(s2).stream().take(64).collect();
        prop_assert_ne!(a, b);
    }
}
