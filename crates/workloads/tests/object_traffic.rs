//! Property suite for the object-traffic generator (`workloads::objects`),
//! on the in-tree `simrng::prop` harness: popularity really is Zipf with
//! the configured exponent, flash crowds really divert the configured share
//! of traffic, sizes/TTLs stay inside their spec bounds, and equal seeds
//! give byte-identical streams.

use simrng::prop::{check, Config, Shrink};
use simrng::{prop_assert, Rng, SimRng};
use workloads::objects::{ObjectStream, FLASH_KEY_BASE};
use workloads::ObjectTraffic;

#[derive(Clone, Debug)]
struct Case {
    traffic: ObjectTraffic,
}

impl Shrink for Case {}

/// A randomized config with flash crowds enabled.
fn gen_traffic(rng: &mut SimRng) -> ObjectTraffic {
    let min_size = 1u32 << rng.gen_range(4..12u32);
    let min_ttl_s = rng.gen_range(1..30u64);
    ObjectTraffic {
        catalog: rng.gen_range(100..5000u64),
        skew: f64::from(rng.gen_range(3..13u16)) / 10.0,
        rps: rng.gen_range(10..100_000u64),
        min_size,
        max_size: min_size << rng.gen_range(0..8u32),
        min_ttl_s,
        max_ttl_s: min_ttl_s + rng.gen_range(0..3600u64),
        flash_every: 500,
        flash_len: rng.gen_range(50..400u64),
        flash_share_pct: rng.gen_range(20..95u32),
        flash_hot: rng.gen_range(1..40u64),
        seed: rng.gen_range(0..u64::MAX),
    }
}

/// Empirical share of requests landing in the top `k` ranks matches the
/// sampler's analytic CDF for the configured exponent. (Rank == key by
/// construction, so this pins the whole popularity curve, not just
/// monotonicity.)
#[test]
fn popularity_follows_configured_zipf_exponent() {
    check(
        "object_zipf_exponent",
        Config::with_cases(12),
        |rng| {
            let mut traffic = gen_traffic(rng);
            traffic.flash_every = 0; // isolate the base catalog
            traffic.catalog = rng.gen_range(500..2000u64);
            Case { traffic }
        },
        |case| {
            let t = &case.traffic;
            const DRAWS: usize = 40_000;
            let mut counts = vec![0u64; t.catalog as usize];
            for r in t.stream().take(DRAWS) {
                counts[r.key as usize] += 1;
            }
            // Analytic share of the top k ranks under the continuous
            // inverse-CDF sampler: F(k) = ((k+1)^(1-s) - 1) / ((n+1)^(1-s) - 1).
            let s = if (t.skew - 1.0).abs() < 1e-9 { 1.0 + 1e-6 } else { t.skew };
            let f = |k: f64| ((k + 1.0).powf(1.0 - s) - 1.0) / ((t.catalog as f64 + 1.0).powf(1.0 - s) - 1.0);
            for frac in [0.01, 0.1, 0.5] {
                let k = ((t.catalog as f64) * frac).max(1.0).floor() as usize;
                let got = counts[..k].iter().sum::<u64>() as f64 / DRAWS as f64;
                let want = f(k as f64);
                prop_assert!(
                    (got - want).abs() < 0.04,
                    "top-{k} share {got:.4} vs analytic {want:.4} (skew {})",
                    t.skew
                );
            }
            Ok(())
        },
    );
}

/// Flash phases divert ~`flash_share_pct`% of requests to the crowd's hot
/// set, that hot set is fresh (unseen before the crowd) and small, and
/// outside flash phases no viral keys appear at all.
#[test]
fn flash_phases_raise_hot_set_share() {
    check(
        "object_flash_share",
        Config::with_cases(16),
        |rng| Case { traffic: gen_traffic(rng) },
        |case| {
            let t = &case.traffic;
            let take = (t.flash_every * 8) as usize;
            let mut in_phase = 0u64;
            let mut in_phase_viral = 0u64;
            for (i, r) in t.stream().take(take).enumerate() {
                let flash = ObjectStream::in_flash_phase(t, i as u64);
                if flash {
                    in_phase += 1;
                    if r.key >= FLASH_KEY_BASE {
                        in_phase_viral += 1;
                        let crowd = i as u64 / t.flash_every;
                        let base = FLASH_KEY_BASE + crowd * t.flash_hot;
                        prop_assert!(
                            (base..base + t.flash_hot).contains(&r.key),
                            "viral key {} outside crowd {}'s hot set",
                            r.key,
                            crowd
                        );
                    }
                } else {
                    prop_assert!(r.key < t.catalog, "viral key outside a flash phase");
                }
            }
            let share = in_phase_viral as f64 / in_phase as f64;
            let want = t.flash_share_pct as f64 / 100.0;
            prop_assert!(
                (share - want).abs() < 0.08,
                "flash share {share:.3} vs configured {want:.3}"
            );
            Ok(())
        },
    );
}

/// Every emitted size / TTL lies inside the configured bounds, and both are
/// stable functions of the key.
#[test]
fn sizes_and_ttls_stay_within_spec_bounds() {
    check(
        "object_size_ttl_bounds",
        Config::with_cases(16),
        |rng| Case { traffic: gen_traffic(rng) },
        |case| {
            let t = &case.traffic;
            let mut seen: std::collections::HashMap<u64, (u32, u64)> = Default::default();
            for r in t.stream().take(3000) {
                prop_assert!(
                    (t.min_size..=t.max_size).contains(&r.size),
                    "size {} outside [{}, {}]",
                    r.size,
                    t.min_size,
                    t.max_size
                );
                prop_assert!(
                    (t.min_ttl_s * 1000..=t.max_ttl_s * 1000).contains(&r.ttl_ms),
                    "ttl {}ms outside [{}, {}]s",
                    r.ttl_ms,
                    t.min_ttl_s,
                    t.max_ttl_s
                );
                if let Some(&(size, ttl)) = seen.get(&r.key) {
                    prop_assert!(size == r.size && ttl == r.ttl_ms, "key {} changed shape", r.key);
                }
                seen.insert(r.key, (r.size, r.ttl_ms));
            }
            Ok(())
        },
    );
}

/// Identical seeds produce byte-identical streams; a different seed (all
/// else equal) diverges.
#[test]
fn identical_seeds_replay_identically() {
    check(
        "object_stream_determinism",
        Config::with_cases(16),
        |rng| Case { traffic: gen_traffic(rng) },
        |case| {
            let a: Vec<_> = case.traffic.stream().take(1500).collect();
            let b: Vec<_> = case.traffic.stream().take(1500).collect();
            prop_assert!(a == b, "same config must replay identically");
            let mut other = case.traffic;
            other.seed = other.seed.wrapping_add(1);
            let c: Vec<_> = other.stream().take(1500).collect();
            prop_assert!(a != c, "seed change must perturb the stream");
            Ok(())
        },
    );
}
