//! Recording and replaying instruction-stream traces.
//!
//! A [`Workload`]'s stream can be recorded to a compact binary file and
//! replayed later — useful for pinning down a workload across versions of
//! the generators, for sharing reproducible inputs, and for importing
//! externally-generated streams.

use std::io::{self, Read, Write};

use crate::entry::TraceEntry;
use crate::workload::Workload;

/// A fully materialized instruction-stream trace.
///
/// ```
/// use workloads::{Recipe, RecordedTrace, Workload};
///
/// let wl = Workload::new("demo", Recipe::Chase { bytes: 1 << 14 });
/// let rec = RecordedTrace::record(&wl, 100);
/// assert_eq!(rec.len(), 100);
///
/// let mut buf = Vec::new();
/// rec.write_to(&mut buf).unwrap();
/// let back = RecordedTrace::read_from(buf.as_slice()).unwrap();
/// assert_eq!(rec, back);
/// // Replays are plain iterators, usable anywhere a live stream is.
/// assert_eq!(back.iter().count(), 100);
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RecordedTrace {
    entries: Vec<TraceEntry>,
}

impl RecordedTrace {
    /// Records the first `entries` entries of a workload's stream.
    pub fn record(workload: &Workload, entries: usize) -> Self {
        Self { entries: workload.stream().take(entries).collect() }
    }

    /// Builds a trace from explicit entries.
    pub fn from_entries(entries: Vec<TraceEntry>) -> Self {
        Self { entries }
    }

    /// Number of recorded entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The recorded entries.
    pub fn entries(&self) -> &[TraceEntry] {
        &self.entries
    }

    /// Iterates the recorded entries (a finite stream).
    pub fn iter(&self) -> impl Iterator<Item = TraceEntry> + '_ {
        self.entries.iter().copied()
    }

    /// Iterates the recorded entries cyclically, forever — a drop-in
    /// replacement for an infinite live stream.
    pub fn iter_cycled(&self) -> impl Iterator<Item = TraceEntry> + '_ {
        self.entries.iter().copied().cycle()
    }

    /// Serializes the trace to a compact binary format.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from the writer.
    pub fn write_to<W: Write>(&self, mut w: W) -> io::Result<()> {
        w.write_all(b"ITRC")?;
        w.write_all(&(self.entries.len() as u64).to_le_bytes())?;
        for e in &self.entries {
            w.write_all(&e.pc.to_le_bytes())?;
            w.write_all(&e.addr.to_le_bytes())?;
            w.write_all(&e.leading.to_le_bytes())?;
            w.write_all(&[u8::from(e.is_store) | (u8::from(e.dependent) << 1)])?;
        }
        Ok(())
    }

    /// Deserializes a trace written by [`RecordedTrace::write_to`].
    ///
    /// # Errors
    ///
    /// Returns an error on I/O failure or malformed input.
    pub fn read_from<R: Read>(mut r: R) -> io::Result<Self> {
        let mut magic = [0u8; 4];
        r.read_exact(&mut magic)?;
        if &magic != b"ITRC" {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "bad trace magic"));
        }
        let mut len8 = [0u8; 8];
        r.read_exact(&mut len8)?;
        let len = u64::from_le_bytes(len8) as usize;
        let mut entries = Vec::with_capacity(len.min(1 << 24));
        for _ in 0..len {
            let mut buf = [0u8; 21];
            r.read_exact(&mut buf)?;
            entries.push(TraceEntry {
                pc: u64::from_le_bytes(buf[0..8].try_into().expect("8 bytes")),
                addr: u64::from_le_bytes(buf[8..16].try_into().expect("8 bytes")),
                leading: u32::from_le_bytes(buf[16..20].try_into().expect("4 bytes")),
                is_store: buf[20] & 1 != 0,
                dependent: buf[20] & 2 != 0,
            });
        }
        Ok(Self { entries })
    }
}

impl FromIterator<TraceEntry> for RecordedTrace {
    fn from_iter<T: IntoIterator<Item = TraceEntry>>(iter: T) -> Self {
        Self { entries: iter.into_iter().collect() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recipe::Recipe;

    #[test]
    fn record_matches_live_stream() {
        let wl = Workload::new("r", Recipe::Zipf { bytes: 1 << 16, skew: 1.0, store_ratio: 0.4 });
        let rec = RecordedTrace::record(&wl, 250);
        let live: Vec<TraceEntry> = wl.stream().take(250).collect();
        assert_eq!(rec.entries(), &live[..]);
    }

    #[test]
    fn roundtrip_preserves_flags() {
        let entries = vec![
            TraceEntry { leading: 3, pc: 0x400, is_store: true, addr: 0xAB00, dependent: false },
            TraceEntry { leading: 0, pc: 0x404, is_store: false, addr: 0xCD40, dependent: true },
        ];
        let t = RecordedTrace::from_entries(entries.clone());
        let mut buf = Vec::new();
        t.write_to(&mut buf).expect("in-memory write");
        let back = RecordedTrace::read_from(buf.as_slice()).expect("read");
        assert_eq!(back.entries(), &entries[..]);
    }

    #[test]
    fn cycled_replay_wraps() {
        let t = RecordedTrace::from_entries(vec![TraceEntry {
            leading: 1,
            pc: 4,
            is_store: false,
            addr: 64,
            dependent: false,
        }]);
        assert_eq!(t.iter_cycled().take(5).count(), 5);
    }

    #[test]
    fn bad_magic_is_rejected() {
        assert!(RecordedTrace::read_from(&b"XXXX\0\0\0\0\0\0\0\0"[..]).is_err());
    }
}
