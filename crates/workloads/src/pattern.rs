//! Compiled pattern state machines.
//!
//! [`crate::Recipe`] trees are compiled into [`Node`] state machines by
//! [`Node::build`]. Each leaf owns a private, non-overlapping data region and
//! a private program-counter range, allocated by [`Alloc`], so that composed
//! workloads never alias each other's lines and PC-indexed predictors see a
//! stable site-to-behaviour mapping.

use simrng::{Rng, SimRng};

use crate::power_law::PowerLaw;
use crate::recipe::Recipe;
use crate::LINE_BYTES;

/// Base virtual address of the first data region.
const DATA_BASE: u64 = 0x1_0000_0000;
/// Base virtual address for large code-walk regions.
const CODE_BASE: u64 = 0x0800_0000;
/// Base program counter for per-site instruction addresses.
const PC_BASE: u64 = 0x0040_0000;
/// Alignment of data regions; also the gap keeping regions disjoint.
const REGION_ALIGN: u64 = 1 << 20;
/// Pointer-chase node cap (2^21 nodes = 128 MB footprint, 8 MB table).
const MAX_CHASE_NODES: u64 = 1 << 21;

/// One step of output from a pattern node.
#[derive(Clone, Copy, Debug)]
pub(crate) struct StepOut {
    pub pc: u64,
    pub is_store: bool,
    pub addr: u64,
    /// Compute density override set by a [`Recipe::Compute`] ancestor.
    pub leading: Option<u32>,
    /// Serially dependent access (pointer chase).
    pub dependent: bool,
}

/// Address-space and PC allocator used while compiling a recipe tree.
#[derive(Debug)]
pub(crate) struct Alloc {
    next_data: u64,
    next_code: u64,
    next_pc: u64,
}

impl Alloc {
    pub(crate) fn new() -> Self {
        Self { next_data: DATA_BASE, next_code: CODE_BASE, next_pc: PC_BASE }
    }

    fn data_region(&mut self, bytes: u64) -> u64 {
        let base = self.next_data;
        let size = bytes.max(LINE_BYTES);
        self.next_data += size.div_ceil(REGION_ALIGN) * REGION_ALIGN;
        base
    }

    fn code_region(&mut self, bytes: u64) -> u64 {
        let base = self.next_code;
        self.next_code += bytes.div_ceil(REGION_ALIGN) * REGION_ALIGN;
        base
    }

    fn pc_block(&mut self) -> u64 {
        let base = self.next_pc;
        self.next_pc += 0x1000;
        base
    }
}

/// A compiled, mutable pattern state machine.
#[derive(Debug)]
pub(crate) enum Node {
    Cyclic {
        base: u64,
        bytes: u64,
        stride: u64,
        store_ratio: f32,
        pos: u64,
        pc_base: u64,
    },
    Zipf {
        base: u64,
        line_mask: u64,
        sampler: PowerLaw,
        store_ratio: f32,
        pc_base: u64,
    },
    Random {
        base: u64,
        lines: u64,
        store_ratio: f32,
        pc_base: u64,
    },
    Chase {
        base: u64,
        next: Vec<u32>,
        cur: u32,
        pc_base: u64,
    },
    Stencil {
        base: u64,
        elems: u64,
        cols: u64,
        idx: u64,
        phase: u8,
        pc_base: u64,
    },
    Mix {
        children: Vec<Node>,
        cumulative: Vec<u32>,
        total: u32,
    },
    Phased {
        children: Vec<(u64, Node)>,
        active: usize,
        remaining: u64,
    },
    Interleave {
        children: Vec<Node>,
        turn: usize,
    },
    Compute {
        min: u32,
        max: u32,
        inner: Box<Node>,
    },
    CodeWalk {
        code_base: u64,
        bytes: u64,
        pos: u64,
        inner: Box<Node>,
    },
}

/// Builds a single-cycle pseudo-random permutation (Sattolo's algorithm).
fn sattolo_cycle(n: usize, rng: &mut SimRng) -> Vec<u32> {
    let mut perm: Vec<u32> = (0..n as u32).collect();
    let mut i = n;
    while i > 1 {
        i -= 1;
        let j = rng.gen_range(0..i);
        perm.swap(i, j);
    }
    // `perm` is now a cyclic order; convert to a successor table.
    let mut next = vec![0u32; n];
    for w in 0..n {
        next[perm[w] as usize] = perm[(w + 1) % n];
    }
    next
}

/// Scatters a popularity rank over the region's lines so that popular ranks
/// are not spatially adjacent (which would otherwise gift stride prefetchers
/// an unrealistic advantage). Multiplication by an odd constant is a
/// bijection modulo a power of two.
fn scatter_rank(rank: u64, line_mask: u64) -> u64 {
    rank.wrapping_mul(0x9E37_79B9_7F4A_7C15) & line_mask
}

impl Node {
    /// Compiles a recipe into a state machine, allocating regions and PCs.
    pub(crate) fn build(recipe: &Recipe, alloc: &mut Alloc, rng: &mut SimRng) -> Node {
        match recipe {
            Recipe::Cyclic { bytes, stride, store_ratio } => Node::Cyclic {
                base: alloc.data_region(*bytes),
                bytes: (*bytes).max(LINE_BYTES),
                stride: (*stride).max(1),
                store_ratio: *store_ratio,
                pos: 0,
                pc_base: alloc.pc_block(),
            },
            Recipe::Zipf { bytes, skew, store_ratio } => {
                let lines = (bytes / LINE_BYTES).max(1);
                let pow2 = 1u64 << (63 - lines.leading_zeros() as u64);
                Node::Zipf {
                    base: alloc.data_region(*bytes),
                    line_mask: pow2 - 1,
                    sampler: PowerLaw::new(pow2, *skew),
                    store_ratio: *store_ratio,
                    pc_base: alloc.pc_block(),
                }
            }
            Recipe::Random { bytes, store_ratio } => Node::Random {
                base: alloc.data_region(*bytes),
                lines: (bytes / LINE_BYTES).max(1),
                store_ratio: *store_ratio,
                pc_base: alloc.pc_block(),
            },
            Recipe::Chase { bytes } => {
                let nodes = (bytes / LINE_BYTES).clamp(2, MAX_CHASE_NODES) as usize;
                Node::Chase {
                    base: alloc.data_region(*bytes),
                    next: sattolo_cycle(nodes, rng),
                    cur: 0,
                    pc_base: alloc.pc_block(),
                }
            }
            Recipe::Stencil { rows, row_bytes } => {
                let cols = (row_bytes / 8).max(1);
                Node::Stencil {
                    base: alloc.data_region(u64::from(*rows) * row_bytes),
                    elems: u64::from(*rows) * cols,
                    cols,
                    idx: 0,
                    phase: 0,
                    pc_base: alloc.pc_block(),
                }
            }
            Recipe::Mix(children) => {
                assert!(!children.is_empty(), "Mix needs at least one child");
                let mut cumulative = Vec::with_capacity(children.len());
                let mut total = 0u32;
                let mut nodes = Vec::with_capacity(children.len());
                for (weight, child) in children {
                    assert!(*weight > 0, "Mix weights must be positive");
                    total += weight;
                    cumulative.push(total);
                    nodes.push(Node::build(child, alloc, rng));
                }
                Node::Mix { children: nodes, cumulative, total }
            }
            Recipe::Phased(children) => {
                assert!(!children.is_empty(), "Phased needs at least one child");
                let nodes: Vec<(u64, Node)> = children
                    .iter()
                    .map(|(len, child)| {
                        assert!(*len > 0, "phase lengths must be positive");
                        (*len, Node::build(child, alloc, rng))
                    })
                    .collect();
                let remaining = nodes[0].0;
                Node::Phased { children: nodes, active: 0, remaining }
            }
            Recipe::Interleave(children) => {
                assert!(!children.is_empty(), "Interleave needs at least one child");
                Node::Interleave {
                    children: children.iter().map(|c| Node::build(c, alloc, rng)).collect(),
                    turn: 0,
                }
            }
            Recipe::Compute { min, max, inner } => {
                assert!(min <= max, "Compute range must have min <= max");
                Node::Compute { min: *min, max: *max, inner: Box::new(Node::build(inner, alloc, rng)) }
            }
            Recipe::CodeWalk { bytes, inner } => Node::CodeWalk {
                code_base: alloc.code_region(*bytes),
                bytes: (*bytes).max(LINE_BYTES),
                pos: 0,
                inner: Box::new(Node::build(inner, alloc, rng)),
            },
        }
    }

    /// Emits the next access.
    pub(crate) fn step(&mut self, rng: &mut SimRng) -> StepOut {
        match self {
            Node::Cyclic { base, bytes, stride, store_ratio, pos, pc_base } => {
                let addr = *base + *pos;
                *pos = (*pos + *stride) % *bytes;
                let is_store = rng.gen::<f32>() < *store_ratio;
                StepOut {
                    pc: *pc_base + u64::from(is_store) * 4,
                    is_store,
                    addr,
                    leading: None,
                    dependent: false,
                }
            }
            Node::Zipf { base, line_mask, sampler, store_ratio, pc_base } => {
                let rank = sampler.sample(rng);
                let line = scatter_rank(rank, *line_mask);
                let is_store = rng.gen::<f32>() < *store_ratio;
                // Popular ranks come from dedicated "hot" instruction sites,
                // giving PC-indexed predictors a realistic reuse signal.
                let hot = rank < (*line_mask + 1) / 16;
                let site = u64::from(is_store) | (u64::from(hot) << 1);
                StepOut {
                    pc: *pc_base + site * 4,
                    is_store,
                    addr: *base + line * LINE_BYTES,
                    leading: None,
                    dependent: false,
                }
            }
            Node::Random { base, lines, store_ratio, pc_base } => {
                let line = rng.gen_range(0..*lines);
                let is_store = rng.gen::<f32>() < *store_ratio;
                StepOut {
                    pc: *pc_base + u64::from(is_store) * 4,
                    is_store,
                    addr: *base + line * LINE_BYTES,
                    leading: None,
                    dependent: false,
                }
            }
            Node::Chase { base, next, cur, pc_base } => {
                *cur = next[*cur as usize];
                StepOut {
                    pc: *pc_base,
                    is_store: false,
                    addr: *base + u64::from(*cur) * LINE_BYTES,
                    leading: None,
                    dependent: true,
                }
            }
            Node::Stencil { base, elems, cols, idx, phase, pc_base } => {
                let (site, is_store, elem) = match *phase {
                    0 => (0, false, (*idx + *elems - *cols) % *elems),
                    1 => (1, false, *idx),
                    _ => (2, true, *idx),
                };
                let out = StepOut {
                    pc: *pc_base + site * 4,
                    is_store,
                    addr: *base + elem * 8,
                    leading: None,
                    dependent: false,
                };
                *phase += 1;
                if *phase == 3 {
                    *phase = 0;
                    *idx = (*idx + 1) % *elems;
                }
                out
            }
            Node::Mix { children, cumulative, total } => {
                let draw = rng.gen_range(0..*total);
                let pick = cumulative.partition_point(|&c| c <= draw);
                children[pick].step(rng)
            }
            Node::Phased { children, active, remaining } => {
                if *remaining == 0 {
                    *active = (*active + 1) % children.len();
                    *remaining = children[*active].0;
                }
                *remaining -= 1;
                children[*active].1.step(rng)
            }
            Node::Interleave { children, turn } => {
                let pick = *turn;
                *turn = (*turn + 1) % children.len();
                children[pick].step(rng)
            }
            Node::Compute { min, max, inner } => {
                let mut out = inner.step(rng);
                out.leading = Some(if min == max { *min } else { rng.gen_range(*min..=*max) });
                out
            }
            Node::CodeWalk { code_base, bytes, pos, inner } => {
                let mut out = inner.step(rng);
                out.pc = *code_base + *pos;
                *pos = (*pos + 8) % *bytes;
                out
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build(recipe: Recipe) -> (Node, SimRng) {
        let mut rng = SimRng::seed_from_u64(42);
        let mut alloc = Alloc::new();
        let node = Node::build(&recipe, &mut alloc, &mut rng);
        (node, rng)
    }

    #[test]
    fn cyclic_wraps_within_region() {
        let (mut node, mut rng) =
            build(Recipe::Cyclic { bytes: 256, stride: 64, store_ratio: 0.0 });
        let addrs: Vec<u64> = (0..8).map(|_| node.step(&mut rng).addr).collect();
        assert_eq!(addrs[0], addrs[4]);
        assert_eq!(addrs[1], addrs[5]);
        assert_eq!(addrs[1] - addrs[0], 64);
    }

    #[test]
    fn chase_visits_every_node_once_per_cycle() {
        let (mut node, mut rng) = build(Recipe::Chase { bytes: 64 * 16 });
        let mut seen = std::collections::HashSet::new();
        for _ in 0..16 {
            assert!(seen.insert(node.step(&mut rng).addr), "revisit before full cycle");
        }
        // The 17th access restarts the cycle.
        assert!(!seen.insert(node.step(&mut rng).addr));
    }

    #[test]
    fn stencil_emits_read_read_write_per_element() {
        let (mut node, mut rng) = build(Recipe::Stencil { rows: 4, row_bytes: 64 });
        let a = node.step(&mut rng);
        let b = node.step(&mut rng);
        let c = node.step(&mut rng);
        assert!(!a.is_store && !b.is_store && c.is_store);
        assert_eq!(b.addr, c.addr);
    }

    #[test]
    fn zipf_addresses_fall_in_region() {
        let (mut node, mut rng) =
            build(Recipe::Zipf { bytes: 1 << 16, skew: 1.0, store_ratio: 0.5 });
        for _ in 0..1000 {
            let out = node.step(&mut rng);
            assert!(out.addr >= DATA_BASE);
            assert!(out.addr < DATA_BASE + (1 << 16));
        }
    }

    #[test]
    fn mix_regions_are_disjoint() {
        let (mut node, mut rng) = build(Recipe::Mix(vec![
            (1, Recipe::Random { bytes: 1 << 20, store_ratio: 0.0 }),
            (1, Recipe::Random { bytes: 1 << 20, store_ratio: 0.0 }),
        ]));
        // All addresses must land in one of two disjoint 1 MB regions.
        for _ in 0..1000 {
            let a = node.step(&mut rng).addr;
            let region = (a - DATA_BASE) / (1 << 20);
            assert!(region < 2, "address outside allocated regions");
        }
    }

    #[test]
    fn phased_switches_children() {
        let (mut node, mut rng) = build(Recipe::Phased(vec![
            (4, Recipe::Cyclic { bytes: 64, stride: 64, store_ratio: 0.0 }),
            (4, Recipe::Cyclic { bytes: 64, stride: 64, store_ratio: 0.0 }),
        ]));
        let first: Vec<u64> = (0..4).map(|_| node.step(&mut rng).addr).collect();
        let second: Vec<u64> = (0..4).map(|_| node.step(&mut rng).addr).collect();
        assert_ne!(first[0], second[0], "phase 2 must use its own region");
    }

    #[test]
    fn compute_overrides_leading() {
        let (mut node, mut rng) = build(Recipe::Compute {
            min: 7,
            max: 7,
            inner: Box::new(Recipe::Random { bytes: 4096, store_ratio: 0.0 }),
        });
        assert_eq!(node.step(&mut rng).leading, Some(7));
    }

    #[test]
    fn code_walk_rewrites_pc() {
        let (mut node, mut rng) = build(Recipe::CodeWalk {
            bytes: 1 << 12,
            inner: Box::new(Recipe::Random { bytes: 4096, store_ratio: 0.0 }),
        });
        let a = node.step(&mut rng).pc;
        let b = node.step(&mut rng).pc;
        assert!((CODE_BASE..CODE_BASE + (1 << 12)).contains(&a));
        assert_eq!(b - a, 8);
    }

    #[test]
    fn sattolo_produces_single_cycle() {
        let mut rng = SimRng::seed_from_u64(9);
        let next = sattolo_cycle(100, &mut rng);
        let mut cur = 0u32;
        for _ in 0..99 {
            cur = next[cur as usize];
            assert_ne!(cur, 0, "cycle closed early");
        }
        assert_eq!(next[cur as usize], 0, "must return to start after n steps");
    }
}
