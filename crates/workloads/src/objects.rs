//! Internet-scale object-cache traffic: Zipf popularity over a large
//! catalog, periodic flash-crowd phases, per-key sizes and TTLs, and a
//! requests-per-second clock.
//!
//! This is the serving-tier counterpart of the line-granular SPEC/CloudSuite
//! generators: instead of 64-byte cache lines it emits *objects* — each
//! request names a key, a byte size, and a time-to-live — standing in for a
//! CDN / web object cache in front of millions of users. The stream is a
//! pure function of [`ObjectTraffic`] (including its seed): two streams
//! built from equal configs are byte-identical, which is what the sweep
//! checkpoints and differential walls rely on.
//!
//! Design notes:
//!
//! - **Popularity** is a [`PowerLaw`] (Zipf) over `0..catalog`; the sampled
//!   rank *is* the key, so rank-frequency properties are directly testable.
//! - **Size and TTL are functions of the key** (hashed with per-config
//!   salts), not fresh draws per request: a given object always has the same
//!   size and lifetime, as it would in a real origin. Sizes are log-uniform
//!   in `[min_size, max_size]`; TTLs log-uniform in
//!   `[min_ttl_s, max_ttl_s]` seconds.
//! - **Flash crowds**: in the last `flash_len` requests of every
//!   `flash_every`-request period, `flash_share_pct`% of traffic diverts to
//!   a small hot set of `flash_hot` *fresh* keys (offset by
//!   [`FLASH_KEY_BASE`], distinct per crowd) — viral objects that did not
//!   exist before the burst and are abandoned after it.
//! - **The clock** advances `1000 / rps` milliseconds per request, so TTL
//!   expiry pressure scales inversely with request rate.
//!
//! ```
//! use workloads::objects::ObjectTraffic;
//!
//! let traffic = ObjectTraffic::internet_default();
//! let a: Vec<_> = traffic.stream().take(3).collect();
//! let b: Vec<_> = traffic.stream().take(3).collect();
//! assert_eq!(a, b); // deterministic for a fixed config
//! ```

use crate::PowerLaw;
use simrng::{splitmix64, Rng, SimRng};

/// Keys at or above this value are flash-crowd (viral) objects; base-catalog
/// keys are `0..catalog`. Crowd `c` owns keys
/// `FLASH_KEY_BASE + c * flash_hot ..`.
pub const FLASH_KEY_BASE: u64 = 1 << 48;

/// One object-cache request.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ObjectRequest {
    /// Arrival time in milliseconds since trace start.
    pub now_ms: u64,
    /// Object identity.
    pub key: u64,
    /// Object size in bytes (a fixed function of `key`).
    pub size: u32,
    /// Time-to-live at (re-)insertion, in milliseconds (a fixed function of
    /// `key`).
    pub ttl_ms: u64,
}

/// Configuration for the object traffic generator. Equal configs produce
/// byte-identical streams.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ObjectTraffic {
    /// Number of distinct base-catalog objects.
    pub catalog: u64,
    /// Zipf exponent of the popularity distribution.
    pub skew: f64,
    /// Requests per second: the clock advances `1000 / rps` ms per request.
    pub rps: u64,
    /// Smallest object size, bytes (inclusive).
    pub min_size: u32,
    /// Largest object size, bytes (inclusive).
    pub max_size: u32,
    /// Shortest TTL, seconds (inclusive).
    pub min_ttl_s: u64,
    /// Longest TTL, seconds (inclusive).
    pub max_ttl_s: u64,
    /// Period between flash-crowd starts, in requests (0 disables crowds).
    pub flash_every: u64,
    /// Crowd duration, in requests (must be <= `flash_every`).
    pub flash_len: u64,
    /// Percentage of in-crowd requests diverted to the crowd's hot set.
    pub flash_share_pct: u32,
    /// Distinct viral objects per crowd.
    pub flash_hot: u64,
    /// Stream seed.
    pub seed: u64,
}

impl ObjectTraffic {
    /// The default internet-scale scenario: a 500k-object catalog two to
    /// three orders of magnitude larger than a typical cache budget, Zipf
    /// 0.9 (measured web popularity is 0.6–1.0), 10k requests/s, 1 KiB–1 MiB
    /// objects, TTLs from 2 s to 10 min (so a few-hundred-k-request trace
    /// actually exercises expiry), and a flash crowd in the last fifth of
    /// every 40k-request period.
    pub fn internet_default() -> Self {
        Self {
            catalog: 500_000,
            skew: 0.9,
            rps: 10_000,
            min_size: 1 << 10,
            max_size: 1 << 20,
            min_ttl_s: 2,
            max_ttl_s: 600,
            flash_every: 40_000,
            flash_len: 8_000,
            flash_share_pct: 60,
            flash_hot: 64,
            seed: 0xC0FF_EE00,
        }
    }

    fn validate(&self) {
        assert!(self.catalog > 0, "object traffic needs a non-empty catalog");
        assert!(self.rps > 0, "rps must be positive");
        assert!(self.min_size > 0 && self.min_size <= self.max_size, "bad size bounds");
        assert!(self.min_ttl_s > 0 && self.min_ttl_s <= self.max_ttl_s, "bad ttl bounds");
        assert!(self.flash_share_pct <= 100, "flash share is a percentage");
        if self.flash_every > 0 {
            assert!(self.flash_len <= self.flash_every, "flash_len exceeds flash_every");
            assert!(self.flash_hot > 0, "flash crowds need a non-empty hot set");
        }
    }

    /// Per-config salt for the key -> size hash.
    fn size_salt(&self) -> u64 {
        mix(self.seed ^ 0x5349_5A45_5349_5A45) // "SIZESIZE"
    }

    /// Per-config salt for the key -> TTL hash.
    fn ttl_salt(&self) -> u64 {
        mix(self.seed ^ 0x0054_544C_0054_544C) // "TTL TTL"
    }

    /// The byte size of object `key` — log-uniform in
    /// `[min_size, max_size]`, fixed per key.
    pub fn size_of(&self, key: u64) -> u32 {
        log_uniform(
            mix(key ^ self.size_salt()),
            self.min_size as u64,
            self.max_size as u64,
        ) as u32
    }

    /// The TTL of object `key` in milliseconds — log-uniform in
    /// `[min_ttl_s, max_ttl_s]` seconds, fixed per key.
    pub fn ttl_ms_of(&self, key: u64) -> u64 {
        log_uniform(mix(key ^ self.ttl_salt()), self.min_ttl_s, self.max_ttl_s) * 1000
    }

    /// Builds the deterministic request stream.
    pub fn stream(&self) -> ObjectStream {
        self.validate();
        ObjectStream {
            cfg: *self,
            zipf: PowerLaw::new(self.catalog, self.skew),
            flash_zipf: PowerLaw::new(self.flash_hot.max(1), 1.0),
            rng: SimRng::seed_from_u64(self.seed ^ 0x0B1E_C7CA_C4E5_7EAD),
            idx: 0,
        }
    }

    /// A compact, human-readable fingerprint of every field, used in sweep
    /// checkpoint keys so a changed traffic config never resurrects stale
    /// cells. The skew is fixed-point (per-mille) to keep the string exact.
    pub fn fingerprint(&self) -> String {
        format!(
            "obj|c{}|z{}|r{}|s{}-{}|t{}-{}|f{}/{}/{}/{}|x{:016x}",
            self.catalog,
            (self.skew * 1000.0).round() as u64,
            self.rps,
            self.min_size,
            self.max_size,
            self.min_ttl_s,
            self.max_ttl_s,
            self.flash_every,
            self.flash_len,
            self.flash_share_pct,
            self.flash_hot,
            self.seed,
        )
    }
}

/// One-shot SplitMix64 finalizer over a seed value.
fn mix(mut x: u64) -> u64 {
    splitmix64(&mut x)
}

/// Maps a 64-bit hash to a log-uniform integer in `[lo, hi]`.
fn log_uniform(hash: u64, lo: u64, hi: u64) -> u64 {
    debug_assert!(lo > 0 && lo <= hi);
    if lo == hi {
        return lo;
    }
    // Top 53 bits -> uniform in [0, 1).
    let u = (hash >> 11) as f64 * (1.0 / 9007199254740992.0);
    let v = (lo as f64) * ((hi as f64) / (lo as f64)).powf(u);
    (v as u64).clamp(lo, hi)
}

/// Infinite deterministic iterator over [`ObjectRequest`]s.
#[derive(Clone, Debug)]
pub struct ObjectStream {
    cfg: ObjectTraffic,
    zipf: PowerLaw,
    flash_zipf: PowerLaw,
    rng: SimRng,
    idx: u64,
}

impl ObjectStream {
    /// True if request index `idx` falls inside a flash-crowd phase (the
    /// last `flash_len` requests of each `flash_every`-request period).
    pub fn in_flash_phase(cfg: &ObjectTraffic, idx: u64) -> bool {
        cfg.flash_every > 0
            && cfg.flash_len > 0
            && idx % cfg.flash_every >= cfg.flash_every - cfg.flash_len
    }
}

impl Iterator for ObjectStream {
    type Item = ObjectRequest;

    fn next(&mut self) -> Option<ObjectRequest> {
        let cfg = &self.cfg;
        let idx = self.idx;
        self.idx += 1;
        let now_ms = idx * 1000 / cfg.rps;
        // One popularity draw per request; in a flash phase, one extra draw
        // decides whether the request joins the crowd.
        let key = if Self::in_flash_phase(cfg, idx)
            && self.rng.gen_range(0..100u64) < cfg.flash_share_pct as u64
        {
            let crowd = idx / cfg.flash_every;
            FLASH_KEY_BASE + crowd * cfg.flash_hot + self.flash_zipf.sample(&mut self.rng)
        } else {
            // Reuses the sampler's precomputed normalization via
            // `rank_of_unit` (see `PowerLaw::normalization`).
            let u: f64 = self.rng.gen_range(0.0..1.0);
            self.zipf.rank_of_unit(u)
        };
        Some(ObjectRequest {
            now_ms,
            key,
            size: cfg.size_of(key),
            ttl_ms: cfg.ttl_ms_of(key),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_is_deterministic() {
        let t = ObjectTraffic { catalog: 1000, flash_every: 100, flash_len: 20, ..ObjectTraffic::internet_default() };
        let a: Vec<_> = t.stream().take(500).collect();
        let b: Vec<_> = t.stream().take(500).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn sizes_and_ttls_are_key_stable() {
        let t = ObjectTraffic::internet_default();
        for r in t.stream().take(2000) {
            assert_eq!(r.size, t.size_of(r.key));
            assert_eq!(r.ttl_ms, t.ttl_ms_of(r.key));
        }
    }

    #[test]
    fn clock_tracks_rps() {
        let t = ObjectTraffic { rps: 1000, ..ObjectTraffic::internet_default() };
        let reqs: Vec<_> = t.stream().take(3000).collect();
        assert_eq!(reqs[0].now_ms, 0);
        assert_eq!(reqs[1000].now_ms, 1000);
        assert_eq!(reqs[2999].now_ms, 2999);
    }

    #[test]
    fn flash_keys_are_disjoint_from_catalog() {
        let t = ObjectTraffic { catalog: 100, flash_every: 50, flash_len: 25, flash_share_pct: 100, ..ObjectTraffic::internet_default() };
        let mut saw_flash = false;
        for (i, r) in t.stream().take(500).enumerate() {
            if r.key >= FLASH_KEY_BASE {
                saw_flash = true;
                assert!(ObjectStream::in_flash_phase(&t, i as u64));
            } else {
                assert!(r.key < t.catalog);
            }
        }
        assert!(saw_flash, "flash phases never produced a viral key");
    }
}
