//! Power-law (Zipf-like) rank sampling via continuous inverse-CDF
//! approximation.

use simrng::Rng;

/// Samples ranks in `0..n` with probability roughly proportional to
/// `1 / (rank + 1)^skew`.
///
/// Uses the continuous inverse-CDF approximation, which is accurate enough
/// for workload generation and requires O(1) state (no precomputed tables).
///
/// ```
/// use workloads::PowerLaw;
///
/// let zipf = PowerLaw::new(1024, 1.0);
/// let mut rng = simrng::SimRng::seed_from_u64(7);
/// let r = zipf.sample(&mut rng);
/// assert!(r < 1024);
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PowerLaw {
    n: u64,
    skew: f64,
    /// `1 - skew`, the exponent of the antiderivative of `x^-s`.
    one_minus_s: f64,
    /// `(n + 1)^(1 - skew)` — the CDF normalization constant. Computed once
    /// at construction; `sample` used to recompute it per call.
    top: f64,
    /// `1 / (1 - skew)`, the exponent applied when inverting the CDF.
    inv_one_minus_s: f64,
}

impl PowerLaw {
    /// Creates a sampler over `0..n` with the given skew.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `skew` is negative or non-finite.
    pub fn new(n: u64, skew: f64) -> Self {
        assert!(n > 0, "power law needs a non-empty domain");
        assert!(skew.is_finite() && skew >= 0.0, "skew must be finite and non-negative");
        // A skew of exactly 1.0 makes the closed-form CDF degenerate; nudge it.
        let skew = if (skew - 1.0).abs() < 1e-9 { 1.0 + 1e-6 } else { skew };
        // Same expressions (and therefore bit-identical results) as the ones
        // `sample` historically evaluated per call.
        let one_minus_s = 1.0 - skew;
        let top = (n as f64 + 1.0).powf(one_minus_s);
        let inv_one_minus_s = 1.0 / one_minus_s;
        Self { n, skew, one_minus_s, top, inv_one_minus_s }
    }

    /// Number of ranks in the domain.
    pub fn domain(&self) -> u64 {
        self.n
    }

    /// The CDF normalization constant `(n + 1)^(1 - skew)`, exposed so
    /// callers that map their own uniform variates (e.g. the object-traffic
    /// generator) can reuse it instead of recomputing the `powf` per draw.
    pub fn normalization(&self) -> f64 {
        self.top
    }

    /// Maps a uniform variate `u` in `[0, 1)` to a rank in `0..n` by
    /// inverting the CDF of the continuous density `x^-s` on `[1, n+1]`.
    ///
    /// This is the deterministic half of [`sample`](Self::sample): callers
    /// that manage their own RNG draws (the object generator shares one
    /// stream across several decision points) use this directly.
    pub fn rank_of_unit(&self, u: f64) -> u64 {
        if self.n == 1 || self.skew == 0.0 {
            // Uniform special case: a plain linear map.
            let rank = (u * self.n as f64) as u64;
            return rank.min(self.n - 1);
        }
        let x = (u * (self.top - 1.0) + 1.0).powf(self.inv_one_minus_s);
        let rank = (x as u64).saturating_sub(1);
        rank.min(self.n - 1)
    }

    /// Draws one rank in `0..n`; rank 0 is the most popular.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> u64 {
        if self.n == 1 {
            return 0;
        }
        if self.skew == 0.0 {
            return rng.gen_range(0..self.n);
        }
        let u: f64 = rng.gen_range(0.0..1.0);
        self.rank_of_unit(u)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simrng::SimRng;

    #[test]
    fn samples_stay_in_domain() {
        let p = PowerLaw::new(100, 1.2);
        let mut rng = SimRng::seed_from_u64(1);
        for _ in 0..10_000 {
            assert!(p.sample(&mut rng) < 100);
        }
    }

    #[test]
    fn rank_zero_is_most_popular() {
        let p = PowerLaw::new(1000, 1.0);
        let mut rng = SimRng::seed_from_u64(2);
        let mut counts = [0u32; 4];
        for _ in 0..100_000 {
            let r = p.sample(&mut rng);
            if (r as usize) < counts.len() {
                counts[r as usize] += 1;
            }
        }
        assert!(counts[0] > counts[1]);
        assert!(counts[1] > counts[3]);
    }

    #[test]
    fn zero_skew_is_roughly_uniform() {
        let p = PowerLaw::new(10, 0.0);
        let mut rng = SimRng::seed_from_u64(3);
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            counts[p.sample(&mut rng) as usize] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "uniform bucket out of range: {c}");
        }
    }

    #[test]
    fn singleton_domain() {
        let p = PowerLaw::new(1, 2.0);
        let mut rng = SimRng::seed_from_u64(4);
        assert_eq!(p.sample(&mut rng), 0);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_domain_panics() {
        let _ = PowerLaw::new(0, 1.0);
    }

    /// Regression pin for the normalization-precompute refactor: hoisting
    /// `top`/`1/(1-s)` into the constructor must not change a single sampled
    /// rank. These values were captured from the per-call implementation.
    #[test]
    fn pinned_ranks_for_fixed_seed() {
        let p = PowerLaw::new(100_000, 0.9);
        let mut rng = SimRng::seed_from_u64(0xD1CE_5EED);
        let got: Vec<u64> = (0..16).map(|_| p.sample(&mut rng)).collect();
        assert_eq!(got, PINNED_RANKS, "PowerLaw sampling drifted");
        let q = PowerLaw::new(100_000, 1.0); // exercises the skew==1 nudge
        let mut rng = SimRng::seed_from_u64(0xD1CE_5EED);
        let got: Vec<u64> = (0..8).map(|_| q.sample(&mut rng)).collect();
        assert_eq!(got, PINNED_RANKS_SKEW1, "PowerLaw skew-1 sampling drifted");
    }

    const PINNED_RANKS: [u64; 16] = [
        241, 349, 196, 74324, 0, 1160, 4499, 7683, 24414, 230, 784, 85, 0, 19081, 38524, 1,
    ];
    const PINNED_RANKS_SKEW1: [u64; 8] = [48, 68, 39, 61122, 0, 234, 1121, 2212];

    #[test]
    fn rank_of_unit_matches_sample_path() {
        // `sample` must be exactly `rank_of_unit` applied to the same draw.
        let p = PowerLaw::new(4096, 1.3);
        let mut a = SimRng::seed_from_u64(9);
        let mut b = SimRng::seed_from_u64(9);
        for _ in 0..1000 {
            let direct = p.sample(&mut a);
            let u: f64 = b.gen_range(0.0..1.0);
            assert_eq!(direct, p.rank_of_unit(u));
        }
    }

    #[test]
    fn normalization_is_the_cdf_constant() {
        let p = PowerLaw::new(1023, 0.8);
        assert_eq!(p.normalization(), 1024.0_f64.powf(1.0 - 0.8));
    }
}
