//! Power-law (Zipf-like) rank sampling via continuous inverse-CDF
//! approximation.

use simrng::Rng;

/// Samples ranks in `0..n` with probability roughly proportional to
/// `1 / (rank + 1)^skew`.
///
/// Uses the continuous inverse-CDF approximation, which is accurate enough
/// for workload generation and requires O(1) state (no precomputed tables).
///
/// ```
/// use workloads::PowerLaw;
///
/// let zipf = PowerLaw::new(1024, 1.0);
/// let mut rng = simrng::SimRng::seed_from_u64(7);
/// let r = zipf.sample(&mut rng);
/// assert!(r < 1024);
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PowerLaw {
    n: u64,
    skew: f64,
}

impl PowerLaw {
    /// Creates a sampler over `0..n` with the given skew.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `skew` is negative or non-finite.
    pub fn new(n: u64, skew: f64) -> Self {
        assert!(n > 0, "power law needs a non-empty domain");
        assert!(skew.is_finite() && skew >= 0.0, "skew must be finite and non-negative");
        // A skew of exactly 1.0 makes the closed-form CDF degenerate; nudge it.
        let skew = if (skew - 1.0).abs() < 1e-9 { 1.0 + 1e-6 } else { skew };
        Self { n, skew }
    }

    /// Number of ranks in the domain.
    pub fn domain(&self) -> u64 {
        self.n
    }

    /// Draws one rank in `0..n`; rank 0 is the most popular.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> u64 {
        if self.n == 1 {
            return 0;
        }
        if self.skew == 0.0 {
            return rng.gen_range(0..self.n);
        }
        let u: f64 = rng.gen_range(0.0..1.0);
        let s = self.skew;
        let n = self.n as f64;
        // Invert the CDF of the continuous density x^-s on [1, n+1].
        let one_minus_s = 1.0 - s;
        let top = (n + 1.0).powf(one_minus_s);
        let x = (u * (top - 1.0) + 1.0).powf(1.0 / one_minus_s);
        let rank = (x as u64).saturating_sub(1);
        rank.min(self.n - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simrng::SimRng;

    #[test]
    fn samples_stay_in_domain() {
        let p = PowerLaw::new(100, 1.2);
        let mut rng = SimRng::seed_from_u64(1);
        for _ in 0..10_000 {
            assert!(p.sample(&mut rng) < 100);
        }
    }

    #[test]
    fn rank_zero_is_most_popular() {
        let p = PowerLaw::new(1000, 1.0);
        let mut rng = SimRng::seed_from_u64(2);
        let mut counts = [0u32; 4];
        for _ in 0..100_000 {
            let r = p.sample(&mut rng);
            if (r as usize) < counts.len() {
                counts[r as usize] += 1;
            }
        }
        assert!(counts[0] > counts[1]);
        assert!(counts[1] > counts[3]);
    }

    #[test]
    fn zero_skew_is_roughly_uniform() {
        let p = PowerLaw::new(10, 0.0);
        let mut rng = SimRng::seed_from_u64(3);
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            counts[p.sample(&mut rng) as usize] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "uniform bucket out of range: {c}");
        }
    }

    #[test]
    fn singleton_domain() {
        let p = PowerLaw::new(1, 2.0);
        let mut rng = SimRng::seed_from_u64(4);
        assert_eq!(p.sample(&mut rng), 0);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_domain_panics() {
        let _ = PowerLaw::new(0, 1.0);
    }
}
