//! The unit of work consumed by the simulator: one memory instruction plus
//! the non-memory instructions leading up to it.

/// One memory operation in a workload's dynamic instruction stream.
///
/// A trace entry represents `leading` non-memory instructions followed by a
/// single load or store at `addr`, issued by the static instruction at `pc`.
/// The entry therefore accounts for `leading + 1` retired instructions.
///
/// ```
/// use workloads::TraceEntry;
///
/// let e = TraceEntry { leading: 3, pc: 0x40_0000, is_store: false, addr: 0x1000, dependent: false };
/// assert_eq!(e.instructions(), 4);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct TraceEntry {
    /// Non-memory instructions retired before this memory operation.
    pub leading: u32,
    /// Program counter (byte address) of the memory instruction.
    pub pc: u64,
    /// `true` for a store, `false` for a load.
    pub is_store: bool,
    /// Virtual byte address accessed by the memory operation.
    pub addr: u64,
    /// `true` when the address depends on the previous access's data
    /// (pointer chasing), which serializes cache misses in the core.
    pub dependent: bool,
}

impl TraceEntry {
    /// Total instructions this entry accounts for (`leading + 1`).
    pub fn instructions(&self) -> u64 {
        u64::from(self.leading) + 1
    }
}
