//! Tenant-mix generation for the multi-tenant LLC serving tier.
//!
//! A [`TenantMix`] names N tenants, each with a priority class
//! ([`TenantClass`]), a traffic source ([`TenantSource`]), and a traffic
//! rate. Sources cover the existing corpora: trace-corpus benchmarks
//! (materialized by the experiment harness from captured LLC traces),
//! object-cache traffic ([`ObjectTraffic`] with keys mapped to cache
//! lines), and two self-contained synthetic personalities (a cyclic
//! working-set loop and a polluting sequential scan) that keep the pinned
//! default mix deterministic and corpus-free.
//!
//! [`WeightedInterleave`] merges per-tenant streams into one access
//! sequence, picking the next tenant with a seeded draw proportional to
//! its rate — the same deterministic xoshiro generator every other
//! workload source uses, so a mix replays bit-identically for a fixed
//! seed.

use simrng::{Rng, SimRng};

use crate::objects::{ObjectStream, ObjectTraffic};

/// Lines an object-tenant request may touch at most (large objects are
/// clipped; the LLC-level effect of a multi-line object is a short burst).
const OBJECT_LINES_CAP: u64 = 4;

/// Service class of a tenant: decides its QoS weight and, in partitioned
/// mode, its share of the ways.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TenantClass {
    /// Latency-critical, highest weight.
    Gold,
    /// Standard service.
    Silver,
    /// Best-effort / batch.
    Bronze,
}

impl TenantClass {
    /// The class's weight in aggregate QoS metrics (and in proportional
    /// way partitioning).
    #[must_use]
    pub fn weight(self) -> u32 {
        match self {
            Self::Gold => 4,
            Self::Silver => 2,
            Self::Bronze => 1,
        }
    }

    /// Display name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Self::Gold => "gold",
            Self::Silver => "silver",
            Self::Bronze => "bronze",
        }
    }
}

/// Where a tenant's LLC traffic comes from.
#[derive(Clone, Debug, PartialEq)]
pub enum TenantSource {
    /// A trace-corpus benchmark (SPEC/CloudSuite name). Materialized by
    /// the experiment harness from a captured LLC trace; this crate only
    /// carries the name.
    Benchmark(String),
    /// Object-cache traffic, each request expanded to its object's first
    /// few cache lines.
    Objects(ObjectTraffic),
    /// A cyclic working set of `lines` cache lines — reuse-rich, the
    /// personality of a latency-critical serving tenant.
    Loop {
        /// Working-set size in cache lines.
        lines: u64,
    },
    /// An endless sequential scan — zero reuse, pure pollution.
    Scan,
}

impl TenantSource {
    /// Compact descriptor used in fingerprints.
    #[must_use]
    pub fn descriptor(&self) -> String {
        match self {
            Self::Benchmark(name) => format!("bench:{name}"),
            Self::Objects(t) => format!("objects:{}", t.fingerprint()),
            Self::Loop { lines } => format!("loop:{lines}"),
            Self::Scan => "scan".to_owned(),
        }
    }
}

/// One tenant of a mix.
#[derive(Clone, Debug, PartialEq)]
pub struct TenantSpec {
    /// Display name.
    pub name: String,
    /// Service class (QoS weight).
    pub class: TenantClass,
    /// Traffic source.
    pub source: TenantSource,
    /// Relative traffic rate in the interleave (independent of the class:
    /// a best-effort tenant can be the loudest).
    pub rate: u32,
}

/// A named, seeded tenant mix.
#[derive(Clone, Debug, PartialEq)]
pub struct TenantMix {
    /// Mix name (reports, checkpoint keys).
    pub name: String,
    /// The tenants, index = tenant id.
    pub tenants: Vec<TenantSpec>,
    /// Interleave seed.
    pub seed: u64,
}

impl TenantMix {
    /// The pinned default 3-class mix the acceptance tests and CI smoke
    /// run: a reuse-rich gold tenant (cyclic working set), a silver
    /// object-cache tenant, and a loud best-effort bronze scanner that
    /// pollutes an unmanaged LLC.
    #[must_use]
    pub fn default_three_class() -> Self {
        let mut objects = ObjectTraffic::internet_default();
        objects.catalog = 4096;
        objects.seed = 0x7e4a_11;
        Self {
            name: "default-3class".to_owned(),
            tenants: vec![
                TenantSpec {
                    name: "gold-serving".to_owned(),
                    class: TenantClass::Gold,
                    source: TenantSource::Loop { lines: 1536 },
                    rate: 2,
                },
                TenantSpec {
                    name: "silver-objects".to_owned(),
                    class: TenantClass::Silver,
                    source: TenantSource::Objects(objects),
                    rate: 1,
                },
                TenantSpec {
                    name: "bronze-scan".to_owned(),
                    class: TenantClass::Bronze,
                    source: TenantSource::Scan,
                    rate: 4,
                },
            ],
            seed: 0x3c1a_55,
        }
    }

    /// Per-tenant QoS weights (class weights, index = tenant id).
    #[must_use]
    pub fn weights(&self) -> Vec<u32> {
        self.tenants.iter().map(|t| t.class.weight()).collect()
    }

    /// Per-tenant traffic rates.
    #[must_use]
    pub fn rates(&self) -> Vec<u32> {
        self.tenants.iter().map(|t| t.rate).collect()
    }

    /// A compact, exact fingerprint of the whole mix, for checkpoint keys.
    #[must_use]
    pub fn fingerprint(&self) -> String {
        let tenants: Vec<String> = self
            .tenants
            .iter()
            .map(|t| format!("{}:{}:r{}:{}", t.name, t.class.name(), t.rate, t.source.descriptor()))
            .collect();
        format!("mix|{}|x{:016x}|{}", self.name, self.seed, tenants.join("|"))
    }
}

/// One LLC-level access of a tenant stream: a demand load of `line`
/// issued from `pc`. (Benchmark-backed tenants replay full record kinds
/// through the experiment harness; the synthetic sources here are demand
/// traffic.)
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TenantAccess {
    /// Program counter attributed to the access.
    pub pc: u64,
    /// Cache-line address (byte address >> 6).
    pub line: u64,
}

/// An endless synthetic tenant stream ([`TenantSource::Loop`],
/// [`TenantSource::Scan`], [`TenantSource::Objects`]).
pub enum SyntheticStream {
    /// Cyclic working set.
    Loop {
        /// Working-set size in lines.
        lines: u64,
        /// Next position.
        at: u64,
    },
    /// Sequential scan.
    Scan {
        /// Next line.
        at: u64,
    },
    /// Object requests expanded to line touches.
    Objects {
        /// The request stream.
        stream: ObjectStream,
        /// Remaining (line, count) burst of the current request.
        burst: (u64, u64),
        /// PC salt.
        pc: u64,
    },
}

impl Iterator for SyntheticStream {
    type Item = TenantAccess;

    fn next(&mut self) -> Option<TenantAccess> {
        match self {
            Self::Loop { lines, at } => {
                let line = *at % *lines;
                *at += 1;
                Some(TenantAccess { pc: 0x10_0000 + (line % 7), line })
            }
            Self::Scan { at } => {
                let line = *at;
                *at += 1;
                Some(TenantAccess { pc: 0x20_0000, line })
            }
            Self::Objects { stream, burst, pc } => {
                if burst.1 == 0 {
                    let req = stream.next()?;
                    let touched = (u64::from(req.size) / crate::LINE_BYTES + 1).min(OBJECT_LINES_CAP);
                    *burst = (req.key * OBJECT_LINES_CAP, touched);
                }
                let line = burst.0;
                burst.0 += 1;
                burst.1 -= 1;
                Some(TenantAccess { pc: *pc, line })
            }
        }
    }
}

impl TenantSource {
    /// Materializes the source as an endless [`TenantAccess`] stream, or
    /// `None` for [`TenantSource::Benchmark`] (which needs the trace
    /// corpus — the experiment harness supplies those streams).
    #[must_use]
    pub fn synthetic_stream(&self) -> Option<SyntheticStream> {
        match self {
            Self::Benchmark(_) => None,
            Self::Objects(traffic) => Some(SyntheticStream::Objects {
                stream: traffic.stream(),
                burst: (0, 0),
                pc: 0x30_0000,
            }),
            Self::Loop { lines } => Some(SyntheticStream::Loop { lines: (*lines).max(1), at: 0 }),
            Self::Scan => Some(SyntheticStream::Scan { at: 0 }),
        }
    }
}

/// Deterministic weighted interleaver: each step draws a tenant with
/// probability proportional to its rate and yields that tenant's next
/// item. Exhausted streams drop out of the draw; the iterator ends when
/// every stream has.
pub struct WeightedInterleave<I> {
    streams: Vec<Option<I>>,
    rates: Vec<u64>,
    rng: SimRng,
}

impl<I: Iterator> WeightedInterleave<I> {
    /// Creates the interleave over `streams` with per-stream `rates`.
    ///
    /// # Panics
    ///
    /// Panics when lengths disagree or every rate is zero.
    pub fn new(streams: Vec<I>, rates: &[u32], seed: u64) -> Self {
        assert_eq!(streams.len(), rates.len(), "one rate per stream");
        assert!(rates.iter().any(|&r| r > 0), "all rates are zero");
        Self {
            streams: streams.into_iter().map(Some).collect(),
            rates: rates.iter().map(|&r| u64::from(r)).collect(),
            rng: SimRng::seed_from_u64(seed ^ 0x7E9A_17C0_11A0_5EED),
        }
    }
}

impl<I: Iterator> Iterator for WeightedInterleave<I> {
    type Item = (usize, I::Item);

    fn next(&mut self) -> Option<(usize, I::Item)> {
        loop {
            let total: u64 = self
                .streams
                .iter()
                .zip(&self.rates)
                .filter(|(s, _)| s.is_some())
                .map(|(_, &r)| r)
                .sum();
            if total == 0 {
                return None;
            }
            let mut draw = self.rng.gen_range(0..total);
            let pick = self
                .streams
                .iter()
                .zip(&self.rates)
                .position(|(s, &r)| {
                    if s.is_none() {
                        return false;
                    }
                    if draw < r {
                        true
                    } else {
                        draw -= r;
                        false
                    }
                })
                .expect("total covers the live streams");
            match self.streams[pick].as_mut().and_then(Iterator::next) {
                Some(item) => return Some((pick, item)),
                // Stream just ended: retire it and redraw.
                None => self.streams[pick] = None,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_mix_is_pinned_and_fingerprint_stable() {
        let mix = TenantMix::default_three_class();
        assert_eq!(mix.tenants.len(), 3);
        assert_eq!(mix.weights(), vec![4, 2, 1]);
        assert_eq!(mix.fingerprint(), TenantMix::default_three_class().fingerprint());
        assert!(mix.fingerprint().contains("loop:1536"));
    }

    #[test]
    fn interleave_is_deterministic_and_rate_proportional() {
        let mk = || {
            WeightedInterleave::new(
                vec![
                    SyntheticStream::Scan { at: 0 },
                    SyntheticStream::Loop { lines: 8, at: 0 },
                ],
                &[3, 1],
                42,
            )
        };
        let a: Vec<(usize, TenantAccess)> = mk().take(4000).collect();
        let b: Vec<(usize, TenantAccess)> = mk().take(4000).collect();
        assert_eq!(a, b, "interleave replays bit-identically");
        let heavy = a.iter().filter(|(t, _)| *t == 0).count();
        assert!(
            (2700..=3300).contains(&heavy),
            "rate-3 stream got {heavy}/4000 draws, expected about 3000"
        );
    }

    #[test]
    fn interleave_ends_only_when_every_stream_does() {
        let finite: Vec<Vec<u32>> = vec![vec![1, 2], vec![10, 20, 30, 40]];
        let items: Vec<(usize, u32)> =
            WeightedInterleave::new(finite.into_iter().map(Vec::into_iter).collect(), &[1, 1], 7)
                .collect();
        assert_eq!(items.len(), 6, "every item of every stream is yielded");
    }

    #[test]
    fn synthetic_streams_have_their_personalities() {
        let mut lp = TenantSource::Loop { lines: 4 }.synthetic_stream().unwrap();
        let first8: Vec<u64> = (0..8).map(|_| lp.next().unwrap().line).collect();
        assert_eq!(first8, vec![0, 1, 2, 3, 0, 1, 2, 3], "loop wraps");

        let mut scan = TenantSource::Scan.synthetic_stream().unwrap();
        let lines: Vec<u64> = (0..4).map(|_| scan.next().unwrap().line).collect();
        assert_eq!(lines, vec![0, 1, 2, 3], "scan never revisits");

        let traffic = ObjectTraffic::internet_default();
        let mut obj = TenantSource::Objects(traffic).synthetic_stream().unwrap();
        assert!(obj.next().is_some());

        assert!(TenantSource::Benchmark("429.mcf".into()).synthetic_stream().is_none());
    }
}
