//! Workload: a named, seeded recipe that can be turned into a deterministic
//! access stream any number of times.

use simrng::{Rng, SimRng};

use crate::entry::TraceEntry;
use crate::pattern::{Alloc, Node};
use crate::recipe::Recipe;

/// A named, reproducible synthetic workload.
///
/// A workload pairs a [`Recipe`] with a seed and a default compute density.
/// Calling [`Workload::stream`] repeatedly yields identical streams, which is
/// what lets the harness compare replacement policies on exactly the same
/// access sequence.
///
/// ```
/// use workloads::{Recipe, Workload};
///
/// let wl = Workload::new("toy", Recipe::Chase { bytes: 1 << 16 })
///     .with_compute(2, 4)
///     .with_seed(7);
/// let a: Vec<_> = wl.stream().take(10).collect();
/// let b: Vec<_> = wl.stream().take(10).collect();
/// assert_eq!(a, b);
/// ```
#[derive(Clone, Debug)]
pub struct Workload {
    name: String,
    recipe: Recipe,
    leading: (u32, u32),
    local_ratio: f32,
    seed: u64,
}

impl Workload {
    /// Creates a workload with a default compute density of 2–6 non-memory
    /// instructions per access, a default local-access ratio of 0.65, and a
    /// seed derived from the name.
    pub fn new(name: impl Into<String>, recipe: Recipe) -> Self {
        let name = name.into();
        let seed = name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
            (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01B3)
        });
        Self { name, recipe, leading: (2, 6), local_ratio: 0.65, seed }
    }

    /// Sets the default compute density (leading instructions per access),
    /// sampled uniformly from `min..=max`.
    ///
    /// # Panics
    ///
    /// Panics if `min > max`.
    pub fn with_compute(mut self, min: u32, max: u32) -> Self {
        assert!(min <= max, "compute density range must have min <= max");
        self.leading = (min, max);
        self
    }

    /// Sets the fraction of accesses that go to a small, cache-resident
    /// "local" region (stack slots, locals, register spills). Real programs
    /// direct most of their memory traffic at such L1-resident data; the
    /// recipe's pattern only models the policy-relevant remainder.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= ratio < 1.0`.
    pub fn with_local(mut self, ratio: f32) -> Self {
        assert!((0.0..1.0).contains(&ratio), "local ratio must be in [0, 1)");
        self.local_ratio = ratio;
        self
    }

    /// Replaces the stream seed (streams from different seeds differ).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The workload's name (e.g. `"429.mcf"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The underlying recipe.
    pub fn recipe(&self) -> &Recipe {
        &self.recipe
    }

    /// The stream seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Builds the infinite, deterministic access stream.
    pub fn stream(&self) -> Stream {
        let mut build_rng = SimRng::seed_from_u64(self.seed);
        let mut alloc = Alloc::new();
        let root = Node::build(&self.recipe, &mut alloc, &mut build_rng);
        Stream {
            root,
            rng: SimRng::seed_from_u64(self.seed ^ 0xA5A5_A5A5_5A5A_5A5A),
            leading: self.leading,
            local_ratio: self.local_ratio,
            stack_pos: 0,
        }
    }
}

/// Base address of the synthetic stack/local region (disjoint from all data
/// regions, which grow upward from a much lower base).
const STACK_BASE: u64 = 0xF000_0000_0000;
/// Size of the stack/local region; comfortably L1-resident.
const STACK_BYTES: u64 = 16 << 10;
/// Program counter shared by local accesses.
const STACK_PC: u64 = 0x0030_0000;

/// An infinite iterator of [`TraceEntry`] values produced by a [`Workload`].
///
/// Obtained from [`Workload::stream`]; never returns `None`.
#[derive(Debug)]
pub struct Stream {
    root: Node,
    rng: SimRng,
    leading: (u32, u32),
    local_ratio: f32,
    stack_pos: u64,
}

impl Stream {
    fn sample_leading(&mut self) -> u32 {
        let (lo, hi) = self.leading;
        if lo == hi {
            lo
        } else {
            self.rng.gen_range(lo..=hi)
        }
    }
}

impl Iterator for Stream {
    type Item = TraceEntry;

    fn next(&mut self) -> Option<TraceEntry> {
        if self.local_ratio > 0.0 && self.rng.gen::<f32>() < self.local_ratio {
            // Local (stack) access: a short strided walk over an
            // L1-resident window, with frequent stores.
            self.stack_pos = (self.stack_pos + 8) % STACK_BYTES;
            let is_store = self.rng.gen::<f32>() < 0.4;
            let leading = self.sample_leading();
            return Some(TraceEntry {
                leading,
                pc: STACK_PC + u64::from(is_store) * 4,
                is_store,
                addr: STACK_BASE + self.stack_pos,
                dependent: false,
            });
        }
        let out = self.root.step(&mut self.rng);
        let leading = out.leading.unwrap_or_else(|| self.sample_leading());
        Some(TraceEntry {
            leading,
            pc: out.pc,
            is_store: out.is_store,
            addr: out.addr,
            dependent: out.dependent,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_reproducible() {
        let wl = Workload::new("repro", Recipe::Zipf { bytes: 1 << 18, skew: 1.0, store_ratio: 0.3 });
        let a: Vec<_> = wl.stream().take(500).collect();
        let b: Vec<_> = wl.stream().take(500).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let base = Workload::new("w", Recipe::Random { bytes: 1 << 20, store_ratio: 0.5 });
        let a: Vec<_> = base.clone().with_seed(1).stream().take(100).collect();
        let b: Vec<_> = base.with_seed(2).stream().take(100).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn default_compute_density_in_range() {
        let wl = Workload::new("d", Recipe::Chase { bytes: 4096 }).with_compute(3, 5);
        for e in wl.stream().take(200) {
            assert!((3..=5).contains(&e.leading));
        }
    }

    #[test]
    fn name_derived_seed_is_stable() {
        let a = Workload::new("429.mcf", Recipe::Chase { bytes: 4096 });
        let b = Workload::new("429.mcf", Recipe::Chase { bytes: 4096 });
        assert_eq!(a.seed(), b.seed());
        let c = Workload::new("470.lbm", Recipe::Chase { bytes: 4096 });
        assert_ne!(a.seed(), c.seed());
    }
}
