//! Multi-programmed workload mixes for the 4-core evaluation.

use simrng::{Rng, SimRng};

use crate::spec::{spec2006, SPEC2006};
use crate::workload::Workload;

/// A multi-programmed mix: one workload per core.
///
/// ```
/// let mixes = workloads::random_spec_mixes(2, 4, 99);
/// assert_eq!(mixes.len(), 2);
/// assert_eq!(mixes[0].workloads().len(), 4);
/// ```
#[derive(Clone, Debug)]
pub struct WorkloadMix {
    name: String,
    workloads: Vec<Workload>,
}

impl WorkloadMix {
    /// Creates a named mix from per-core workloads.
    ///
    /// # Panics
    ///
    /// Panics if `workloads` is empty.
    pub fn new(name: impl Into<String>, workloads: Vec<Workload>) -> Self {
        assert!(!workloads.is_empty(), "a mix needs at least one workload");
        Self { name: name.into(), workloads }
    }

    /// The mix's name (e.g. `"mix017"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Per-core workloads, index = core id.
    pub fn workloads(&self) -> &[Workload] {
        &self.workloads
    }
}

/// Generates `count` random multi-programmed mixes of `cores` SPEC CPU 2006
/// benchmarks each, mirroring the paper's "100 random sets of four
/// benchmarks from the 29 applications".
///
/// Sampling is with replacement across mixes and without replacement within
/// a mix, and fully determined by `seed`.
pub fn random_spec_mixes(count: usize, cores: usize, seed: u64) -> Vec<WorkloadMix> {
    assert!(cores > 0 && cores <= SPEC2006.len(), "invalid core count");
    let mut rng = SimRng::seed_from_u64(seed);
    (0..count)
        .map(|i| {
            let mut chosen: Vec<&str> = Vec::with_capacity(cores);
            while chosen.len() < cores {
                let candidate = SPEC2006[rng.gen_range(0..SPEC2006.len())];
                if !chosen.contains(&candidate) {
                    chosen.push(candidate);
                }
            }
            let workloads = chosen
                .iter()
                .map(|name| spec2006(name).expect("SPEC2006 names all have recipes"))
                .collect();
            WorkloadMix::new(format!("mix{i:03}"), workloads)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mixes_are_deterministic() {
        let a = random_spec_mixes(5, 4, 7);
        let b = random_spec_mixes(5, 4, 7);
        for (x, y) in a.iter().zip(&b) {
            let xn: Vec<_> = x.workloads().iter().map(Workload::name).collect();
            let yn: Vec<_> = y.workloads().iter().map(Workload::name).collect();
            assert_eq!(xn, yn);
        }
    }

    #[test]
    fn no_duplicates_within_a_mix() {
        for mix in random_spec_mixes(20, 4, 3) {
            let names: Vec<_> = mix.workloads().iter().map(Workload::name).collect();
            let mut unique = names.clone();
            unique.sort_unstable();
            unique.dedup();
            assert_eq!(unique.len(), names.len(), "duplicate in {}", mix.name());
        }
    }

    #[test]
    #[should_panic(expected = "at least one workload")]
    fn empty_mix_panics() {
        let _ = WorkloadMix::new("empty", Vec::new());
    }
}
