//! CloudSuite workload analogues.
//!
//! Scale-out cloud services are characterized by large instruction
//! footprints (modelled with [`crate::Recipe::CodeWalk`]), data working sets far
//! beyond the LLC with mild skew, and many concurrent request streams.

use crate::recipe::Recipe;
use crate::workload::Workload;

const KB: u64 = 1 << 10;
const MB: u64 = 1 << 20;

/// The five CloudSuite benchmarks evaluated in Figure 11 of the paper.
pub const CLOUDSUITE: [&str; 5] =
    ["cassandra", "classification", "cloud9", "nutch", "streaming"];

/// Builds the synthetic analogue of a CloudSuite benchmark, or `None` if the
/// name is unknown.
///
/// ```
/// let wl = workloads::cloudsuite("cassandra").unwrap();
/// assert_eq!(wl.name(), "cassandra");
/// ```
pub fn cloudsuite(name: &str) -> Option<Workload> {
    let (recipe, compute): (Recipe, (u32, u32)) = match name {
        // NoSQL data store: memtable/SSTable references over a huge skewed
        // key space, with compaction scans and a big code footprint.
        "cassandra" => (
            Recipe::CodeWalk {
                bytes: 6 * MB,
                inner: Box::new(Recipe::Mix(vec![
                    (3, Recipe::Zipf { bytes: 32 * MB, skew: 0.95, store_ratio: 0.25 }),
                    (2, Recipe::Cyclic { bytes: 3 * MB, stride: 64, store_ratio: 0.2 }),
                    (1, Recipe::Cyclic { bytes: 8 * MB, stride: 64, store_ratio: 0.1 }),
                    (1, Recipe::Zipf { bytes: 256 * KB, skew: 1.1, store_ratio: 0.3 }),
                ])),
            },
            (4, 8),
        ),
        // Data analytics (Mahout classification): streaming passes over the
        // training corpus with a hot model working set.
        "classification" => (
            Recipe::CodeWalk {
                bytes: 2 * MB,
                inner: Box::new(Recipe::Mix(vec![
                    (3, Recipe::Cyclic { bytes: 24 * MB, stride: 64, store_ratio: 0.05 }),
                    (2, Recipe::Zipf { bytes: 4 * MB, skew: 0.8, store_ratio: 0.2 }),
                ])),
            },
            (3, 7),
        ),
        // Cloud9 web search ranking: posting-list walks plus scoring
        // structures, large code footprint.
        "cloud9" => (
            Recipe::CodeWalk {
                bytes: 8 * MB,
                inner: Box::new(Recipe::Mix(vec![
                    (3, Recipe::Cyclic { bytes: 3 * MB, stride: 64, store_ratio: 0.15 }),
                    (2, Recipe::Zipf { bytes: 16 * MB, skew: 0.8, store_ratio: 0.15 }),
                    (1, Recipe::Chase { bytes: 2 * MB }),
                ])),
            },
            (4, 9),
        ),
        // Nutch web crawler/indexer: skewed URL/link tables and sequential
        // segment writes.
        "nutch" => (
            Recipe::CodeWalk {
                bytes: 6 * MB,
                inner: Box::new(Recipe::Mix(vec![
                    (3, Recipe::Zipf { bytes: 24 * MB, skew: 1.1, store_ratio: 0.3 }),
                    (2, Recipe::Cyclic { bytes: 2800 * KB, stride: 64, store_ratio: 0.4 }),
                    (1, Recipe::Cyclic { bytes: 4 * MB, stride: 64, store_ratio: 0.5 }),
                ])),
            },
            (4, 8),
        ),
        // Media streaming: overwhelmingly sequential content delivery with a
        // small hot metadata set.
        "streaming" => (
            Recipe::CodeWalk {
                bytes: 3 * MB,
                inner: Box::new(Recipe::Mix(vec![
                    (5, Recipe::Cyclic { bytes: 48 * MB, stride: 64, store_ratio: 0.05 }),
                    (1, Recipe::Zipf { bytes: MB, skew: 1.0, store_ratio: 0.2 }),
                ])),
            },
            (2, 5),
        ),
        _ => return None,
    };
    // Cloud services spend much of their time in framework code over
    // L1-resident state; see `Workload::with_local`.
    let local = match name {
        "streaming" => 0.78,
        "classification" => 0.76,
        _ => 0.72,
    };
    Some(Workload::new(name, recipe).with_compute(compute.0, compute.1).with_local(local))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_cloudsuite_benchmarks_build() {
        for name in CLOUDSUITE {
            let wl = cloudsuite(name).unwrap_or_else(|| panic!("missing recipe for {name}"));
            assert_eq!(wl.name(), name);
            assert_eq!(wl.stream().take(100).count(), 100);
        }
    }

    #[test]
    fn cloud_workloads_have_code_footprints() {
        for name in CLOUDSUITE {
            let wl = cloudsuite(name).unwrap();
            assert!(
                matches!(wl.recipe(), Recipe::CodeWalk { .. }),
                "{name} must model a large instruction footprint"
            );
        }
    }

    #[test]
    fn unknown_name_is_none() {
        assert!(cloudsuite("memcached").is_none());
    }
}
