//! Workload characterization: measure a stream's memory personality.
//!
//! These are the axes the synthetic recipes are tuned on (footprint, reuse
//! profile, store ratio, compute density), so this module both validates
//! the recipes against their intended personalities and lets downstream
//! users understand a workload before simulating it.

use std::collections::HashMap;

use crate::workload::Workload;

/// Reuse-distance histogram buckets (in distinct-access gaps, line
/// granularity): `<64`, `<4K` (L1-class), `<64K` (L2/LLC-class), `>=64K`,
/// and never-reused.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ReuseBuckets {
    /// Reuse gap below 64 accesses (register/L1 class).
    pub under_64: u64,
    /// Gap in `64..4096` (L1/L2 class).
    pub under_4k: u64,
    /// Gap in `4096..65536` (LLC class).
    pub under_64k: u64,
    /// Gap of 65536 or more (memory class).
    pub over_64k: u64,
}

/// Measured personality of a workload sample.
#[derive(Clone, Debug, PartialEq)]
pub struct Characterization {
    /// Entries sampled.
    pub entries: u64,
    /// Distinct 64-byte lines touched.
    pub unique_lines: u64,
    /// Fraction of memory operations that are stores.
    pub store_ratio: f64,
    /// Mean non-memory instructions per memory operation.
    pub mean_leading: f64,
    /// Fraction of serially-dependent (pointer-chase) accesses.
    pub dependent_ratio: f64,
    /// Line-reuse gap distribution.
    pub reuse: ReuseBuckets,
    /// Accesses to a line seen before (any gap).
    pub reused: u64,
}

impl Characterization {
    /// Measures the first `entries` entries of the workload's stream.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is zero.
    pub fn measure(workload: &Workload, entries: u64) -> Self {
        assert!(entries > 0, "need a non-empty sample");
        let mut last_touch: HashMap<u64, u64> = HashMap::new();
        let mut stores = 0u64;
        let mut leading = 0u64;
        let mut dependent = 0u64;
        let mut reuse = ReuseBuckets::default();
        let mut reused = 0u64;

        for (i, e) in workload.stream().take(entries as usize).enumerate() {
            let line = e.addr >> 6;
            stores += u64::from(e.is_store);
            dependent += u64::from(e.dependent);
            leading += u64::from(e.leading);
            if let Some(&prev) = last_touch.get(&line) {
                reused += 1;
                match i as u64 - prev {
                    0..=63 => reuse.under_64 += 1,
                    64..=4095 => reuse.under_4k += 1,
                    4096..=65535 => reuse.under_64k += 1,
                    _ => reuse.over_64k += 1,
                }
            }
            last_touch.insert(line, i as u64);
        }
        Self {
            entries,
            unique_lines: last_touch.len() as u64,
            store_ratio: stores as f64 / entries as f64,
            mean_leading: leading as f64 / entries as f64,
            dependent_ratio: dependent as f64 / entries as f64,
            reuse,
            reused,
        }
    }

    /// Approximate data footprint in bytes (unique lines × 64).
    pub fn footprint_bytes(&self) -> u64 {
        self.unique_lines * 64
    }

    /// Fraction of accesses that re-touch a previously seen line.
    pub fn reuse_ratio(&self) -> f64 {
        self.reused as f64 / self.entries as f64
    }
}

impl std::fmt::Display for Characterization {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "entries          {}", self.entries)?;
        writeln!(
            f,
            "footprint        {:.2} MB ({} lines)",
            self.footprint_bytes() as f64 / (1 << 20) as f64,
            self.unique_lines
        )?;
        writeln!(f, "store ratio      {:.1}%", self.store_ratio * 100.0)?;
        writeln!(f, "compute density  {:.1} instr/access", self.mean_leading)?;
        writeln!(f, "dependent        {:.1}%", self.dependent_ratio * 100.0)?;
        writeln!(f, "reuse ratio      {:.1}%", self.reuse_ratio() * 100.0)?;
        let total = self.reused.max(1) as f64;
        write!(
            f,
            "reuse gaps       <64: {:.0}%  <4K: {:.0}%  <64K: {:.0}%  >=64K: {:.0}%",
            self.reuse.under_64 as f64 * 100.0 / total,
            self.reuse.under_4k as f64 * 100.0 / total,
            self.reuse.under_64k as f64 * 100.0 / total,
            self.reuse.over_64k as f64 * 100.0 / total,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recipe::Recipe;

    #[test]
    fn cyclic_scan_has_periodic_reuse() {
        // 64 KB cyclic scan = 1024 lines, re-touched every 1024 accesses.
        let wl = Workload::new("c", Recipe::Cyclic { bytes: 64 << 10, stride: 64, store_ratio: 0.0 })
            .with_local(0.0);
        let c = Characterization::measure(&wl, 5_000);
        assert_eq!(c.unique_lines, 1024);
        assert!(c.reuse_ratio() > 0.7, "after one lap everything is reuse");
        assert!(c.reuse.under_4k > c.reuse.under_64, "gap is exactly 1024 accesses");
    }

    #[test]
    fn random_junk_never_reuses() {
        let wl = Workload::new("r", Recipe::Random { bytes: 512 << 20, store_ratio: 0.5 })
            .with_local(0.0);
        let c = Characterization::measure(&wl, 5_000);
        assert!(c.reuse_ratio() < 0.01, "512 MB uniform random barely reuses");
        assert!((c.store_ratio - 0.5).abs() < 0.05);
    }

    #[test]
    fn chase_is_fully_dependent() {
        let wl = Workload::new("ch", Recipe::Chase { bytes: 1 << 20 }).with_local(0.0);
        let c = Characterization::measure(&wl, 2_000);
        assert!(c.dependent_ratio > 0.99);
    }

    #[test]
    fn local_traffic_shrinks_the_measured_pattern_share() {
        let base = Workload::new("l", Recipe::Random { bytes: 64 << 20, store_ratio: 0.0 });
        let with_local = Characterization::measure(&base.clone().with_local(0.8), 4_000);
        let without = Characterization::measure(&base.with_local(0.0), 4_000);
        assert!(with_local.unique_lines < without.unique_lines / 2);
    }

    #[test]
    fn display_mentions_footprint() {
        let wl = Workload::new("d", Recipe::Chase { bytes: 1 << 16 });
        let c = Characterization::measure(&wl, 500);
        let text = c.to_string();
        assert!(text.contains("footprint"));
        assert!(text.contains("reuse gaps"));
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn zero_sample_panics() {
        let wl = Workload::new("z", Recipe::Chase { bytes: 1 << 16 });
        let _ = Characterization::measure(&wl, 0);
    }
}
