//! Declarative descriptions of memory access behaviour.
//!
//! A [`Recipe`] is a cloneable, inspectable tree describing *what* a workload
//! does to memory; building a [`crate::Workload`] compiles it into the
//! mutable state machines in [`crate::pattern`] that actually emit accesses.

/// A composable description of a memory access pattern.
///
/// Leaf variants describe primitive behaviours over a private data region
/// (regions are laid out automatically and never overlap). Combinators mix,
/// phase, and interleave children, or override instruction-side properties.
///
/// ```
/// use workloads::{Recipe, Workload};
///
/// // Two-thirds pointer chasing over 8 MB, one-third hot Zipf references.
/// let recipe = Recipe::Mix(vec![
///     (2, Recipe::Chase { bytes: 8 << 20 }),
///     (1, Recipe::Zipf { bytes: 1 << 20, skew: 1.0, store_ratio: 0.1 }),
/// ]);
/// let wl = Workload::new("example", recipe);
/// assert!(wl.stream().take(100).count() == 100);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub enum Recipe {
    /// Cyclically walk a `bytes`-sized region with the given stride,
    /// wrapping at the end. A region larger than the cache produces pure
    /// streaming; slightly larger produces classic LRU-thrashing scans.
    Cyclic {
        /// Size of the region walked.
        bytes: u64,
        /// Byte distance between consecutive accesses.
        stride: u64,
        /// Fraction of accesses that are stores.
        store_ratio: f32,
    },
    /// Zipf-distributed references over the lines of a region
    /// (`skew` 0 = uniform; around 1 = classic hot/cold split).
    Zipf {
        /// Size of the region referenced.
        bytes: u64,
        /// Power-law skew of line popularity.
        skew: f64,
        /// Fraction of accesses that are stores.
        store_ratio: f32,
    },
    /// Uniform random line references over a region (GUPS-like).
    Random {
        /// Size of the region referenced.
        bytes: u64,
        /// Fraction of accesses that are stores.
        store_ratio: f32,
    },
    /// Serial pointer chase through a fixed pseudo-random single-cycle
    /// permutation of the region's lines. Defeats stride prefetchers and has
    /// a reuse distance equal to the full footprint.
    Chase {
        /// Size of the chased region; one node per 64-byte line.
        bytes: u64,
    },
    /// Three-point stencil sweep: for each element, read the previous row,
    /// read the current element, write the result. Row reuse distance is
    /// `row_bytes`; the whole grid is swept cyclically.
    Stencil {
        /// Number of rows in the grid.
        rows: u32,
        /// Size of one row.
        row_bytes: u64,
    },
    /// Weighted mixture: each access comes from one child, chosen with
    /// probability proportional to its weight.
    Mix(Vec<(u32, Recipe)>),
    /// Program phases: run each child for its entry count, then move to the
    /// next child, cycling forever.
    Phased(Vec<(u64, Recipe)>),
    /// Round-robin interleaving of children, modelling concurrent streams.
    Interleave(Vec<Recipe>),
    /// Override the compute density (non-memory instructions per access,
    /// sampled uniformly from `min..=max`) for the subtree.
    Compute {
        /// Minimum leading instructions per access.
        min: u32,
        /// Maximum leading instructions per access.
        max: u32,
        /// The pattern whose compute density is overridden.
        inner: Box<Recipe>,
    },
    /// Replace the subtree's per-site program counters with a sequential
    /// walk over a large code region, modelling applications whose
    /// instruction footprint itself pressures the cache hierarchy
    /// (CloudSuite-style).
    CodeWalk {
        /// Size of the code region walked by the program counter.
        bytes: u64,
        /// The pattern executed by that code.
        inner: Box<Recipe>,
    },
}

impl Recipe {
    /// Total data bytes touched by the recipe (sum over leaves).
    ///
    /// ```
    /// use workloads::Recipe;
    /// let r = Recipe::Mix(vec![
    ///     (1, Recipe::Chase { bytes: 1024 }),
    ///     (1, Recipe::Random { bytes: 2048, store_ratio: 0.0 }),
    /// ]);
    /// assert_eq!(r.data_footprint(), 3072);
    /// ```
    pub fn data_footprint(&self) -> u64 {
        match self {
            Recipe::Cyclic { bytes, .. }
            | Recipe::Zipf { bytes, .. }
            | Recipe::Random { bytes, .. }
            | Recipe::Chase { bytes } => *bytes,
            Recipe::Stencil { rows, row_bytes } => u64::from(*rows) * row_bytes,
            Recipe::Mix(children) => children.iter().map(|(_, c)| c.data_footprint()).sum(),
            Recipe::Phased(children) => children.iter().map(|(_, c)| c.data_footprint()).sum(),
            Recipe::Interleave(children) => children.iter().map(Recipe::data_footprint).sum(),
            Recipe::Compute { inner, .. } | Recipe::CodeWalk { inner, .. } => {
                inner.data_footprint()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn footprint_sums_nested_children() {
        let r = Recipe::Phased(vec![
            (10, Recipe::Cyclic { bytes: 100, stride: 64, store_ratio: 0.0 }),
            (
                10,
                Recipe::CodeWalk {
                    bytes: 4096,
                    inner: Box::new(Recipe::Zipf { bytes: 50, skew: 1.0, store_ratio: 0.0 }),
                },
            ),
        ]);
        assert_eq!(r.data_footprint(), 150);
    }

    #[test]
    fn stencil_footprint_is_grid_size() {
        let r = Recipe::Stencil { rows: 4, row_bytes: 256 };
        assert_eq!(r.data_footprint(), 1024);
    }
}
