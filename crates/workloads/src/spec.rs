//! SPEC CPU 2006 workload analogues.
//!
//! Each recipe encodes the benchmark's published memory personality —
//! footprint relative to a 2 MB LLC, reuse profile, store ratio, compute
//! density — so that replacement-policy *rankings* transfer even though the
//! instruction streams are synthetic. Footprints and behaviours follow the
//! standard characterization literature (memory-intensity groupings used by
//! the CRC2 / DPC-3 communities).

use crate::recipe::Recipe;
use crate::workload::Workload;

const KB: u64 = 1 << 10;
const MB: u64 = 1 << 20;

/// The 29 SPEC CPU 2006 benchmarks evaluated in Figure 10 of the paper.
pub const SPEC2006: [&str; 29] = [
    "473.astar",
    "410.bwaves",
    "401.bzip2",
    "436.cactusADM",
    "454.calculix",
    "447.dealII",
    "416.gamess",
    "403.gcc",
    "459.GemsFDTD",
    "445.gobmk",
    "435.gromacs",
    "464.h264ref",
    "456.hmmer",
    "470.lbm",
    "437.leslie3d",
    "462.libquantum",
    "429.mcf",
    "433.milc",
    "444.namd",
    "471.omnetpp",
    "400.perlbench",
    "453.povray",
    "458.sjeng",
    "450.soplex",
    "482.sphinx3",
    "465.tonto",
    "481.wrf",
    "483.xalancbmk",
    "434.zeusmp",
];

/// The eight benchmarks the paper used to train the RL agent and to drive
/// the insight figures (Figs. 1, 3–7): those with a large Belady-vs-LRU gap.
pub const TRAINING_SET: [&str; 8] = [
    "459.GemsFDTD",
    "403.gcc",
    "429.mcf",
    "450.soplex",
    "470.lbm",
    "437.leslie3d",
    "471.omnetpp",
    "483.xalancbmk",
];

/// Builds the synthetic analogue of a SPEC CPU 2006 benchmark, or `None` if
/// the name is unknown.
///
/// ```
/// let wl = workloads::spec2006("450.soplex").unwrap();
/// assert_eq!(wl.name(), "450.soplex");
/// ```
pub fn spec2006(name: &str) -> Option<Workload> {
    let (recipe, compute): (Recipe, (u32, u32)) = match name {
        // Path-finding over a grid: pointer chasing through a medium-large
        // graph plus a hot open-list, in alternating search phases.
        "473.astar" => (
            Recipe::Phased(vec![
                (12_000, Recipe::Mix(vec![
                    (3, Recipe::Chase { bytes: 12 * MB }),
                    (1, Recipe::Zipf { bytes: MB, skew: 1.0, store_ratio: 0.2 }),
                ])),
                (6_000, Recipe::Zipf { bytes: 2 * MB, skew: 0.8, store_ratio: 0.3 }),
            ]),
            (3, 7),
        ),
        // Blast-wave CFD: several huge sequential streams, negligible reuse.
        "410.bwaves" => (
            Recipe::Interleave(vec![
                Recipe::Cyclic { bytes: 40 * MB, stride: 64, store_ratio: 0.2 },
                Recipe::Cyclic { bytes: 40 * MB, stride: 64, store_ratio: 0.4 },
                Recipe::Cyclic { bytes: 20 * MB, stride: 128, store_ratio: 0.1 },
            ]),
            (2, 5),
        ),
        // Compression: alternating sequential scans of the input and a
        // near-L2-sized dictionary working set.
        "401.bzip2" => (
            Recipe::Phased(vec![
                (10_000, Recipe::Cyclic { bytes: 4 * MB, stride: 64, store_ratio: 0.3 }),
                (10_000, Recipe::Zipf { bytes: 900 * KB, skew: 0.7, store_ratio: 0.4 }),
            ]),
            (4, 9),
        ),
        // Numerical relativity solver: stencil sweeps interleaved with a
        // grid working set slightly exceeding the LLC — classic thrash
        // where LRU keeps nothing.
        "436.cactusADM" => (
            Recipe::Interleave(vec![
                Recipe::Stencil { rows: 256, row_bytes: 16 * KB },
                Recipe::Cyclic { bytes: 3 * MB, stride: 192, store_ratio: 0.3 },
                Recipe::Zipf { bytes: 2 * MB, skew: 0.5, store_ratio: 0.2 },
            ]),
            (3, 6),
        ),
        // FE solver dominated by compute; modest hot matrices plus a
        // streaming factorization pass.
        "454.calculix" => (
            Recipe::Mix(vec![
                (3, Recipe::Zipf { bytes: 512 * KB, skew: 0.9, store_ratio: 0.3 }),
                (1, Recipe::Cyclic { bytes: 4 * MB, stride: 64, store_ratio: 0.2 }),
            ]),
            (8, 16),
        ),
        // Adaptive FE library: medium hot set plus pointer-heavy mesh walks.
        "447.dealII" => (
            Recipe::Mix(vec![
                (2, Recipe::Zipf { bytes: 1536 * KB, skew: 1.0, store_ratio: 0.25 }),
                (1, Recipe::Chase { bytes: 512 * KB }),
            ]),
            (5, 10),
        ),
        // Quantum chemistry: tiny working set, almost everything hits in L1/L2.
        "416.gamess" => (
            Recipe::Zipf { bytes: 128 * KB, skew: 0.8, store_ratio: 0.3 },
            (10, 20),
        ),
        // Compiler: strongly phased behaviour over several distinct footprints.
        "403.gcc" => (
            Recipe::Phased(vec![
                (8_000, Recipe::Zipf { bytes: MB, skew: 1.0, store_ratio: 0.3 }),
                (8_000, Recipe::Cyclic { bytes: 3 * MB, stride: 64, store_ratio: 0.2 }),
                (8_000, Recipe::Cyclic { bytes: 6 * MB, stride: 64, store_ratio: 0.35 }),
                (8_000, Recipe::Zipf { bytes: 256 * KB, skew: 0.9, store_ratio: 0.4 }),
            ]),
            (4, 8),
        ),
        // FDTD solver: six interleaved field arrays with long-period reuse;
        // prefetch-friendly, prefetched lines reused quickly.
        "459.GemsFDTD" => (
            Recipe::Interleave(vec![
                Recipe::Cyclic { bytes: 8 * MB, stride: 64, store_ratio: 0.0 },
                Recipe::Cyclic { bytes: 8 * MB, stride: 64, store_ratio: 0.0 },
                Recipe::Cyclic { bytes: 8 * MB, stride: 64, store_ratio: 0.5 },
                Recipe::Stencil { rows: 96, row_bytes: 16 * KB },
            ]),
            (2, 5),
        ),
        // Go engine: branchy search over medium board-state tables.
        "445.gobmk" => (
            Recipe::Mix(vec![
                (3, Recipe::Zipf { bytes: 640 * KB, skew: 0.8, store_ratio: 0.3 }),
                (1, Recipe::Chase { bytes: 256 * KB }),
            ]),
            (6, 12),
        ),
        // MD simulation with compact neighbour lists.
        "435.gromacs" => (
            Recipe::Mix(vec![
                (3, Recipe::Zipf { bytes: 384 * KB, skew: 0.8, store_ratio: 0.3 }),
                (1, Recipe::Cyclic { bytes: MB, stride: 64, store_ratio: 0.1 }),
            ]),
            (7, 14),
        ),
        // Video encoder: frame buffers cycled within the LLC plus hot tables.
        "464.h264ref" => (
            Recipe::Mix(vec![
                (2, Recipe::Cyclic { bytes: 1536 * KB, stride: 64, store_ratio: 0.25 }),
                (1, Recipe::Zipf { bytes: 128 * KB, skew: 0.9, store_ratio: 0.3 }),
            ]),
            (5, 10),
        ),
        // Profile HMM search: hot score table plus sequential database scan.
        "456.hmmer" => (
            Recipe::Mix(vec![
                (4, Recipe::Zipf { bytes: 256 * KB, skew: 0.9, store_ratio: 0.4 }),
                (1, Recipe::Cyclic { bytes: MB, stride: 64, store_ratio: 0.0 }),
            ]),
            (6, 11),
        ),
        // Lattice Boltzmann: pure streaming with heavy stores; no temporal
        // reuse at the LLC, so early eviction of prefetched lines wins.
        "470.lbm" => (
            Recipe::Interleave(vec![
                Recipe::Cyclic { bytes: 26 * MB, stride: 64, store_ratio: 0.1 },
                Recipe::Cyclic { bytes: 26 * MB, stride: 64, store_ratio: 0.8 },
            ]),
            (1, 4),
        ),
        // CFD with several medium streams whose lines are reused shortly
        // after being prefetched.
        "437.leslie3d" => (
            Recipe::Interleave(vec![
                Recipe::Cyclic { bytes: 6 * MB, stride: 64, store_ratio: 0.2 },
                Recipe::Cyclic { bytes: 6 * MB, stride: 64, store_ratio: 0.2 },
                Recipe::Stencil { rows: 128, row_bytes: 8 * KB },
            ]),
            (2, 5),
        ),
        // Quantum simulation: one very long vector swept repeatedly.
        "462.libquantum" => (
            Recipe::Cyclic { bytes: 32 * MB, stride: 64, store_ratio: 0.25 },
            (2, 4),
        ),
        // Network simplex: enormous pointer-chased arcs plus skewed node
        // references; the canonical memory-bound benchmark.
        "429.mcf" => (
            Recipe::Mix(vec![
                (2, Recipe::Chase { bytes: 48 * MB }),
                (1, Recipe::Zipf { bytes: 24 * MB, skew: 0.75, store_ratio: 0.25 }),
            ]),
            (1, 3),
        ),
        // Lattice QCD: large streaming arrays with modest reuse.
        "433.milc" => (
            Recipe::Interleave(vec![
                Recipe::Cyclic { bytes: 16 * MB, stride: 64, store_ratio: 0.3 },
                Recipe::Zipf { bytes: 4 * MB, skew: 0.6, store_ratio: 0.2 },
            ]),
            (2, 5),
        ),
        // MD kernel with small per-patch working sets.
        "444.namd" => (
            Recipe::Zipf { bytes: 768 * KB, skew: 0.8, store_ratio: 0.3 },
            (8, 15),
        ),
        // Discrete-event simulator: big skewed event/message heap plus
        // pointer chasing; large gap between LRU and smart policies.
        "471.omnetpp" => (
            Recipe::Mix(vec![
                (5, Recipe::Cyclic { bytes: 3 * MB, stride: 64, store_ratio: 0.3 }),
                (1, Recipe::Zipf { bytes: 256 * KB, skew: 1.1, store_ratio: 0.3 }),
                (2, Recipe::Random { bytes: 20 * MB, store_ratio: 0.3 }),
                (1, Recipe::Chase { bytes: 4 * MB }),
            ]),
            (2, 5),
        ),
        // Interpreter: hot bytecode/hash structures, small footprint.
        "400.perlbench" => (
            Recipe::Mix(vec![
                (3, Recipe::Zipf { bytes: 700 * KB, skew: 1.1, store_ratio: 0.35 }),
                (1, Recipe::Chase { bytes: 256 * KB }),
            ]),
            (5, 10),
        ),
        // Ray tracer: tiny hot scene data, compute bound.
        "453.povray" => (
            Recipe::Zipf { bytes: 200 * KB, skew: 0.9, store_ratio: 0.2 },
            (10, 18),
        ),
        // Chess engine: near-uniform transposition-table lookups.
        "458.sjeng" => (
            Recipe::Zipf { bytes: 1800 * KB, skew: 0.4, store_ratio: 0.3 },
            (6, 12),
        ),
        // LP solver: matrix sweeps a bit larger than the LLC alternating
        // with a skewed basis working set — the benchmark where scan
        // protection pays off most.
        "450.soplex" => (
            Recipe::Phased(vec![
                (14_000, Recipe::Cyclic { bytes: 3500 * KB, stride: 64, store_ratio: 0.15 }),
                (7_000, Recipe::Zipf { bytes: MB, skew: 0.9, store_ratio: 0.3 }),
            ]),
            (2, 5),
        ),
        // Speech recognition: acoustic-model scans just above LLC capacity.
        "482.sphinx3" => (
            Recipe::Mix(vec![
                (3, Recipe::Cyclic { bytes: 2500 * KB, stride: 64, store_ratio: 0.05 }),
                (1, Recipe::Zipf { bytes: 512 * KB, skew: 0.9, store_ratio: 0.2 }),
            ]),
            (3, 6),
        ),
        // Quantum chemistry: small working set, compute heavy.
        "465.tonto" => (
            Recipe::Zipf { bytes: 512 * KB, skew: 0.9, store_ratio: 0.3 },
            (8, 16),
        ),
        // Weather model: several medium streams plus stencil reuse.
        "481.wrf" => (
            Recipe::Interleave(vec![
                Recipe::Cyclic { bytes: 4 * MB, stride: 64, store_ratio: 0.25 },
                Recipe::Cyclic { bytes: 4 * MB, stride: 64, store_ratio: 0.25 },
                Recipe::Stencil { rows: 64, row_bytes: 8 * KB },
            ]),
            (3, 7),
        ),
        // XSLT processor: large skewed DOM plus pointer chasing, with a
        // non-trivial instruction footprint.
        "483.xalancbmk" => (
            Recipe::CodeWalk {
                bytes: MB,
                inner: Box::new(Recipe::Mix(vec![
                    (4, Recipe::Cyclic { bytes: 2800 * KB, stride: 64, store_ratio: 0.1 }),
                    (1, Recipe::Zipf { bytes: 224 * KB, skew: 1.1, store_ratio: 0.2 }),
                    (2, Recipe::Random { bytes: 8 * MB, store_ratio: 0.15 }),
                    (1, Recipe::Chase { bytes: MB }),
                ])),
            },
            (3, 6),
        ),
        // Astrophysics CFD: large stencil grid swept repeatedly.
        "434.zeusmp" => (
            Recipe::Interleave(vec![
                Recipe::Stencil { rows: 512, row_bytes: 16 * KB },
                Recipe::Cyclic { bytes: 4 * MB, stride: 64, store_ratio: 0.3 },
            ]),
            (3, 6),
        ),
        _ => return None,
    };
    // Fraction of accesses hitting the L1-resident local/stack region;
    // higher values thin out the policy-relevant traffic, calibrating each
    // benchmark's LLC demand MPKI toward its published magnitude.
    let local = match name {
        "429.mcf" => 0.88,
        "471.omnetpp" => 0.80,
        "470.lbm" => 0.76,
        "462.libquantum" => 0.78,
        "410.bwaves" => 0.78,
        "433.milc" => 0.78,
        "459.GemsFDTD" => 0.74,
        "437.leslie3d" => 0.74,
        "483.xalancbmk" => 0.80,
        "473.astar" => 0.80,
        "403.gcc" => 0.80,
        "401.bzip2" => 0.78,
        "436.cactusADM" => 0.74,
        "482.sphinx3" => 0.74,
        "450.soplex" => 0.70,
        "434.zeusmp" => 0.72,
        "481.wrf" => 0.72,
        _ => 0.65,
    };
    Some(Workload::new(name, recipe).with_compute(compute.0, compute.1).with_local(local))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_29_benchmarks_build() {
        for name in SPEC2006 {
            let wl = spec2006(name).unwrap_or_else(|| panic!("missing recipe for {name}"));
            assert_eq!(wl.name(), name);
            assert_eq!(wl.stream().take(100).count(), 100);
        }
    }

    #[test]
    fn training_set_is_subset_of_spec() {
        for name in TRAINING_SET {
            assert!(SPEC2006.contains(&name), "{name} not in SPEC2006");
        }
    }

    #[test]
    fn unknown_name_is_none() {
        assert!(spec2006("999.nothing").is_none());
    }

    #[test]
    fn memory_bound_recipes_have_large_footprints() {
        // The canonical memory-bound benchmarks must dwarf the 2 MB LLC.
        for name in ["429.mcf", "470.lbm", "462.libquantum", "410.bwaves"] {
            let wl = spec2006(name).unwrap();
            assert!(
                wl.recipe().data_footprint() > 16 << 20,
                "{name} footprint too small to be memory-bound"
            );
        }
    }

    #[test]
    fn cache_friendly_recipes_fit_in_llc() {
        for name in ["416.gamess", "453.povray", "444.namd", "465.tonto"] {
            let wl = spec2006(name).unwrap();
            assert!(
                wl.recipe().data_footprint() < 2 << 20,
                "{name} footprint too large to be cache friendly"
            );
        }
    }
}
