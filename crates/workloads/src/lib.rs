//! Synthetic workload generators standing in for the SPEC CPU 2006 and
//! CloudSuite traces used by the RLR paper (HPCA 2021).
//!
//! The original evaluation replays proprietary SimPoint traces through
//! ChampSim. Those traces are not redistributable, so this crate builds the
//! closest synthetic equivalents: each benchmark is modeled as a composition
//! of memory access *pattern primitives* (streams, cyclic working sets,
//! Zipf-distributed references, pointer chases, stencils) whose parameters
//! are tuned to the benchmark's published memory personality. The
//! personalities — footprint size relative to the LLC, reuse-distance
//! profile, store ratio, compute density, instruction footprint — are
//! exactly the axes along which replacement policies differentiate, which is
//! what makes the substitution sound for reproducing the paper's *relative*
//! results (who wins, by roughly what factor).
//!
//! # Quick start
//!
//! ```
//! use workloads::{spec2006, TraceEntry};
//!
//! let workload = spec2006("429.mcf").expect("known benchmark");
//! let first: Vec<TraceEntry> = workload.stream().take(4).collect();
//! assert_eq!(first.len(), 4);
//! // Streams are deterministic for a fixed workload seed.
//! let again: Vec<TraceEntry> = workload.stream().take(4).collect();
//! assert_eq!(first, again);
//! ```

mod characterize;
mod cloud;
mod entry;
mod mix;
pub mod objects;
mod pattern;
mod power_law;
mod recipe;
mod record;
mod spec;
pub mod tenants;
mod workload;

pub use characterize::{Characterization, ReuseBuckets};
pub use cloud::{cloudsuite, CLOUDSUITE};
pub use entry::TraceEntry;
pub use mix::{random_spec_mixes, WorkloadMix};
pub use objects::{ObjectRequest, ObjectStream, ObjectTraffic};
pub use power_law::PowerLaw;
pub use record::RecordedTrace;
pub use recipe::Recipe;
pub use spec::{spec2006, SPEC2006, TRAINING_SET};
pub use tenants::{
    SyntheticStream, TenantAccess, TenantClass, TenantMix, TenantSource, TenantSpec,
    WeightedInterleave,
};
pub use workload::{Stream, Workload};

/// Line size, in bytes, assumed by all generators (matches the simulated
/// caches).
pub const LINE_BYTES: u64 = 64;

/// Looks up a workload by name in both the SPEC 2006 and CloudSuite suites.
///
/// ```
/// assert!(workloads::by_name("470.lbm").is_some());
/// assert!(workloads::by_name("cassandra").is_some());
/// assert!(workloads::by_name("no-such-benchmark").is_none());
/// ```
pub fn by_name(name: &str) -> Option<Workload> {
    spec2006(name).or_else(|| cloudsuite(name))
}
