//! The seed (pre-optimization) RLR implementation, frozen verbatim as a
//! differential oracle and benchmark baseline.
//!
//! [`SeedRlrPolicy`] is the policy exactly as it stood before the
//! hot-path overhaul: three parallel metadata arrays (`hit_count`,
//! `last_prefetch`, `last_demand`) where [`crate::RlrPolicy`] now packs
//! one [`crate::packed::LineMeta`] byte per line, and a victim scan that
//! recomputes each line's age three times where the packed policy
//! computes it once. The `seed_equivalence` test drives both policies
//! through identical caches and requires identical decisions; the
//! `hotpath`/`ci_smoke` benches measure the rewrite's speedup against it.
//! It is deliberately not maintained for speed; any behavioural change to
//! [`crate::RlrPolicy`] must be mirrored here first (and justified).

use cache_sim::{Access, AccessKind, CacheConfig, Decision, LineSnapshot, ReplacementPolicy};

use crate::config::{AgeUnit, RecencyMode, RlrConfig};

/// Saturation bound of the per-core demand-hit counters (12-bit, §IV-D).
const CORE_HIT_MAX: u32 = (1 << 12) - 1;

/// Reinforcement Learned Replacement.
///
/// See the [crate-level documentation](crate) for the algorithm. Construct
/// with [`SeedRlrPolicy::optimized`], [`SeedRlrPolicy::unoptimized`],
/// [`SeedRlrPolicy::multicore`], or [`SeedRlrPolicy::with_config`] for ablations.
#[derive(Clone, Debug)]
pub struct SeedRlrPolicy {
    config: RlrConfig,
    ways: u16,
    /// Per-set access clock (unoptimized age unit + exact recency).
    access_clock: Vec<u64>,
    /// Per-set miss counter (optimized age unit).
    miss_count: Vec<u64>,
    /// Per-line: access-clock stamp at last touch.
    access_stamp: Vec<u64>,
    /// Per-line: miss-epoch stamp at last touch.
    epoch_stamp: Vec<u64>,
    /// Per-line: hits since insertion (saturating at the configured width).
    hit_count: Vec<u8>,
    /// Per-line: last access was a prefetch.
    last_prefetch: Vec<bool>,
    /// Per-line: last access was a demand access (for the RD filter).
    last_demand: Vec<bool>,
    /// Predicted reuse distance (age units).
    rd: u64,
    /// Preuse-distance accumulator over the current demand-hit window.
    preuse_accum: u64,
    /// Demand hits in the current window.
    window_hits: u32,
    /// LLC accesses since the last RD update (stale-RD escape).
    accesses_since_rd_update: u64,
    /// Per-core demand-hit counters (multicore extension).
    core_hits: Vec<u32>,
    /// Per-core priority levels from the last re-ranking.
    core_priority: Vec<u32>,
    /// Total LLC accesses (drives core-priority re-ranking).
    accesses: u64,
}

impl SeedRlrPolicy {
    /// The paper's final 16.75 KB design.
    pub fn optimized(cache: &CacheConfig) -> Self {
        Self::with_config(RlrConfig::optimized(), cache)
    }

    /// `RLR(unopt)`: the pre-optimization design.
    pub fn unoptimized(cache: &CacheConfig) -> Self {
        Self::with_config(RlrConfig::unoptimized(), cache)
    }

    /// The multicore extension for `cores` cores.
    pub fn multicore(cores: u8, cache: &CacheConfig) -> Self {
        Self::with_config(RlrConfig::multicore(cores), cache)
    }

    /// Builds RLR with an explicit configuration (used by the ablations).
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`RlrConfig::validate`].
    pub fn with_config(config: RlrConfig, cache: &CacheConfig) -> Self {
        config.validate();
        let lines = cache.lines() as usize;
        let cores = usize::from(config.core_priority_cores);
        Self {
            ways: cache.ways,
            access_clock: vec![0; cache.sets as usize],
            miss_count: vec![0; cache.sets as usize],
            access_stamp: vec![0; lines],
            epoch_stamp: vec![0; lines],
            hit_count: vec![0; lines],
            last_prefetch: vec![false; lines],
            last_demand: vec![false; lines],
            // Start fully protective: until the estimator has observed real
            // preuse distances, every line stays inside RD and victim
            // selection falls to the (anti-thrash) recency tie-break.
            rd: config.max_age(),
            preuse_accum: 0,
            window_hits: 0,
            accesses_since_rd_update: 0,
            core_hits: vec![0; cores],
            core_priority: vec![0; cores],
            accesses: 0,
            config,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &RlrConfig {
        &self.config
    }

    /// The current predicted reuse distance (in age units).
    pub fn predicted_reuse_distance(&self) -> u64 {
        self.rd
    }

    fn idx(&self, set: u32, way: u16) -> usize {
        set as usize * self.ways as usize + way as usize
    }

    fn current_epoch(&self, set: u32) -> u64 {
        match self.config.age_unit {
            AgeUnit::SetAccesses => 0,
            AgeUnit::MissEpochs { misses_per_epoch } => {
                self.miss_count[set as usize] / u64::from(misses_per_epoch)
            }
        }
    }

    /// The line's age in the configured unit, saturated to the counter
    /// width.
    fn age(&self, set: u32, way: u16) -> u64 {
        let i = self.idx(set, way);
        let raw = match self.config.age_unit {
            AgeUnit::SetAccesses => self.access_clock[set as usize] - self.access_stamp[i],
            AgeUnit::MissEpochs { .. } => self.current_epoch(set) - self.epoch_stamp[i],
        };
        raw.min(self.config.max_age())
    }

    /// Stamps a line as just-touched.
    fn touch(&mut self, set: u32, way: u16) {
        let epoch = self.current_epoch(set);
        let i = self.idx(set, way);
        self.access_stamp[i] = self.access_clock[set as usize];
        self.epoch_stamp[i] = epoch;
    }

    /// LLC accesses tolerated without an RD update before the estimate is
    /// considered stale. A workload phase that produces no demand hits
    /// (pure thrash) would otherwise freeze RD at a value from the
    /// previous phase and lock the policy into LRU-like churn.
    const RD_STALE_LIMIT: u64 = 2048;

    fn record_access(&mut self) {
        self.accesses += 1;
        if !self.core_hits.is_empty() && self.accesses.is_multiple_of(self.config.core_update_period) {
            self.rerank_cores();
        }
        self.accesses_since_rd_update += 1;
        if self.accesses_since_rd_update > Self::RD_STALE_LIMIT {
            // Stale-RD escape: fall back to full protection so the recency
            // tie-break (which pins an old subset) can re-establish hits.
            self.rd = self.config.max_age();
            self.accesses_since_rd_update = 0;
        }
    }

    /// Assigns priority levels by demand-hit frequency: the core with the
    /// most demand hits gets the highest level (§IV-D).
    fn rerank_cores(&mut self) {
        let mut order: Vec<usize> = (0..self.core_hits.len()).collect();
        order.sort_by_key(|&c| std::cmp::Reverse(self.core_hits[c]));
        for (rank, &core) in order.iter().enumerate() {
            self.core_priority[core] = (self.core_hits.len() - 1 - rank) as u32;
        }
        // Decay so the ranking follows phases.
        for h in &mut self.core_hits {
            *h /= 2;
        }
    }

    /// The per-line priority `8·P_age + P_type + P_hit + P_core`.
    fn priority(&self, set: u32, way: u16, line: &LineSnapshot) -> u32 {
        let i = self.idx(set, way);
        let p_age = u32::from(self.age(set, way) <= self.rd) * self.config.age_weight;
        let p_type = u32::from(self.config.use_type_priority && !self.last_prefetch[i]);
        let p_hit = u32::from(self.config.use_hit_priority && self.hit_count[i] > 0);
        let p_core = self
            .core_priority
            .get(usize::from(line.core))
            .copied()
            .unwrap_or(0);
        p_age + p_type + p_hit + p_core
    }

    /// Tie-break key: larger = evicted first among equal priorities
    /// (the *most recently* accessed line goes, then the lowest way).
    fn recency_key(&self, set: u32, way: u16) -> u64 {
        match self.config.recency {
            RecencyMode::Exact => self.access_stamp[self.idx(set, way)],
            RecencyMode::AgeApprox => u64::MAX - self.age(set, way),
        }
    }
}

impl ReplacementPolicy for SeedRlrPolicy {
    fn name(&self) -> String {
        match (self.config == RlrConfig::optimized(), self.config == RlrConfig::unoptimized()) {
            (true, _) => "RLR".to_owned(),
            (_, true) => "RLR(unopt)".to_owned(),
            _ if self.config.core_priority_cores > 0 => "RLR-MC".to_owned(),
            _ => "RLR(custom)".to_owned(),
        }
    }

    fn on_miss(&mut self, set: u32, _access: &Access) {
        self.access_clock[set as usize] += 1;
        self.miss_count[set as usize] += 1;
        self.record_access();
    }

    fn select_victim(&mut self, set: u32, lines: &[LineSnapshot], _access: &Access) -> Decision {
        let mut best: Option<(u32, u64, u16)> = None;
        let mut any_past_rd = false;
        for (w, line) in lines.iter().enumerate() {
            let way = w as u16;
            let p = self.priority(set, way, line);
            let rec = self.recency_key(set, way);
            if self.age(set, way) > self.rd {
                any_past_rd = true;
            }
            // Strict comparisons keep the lowest way index on full ties.
            let better = match best {
                None => true,
                Some((bp, brec, _)) => p < bp || (p == bp && rec > brec),
            };
            if better {
                best = Some((p, rec, way));
            }
        }
        if self.config.bypass && !any_past_rd {
            return Decision::Bypass;
        }
        let (_, _, way) = best.expect("non-empty set");
        Decision::Evict(way)
    }

    fn on_hit(&mut self, set: u32, way: u16, access: &Access) {
        // The line's age at the moment of the hit is its preuse distance
        // (the hit itself does not count toward it).
        let preuse = self.age(set, way);
        self.access_clock[set as usize] += 1;
        self.record_access();

        // On a demand hit, feed the RD estimator (Fig. 9's accumulator) —
        // unless the line's previous touch was a prefetch or writeback, in
        // which case `preuse` measures prefetch timeliness or an L2
        // round-trip, not reuse.
        let i = self.idx(set, way);
        let counts_for_rd =
            !self.config.rd_ignores_non_demand_preuse || self.last_demand[i];
        if access.kind.is_demand() {
            if counts_for_rd {
                self.preuse_accum += preuse;
                self.window_hits += 1;
            }
            if self.window_hits == self.config.demand_hit_window {
                let avg =
                    self.preuse_accum as f64 / f64::from(self.config.demand_hit_window);
                // Round to nearest: with coarse (epoch) age units, truncation
                // would collapse sub-unit averages to RD = 0 and disable the
                // age protection entirely. Hardware: add half before the
                // shift.
                self.rd = (avg * self.config.rd_multiplier).round() as u64;
                self.preuse_accum = 0;
                self.window_hits = 0;
                self.accesses_since_rd_update = 0;
            }
            if let Some(h) = self.core_hits.get_mut(usize::from(access.core)) {
                *h = (*h + 1).min(CORE_HIT_MAX);
            }
        }

        let hit_max = (1u32 << self.config.hit_bits) - 1;
        self.hit_count[i] = (u32::from(self.hit_count[i]) + 1).min(hit_max) as u8;
        self.last_prefetch[i] = access.kind == AccessKind::Prefetch;
        self.last_demand[i] = access.kind.is_demand();
        self.touch(set, way);
    }

    fn on_fill(&mut self, set: u32, way: u16, access: &Access) {
        let i = self.idx(set, way);
        self.hit_count[i] = 0;
        self.last_prefetch[i] = access.kind == AccessKind::Prefetch;
        self.last_demand[i] = access.kind.is_demand();
        self.touch(set, way);
    }

    fn overhead_bits(&self, config: &CacheConfig) -> u64 {
        let mut per_line = u64::from(self.config.age_bits) + u64::from(self.config.hit_bits);
        if self.config.use_type_priority {
            per_line += 1;
        }
        if self.config.recency == RecencyMode::Exact {
            per_line += u64::from(config.way_bits());
        }
        let mut bits = config.lines() * per_line;
        if let AgeUnit::MissEpochs { misses_per_epoch } = self.config.age_unit {
            bits += u64::from(config.sets) * u64::from(misses_per_epoch.trailing_zeros());
        }
        // Per-core demand-hit counters, 12 bits each (§IV-D).
        bits += u64::from(self.config.core_priority_cores) * 12;
        bits
    }
}

