//! RLR configuration: every design choice the paper makes (and ablates) is
//! a knob here.

/// What the per-line age counter counts.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AgeUnit {
    /// Count every set access (the unoptimized design).
    SetAccesses,
    /// Count epochs of `misses_per_epoch` set misses, via a small per-set
    /// counter (the optimized design; the paper uses 8 misses per epoch
    /// tracked by a 3-bit counter).
    MissEpochs {
        /// Set misses per age increment (must be a power of two).
        misses_per_epoch: u32,
    },
}

/// How recency is obtained for tie-breaking.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum RecencyMode {
    /// Exact access order, `log2(ways)` bits per line.
    Exact,
    /// The paper's optimization: the most recently accessed line is the one
    /// with age 0; among equal ages, the lowest way index is evicted.
    AgeApprox,
}

/// Full configuration of an [`crate::RlrPolicy`].
///
/// ```
/// use rlr::RlrConfig;
///
/// let opt = RlrConfig::optimized();
/// assert_eq!(opt.age_bits, 2);
/// let unopt = RlrConfig::unoptimized();
/// assert_eq!(unopt.age_bits, 5);
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RlrConfig {
    /// Width of the per-line age counter (saturating).
    pub age_bits: u32,
    /// What one age tick means.
    pub age_unit: AgeUnit,
    /// Width of the per-line hit counter (1 = hit register).
    pub hit_bits: u32,
    /// Include the hit priority `P_hit` (ablation: §V-B).
    pub use_hit_priority: bool,
    /// Include the type priority `P_type` (ablation: §V-B).
    pub use_type_priority: bool,
    /// Weight of the age priority in the weighted sum (paper: 8, a 3-bit
    /// left shift).
    pub age_weight: u32,
    /// RD is `rd_multiplier ×` the windowed average preuse distance
    /// (paper: 2.0).
    pub rd_multiplier: f64,
    /// Demand hits per RD update window (paper: 32; power of two so the
    /// average is a shift).
    pub demand_hit_window: u32,
    /// Exclude demand hits whose line was last touched by a prefetch or a
    /// writeback from the RD accumulator. Such touches reset the line's age
    /// just before the demand re-reference, so the measured gap reflects
    /// prefetch timeliness or an L2 round-trip rather than a reuse
    /// distance, and would drag RD far below the real reuse distances. The
    /// needed "last touch was a demand" bit is derivable from the type
    /// register plus the hit register's update rule, so this costs no extra
    /// per-line state.
    pub rd_ignores_non_demand_preuse: bool,
    /// Recency tie-breaking mode.
    pub recency: RecencyMode,
    /// Request bypass when no line has aged past RD (needs cache support).
    pub bypass: bool,
    /// Enable the multicore `P_core` term for this many cores (0 = off).
    pub core_priority_cores: u8,
    /// LLC accesses between core-priority re-rankings (paper: 2000).
    pub core_update_period: u64,
}

impl RlrConfig {
    /// The paper's final hardware design (§IV-C): 16.75 KB on a 2 MB LLC.
    pub fn optimized() -> Self {
        Self {
            age_bits: 2,
            age_unit: AgeUnit::MissEpochs { misses_per_epoch: 8 },
            hit_bits: 1,
            use_hit_priority: true,
            use_type_priority: true,
            age_weight: 8,
            rd_multiplier: 2.0,
            demand_hit_window: 32,
            rd_ignores_non_demand_preuse: true,
            recency: RecencyMode::AgeApprox,
            bypass: false,
            core_priority_cores: 0,
            core_update_period: 2000,
        }
    }

    /// `RLR(unopt)`: the pre-optimization design (§V-B): 5-bit ages in set
    /// accesses, a 2-bit hit counter, and exact recency.
    pub fn unoptimized() -> Self {
        Self {
            age_bits: 5,
            age_unit: AgeUnit::SetAccesses,
            hit_bits: 2,
            recency: RecencyMode::Exact,
            ..Self::optimized()
        }
    }

    /// The multicore extension (§IV-D) on top of the optimized design.
    pub fn multicore(cores: u8) -> Self {
        Self { core_priority_cores: cores, ..Self::optimized() }
    }

    /// Largest representable age.
    pub fn max_age(&self) -> u64 {
        (1 << self.age_bits) - 1
    }

    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics if a window or epoch size is not a positive power of two, or
    /// if widths are zero.
    pub fn validate(&self) {
        assert!(self.age_bits > 0 && self.age_bits <= 16, "age counter width out of range");
        assert!(
            self.hit_bits > 0 && self.hit_bits <= crate::packed::LineMeta::MAX_HIT_BITS,
            "hit counter width out of range (packed layout holds at most 6 bits)"
        );
        assert!(
            self.demand_hit_window.is_power_of_two(),
            "demand-hit window must be a power of two (hardware shift)"
        );
        assert!(self.rd_multiplier > 0.0, "RD multiplier must be positive");
        // The victim scan packs the total priority into a 10-bit key
        // field; the worst case is age_weight + type + hit + top core rank.
        assert!(
            self.age_weight + 2 + u32::from(self.core_priority_cores.saturating_sub(1)) <= 1023,
            "maximum line priority must fit the victim key's 10-bit field"
        );
        if let AgeUnit::MissEpochs { misses_per_epoch } = self.age_unit {
            assert!(
                misses_per_epoch.is_power_of_two() && misses_per_epoch > 0,
                "misses per epoch must be a positive power of two"
            );
        }
    }
}

impl Default for RlrConfig {
    fn default() -> Self {
        Self::optimized()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        RlrConfig::optimized().validate();
        RlrConfig::unoptimized().validate();
        RlrConfig::multicore(4).validate();
    }

    #[test]
    fn optimized_matches_paper_parameters() {
        let c = RlrConfig::optimized();
        assert_eq!(c.age_bits, 2);
        assert_eq!(c.hit_bits, 1);
        assert_eq!(c.age_weight, 8);
        assert_eq!(c.demand_hit_window, 32);
        assert_eq!(c.rd_multiplier, 2.0);
        assert_eq!(c.age_unit, AgeUnit::MissEpochs { misses_per_epoch: 8 });
        assert_eq!(c.recency, RecencyMode::AgeApprox);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_window_panics() {
        let mut c = RlrConfig::optimized();
        c.demand_hit_window = 33;
        c.validate();
    }

    #[test]
    #[should_panic(expected = "hit counter width")]
    fn hit_counter_wider_than_packed_layout_panics() {
        let mut c = RlrConfig::optimized();
        c.hit_bits = 7;
        c.validate();
    }

    #[test]
    fn max_age_tracks_width() {
        assert_eq!(RlrConfig::optimized().max_age(), 3);
        assert_eq!(RlrConfig::unoptimized().max_age(), 31);
    }
}
