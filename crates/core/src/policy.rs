//! The RLR replacement policy (paper §IV).

use cache_sim::{Access, AccessKind, CacheConfig, Decision, LineSnapshot, ReplacementPolicy};

use crate::config::{AgeUnit, RecencyMode, RlrConfig};
use crate::packed::LineMeta;
use crate::scan::{self, ScanParams, ScanWays};

/// Saturation bound of the per-core demand-hit counters (12-bit, §IV-D).
const CORE_HIT_MAX: u32 = (1 << 12) - 1;

/// Reinforcement Learned Replacement.
///
/// See the [crate-level documentation](crate) for the algorithm. Construct
/// with [`RlrPolicy::optimized`], [`RlrPolicy::unoptimized`],
/// [`RlrPolicy::multicore`], or [`RlrPolicy::with_config`] for ablations.
#[derive(Clone, Debug)]
pub struct RlrPolicy {
    config: RlrConfig,
    ways: u16,
    /// `log2(misses_per_epoch)` — epochs derive from the per-set miss
    /// counter with a shift (the width is validated to be a power of
    /// two); 0 when ages count set accesses.
    epoch_shift: u32,
    /// Per-set access clock (unoptimized age unit + exact recency).
    access_clock: Vec<u64>,
    /// Per-set miss counter (optimized age unit).
    miss_count: Vec<u64>,
    /// Per-line: access-clock stamp at last touch.
    access_stamp: Vec<u64>,
    /// Per-line: miss-epoch stamp at last touch.
    epoch_stamp: Vec<u64>,
    /// Per-line: hit counter plus both access-type flags, packed into one
    /// byte ([`LineMeta`]) so the victim scan touches a third of the
    /// metadata memory the unpacked layout did.
    meta: Vec<LineMeta>,
    /// Predicted reuse distance (age units).
    rd: u64,
    /// Preuse-distance accumulator over the current demand-hit window.
    preuse_accum: u64,
    /// Demand hits in the current window.
    window_hits: u32,
    /// LLC accesses since the last RD update (stale-RD escape).
    accesses_since_rd_update: u64,
    /// Per-line: core that inserted or last touched the line, maintained
    /// from the `on_fill`/`on_hit` callbacks exactly where the cache would
    /// update its own tag-store copy. Owning this mirror is what lets the
    /// multicore variant skip the per-eviction [`LineSnapshot`] build —
    /// `uses_line_snapshots` is `false` for every RLR variant. Empty when
    /// P_core is off.
    line_core: Vec<u8>,
    /// Per-core demand-hit counters (multicore extension).
    core_hits: Vec<u32>,
    /// Per-core priority levels from the last re-ranking.
    core_priority: Vec<u32>,
    /// Accesses left until the next core re-ranking — a countdown instead
    /// of `accesses % period` so the hot path never divides. Unused
    /// (stays at the period) when P_core is off.
    until_rerank: u64,
}

impl RlrPolicy {
    /// The paper's final 16.75 KB design.
    pub fn optimized(cache: &CacheConfig) -> Self {
        Self::with_config(RlrConfig::optimized(), cache)
    }

    /// `RLR(unopt)`: the pre-optimization design.
    pub fn unoptimized(cache: &CacheConfig) -> Self {
        Self::with_config(RlrConfig::unoptimized(), cache)
    }

    /// The multicore extension for `cores` cores.
    pub fn multicore(cores: u8, cache: &CacheConfig) -> Self {
        Self::with_config(RlrConfig::multicore(cores), cache)
    }

    /// Builds RLR with an explicit configuration (used by the ablations).
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`RlrConfig::validate`].
    pub fn with_config(config: RlrConfig, cache: &CacheConfig) -> Self {
        config.validate();
        let lines = cache.lines() as usize;
        let cores = usize::from(config.core_priority_cores);
        Self {
            ways: cache.ways,
            epoch_shift: match config.age_unit {
                AgeUnit::SetAccesses => 0,
                AgeUnit::MissEpochs { misses_per_epoch } => misses_per_epoch.trailing_zeros(),
            },
            access_clock: vec![0; cache.sets as usize],
            miss_count: vec![0; cache.sets as usize],
            access_stamp: vec![0; lines],
            epoch_stamp: vec![0; lines],
            meta: vec![LineMeta::default(); lines],
            // Start fully protective: until the estimator has observed real
            // preuse distances, every line stays inside RD and victim
            // selection falls to the (anti-thrash) recency tie-break.
            rd: config.max_age(),
            preuse_accum: 0,
            window_hits: 0,
            accesses_since_rd_update: 0,
            line_core: if cores > 0 { vec![0; lines] } else { Vec::new() },
            core_hits: vec![0; cores],
            core_priority: vec![0; cores],
            until_rerank: config.core_update_period,
            config,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &RlrConfig {
        &self.config
    }

    /// The current predicted reuse distance (in age units).
    pub fn predicted_reuse_distance(&self) -> u64 {
        self.rd
    }

    fn idx(&self, set: u32, way: u16) -> usize {
        set as usize * self.ways as usize + way as usize
    }

    fn current_epoch(&self, set: u32) -> u64 {
        match self.config.age_unit {
            AgeUnit::SetAccesses => 0,
            AgeUnit::MissEpochs { .. } => self.miss_count[set as usize] >> self.epoch_shift,
        }
    }

    /// The line's age in the configured unit, saturated to the counter
    /// width.
    fn age(&self, set: u32, way: u16) -> u64 {
        let i = self.idx(set, way);
        let raw = match self.config.age_unit {
            AgeUnit::SetAccesses => self.access_clock[set as usize] - self.access_stamp[i],
            AgeUnit::MissEpochs { .. } => self.current_epoch(set) - self.epoch_stamp[i],
        };
        raw.min(self.config.max_age())
    }

    /// Stamps a line as just-touched.
    fn touch(&mut self, set: u32, way: u16) {
        let epoch = self.current_epoch(set);
        let i = self.idx(set, way);
        self.access_stamp[i] = self.access_clock[set as usize];
        self.epoch_stamp[i] = epoch;
    }

    /// LLC accesses tolerated without an RD update before the estimate is
    /// considered stale. A workload phase that produces no demand hits
    /// (pure thrash) would otherwise freeze RD at a value from the
    /// previous phase and lock the policy into LRU-like churn.
    const RD_STALE_LIMIT: u64 = 2048;

    fn record_access(&mut self) {
        if !self.core_hits.is_empty() {
            self.until_rerank -= 1;
            if self.until_rerank == 0 {
                self.until_rerank = self.config.core_update_period;
                self.rerank_cores();
            }
        }
        self.accesses_since_rd_update += 1;
        if self.accesses_since_rd_update > Self::RD_STALE_LIMIT {
            // Stale-RD escape: fall back to full protection so the recency
            // tie-break (which pins an old subset) can re-establish hits.
            self.rd = self.config.max_age();
            self.accesses_since_rd_update = 0;
        }
    }

    /// Assigns priority levels by demand-hit frequency: the core with the
    /// most demand hits gets the highest level (§IV-D).
    fn rerank_cores(&mut self) {
        let mut order: Vec<usize> = (0..self.core_hits.len()).collect();
        order.sort_by_key(|&c| std::cmp::Reverse(self.core_hits[c]));
        for (rank, &core) in order.iter().enumerate() {
            self.core_priority[core] = (self.core_hits.len() - 1 - rank) as u32;
        }
        // Decay so the ranking follows phases.
        for h in &mut self.core_hits {
            *h /= 2;
        }
    }
}

impl ReplacementPolicy for RlrPolicy {
    fn name(&self) -> String {
        match (self.config == RlrConfig::optimized(), self.config == RlrConfig::unoptimized()) {
            (true, _) => "RLR".to_owned(),
            (_, true) => "RLR(unopt)".to_owned(),
            _ if self.config.core_priority_cores > 0 => "RLR-MC".to_owned(),
            _ => "RLR(custom)".to_owned(),
        }
    }

    fn on_miss(&mut self, set: u32, _access: &Access) {
        self.access_clock[set as usize] += 1;
        self.miss_count[set as usize] += 1;
        self.record_access();
    }

    fn uses_line_snapshots(&self) -> bool {
        // Every input of the victim scan — including the per-line core for
        // P_core — lives in the policy's own tables, so the cache never
        // needs to build a snapshot for RLR.
        false
    }

    fn select_victim(&mut self, set: u32, _lines: &[LineSnapshot], _access: &Access) -> Decision {
        // The victim scan is the policy's hot loop: every set-wide value
        // (clock/epoch, RD, the configuration knobs, the slice bases) is
        // hoisted here, and the per-way argmin over the packed
        // `(priority | staleness | way)` key runs in [`crate::scan`] —
        // lane-parallel by default, scalar under the `scalar-scan`
        // feature, bit-identical either way (see the module docs for the
        // key layout and the order-insensitivity argument).
        let ways = usize::from(self.ways);
        let base = self.idx(set, 0);
        let unit = self.config.age_unit;
        let params = ScanParams {
            now: match unit {
                AgeUnit::SetAccesses => self.access_clock[set as usize],
                AgeUnit::MissEpochs { .. } => self.current_epoch(set),
            },
            clock: self.access_clock[set as usize],
            rd: self.rd,
            max_age: self.config.max_age(),
            age_weight: self.config.age_weight,
            use_type: self.config.use_type_priority,
            use_hit: self.config.use_hit_priority,
            exact_recency: self.config.recency == RecencyMode::Exact,
        };
        let access_stamps = &self.access_stamp[base..base + ways];
        let scan_ways = ScanWays {
            age_stamps: match unit {
                AgeUnit::SetAccesses => access_stamps,
                AgeUnit::MissEpochs { .. } => &self.epoch_stamp[base..base + ways],
            },
            rec_stamps: access_stamps,
            metas: &self.meta[base..base + ways],
            cores: if self.line_core.is_empty() { &[] } else { &self.line_core[base..base + ways] },
            core_rank: &self.core_priority,
        };
        let outcome = scan::scan(&params, &scan_ways);
        if self.config.bypass && !outcome.any_past_rd {
            return Decision::Bypass;
        }
        Decision::Evict(outcome.victim())
    }

    fn on_hit(&mut self, set: u32, way: u16, access: &Access) {
        // The line's age at the moment of the hit is its preuse distance
        // (the hit itself does not count toward it).
        let preuse = self.age(set, way);
        self.access_clock[set as usize] += 1;
        self.record_access();

        // On a demand hit, feed the RD estimator (Fig. 9's accumulator) —
        // unless the line's previous touch was a prefetch or writeback, in
        // which case `preuse` measures prefetch timeliness or an L2
        // round-trip, not reuse.
        let i = self.idx(set, way);
        let counts_for_rd =
            !self.config.rd_ignores_non_demand_preuse || self.meta[i].last_demand();
        if access.kind.is_demand() {
            if counts_for_rd {
                self.preuse_accum += preuse;
                self.window_hits += 1;
            }
            if self.window_hits == self.config.demand_hit_window {
                let avg =
                    self.preuse_accum as f64 / f64::from(self.config.demand_hit_window);
                // Round to nearest: with coarse (epoch) age units, truncation
                // would collapse sub-unit averages to RD = 0 and disable the
                // age protection entirely. Hardware: add half before the
                // shift.
                self.rd = (avg * self.config.rd_multiplier).round() as u64;
                self.preuse_accum = 0;
                self.window_hits = 0;
                self.accesses_since_rd_update = 0;
            }
            if let Some(h) = self.core_hits.get_mut(usize::from(access.core)) {
                *h = (*h + 1).min(CORE_HIT_MAX);
            }
        }

        let hit_max = (1u32 << self.config.hit_bits) - 1;
        let meta = &mut self.meta[i];
        meta.set_hit_count((u32::from(meta.hit_count()) + 1).min(hit_max) as u8);
        meta.set_access_type(access.kind == AccessKind::Prefetch, access.kind.is_demand());
        // Mirror the tag store's "core that inserted or last touched"
        // field — the cache updates its copy on every hit and fill, so the
        // mirror must too (any divergence would show up as a different
        // P_core than a snapshot-fed scan computes).
        if let Some(core) = self.line_core.get_mut(i) {
            *core = access.core;
        }
        self.touch(set, way);
    }

    fn on_fill(&mut self, set: u32, way: u16, access: &Access) {
        let i = self.idx(set, way);
        self.meta[i] =
            LineMeta::filled(access.kind == AccessKind::Prefetch, access.kind.is_demand());
        if let Some(core) = self.line_core.get_mut(i) {
            *core = access.core;
        }
        self.touch(set, way);
    }

    fn overhead_bits(&self, config: &CacheConfig) -> u64 {
        let mut per_line = u64::from(self.config.age_bits) + u64::from(self.config.hit_bits);
        if self.config.use_type_priority {
            per_line += 1;
        }
        if self.config.recency == RecencyMode::Exact {
            per_line += u64::from(config.way_bits());
        }
        let mut bits = config.lines() * per_line;
        if let AgeUnit::MissEpochs { misses_per_epoch } = self.config.age_unit {
            bits += u64::from(config.sets) * u64::from(misses_per_epoch.trailing_zeros());
        }
        // Per-core demand-hit counters, 12 bits each (§IV-D).
        bits += u64::from(self.config.core_priority_cores) * 12;
        bits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache_cfg() -> CacheConfig {
        CacheConfig { sets: 4, ways: 4, latency: 1 }
    }

    fn access(kind: AccessKind, core: u8) -> Access {
        Access { pc: 0x400, addr: 0, kind, core, seq: 0 }
    }

    fn lines(n: usize) -> Vec<LineSnapshot> {
        (0..n)
            .map(|i| LineSnapshot { valid: true, line: i as u64, dirty: false, core: 0 })
            .collect()
    }

    fn victim(p: &mut RlrPolicy, set: u32) -> u16 {
        match p.select_victim(set, &lines(4), &access(AccessKind::Load, 0)) {
            Decision::Evict(w) => w,
            Decision::Bypass => panic!("unexpected bypass"),
        }
    }

    #[test]
    fn optimized_overhead_is_exactly_16_75_kb() {
        let llc = CacheConfig::with_capacity_kb(2048, 16, 26);
        let p = RlrPolicy::optimized(&llc);
        assert_eq!(p.overhead_bits(&llc), 16_75 * 1024 * 8 / 100); // 16.75 KB
        assert_eq!(p.overhead_bits(&llc), 137_216);
    }

    #[test]
    fn unreused_prefetched_line_is_evicted_first() {
        let mut p = RlrPolicy::unoptimized(&cache_cfg());
        for w in 0..4 {
            let kind = if w == 2 { AccessKind::Prefetch } else { AccessKind::Load };
            p.on_fill(0, w, &access(kind, 0));
        }
        assert_eq!(victim(&mut p, 0), 2, "P_type must doom the unreused prefetch");
    }

    #[test]
    fn reused_prefetched_line_is_protected() {
        let mut p = RlrPolicy::unoptimized(&cache_cfg());
        for w in 0..4 {
            let kind = if w == 2 { AccessKind::Prefetch } else { AccessKind::Load };
            p.on_fill(0, w, &access(kind, 0));
        }
        // A demand hit clears the prefetch type and sets the hit register.
        p.on_hit(0, 2, &access(AccessKind::Load, 0));
        let v = victim(&mut p, 0);
        assert_ne!(v, 2, "a reused prefetch must lose its eviction priority");
    }

    #[test]
    fn hit_register_protects_lines() {
        let mut p = RlrPolicy::unoptimized(&cache_cfg());
        for w in 0..4 {
            p.on_fill(0, w, &access(AccessKind::Load, 0));
        }
        p.on_hit(0, 0, &access(AccessKind::Load, 0));
        p.on_hit(0, 1, &access(AccessKind::Load, 0));
        p.on_hit(0, 3, &access(AccessKind::Load, 0));
        assert_eq!(victim(&mut p, 0), 2, "the only never-hit line must be evicted");
    }

    #[test]
    fn aged_out_line_loses_age_priority() {
        let mut p = RlrPolicy::unoptimized(&cache_cfg());
        p.rd = 3;
        for w in 0..4 {
            p.on_fill(0, w, &access(AccessKind::Load, 0));
        }
        // Age way 1 past RD by pushing misses through the set.
        for _ in 0..6 {
            p.on_miss(0, &access(AccessKind::Load, 0));
        }
        // Refresh all ways except way 1 (their age resets below RD).
        for w in [0u16, 2, 3] {
            p.on_hit(0, w, &access(AccessKind::Load, 0));
        }
        assert_eq!(victim(&mut p, 0), 1, "the line past RD has P_age = 0");
    }

    #[test]
    fn tie_breaks_evict_most_recent_with_exact_recency() {
        let mut p = RlrPolicy::unoptimized(&cache_cfg());
        // With a large RD every line keeps P_age, so all four lines tie;
        // fills happen in way order, so way 3 is the most recently inserted
        // and must be the victim.
        p.rd = 31;
        for w in 0..4 {
            p.on_miss(0, &access(AccessKind::Load, 0));
            p.on_fill(0, w, &access(AccessKind::Load, 0));
        }
        assert_eq!(victim(&mut p, 0), 3);
    }

    #[test]
    fn tie_breaks_use_lowest_way_with_age_approx() {
        let mut p = RlrPolicy::optimized(&cache_cfg());
        for w in 0..4 {
            p.on_fill(0, w, &access(AccessKind::Load, 0));
        }
        // All lines share age 0 (same epoch), so the lowest way goes.
        assert_eq!(victim(&mut p, 0), 0);
    }

    #[test]
    fn rd_is_twice_the_average_preuse() {
        let mut p = RlrPolicy::unoptimized(&cache_cfg());
        p.on_fill(0, 0, &access(AccessKind::Load, 0));
        // Produce 32 demand hits, each with preuse distance exactly 4:
        // 3 misses age the line by 3 (plus the hit's own tick pattern).
        for _ in 0..32 {
            for _ in 0..4 {
                p.on_miss(1, &access(AccessKind::Load, 0)); // other set: no aging here
                p.on_miss(0, &access(AccessKind::Load, 0)); // ages set 0 by 1
            }
            p.on_hit(0, 0, &access(AccessKind::Load, 0));
        }
        assert_eq!(p.predicted_reuse_distance(), 8, "RD = 2 x avg preuse (4)");
    }

    #[test]
    fn optimized_age_advances_once_per_eight_misses() {
        let mut p = RlrPolicy::optimized(&cache_cfg());
        p.on_fill(0, 0, &access(AccessKind::Load, 0));
        for _ in 0..7 {
            p.on_miss(0, &access(AccessKind::Load, 0));
        }
        assert_eq!(p.age(0, 0), 0, "still inside the first epoch");
        p.on_miss(0, &access(AccessKind::Load, 0));
        assert_eq!(p.age(0, 0), 1, "epoch rollover increments ages");
        for _ in 0..100 {
            p.on_miss(0, &access(AccessKind::Load, 0));
        }
        assert_eq!(p.age(0, 0), 3, "2-bit age saturates");
    }

    #[test]
    fn bypass_triggers_when_nothing_aged_past_rd() {
        let mut cfg = RlrConfig::optimized();
        cfg.bypass = true;
        let mut p = RlrPolicy::with_config(cfg, &cache_cfg());
        p.rd = 3;
        for w in 0..4 {
            p.on_fill(0, w, &access(AccessKind::Load, 0));
        }
        assert_eq!(
            p.select_victim(0, &lines(4), &access(AccessKind::Load, 0)),
            Decision::Bypass
        );
    }

    #[test]
    fn disabling_type_priority_removes_prefetch_penalty() {
        let mut cfg = RlrConfig::unoptimized();
        cfg.use_type_priority = false;
        let mut p = RlrPolicy::with_config(cfg, &cache_cfg());
        p.rd = 31; // neutralize P_age so only P_type could differ
        for w in 0..4 {
            let kind = if w == 2 { AccessKind::Prefetch } else { AccessKind::Load };
            p.on_miss(0, &access(kind, 0));
            p.on_fill(0, w, &access(kind, 0));
        }
        // Without P_type everything ties; exact recency evicts the newest.
        assert_eq!(victim(&mut p, 0), 3);
    }

    #[test]
    fn core_priority_protects_hit_rich_cores() {
        let llc = cache_cfg();
        let mut p = RlrPolicy::multicore(2, &llc);
        // Core 1 produces many demand hits; core 0 produces none.
        p.on_fill(0, 0, &access(AccessKind::Load, 1));
        for _ in 0..2100 {
            p.on_hit(0, 0, &access(AccessKind::Load, 1));
        }
        assert!(p.core_priority[1] > p.core_priority[0]);
        // Two identical lines, one per core: core 0's line must go first.
        let snapshot = vec![
            LineSnapshot { valid: true, line: 1, dirty: false, core: 0 },
            LineSnapshot { valid: true, line: 2, dirty: false, core: 1 },
            LineSnapshot { valid: true, line: 3, dirty: false, core: 1 },
            LineSnapshot { valid: true, line: 4, dirty: false, core: 1 },
        ];
        let mut q = RlrPolicy::multicore(2, &llc);
        q.core_priority = p.core_priority.clone();
        for w in 0..4 {
            q.on_fill(1, w, &access(AccessKind::Load, snapshot[w as usize].core));
        }
        match q.select_victim(1, &snapshot, &access(AccessKind::Load, 0)) {
            Decision::Evict(w) => assert_eq!(w, 0, "low-hit core's line is the victim"),
            Decision::Bypass => panic!("unexpected bypass"),
        }
    }

    #[test]
    fn names_distinguish_variants() {
        let llc = cache_cfg();
        assert_eq!(RlrPolicy::optimized(&llc).name(), "RLR");
        assert_eq!(RlrPolicy::unoptimized(&llc).name(), "RLR(unopt)");
        assert_eq!(RlrPolicy::multicore(4, &llc).name(), "RLR-MC");
    }
}
