//! Bit-packed codecs for RLR's per-line and per-set metadata (paper §IV-C).
//!
//! The optimized hardware design stores **4 bits per line** — a 2-bit age
//! counter, a 1-bit hit register, and a 1-bit type register — plus a
//! **3-bit miss counter per set** that advances the set's age epoch every
//! 8 misses. Those widths are what make the policy cost 16.75 KB on a
//! 2 MB LLC (Table I).
//!
//! This module is the one place where those layouts are defined:
//!
//! * [`LineMeta`] is the byte-wide packing the simulator actually uses on
//!   its hot path — the hit counter and both type flags of a line live in
//!   a single byte, so [`crate::RlrPolicy`] keeps one `Vec<LineMeta>`
//!   instead of three parallel arrays (one cache line of policy metadata
//!   now covers 64 cache lines' worth of state).
//! * [`HwLineState`] and [`EpochPhase`] are the true hardware nibble/3-bit
//!   encodings. The simulator models ages with absolute epoch stamps (so
//!   it never has to sweep every line on an epoch rollover), but these
//!   codecs pin down — and the property tests verify — that the state the
//!   policy relies on round-trips through the advertised bit budget.

/// Per-line policy metadata packed into one byte.
///
/// Layout: bits `0..=5` hold the saturating hit counter (wide enough for
/// any [`crate::RlrConfig::hit_bits`] up to [`Self::MAX_HIT_BITS`]),
/// bit 6 records whether the line's last access was a prefetch, and bit 7
/// whether it was a demand access (the RD filter's "last touch was a
/// demand" bit).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
#[repr(transparent)]
pub struct LineMeta(u8);

impl LineMeta {
    /// Mask of the hit-counter field within [`Self::bits`].
    pub const HIT_MASK: u8 = (1 << Self::MAX_HIT_BITS) - 1;
    /// The "last access was a prefetch" flag within [`Self::bits`].
    pub const PREFETCH_BIT: u8 = 1 << 6;
    const DEMAND_BIT: u8 = 1 << 7;

    /// The raw packed byte. `repr(transparent)` guarantees a
    /// `&[LineMeta]` is byte-for-byte a `&[u8]` of these, which the
    /// vectorized victim scan relies on to load four metas at once.
    pub fn bits(self) -> u8 {
        self.0
    }

    /// Widest hit counter the packed layout can hold.
    pub const MAX_HIT_BITS: u32 = 6;

    /// The state of a line right after a fill: zero hits, access type from
    /// the filling request.
    pub fn filled(prefetch: bool, demand: bool) -> Self {
        let mut m = Self(0);
        m.set_access_type(prefetch, demand);
        m
    }

    /// Hits since insertion (saturation is the caller's policy).
    pub fn hit_count(self) -> u8 {
        self.0 & Self::HIT_MASK
    }

    /// Overwrites the hit counter, leaving the type flags untouched.
    pub fn set_hit_count(&mut self, count: u8) {
        debug_assert!(count <= Self::HIT_MASK, "hit count {count} overflows the packed field");
        self.0 = (self.0 & !Self::HIT_MASK) | (count & Self::HIT_MASK);
    }

    /// Was the last access to this line a prefetch?
    pub fn last_prefetch(self) -> bool {
        self.0 & Self::PREFETCH_BIT != 0
    }

    /// Was the last access to this line a demand access?
    pub fn last_demand(self) -> bool {
        self.0 & Self::DEMAND_BIT != 0
    }

    /// Records the type of the latest access, leaving the hit counter
    /// untouched.
    pub fn set_access_type(&mut self, prefetch: bool, demand: bool) {
        self.0 = (self.0 & Self::HIT_MASK)
            | if prefetch { Self::PREFETCH_BIT } else { 0 }
            | if demand { Self::DEMAND_BIT } else { 0 };
    }
}

/// The paper's 4-bit per-line hardware state: 2-bit age, 1-bit hit
/// register, 1-bit type register.
///
/// Layout (low to high): bits `0..=1` age, bit 2 hit, bit 3 type
/// (1 = last access was a prefetch).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HwLineState {
    /// Saturating age in miss epochs, `0..=3`.
    pub age: u8,
    /// Has the line been hit since insertion?
    pub hit: bool,
    /// Was the last access a prefetch?
    pub prefetched: bool,
}

impl HwLineState {
    /// Bits per line in the optimized design.
    pub const BITS: u32 = 4;
    /// Largest representable age (2-bit counter).
    pub const MAX_AGE: u8 = 0b11;

    /// Packs into the low nibble of a byte.
    pub fn pack(self) -> u8 {
        debug_assert!(self.age <= Self::MAX_AGE, "age {} overflows 2 bits", self.age);
        (self.age & Self::MAX_AGE) | (u8::from(self.hit) << 2) | (u8::from(self.prefetched) << 3)
    }

    /// Decodes the low nibble of a byte; higher bits are ignored.
    pub fn unpack(nibble: u8) -> Self {
        Self {
            age: nibble & Self::MAX_AGE,
            hit: nibble & (1 << 2) != 0,
            prefetched: nibble & (1 << 3) != 0,
        }
    }
}

/// The 3-bit per-set miss counter of the optimized design: counts set
/// misses modulo 8; every wrap is an epoch boundary, at which each line
/// in the set ages by one.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EpochPhase(u8);

impl EpochPhase {
    /// Bits per set in the optimized design.
    pub const BITS: u32 = 3;
    /// Misses per epoch (the counter's modulus).
    pub const MODULUS: u8 = 1 << Self::BITS;

    /// Encodes into the low [`Self::BITS`] bits of a byte.
    pub fn pack(self) -> u8 {
        self.0 & (Self::MODULUS - 1)
    }

    /// Decodes the low [`Self::BITS`] bits of a byte; higher bits are
    /// ignored.
    pub fn unpack(bits: u8) -> Self {
        Self(bits & (Self::MODULUS - 1))
    }

    /// Current phase within the epoch, `0..MODULUS`.
    pub fn phase(self) -> u8 {
        self.0
    }

    /// Advances on a set miss; returns `true` when the counter wraps — an
    /// epoch boundary.
    pub fn tick(&mut self) -> bool {
        self.0 = (self.0 + 1) % Self::MODULUS;
        self.0 == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_meta_fields_are_independent() {
        let mut m = LineMeta::filled(true, false);
        assert_eq!(m.hit_count(), 0);
        assert!(m.last_prefetch());
        assert!(!m.last_demand());
        m.set_hit_count(63);
        assert_eq!(m.hit_count(), 63);
        assert!(m.last_prefetch(), "hit-count store must not clobber the flags");
        m.set_access_type(false, true);
        assert_eq!(m.hit_count(), 63, "type store must not clobber the counter");
        assert!(!m.last_prefetch());
        assert!(m.last_demand());
    }

    #[test]
    fn hw_state_uses_one_nibble() {
        let s = HwLineState { age: 3, hit: true, prefetched: true };
        assert!(s.pack() < 16, "must fit in 4 bits");
        assert_eq!(HwLineState::unpack(s.pack()), s);
    }

    #[test]
    fn epoch_phase_wraps_every_eight_ticks() {
        let mut p = EpochPhase::default();
        for _ in 0..7 {
            assert!(!p.tick());
        }
        assert!(p.tick(), "the eighth miss is the epoch boundary");
        assert_eq!(p.phase(), 0);
    }
}
