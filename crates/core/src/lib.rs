//! # RLR — Reinforcement Learned Replacement
//!
//! The cost-effective LLC replacement policy from *"Designing a
//! Cost-Effective Cache Replacement Policy using Machine Learning"*
//! (Sethumurugan, Yin, Sartori — HPCA 2021), derived offline from an RL
//! agent and implementable with 16.75 KB of metadata on a 2 MB LLC —
//! without any program-counter plumbing.
//!
//! ## The policy
//!
//! Every line carries an **age counter**, a **hit register**, and a **type
//! register**. On a miss, each line in the set is scored:
//!
//! ```text
//! P_line = 8 · P_age + P_type + P_hit (+ P_core on multicore)
//!
//! P_age  = 1 if the line's age has not yet reached the predicted reuse
//!          distance RD (the line may still be reused), else 0
//! P_type = 0 if the line's last access was a prefetch (evict unreused
//!          prefetched lines sooner), else 1
//! P_hit  = 1 if the line has been hit since insertion, else 0
//! P_core = rank of the inserting core by demand-hit frequency (multicore)
//! ```
//!
//! The line with the lowest priority is evicted; ties break toward the
//! *most recently* accessed line (insight 4 from the RL agent: evicting the
//! youngest line lets older lines reach their predicted reuse).
//!
//! The reuse-distance prediction `RD` is `2 ×` the average *preuse
//! distance* (age at hit) accumulated over the last 32 demand hits —
//! a right-shift and a left-shift in hardware.
//!
//! ## Variants
//!
//! * [`RlrConfig::optimized`] — the 16.75 KB hardware design: 2-bit age
//!   counters advancing once per 8 set misses (3-bit counter per set),
//!   1-bit hit register, 1-bit type register, recency approximated by
//!   age == 0 (ties to the lowest way index).
//! * [`RlrConfig::unoptimized`] — `RLR(unopt)` from the paper's figures:
//!   5-bit ages counting set accesses, 2-bit hit counter, exact
//!   log2(assoc)-bit recency.
//! * [`RlrConfig::multicore`] — adds the per-core demand-hit priority of
//!   §IV-D, re-ranked every 2000 LLC accesses.
//!
//! ## Quick start
//!
//! ```
//! use cache_sim::{SingleCoreSystem, SystemConfig};
//! use rlr::RlrPolicy;
//! use workloads::spec2006;
//!
//! let cfg = SystemConfig::paper_single_core();
//! let mut system = SingleCoreSystem::new(&cfg, Box::new(RlrPolicy::optimized(&cfg.llc)));
//! let stats = system.run(spec2006("450.soplex").unwrap().stream(), 50_000);
//! assert!(stats.ipc() > 0.0);
//! ```

mod config;
pub mod packed;
mod policy;
pub mod scan;
pub mod seed_ref;

pub use config::{AgeUnit, RecencyMode, RlrConfig};
pub use policy::RlrPolicy;
pub use seed_ref::SeedRlrPolicy;
